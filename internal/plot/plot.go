// Package plot renders small ASCII line charts, enough to reproduce the
// look of the paper's figures (throughput vs number of locks on a log-x
// axis) directly in a terminal or a text report.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Chart is a renderable ASCII chart. Zero Width/Height get sensible
// defaults.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogX plots x on a log10 scale, as the paper's figures do
	// (number of locks from 1 to 10000).
	LogX   bool
	Width  int // plot-area columns
	Height int // plot-area rows
}

// markers distinguish series, cycling if there are many.
var markers = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Render draws the chart. Series with mismatched X/Y lengths or no
// points are skipped; an empty chart still renders its frame.
func (c *Chart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	xmin, xmax, ymin, ymax := c.bounds()
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}

	for si, s := range c.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			continue
		}
		m := markers[si%len(markers)]
		for i := range s.X {
			col := c.colFor(s.X[i], xmin, xmax, width)
			row := rowFor(s.Y[i], ymin, ymax, height)
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "  %s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  %s\n", c.YLabel)
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = pad(yTop, margin)
		} else if r == height-1 {
			label = pad(yBot, margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	xAxis := c.xAxisLine(xmin, xmax, width)
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", margin), xAxis)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", margin), center(c.XLabel, width))
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

// bounds computes the data envelope, defaulting to the unit box when
// there is nothing to plot, and padding a degenerate y-range.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			continue
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
		if ymin != 0 {
			ymin -= math.Abs(ymin) * 0.05
		}
	}
	return xmin, xmax, ymin, ymax
}

// colFor maps x to a plot column, on a log scale when requested (x ≤ 0
// clamps to the left edge).
func (c *Chart) colFor(x, xmin, xmax float64, width int) int {
	var frac float64
	if c.LogX {
		if x <= 0 || xmin <= 0 {
			if x <= 0 {
				return 0
			}
			xmin = math.SmallestNonzeroFloat64
		}
		lo, hi := math.Log10(xmin), math.Log10(xmax)
		if hi == lo {
			hi = lo + 1
		}
		frac = (math.Log10(x) - lo) / (hi - lo)
	} else {
		frac = (x - xmin) / (xmax - xmin)
	}
	return int(math.Round(frac * float64(width-1)))
}

// rowFor maps y to a plot row, row 0 at the top.
func rowFor(y, ymin, ymax float64, height int) int {
	frac := (y - ymin) / (ymax - ymin)
	return int(math.Round((1 - frac) * float64(height-1)))
}

// xAxisLine writes the min and max x values under the axis.
func (c *Chart) xAxisLine(xmin, xmax float64, width int) string {
	left := fmt.Sprintf("%.4g", xmin)
	right := fmt.Sprintf("%.4g", xmax)
	gap := width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	return left + strings.Repeat(" ", gap) + right
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}
