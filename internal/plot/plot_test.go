package plot

import (
	"strings"
	"testing"
)

func TestRenderContainsLabelsAndLegend(t *testing.T) {
	c := Chart{
		Title:  "Throughput vs locks",
		XLabel: "number of locks",
		YLabel: "throughput",
		Series: []Series{
			{Label: "npros=1", X: []float64{1, 10, 100}, Y: []float64{0.1, 0.2, 0.15}},
			{Label: "npros=30", X: []float64{1, 10, 100}, Y: []float64{0.2, 0.9, 0.7}},
		},
		LogX: true,
	}
	out := c.Render()
	for _, want := range []string{"Throughput vs locks", "number of locks", "throughput", "npros=1", "npros=30"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Errorf("series markers missing:\n%s", out)
	}
}

func TestRenderEmptyChart(t *testing.T) {
	c := Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "empty") || !strings.Contains(out, "+---") {
		t.Fatalf("empty chart frame broken:\n%s", out)
	}
}

func TestRenderSkipsMismatchedSeries(t *testing.T) {
	c := Chart{Series: []Series{{Label: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	out := c.Render() // must not panic
	if out == "" {
		t.Fatal("no output")
	}
}

func TestHigherValuesPlotHigher(t *testing.T) {
	c := Chart{
		Series: []Series{{Label: "s", X: []float64{0, 1}, Y: []float64{0, 10}}},
		Width:  20, Height: 10,
	}
	out := c.Render()
	lines := strings.Split(out, "\n")
	var firstRow, lastRow int = -1, -1
	for i, ln := range lines {
		if strings.Contains(ln, "o") {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("expected two marker rows:\n%s", out)
	}
	// The y=10 point (at x=1, right side) must be on an earlier line than
	// the y=0 point (at x=0, left side), and further right within it.
	topCol := strings.Index(lines[firstRow], "o")
	botCol := strings.Index(lines[lastRow], "o")
	if topCol <= botCol {
		t.Fatalf("orientation wrong (top marker at col %d, bottom at %d):\n%s", topCol, botCol, out)
	}
}

func TestLogXSpacing(t *testing.T) {
	// On a log axis, 1, 10, 100 must be evenly spaced columns.
	c := Chart{
		Series: []Series{{Label: "s", X: []float64{1, 10, 100}, Y: []float64{1, 1, 1}}},
		LogX:   true, Width: 21, Height: 3,
	}
	xmin, xmax, _, _ := c.bounds()
	c0 := c.colFor(1, xmin, xmax, 21)
	c1 := c.colFor(10, xmin, xmax, 21)
	c2 := c.colFor(100, xmin, xmax, 21)
	if c0 != 0 || c2 != 20 || c1 != 10 {
		t.Fatalf("log columns %d/%d/%d, want 0/10/20", c0, c1, c2)
	}
}

func TestLinearXSpacing(t *testing.T) {
	c := Chart{Width: 11}
	if got := c.colFor(5, 0, 10, 11); got != 5 {
		t.Fatalf("linear midpoint column %d, want 5", got)
	}
}

func TestLogXNonPositiveClamps(t *testing.T) {
	c := Chart{LogX: true}
	if got := c.colFor(0, 1, 100, 10); got != 0 {
		t.Fatalf("x=0 column %d, want 0", got)
	}
	if got := c.colFor(-5, 1, 100, 10); got != 0 {
		t.Fatalf("x=-5 column %d, want 0", got)
	}
}

func TestBoundsDegenerate(t *testing.T) {
	c := Chart{Series: []Series{{Label: "s", X: []float64{5}, Y: []float64{3}}}}
	xmin, xmax, ymin, ymax := c.bounds()
	if xmin >= xmax || ymin >= ymax {
		t.Fatalf("degenerate bounds not widened: [%v,%v]x[%v,%v]", xmin, xmax, ymin, ymax)
	}
}

func TestManySeriesMarkerCycle(t *testing.T) {
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{Label: "s", X: []float64{1}, Y: []float64{1}})
	}
	c := Chart{Series: series}
	_ = c.Render() // no panic on marker cycling
}
