package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// MetricName enforces the observability layer's naming and
// registration discipline: every family registered on an obs Registry
// is named granulock_<subsystem>_<name> (lower-case, underscore
// segments), and registration is idempotent-by-construction — the name
// is a compile-time constant (so re-registration always hits the same
// family; obs deduplicates by name) and the call does not sit inside a
// loop (a loop that computes names would mint unbounded families and a
// loop over a constant re-registers pointlessly; either way hoist it).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "require obs Registry family names to be constant strings " +
		"matching granulock_<subsystem>_<name>, registered outside loops",
	Run: runMetricName,
}

// metricNameRE is the family-name grammar: the granulock namespace, a
// subsystem segment, and at least one name segment.
var metricNameRE = regexp.MustCompile(`^granulock(_[a-z0-9]+){2,}$`)

// registerFns is the set of family-registering Registry methods.
var registerFns = map[string]bool{
	"NewCounter":      true,
	"NewCounterVec":   true,
	"NewGauge":        true,
	"NewGaugeVec":     true,
	"NewGaugeFunc":    true,
	"NewHistogram":    true,
	"NewHistogramVec": true,
}

func runMetricName(p *Pass) error {
	for _, f := range p.Files {
		// Track loop nesting with an explicit node stack: ast.Inspect
		// signals a pop with a nil node.
		var stack []ast.Node
		loops := 0
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isLoop(top) {
					loops--
				}
				return true
			}
			stack = append(stack, n)
			if isLoop(n) {
				loops++
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registerFns[sel.Sel.Name] {
				return true
			}
			tv, ok := p.TypesInfo.Types[sel.X]
			if !ok || !typeIs(tv.Type, "", "Registry") {
				return true
			}
			checkRegistration(p, call, sel.Sel.Name, loops > 0)
			return true
		})
	}
	return nil
}

func isLoop(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

func checkRegistration(p *Pass, call *ast.CallExpr, fn string, inLoop bool) {
	if inLoop {
		p.Reportf(call.Pos(),
			"%s inside a loop; hoist the registration so it is idempotent-by-construction "+
				"(one call site, one family)", fn)
	}
	if len(call.Args) == 0 {
		return
	}
	tv, ok := p.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(call.Pos(),
			"%s with a non-constant family name; metric names must be compile-time "+
				"constants so every registration is the same registration", fn)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		p.Reportf(call.Pos(),
			"metric family %q does not match granulock_<subsystem>_<name> "+
				"(lower-case segments, e.g. granulock_lockmgr_grants_total)", name)
	}
}
