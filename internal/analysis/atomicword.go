package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// AtomicWord guards the packed fast-path word state machine from the
// lock-free-fast-path PR: the 64-bit word in fastState may only move
// through FREE / FAST / SLOW / TOMB via the transition helpers in
// fastpath.go, and even there only along the edges of the transition
// table. The word's whole correctness argument (benign ABA, map-state
// authority while SLOW, terminal tombstones) is a property of that
// table; a raw atomic on the word anywhere else silently voids it.
//
// The word layout the analyzer checks against (fastpath.go):
//
//	0                     FREE
//	1<<63                 SLOW  (fpSlowBit)
//	1<<63 | 1<<62         TOMB  (fpSlowBit|fpTombBit)
//	1<<61 [| 1<<60] | txn FAST  (fpFastBit, fpModeXBit)
//
// Allowed transitions: FREE→FAST and FAST→FAST via CAS (grant,
// sole-holder upgrade), FAST→FREE via CAS (fast release), anything
// non-terminal→SLOW via CAS (demotion), FREE→TOMB via CAS (eviction
// of an idle slot), and Store(FREE) (promotion, under the stripe
// mutex). TOMB is terminal.
var AtomicWord = &Analyzer{
	Name: "atomicword",
	Doc: "forbid raw atomic operations on the packed fast-path word " +
		"outside the fastpath.go transition helpers, and check the " +
		"FREE/FAST/SLOW/TOMB transition table inside them",
	Run: runAtomicWord,
}

// The canonical packed-word bits (mirrors fpSlowBit/fpTombBit/fpFastBit
// in internal/lockmgr/fastpath.go; the analyzer re-declares them so it
// can classify constant operands in any package that adopts the
// layout).
const (
	awSlowBit = 1 << 63
	awTombBit = 1 << 62
	awFastBit = 1 << 61
)

// wordState classifies a packed-word operand expression.
type wordState int

const (
	wsUnknown wordState = iota // not statically classifiable (e.g. a loaded word)
	wsFree
	wsSlow
	wsTomb
	wsFast
)

func (s wordState) String() string {
	switch s {
	case wsFree:
		return "FREE"
	case wsSlow:
		return "SLOW"
	case wsTomb:
		return "TOMB"
	case wsFast:
		return "FAST"
	default:
		return "unclassifiable"
	}
}

// wordFile is the only file allowed to touch the packed word directly.
const wordFile = "fastpath.go"

// wordOwner/wordField name the packed word: the `word` field of the
// fastState record.
const (
	wordOwner = "fastState"
	wordField = "word"
)

func runAtomicWord(p *Pass) error {
	for _, f := range p.Files {
		inHelpers := p.baseFilename(f.Pos()) == wordFile
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isPackedWord(p, sel.X) {
				return true
			}
			op := sel.Sel.Name
			if !inHelpers {
				p.Reportf(call.Pos(),
					"raw atomic %s on the packed fast-path word outside the %s transition helpers; "+
						"the word may only move through FREE/FAST/SLOW/TOMB there",
					op, wordFile)
				return true
			}
			checkWordTransition(p, call, op)
			return true
		})
	}
	return nil
}

// isPackedWord reports whether e is a selector of the packed word
// field: fastState.word of type sync/atomic.Uint64.
func isPackedWord(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != wordField {
		return false
	}
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	if !typeIs(s.Obj().Type(), "sync/atomic", "Uint64") {
		return false
	}
	return typeIs(s.Recv(), "", wordOwner)
}

// checkWordTransition validates one atomic op inside the helper file
// against the transition table.
func checkWordTransition(p *Pass, call *ast.CallExpr, op string) {
	switch op {
	case "Load":
		return
	case "Store":
		if len(call.Args) == 1 && classifyWord(p, call.Args[0]) == wsFree {
			return // promotion back to FREE, legal only under the stripe mutex
		}
		p.Reportf(call.Pos(),
			"packed-word Store with a non-FREE value; only promotion (Store(0) under the "+
				"stripe mutex) may bypass CAS")
	case "CompareAndSwap":
		if len(call.Args) != 2 {
			return
		}
		old := classifyWord(p, call.Args[0])
		next := classifyWord(p, call.Args[1])
		switch {
		case old == wsTomb:
			p.Reportf(call.Pos(), "packed-word CAS out of TOMB: tombstones are terminal")
		case next == wsTomb && old != wsFree:
			p.Reportf(call.Pos(),
				"packed-word CAS %s→TOMB: only an idle (FREE) slot may be tombstoned", old)
		case next == wsFast && (old == wsSlow || old == wsTomb):
			p.Reportf(call.Pos(),
				"packed-word CAS %s→FAST: FAST is entered from FREE (grant) or FAST (upgrade) only", old)
		case next == wsFree && old != wsFast:
			p.Reportf(call.Pos(),
				"packed-word CAS %s→FREE: FREE is entered by releasing a FAST holder; "+
					"promotion out of SLOW uses Store(0) under the stripe mutex", old)
		case next == wsUnknown:
			p.Reportf(call.Pos(),
				"packed-word CAS to a state the analyzer cannot classify; build the new word "+
					"with the fpPack/fpSlow/fpTomb constructors")
		}
	default:
		// Swap, Add, And, Or, ...: arithmetic on the word can fabricate
		// states outside the table.
		p.Reportf(call.Pos(),
			"packed-word %s: the word only moves by Load, transition-table CAS, or promotion Store", op)
	}
}

// classifyWord classifies an operand expression as a word state.
func classifyWord(p *Pass, e ast.Expr) wordState {
	if tv, ok := p.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		v, ok := constant.Uint64Val(tv.Value)
		if !ok {
			return wsUnknown
		}
		switch {
		case v == 0:
			return wsFree
		case v&awSlowBit != 0 && v&awTombBit != 0:
			return wsTomb
		case v&awSlowBit != 0:
			return wsSlow
		case v&awFastBit != 0:
			return wsFast
		default:
			return wsUnknown
		}
	}
	if call, ok := e.(*ast.CallExpr); ok {
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "fpPack" {
				return wsFast
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "fpPack" {
				return wsFast
			}
		}
	}
	return wsUnknown
}
