// Package analysis is granulint: a family of static analyzers that
// mechanize the concurrency invariants this codebase otherwise enforces
// only by convention and by tests that must happen to hit the bad
// interleaving. The framework mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, diagnostics) but is self-hosted on the
// standard library so the suite builds and runs fully offline; see
// docs/ANALYSIS.md for the catalogue of analyzers, the invariant each
// one encodes, and the annotation grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"granulock/internal/analysis/load"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings, -run filters and
	// //granulint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	dirs  *directives
	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FuncHasDirective reports whether fd's doc comment carries the given
// granulint directive verb (e.g. "hotpath", "ordered").
func (p *Pass) FuncHasDirective(fd *ast.FuncDecl, verb string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if v, _, ok := parseDirectiveComment(c.Text); ok && v == verb {
			return true
		}
	}
	return false
}

// PkgHasDirective reports whether any file of the package carries the
// given directive verb at any comment position (package-scoped verbs,
// e.g. "wireboundary").
func (p *Pass) PkgHasDirective(verb string) bool {
	for _, d := range p.dirs.all {
		if d.verb == verb {
			return true
		}
	}
	return false
}

// All is the granulint analyzer registry: the five invariant analyzers
// plus the directive validator that keeps the annotation grammar
// itself well-formed.
// Populated in init to break the declaration cycle through the
// directive analyzer, whose validator consults the registry.
var All []*Analyzer

func init() {
	All = []*Analyzer{
		LockOrder,
		AtomicWord,
		HotPath,
		ErrTaxonomy,
		MetricName,
		Directive,
	}
}

// ByName returns the registered analyzer with the given name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Analyze runs one analyzer over one loaded package and returns its
// findings with //granulint:ignore suppressions already applied: a
// finding is suppressed when a well-formed ignore directive naming the
// analyzer sits on the same line or on the line directly above.
func Analyze(pkg *load.Package, a *Analyzer) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		dirs:      parseDirectives(pkg.Fset, pkg.Files),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	kept := pass.diags[:0]
	for _, d := range pass.diags {
		if !pass.dirs.suppressed(pkg.Fset, a.Name, d.Pos) {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// exprString renders an expression as source text, for messages and
// for comparing lock targets structurally.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// calleePkgFunc resolves a call of the form pkg.Func where pkg is an
// imported package name, returning the package path and function name.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// namedType unwraps pointers and returns the named type of t, if any.
func namedType(t types.Type) (*types.Named, bool) {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Named:
			return v, true
		default:
			return nil, false
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name {
		return false
	}
	if pkgPath == "" {
		return true
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// enclosingFuncs yields every function declaration with a body, across
// all files of the pass.
func (p *Pass) enclosingFuncs(fn func(*ast.File, *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// baseFilename returns the file's base name ("fastpath.go") for a pos.
func (p *Pass) baseFilename(pos token.Pos) string {
	full := p.Fset.Position(pos).Filename
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}
