// Package load turns Go source packages into type-checked syntax trees
// for the granulint analyzers, using nothing but the standard library
// and the go command itself.
//
// The loader is the offline replacement for golang.org/x/tools/go/
// packages: `go list -deps -export -json` enumerates the packages
// matched by a pattern together with the build-cache export data of
// every dependency, and the gc importer (go/importer with a lookup
// function over those export files) resolves imports while each target
// package is parsed and type-checked from source. No network, no
// module downloads, no third-party code — the same toolchain that
// builds the repo supplies everything the analyzers need.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked source package ready for analysis.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over the given
// patterns and returns the decoded package stream.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("load: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportData returns import path → build-cache export file for the
// given import paths and their transitive dependencies, compiling them
// as needed. dir anchors the go command (any directory inside a module
// works; the paths may still be stdlib ones).
func ExportData(dir string, imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := goList(dir, imports)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Importer returns a types importer resolving import paths through the
// given export-data file map (as produced by ExportData).
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// DirPackage parses and type-checks the .go files of one loose
// directory that the go command does not see as a package (an
// analysistest fixture under testdata/). Imports are resolved through
// the build cache of the module at moduleDir, so fixtures may import
// the standard library — but not each other. The package's import path
// is the directory's base name.
func DirPackage(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	imports := make([]string, 0, len(importSet))
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)
	exports, err := ExportData(moduleDir, imports)
	if err != nil {
		return nil, err
	}
	info := NewInfo()
	conf := types.Config{Importer: Importer(fset, exports)}
	pkgPath := filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", dir, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Name:    files[0].Name.Name,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// Packages loads, parses and type-checks the non-test source of every
// package matched by patterns (go list syntax, e.g. "./..."), resolving
// imports through build-cache export data. dir is the directory the go
// command runs in; it must sit inside the module being analyzed.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := Importer(fset, exports)
	out := make([]*Package, 0, len(targets))
	for _, p := range targets {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: p.ImportPath,
			Name:    p.Name,
			Dir:     p.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return out, nil
}
