package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath guards the measured zero-allocation hot paths (the fast-path
// acquire/release cycle pinned at ~zero allocs in BENCH_lockmgr.json,
// the v2 frame codec, the discrete-event loop). Functions annotated
// //granulint:hotpath may not:
//
//   - range over a map — Go's randomized map iteration allocates its
//     iterator state and was the single largest cost profiling found on
//     the claim/release cycle before the hold-set vector rewrite;
//   - use defer — a defer frame per call on a ~128ns path is real money
//     and hides the unlock ordering the lockorder analyzer checks;
//   - call into fmt or reflect — both allocate and both appeared in
//     past regressions via "harmless" error/diagnostic paths.
//
// The check is intraprocedural and includes function literals declared
// inside the annotated body (they run on the same path). Cold error
// branches that genuinely need one of these get a //granulint:ignore
// with a justification.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid map iteration, defer and fmt/reflect calls inside " +
		"functions annotated //granulint:hotpath",
	Run: runHotPath,
}

func runHotPath(p *Pass) error {
	p.enclosingFuncs(func(_ *ast.File, fd *ast.FuncDecl) {
		if !p.FuncHasDirective(fd, "hotpath") {
			return
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := p.TypesInfo.Types[v.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						p.Reportf(v.Pos(),
							"hotpath function %s ranges over a map (randomized iteration "+
								"setup allocates); iterate a slice or index instead", name)
					}
				}
			case *ast.DeferStmt:
				p.Reportf(v.Pos(), "hotpath function %s uses defer; unlock/cleanup explicitly on this path", name)
			case *ast.CallExpr:
				if pkg, fn, ok := calleePkgFunc(p.TypesInfo, v); ok {
					if pkg == "fmt" || pkg == "reflect" {
						p.Reportf(v.Pos(),
							"hotpath function %s calls %s.%s; fmt/reflect allocate — use a "+
								"preallocated typed error or move the call off the hot path",
							name, pkg, fn)
					}
				}
			}
			return true
		})
	})
	return nil
}
