// Package driver runs the granulint analyzer suite over real packages
// and renders findings — the engine behind cmd/granulint. It exists as
// a library so the multichecker binary stays a flag-parsing shell and
// integration tests can run the whole pipeline in-process.
package driver

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"granulock/internal/analysis"
	"granulock/internal/analysis/load"
)

// Options configure one granulint run.
type Options struct {
	// Dir is the directory the go command runs in (a module directory);
	// empty means the current directory.
	Dir string
	// Patterns are go list package patterns; empty means ./...
	Patterns []string
	// Analyzers to run; empty means analysis.All. The directive
	// validator always runs: the annotation grammar must stay
	// well-formed for any subset's suppressions to mean anything.
	Analyzers []*analysis.Analyzer
	// Out receives findings, one line each.
	Out io.Writer
}

// finding pairs a diagnostic with its analyzer for sorted output.
type finding struct {
	file     string
	line     int
	col      int
	analyzer string
	message  string
}

// Run executes the suite and prints findings as
//
//	path/file.go:line:col: analyzer: message
//
// It returns the number of findings (0 for a clean run).
func Run(o Options) (int, error) {
	analyzers := o.Analyzers
	if len(analyzers) == 0 {
		analyzers = analysis.All
	}
	if !containsAnalyzer(analyzers, analysis.Directive) {
		analyzers = append(append([]*analysis.Analyzer(nil), analyzers...), analysis.Directive)
	}
	pkgs, err := load.Packages(o.Dir, o.Patterns...)
	if err != nil {
		return 0, err
	}
	var all []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Analyze(pkg, a)
			if err != nil {
				return 0, err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				all = append(all, finding{
					file:     relPath(o.Dir, pos.Filename),
					line:     pos.Line,
					col:      pos.Column,
					analyzer: a.Name,
					message:  d.Message,
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range all {
		fmt.Fprintf(o.Out, "%s:%d:%d: %s: %s\n", f.file, f.line, f.col, f.analyzer, f.message)
	}
	return len(all), nil
}

// relPath renders filename relative to dir when possible, for stable
// readable output.
func relPath(dir, filename string) string {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return rel
}

func containsAnalyzer(as []*analysis.Analyzer, want *analysis.Analyzer) bool {
	for _, a := range as {
		if a == want {
			return true
		}
	}
	return false
}
