package analysis_test

import (
	"testing"

	"granulock/internal/analysis"
	"granulock/internal/analysis/analysistest"
)

// Each analyzer runs over a deliberately broken fixture package under
// testdata/src/ and must produce exactly the findings its `// want`
// comments declare — no more, no fewer.

func TestLockOrder(t *testing.T) { analysistest.Run(t, analysis.LockOrder, "lockorder") }

func TestAtomicWord(t *testing.T) { analysistest.Run(t, analysis.AtomicWord, "atomicword") }

func TestHotPath(t *testing.T) { analysistest.Run(t, analysis.HotPath, "hotpath") }

func TestErrTaxonomy(t *testing.T) { analysistest.Run(t, analysis.ErrTaxonomy, "errtaxonomy") }

func TestMetricName(t *testing.T) { analysistest.Run(t, analysis.MetricName, "metricname") }

func TestByName(t *testing.T) {
	for _, a := range analysis.All {
		got, ok := analysis.ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v; want the registered analyzer", a.Name, got, ok)
		}
	}
	if _, ok := analysis.ByName("nosuch"); ok {
		t.Error(`ByName("nosuch") succeeded`)
	}
}
