package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// ErrTaxonomy enforces the lock service's typed error taxonomy at its
// wire boundary (the hardening PR's contract): every error a
// //granulint:wireboundary package constructs inside a function body
// must resolve to the package-level typed taxonomy, because callers on
// the far side of the wire dispatch on errors.Is — a bare errors.New
// or a fmt.Errorf without %w produces an error no caller can classify,
// and the retry/reconnect machinery silently treats it as a transport
// fault.
//
// Concretely, in an annotated package:
//
//   - errors.New may only appear in package-level declarations (the
//     taxonomy definitions themselves);
//   - fmt.Errorf inside a function body must wrap a typed error with
//     %w (and its format string must be a compile-time constant so the
//     analyzer can see that).
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc: "in //granulint:wireboundary packages, forbid bare errors.New " +
		"in function bodies and require fmt.Errorf to wrap a typed " +
		"taxonomy error with %w",
	Run: runErrTaxonomy,
}

func runErrTaxonomy(p *Pass) error {
	if !p.PkgHasDirective("wireboundary") {
		return nil
	}
	p.enclosingFuncs(func(_ *ast.File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn, ok := calleePkgFunc(p.TypesInfo, call)
			if !ok {
				return true
			}
			switch {
			case pkg == "errors" && fn == "New":
				p.Reportf(call.Pos(),
					"bare errors.New in a wire-boundary function; errors crossing the wire "+
						"must be (or wrap) a package-level typed taxonomy error")
			case pkg == "fmt" && fn == "Errorf":
				checkErrorf(p, call)
			}
			return true
		})
	})
	return nil
}

// checkErrorf requires the format string to be a known constant
// containing %w.
func checkErrorf(p *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := p.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(call.Pos(),
			"fmt.Errorf with a non-constant format string; the wire boundary needs a "+
				"statically checkable %%w wrap of a taxonomy error")
		return
	}
	if !strings.Contains(constant.StringVal(tv.Value), "%w") {
		p.Reportf(call.Pos(),
			"fmt.Errorf without %%w drops the typed taxonomy at the wire boundary; "+
				"wrap a package-level Err* value (callers dispatch with errors.Is)")
	}
}
