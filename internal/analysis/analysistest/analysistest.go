// Package analysistest runs a granulint analyzer over a fixture
// package and checks its findings against expectations written in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest
// on the self-hosted framework.
//
// Fixtures live in testdata/src/<pkg>/ next to the test. Each expected
// finding is declared by a comment on the finding's line:
//
//	t.shards[1].mu.Lock() // want `out of ascending index order`
//
// The comment holds one regexp per expected finding on that line, as
// backquoted or double-quoted Go strings. Fixtures are full,
// type-checked packages — they may import the standard library — and
// are invisible to go build/vet/test, so deliberately broken code in
// them never pollutes the repo's own lint run.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"granulock/internal/analysis"
	"granulock/internal/analysis/load"
)

// wantRE extracts the string literals of a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one `// want` regexp, keyed to file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> (relative to the test's working
// directory), analyzes it with a, and fails t unless findings and
// `// want` expectations match one-to-one.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	loaded, err := load.DirPackage(".", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants, err := parseWants(loaded)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Analyze(loaded, a)
	if err != nil {
		t.Fatalf("analyzing %s with %s: %v", dir, a.Name, err)
	}
	for _, d := range diags {
		pos := loaded.Fset.Position(d.Pos)
		file := filepath.Base(pos.Filename)
		if !claim(wants, file, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected finding: %s", file, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

// parseWants collects every `// want` expectation in the package.
func parseWants(pkg *load.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				es, err := parseWantComment(pkg, c)
				if err != nil {
					return nil, err
				}
				wants = append(wants, es...)
			}
		}
	}
	return wants, nil
}

// parseWantComment turns one `// want ...` comment into expectations
// anchored at the comment's own line.
func parseWantComment(pkg *load.Package, c *ast.Comment) ([]*expectation, error) {
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil, nil
	}
	pos := pkg.Fset.Position(c.Pos())
	file := filepath.Base(pos.Filename)
	lits := wantRE.FindAllString(text, -1)
	if len(lits) == 0 {
		return nil, fmt.Errorf("%s:%d: malformed want comment %q: no string literals", file, pos.Line, c.Text)
	}
	var wants []*expectation
	for _, lit := range lits {
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: malformed want literal %s: %v", file, pos.Line, lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", file, pos.Line, s, err)
		}
		wants = append(wants, &expectation{file: file, line: pos.Line, re: re})
	}
	return wants, nil
}

// claim marks the first unmatched expectation on file:line whose regexp
// matches msg; it reports whether one was found.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
