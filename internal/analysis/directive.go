package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The granulint annotation grammar. Directives are line comments whose
// text starts exactly with "//granulint:" (no space, mirroring
// //go:build), followed by a verb and verb-specific arguments:
//
//	//granulint:hotpath
//	    On a function's doc comment: the function is a measured hot
//	    path; the hotpath analyzer forbids map iteration, defer and
//	    fmt/reflect calls inside it.
//	//granulint:ordered
//	    On a function's doc comment: the function acquires multiple
//	    stripe mutexes but its contract guarantees canonical ascending
//	    order (e.g. it requires a sorted index slice); the lockorder
//	    analyzer skips its body.
//	//granulint:wireboundary
//	    Anywhere in a package: the package serves a wire protocol; the
//	    errtaxonomy analyzer requires every error it constructs in
//	    function bodies to resolve to the typed taxonomy.
//	//granulint:ignore <analyzer> <reason>
//	    On (or directly above) a finding's line: suppress that
//	    analyzer's findings on the line. The reason is mandatory and
//	    must be non-empty — an unexplained suppression is itself a
//	    finding (directive analyzer).
const directivePrefix = "//granulint:"

// directiveVerbs is the set of known verbs.
var directiveVerbs = map[string]bool{
	"hotpath":      true,
	"ordered":      true,
	"wireboundary": true,
	"ignore":       true,
}

// directive is one parsed //granulint: comment.
type directive struct {
	pos  token.Pos
	verb string
	args string // raw text after the verb
}

// directives indexes a package's granulint comments.
type directives struct {
	all []directive
	// ignores maps "file:line" to the analyzer names suppressed there
	// (only well-formed ignore directives with a reason land here).
	ignores map[string][]string
}

// parseDirectiveComment splits a comment's text into directive verb and
// arguments; ok is false for non-directive comments.
func parseDirectiveComment(text string) (verb, args string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	verb, args, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(args), verb != ""
}

// parseDirectives collects every granulint directive in the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{ignores: make(map[string][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, args, ok := parseDirectiveComment(c.Text)
				if !ok {
					continue
				}
				d.all = append(d.all, directive{pos: c.Pos(), verb: verb, args: args})
				if verb != "ignore" {
					continue
				}
				analyzer, reason, _ := strings.Cut(args, " ")
				if analyzer == "" || strings.TrimSpace(reason) == "" {
					continue // malformed; the directive analyzer reports it
				}
				if analyzer == "directive" {
					// The validator itself cannot be suppressed, or an
					// ignore directive could silence the finding about
					// its own malformedness.
					continue
				}
				key := lineKey(fset, c.Pos())
				d.ignores[key] = append(d.ignores[key], analyzer)
			}
		}
	}
	return d
}

// lineKey is a file:line index key.
func lineKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return p.Filename + ":" + itoa(p.Line)
}

// suppressed reports whether a finding of the named analyzer at pos is
// covered by an ignore directive on the same line or the line above.
func (d *directives) suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, name := range d.ignores[p.Filename+":"+itoa(line)] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// itoa is a tiny strconv.Itoa for line numbers (avoids importing
// strconv in the framework's hot loop for no reason).
func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Directive is the annotation-grammar validator: every //granulint:
// comment must use a known verb, and ignore directives must name a
// registered analyzer and carry a non-empty justification. It keeps
// the suppression mechanism honest — the escape hatch exists, but it
// cannot be used silently.
var Directive = &Analyzer{
	Name: "directive",
	Doc: "validate granulint annotations: known verbs only, and " +
		"//granulint:ignore must name a registered analyzer and give a reason",
	Run: runDirective,
}

func runDirective(p *Pass) error {
	for _, d := range p.dirs.all {
		if !directiveVerbs[d.verb] {
			p.Reportf(d.pos, "unknown granulint directive %q (known: hotpath, ordered, wireboundary, ignore)", d.verb)
			continue
		}
		if d.verb != "ignore" {
			if d.args != "" {
				p.Reportf(d.pos, "granulint:%s takes no arguments (got %q)", d.verb, d.args)
			}
			continue
		}
		analyzer, reason, _ := strings.Cut(d.args, " ")
		if analyzer == "" {
			p.Reportf(d.pos, "granulint:ignore needs an analyzer name and a reason")
			continue
		}
		if _, ok := ByName(analyzer); !ok || analyzer == "directive" {
			p.Reportf(d.pos, "granulint:ignore names unknown analyzer %q", analyzer)
		}
		if strings.TrimSpace(reason) == "" {
			p.Reportf(d.pos, "granulint:ignore %s requires a non-empty reason: suppressions must be justified", analyzer)
		}
	}
	return nil
}
