// Fixture for the errtaxonomy analyzer: this package declares itself a
// wire boundary, so every error constructed in a function body must
// resolve to the package-level typed taxonomy.
//
//granulint:wireboundary
package errtaxonomy

import (
	"errors"
	"fmt"
)

// The taxonomy itself: package-level errors.New is the one legal home.
var ErrTimeout = errors.New("fixture: timed out")

func bare(op string) error {
	if op == "" {
		return errors.New("empty op") // want `bare errors.New`
	}
	return nil
}

func dropsTaxonomy(op string) error {
	return fmt.Errorf("op %s failed", op) // want `without %w drops the typed taxonomy`
}

func nonConstFormat(format string) error {
	return fmt.Errorf(format, 1) // want `non-constant format string`
}

func wraps(op string) error {
	return fmt.Errorf("%s: %w", op, ErrTimeout)
}

// Non-error fmt calls are not the analyzer's concern.
func prints(op string) string {
	return fmt.Sprintf("op=%s", op)
}
