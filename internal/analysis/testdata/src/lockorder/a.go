// Fixture for the lockorder analyzer: stripe mutexes reached through
// indexed expressions must be acquired in ascending index order.
package lockorder

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type table struct {
	shards [8]shard
}

func descending(t *table) {
	t.shards[2].mu.Lock()
	t.shards[1].mu.Lock() // want `out of ascending index order`
	t.shards[1].mu.Unlock()
	t.shards[2].mu.Unlock()
}

func ascending(t *table) {
	t.shards[1].mu.Lock()
	t.shards[2].mu.Lock()
	t.shards[2].n++
	t.shards[2].mu.Unlock()
	t.shards[1].mu.Unlock()
}

func selfDeadlock(t *table) {
	t.shards[3].mu.Lock()
	t.shards[3].mu.Lock() // want `self-deadlock`
	t.shards[3].mu.Unlock()
	t.shards[3].mu.Unlock()
}

func unprovable(t *table, i, j int) {
	t.shards[i].mu.Lock()
	t.shards[j].mu.Lock() // want `cannot prove ascending stripe order`
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

func sameVarTwice(t *table, i int) {
	t.shards[i].mu.Lock()
	t.shards[i].mu.Lock() // want `self-deadlock`
	t.shards[i].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// sorted is the canonical helper: its contract (sorted ascending input)
// is the ordering proof, so the analyzer must skip the body.
//
//granulint:ordered
func sorted(t *table, idx []int) {
	for _, i := range idx {
		t.shards[i].mu.Lock()
	}
}

// release-then-reacquire is not a violation: the first stripe is no
// longer held when the lower index is taken.
func sequential(t *table) {
	t.shards[5].mu.Lock()
	t.shards[5].mu.Unlock()
	t.shards[2].mu.Lock()
	t.shards[2].mu.Unlock()
}

// Deferred unlocks run at return: the stripes stay held, so ascending
// acquisitions remain fine but the defer must not hide them.
func deferredUnlocks(t *table) {
	t.shards[1].mu.Lock()
	defer t.shards[1].mu.Unlock()
	t.shards[4].mu.Lock()
	defer t.shards[4].mu.Unlock()
	t.shards[4].n++
}

// A single mutex that is not indexed is never a stripe mutex.
type plain struct {
	mu sync.Mutex
}

func unindexed(p *plain, q *plain) {
	p.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}
