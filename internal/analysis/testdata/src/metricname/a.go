// Fixture for the metricname analyzer: family registrations on a
// Registry must use constant granulock_<subsystem>_<name> names and
// must not sit inside loops.
package metricname

// Registry mirrors the obs.Registry registration surface; the analyzer
// matches any type named Registry so fixtures need not import obs.
type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }
func (r *Registry) NewGauge(name, help string) *Counter   { return &Counter{} }

func bad(r *Registry, dyn string) {
	r.NewCounter("lockmgr_grants_total", "h")  // want `does not match granulock_<subsystem>_<name>`
	r.NewCounter("granulock_grants", "h")      // want `does not match granulock_<subsystem>_<name>`
	r.NewCounter("granulock_Lock_Grants", "h") // want `does not match granulock_<subsystem>_<name>`
	r.NewGauge(dyn, "h")                       // want `non-constant family name`
	for i := 0; i < 3; i++ {
		r.NewCounter("granulock_sweep_cells_total", "h").Inc() // want `NewCounter inside a loop`
	}
}

func good(r *Registry) {
	c := r.NewCounter("granulock_lockmgr_grants_total", "h")
	for i := 0; i < 3; i++ {
		c.Inc() // resolved series may be used in loops; registration may not
	}
}

// A same-named method on a non-Registry type is not a registration.
type other struct{}

func (o *other) NewCounter(name, help string) *Counter { return &Counter{} }

func unrelated(o *other) {
	o.NewCounter("whatever", "h")
}
