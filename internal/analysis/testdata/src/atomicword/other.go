// Fixture for the atomicword analyzer, outside half: any atomic on the
// packed word outside fastpath.go is a finding, even a Load.
package atomicword

import "sync/atomic"

func outside(fs *fastState) uint64 {
	fs.word.Store(0)      // want `outside the fastpath.go transition helpers`
	return fs.word.Load() // want `outside the fastpath.go transition helpers`
}

// Atomics on words that are not the packed fastState.word are none of
// the analyzer's business.
type unrelated struct {
	word atomic.Uint64
}

func fine(u *unrelated) {
	u.word.Add(1)
}
