// Fixture for the atomicword analyzer, helper-file half: this file is
// named fastpath.go, so atomics on the packed word are allowed — but
// only along the FREE/FAST/SLOW/TOMB transition table.
package atomicword

import "sync/atomic"

const (
	fpSlowBit = 1 << 63
	fpTombBit = 1 << 62
	fpFastBit = 1 << 61
)

type fastState struct {
	word atomic.Uint64
}

func fpPack(txn uint64) uint64 { return fpFastBit | txn }

func legal(fs *fastState, txn uint64) bool {
	_ = fs.word.Load()
	if fs.word.CompareAndSwap(0, fpPack(txn)) { // FREE→FAST: grant
		return true
	}
	if fs.word.CompareAndSwap(fpPack(txn), 0) { // FAST→FREE: release
		return true
	}
	fs.word.CompareAndSwap(0, fpSlowBit|fpTombBit) // FREE→TOMB: evict idle slot
	fs.word.CompareAndSwap(fpPack(txn), fpSlowBit) // FAST→SLOW: demote
	fs.word.Store(0)                               // promotion under the stripe mutex
	return false
}

func illegal(fs *fastState, txn, w uint64) {
	fs.word.Store(fpSlowBit)                               // want `Store with a non-FREE value`
	fs.word.CompareAndSwap(fpSlowBit|fpTombBit, 0)         // want `CAS out of TOMB`
	fs.word.CompareAndSwap(fpSlowBit, fpSlowBit|fpTombBit) // want `only an idle \(FREE\) slot may be tombstoned`
	fs.word.CompareAndSwap(fpSlowBit, fpPack(txn))         // want `FAST is entered from FREE`
	fs.word.CompareAndSwap(fpSlowBit, 0)                   // want `FREE is entered by releasing a FAST holder`
	fs.word.CompareAndSwap(0, w)                           // want `cannot classify`
	fs.word.Add(1)                                         // want `only moves by Load, transition-table CAS, or promotion Store`
}
