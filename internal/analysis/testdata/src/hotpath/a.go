// Fixture for the hotpath analyzer: annotated functions may not range
// over maps, defer, or call into fmt/reflect.
package hotpath

import (
	"fmt"
	"reflect"
)

//granulint:hotpath
func bad(m map[int]int) int {
	sum := 0
	for k := range m { // want `ranges over a map`
		sum += k
	}
	defer fmt.Println(sum) // want `uses defer` `calls fmt.Println`
	_ = reflect.TypeOf(m)  // want `calls reflect.TypeOf`
	return sum
}

// The check covers function literals declared inside the annotated
// body: they run on the same path.
//
//granulint:hotpath
func badLiteral(m map[int]int) func() int {
	return func() int {
		n := 0
		for range m { // want `ranges over a map`
			n++
		}
		return n
	}
}

// Unannotated functions may do all of it.
func cold(m map[int]int) {
	defer fmt.Println("done")
	for k := range m {
		_ = k
	}
}

// Slices are fine to range over, and suppressed findings carry a
// mandatory justification.
//
//granulint:hotpath
func suppressed(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum < 0 {
		//granulint:ignore hotpath cold invariant-violation branch, never taken when callers behave
		fmt.Println("negative sum")
	}
	return sum
}
