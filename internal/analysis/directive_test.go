package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"granulock/internal/analysis"
	"granulock/internal/analysis/load"
)

// analyzeSrc runs one analyzer over an in-memory source file. The
// directive analyzer needs no type information, so the fixture is not
// type-checked.
func analyzeSrc(t *testing.T, a *analysis.Analyzer, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	diags, err := analysis.Analyze(&load.Package{Fset: fset, Files: []*ast.File{f}}, a)
	if err != nil {
		t.Fatalf("analyzing: %v", err)
	}
	return diags
}

func TestDirectiveValidator(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // one substring per expected finding
	}{
		{
			name: "unknown verb",
			src:  "package p\n\n//granulint:frobnicate\nfunc f() {}\n",
			want: []string{`unknown granulint directive "frobnicate"`},
		},
		{
			name: "args on no-arg verb",
			src:  "package p\n\n//granulint:hotpath eventually\nfunc f() {}\n",
			want: []string{"granulint:hotpath takes no arguments"},
		},
		{
			name: "ignore without anything",
			src:  "package p\n\n//granulint:ignore\nfunc f() {}\n",
			want: []string{"needs an analyzer name and a reason"},
		},
		{
			name: "ignore of unknown analyzer",
			src:  "package p\n\n//granulint:ignore nosuch because reasons\nfunc f() {}\n",
			want: []string{`names unknown analyzer "nosuch"`},
		},
		{
			name: "ignore without reason",
			src:  "package p\n\n//granulint:ignore hotpath\nfunc f() {}\n",
			want: []string{"requires a non-empty reason"},
		},
		{
			name: "the validator itself cannot be suppressed",
			src:  "package p\n\n//granulint:ignore directive hush\nfunc f() {}\n",
			want: []string{`names unknown analyzer "directive"`},
		},
		{
			name: "well-formed directives",
			src: "package p\n\n//granulint:hotpath\nfunc f() {\n" +
				"\t//granulint:ignore hotpath cold branch, justified\n\tg()\n}\nfunc g() {}\n",
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := analyzeSrc(t, analysis.Directive, tc.src)
			if len(diags) != len(tc.want) {
				t.Fatalf("got %d finding(s) %v, want %d", len(diags), messages(diags), len(tc.want))
			}
			for i, sub := range tc.want {
				if !strings.Contains(diags[i].Message, sub) {
					t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, sub)
				}
			}
		})
	}
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
