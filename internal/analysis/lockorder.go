package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// LockOrder mechanizes the stripe-ordering discipline from the sharding
// PR: any code path that holds two stripe/shard mutexes at once must
// have acquired them in ascending index order, or the stripes
// themselves can deadlock. A "stripe mutex" is a sync.Mutex or
// sync.RWMutex reached through an indexed expression (t.shards[i].mu,
// stripes[j]). The canonical sorted-acquire helpers are annotated
// //granulint:ordered and skipped; everything else must either lock
// provably ascending constant indexes or go through those helpers.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "flag code paths that acquire two stripe/shard mutexes out of " +
		"ascending index order (or unprovably ordered); annotate the " +
		"canonical sorted-acquire helpers //granulint:ordered",
	Run: runLockOrder,
}

// stripeAcq is one recorded stripe-mutex acquisition.
type stripeAcq struct {
	index    ast.Expr
	indexSrc string
	constVal constant.Value // non-nil when the index is a constant
	pos      token.Pos
}

func runLockOrder(p *Pass) error {
	p.enclosingFuncs(func(_ *ast.File, fd *ast.FuncDecl) {
		if p.FuncHasDirective(fd, "ordered") {
			return
		}
		checkLockOrder(p, fd)
	})
	return nil
}

func checkLockOrder(p *Pass, fd *ast.FuncDecl) {
	// Deferred unlocks run at return, not where they appear; they must
	// not be treated as releasing the stripe mid-function.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})

	// held tracks, per container expression ("t.shards"), the stripe
	// acquisitions currently believed held, in source order. The walk
	// is a linear pass over the body: branches are not path-separated,
	// which is deliberately conservative — a function whose lock order
	// depends on control flow should use the sorted helpers.
	held := make(map[string][]stripeAcq)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return true
		}
		if !isSyncMutex(p, sel.X) {
			return true
		}
		idx, ok := indexedBase(sel.X)
		if !ok {
			return true // not a stripe mutex (no indexing in the chain)
		}
		container := exprString(idx.X)
		acq := stripeAcq{
			index:    idx.Index,
			indexSrc: exprString(idx.Index),
			pos:      call.Pos(),
		}
		if tv, okc := p.TypesInfo.Types[idx.Index]; okc && tv.Value != nil {
			acq.constVal = tv.Value
		}
		if acquire && !deferred[call] {
			if locks := held[container]; len(locks) > 0 {
				compareStripeOrder(p, container, locks[len(locks)-1], acq)
			}
			held[container] = append(held[container], acq)
			return true
		}
		if !acquire && !deferred[call] {
			locks := held[container]
			for i := len(locks) - 1; i >= 0; i-- {
				if locks[i].indexSrc == acq.indexSrc {
					held[container] = append(locks[:i], locks[i+1:]...)
					return true
				}
			}
			// Unlock of a stripe we never saw locked (or whose index is
			// spelled differently): order knowledge for this container
			// is gone; reset rather than report nonsense downstream.
			delete(held, container)
		}
		return true
	})
}

// compareStripeOrder reports when next cannot be proven to follow prev
// in ascending stripe-index order.
func compareStripeOrder(p *Pass, container string, prev, next stripeAcq) {
	if prev.constVal != nil && next.constVal != nil {
		if constant.Compare(next.constVal, token.LSS, prev.constVal) {
			p.Reportf(next.pos,
				"stripe mutexes of %s locked out of ascending index order (%s after %s); "+
					"acquire in canonical sorted order",
				container, next.indexSrc, prev.indexSrc)
			return
		}
		if constant.Compare(next.constVal, token.EQL, prev.constVal) {
			p.Reportf(next.pos,
				"stripe %s[%s] locked twice without an intervening unlock (self-deadlock)",
				container, next.indexSrc)
		}
		return
	}
	if prev.indexSrc == next.indexSrc {
		p.Reportf(next.pos,
			"stripe %s[%s] locked twice without an intervening unlock (self-deadlock)",
			container, next.indexSrc)
		return
	}
	p.Reportf(next.pos,
		"cannot prove ascending stripe order for %s: %s locked while %s is held; "+
			"acquire through a sorted helper or annotate it //granulint:ordered",
		container, next.indexSrc, prev.indexSrc)
}

// isSyncMutex reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isSyncMutex(p *Pass, e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return typeIs(tv.Type, "sync", "Mutex") || typeIs(tv.Type, "sync", "RWMutex")
}

// indexedBase walks down a selector/pointer chain and returns the first
// index expression: for t.shards[i].mu it returns t.shards[i].
func indexedBase(e ast.Expr) (*ast.IndexExpr, bool) {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			return v, true
		default:
			return nil, false
		}
	}
}
