package yao_test

import (
	"fmt"

	"granulock/internal/yao"
)

// ExampleExpectedBlocks evaluates Yao's approximation for the paper's
// random-placement lock demand: a 250-entity transaction against 5000
// entities split into 100 granules touches nearly all granules.
func ExampleExpectedBlocks() {
	e, _ := yao.ExpectedBlocks(5000, 100, 250)
	fmt.Printf("expected granules: %.1f of 100\n", e)
	fmt.Println("locks:", yao.Locks(5000, 100, 250))
	// Output:
	// expected granules: 92.4 of 100
	// locks: 92
}
