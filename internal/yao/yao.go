// Package yao implements Yao's block-access approximation (S. B. Yao,
// "Approximating Block Accesses in Database Organizations", CACM 20(4),
// 1977), which the paper uses as the lock-demand estimator for the
// random granule-placement strategy.
//
// Given a database of n entities grouped into b equal granules, a
// transaction touching k entities selected at random (without
// replacement) accesses on average
//
//	b · (1 − C(n−n/b, k) / C(n, k))
//
// granules. The binomial ratio is evaluated as an incremental product to
// stay exact and overflow-free for the sizes the model uses (n up to
// millions).
package yao

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ExpectedBlocks returns the expected number of granules touched when k
// of n entities are chosen uniformly without replacement and the n
// entities are spread evenly over b granules.
//
// The granule size n/b is treated as a real number, so b need not divide
// n exactly; for the model's configurations (ltot dividing dbsize) the
// result coincides with Yao's exact formula. Errors are returned for
// nonsensical arguments (n < 1, b < 1, k < 0, k > n).
func ExpectedBlocks(n, b, k int) (float64, error) {
	switch {
	case n < 1:
		return 0, fmt.Errorf("yao: database size %d < 1", n)
	case b < 1:
		return 0, fmt.Errorf("yao: block count %d < 1", b)
	case k < 0:
		return 0, fmt.Errorf("yao: selection size %d < 0", k)
	case k > n:
		return 0, fmt.Errorf("yao: selection size %d exceeds database size %d", k, n)
	}
	if k == 0 {
		return 0, nil
	}
	if b == 1 {
		return 1, nil
	}
	m := float64(n) / float64(b) // entities per granule
	// missProb = C(n-m, k) / C(n, k) = prod_{i=0}^{k-1} (n-m-i)/(n-i):
	// the probability that one particular granule is untouched.
	missProb := 1.0
	for i := 0; i < k; i++ {
		num := float64(n) - m - float64(i)
		if num <= 0 {
			missProb = 0
			break
		}
		missProb *= num / (float64(n) - float64(i))
		if missProb == 0 {
			break
		}
	}
	return float64(b) * (1 - missProb), nil
}

// lockKey identifies one memoized Locks evaluation.
type lockKey struct{ n, b, k int }

// lockCache memoizes Locks across runs: parameter sweeps re-evaluate the
// same (dbsize, ltot, k) triples millions of times across grid points
// and replications, and each evaluation is an O(k) product. The cache is
// safe for the concurrent simulations of a sweep. lockCacheSize bounds
// it so a long-lived process cannot grow it without limit; the sweep
// grids fit with orders of magnitude to spare, and overflow only costs
// recomputation, never correctness.
var (
	lockCache     sync.Map // lockKey -> int
	lockCacheLen  atomic.Int64
	lockCacheSize = int64(1 << 21)
)

// Locks returns Yao's estimate rounded to a whole number of locks,
// clamped to the feasible range [1, min(k, b)]: a transaction touching at
// least one entity needs at least one lock and can never need more locks
// than granules, nor more than one lock per entity. It panics on invalid
// arguments; use ExpectedBlocks to validate first if the inputs are not
// already checked.
//
// Locks is a pure function of its arguments and memoizes its results;
// it is safe for concurrent use.
func Locks(n, b, k int) int {
	key := lockKey{n, b, k}
	if v, ok := lockCache.Load(key); ok {
		return v.(int)
	}
	locks := computeLocks(n, b, k)
	if lockCacheLen.Load() < lockCacheSize {
		if _, loaded := lockCache.LoadOrStore(key, locks); !loaded {
			lockCacheLen.Add(1)
		}
	}
	return locks
}

// computeLocks is the uncached evaluation behind Locks.
func computeLocks(n, b, k int) int {
	e, err := ExpectedBlocks(n, b, k)
	if err != nil {
		panic(err)
	}
	if k == 0 {
		return 0
	}
	locks := int(e + 0.5)
	if locks < 1 {
		locks = 1
	}
	if feasible := min(k, b); locks > feasible {
		locks = feasible
	}
	return locks
}
