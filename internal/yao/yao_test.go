package yao

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestExpectedBlocksKnownValues(t *testing.T) {
	cases := []struct {
		n, b, k int
		want    float64
	}{
		// k=0 touches nothing.
		{100, 10, 0, 0},
		// One entity touches exactly one granule.
		{100, 10, 1, 1},
		// Selecting everything touches every granule.
		{100, 10, 100, 10},
		// One granule total: any non-empty selection touches it.
		{100, 1, 37, 1},
		// n=b: granule per entity, so k entities touch k granules.
		{50, 50, 20, 20},
		// Hand-computed: n=4, b=2 (granules of 2), k=2.
		// missProb = C(2,2)/C(4,2) = 1/6; blocks = 2*(1-1/6) = 5/3.
		{4, 2, 2, 5.0 / 3.0},
		// Hand-computed: n=6, b=3 (granules of 2), k=2.
		// missProb = C(4,2)/C(6,2) = 6/15; blocks = 3*(1-0.4) = 1.8.
		{6, 3, 2, 1.8},
	}
	for _, c := range cases {
		got, err := ExpectedBlocks(c.n, c.b, c.k)
		if err != nil {
			t.Fatalf("ExpectedBlocks(%d,%d,%d) error: %v", c.n, c.b, c.k, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ExpectedBlocks(%d,%d,%d) = %v, want %v", c.n, c.b, c.k, got, c.want)
		}
	}
}

func TestExpectedBlocksErrors(t *testing.T) {
	bad := []struct{ n, b, k int }{
		{0, 1, 0}, {-5, 1, 0}, {10, 0, 1}, {10, -2, 1}, {10, 2, -1}, {10, 2, 11},
	}
	for _, c := range bad {
		if _, err := ExpectedBlocks(c.n, c.b, c.k); err == nil {
			t.Errorf("ExpectedBlocks(%d,%d,%d): want error", c.n, c.b, c.k)
		}
	}
}

func TestExpectedBlocksMonotoneInK(t *testing.T) {
	prev := 0.0
	for k := 0; k <= 200; k++ {
		got, err := ExpectedBlocks(200, 20, k)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("not monotone at k=%d: %v < %v", k, got, prev)
		}
		prev = got
	}
}

func TestExpectedBlocksBounds(t *testing.T) {
	// 0 <= result <= min(k, b) is the physical feasibility envelope
	// (equality with k only when granules hold a single entity).
	f := func(nRaw, bRaw, kRaw uint16) bool {
		n := int(nRaw)%5000 + 1
		b := int(bRaw)%n + 1
		k := int(kRaw) % (n + 1)
		got, err := ExpectedBlocks(n, b, k)
		if err != nil {
			return false
		}
		upper := math.Min(float64(k), float64(b))
		return got >= -1e-12 && got <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedBlocksLargeDatabase(t *testing.T) {
	// Stability check at paper scale and beyond: no overflow, NaN or Inf.
	got, err := ExpectedBlocks(5_000_000, 5000, 2_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || got > 5000 {
		t.Fatalf("large-scale result unstable: %v", got)
	}
	// Selecting half of a huge database should touch almost every granule.
	if got < 4999 {
		t.Fatalf("expected nearly all granules touched, got %v", got)
	}
}

func TestLocksPaperConfiguration(t *testing.T) {
	// dbsize=5000, ltot swept; the random placement of §3.5.
	// At ltot=1 every transaction needs the single lock.
	if got := Locks(5000, 1, 250); got != 1 {
		t.Fatalf("Locks(5000,1,250) = %d, want 1", got)
	}
	// At ltot=dbsize each entity is its own granule: k locks.
	if got := Locks(5000, 5000, 250); got != 250 {
		t.Fatalf("Locks(5000,5000,250) = %d, want 250", got)
	}
	// In between, the estimate lies strictly between the extremes and
	// near min(k, b) while granules remain large (random placement is
	// nearly worst placement for large transactions, §3.5).
	got := Locks(5000, 100, 250)
	if got < 90 || got > 100 {
		t.Fatalf("Locks(5000,100,250) = %d, want close to 100", got)
	}
}

func TestLocksBoundsProperty(t *testing.T) {
	f := func(nRaw, bRaw, kRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		b := int(bRaw)%n + 1
		k := int(kRaw) % (n + 1)
		got := Locks(n, b, k)
		if k == 0 {
			return got == 0
		}
		return got >= 1 && got <= min(k, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLocksPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Locks with k>n did not panic")
		}
	}()
	Locks(10, 2, 11)
}

func BenchmarkExpectedBlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = ExpectedBlocks(5000, 100, 250)
	}
}

// TestLocksMemoizedMatchesCompute verifies the memo layer is invisible:
// cached answers are identical to fresh evaluations across a grid of
// triples, including repeated queries.
func TestLocksMemoizedMatchesCompute(t *testing.T) {
	ns := []int{100, 5000}
	bs := []int{1, 7, 100, 5000}
	ks := []int{0, 1, 13, 99, 100}
	for round := 0; round < 2; round++ { // round 2 hits the cache
		for _, n := range ns {
			for _, b := range bs {
				if b > n {
					continue
				}
				for _, k := range ks {
					if k > n {
						continue
					}
					if got, want := Locks(n, b, k), computeLocks(n, b, k); got != want {
						t.Fatalf("round %d: Locks(%d,%d,%d) = %d, compute says %d", round, n, b, k, got, want)
					}
				}
			}
		}
	}
}

// TestLocksConcurrent hammers the memo from many goroutines; run with
// -race this doubles as the cache's data-race check.
func TestLocksConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= 500; k++ {
				if got, want := Locks(5000, 100, k), computeLocks(5000, 100, k); got != want {
					t.Errorf("Locks(5000,100,%d) = %d, want %d", k, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
