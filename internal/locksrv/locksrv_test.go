package locksrv

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"granulock/internal/lockmgr"
)

// startServer launches a server on an ephemeral port and returns its
// address plus a cleanup.
func startServer(t *testing.T) (string, *Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, nil)
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), srv
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func xreq(granules ...int64) []lockmgr.Request {
	out := make([]lockmgr.Request, len(granules))
	for i, g := range granules {
		out[i] = lockmgr.Request{Granule: lockmgr.Granule(g), Mode: lockmgr.ModeExclusive}
	}
	return out
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c := dial(t, addr)
	if err := c.AcquireAll(1, xreq(10, 11)); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Grants != 1 {
		t.Fatalf("grants %d", stats.Grants)
	}
	if err := c.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
}

func TestConflictBlocksAcrossConnections(t *testing.T) {
	addr, _ := startServer(t)
	holder := dial(t, addr)
	waiter := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- waiter.AcquireAll(2, xreq(5)) }()
	select {
	case err := <-done:
		t.Fatalf("conflicting claim granted remotely: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("remote waiter never granted after release")
	}
}

func TestSharedLocksCoexistRemotely(t *testing.T) {
	addr, _ := startServer(t)
	a := dial(t, addr)
	b := dial(t, addr)
	sreq := []lockmgr.Request{{Granule: 7, Mode: lockmgr.ModeShared}}
	if err := a.AcquireAll(1, sreq); err != nil {
		t.Fatal(err)
	}
	granted := make(chan error, 1)
	go func() { granted <- b.AcquireAll(2, sreq) }()
	select {
	case err := <-granted:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shared lock blocked remotely")
	}
}

func TestDisconnectReleasesLocks(t *testing.T) {
	addr, _ := startServer(t)
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(3)); err != nil {
		t.Fatal(err)
	}
	waiter := dial(t, addr)
	done := make(chan error, 1)
	go func() { done <- waiter.AcquireAll(2, xreq(3)) }()
	time.Sleep(30 * time.Millisecond)
	holder.Close() // crash the holder's session
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter after holder crash: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("holder crash did not release its locks")
	}
}

func TestServerCloseUnblocksWaiters(t *testing.T) {
	addr, srv := startServer(t)
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(9)); err != nil {
		t.Fatal(err)
	}
	waiter := dial(t, addr)
	done := make(chan error, 1)
	go func() { done <- waiter.AcquireAll(2, xreq(9)) }()
	time.Sleep(30 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Shutdown ordering races are fine (the waiter may be granted just
	// as the holder's teardown releases its locks, or see an error);
	// what must never happen is the waiter hanging forever.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("server close left waiter hanging")
	}
}

func TestProtocolErrors(t *testing.T) {
	addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)

	check := func(req Request, wantErr string) {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.OK || !strings.Contains(resp.Err, wantErr) {
			t.Fatalf("response %+v, want error containing %q", resp, wantErr)
		}
	}
	check(Request{Op: "acquire", Txn: 1}, "without granules")
	check(Request{Op: "acquire", Txn: 1, Granules: []int64{1}, Exclusive: []bool{true, false}}, "lengths differ")
	check(Request{Op: "frobnicate"}, "unknown op")
}

func TestDistributedConservationStress(t *testing.T) {
	// Many client sessions in this process behave like shared-nothing
	// workers: exclusive claims must still be mutually exclusive across
	// the wire.
	addr, _ := startServer(t)
	var inCritical [4]atomic.Int32
	var txnSeq atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				txn := txnSeq.Add(1)
				g := int64((w + i) % 4)
				if err := c.AcquireAll(txn, xreq(g)); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if inCritical[g].Add(1) != 1 {
					t.Errorf("mutual exclusion violated on granule %d", g)
				}
				inCritical[g].Add(-1)
				if err := c.ReleaseAll(txn); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerDoubleCloseAndAddr(t *testing.T) {
	addr, srv := startServer(t)
	if srv.Addr().String() != addr {
		t.Fatal("addr mismatch")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close errored")
	}
}
