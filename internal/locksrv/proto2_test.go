package locksrv

import (
	"bufio"
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func dialV2(t *testing.T, addr string, opts ...ClientOption) *ClientV2 {
	t.Helper()
	c, err := DialV2(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFrameCodecRoundTrip pins the v2 frame layout: header fields and
// body survive an encode/decode cycle, and the reader demands exact
// body consumption.
func TestFrameCodecRoundTrip(t *testing.T) {
	fb := getFrame()
	fb.start(opAcquire, 0xDEADBEEF)
	fb.appendU64(42)
	fb.appendU32(7)
	fb.appendByte(1)
	fb.finish()

	br := bufio.NewReader(bytes.NewReader(fb.bytes()))
	got, op, id, body, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	defer putFrame(got)
	if op != opAcquire || id != 0xDEADBEEF {
		t.Fatalf("header mismatch: op=%d id=%#x", op, id)
	}
	fr := frameReader{b: body}
	if fr.u64() != 42 || fr.u32() != 7 || fr.byte() != 1 {
		t.Fatal("body fields mismatch")
	}
	if !fr.done() {
		t.Fatal("reader should report exact consumption")
	}
	fr2 := frameReader{b: body}
	fr2.u64()
	if fr2.done() {
		t.Fatal("done must fail with unconsumed bytes")
	}
	putFrame(fb)
}

// TestReadFrameRejectsOversized pins the frame length guard.
func TestReadFrameRejectsOversized(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF} // length ~4GB
	_, _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw)))
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestV2AcquireReleaseRoundTrip is the basic happy path over the binary
// protocol.
func TestV2AcquireReleaseRoundTrip(t *testing.T) {
	addr, _ := startServer(t)
	c := dialV2(t, addr)

	if err := c.AcquireAll(1, xreq(10, 11)); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := c.ReleaseAll(1); err != nil {
		t.Fatalf("release: %v", err)
	}
	// Released: another txn can take the same granules.
	if err := c.AcquireAll(2, xreq(10, 11)); err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	if err := c.ReleaseAll(2); err != nil {
		t.Fatal(err)
	}
	stats, srv, err := c.FullStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Grants < 2 {
		t.Fatalf("grants = %d, want >= 2", stats.Grants)
	}
	if srv.Sessions < 1 {
		t.Fatalf("sessions = %d, want >= 1", srv.Sessions)
	}
}

// TestV2PipelinedOutOfOrder proves responses are matched by id, not
// arrival order: a blocked acquire must not hold up later requests on
// the same connection, and its response arrives after theirs.
func TestV2PipelinedOutOfOrder(t *testing.T) {
	addr, _ := startServer(t)
	holder := dialV2(t, addr)
	c := dialV2(t, addr)

	if err := holder.AcquireAll(1, xreq(100)); err != nil {
		t.Fatal(err)
	}

	blockedDone := make(chan error, 1)
	go func() { blockedDone <- c.AcquireAll(2, xreq(100)) }()

	// Wait until txn 2 is actually parked server-side.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err := holder.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Blocks >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("txn 2 never blocked")
		}
		time.Sleep(time.Millisecond)
	}

	// Later requests on the SAME pipelined connection complete while
	// txn 2 is still parked.
	var fastDone atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			txn := int64(10 + i)
			if err := c.AcquireAll(txn, xreq(int64(200+i))); err != nil {
				t.Errorf("fast acquire %d: %v", i, err)
				return
			}
			fastDone.Add(1)
			if err := c.ReleaseAll(txn); err != nil {
				t.Errorf("fast release %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	select {
	case err := <-blockedDone:
		t.Fatalf("blocked acquire completed before release: %v", err)
	default:
	}
	if fastDone.Load() != 8 {
		t.Fatalf("fast requests done = %d, want 8", fastDone.Load())
	}

	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	if err := <-blockedDone; err != nil {
		t.Fatalf("blocked acquire after release: %v", err)
	}
	if err := c.ReleaseAll(2); err != nil {
		t.Fatal(err)
	}
}

// TestV2TimeoutAndNotOwner checks the typed-error mapping across the
// binary status codes.
func TestV2TimeoutAndNotOwner(t *testing.T) {
	addr, _ := startServer(t)
	a := dialV2(t, addr)
	b := dialV2(t, addr)

	if err := a.AcquireAll(1, xreq(7)); err != nil {
		t.Fatal(err)
	}
	err := b.AcquireAllTimeout(2, xreq(7), 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if err := b.ReleaseAll(1); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("want ErrNotOwner, got %v", err)
	}
	// Unknown txn: idempotent no-op, like v1.
	if err := b.ReleaseAll(999); err != nil {
		t.Fatalf("unknown release: %v", err)
	}
	if err := a.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
}

// TestV1V2Negotiation runs both protocols against one server at once:
// the first byte routes each session, and both views of the lock table
// agree.
func TestV1V2Negotiation(t *testing.T) {
	addr, srv := startServer(t)
	v1 := dial(t, addr)
	v2 := dialV2(t, addr)

	// v2 takes a granule; v1 must see the conflict.
	if err := v2.AcquireAll(1, xreq(50)); err != nil {
		t.Fatal(err)
	}
	if err := v1.AcquireAllTimeout(2, xreq(50), 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("v1 vs v2 conflict: want ErrTimeout, got %v", err)
	}
	if err := v2.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	// And the reverse direction.
	if err := v1.AcquireAll(3, xreq(51)); err != nil {
		t.Fatal(err)
	}
	if err := v2.AcquireAllTimeout(4, xreq(51), 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("v2 vs v1 conflict: want ErrTimeout, got %v", err)
	}
	if err := v1.ReleaseAll(3); err != nil {
		t.Fatal(err)
	}

	// Both sessions counted; exactly one of them negotiated v2.
	ss := srv.serverStats()
	if ss.Sessions != 2 {
		t.Fatalf("sessions = %d, want 2", ss.Sessions)
	}
	if got := srv.om.v2Sessions.Value(); got != 1 {
		t.Fatalf("v2 sessions = %d, want 1", got)
	}
}

// TestV2BatchOps exercises acquireN/releaseN: independent sub-claims in
// one frame, per-item outcomes.
func TestV2BatchOps(t *testing.T) {
	addr, _ := startServer(t)
	holder := dialV2(t, addr)
	c := dialV2(t, addr)

	if err := holder.AcquireAll(1, xreq(300)); err != nil {
		t.Fatal(err)
	}

	outs, err := c.AcquireN([]Claim{
		{Txn: 10, Reqs: xreq(301)},
		{Txn: 11, Reqs: xreq(300), Timeout: 20 * time.Millisecond}, // conflicts → timeout
		{Txn: 12, Reqs: xreq(302, 303)},
	})
	if err != nil {
		t.Fatalf("acquireN transport: %v", err)
	}
	if outs[0] != nil {
		t.Fatalf("claim 0: %v", outs[0])
	}
	if !errors.Is(outs[1], ErrTimeout) {
		t.Fatalf("claim 1: want ErrTimeout, got %v", outs[1])
	}
	if outs[2] != nil {
		t.Fatalf("claim 2: %v", outs[2])
	}

	routs, err := c.ReleaseN([]int64{10, 12, 1})
	if err != nil {
		t.Fatalf("releaseN transport: %v", err)
	}
	if routs[0] != nil || routs[1] != nil {
		t.Fatalf("own releases failed: %v %v", routs[0], routs[1])
	}
	if !errors.Is(routs[2], ErrNotOwner) {
		t.Fatalf("foreign release: want ErrNotOwner, got %v", routs[2])
	}
	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
}

// TestV2DisconnectReleasesLocks: killing a v2 session force-releases
// its grants, same as v1.
func TestV2DisconnectReleasesLocks(t *testing.T) {
	addr, _ := startServer(t)
	c1, err := DialV2(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AcquireAll(1, xreq(77)); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2 := dialV2(t, addr)
	if err := c2.AcquireAllTimeout(2, xreq(77), 3*time.Second); err != nil {
		t.Fatalf("lock not released on disconnect: %v", err)
	}
	if err := c2.ReleaseAll(2); err != nil {
		t.Fatal(err)
	}
}

// TestV2CloseUnblocksInflight: Close from another goroutine fails a
// parked acquire with ErrClientClosed.
func TestV2CloseUnblocksInflight(t *testing.T) {
	addr, _ := startServer(t)
	holder := dialV2(t, addr)
	if err := holder.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	c, err := DialV2(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.AcquireAll(2, xreq(5)) }()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("want ErrClientClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not unblock in-flight acquire")
	}
	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
}

// TestV2TornFrames drives the binary protocol through the fault
// injector: torn mid-frame writes, partial writes across packet
// boundaries, and injected drops. The client's retry loop must converge
// and mutual exclusion must hold throughout.
func TestV2TornFrames(t *testing.T) {
	addr, _ := startServer(t)
	stats := &FaultStats{}
	cfg := FaultConfig{DropProb: 0.05, PartialWrites: true}

	const workers = 4
	const iters = 25
	var inside atomic.Int64
	var granted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialV2(addr,
				WithDialer(FaultyDialer(cfg, uint64(1000+w), stats)),
				WithRetries(50),
				WithBackoff(time.Millisecond, 4*time.Millisecond),
				WithJitterSeed(uint64(w)+1))
			if err != nil {
				t.Errorf("worker %d dial: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				txn := int64(w*1000 + i + 1)
				if err := c.AcquireAll(txn, xreq(42)); err != nil {
					t.Errorf("worker %d acquire: %v", w, err)
					return
				}
				if inside.Add(1) != 1 {
					t.Errorf("mutual exclusion violated")
				}
				granted.Add(1)
				inside.Add(-1)
				// Release may be retried past transport faults; the server
				// force-released on session death, so not_owner/no-op are
				// both impossible here only for our own live session —
				// tolerate ErrNotOwner after a reconnect race.
				if err := c.ReleaseAll(txn); err != nil && !errors.Is(err, ErrNotOwner) {
					t.Errorf("worker %d release: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if granted.Load() != workers*iters {
		t.Fatalf("grants = %d, want %d", granted.Load(), workers*iters)
	}
	if stats.Drops.Load() == 0 {
		t.Fatal("fault injector never fired; test exercised nothing")
	}
	t.Logf("faults: drops=%d partials=%d", stats.Drops.Load(), stats.PartialWrites.Load())
}

// TestV2ReconnectAfterServerSideClose: the client redials transparently
// when its connection dies underneath it.
func TestV2ReconnectAfterServerSideClose(t *testing.T) {
	addr, srv := startServer(t)
	c := dialV2(t, addr, WithRetries(5), WithBackoff(time.Millisecond, 5*time.Millisecond), WithJitterSeed(9))

	if err := c.AcquireAll(1, xreq(1)); err != nil {
		t.Fatal(err)
	}
	// Kill every live session server-side.
	srv.mu.Lock()
	for sess := range srv.sessions {
		sess.conn.Close()
	}
	srv.mu.Unlock()

	// The next call rides the retry loop onto a fresh connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.AcquireAll(2, xreq(2))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reconnected: %v", err)
		}
	}
	if c.Reconnects() == 0 {
		t.Fatal("reconnect not counted")
	}
	if err := c.ReleaseAll(2); err != nil {
		t.Fatal(err)
	}
}

// TestV2GarbageMagicRejected: a connection that sends neither '{' nor
// the v2 magic is dropped without wedging the server.
func TestV2GarbageMagicRejected(t *testing.T) {
	addr, _ := startServer(t)
	c := dialV2(t, addr)

	raw, err := defaultClientCfg(addr).dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("XXXXgarbage"))
	buf := make([]byte, 16)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("garbage protocol got a response")
	}
	raw.Close()

	// Server still serves real clients.
	if err := c.AcquireAll(1, xreq(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
}
