package locksrv

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"granulock/internal/lockmgr"
)

// memJournal records grant/release calls; failGrants makes Grant fail.
type memJournal struct {
	mu         sync.Mutex
	grants     map[lockmgr.TxnID][]lockmgr.Request
	releases   []lockmgr.TxnID
	failGrants bool
}

func newMemJournal() *memJournal {
	return &memJournal{grants: map[lockmgr.TxnID][]lockmgr.Request{}}
}

func (j *memJournal) Grant(txn lockmgr.TxnID, reqs []lockmgr.Request) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failGrants {
		return errors.New("journal poisoned")
	}
	j.grants[txn] = append([]lockmgr.Request(nil), reqs...)
	return nil
}

func (j *memJournal) Release(txn lockmgr.TxnID) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.releases = append(j.releases, txn)
	return nil
}

// startJournaledServer launches a server with j installed.
func startJournaledServer(t *testing.T, j Journal) (string, *Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, nil, WithJournal(j))
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), srv
}

func TestJournalSeesGrantAndRelease(t *testing.T) {
	j := newMemJournal()
	addr, _ := startJournaledServer(t, j)
	c := dial(t, addr)
	if err := c.AcquireAll(7, xreq(3, 4)); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	reqs := j.grants[7]
	j.mu.Unlock()
	if len(reqs) != 2 || reqs[0].Granule != 3 || reqs[1].Granule != 4 {
		t.Fatalf("journaled grant %v", reqs)
	}
	if err := c.ReleaseAll(7); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	rel := append([]lockmgr.TxnID(nil), j.releases...)
	j.mu.Unlock()
	if len(rel) != 1 || rel[0] != 7 {
		t.Fatalf("journaled releases %v", rel)
	}
}

func TestJournalGrantFailureWithdrawsClaim(t *testing.T) {
	// An unjournalable grant must never be acknowledged — and must not
	// leave the locks held.
	j := newMemJournal()
	j.failGrants = true
	addr, srv := startJournaledServer(t, j)
	c := dial(t, addr)
	err := c.AcquireAll(1, xreq(5))
	if err == nil {
		t.Fatal("acquire acknowledged despite journal failure")
	}
	if !strings.Contains(err.Error(), "grant journal") {
		t.Fatalf("error %v, want journal detail", err)
	}
	if n := srv.Table().HoldersCount(); n != 0 {
		t.Fatalf("%d holders after withdrawn grant", n)
	}
	// The claim was withdrawn, so a healthy journal grants it again.
	j.mu.Lock()
	j.failGrants = false
	j.mu.Unlock()
	if err := c.AcquireAll(1, xreq(5)); err != nil {
		t.Fatalf("retry after journal recovery: %v", err)
	}
}

func TestJournalSeesForceRelease(t *testing.T) {
	// A session dying with locks held force-releases them; the journal
	// must see the release so a restart does not report them stranded.
	j := newMemJournal()
	addr, srv := startJournaledServer(t, j)
	c := dial(t, addr)
	if err := c.AcquireAll(9, xreq(1)); err != nil {
		t.Fatal(err)
	}
	c.Close() // teardown force-releases txn 9
	deadline := 200
	for ; deadline > 0; deadline-- {
		j.mu.Lock()
		n := len(j.releases)
		j.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatal("force release never journaled")
	}
	j.mu.Lock()
	rel := j.releases[0]
	j.mu.Unlock()
	if rel != 9 {
		t.Fatalf("journaled release %d, want 9", rel)
	}
	if n := srv.Table().HoldersCount(); n != 0 {
		t.Fatalf("%d holders after teardown", n)
	}
}
