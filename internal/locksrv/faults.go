package locksrv

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/rng"
)

// ErrInjectedFault marks transport failures produced by the fault
// wrapper, so tests can tell injected faults from real ones.
var ErrInjectedFault = errors.New("locksrv: injected fault")

// FaultConfig describes the adversarial behaviour of a FaultConn. All
// probabilities are per Read/Write call; zero values inject nothing.
type FaultConfig struct {
	// DropProb tears the connection down mid-operation: reads fail
	// immediately; writes deliver a prefix of their bytes first (a torn
	// frame), modelling a crash mid-request.
	DropProb float64
	// DelayProb stalls the operation for a uniform duration in
	// (0, MaxDelay], modelling network jitter and slow peers.
	DelayProb float64
	MaxDelay  time.Duration
	// PartialWrites splits every write into several smaller writes,
	// exercising the peer's framing across packet boundaries.
	PartialWrites bool
}

// FaultStats aggregates injected-fault counts across every connection
// sharing it (a FaultyDialer wraps each redial with the same stats).
type FaultStats struct {
	Drops         atomic.Int64
	Delays        atomic.Int64
	PartialWrites atomic.Int64
}

// FaultConn wraps a net.Conn with deterministic fault injection driven
// by an rng stream: probabilistic connection drops (including torn
// mid-write drops), delays, and partial writes. Reads and writes are
// individually serialized (net.Conn allows one concurrent reader plus
// one concurrent writer; the rng source is shared under a mutex).
type FaultConn struct {
	net.Conn
	cfg   FaultConfig
	stats *FaultStats

	mu      sync.Mutex
	src     *rng.Source
	dropped bool
}

// NewFaultConn wraps conn. src drives every fault decision, so a given
// seed replays the same fault schedule; stats may be nil.
func NewFaultConn(conn net.Conn, cfg FaultConfig, src *rng.Source, stats *FaultStats) *FaultConn {
	if stats == nil {
		stats = &FaultStats{}
	}
	return &FaultConn{Conn: conn, cfg: cfg, src: src, stats: stats}
}

// decide rolls the fault dice once under the lock: whether to delay
// (and for how long) and whether to drop.
func (f *FaultConn) decide() (delay time.Duration, drop bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropped {
		return 0, true
	}
	if f.cfg.DelayProb > 0 && f.src.Bernoulli(f.cfg.DelayProb) && f.cfg.MaxDelay > 0 {
		delay = time.Duration(f.src.Float64OC() * float64(f.cfg.MaxDelay))
	}
	if f.cfg.DropProb > 0 && f.src.Bernoulli(f.cfg.DropProb) {
		f.dropped = true
		drop = true
	}
	return delay, drop
}

// chunk picks a partial-write prefix length in [1, n].
func (f *FaultConn) chunk(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return 1 + f.src.Intn(n)
}

func (f *FaultConn) Read(p []byte) (int, error) {
	delay, drop := f.decide()
	if delay > 0 {
		f.stats.Delays.Add(1)
		time.Sleep(delay)
	}
	if drop {
		f.stats.Drops.Add(1)
		f.Conn.Close()
		return 0, ErrInjectedFault
	}
	return f.Conn.Read(p)
}

func (f *FaultConn) Write(p []byte) (int, error) {
	delay, drop := f.decide()
	if delay > 0 {
		f.stats.Delays.Add(1)
		time.Sleep(delay)
	}
	if drop {
		// Torn write: deliver a strict prefix, then kill the
		// connection. The peer sees a truncated frame followed by EOF —
		// the mid-acquire disconnect case.
		f.stats.Drops.Add(1)
		n := 0
		if len(p) > 1 {
			n, _ = f.Conn.Write(p[:f.chunk(len(p)-1)])
		}
		f.Conn.Close()
		return n, ErrInjectedFault
	}
	if f.cfg.PartialWrites && len(p) > 1 {
		f.stats.PartialWrites.Add(1)
		total := 0
		for total < len(p) {
			n, err := f.Conn.Write(p[total : total+f.chunk(len(p)-total)])
			total += n
			if err != nil {
				return total, err
			}
		}
		return total, nil
	}
	return f.Conn.Write(p)
}

// FaultyDialer returns a client dialer whose every connection is
// wrapped in a FaultConn. Each redial draws a fresh sub-stream from the
// seed, so the whole reconnect history is deterministic. stats may be
// nil; when given it aggregates faults across all the dialer's
// connections.
func FaultyDialer(cfg FaultConfig, seed uint64, stats *FaultStats) func(addr string) (net.Conn, error) {
	root := rng.New(seed)
	var conns uint64
	var mu sync.Mutex
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns++
		src := root.Stream(conns)
		mu.Unlock()
		return NewFaultConn(conn, cfg, src, stats), nil
	}
}
