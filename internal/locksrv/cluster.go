package locksrv

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/ring"
)

// Cluster mode partitions the granule namespace across N lock servers
// with a static consistent-hash ring (internal/ring). Each node serves
// only its own partition: an acquire or lease for a granule owned by
// another node is answered with a redirect carrying the owner's ring
// index and address, and the cluster-aware client re-routes. Releases
// need no routing — they are transaction-scoped, and a release of an
// unknown transaction is an idempotent no-op, so the client simply
// sends them where it acquired.
//
// Failover is lease-based. Every node heartbeats its ring predecessor
// (the node it is standby for); after HeartbeatMisses consecutive
// failed probes it takes the dead node's partition over. A takeover
// opens a recovery window of RecoveryGrace during which the standby
// serves the partition in a restricted mode: lease re-asserts from
// clients (each asserting the exact grants it believes it holds on
// the dead node) are accepted and reconstruct holder state — first
// assert wins — while fresh acquires for the partition park until the
// window seals. When the window seals, unreasserted grants simply do
// not exist on the standby (the authoritative force-release: the dead
// node's table died with it, and nothing re-created the grants), late
// re-asserts fail with lease_expired, and parked acquires proceed
// against the reconstructed table.
//
// The scheme tolerates one node failure at a time: a partition fails
// over to its ring successor, and a concurrent failure of the
// successor is out of scope for the static ring (the paper's
// experiments need a failure mode, not a consensus protocol).

// ClusterConfig is the static cluster topology, identical on every
// node (and mirrored by DialCluster clients): the ordered node
// addresses, which entry is this process, and the failover timing.
type ClusterConfig struct {
	// Nodes lists every node's dial address in ring order. All nodes
	// and clients must use the same order.
	Nodes []string
	// Self is this node's index in Nodes.
	Self int
	// VNodes is the ring's virtual-point count per node; zero means
	// ring.DefaultVNodes. All nodes and clients must agree.
	VNodes int
	// HeartbeatEvery is the predecessor probe period. Zero disables
	// failure detection: the node serves its partition and honors
	// explicit BeginTakeover calls, but never initiates one.
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many consecutive probe failures condemn
	// the predecessor. Zero means 3.
	HeartbeatMisses int
	// RecoveryGrace is the lease re-assert window a takeover opens
	// before sealing the partition. Zero means 500ms.
	RecoveryGrace time.Duration
	// Dial opens heartbeat connections; nil means TCP with a 1s
	// connect timeout.
	Dial func(addr string) (net.Conn, error)
}

// clusterState is a Server's runtime cluster machinery.
type clusterState struct {
	cfg  ClusterConfig
	ring *ring.Ring

	mu        sync.Mutex
	takeovers map[int]*takeover

	monitorOnce sync.Once
	hbStop      chan struct{}
	hbWG        sync.WaitGroup
}

// takeover is one adopted partition: the recovery window and its seal.
type takeover struct {
	sealed chan struct{} // closed when the recovery window ends
}

// WithCluster puts the server in cluster mode. Without this option the
// server serves the whole granule namespace exactly as before. The
// config must be internally consistent (Self in range); a broken
// topology is a deployment bug, reported by panic at construction.
func WithCluster(cfg ClusterConfig) ServerOption {
	return func(s *Server) {
		if len(cfg.Nodes) == 0 {
			panic("locksrv: cluster config has no nodes")
		}
		if cfg.Self < 0 || cfg.Self >= len(cfg.Nodes) {
			panic("locksrv: cluster Self index out of range")
		}
		if cfg.VNodes <= 0 {
			cfg.VNodes = ring.DefaultVNodes
		}
		if cfg.HeartbeatMisses <= 0 {
			cfg.HeartbeatMisses = 3
		}
		if cfg.RecoveryGrace <= 0 {
			cfg.RecoveryGrace = 500 * time.Millisecond
		}
		if cfg.Dial == nil {
			cfg.Dial = func(addr string) (net.Conn, error) {
				return net.DialTimeout("tcp", addr, time.Second)
			}
		}
		s.cluster = &clusterState{
			cfg:       cfg,
			ring:      ring.NewWithVNodes(len(cfg.Nodes), cfg.VNodes),
			takeovers: make(map[int]*takeover),
			hbStop:    make(chan struct{}),
		}
	}
}

// ClusterStats is the snapshot of a node's cluster counters, exposed
// both here and in the wire stats (ServerStats).
type ClusterStats struct {
	Takeovers      int64 `json:"takeovers"`       // partitions adopted from dead nodes
	Reasserts      int64 `json:"reasserts"`       // transactions reconstructed from lease re-asserts
	LeaseExpired   int64 `json:"lease_expired"`   // re-asserts refused (sealed window or conflict)
	Redirects      int64 `json:"redirects"`       // requests redirected to their owning node
	ParkedAcquires int64 `json:"parked_acquires"` // acquires parked behind a recovery window
}

// ClusterStats returns the node's cluster counters; zero-valued when
// the server is not clustered.
func (s *Server) ClusterStats() ClusterStats {
	return ClusterStats{
		Takeovers:      s.om.clusterTakeovers.Value(),
		Reasserts:      s.om.clusterReasserts.Value(),
		LeaseExpired:   s.om.clusterLeaseExpired.Value(),
		Redirects:      s.om.clusterRedirects.Value(),
		ParkedAcquires: s.om.clusterParked.Value(),
	}
}

// takeoverOf returns the takeover of node's partition, or nil.
func (cl *clusterState) takeoverOf(node int) *takeover {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.takeovers[node]
}

// recoveringCount counts takeovers whose window has not sealed yet.
func (cl *clusterState) recoveringCount() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := 0
	for _, t := range cl.takeovers {
		select {
		case <-t.sealed:
		default:
			n++
		}
	}
	return n
}

// clusterAdmit routes one granule set: it returns ("", "") when this
// node serves every granule (parking first if a covering takeover's
// recovery window is still open and this is not a lease re-assert),
// or a redirect/timeout/closed outcome. Nil cluster admits everything.
func (s *Server) clusterAdmit(ctx context.Context, reqs []lockmgr.Request, reassert bool) (string, string) {
	cl := s.cluster
	if cl == nil {
		return "", ""
	}
	for {
		var wait chan struct{}
		for _, r := range reqs {
			owner := cl.ring.Owner(uint64(r.Granule))
			if owner == cl.cfg.Self {
				continue
			}
			t := cl.takeoverOf(owner)
			if t == nil {
				s.om.clusterRedirects.Inc()
				return CodeRedirect, redirectDetail(owner, cl.cfg.Nodes[owner])
			}
			select {
			case <-t.sealed:
			default:
				// Recovery window open: re-asserts pass (they are the
				// reconstruction), fresh acquires park until the seal.
				if !reassert {
					wait = t.sealed
				}
			}
		}
		if wait == nil {
			return "", ""
		}
		s.om.clusterParked.Inc()
		select {
		case <-wait:
			// Re-check from the top: other granules of the claim may
			// park behind a different window.
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.om.timeouts.Inc()
				return CodeTimeout, "acquire timed out parked behind partition recovery"
			}
			s.om.cancels.Inc()
			return CodeClosed, "session closed"
		}
	}
}

// BeginTakeover adopts node's partition: it opens the recovery window
// and, when the window seals, serves the partition normally. The
// caller is expected to be node's ring successor — the standby the
// cluster client fails over to. Returns false when the server is not
// clustered, node is this node, or the partition was already adopted.
// The heartbeat monitor calls this on probe failure; tests and
// operators may call it directly for a deterministic failover.
func (s *Server) BeginTakeover(node int) bool {
	cl := s.cluster
	if cl == nil || node == cl.cfg.Self || node < 0 || node >= len(cl.cfg.Nodes) {
		return false
	}
	cl.mu.Lock()
	if _, ok := cl.takeovers[node]; ok {
		cl.mu.Unlock()
		return false
	}
	t := &takeover{sealed: make(chan struct{})}
	cl.takeovers[node] = t
	cl.mu.Unlock()
	s.om.clusterTakeovers.Inc()
	cl.hbWG.Add(1)
	go func() {
		defer cl.hbWG.Done()
		timer := time.NewTimer(cl.cfg.RecoveryGrace)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-cl.hbStop:
			// Server closing: seal now so parked acquires unblock and
			// fail through the normal drain path.
		}
		close(t.sealed)
	}()
	return true
}

// startMonitor launches the predecessor heartbeat loop (idempotent;
// no-op for single-node rings or when HeartbeatEvery is zero).
func (cl *clusterState) startMonitor(s *Server) {
	cl.monitorOnce.Do(func() {
		n := len(cl.cfg.Nodes)
		if n < 2 || cl.cfg.HeartbeatEvery <= 0 {
			return
		}
		cl.hbWG.Add(1)
		go s.clusterMonitor()
	})
}

// stopMonitor ends the heartbeat loop and any takeover timers.
func (cl *clusterState) stopMonitor() {
	cl.mu.Lock()
	select {
	case <-cl.hbStop:
	default:
		close(cl.hbStop)
	}
	cl.mu.Unlock()
	cl.hbWG.Wait()
}

// clusterMonitor probes the ring predecessor every HeartbeatEvery and
// adopts its partition after HeartbeatMisses consecutive failures. One
// monitor per node suffices: each node is standby for exactly its
// predecessor, so the ring as a whole watches every node. The monitor
// exits once the takeover begins — under the single-failure model the
// predecessor does not come back without a full cluster restart.
func (s *Server) clusterMonitor() {
	cl := s.cluster
	defer cl.hbWG.Done()
	n := len(cl.cfg.Nodes)
	pred := (cl.cfg.Self - 1 + n) % n
	addr := cl.cfg.Nodes[pred]
	probeTimeout := 4 * cl.cfg.HeartbeatEvery
	if probeTimeout < 100*time.Millisecond {
		probeTimeout = 100 * time.Millisecond
	}
	var hb *ClientV2
	defer func() {
		if hb != nil {
			hb.Close()
		}
	}()
	tick := time.NewTicker(cl.cfg.HeartbeatEvery)
	defer tick.Stop()
	misses := 0
	for {
		select {
		case <-cl.hbStop:
			return
		case <-tick.C:
		}
		if probeV2(&hb, addr, cl.cfg.Dial, probeTimeout) == nil {
			misses = 0
			continue
		}
		misses++
		if misses >= cl.cfg.HeartbeatMisses {
			s.BeginTakeover(pred)
			return
		}
	}
}

// probeV2 performs one liveness probe: a stats round trip on a cached
// v2 connection (re-dialed on demand), bounded by timeout. Any
// failure — dial refused, transport error, or a node so wedged the
// round trip cannot complete in time — counts as a miss, and the
// cached connection is discarded so the next probe starts fresh.
func probeV2(hbp **ClientV2, addr string, dial func(string) (net.Conn, error), timeout time.Duration) error {
	hb := *hbp
	if hb == nil {
		var err error
		hb, err = DialV2(addr, WithRetries(0), WithDialer(dial))
		if err != nil {
			return err
		}
		*hbp = hb
	}
	done := make(chan error, 1)
	go func() {
		_, err := hb.Stats()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			hb.Close()
			*hbp = nil
		}
		return err
	case <-time.After(timeout):
		// Close unblocks the stats call; the buffered channel lets the
		// goroutine exit regardless.
		hb.Close()
		*hbp = nil
		return fmt.Errorf("locksrv: heartbeat probe: %w", context.DeadlineExceeded)
	}
}

// leaseCore handles one transaction of a lease assert: a refresh when
// this session already owns the transaction, a reconstruction when the
// transaction is unknown and its asserted grants are free (the
// failover path — first assert wins), lease_expired when the grants
// conflict with reconstructed or live state. Mirrors releaseCore's
// patience with a condemned predecessor session's teardown: a lease
// retried across a reconnect must not lose to its own dying session.
func (s *Server) leaseCore(ctx context.Context, sess *session, txn lockmgr.TxnID, reqs []lockmgr.Request, owned *ownedSet) (string, string) {
	if len(reqs) == 0 {
		return CodeBadRequest, "lease without granules"
	}
	if code, msg := s.clusterAdmit(ctx, reqs, true); code != "" {
		return code, msg
	}
	start := time.Now()
	var tick *time.Timer
	defer func() { stopTimer(tick) }()
	for {
		s.mu.Lock()
		owner, ok := s.owners[txn]
		s.mu.Unlock()
		if ok && owner == sess {
			return "", "" // refresh: grants already live on this session
		}
		if ok {
			if !owner.closing.Load() && time.Since(start) > ownerRaceWait {
				s.om.clusterLeaseExpired.Inc()
				return CodeLeaseExpired, fmt.Sprintf("transaction %d is granted on another live session", txn)
			}
			// Condemned (or not-yet-detected dead) predecessor: wait its
			// teardown out, then reconstruct.
		} else {
			granted, err := s.table.TryAcquireAll(txn, reqs)
			if granted {
				s.mu.Lock()
				s.owners[txn] = sess
				s.mu.Unlock()
				owned.add(txn)
				s.om.clusterReasserts.Inc()
				return "", ""
			}
			if err == nil {
				// The asserted granules are held by someone else: a
				// conflicting claim won the reconstruction race, or the
				// window sealed and fresh acquires took the granules.
				s.om.clusterLeaseExpired.Inc()
				return CodeLeaseExpired, fmt.Sprintf("transaction %d: asserted grants conflict with current holders", txn)
			}
			// ErrAlreadyHolds with no owners entry: a teardown is
			// mid-release; retry until it completes.
			if time.Since(start) > ownerRaceWait {
				s.om.clusterLeaseExpired.Inc()
				return CodeLeaseExpired, fmt.Sprintf("transaction %d: stale grants did not clear", txn)
			}
		}
		tick = resetTimer(tick, time.Millisecond)
		select {
		case <-ctx.Done():
			return CodeClosed, "session closed"
		case <-tick.C:
		}
	}
}
