package locksrv_test

import (
	"fmt"
	"net"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
)

// Example starts a lock server, claims a granule set from a client
// session and inspects the server-side counters.
func Example() {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := locksrv.NewServer(lis, nil)
	go srv.Serve()
	defer srv.Close()

	c, err := locksrv.Dial(lis.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	if err := c.AcquireAll(1, []lockmgr.Request{
		{Granule: 42, Mode: lockmgr.ModeExclusive},
		{Granule: 43, Mode: lockmgr.ModeShared},
	}); err != nil {
		panic(err)
	}
	stats, err := c.Stats()
	if err != nil {
		panic(err)
	}
	fmt.Println("grants:", stats.Grants, "blocks:", stats.Blocks)
	if err := c.ReleaseAll(1); err != nil {
		panic(err)
	}
	// Output:
	// grants: 1 blocks: 0
}
