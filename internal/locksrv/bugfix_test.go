package locksrv

import (
	"errors"
	"testing"
	"time"
)

// Regression: AcquireN/ReleaseN used to encode the whole batch into a
// single frame, which the wire rejects as connection-fatal above
// maxFrame. The client must chunk instead. maxBatchBytes is a var so
// the chunking path is cheap to exercise; the over-cap ReleaseN below
// drives a genuinely over-4MiB batch through the real limit.
func TestAcquireNChunksByteBudget(t *testing.T) {
	old := maxBatchBytes
	maxBatchBytes = 4096
	defer func() { maxBatchBytes = old }()

	addr, srv := startServer(t)
	c := dialV2(t, addr, WithRetries(0))
	const nClaims = 60
	const perClaim = 30 // 290 encoded bytes/claim → ~14 claims/frame
	claims := make([]Claim, nClaims)
	for i := range claims {
		reqs := make([]int64, perClaim)
		for j := range reqs {
			reqs[j] = int64(i*perClaim + j)
		}
		claims[i] = Claim{Txn: int64(i + 1), Reqs: xreq(reqs...)}
	}
	outs, err := c.AcquireN(claims)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != nClaims {
		t.Fatalf("%d results for %d claims", len(outs), nClaims)
	}
	for i, out := range outs {
		if out != nil {
			t.Fatalf("claim %d: %v", i, out)
		}
	}
	if n := srv.Table().LockedGranules(); n != nClaims*perClaim {
		t.Fatalf("%d granules locked, want %d", n, nClaims*perClaim)
	}
	txns := make([]int64, nClaims)
	for i := range txns {
		txns[i] = int64(i + 1)
	}
	routs, err := c.ReleaseN(txns)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range routs {
		if out != nil {
			t.Fatalf("release %d: %v", i, out)
		}
	}
	if n := srv.Table().LockedGranules(); n != 0 {
		t.Fatalf("%d granules still locked", n)
	}
}

// A single claim that cannot fit any frame is the caller's bug and is
// rejected up front rather than sent and killed by the wire.
func TestAcquireNOversizeClaimRejected(t *testing.T) {
	old := maxBatchBytes
	maxBatchBytes = 256
	defer func() { maxBatchBytes = old }()
	addr, _ := startServer(t)
	c := dialV2(t, addr, WithRetries(0))
	if _, err := c.AcquireN([]Claim{{Txn: 1, Reqs: xreq(make([]int64, 64)...)}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("want ErrBadRequest for oversize claim, got %v", err)
	}
	// The connection must survive the local rejection.
	if err := c.AcquireAll(2, xreq(1)); err != nil {
		t.Fatalf("connection unusable after oversize rejection: %v", err)
	}
}

// AcquireN must also respect the server's per-frame item cap
// (v2MaxInflight), not just the byte budget.
func TestAcquireNChunksItemCount(t *testing.T) {
	addr, srv := startServer(t)
	c := dialV2(t, addr, WithRetries(0))
	claims := make([]Claim, v2MaxInflight+40)
	for i := range claims {
		claims[i] = Claim{Txn: int64(i + 1), Reqs: xreq(int64(i))}
	}
	outs, err := c.AcquireN(claims)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out != nil {
			t.Fatalf("claim %d: %v", i, out)
		}
	}
	if n := srv.Table().LockedGranules(); n != len(claims) {
		t.Fatalf("%d granules locked, want %d", n, len(claims))
	}
}

// The honest over-cap run: 530k release txns encode to ~4.24 MiB,
// over the 4 MiB frame cap. Pre-fix this was a connection-fatal
// oversized frame; with chunking every sub-release must come back.
func TestReleaseNOverFrameCap(t *testing.T) {
	addr, _ := startServer(t)
	c := dialV2(t, addr, WithRetries(0))
	txns := make([]int64, 530_000)
	for i := range txns {
		txns[i] = int64(i + 1)
	}
	outs, err := c.ReleaseN(txns)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(txns) {
		t.Fatalf("%d results for %d txns", len(outs), len(txns))
	}
	for i, out := range outs {
		if out != nil {
			t.Fatalf("release %d: %v", i, out)
		}
	}
}

// Regression: Server.Close used to cut connections before blocked
// pipelined requests had flushed their typed "closed" errors, so
// clients saw raw transport failures. With the two-phase force, every
// in-flight request must fail promptly with ErrSessionClosed.
func TestDrainFailsPipelinedBacklogTyped(t *testing.T) {
	addr, srv := startServerOpts(t, WithGrace(50*time.Millisecond))
	holder := dialV2(t, addr, WithRetries(0))
	if err := holder.AcquireAll(1, xreq(7)); err != nil {
		t.Fatal(err)
	}
	blocked := dialV2(t, addr, WithRetries(0))
	const backlog = 24
	done := make(chan error, backlog)
	for i := 0; i < backlog; i++ {
		txn := int64(100 + i)
		go func() { done <- blocked.AcquireAll(txn, xreq(7)) }()
	}
	waitFor(t, func() bool { return srv.Table().WaitersCount() == backlog })

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	typed := 0
	for i := 0; i < backlog; i++ {
		select {
		case err := <-done:
			// A waiter may legitimately win the granule when the
			// holder's teardown releases it mid-drain; everything else
			// must carry the typed closed error, never a raw transport
			// failure.
			switch {
			case err == nil:
			case errors.Is(err, ErrSessionClosed):
				typed++
			default:
				t.Fatalf("pipelined request got %v, want ErrSessionClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("pipelined request still hanging %v after Close", time.Since(start))
		}
	}
	if typed < backlog-3 {
		t.Fatalf("only %d of %d pipelined requests saw the typed closed error", typed, backlog)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("drain with backlog took %v", e)
	}
}

// Regression: Client.Close during a retry backoff sleep used to let
// the sleep run to completion. The close must abort it immediately.
func TestCloseAbortsBackoffV1(t *testing.T) {
	addr, srv := startServer(t)
	c, err := Dial(addr, WithRetries(5), WithBackoff(5*time.Second, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AcquireAll(1, xreq(1)); err != nil {
		t.Fatal(err)
	}
	srv.Close() // kill the server so the next call lands in backoff
	done := make(chan error, 1)
	go func() { done <- c.AcquireAll(2, xreq(2)) }()
	time.Sleep(100 * time.Millisecond) // let the call reach its backoff sleep
	start := time.Now()
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("want ErrClientClosed, got %v", err)
		}
	case <-time.After(1500 * time.Millisecond):
		t.Fatalf("Close did not abort a 5s backoff sleep (waited %v)", time.Since(start))
	}
}

func TestCloseAbortsBackoffV2(t *testing.T) {
	addr, srv := startServer(t)
	c := dialV2(t, addr, WithRetries(5), WithBackoff(5*time.Second, 5*time.Second))
	if err := c.AcquireAll(1, xreq(1)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	done := make(chan error, 1)
	go func() { done <- c.AcquireAll(2, xreq(2)) }()
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("want ErrClientClosed, got %v", err)
		}
	case <-time.After(1500 * time.Millisecond):
		t.Fatalf("Close did not abort a 5s backoff sleep (waited %v)", time.Since(start))
	}
}
