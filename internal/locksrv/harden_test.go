package locksrv

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/rng"
)

// startServerOpts launches a server with options on an ephemeral port.
func startServerOpts(t *testing.T, opts ...ServerOption) (string, *Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(lis, nil, opts...)
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String(), srv
}

// TestAcquireTimeoutUnderContention pins the acceptance criterion: an
// acquire with timeout_ms set against a held granule fails with a
// timeout error within (roughly) the deadline, and leaves the table
// clean — no parked waiter, nothing held by the victim.
func TestAcquireTimeoutUnderContention(t *testing.T) {
	addr, srv := startServerOpts(t)
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	waiter := dial(t, addr)
	start := time.Now()
	err := waiter.AcquireAllTimeout(2, xreq(5), 50*time.Millisecond)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed < 40*time.Millisecond || elapsed > time.Second {
		t.Fatalf("timeout after %v, want ~50ms", elapsed)
	}
	if n := srv.Table().WaitersCount(); n != 0 {
		t.Fatalf("%d waiters parked after timeout", n)
	}
	if n := srv.Table().HeldBy(2); n != 0 {
		t.Fatalf("timed-out txn holds %d granules", n)
	}
	st := srv.Stats()
	if st.Timeouts != 1 {
		t.Fatalf("timeouts counter %d, want 1", st.Timeouts)
	}
	// The session survives a timeout: the same client retries and wins
	// after the holder releases.
	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	if err := waiter.AcquireAllTimeout(2, xreq(5), 500*time.Millisecond); err != nil {
		t.Fatalf("retry after timeout: %v", err)
	}
}

// TestZeroTimeoutWaitsIndefinitely: timeout_ms=0 is "no deadline".
func TestZeroTimeoutWaitsIndefinitely(t *testing.T) {
	addr, _ := startServerOpts(t)
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	waiter := dial(t, addr)
	done := make(chan error, 1)
	go func() { done <- waiter.AcquireAll(2, xreq(5)) }()
	select {
	case err := <-done:
		t.Fatalf("unblocked early: %v", err)
	case <-time.After(60 * time.Millisecond):
	}
	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestForeignReleaseRejected pins the cross-session release fix: a
// release for a transaction granted on another session must be refused
// and must not touch the owner's locks.
func TestForeignReleaseRejected(t *testing.T) {
	addr, srv := startServerOpts(t)
	owner := dial(t, addr)
	thief := dial(t, addr)
	if err := owner.AcquireAll(1, xreq(5, 6)); err != nil {
		t.Fatal(err)
	}
	err := thief.ReleaseAll(1)
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign release: want ErrNotOwner, got %v", err)
	}
	if n := srv.Table().HeldBy(1); n != 2 {
		t.Fatalf("owner's locks disturbed: holds %d, want 2", n)
	}
	st := srv.Stats()
	if st.ForeignReleases != 1 {
		t.Fatalf("foreign_releases %d, want 1", st.ForeignReleases)
	}
	// The owner itself may still release, and afterwards the txn id is
	// free for anyone (idempotent unknown-txn release stays OK).
	if err := owner.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	if err := thief.ReleaseAll(1); err != nil {
		t.Fatalf("release of unowned txn should be a no-op: %v", err)
	}
}

// ownerOf returns the session currently recorded as owning txn.
func ownerOf(srv *Server, txn int64) *session {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.owners[lockmgr.TxnID(txn)]
}

// TestReleaseRetryWhileOwnerTearsDown pins the transport-fault release
// retry: the send of a release dies mid-flight, the client reconnects
// and resends on a fresh session while owners[txn] still maps to the
// condemned predecessor whose teardown hasn't run. The retry must wait
// out the teardown and complete idempotently, not fail terminally with
// not_owner.
func TestReleaseRetryWhileOwnerTearsDown(t *testing.T) {
	addr, srv := startServerOpts(t)
	a := dial(t, addr)
	if err := a.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	// Condemn the owning session without yet running its teardown: the
	// exact window a retried release races.
	owner := ownerOf(srv, 1)
	if owner == nil {
		t.Fatal("no owner recorded for txn 1")
	}
	owner.closing.Store(true)
	b := dial(t, addr)
	done := make(chan error, 1)
	go func() { done <- b.ReleaseAll(1) }()
	select {
	case err := <-done:
		t.Fatalf("release resolved before the owner's teardown: %v", err)
	case <-time.After(30 * time.Millisecond):
		// Parked, as it should be.
	}
	a.Close() // the predecessor's teardown actually runs now
	if err := <-done; err != nil {
		t.Fatalf("retried release after owner teardown: %v", err)
	}
	if st := srv.Stats(); st.ForeignReleases != 0 {
		t.Fatalf("foreign_releases %d, want 0: retry misclassified", st.ForeignReleases)
	}
	waitFor(t, func() bool { return srv.Table().HoldersCount() == 0 })
}

// TestReleaseRetryBeatsDisconnectDetection: the harder form of the
// release-retry race — TCP orders nothing across connections, so the
// retry on a fresh session can reach the server before the
// predecessor's disconnect is even detected, while its owners entry
// still looks like a live peer's. The server must wait out the race
// bound instead of terminally rejecting with not_owner.
func TestReleaseRetryBeatsDisconnectDetection(t *testing.T) {
	addr, srv := startServerOpts(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte(`{"op":"acquire","txn":1,"granules":[5],"exclusive":[true]}` + "\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := raw.Read(buf); err != nil {
		t.Fatal(err)
	}
	raw.Close() // predecessor dies without releasing
	// Retry the release immediately on a fresh session, racing the
	// server's detection of the disconnect.
	b := dial(t, addr)
	if err := b.ReleaseAll(1); err != nil {
		t.Fatalf("release retry racing disconnect detection: %v", err)
	}
	if st := srv.Stats(); st.ForeignReleases != 0 {
		t.Fatalf("foreign_releases %d, want 0: retry misclassified", st.ForeignReleases)
	}
	waitFor(t, func() bool { return srv.Table().HoldersCount() == 0 })
}

// TestAcquireRetryWhileOwnerTearsDown: same window for acquire — the
// retried claim arrives while owners[txn] still maps to the condemned
// predecessor. It must wait for the predecessor's force-release and
// then be granted, and the grant must survive the predecessor's
// teardown (teardown may not strip a successor's locks).
func TestAcquireRetryWhileOwnerTearsDown(t *testing.T) {
	addr, srv := startServerOpts(t)
	a := dial(t, addr)
	if err := a.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	owner := ownerOf(srv, 1)
	if owner == nil {
		t.Fatal("no owner recorded for txn 1")
	}
	owner.closing.Store(true)
	b := dial(t, addr)
	done := make(chan error, 1)
	go func() { done <- b.AcquireAllTimeout(1, xreq(5), 2*time.Second) }()
	select {
	case err := <-done:
		t.Fatalf("retried claim resolved before the owner's teardown: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	a.Close() // teardown force-releases the predecessor's grant
	if err := <-done; err != nil {
		t.Fatalf("retried acquire after owner teardown: %v", err)
	}
	// The successor's grant is intact after the predecessor's teardown.
	waitFor(t, func() bool { return ownerOf(srv, 1) != nil && ownerOf(srv, 1) != owner })
	if n := srv.Table().HeldBy(1); n != 1 {
		t.Fatalf("successor holds %d granules after predecessor teardown, want 1", n)
	}
	if err := b.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	if n := srv.Table().HoldersCount(); n != 0 {
		t.Fatalf("%d residual holders", n)
	}
}

// TestSubMillisecondTimeoutStillTimesOut: a positive timeout below the
// wire's 1ms resolution must round up to 1ms, not truncate to 0 (which
// the protocol reads as "wait indefinitely").
func TestSubMillisecondTimeoutStillTimesOut(t *testing.T) {
	addr, _ := startServerOpts(t)
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	waiter := dial(t, addr)
	done := make(chan error, 1)
	go func() { done <- waiter.AcquireAllTimeout(2, xreq(5), 100*time.Microsecond) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("want ErrTimeout, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sub-millisecond timeout degraded to an unbounded wait")
	}
}

// TestMidAcquireDisconnectFreesQueueSlot: a client that dies while its
// claim is parked must not leave the claim in the queue (a stuck claim
// would block strict-FIFO tables and leak memory).
func TestMidAcquireDisconnectFreesQueueSlot(t *testing.T) {
	addr, srv := startServerOpts(t)
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	doomed := dial(t, addr)
	go doomed.AcquireAll(2, xreq(5)) // parks
	waitFor(t, func() bool { return srv.Table().WaitersCount() == 1 })
	doomed.Close() // dies mid-acquire
	waitFor(t, func() bool { return srv.Table().WaitersCount() == 0 })
	if n := srv.Table().HeldBy(2); n != 0 {
		t.Fatalf("dead waiter holds %d granules", n)
	}
	// The holder's session is untouched.
	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
}

// TestIdleSessionReaped: a session that goes quiet past the idle
// timeout is closed and its locks released.
func TestIdleSessionReaped(t *testing.T) {
	addr, srv := startServerOpts(t, WithIdleTimeout(50*time.Millisecond))
	idle := dial(t, addr)
	if err := idle.AcquireAll(1, xreq(3)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Table().HoldersCount() == 0 })
	st := srv.Stats()
	if st.IdleReaps != 1 {
		t.Fatalf("idle_reaps %d, want 1", st.IdleReaps)
	}
	if st.ForceReleases != 1 {
		t.Fatalf("force_releases %d, want 1", st.ForceReleases)
	}
}

// TestGracefulDrainLetsInflightFinish: during the grace period a
// blocked acquire may still be granted by a concurrent release and must
// complete normally, not be chopped off.
func TestGracefulDrainLetsInflightFinish(t *testing.T) {
	addr, srv := startServerOpts(t, WithGrace(2*time.Second))
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(9)); err != nil {
		t.Fatal(err)
	}
	waiter := dial(t, addr)
	granted := make(chan error, 1)
	go func() { granted <- waiter.AcquireAll(2, xreq(9)) }()
	waitFor(t, func() bool { return srv.Table().WaitersCount() == 1 })

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	time.Sleep(30 * time.Millisecond) // drain has begun; waiter still parked
	if err := holder.ReleaseAll(1); err == nil {
		// The release may or may not get through depending on whether
		// the holder's read-side shutdown won the race; either way the
		// holder's teardown releases granule 9.
		_ = err
	}
	if err := <-granted; err != nil {
		t.Fatalf("in-flight acquire chopped during grace: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
	if n := srv.Table().HoldersCount(); n != 0 {
		t.Fatalf("%d residual holders after drain", n)
	}
}

// TestDrainForceReleasesAfterGrace: a waiter that can never be granted
// is force-cancelled when the grace expires, with code "closed", and
// the table ends clean.
func TestDrainForceReleasesAfterGrace(t *testing.T) {
	addr, srv := startServerOpts(t, WithGrace(50*time.Millisecond))
	holder := dial(t, addr)
	if err := holder.AcquireAll(1, xreq(9)); err != nil {
		t.Fatal(err)
	}
	waiter := dial(t, addr)
	granted := make(chan error, 1)
	go func() { granted <- waiter.AcquireAll(2, xreq(9)) }()
	waitFor(t, func() bool { return srv.Table().WaitersCount() == 1 })
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("drain took %v with 50ms grace", e)
	}
	<-granted // closed-error or transport error; must not hang
	if n := srv.Table().HoldersCount(); n != 0 {
		t.Fatalf("%d residual holders after forced drain", n)
	}
	if n := srv.Table().WaitersCount(); n != 0 {
		t.Fatalf("%d residual waiters after forced drain", n)
	}
}

// TestDrainUnderConcurrentLoad drains while many workers are mid-flight
// and checks the invariant the whole PR exists for: after Close, no
// session's locks survive.
func TestDrainUnderConcurrentLoad(t *testing.T) {
	addr, srv := startServerOpts(t, WithGrace(200*time.Millisecond))
	var txnSeq atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, WithRetries(0))
			if err != nil {
				return // server may already be draining
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				txn := txnSeq.Add(1)
				if err := c.AcquireAllTimeout(txn, xreq(int64(w%4), int64(4+w%3)), 100*time.Millisecond); err != nil {
					if errors.Is(err, ErrTimeout) {
						continue
					}
					return // drain reached this session
				}
				c.ReleaseAll(txn)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let load build
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if n := srv.Table().HoldersCount(); n != 0 {
		t.Fatalf("%d residual holders after drain under load", n)
	}
	if n := srv.Table().WaitersCount(); n != 0 {
		t.Fatalf("%d residual waiters after drain under load", n)
	}
}

// TestStatsSchema: the extended stats op reports sessions, outcome
// counters and wait quantiles.
func TestStatsSchema(t *testing.T) {
	addr, _ := startServerOpts(t)
	a := dial(t, addr)
	b := dial(t, addr)
	if err := a.AcquireAll(1, xreq(5)); err != nil {
		t.Fatal(err)
	}
	if err := b.AcquireAllTimeout(2, xreq(5), 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	table, srvStats, err := a.FullStats()
	if err != nil {
		t.Fatal(err)
	}
	if table.Grants < 1 {
		t.Fatalf("table grants %d", table.Grants)
	}
	if srvStats.Sessions != 2 {
		t.Fatalf("sessions %d, want 2", srvStats.Sessions)
	}
	if srvStats.Grants != 1 || srvStats.Timeouts != 1 {
		t.Fatalf("grants/timeouts %d/%d, want 1/1", srvStats.Grants, srvStats.Timeouts)
	}
	if srvStats.Holders != 1 || srvStats.LockedGranules != 1 {
		t.Fatalf("holders/granules %d/%d, want 1/1", srvStats.Holders, srvStats.LockedGranules)
	}
	if srvStats.WaitSamples != 2 {
		t.Fatalf("wait samples %d, want 2", srvStats.WaitSamples)
	}
	// The timed-out acquire waited ~30ms; P99 must reflect it.
	if srvStats.WaitP99MS < 20 {
		t.Fatalf("wait P99 %.2fms, want >= 20ms", srvStats.WaitP99MS)
	}
}

// TestClientReconnectsThroughFaults: a client behind a dropping, slow
// transport completes every transaction via reconnect + backoff, and
// the server's table never strands a granule.
func TestClientReconnectsThroughFaults(t *testing.T) {
	addr, srv := startServerOpts(t)
	var fs FaultStats
	c, err := Dial(addr,
		WithDialer(FaultyDialer(FaultConfig{
			DropProb:      0.05,
			DelayProb:     0.2,
			MaxDelay:      2 * time.Millisecond,
			PartialWrites: true,
		}, 42, &fs)),
		WithRetries(50),
		WithBackoff(time.Millisecond, 10*time.Millisecond),
		WithJitterSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for txn := int64(1); txn <= 100; txn++ {
		if err := c.AcquireAll(txn, xreq(txn%7)); err != nil {
			t.Fatalf("txn %d acquire: %v", txn, err)
		}
		if err := c.ReleaseAll(txn); err != nil {
			t.Fatalf("txn %d release: %v", txn, err)
		}
	}
	if fs.Drops.Load() == 0 {
		t.Fatal("fault schedule injected no drops; test proves nothing")
	}
	if c.Reconnects() == 0 {
		t.Fatal("client never reconnected despite drops")
	}
	// Whatever was granted mid-drop was force-released server-side.
	waitFor(t, func() bool { return srv.Table().HoldersCount() == 0 })
}

// TestRetryBudgetExhausted: with the server gone, the client gives up
// after its budget and surfaces the transport error.
func TestRetryBudgetExhausted(t *testing.T) {
	addr, srv := startServerOpts(t)
	c := dial(t, addr)
	srv.Close()
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.retries = 3
	err := c.AcquireAll(1, xreq(1))
	if err == nil {
		t.Fatal("acquire succeeded against a closed server")
	}
	if len(slept) != 3 {
		t.Fatalf("%d backoff sleeps, want 3", len(slept))
	}
	// Capped exponential with jitter in [d/2, d): each sleep lies in
	// the envelope for its attempt.
	base, max := c.backoffBase, c.backoffMax
	for i, d := range slept {
		want := base << uint(i)
		if want > max {
			want = max
		}
		if d < want/2 || d >= want+1 {
			t.Fatalf("sleep %d = %v outside [%v, %v)", i, d, want/2, want)
		}
	}
}

// TestBackoffDeterminism: the jitter stream is deterministic per seed.
func TestBackoffDeterminism(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		c := &Client{clientCfg: clientCfg{backoffBase: 10 * time.Millisecond, backoffMax: time.Second, jitter: rng.New(seed)}}
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.backoffDelay(i)
		}
		return out
	}
	a, b := mk(3), mk(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
	diff := false
	for i, d := range mk(4) {
		if d != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestFaultConnDeterminism: the same seed replays the same fault
// schedule; partial writes still deliver every byte.
func TestFaultConnDeterminism(t *testing.T) {
	run := func(seed uint64) (string, int64) {
		a, b := net.Pipe()
		defer b.Close()
		var fs FaultStats
		fc := NewFaultConn(a, FaultConfig{PartialWrites: true}, rng.New(seed), &fs)
		got := make(chan string, 1)
		go func() {
			buf := make([]byte, 64)
			total := 0
			for total < 11 {
				n, err := b.Read(buf[total:])
				total += n
				if err != nil {
					break
				}
			}
			got <- string(buf[:total])
		}()
		if _, err := fc.Write([]byte("hello world")); err != nil {
			t.Fatal(err)
		}
		fc.Close()
		return <-got, fs.PartialWrites.Load()
	}
	msg, parts := run(9)
	if msg != "hello world" {
		t.Fatalf("partial writes corrupted payload: %q", msg)
	}
	if parts != 1 {
		t.Fatalf("partial-write counter %d, want 1", parts)
	}
	msg2, _ := run(9)
	if msg2 != msg {
		t.Fatal("same seed, different delivery")
	}
}

// TestFaultConnTornWriteReleasesServerSide: a torn frame followed by a
// dead connection must end the session and release its grants — the
// strongest mid-acquire disconnect case.
func TestFaultConnTornWriteReleasesServerSide(t *testing.T) {
	addr, srv := startServerOpts(t)
	// Raw conn so the test controls exactly what goes on the wire.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte(`{"op":"acquire","txn":1,"granules":[5],"exclusive":[true]}` + "\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := raw.Read(buf); err != nil {
		t.Fatal(err)
	}
	if srv.Table().HeldBy(1) != 1 {
		t.Fatal("acquire not granted")
	}
	// Torn frame: half a request, then death.
	if _, err := raw.Write([]byte(`{"op":"rel`)); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	waitFor(t, func() bool { return srv.Table().HoldersCount() == 0 })
	st := srv.Stats()
	if st.ForceReleases != 1 {
		t.Fatalf("force_releases %d, want 1", st.ForceReleases)
	}
}

// waitFor polls cond until true or a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
