package locksrv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// errBadFrame is the connection-fatal framing failure; readFrame wraps
// it with the offending length. It chains to ErrMalformedReply so
// callers match the taxonomy with errors.Is.
var errBadFrame = fmt.Errorf("%w: bad frame length", ErrMalformedReply)

// Wire protocol v2: length-prefixed binary frames with request ids, so
// requests pipeline and responses may return out of order. A v2 client
// announces itself by sending the 4-byte magic "GLK2" immediately after
// connecting; the server tells the protocols apart by the first byte
// ('{' can only open a v1 JSON request). After the magic, the
// connection carries nothing but frames in both directions:
//
//	uint32 BE  payload length (not counting these 4 bytes)
//	byte       op (request) or status (response)
//	uint64 BE  request id, echoed verbatim in the response
//	...        op-specific body
//
// The header is fixed-width — no varints — so framing never depends on
// body contents and a reader can skip a frame it does not understand.
// Bodies use fixed-width big-endian integers throughout; only the
// "stats" response carries JSON (the stats schema is shared with v1 and
// changes more often than the hot-path ops).
//
// See docs/LOCKSRV.md for the full layout of every op.
const protoMagic = "GLK2"

// v2 request ops.
const (
	opAcquire  = 1 // txn(8) timeout_ms(8) n(4) then n × (granule(8) mode(1))
	opRelease  = 2 // txn(8)
	opStats    = 3 // empty body
	opAcquireN = 4 // k(4) then k × acquire bodies
	opReleaseN = 5 // k(4) then k × txn(8)
	opLease    = 6 // lease(8) k(4) then k × (txn(8) n(4) n × (granule(8) mode(1)))
)

// v2 response statuses. statusOK covers batch responses too: the frame
// succeeded even when individual sub-ops failed (their statuses travel
// in the body).
const (
	statusOK         = 0
	statusTimeout    = 1
	statusClosed     = 2
	statusNotOwner   = 3
	statusBadRequest = 4
	statusUnknownOp  = 5
	// statusRedirect: the granule set is served by another cluster node.
	// The body is the redirect detail "node addr" (decimal ring index, a
	// space, then the node's dial address) — text, so it travels equally
	// in a v1 Response.Err and a batch sub-item message.
	statusRedirect = 6
	// statusLeaseExpired: a lease re-assert arrived after the recovery
	// window sealed, or the asserted grants conflict with grants already
	// reconstructed — the transaction's locks are gone.
	statusLeaseExpired = 7
)

// statusToCode maps a v2 status byte onto the shared v1 error taxonomy.
func statusToCode(st byte) string {
	switch st {
	case statusOK:
		return ""
	case statusTimeout:
		return CodeTimeout
	case statusClosed:
		return CodeClosed
	case statusNotOwner:
		return CodeNotOwner
	case statusBadRequest:
		return CodeBadRequest
	case statusRedirect:
		return CodeRedirect
	case statusLeaseExpired:
		return CodeLeaseExpired
	default:
		return CodeUnknownOp
	}
}

// codeToStatus is the inverse of statusToCode; unknown codes map to
// statusUnknownOp.
func codeToStatus(code string) byte {
	switch code {
	case "":
		return statusOK
	case CodeTimeout:
		return statusTimeout
	case CodeClosed:
		return statusClosed
	case CodeNotOwner:
		return statusNotOwner
	case CodeBadRequest:
		return statusBadRequest
	case CodeRedirect:
		return statusRedirect
	case CodeLeaseExpired:
		return statusLeaseExpired
	default:
		return statusUnknownOp
	}
}

// frameHeader is the fixed header length after the 4-byte length prefix:
// op/status byte plus the 8-byte request id.
const frameHeader = 1 + 8

// maxFrame bounds a frame payload so a corrupt or hostile length prefix
// cannot make a reader allocate unbounded memory.
const maxFrame = 4 << 20

// frameBuf is a pooled, reusable frame being built or read. The first 4
// bytes are always the length prefix, so a finished frame is written to
// the connection with a single Write.
type frameBuf struct {
	b []byte
}

var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 256)} }}

//granulint:hotpath
func getFrame() *frameBuf { return framePool.Get().(*frameBuf) }

//granulint:hotpath
func putFrame(f *frameBuf) { f.b = f.b[:0]; framePool.Put(f) }

// start begins a frame with the given op/status and request id, leaving
// the length prefix to be patched by finish.
//
//granulint:hotpath
func (f *frameBuf) start(op byte, id uint64) {
	f.b = append(f.b[:0], 0, 0, 0, 0, op)
	f.b = binary.BigEndian.AppendUint64(f.b, id)
}

// finish patches the length prefix; the frame is ready to write.
//
//granulint:hotpath
func (f *frameBuf) finish() {
	binary.BigEndian.PutUint32(f.b[:4], uint32(len(f.b)-4))
}

// bytes returns the wire form (length prefix included).
//
//granulint:hotpath
func (f *frameBuf) bytes() []byte { return f.b }

//granulint:hotpath
func (f *frameBuf) appendU64(v uint64) { f.b = binary.BigEndian.AppendUint64(f.b, v) }

//granulint:hotpath
func (f *frameBuf) appendU32(v uint32) { f.b = binary.BigEndian.AppendUint32(f.b, v) }

//granulint:hotpath
func (f *frameBuf) appendByte(v byte) { f.b = append(f.b, v) }

//granulint:hotpath
func (f *frameBuf) appendBytes(p []byte) {
	f.b = append(f.b, p...)
}

// readFrame reads one frame into a pooled frameBuf. On success the
// returned body aliases the frameBuf; the caller must putFrame it when
// done. A torn frame (short header, short payload, oversized length)
// returns an error — connection-fatal, as framing is lost.
//
//granulint:hotpath
func readFrame(r *bufio.Reader) (fb *frameBuf, op byte, id uint64, body []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < frameHeader || n > maxFrame {
		//granulint:ignore hotpath connection-fatal cold branch; framing is already lost, the caller tears the conn down
		return nil, 0, 0, nil, fmt.Errorf("%w %d", errBadFrame, n)
	}
	fb = getFrame()
	if cap(fb.b) < int(n) {
		fb.b = make([]byte, n)
	}
	fb.b = fb.b[:n]
	if _, err = io.ReadFull(r, fb.b); err != nil {
		putFrame(fb)
		return nil, 0, 0, nil, err
	}
	op = fb.b[0]
	id = binary.BigEndian.Uint64(fb.b[1:9])
	return fb, op, id, fb.b[frameHeader:], nil
}

// frameReader is a cursor over a frame body for fixed-width decoding.
type frameReader struct {
	b   []byte
	off int
	bad bool
}

//granulint:hotpath
func (r *frameReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

//granulint:hotpath
func (r *frameReader) u32() uint32 {
	if r.off+4 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

//granulint:hotpath
func (r *frameReader) byte() byte {
	if r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

//granulint:hotpath
func (r *frameReader) take(n int) []byte {
	if n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// done reports whether the body was consumed exactly and without
// overruns — trailing garbage is as malformed as a short body.
//
//granulint:hotpath
func (r *frameReader) done() bool { return !r.bad && r.off == len(r.b) }
