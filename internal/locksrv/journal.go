package locksrv

import (
	"fmt"

	"granulock/internal/lockmgr"
)

// Journal observes the served table's durable lock-state transitions: a
// grant journals the transaction's full request set before the grant is
// acknowledged, a release journals the transaction's end. A restarted
// server replays the journal to learn which grants were outstanding
// when it died (the sessions holding them are gone, so the locks are
// reported, not re-granted) and then starts a fresh epoch.
//
// Grant runs on the acquire path before the client sees success, so an
// implementation backed by a group-commit write-ahead log makes the
// grant durable exactly once per flush. A Grant error fails the acquire
// (the claim is withdrawn and the client gets CodeUnavailable) — an
// unjournalable grant must never be acknowledged. Release errors are
// swallowed: the table state has already changed, and a poisoned
// journal will surface on the next Grant anyway.
//
// Methods must be safe for concurrent use. Cluster-recovery grants
// (lease re-asserts after a takeover) bypass the acquire path and are
// not journaled.
type Journal interface {
	Grant(txn lockmgr.TxnID, reqs []lockmgr.Request) error
	Release(txn lockmgr.TxnID) error
}

// WithJournal installs j on the server: every acquire journals its
// grant before acknowledging, every release (explicit, idle-reap, or
// session-teardown force release) journals the transaction's end.
func WithJournal(j Journal) ServerOption {
	return func(s *Server) { s.journal = j }
}

// journalGrant runs the grant through the journal, undoing the table
// grant if the journal refuses. Called without s.mu held (journal
// writes block for a log flush) and before ownership is recorded, so
// failure leaves no trace of the transaction.
func (s *Server) journalGrant(txn lockmgr.TxnID, reqs []lockmgr.Request) (string, string) {
	if s.journal == nil {
		return "", ""
	}
	if err := s.journal.Grant(txn, reqs); err != nil {
		s.table.ReleaseAll(txn)
		return CodeUnavailable, fmt.Sprintf("grant journal: %v", err)
	}
	return "", ""
}

// journalRelease records a transaction's end, best-effort (see Journal).
func (s *Server) journalRelease(txn lockmgr.TxnID) {
	if s.journal == nil {
		return
	}
	s.journal.Release(txn)
}
