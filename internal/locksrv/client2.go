package locksrv

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
)

// errConnLost is the internal transport-retry signal for a request that
// raced a connection teardown.
var errConnLost = errors.New("locksrv: connection lost")

// ClientV2 speaks the binary pipelined protocol. Unlike the v1 Client,
// its methods ARE safe for concurrent use: calls from many goroutines
// multiplex over one connection, each tagged with a request id, and
// responses are matched back as they arrive — out of order when the
// server completes them out of order. That multiplexing is the whole
// point: N concurrent calls cost one connection and, thanks to write
// coalescing on both sides, far fewer than 2N syscalls.
//
// Transport fault handling mirrors the v1 client: a dead connection
// fails every in-flight call with a transport error, and each call
// retries on a fresh connection (single-flight redial) with capped
// exponential backoff and deterministic jitter, up to the retry budget.
// Retrying is safe for the same reason as in v1 — a dead session's
// grants are force-released by the server. Lock-protocol errors
// (timeout, not_owner, bad_request) are returned typed and never
// retried.
type ClientV2 struct {
	cfg clientCfg

	// mu guards the connection state and the pending map. The write
	// path is a per-connection writer goroutine fed through wch: callers
	// enqueue frames, the writer copies them into a bufio buffer and
	// flushes only when the queue runs dry, so a burst of concurrent
	// calls becomes one syscall. (Flushing inline from the caller cannot
	// coalesce on few CPUs: the sender reaches its own flush before the
	// next sender has run at all.)
	mu      sync.Mutex
	conn    net.Conn
	wch     chan *frameBuf // current connection's writer queue
	wdone   chan struct{}  // closed when the current connection dies
	gen     uint64         // bumped on every (re)connect; stale failures are ignored
	pending map[uint64]chan v2Reply
	closed  bool
	everUp  bool // a connection has succeeded before (reconnect accounting)
	// closeCh is closed exactly once by Close; backoff sleeps select on
	// it so Close aborts a reconnect backoff immediately.
	closeCh chan struct{}

	// dialMu single-flights redials so a burst of failed calls does not
	// stampede the server with parallel dials.
	dialMu sync.Mutex

	idSeq atomic.Uint64

	reconnects atomic.Int64
	retried    atomic.Int64
}

// v2Reply is one matched response: a status byte plus its body, or a
// transport error.
type v2Reply struct {
	status byte
	body   []byte // copied out of the frame buffer; nil unless needed
	err    error
}

// replyChPool recycles the one-shot channels calls wait on. A channel
// goes back to the pool only after its single value was consumed, so a
// pooled channel is always empty.
var replyChPool = sync.Pool{New: func() any { return make(chan v2Reply, 1) }}

// DialV2 connects to a lock server speaking protocol v2. It accepts the
// same options as Dial.
func DialV2(addr string, opts ...ClientOption) (*ClientV2, error) {
	c := &ClientV2{
		cfg:     defaultClientCfg(addr),
		pending: make(map[uint64]chan v2Reply),
		closeCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(&c.cfg)
	}
	if _, err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// ensureConn returns the generation of a live connection, dialing one
// if needed. Dials are single-flighted: concurrent callers wait for the
// first dial instead of racing their own.
func (c *ClientV2) ensureConn() (uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClientClosed
	}
	if c.conn != nil {
		gen := c.gen
		c.mu.Unlock()
		return gen, nil
	}
	c.mu.Unlock()

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// Re-check under the dial lock: another caller may have connected.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClientClosed
	}
	if c.conn != nil {
		gen := c.gen
		c.mu.Unlock()
		return gen, nil
	}
	c.mu.Unlock()

	conn, err := c.cfg.dial(c.cfg.addr)
	if err != nil {
		return 0, fmt.Errorf("locksrv: dial: %w", err)
	}
	if _, err := conn.Write([]byte(protoMagic)); err != nil {
		conn.Close()
		return 0, fmt.Errorf("locksrv: send magic: %w", err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return 0, ErrClientClosed
	}
	c.conn = conn
	c.wch = make(chan *frameBuf, v2MaxInflight)
	c.wdone = make(chan struct{})
	c.gen++
	gen := c.gen
	wch, wdone := c.wch, c.wdone
	if c.everUp {
		c.reconnects.Add(1)
		if c.cfg.mReconnects != nil {
			c.cfg.mReconnects.Inc()
		}
	}
	c.everUp = true
	c.mu.Unlock()
	go c.readLoop(conn, gen)
	go c.writeLoop(conn, wch, wdone, gen)
	return gen, nil
}

// writeLoop owns one connection's write side: it drains queued frames
// into a buffered writer and flushes only when the queue is empty — the
// syscall count tracks bursts, not frames.
func (c *ClientV2) writeLoop(conn net.Conn, wch chan *frameBuf, wdone chan struct{}, gen uint64) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		select {
		case fb := <-wch:
			_, err := bw.Write(fb.bytes())
			putFrame(fb)
			if err == nil && len(wch) == 0 {
				// An enqueueing caller hands the scheduler straight to
				// this goroutine, so the queue can look empty while the
				// rest of a burst is runnable but hasn't run; yield one
				// scheduler round before paying the flush syscall.
				runtime.Gosched()
			}
			if err == nil && len(wch) == 0 {
				err = bw.Flush()
			}
			if err != nil {
				c.failConn(gen, fmt.Errorf("locksrv: send: %w", err))
				// failConn closed wdone; fall through to the drain below
				// on the next iteration.
			}
		case <-wdone:
			for {
				select {
				case fb := <-wch:
					putFrame(fb)
				default:
					return
				}
			}
		}
	}
}

// readLoop owns one connection's read side: it matches response frames
// to pending calls until the connection dies, then fails whatever is
// still in flight.
func (c *ClientV2) readLoop(conn net.Conn, gen uint64) {
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		fb, status, id, body, err := readFrame(br)
		if err != nil {
			c.failConn(gen, fmt.Errorf("locksrv: receive: %w", err))
			return
		}
		var bodyCopy []byte
		if len(body) > 0 {
			bodyCopy = append([]byte(nil), body...)
		}
		putFrame(fb)
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- v2Reply{status: status, body: bodyCopy}
		}
	}
}

// failConn tears down the generation's connection (if still current)
// and fails every in-flight call with a transport error, which their
// retry loops handle.
func (c *ClientV2) failConn(gen uint64, err error) {
	c.mu.Lock()
	if c.gen != gen || c.conn == nil {
		c.mu.Unlock()
		return // already superseded
	}
	conn := c.conn
	c.conn = nil
	c.wch = nil
	wdone := c.wdone
	c.wdone = nil
	calls := c.pending
	c.pending = make(map[uint64]chan v2Reply)
	c.mu.Unlock()
	close(wdone)
	conn.Close()
	for _, ch := range calls {
		ch <- v2Reply{err: err}
	}
}

// send registers the call and hands its frame to the connection's
// writer. Ownership of fb passes to send.
func (c *ClientV2) send(gen, id uint64, fb *frameBuf, ch chan v2Reply) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putFrame(fb)
		return ErrClientClosed
	}
	if c.conn == nil || c.gen != gen {
		c.mu.Unlock()
		putFrame(fb)
		return errConnLost
	}
	c.pending[id] = ch
	wch, wdone := c.wch, c.wdone
	c.mu.Unlock()
	select {
	case wch <- fb:
		return nil
	case <-wdone:
		// The connection died between registration and enqueue; failConn
		// already failed (or will fail) the registered channel, so the
		// caller still gets its transport error from ch.
		putFrame(fb)
		return nil
	}
}

// roundTrip2 performs one request with transport retries. build encodes
// the request body into the supplied frame (already started).
func (c *ClientV2) roundTrip2(op byte, build func(fb *frameBuf)) (v2Reply, error) {
	var lastErr error
	timer := newSleeper(c.cfg.sleep, c.closeCh)
	defer timer.stop()
	for attempt := 0; attempt <= c.cfg.retries; attempt++ {
		if c.isClosed() {
			if lastErr != nil {
				return v2Reply{}, fmt.Errorf("%w (after: %v)", ErrClientClosed, lastErr)
			}
			return v2Reply{}, ErrClientClosed
		}
		if attempt > 0 {
			c.retried.Add(1)
			if c.cfg.mRetries != nil {
				c.cfg.mRetries.Inc()
			}
			timer.sleep(c.backoffDelay(attempt - 1))
		}
		gen, err := c.ensureConn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return v2Reply{}, err
			}
			lastErr = err
			continue
		}
		id := c.idSeq.Add(1)
		ch := replyChPool.Get().(chan v2Reply)
		fb := getFrame()
		fb.start(op, id)
		build(fb)
		fb.finish()
		if err := c.send(gen, id, fb, ch); err != nil {
			// send failed before registering the call: ch is still empty.
			replyChPool.Put(ch)
			if errors.Is(err, ErrClientClosed) {
				return v2Reply{}, err
			}
			lastErr = err
			continue
		}
		reply := <-ch
		replyChPool.Put(ch)
		if reply.err != nil {
			lastErr = reply.err
			continue
		}
		return reply, nil
	}
	return v2Reply{}, fmt.Errorf("locksrv: retry budget exhausted after %d attempts: %w", c.cfg.retries+1, lastErr)
}

// backoffDelay mirrors Client.backoffDelay. The jitter source is not
// concurrency-safe, so draws are serialized under mu.
func (c *ClientV2) backoffDelay(attempt int) time.Duration {
	d := c.cfg.backoffBase
	for i := 0; i < attempt && d < c.cfg.backoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.backoffMax {
		d = c.cfg.backoffMax
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	c.mu.Lock()
	j := c.cfg.jitter.Intn(int(half) + 1)
	c.mu.Unlock()
	return half + time.Duration(j)
}

func (c *ClientV2) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// sleeper wraps the backoff sleep: the test seam if set, else one
// reusable timer per call site (per roundTrip, not per attempt). A
// close of done aborts a sleep in progress, so Close does not wait out
// a reconnect backoff.
type sleeper struct {
	seam  func(time.Duration)
	done  <-chan struct{}
	timer *time.Timer
}

func newSleeper(seam func(time.Duration), done <-chan struct{}) *sleeper {
	return &sleeper{seam: seam, done: done}
}

func (s *sleeper) sleep(d time.Duration) {
	if s.seam != nil {
		s.seam(d)
		return
	}
	if d <= 0 {
		return
	}
	if s.timer == nil {
		s.timer = time.NewTimer(d)
	} else {
		// The timer was always left fired-and-drained or
		// stopped-and-drained by the select below, so Reset is safe.
		s.timer.Reset(d)
	}
	select {
	case <-s.timer.C:
	case <-s.done:
		if !s.timer.Stop() {
			<-s.timer.C
		}
	}
}

func (s *sleeper) stop() {
	if s.timer != nil {
		s.timer.Stop()
	}
}

// replyErr maps a v2 status onto the shared typed-error taxonomy.
func replyErr(op string, r v2Reply) error {
	if r.status == statusOK {
		return nil
	}
	return respErr(op, Response{Code: statusToCode(r.status), Err: string(r.body)})
}

// appendAcquireBody encodes one acquire body onto fb.
func appendAcquireBody(fb *frameBuf, txn int64, reqs []lockmgr.Request, timeoutMS int64) {
	fb.appendU64(uint64(txn))
	fb.appendU64(uint64(timeoutMS))
	fb.appendU32(uint32(len(reqs)))
	for _, r := range reqs {
		fb.appendU64(uint64(r.Granule))
		if r.Mode == lockmgr.ModeExclusive {
			fb.appendByte(1)
		} else {
			fb.appendByte(0)
		}
	}
}

// wireTimeoutMS rounds a sub-millisecond timeout up to the wire's 1ms
// resolution; 0 means wait indefinitely.
func wireTimeoutMS(timeout time.Duration) int64 {
	ms := int64(timeout / time.Millisecond)
	if timeout > 0 && ms == 0 {
		ms = 1
	}
	return ms
}

// AcquireAll conservatively claims the lock set for txn, blocking until
// granted. Safe for concurrent use; concurrent calls pipeline.
func (c *ClientV2) AcquireAll(txn int64, reqs []lockmgr.Request) error {
	return c.AcquireAllTimeout(txn, reqs, 0)
}

// AcquireAllTimeout is AcquireAll with a wait deadline, mirroring the
// v1 client's semantics (ErrTimeout on expiry, nothing held).
func (c *ClientV2) AcquireAllTimeout(txn int64, reqs []lockmgr.Request, timeout time.Duration) error {
	ms := wireTimeoutMS(timeout)
	reply, err := c.roundTrip2(opAcquire, func(fb *frameBuf) {
		appendAcquireBody(fb, txn, reqs, ms)
	})
	if err != nil {
		return err
	}
	return replyErr("acquire", reply)
}

// ReleaseAll releases everything txn holds. Semantics match the v1
// client: foreign transactions fail with ErrNotOwner, unknown ones are
// an idempotent no-op.
func (c *ClientV2) ReleaseAll(txn int64) error {
	reply, err := c.roundTrip2(opRelease, func(fb *frameBuf) {
		fb.appendU64(uint64(txn))
	})
	if err != nil {
		return err
	}
	return replyErr("release", reply)
}

// Claim is one sub-claim of a batched AcquireN.
type Claim struct {
	Txn     int64
	Reqs    []lockmgr.Request
	Timeout time.Duration // zero: wait indefinitely
}

// maxBatchBytes bounds the encoded body of one batch frame. The wire
// rejects frames over maxFrame as connection-fatal, so the client must
// split a large batch across frames rather than encode it whole; the
// margin leaves room for the frame header. A var, not a const, so
// tests can shrink it to exercise chunking without megabyte batches.
var maxBatchBytes = maxFrame - 1024

// acquireClaimSize is the encoded size of one acquire sub-claim:
// txn(8) timeout(8) n(4) then n × (granule(8) mode(1)).
func acquireClaimSize(reqs []lockmgr.Request) int { return 20 + 9*len(reqs) }

// leaseTxnSize is the encoded size of one lease item: txn(8) n(4)
// then n × (granule(8) mode(1)).
func leaseTxnSize(reqs []lockmgr.Request) int { return 12 + 9*len(reqs) }

// chunkBatch splits a batch of n items into frame-sized chunks:
// consecutive [start, end) ranges where each chunk keeps the encoded
// body (header bytes plus per-item sizes) under maxBatchBytes and the
// item count under maxItems. An item whose encoded size alone exceeds
// the budget yields ok=false with its index.
func chunkBatch(n, header, maxItems int, size func(i int) int) (chunks [][2]int, oversize int, ok bool) {
	for start := 0; start < n; {
		end := start
		bytes := header
		for end < n && end-start < maxItems {
			sz := size(end)
			if bytes+sz > maxBatchBytes {
				break
			}
			bytes += sz
			end++
		}
		if end == start {
			return nil, start, false
		}
		chunks = append(chunks, [2]int{start, end})
		start = end
	}
	return chunks, 0, true
}

// AcquireN sends a batch of independent conservative claims. The
// server runs each frame's claims concurrently and responds once per
// frame, when its last claim completes. Batches too large for one wire
// frame (the 4 MiB frame cap, or the server's per-frame claim cap) are
// split across consecutive frames transparently. The returned slice
// has one entry per claim, nil for granted (typed errors otherwise);
// the error return is transport-level and means the batch outcome is
// unknown.
func (c *ClientV2) AcquireN(claims []Claim) ([]error, error) {
	if len(claims) == 0 {
		return nil, nil
	}
	chunks, oversize, ok := chunkBatch(len(claims), 4, v2MaxInflight,
		func(i int) int { return acquireClaimSize(claims[i].Reqs) })
	if !ok {
		return nil, fmt.Errorf("%w: acquireN claim %d alone exceeds the %d-byte frame cap", ErrBadRequest, oversize, maxFrame)
	}
	out := make([]error, 0, len(claims))
	for _, ch := range chunks {
		chunk := claims[ch[0]:ch[1]]
		reply, err := c.roundTrip2(opAcquireN, func(fb *frameBuf) {
			fb.appendU32(uint32(len(chunk)))
			for _, cl := range chunk {
				appendAcquireBody(fb, cl.Txn, cl.Reqs, wireTimeoutMS(cl.Timeout))
			}
		})
		if err != nil {
			return nil, err
		}
		outs, err := parseBatchReply("acquire", reply, len(chunk))
		if err != nil {
			return nil, err
		}
		out = append(out, outs...)
	}
	return out, nil
}

// ReleaseN releases a batch of transactions, returning one outcome per
// transaction (same contract as AcquireN). Batches too large for one
// wire frame are split across consecutive frames transparently.
func (c *ClientV2) ReleaseN(txns []int64) ([]error, error) {
	if len(txns) == 0 {
		return nil, nil
	}
	// Release items are fixed-width, so the chunk arithmetic is direct:
	// 8 bytes per txn under the byte budget.
	perFrame := (maxBatchBytes - 4) / 8
	out := make([]error, 0, len(txns))
	for start := 0; start < len(txns); start += perFrame {
		end := start + perFrame
		if end > len(txns) {
			end = len(txns)
		}
		chunk := txns[start:end]
		reply, err := c.roundTrip2(opReleaseN, func(fb *frameBuf) {
			fb.appendU32(uint32(len(chunk)))
			for _, txn := range chunk {
				fb.appendU64(uint64(txn))
			}
		})
		if err != nil {
			return nil, err
		}
		outs, err := parseBatchReply("release", reply, len(chunk))
		if err != nil {
			return nil, err
		}
		out = append(out, outs...)
	}
	return out, nil
}

// LeaseTxn is one transaction's asserted holdings in a Lease: the
// locks the client believes txn holds on the asserted node.
type LeaseTxn struct {
	Txn  int64
	Reqs []lockmgr.Request
}

// Lease asserts held transactions to a cluster node, the client half
// of lease-based failover. On the node that granted the locks it is a
// refresh (a no-op beyond liveness); on a standby that took over a
// dead node's partition it reconstructs the holder state — the standby
// re-grants exactly what the client asserts, first assert wins. The
// returned slice has one entry per transaction: nil when the grants
// are (re)established, an error matching ErrLeaseExpired when the
// recovery window sealed first or the grants conflict, ErrRedirect
// when the node serves none of it. Large asserts are chunked across
// frames like AcquireN.
func (c *ClientV2) Lease(leaseID uint64, txns []LeaseTxn) ([]error, error) {
	if len(txns) == 0 {
		return nil, nil
	}
	chunks, oversize, ok := chunkBatch(len(txns), 12, v2MaxInflight,
		func(i int) int { return leaseTxnSize(txns[i].Reqs) })
	if !ok {
		return nil, fmt.Errorf("%w: lease item %d alone exceeds the %d-byte frame cap", ErrBadRequest, oversize, maxFrame)
	}
	out := make([]error, 0, len(txns))
	for _, ch := range chunks {
		chunk := txns[ch[0]:ch[1]]
		reply, err := c.roundTrip2(opLease, func(fb *frameBuf) {
			fb.appendU64(leaseID)
			fb.appendU32(uint32(len(chunk)))
			for _, lt := range chunk {
				fb.appendU64(uint64(lt.Txn))
				fb.appendU32(uint32(len(lt.Reqs)))
				for _, r := range lt.Reqs {
					fb.appendU64(uint64(r.Granule))
					if r.Mode == lockmgr.ModeExclusive {
						fb.appendByte(1)
					} else {
						fb.appendByte(0)
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		outs, err := parseBatchReply("lease", reply, len(chunk))
		if err != nil {
			return nil, err
		}
		out = append(out, outs...)
	}
	return out, nil
}

// parseBatchReply decodes the per-item statuses of an acquireN/releaseN
// response.
func parseBatchReply(op string, reply v2Reply, want int) ([]error, error) {
	if reply.status != statusOK {
		return nil, replyErr(op, reply)
	}
	fr := frameReader{b: reply.body}
	k := int(fr.u32())
	if fr.bad || k != want {
		return nil, fmt.Errorf("%w: %sN: batch response has %d items, want %d", ErrMalformedReply, op, k, want)
	}
	out := make([]error, k)
	for i := 0; i < k; i++ {
		st := fr.byte()
		msg := fr.take(int(fr.u32()))
		if fr.bad {
			return nil, fmt.Errorf("%w: %sN: truncated batch response item %d", ErrMalformedReply, op, i)
		}
		out[i] = replyErr(op, v2Reply{status: st, body: msg})
	}
	if !fr.done() {
		return nil, fmt.Errorf("%w: %sN: trailing bytes in batch response", ErrMalformedReply, op)
	}
	return out, nil
}

// Stats fetches the server's lock-table counters.
func (c *ClientV2) Stats() (lockmgr.Stats, error) {
	table, _, err := c.FullStats()
	return table, err
}

// FullStats fetches both halves of the stats op (shared JSON schema
// with v1).
func (c *ClientV2) FullStats() (lockmgr.Stats, ServerStats, error) {
	reply, err := c.roundTrip2(opStats, func(fb *frameBuf) {})
	if err != nil {
		return lockmgr.Stats{}, ServerStats{}, err
	}
	if reply.status != statusOK {
		return lockmgr.Stats{}, ServerStats{}, replyErr("stats", reply)
	}
	var resp Response
	if err := json.Unmarshal(reply.body, &resp); err != nil {
		return lockmgr.Stats{}, ServerStats{}, fmt.Errorf("locksrv: stats: %w", err)
	}
	if resp.Stats == nil {
		return lockmgr.Stats{}, ServerStats{}, fmt.Errorf("%w: stats reply carries no payload", ErrMalformedReply)
	}
	var srv ServerStats
	if resp.Server != nil {
		srv = *resp.Server
	}
	return *resp.Stats, srv, nil
}

// Reconnects returns how many times the client re-established its
// connection after a transport failure.
func (c *ClientV2) Reconnects() int64 { return c.reconnects.Load() }

// Retries returns how many request attempts were retries.
func (c *ClientV2) Retries() int64 { return c.retried.Load() }

// Close ends the session; the server releases any locks its
// transactions still hold. In-flight calls fail with ErrClientClosed,
// and no further reconnects are attempted.
func (c *ClientV2) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.closeCh != nil {
		close(c.closeCh)
	}
	conn := c.conn
	c.conn = nil
	c.wch = nil
	wdone := c.wdone
	c.wdone = nil
	calls := c.pending
	c.pending = make(map[uint64]chan v2Reply)
	c.mu.Unlock()
	var err error
	if wdone != nil {
		close(wdone)
	}
	if conn != nil {
		err = conn.Close()
	}
	for _, ch := range calls {
		ch <- v2Reply{err: ErrClientClosed}
	}
	return err
}
