package locksrv

import "testing"

// TestServiceInheritsFastPath pins the end-to-end wiring of the
// lock-free fast path: a server built on a default table serves
// ordinary single-granule wire traffic through CAS grants, not just in
// in-process microbenchmarks. The first acquire/release cycle on a
// granule runs slow (promotion into the fast index happens on the
// first fully-released GC pass); every later cycle on it must be
// eligible for the fast path.
func TestServiceInheritsFastPath(t *testing.T) {
	addr, srv := startServer(t)
	c := dial(t, addr)

	const rounds = 10
	for txn := int64(1); txn <= rounds; txn++ {
		if err := c.AcquireAll(txn, xreq(7)); err != nil {
			t.Fatalf("txn %d acquire: %v", txn, err)
		}
		if err := c.ReleaseAll(txn); err != nil {
			t.Fatalf("txn %d release: %v", txn, err)
		}
	}

	fs := srv.table.FastStats()
	if fs.Grants == 0 {
		t.Fatalf("no fast-path grants after %d single-granule cycles (fallbacks=%d): service does not inherit the fast path", rounds, fs.Fallbacks)
	}
	if fs.Releases == 0 {
		t.Fatalf("no fast-path releases after %d cycles (grants=%d)", rounds, fs.Grants)
	}
	// The service-visible aggregate folds both paths: every cycle is a
	// grant whichever mechanism served it.
	if got := srv.table.Stats().Grants; got != rounds {
		t.Fatalf("Stats().Grants = %d, want %d", got, rounds)
	}
	if n := srv.table.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
}
