package locksrv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/ring"
)

// maxRedirectHops bounds how many redirects one logical request will
// follow. Two hops resolve any single ring-view disagreement; the
// margin covers a client with a badly stale view, and the bound turns
// a redirect cycle (two nodes disclaiming the same granule — a broken
// deployment) into an error instead of a livelock.
const maxRedirectHops = 8

// ClusterClient routes lock requests across a partitioned lockd
// cluster. It mirrors the cluster's static ring from the same ordered
// address list (see WithCluster) and keeps one pipelined ClientV2 per
// node, dialed lazily; requests go to the granule's owner, redirects
// from nodes with a different ring view are followed transparently,
// and a claim spanning partitions is split per node and acquired in
// ascending node order (all-or-nothing: a failed group rolls the
// earlier groups back).
//
// Failover: the client tracks every grant per node. When a node stops
// answering, the client marks it down, re-asserts the affected
// transactions' grants to the node's ring successor with the Lease op
// — racing the standby's recovery window — and routes the partition
// to the successor from then on. A transaction whose re-assert loses
// the race (lease_expired) has lost its locks; its next ReleaseAll
// completes as an idempotent no-op and LostLeases counts the event. A
// background lease loop (WithLeaseInterval) re-asserts all holdings
// periodically so failures are detected and survived even while the
// application is idle.
//
// Methods are safe for concurrent use; many workers can share one
// ClusterClient the way they share a ClientV2.
type ClusterClient struct {
	opts    []ClientOption
	cfg     clientCfg // resolved knobs (lease interval, failover wait)
	ring    *ring.Ring
	addrs   []string       // ring order
	addrIdx map[string]int // inverse of addrs
	leaseID uint64

	mu      sync.Mutex
	nodes   map[string]*clusterNode // by address; includes redirect targets
	down    []bool                  // by ring index
	failing []*failoverState        // by ring index; single-flights failover
	holds   map[int64]map[string][]lockmgr.Request
	closed  bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	redirects atomic.Int64
	failovers atomic.Int64
	lost      atomic.Int64
}

// clusterNode is one per-address connection slot; its mutex
// single-flights the lazy dial.
type clusterNode struct {
	addr string
	mu   sync.Mutex
	c    *ClientV2
}

// failoverState single-flights one node's failover: concurrent
// callers wait on done instead of re-asserting twice.
type failoverState struct {
	done chan struct{}
}

// WithLeaseInterval sets how often the cluster client re-asserts all
// holdings to their serving nodes (the failover heartbeat). Zero
// disables the background loop — failover then triggers only when a
// request hits the dead node. Default 1s. Ignored by Dial/DialV2.
func WithLeaseInterval(d time.Duration) ClientOption {
	return func(c *clientCfg) { c.leaseEvery = d }
}

// WithFailoverTimeout bounds how long the cluster client keeps
// retrying against a partition in failover (waiting out the standby's
// takeover and recovery window) before giving up with the underlying
// error. Default 10s. Ignored by Dial/DialV2.
func WithFailoverTimeout(d time.Duration) ClientOption {
	return func(c *clientCfg) { c.failoverWait = d }
}

// WithRingVNodes sets the virtual-point count the cluster client
// builds its ring with; must match the cluster's ClusterConfig.VNodes.
// Zero means ring.DefaultVNodes. Ignored by Dial/DialV2.
func WithRingVNodes(v int) ClientOption {
	return func(c *clientCfg) { c.ringVNodes = v }
}

// DialCluster opens a cluster-aware client over the given node
// addresses, which must be the cluster's ClusterConfig.Nodes in the
// same order. Node connections are dialed lazily, so DialCluster
// itself touches no network. Options apply to every per-node
// connection (retries, backoff, dialer, metrics) plus the
// cluster-level knobs (WithLeaseInterval, WithFailoverTimeout,
// WithRingVNodes).
//
// A client whose ring view disagrees with the servers' (wrong node
// list or vnode count) still lands single-partition claims by
// following redirects, but a claim the stale view wrongly groups
// across partitions cannot be fixed by redirects — each node bounces
// it at the other — and fails after maxRedirectHops. Multi-granule
// claims therefore require an agreed ring.
func DialCluster(addrs []string, opts ...ClientOption) (*ClusterClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("%w: cluster client needs at least one node address", ErrBadRequest)
	}
	cfg := defaultClientCfg("")
	cfg.leaseEvery = time.Second
	cfg.failoverWait = 10 * time.Second
	for _, o := range opts {
		o(&cfg)
	}
	v := cfg.ringVNodes
	if v <= 0 {
		v = ring.DefaultVNodes
	}
	cc := &ClusterClient{
		opts:    opts,
		cfg:     cfg,
		ring:    ring.NewWithVNodes(len(addrs), v),
		addrs:   append([]string(nil), addrs...),
		addrIdx: make(map[string]int, len(addrs)),
		nodes:   make(map[string]*clusterNode, len(addrs)),
		down:    make([]bool, len(addrs)),
		failing: make([]*failoverState, len(addrs)),
		holds:   make(map[int64]map[string][]lockmgr.Request),
		closeCh: make(chan struct{}),
		leaseID: cfg.jitter.Uint64(),
	}
	for i, a := range addrs {
		cc.addrIdx[a] = i
	}
	if cfg.leaseEvery > 0 {
		cc.wg.Add(1)
		go cc.leaseLoop()
	}
	return cc, nil
}

// servingAddr returns where granule g is served right now: its ring
// owner, or the owner's successor once the owner is marked down.
func (cc *ClusterClient) servingAddr(g lockmgr.Granule) string {
	owner := cc.ring.Owner(uint64(g))
	cc.mu.Lock()
	d := cc.down[owner]
	cc.mu.Unlock()
	if d {
		owner = cc.ring.Successor(owner)
	}
	return cc.addrs[owner]
}

// clientFor returns (dialing if needed) the connection to addr.
func (cc *ClusterClient) clientFor(addr string) (*ClientV2, error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil, ErrClientClosed
	}
	n, ok := cc.nodes[addr]
	if !ok {
		n = &clusterNode{addr: addr}
		cc.nodes[addr] = n
	}
	cc.mu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.c != nil {
		return n.c, nil
	}
	c, err := DialV2(addr, cc.opts...)
	if err != nil {
		return nil, err
	}
	n.c = c
	return c, nil
}

// dropClient discards addr's connection after a node failure so the
// next use re-dials instead of burning retries on a dead socket.
func (cc *ClusterClient) dropClient(addr string) {
	cc.mu.Lock()
	n := cc.nodes[addr]
	cc.mu.Unlock()
	if n == nil {
		return
	}
	n.mu.Lock()
	c := n.c
	n.c = nil
	n.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// pause sleeps for d or until the client closes.
func (cc *ClusterClient) pause(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-cc.closeCh:
	}
}

// isProtocolErr reports whether err is a lock-protocol outcome that
// must surface to the caller rather than trigger failover: the node
// answered, it just said no. ErrClientClosed is deliberately NOT in
// this set — from a per-node client it means dropClient tore the
// session down mid-call during a failover, which is a transport
// condition; the cluster client's own closure is checked separately
// via closeCh.
func isProtocolErr(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrNotOwner) ||
		errors.Is(err, ErrBadRequest) || errors.Is(err, ErrUnknownOp) ||
		errors.Is(err, ErrLeaseExpired)
}

// AcquireAll conservatively claims the lock set for txn across the
// cluster, blocking until granted.
func (cc *ClusterClient) AcquireAll(txn int64, reqs []lockmgr.Request) error {
	return cc.AcquireAllTimeout(txn, reqs, 0)
}

// AcquireAllTimeout claims the lock set for txn with a per-partition
// wait deadline. The claim is split by serving node and acquired in
// ascending node order; if any group fails, groups already granted are
// released and the first error returns — all-or-nothing, like the
// single-node client. A claim spanning k partitions may wait up to
// k×timeout in the worst case, since each partition gets the full
// deadline.
func (cc *ClusterClient) AcquireAllTimeout(txn int64, reqs []lockmgr.Request, timeout time.Duration) error {
	if len(reqs) == 0 {
		return fmt.Errorf("%w: acquire without granules", ErrBadRequest)
	}
	// Partition by serving node index (stable acquisition order), not
	// by address, so every client orders the same way.
	groups := make(map[int][]lockmgr.Request)
	for _, r := range reqs {
		owner := cc.ring.Owner(uint64(r.Granule))
		groups[owner] = append(groups[owner], r)
	}
	order := make([]int, 0, len(groups))
	for idx := range groups {
		order = append(order, idx)
	}
	sort.Ints(order)
	acquired := make([]string, 0, len(order))
	for _, idx := range order {
		addr, err := cc.acquireGroup(idx, txn, groups[idx], timeout)
		if err != nil {
			// Roll the earlier groups back so the transaction holds
			// nothing, preserving the all-or-nothing contract. Forget
			// before releasing so a concurrent lease refresh cannot
			// resurrect the groups being rolled back.
			cc.forget(txn)
			for _, a := range acquired {
				cc.releaseAt(a, txn)
			}
			return err
		}
		acquired = append(acquired, addr)
		cc.record(txn, addr, groups[idx])
	}
	return nil
}

// acquireGroup lands one partition's sub-claim on whichever node
// currently serves it, following redirects and riding out a failover.
// It returns the address that granted the group.
func (cc *ClusterClient) acquireGroup(idx int, txn int64, reqs []lockmgr.Request, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(cc.cfg.failoverWait)
	cc.mu.Lock()
	d := cc.down[idx]
	cc.mu.Unlock()
	target := cc.addrs[idx]
	if d {
		target = cc.addrs[cc.ring.Successor(idx)]
	}
	hops := 0
	var lastErr error
	// pending carries earlier groups of this claim that were released
	// for a merged re-claim (see below); they ride along until the
	// claim lands so the overall acquire stays all-or-nothing.
	var pending []lockmgr.Request
	for {
		select {
		case <-cc.closeCh:
			return "", ErrClientClosed
		default:
		}
		c, err := cc.clientFor(target)
		if err == nil {
			if prior := cc.heldReqsAt(txn, target); len(prior) > 0 {
				// An earlier group of this same claim already landed on
				// target: a failover (or redirect) collapsed two
				// partitions onto one node. The server takes exactly one
				// conservative claim per transaction, so release the
				// earlier group and re-claim the union atomically. The
				// earlier grants are not app-visible yet (the overall
				// acquire has not returned), so briefly holding nothing
				// is safe.
				_ = c.ReleaseAll(txn)
				cc.dropHold(txn, target)
				pending = append(pending, prior...)
			}
			send := reqs
			if len(pending) > 0 {
				send = append(append([]lockmgr.Request(nil), pending...), reqs...)
			}
			err = c.AcquireAllTimeout(txn, send, timeout)
			if err == nil {
				if len(pending) > 0 {
					cc.record(txn, target, pending)
				}
				return target, nil
			}
			var re *RedirectError
			if errors.As(err, &re) {
				cc.redirects.Add(1)
				hops++
				if hops > maxRedirectHops {
					return "", fmt.Errorf("locksrv: redirect cycle after %d hops: %w", hops, ErrRedirect)
				}
				if j, ok := cc.addrIdx[re.Addr]; ok && cc.isDown(j) {
					// Redirected toward a node we marked down. Either the
					// standby has not adopted the partition yet, or our
					// marking was a false positive (transport flake) and
					// the cluster still routes to a live owner. Probe the
					// node: if it answers, clear the marking and follow
					// the redirect; otherwise wait for the takeover.
					if cc.probeUp(j) {
						target = re.Addr
						continue
					}
					if time.Now().After(deadline) {
						return "", fmt.Errorf("locksrv: failover did not complete: %w", err)
					}
					cc.pause(5 * time.Millisecond)
					hops-- // waiting in place is not a hop
					continue
				}
				target = re.Addr
				continue
			}
			if isProtocolErr(err) {
				return "", err
			}
			lastErr = err
		} else {
			if errors.Is(err, ErrClientClosed) {
				return "", err
			}
			lastErr = err
		}
		// Transport-level failure: the target is dead or unreachable.
		// For ring nodes, fail over to the successor; for ad-hoc
		// redirect targets there is no configured standby to try.
		j, ok := cc.addrIdx[target]
		if !ok {
			return "", lastErr
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("locksrv: failover did not complete: %w", lastErr)
		}
		cc.nodeFailed(j)
		target = cc.addrs[cc.ring.Successor(j)]
	}
}

func (cc *ClusterClient) isDown(idx int) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.down[idx]
}

// probeUp re-checks a node marked down after the cluster redirected us
// back to it, which means the servers still consider it the live
// owner — our marking may have been a transport false positive. A
// successful dial (plus stats round-trip) clears the marking so the
// client recovers instead of waiting forever for a takeover that will
// never happen. Returns whether the node is back in service.
func (cc *ClusterClient) probeUp(idx int) bool {
	cc.mu.Lock()
	f := cc.failing[idx]
	down := cc.down[idx]
	cc.mu.Unlock()
	if !down {
		return true
	}
	if f != nil {
		select {
		case <-f.done:
			// Failover finished; safe to re-evaluate the node.
		default:
			return false // failover still running; don't fight it
		}
	}
	c, err := cc.clientFor(cc.addrs[idx])
	if err != nil {
		return false
	}
	if _, err := c.Stats(); err != nil {
		return false
	}
	cc.mu.Lock()
	cc.down[idx] = false
	cc.failing[idx] = nil
	cc.mu.Unlock()
	return true
}

// record merges a granted group into the transaction's holdings.
func (cc *ClusterClient) record(txn int64, addr string, reqs []lockmgr.Request) {
	cc.mu.Lock()
	m := cc.holds[txn]
	if m == nil {
		m = make(map[string][]lockmgr.Request)
		cc.holds[txn] = m
	}
	m[addr] = append(m[addr], reqs...)
	cc.mu.Unlock()
}

// forget drops a transaction's holdings record.
func (cc *ClusterClient) forget(txn int64) {
	cc.mu.Lock()
	delete(cc.holds, txn)
	cc.mu.Unlock()
}

// ReleaseAll releases everything txn holds across the cluster. A
// transaction whose grants were lost in a failover (lease expired)
// releases as an idempotent no-op, matching the single-node contract
// for unknown transactions.
//
// The holdings record is dropped before any network call: once the
// release is in motion, a concurrent lease refresh or failover
// re-assert must see the transaction as gone, so it compensates
// (releases the grant it just reconstructed) instead of resurrecting
// a released transaction on the server — which nothing would ever
// release again. If a release then fails terminally, the grants die
// with the node session instead.
func (cc *ClusterClient) ReleaseAll(txn int64) error {
	cc.mu.Lock()
	m := cc.holds[txn]
	delete(cc.holds, txn)
	addrs := make([]string, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	cc.mu.Unlock()
	sort.Strings(addrs)
	var firstErr error
	for _, a := range addrs {
		if err := cc.releaseAt(a, txn); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// releaseAt releases txn on one node, riding out a failover the same
// way acquire does (a release on the successor of a dead node is a
// no-op when the txn was not reasserted, which is the correct
// outcome: the grants died with the node). The release always starts
// at the recorded address even when that node is marked down: the
// record is where the grant lives (reassert move-corrects it), and a
// down marking can be a false positive — rerouting a release away
// from a live holder would no-op and strand the grant.
func (cc *ClusterClient) releaseAt(addr string, txn int64) error {
	deadline := time.Now().Add(cc.cfg.failoverWait)
	target := addr
	var lastErr error
	for {
		select {
		case <-cc.closeCh:
			return ErrClientClosed
		default:
		}
		c, err := cc.clientFor(target)
		if err == nil {
			err = c.ReleaseAll(txn)
			if err == nil || isProtocolErr(err) {
				return err
			}
			lastErr = err
		} else {
			if errors.Is(err, ErrClientClosed) {
				return err
			}
			lastErr = err
		}
		j, ok := cc.addrIdx[target]
		if !ok {
			return lastErr
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("locksrv: failover did not complete: %w", lastErr)
		}
		cc.nodeFailed(j)
		target = cc.addrs[cc.ring.Successor(j)]
	}
}

// nodeFailed marks ring node idx down (idempotent) and re-asserts the
// transactions it was serving to its successor. Concurrent callers
// single-flight: the first runs the failover, the rest wait for it.
func (cc *ClusterClient) nodeFailed(idx int) {
	cc.mu.Lock()
	if cc.down[idx] {
		f := cc.failing[idx]
		cc.mu.Unlock()
		if f != nil {
			<-f.done
		}
		return
	}
	cc.down[idx] = true
	f := &failoverState{done: make(chan struct{})}
	cc.failing[idx] = f
	addr := cc.addrs[idx]
	moved := make(map[int64][]lockmgr.Request)
	for txn, m := range cc.holds {
		if reqs, ok := m[addr]; ok {
			moved[txn] = reqs
		}
	}
	cc.mu.Unlock()
	cc.failovers.Add(1)
	defer close(f.done)
	cc.dropClient(addr)
	if len(moved) == 0 {
		return
	}
	cc.reassert(idx, moved)
}

// reassert pushes the dead node's grants to its successor with Lease,
// retrying until the standby's recovery window accepts them or the
// failover budget runs out. Transactions the window refuses
// (lease_expired) or that never land in budget are lost: their
// holdings entry for the dead node is dropped and LostLeases counts
// them.
func (cc *ClusterClient) reassert(idx int, moved map[int64][]lockmgr.Request) {
	deadline := time.Now().Add(cc.cfg.failoverWait)
	succAddr := cc.addrs[cc.ring.Successor(idx)]
	deadAddr := cc.addrs[idx]
	items := make([]LeaseTxn, 0, len(moved))
	for txn, reqs := range moved {
		items = append(items, LeaseTxn{Txn: txn, Reqs: reqs})
	}
	// Deterministic assert order keeps retries stable.
	sort.Slice(items, func(i, j int) bool { return items[i].Txn < items[j].Txn })
	for len(items) > 0 {
		select {
		case <-cc.closeCh:
			return
		default:
		}
		if time.Now().After(deadline) {
			break
		}
		// Transactions released since the snapshot must not be
		// re-asserted: nothing would ever release them again.
		live := items[:0]
		for _, it := range items {
			if cc.holdsAt(it.Txn, deadAddr) {
				live = append(live, it)
			}
		}
		if items = live; len(items) == 0 {
			return
		}
		c, err := cc.clientFor(succAddr)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return
			}
			cc.pause(5 * time.Millisecond)
			continue
		}
		outs, err := c.Lease(cc.leaseID, items)
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return
			}
			cc.pause(5 * time.Millisecond)
			continue
		}
		retry := items[:0]
		for i, out := range outs {
			switch {
			case out == nil:
				if !cc.moveHold(items[i].Txn, deadAddr, succAddr) {
					// Released mid-flight: the successor just granted a
					// transaction nobody holds anymore. Undo directly
					// (no failover riding — the successor answered the
					// lease a moment ago); the session teardown is the
					// backstop if this races another failure.
					_ = c.ReleaseAll(items[i].Txn)
				}
			case errors.Is(out, ErrRedirect):
				// The successor has not adopted the partition yet;
				// keep asserting until its takeover opens.
				retry = append(retry, items[i])
			default:
				// lease_expired (or another terminal refusal): the
				// transaction's grants are gone.
				cc.dropHold(items[i].Txn, deadAddr)
				cc.lost.Add(1)
			}
		}
		items = retry
		if len(items) > 0 {
			cc.pause(5 * time.Millisecond)
		}
	}
	for _, it := range items {
		cc.dropHold(it.Txn, deadAddr)
		cc.lost.Add(1)
	}
}

// moveHold reparents a transaction's holdings from a dead node to the
// successor that accepted its re-assert. It reports whether anything
// was moved: false means the transaction was released while the
// re-assert was in flight and the caller must undo the resurrected
// grant.
func (cc *ClusterClient) moveHold(txn int64, from, to string) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	m := cc.holds[txn]
	if m == nil {
		return false
	}
	reqs, ok := m[from]
	if !ok {
		return false
	}
	delete(m, from)
	m[to] = append(m[to], reqs...)
	return true
}

// holdsAt reports whether txn currently records holdings on addr.
func (cc *ClusterClient) holdsAt(txn int64, addr string) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	_, ok := cc.holds[txn][addr]
	return ok
}

// heldReqsAt returns a copy of the requests txn has recorded on addr.
func (cc *ClusterClient) heldReqsAt(txn int64, addr string) []lockmgr.Request {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return append([]lockmgr.Request(nil), cc.holds[txn][addr]...)
}

// dropHold forgets a transaction's holdings on one node.
func (cc *ClusterClient) dropHold(txn int64, addr string) {
	cc.mu.Lock()
	if m := cc.holds[txn]; m != nil {
		delete(m, addr)
		if len(m) == 0 {
			delete(cc.holds, txn)
		}
	}
	cc.mu.Unlock()
}

// leaseLoop periodically re-asserts every held transaction to its
// serving node: the cluster-level keepalive. A node that stops
// answering its lease triggers the same failover as a failed request,
// so dead nodes are detected while the application is idle, inside
// the standby's recovery window rather than after it.
func (cc *ClusterClient) leaseLoop() {
	defer cc.wg.Done()
	tick := time.NewTicker(cc.cfg.leaseEvery)
	defer tick.Stop()
	for {
		select {
		case <-cc.closeCh:
			return
		case <-tick.C:
		}
		// Snapshot holdings per serving address.
		cc.mu.Lock()
		byAddr := make(map[string][]LeaseTxn)
		for txn, m := range cc.holds {
			for addr, reqs := range m {
				byAddr[addr] = append(byAddr[addr], LeaseTxn{Txn: txn, Reqs: reqs})
			}
		}
		cc.mu.Unlock()
		for addr, items := range byAddr {
			sort.Slice(items, func(i, j int) bool { return items[i].Txn < items[j].Txn })
			c, err := cc.clientFor(addr)
			if err == nil {
				outs, lerr := c.Lease(cc.leaseID, items)
				err = lerr
				if lerr == nil {
					for i, out := range outs {
						switch {
						case out == nil:
							// A refresh of a transaction released since
							// the snapshot re-granted it server-side;
							// undo so the grant cannot strand.
							if !cc.holdsAt(items[i].Txn, addr) {
								_ = c.ReleaseAll(items[i].Txn)
							}
						case errors.Is(out, ErrRedirect):
							// Ownership moved; the next acquire or
							// failover chases the new owner.
						default:
							cc.dropHold(items[i].Txn, addr)
							cc.lost.Add(1)
						}
					}
					continue
				}
			}
			if errors.Is(err, ErrClientClosed) {
				return
			}
			// Transport failure on a ring node: run failover now.
			if j, ok := cc.addrIdx[addr]; ok {
				cc.nodeFailed(j)
			}
		}
	}
}

// Redirects returns how many redirects the client has followed.
func (cc *ClusterClient) Redirects() int64 { return cc.redirects.Load() }

// Failovers returns how many node failovers the client has run.
func (cc *ClusterClient) Failovers() int64 { return cc.failovers.Load() }

// LostLeases returns how many transactions lost their grants in a
// failover (their re-assert was refused or never landed).
func (cc *ClusterClient) LostLeases() int64 { return cc.lost.Load() }

// Reconnects sums the per-node clients' reconnect counters.
func (cc *ClusterClient) Reconnects() int64 {
	var total int64
	for _, n := range cc.snapshotNodes() {
		n.mu.Lock()
		if n.c != nil {
			total += n.c.Reconnects()
		}
		n.mu.Unlock()
	}
	return total
}

// Retries sums the per-node clients' retry counters.
func (cc *ClusterClient) Retries() int64 {
	var total int64
	for _, n := range cc.snapshotNodes() {
		n.mu.Lock()
		if n.c != nil {
			total += n.c.Retries()
		}
		n.mu.Unlock()
	}
	return total
}

func (cc *ClusterClient) snapshotNodes() []*clusterNode {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	out := make([]*clusterNode, 0, len(cc.nodes))
	for _, n := range cc.nodes {
		out = append(out, n)
	}
	return out
}

// Close ends every node session; the servers release whatever the
// client's transactions still hold. Safe to call from any goroutine;
// in-flight calls fail with ErrClientClosed.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	close(cc.closeCh)
	cc.mu.Unlock()
	cc.wg.Wait()
	var firstErr error
	for _, n := range cc.snapshotNodes() {
		n.mu.Lock()
		c := n.c
		n.c = nil
		n.mu.Unlock()
		if c != nil {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
