// Package locksrv exposes the granule lock table over TCP: a central
// lock manager for shared-nothing clusters whose nodes are separate
// processes. The paper's systems (Tandem, Teradata, Gamma) distribute
// lock management; this package supplies the network substrate for the
// same experiments to run across process boundaries — conservative
// all-or-nothing claims, blocking grants, and release, with the same
// semantics as calling internal/lockmgr in-process.
//
// The wire protocol is newline-delimited JSON, one request and one
// response per line, processed in order per connection. Blocking
// acquisitions block the connection's request loop (a connection is a
// session, like one database worker); concurrency comes from multiple
// connections. A dropped connection releases every lock its
// transactions still hold, so client crashes cannot strand granules.
package locksrv

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"granulock/internal/lockmgr"
)

// Request is one wire request.
type Request struct {
	// Op selects the operation: "acquire", "release" or "stats".
	Op string `json:"op"`
	// Txn identifies the transaction for acquire/release.
	Txn int64 `json:"txn,omitempty"`
	// Granules and Exclusive describe the lock set for acquire:
	// Exclusive[i] selects X (true) or S (false) for Granules[i].
	Granules  []int64 `json:"granules,omitempty"`
	Exclusive []bool  `json:"exclusive,omitempty"`
}

// Response is one wire response.
type Response struct {
	OK    bool           `json:"ok"`
	Err   string         `json:"err,omitempty"`
	Stats *lockmgr.Stats `json:"stats,omitempty"`
}

// Server serves a lock table over a listener. Create with NewServer,
// start with Serve (blocking) or in a goroutine, stop with Close.
type Server struct {
	table *lockmgr.Table
	lis   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a Server around table (a fresh table if nil)
// accepting on lis.
func NewServer(lis net.Listener, table *lockmgr.Table) *Server {
	if table == nil {
		table = lockmgr.NewTable()
	}
	return &Server{table: table, lis: lis, conns: make(map[net.Conn]struct{})}
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Serve accepts connections until the listener closes. It returns nil
// after Close.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("locksrv: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, disconnects every session (releasing their
// locks) and waits for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// handle runs one session: read a request, execute, write the
// response, repeat. Transactions granted on this session are tracked
// and force-released when it ends.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	// ctx cancels blocking acquisitions when the connection dies.
	ctx, cancel := context.WithCancel(context.Background())
	owned := make(map[lockmgr.TxnID]struct{})
	defer func() {
		cancel()
		for txn := range owned {
			s.table.ReleaseAll(txn)
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, closed, or garbage: end the session
		}
		resp := s.execute(ctx, &req, owned)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// execute performs one request against the table.
func (s *Server) execute(ctx context.Context, req *Request, owned map[lockmgr.TxnID]struct{}) Response {
	switch req.Op {
	case "acquire":
		if len(req.Granules) == 0 {
			return Response{Err: "acquire without granules"}
		}
		if len(req.Exclusive) != len(req.Granules) {
			return Response{Err: "granules and exclusive lengths differ"}
		}
		reqs := make([]lockmgr.Request, len(req.Granules))
		for i, g := range req.Granules {
			mode := lockmgr.ModeShared
			if req.Exclusive[i] {
				mode = lockmgr.ModeExclusive
			}
			reqs[i] = lockmgr.Request{Granule: lockmgr.Granule(g), Mode: mode}
		}
		txn := lockmgr.TxnID(req.Txn)
		if err := s.table.AcquireAll(ctx, txn, reqs); err != nil {
			if errors.Is(err, context.Canceled) {
				return Response{Err: "session closed"}
			}
			return Response{Err: err.Error()}
		}
		owned[txn] = struct{}{}
		return Response{OK: true}
	case "release":
		txn := lockmgr.TxnID(req.Txn)
		s.table.ReleaseAll(txn)
		delete(owned, txn)
		return Response{OK: true}
	case "stats":
		stats := s.table.Stats()
		return Response{OK: true, Stats: &stats}
	default:
		return Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
