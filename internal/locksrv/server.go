// Package locksrv exposes the granule lock table over TCP: a central
// lock manager for shared-nothing clusters whose nodes are separate
// processes. The paper's systems (Tandem, Teradata, Gamma) distribute
// lock management; this package supplies the network substrate for the
// same experiments to run across process boundaries — conservative
// all-or-nothing claims, blocking grants, and release, with the same
// semantics as calling internal/lockmgr in-process.
//
// Two wire protocols share the port, told apart by the first byte a
// client sends. Protocol v1 is newline-delimited JSON, one request and
// one response per line, processed in order per connection; blocking
// acquisitions block the connection's request loop, and concurrency
// comes from multiple connections. Protocol v2 (first bytes "GLK2") is
// length-prefixed binary frames with request ids: requests pipeline,
// execute concurrently, and responses return out of order as each
// completes, so one connection carries many in-flight operations —
// including batched acquireN/releaseN — with responses coalesced into
// few writes (see proto2.go and docs/LOCKSRV.md). Under either
// protocol a dropped connection releases every lock its transactions
// still hold, so client crashes cannot strand granules.
//
// The service is hardened for real deployments: acquires carry an
// optional wait deadline (timeout_ms) and fail with a distinguishable
// "timeout" code instead of blocking the session forever; idle sessions
// are reaped after a configurable read deadline; Close drains
// gracefully (stop accepting, let in-flight requests finish within a
// grace period, then force-release); and a release for a transaction
// granted on a different live session is rejected rather than yanking
// locks out from under their owner — while retries racing a dead
// predecessor session's teardown (acquire or release resent across a
// reconnect) wait the teardown out instead of failing. See
// docs/LOCKSRV.md for the wire protocol, the error taxonomy and the
// stats schema.
package locksrv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/obs"
	"granulock/internal/stats"
)

// Request is one wire request.
type Request struct {
	// Op selects the operation: "acquire", "release" or "stats".
	Op string `json:"op"`
	// Txn identifies the transaction for acquire/release.
	Txn int64 `json:"txn,omitempty"`
	// Granules and Exclusive describe the lock set for acquire:
	// Exclusive[i] selects X (true) or S (false) for Granules[i].
	Granules  []int64 `json:"granules,omitempty"`
	Exclusive []bool  `json:"exclusive,omitempty"`
	// TimeoutMS bounds how long an acquire may wait for its grant.
	// Zero means wait indefinitely (until the session or server
	// closes). On expiry the acquire fails with code "timeout" and the
	// transaction holds nothing.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Error codes returned in Response.Code: the machine-readable error
// taxonomy of the protocol. Err carries the human-readable detail.
const (
	// CodeTimeout: the acquire's timeout_ms expired before the grant.
	CodeTimeout = "timeout"
	// CodeClosed: the session or server is shutting down.
	CodeClosed = "closed"
	// CodeNotOwner: release of a transaction granted on another
	// session.
	CodeNotOwner = "not_owner"
	// CodeBadRequest: malformed request (bad lengths, missing fields,
	// protocol misuse such as a second conservative claim).
	CodeBadRequest = "bad_request"
	// CodeUnknownOp: unrecognized op string.
	CodeUnknownOp = "unknown_op"
	// CodeRedirect: the granule set is served by another cluster node;
	// the detail carries "node addr" (ring index, space, dial address).
	CodeRedirect = "redirect"
	// CodeLeaseExpired: a lease re-assert arrived after the recovery
	// window sealed or conflicts with reconstructed grants.
	CodeLeaseExpired = "lease_expired"
	// CodeUnavailable: the server could not durably journal the grant
	// (WithJournal); the claim was withdrawn and may be retried.
	CodeUnavailable = "unavailable"
)

// Response is one wire response.
type Response struct {
	OK bool `json:"ok"`
	// Err is the human-readable error detail; Code is its
	// machine-readable class (one of the Code* constants).
	Err    string         `json:"err,omitempty"`
	Code   string         `json:"code,omitempty"`
	Stats  *lockmgr.Stats `json:"stats,omitempty"`
	Server *ServerStats   `json:"server,omitempty"`
}

// ServerStats is the service-level half of the "stats" op: session and
// waiter gauges, the acquire outcome counters, and wait-time quantiles
// over a sliding window of recent acquires.
type ServerStats struct {
	Sessions       int64 `json:"sessions"`        // currently open sessions
	SessionsTotal  int64 `json:"sessions_total"`  // sessions ever opened
	Holders        int64 `json:"holders"`         // txns currently holding locks
	LockedGranules int64 `json:"locked_granules"` // granules with a holder
	Waiters        int64 `json:"waiters"`         // requests currently parked

	Grants          int64 `json:"grants"`           // acquires granted
	Timeouts        int64 `json:"timeouts"`         // acquires expired (timeout_ms)
	Cancels         int64 `json:"cancels"`          // acquires aborted by shutdown/disconnect
	ForceReleases   int64 `json:"force_releases"`   // txns released at session teardown
	ForeignReleases int64 `json:"foreign_releases"` // releases rejected as not_owner
	IdleReaps       int64 `json:"idle_reaps"`       // sessions reaped for idleness

	// Wait-time quantiles in milliseconds over the last waitWindow
	// completed acquires (granted or timed out). Zero when no samples.
	WaitP50MS   float64 `json:"wait_p50_ms"`
	WaitP90MS   float64 `json:"wait_p90_ms"`
	WaitP99MS   float64 `json:"wait_p99_ms"`
	WaitSamples int64   `json:"wait_samples"`

	// Cluster is the node's failover counters; nil on unclustered
	// servers, so single-node deployments keep their wire schema.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// waitWindow is the size of the sliding window of acquire wait times
// the quantiles are computed over.
const waitWindow = 4096

// ownerRaceWait bounds how long a request for a transaction owned by an
// apparently-live other session keeps waiting before the conflict is
// declared real. A client retrying across a reconnect closes its old
// connection first, but TCP orders nothing across connections: the
// retry can reach the server before the predecessor's disconnect is
// even detected, so for a short window a dying owner is
// indistinguishable from a live peer. Genuine cross-session conflicts
// (duplicate txn ids, foreign releases) are protocol bugs, so delaying
// their error by this bound costs nothing real.
const ownerRaceWait = 250 * time.Millisecond

// waitRing records the last waitWindow acquire wait times (ms).
type waitRing struct {
	mu   sync.Mutex
	buf  [waitWindow]float64
	next int
	len  int
	n    int64
}

func (r *waitRing) add(ms float64) {
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % waitWindow
	if r.len < waitWindow {
		r.len++
	}
	r.n++
	r.mu.Unlock()
}

// quantiles snapshots the window and computes P50/P90/P99 with
// stats.Quantiles (single sort). With no samples it returns zeros, not
// NaN: the stats travel as JSON and encoding/json rejects NaN.
func (r *waitRing) quantiles() (p50, p90, p99 float64, n int64) {
	r.mu.Lock()
	snap := append([]float64(nil), r.buf[:r.len]...)
	n = r.n
	r.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0, n
	}
	qs := stats.Quantiles(snap, 0.50, 0.90, 0.99)
	return qs[0], qs[1], qs[2], n
}

// ownedSet tracks the transactions granted on one session. Protocol v1
// executes one request at a time, but v2 executors run concurrently, so
// the set carries its own mutex.
type ownedSet struct {
	mu sync.Mutex
	m  map[lockmgr.TxnID]struct{}
}

func newOwnedSet() *ownedSet {
	return &ownedSet{m: make(map[lockmgr.TxnID]struct{})}
}

func (o *ownedSet) add(txn lockmgr.TxnID) {
	o.mu.Lock()
	o.m[txn] = struct{}{}
	o.mu.Unlock()
}

func (o *ownedSet) remove(txn lockmgr.TxnID) {
	o.mu.Lock()
	delete(o.m, txn)
	o.mu.Unlock()
}

// snapshot returns the owned transactions at teardown time.
func (o *ownedSet) snapshot() []lockmgr.TxnID {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]lockmgr.TxnID, 0, len(o.m))
	for txn := range o.m {
		out = append(out, txn)
	}
	return out
}

// session is one connection's server-side state.
type session struct {
	conn   net.Conn
	cancel context.CancelFunc // aborts the session's blocked acquires
	// closing is set the moment the session is condemned (disconnect,
	// idle reap, forced drain, teardown), possibly before its teardown
	// has force-released its grants. Requests arriving for this
	// session's transactions on other sessions — a client that
	// reconnected after a transport fault and retried — use it to tell
	// "owned by a dying predecessor, wait out its teardown" from "owned
	// by a live peer, genuine protocol violation".
	closing atomic.Bool
}

// shutdown condemns the session: marks it closing, then cancels its
// context to abort any blocked acquire.
func (sess *session) shutdown() {
	sess.closing.Store(true)
	sess.cancel()
}

// Server serves a lock table over a listener. Create with NewServer,
// start with Serve (blocking) or in a goroutine, stop with Close
// (graceful drain).
type Server struct {
	table        *lockmgr.Table
	lis          net.Listener
	grace        time.Duration
	idleTimeout  time.Duration
	writeTimeout time.Duration

	mu       sync.Mutex
	sessions map[*session]struct{}
	owners   map[lockmgr.TxnID]*session
	closed   bool
	wg       sync.WaitGroup

	inflight atomic.Int64 // requests decoded but not yet responded to

	om    *serverMetrics // always non-nil after NewServer
	waits waitRing

	// cluster is non-nil when the server is one node of a partitioned
	// cluster (WithCluster); nil servers serve the whole namespace.
	cluster *clusterState

	// journal, when non-nil (WithJournal), records every grant before
	// its acknowledgement and every release after it.
	journal Journal
}

// serverMetrics holds the service counters as registry series. Every
// server has one: WithMetrics points it at the caller's registry for
// scraping; otherwise the series live on a private registry and serve
// only as the backing store for the wire "stats" op.
type serverMetrics struct {
	sessionsTotal   *obs.Counter
	grants          *obs.Counter
	timeouts        *obs.Counter
	cancels         *obs.Counter
	forceReleases   *obs.Counter
	foreignReleases *obs.Counter
	idleReaps       *obs.Counter
	waitMS          *obs.Histogram

	// Protocol v2 pipeline families.
	v2Sessions    *obs.Counter
	framesRead    *obs.Counter
	framesWritten *obs.Counter
	batchOps      *obs.Counter

	// Cluster families: zero on unclustered servers.
	clusterTakeovers    *obs.Counter
	clusterReasserts    *obs.Counter
	clusterLeaseExpired *obs.Counter
	clusterRedirects    *obs.Counter
	clusterParked       *obs.Counter
}

// newServerMetrics registers the locksrv families on reg for s. The
// gauges read the server's live state at scrape time, so one server
// per registry.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	reg.NewGaugeFunc("granulock_locksrv_sessions",
		"Sessions currently open.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.sessions))
		})
	reg.NewGaugeFunc("granulock_locksrv_holders",
		"Transactions currently holding locks in the served table.",
		func() float64 { return float64(s.table.HoldersCount()) })
	reg.NewGaugeFunc("granulock_locksrv_locked_granules",
		"Granules with at least one holder in the served table.",
		func() float64 { return float64(s.table.LockedGranules()) })
	reg.NewGaugeFunc("granulock_locksrv_waiters",
		"Requests currently parked in the served table.",
		func() float64 { return float64(s.table.WaitersCount()) })
	reg.NewGaugeFunc("granulock_locksrv_inflight",
		"Requests decoded but not yet responded to, across all sessions.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.NewGaugeFunc("granulock_locksrv_cluster_recovering",
		"Adopted partitions whose lease-reassert recovery window is still open.",
		func() float64 {
			// s.cluster is set during option application, possibly after
			// this closure is registered; read it at scrape time.
			if cl := s.cluster; cl != nil {
				return float64(cl.recoveringCount())
			}
			return 0
		})
	return &serverMetrics{
		sessionsTotal: reg.NewCounter("granulock_locksrv_sessions_opened_total",
			"Sessions ever opened."),
		grants: reg.NewCounter("granulock_locksrv_grants_total",
			"Acquires granted."),
		timeouts: reg.NewCounter("granulock_locksrv_timeouts_total",
			"Acquires expired before their grant (timeout_ms)."),
		cancels: reg.NewCounter("granulock_locksrv_cancels_total",
			"Acquires aborted by disconnect or drain."),
		forceReleases: reg.NewCounter("granulock_locksrv_force_releases_total",
			"Transactions force-released at session teardown."),
		foreignReleases: reg.NewCounter("granulock_locksrv_foreign_releases_total",
			"Releases rejected as not_owner."),
		idleReaps: reg.NewCounter("granulock_locksrv_idle_reaps_total",
			"Sessions reaped for idleness."),
		waitMS: reg.NewHistogram("granulock_locksrv_acquire_wait_ms",
			"Acquire wait time in milliseconds (granted or timed out).",
			obs.ExpBuckets(0.5, 2, 16)), // 0.5ms .. ~16s
		v2Sessions: reg.NewCounter("granulock_locksrv_v2_sessions_total",
			"Sessions negotiated onto the binary pipelined protocol v2."),
		framesRead: reg.NewCounter("granulock_locksrv_v2_frames_read_total",
			"Protocol v2 request frames read."),
		framesWritten: reg.NewCounter("granulock_locksrv_v2_frames_written_total",
			"Protocol v2 response frames written."),
		batchOps: reg.NewCounter("granulock_locksrv_v2_batch_subops_total",
			"Sub-operations carried inside acquireN/releaseN batch frames."),
		clusterTakeovers: reg.NewCounter("granulock_locksrv_cluster_takeovers_total",
			"Dead-node partitions adopted by this node."),
		clusterReasserts: reg.NewCounter("granulock_locksrv_cluster_reasserted_txns_total",
			"Transactions reconstructed from client lease re-asserts after a takeover."),
		clusterLeaseExpired: reg.NewCounter("granulock_locksrv_cluster_lease_expired_total",
			"Lease re-asserts refused: window sealed, grants conflicted, or owner alive."),
		clusterRedirects: reg.NewCounter("granulock_locksrv_cluster_redirects_total",
			"Requests redirected to the node owning their granules."),
		clusterParked: reg.NewCounter("granulock_locksrv_cluster_parked_acquires_total",
			"Acquires parked behind an open partition-recovery window."),
	}
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithGrace sets the drain grace period: how long Close waits for
// in-flight requests (including blocked acquires that may yet be
// granted by a concurrent release) before force-cancelling them. Zero
// forces immediately. Default 500ms.
func WithGrace(d time.Duration) ServerOption {
	return func(s *Server) { s.grace = d }
}

// WithIdleTimeout reaps sessions that send no request for d: each read
// carries a deadline of d, and a session whose deadline expires is
// closed and its locks released, exactly as if it had disconnected.
// Zero (the default) disables reaping.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithWriteTimeout bounds each response write so a stalled client
// cannot wedge its handler. Zero disables. Default 10s.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithMetrics registers the service's metric families on reg (family
// prefix granulock_locksrv_): session/grant/timeout/cancel/
// force-release counters, an acquire-wait histogram, and scrape-time
// gauges for open sessions and table occupancy. One server per
// registry: the gauges read this server's state. Without this option
// the same counters back the wire "stats" op from a private registry.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.om = newServerMetrics(reg, s) }
}

// NewServer returns a Server around table (a fresh table if nil)
// accepting on lis.
func NewServer(lis net.Listener, table *lockmgr.Table, opts ...ServerOption) *Server {
	if table == nil {
		table = lockmgr.NewTable()
	}
	s := &Server{
		table:        table,
		lis:          lis,
		grace:        500 * time.Millisecond,
		writeTimeout: 10 * time.Second,
		sessions:     make(map[*session]struct{}),
		owners:       make(map[lockmgr.TxnID]*session),
	}
	for _, o := range opts {
		o(s)
	}
	if s.om == nil {
		s.om = newServerMetrics(obs.NewRegistry(), s)
	}
	return s
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Table returns the underlying lock table, so an embedding process can
// inspect residual state (e.g. after a drain).
func (s *Server) Table() *lockmgr.Table { return s.table }

// Serve accepts connections until the listener closes. It returns nil
// after Close. In cluster mode Serve also starts the predecessor
// heartbeat monitor (see WithCluster).
func (s *Server) Serve() error {
	if s.cluster != nil {
		s.cluster.startMonitor(s)
	}
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("locksrv: accept: %w", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		sess := &session{conn: conn, cancel: cancel}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel()
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.om.sessionsTotal.Inc()
		go s.handle(ctx, sess)
	}
}

// Close drains the server gracefully: stop accepting, stop reading new
// requests, give in-flight requests the grace period to finish (a
// blocked acquire may still be granted by a concurrent release), then
// force-cancel whatever remains and release every session's locks.
// After Close returns the table holds nothing on behalf of any session.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	// Expire every session's pending read: idle sessions exit at once,
	// busy ones finish their current request, write its response, and
	// exit on the next read. Writes are unaffected.
	now := time.Now()
	for sess := range s.sessions {
		sess.conn.SetReadDeadline(now)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	if s.cluster != nil {
		s.cluster.stopMonitor()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.grace):
		// Grace expired: force, in two phases. Cancelling a session's
		// context aborts its blocked acquires, which respond with the
		// typed "closed" code — but only if the connection survives
		// long enough for the writer to flush those responses. Closing
		// the conn in the same breath as the cancel loses that race:
		// pipelined clients see a bare transport error instead of
		// "closed" and burn their whole retry budget against a dead
		// listener. So cancel everything first, give the writers a
		// bounded flush window, and hard-close only the stragglers.
		s.mu.Lock()
		for sess := range s.sessions {
			sess.shutdown()
		}
		s.mu.Unlock()
		flush := s.grace
		if flush > forceFlushWait {
			flush = forceFlushWait
		}
		select {
		case <-done:
		case <-time.After(flush):
			s.mu.Lock()
			for sess := range s.sessions {
				sess.conn.Close()
			}
			s.mu.Unlock()
		}
		<-done
	}
	return err
}

// forceFlushWait caps how long the forced drain waits for cancelled
// sessions to flush their typed "closed" responses before hard-closing
// their connections. A session that cannot flush within this window is
// wedged (stalled client, full socket buffer); its clients get the
// transport error they were always going to get.
const forceFlushWait = 250 * time.Millisecond

// sessionReader feeds a session's json.Decoder from its conn while
// managing read deadlines. It distinguishes the three ways a read can
// end: real disconnect (EOF/reset), idle reap (deadline expired with no
// request executing), and drain (the server expired the deadline to
// stop new requests). A deadline that fires while a request is still
// executing is not idleness — the deadline is re-armed and the read
// retried, so a session blocked in a long acquire is never reaped under
// its client, which is silently waiting for the response.
type sessionReader struct {
	s       *Server
	conn    net.Conn
	pending *atomic.Int64 // requests decoded but not yet responded to
	reaped  bool          // ended by idle reap
}

func (r *sessionReader) Read(p []byte) (int, error) {
	for {
		if r.s.idleTimeout > 0 {
			r.conn.SetReadDeadline(time.Now().Add(r.s.idleTimeout))
			if r.s.draining() {
				// Drain began between arming and this check; restore
				// its expired deadline so this read cannot linger.
				r.conn.SetReadDeadline(time.Now())
			}
		}
		n, err := r.conn.Read(p)
		if n > 0 {
			return n, nil // deliver data; any error will recur
		}
		if err == nil {
			continue
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			return 0, err // disconnect: EOF, reset, closed
		}
		if r.s.draining() {
			return 0, err // drain: stop reading new requests
		}
		if r.pending.Load() > 0 {
			continue // a request is executing; the session is not idle
		}
		r.reaped = r.s.idleTimeout > 0
		return 0, err
	}
}

// handle runs one session: it sniffs the first byte to negotiate the
// protocol — '{' can only open a v1 JSON request, the magic "GLK2"
// selects the binary pipelined v2 — then runs the matching loop.
// Transactions granted on this session are tracked and force-released
// when it ends, however it ends.
func (s *Server) handle(ctx context.Context, sess *session) {
	defer s.wg.Done()
	conn := sess.conn
	owned := newOwnedSet()
	var pending atomic.Int64
	sr := &sessionReader{s: s, conn: conn, pending: &pending}
	br := bufio.NewReader(sr)
	defer s.teardown(sess, owned)

	first, err := br.Peek(1)
	if err != nil {
		if sr.reaped {
			s.om.idleReaps.Inc()
		}
		return
	}
	if first[0] == '{' {
		s.handleV1(ctx, sess, br, sr, owned, &pending)
		return
	}
	s.handleV2(ctx, sess, br, sr, owned, &pending)
}

// teardown ends a session: condemn it, close its connection, and
// force-release every transaction it still owns.
func (s *Server) teardown(sess *session, owned *ownedSet) {
	sess.shutdown()
	sess.conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	forced := int64(0)
	var released []lockmgr.TxnID
	for _, txn := range owned.snapshot() {
		// Ownership check and release are one atomic step under
		// s.mu: a transaction this session was granted may since
		// have been re-granted on a live successor session (the
		// client retried an acquire whose response a transport
		// fault ate, and the retry won before this teardown ran).
		// Those locks are the successor's; force-releasing them
		// here would strip a live session's grants and break mutual
		// exclusion. Holding s.mu across ReleaseAll keeps a
		// successor's grant-then-record from interleaving with the
		// check (grant recording also runs under s.mu).
		s.mu.Lock()
		if owner, ok := s.owners[txn]; ok && owner != sess {
			s.mu.Unlock()
			continue
		}
		delete(s.owners, txn)
		if s.table.HeldBy(txn) > 0 {
			forced++
		}
		s.table.ReleaseAll(txn)
		s.mu.Unlock()
		released = append(released, txn)
	}
	if forced > 0 {
		s.om.forceReleases.Add(forced)
	}
	// Journal outside s.mu: a journal write blocks for a log flush.
	for _, txn := range released {
		s.journalRelease(txn)
	}
}

// handleV1 runs the JSON protocol as a reader/executor pair. The reader
// decodes requests and hands them to the executor, so a disconnect is
// noticed even while the executor is parked inside a blocking acquire —
// the reader cancels the session context, the acquire aborts, and the
// waiter's queue slot is freed immediately instead of at grant time.
func (s *Server) handleV1(ctx context.Context, sess *session, br *bufio.Reader, sr *sessionReader, owned *ownedSet, pending *atomic.Int64) {
	conn := sess.conn
	reqCh := make(chan Request)

	go func() {
		defer close(reqCh)
		dec := json.NewDecoder(br)
		for {
			var req Request
			if err := dec.Decode(&req); err != nil {
				if sr.reaped {
					s.om.idleReaps.Inc()
					sess.shutdown() // nothing in flight; ends the session
				} else if !s.draining() {
					// Real disconnect (or garbage): abort any in-flight
					// acquire so its queue slot frees now. Under drain,
					// by contrast, in-flight requests get the grace
					// period; Close force-cancels when it expires.
					sess.shutdown()
				}
				return
			}
			pending.Add(1)
			s.inflight.Add(1)
			select {
			case reqCh <- req:
			case <-ctx.Done():
				pending.Add(-1)
				s.inflight.Add(-1)
				return
			}
		}
	}()

	defer func() {
		sess.shutdown()
		conn.Close()
		// Unblock a reader parked on its channel send, then wait for it
		// to observe the dead conn and close reqCh.
		for range reqCh {
			pending.Add(-1)
			s.inflight.Add(-1)
		}
	}()

	// Responses are encoded into a reused buffer and written in one
	// syscall each; v1 stays strictly request-response, so there is
	// nothing to coalesce beyond that.
	var encBuf bytes.Buffer
	enc := json.NewEncoder(&encBuf)
	for req := range reqCh {
		resp := s.execute(ctx, sess, &req, owned)
		if s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		encBuf.Reset()
		if err := enc.Encode(resp); err != nil {
			return
		}
		_, err := conn.Write(encBuf.Bytes())
		pending.Add(-1)
		s.inflight.Add(-1)
		if err != nil {
			return
		}
	}
}

// Draining reports whether Close has begun — the server still finishes
// in-flight requests but accepts no new connections. Health endpoints
// use it to flip a readiness probe before the listener disappears.
func (s *Server) Draining() bool { return s.draining() }

// draining reports whether Close has begun.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// execute performs one v1 request against the table.
func (s *Server) execute(ctx context.Context, sess *session, req *Request, owned *ownedSet) Response {
	switch req.Op {
	case "acquire":
		if len(req.Exclusive) != len(req.Granules) {
			return Response{Err: "granules and exclusive lengths differ", Code: CodeBadRequest}
		}
		reqs := make([]lockmgr.Request, len(req.Granules))
		for i, g := range req.Granules {
			mode := lockmgr.ModeShared
			if req.Exclusive[i] {
				mode = lockmgr.ModeExclusive
			}
			reqs[i] = lockmgr.Request{Granule: lockmgr.Granule(g), Mode: mode}
		}
		code, msg := s.acquireCore(ctx, sess, lockmgr.TxnID(req.Txn), reqs, req.TimeoutMS, owned)
		if code == "" {
			return Response{OK: true}
		}
		return Response{Err: msg, Code: code}
	case "release":
		code, msg := s.releaseCore(ctx, sess, lockmgr.TxnID(req.Txn), owned)
		if code == "" {
			return Response{OK: true}
		}
		return Response{Err: msg, Code: code}
	case "stats":
		ls := s.table.Stats()
		ss := s.serverStats()
		return Response{OK: true, Stats: &ls, Server: &ss}
	default:
		return Response{Err: fmt.Sprintf("unknown op %q", req.Op), Code: CodeUnknownOp}
	}
}

// releaseCore releases everything txn holds, guarding ownership per
// session. It returns ("", "") on success, else an error code from the
// shared taxonomy plus detail. A release whose transaction is owned by
// a live peer session is foreign and rejected with not_owner. But if
// the recorded owner is a condemned session whose teardown hasn't run
// yet, this is the transport-fault retry shape — the send of a release
// died mid-flight, the client reconnected and resent on a fresh session
// — so instead of rejecting a legitimate retry with a terminal error,
// wait out the predecessor's teardown and complete idempotently
// (mirroring acquireCore's orphan handling).
func (s *Server) releaseCore(ctx context.Context, sess *session, txn lockmgr.TxnID, owned *ownedSet) (string, string) {
	// The race deadline is only needed once a foreign owner is actually
	// observed; reading the clock lazily keeps the common case — a
	// release by the rightful owner — free of time syscalls.
	var raceDeadline time.Time
	var tick *time.Timer
	defer func() { stopTimer(tick) }()
	for {
		s.mu.Lock()
		if owner, ok := s.owners[txn]; ok && owner != sess {
			closing := owner.closing.Load()
			s.mu.Unlock()
			if raceDeadline.IsZero() {
				raceDeadline = time.Now().Add(ownerRaceWait)
			}
			if !closing && time.Now().After(raceDeadline) {
				// Still owned by a session that looks alive after the
				// race bound: a genuine foreign release.
				s.om.foreignReleases.Inc()
				return CodeNotOwner, fmt.Sprintf("transaction %d was granted on another session", txn)
			}
			// Owner condemned (teardown clears the entry shortly) or
			// apparently alive but possibly an undetected disconnect;
			// wait and re-check.
			tick = resetTimer(tick, time.Millisecond)
			select {
			case <-ctx.Done():
				return CodeClosed, "session closed"
			case <-tick.C:
			}
			continue
		}
		delete(s.owners, txn)
		// Release under s.mu so the ownership check stays atomic with
		// the release (same discipline as session teardown).
		s.table.ReleaseAll(txn)
		s.mu.Unlock()
		owned.remove(txn)
		s.journalRelease(txn)
		return "", ""
	}
}

// acquireCore runs one conservative claim with the request's wait
// deadline, records its wait time, and classifies the outcome. It
// returns ("", "") on grant, else an error code from the shared
// taxonomy plus detail.
func (s *Server) acquireCore(ctx context.Context, sess *session, txn lockmgr.TxnID, reqs []lockmgr.Request, timeoutMS int64, owned *ownedSet) (string, string) {
	if len(reqs) == 0 {
		return CodeBadRequest, "acquire without granules"
	}
	if timeoutMS < 0 {
		return CodeBadRequest, "negative timeout_ms"
	}
	actx := ctx
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}
	// Cluster routing: serve only granules this node owns (or adopted),
	// parking behind an open recovery window; redirect the rest. The
	// nil check keeps unclustered servers on the exact prior path.
	if s.cluster != nil {
		if code, msg := s.clusterAdmit(actx, reqs, false); code != "" {
			return code, msg
		}
	}
	// Fast path: an immediate grant waited zero time by definition, so
	// record the zero sample without reading the clock — at service
	// rates the two time syscalls per acquire are a measurable tax.
	granted, err := s.table.TryAcquireAll(txn, reqs)
	if granted {
		s.waits.add(0)
		s.om.waitMS.Observe(0)
		return s.finishAcquire(sess, txn, reqs, timeoutMS, nil, owned)
	}
	start := time.Now()
	// The orphan-retry loop below polls every millisecond; the timer is
	// allocated once per call and reset, not once per poll.
	var tick *time.Timer
	defer func() { stopTimer(tick) }()
	for {
		err = s.table.AcquireAll(actx, txn, reqs)
		if err == nil || !errors.Is(err, lockmgr.ErrAlreadyHolds) {
			break
		}
		s.mu.Lock()
		owner, ok := s.owners[txn]
		s.mu.Unlock()
		if ok && owner == sess {
			// A second conservative claim on this very session: real
			// misuse, never a retry.
			break
		}
		if ok && !owner.closing.Load() && time.Since(start) > ownerRaceWait {
			// Owned by a session still alive after the race bound:
			// duplicate txn ids across live sessions, real misuse.
			break
		}
		// Orphaned grant: the txn's locks were granted on a session
		// that is now tearing down (a client retried an acquire whose
		// response was lost in a transport fault) — the owners entry is
		// already gone, maps to the condemned predecessor, or maps to a
		// predecessor whose disconnect the server hasn't detected yet
		// (TCP orders nothing across connections). Its ReleaseAll is
		// imminent; wait it out within the deadline rather than failing
		// a legitimate retry.
		tick = resetTimer(tick, time.Millisecond)
		select {
		case <-actx.Done():
			err = actx.Err()
		case <-tick.C:
			continue
		}
		break
	}
	waitMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.waits.add(waitMS)
	s.om.waitMS.Observe(waitMS)
	return s.finishAcquire(sess, txn, reqs, timeoutMS, err, owned)
}

// finishAcquire journals the grant, records ownership, and classifies
// the acquire outcome, shared by the zero-wait fast path and the
// blocking path.
func (s *Server) finishAcquire(sess *session, txn lockmgr.TxnID, reqs []lockmgr.Request, timeoutMS int64, err error, owned *ownedSet) (string, string) {
	switch {
	case err == nil:
		// Journal before recording ownership or replying: a grant the
		// journal cannot make durable is withdrawn, leaving no trace.
		if code, msg := s.journalGrant(txn, reqs); code != "" {
			return code, msg
		}
		s.mu.Lock()
		s.owners[txn] = sess
		s.mu.Unlock()
		owned.add(txn)
		s.om.grants.Inc()
		return "", ""
	case errors.Is(err, context.DeadlineExceeded):
		// The per-acquire deadline expired; the claim was withdrawn and
		// the transaction holds nothing.
		s.om.timeouts.Inc()
		return CodeTimeout, fmt.Sprintf("acquire timed out after %dms", timeoutMS)
	case errors.Is(err, context.Canceled):
		// The session's context was cancelled: disconnect or forced
		// drain.
		s.om.cancels.Inc()
		return CodeClosed, "session closed"
	default:
		// Protocol misuse (e.g. a second conservative claim while the
		// first is still held).
		return CodeBadRequest, err.Error()
	}
}

// resetTimer arms t for d, allocating it on first use. The timer's
// channel must have been drained or fired (the select discipline in the
// poll loops guarantees it).
func resetTimer(t *time.Timer, d time.Duration) *time.Timer {
	if t == nil {
		return time.NewTimer(d)
	}
	t.Reset(d)
	return t
}

// stopTimer releases a possibly-nil poll timer.
func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// serverStats snapshots the service-level gauges and counters.
func (s *Server) serverStats() ServerStats {
	s.mu.Lock()
	sessions := int64(len(s.sessions))
	s.mu.Unlock()
	p50, p90, p99, n := s.waits.quantiles()
	var cs *ClusterStats
	if s.cluster != nil {
		snap := s.ClusterStats()
		cs = &snap
	}
	return ServerStats{
		Sessions:        sessions,
		SessionsTotal:   s.om.sessionsTotal.Value(),
		Holders:         int64(s.table.HoldersCount()),
		LockedGranules:  int64(s.table.LockedGranules()),
		Waiters:         int64(s.table.WaitersCount()),
		Grants:          s.om.grants.Value(),
		Timeouts:        s.om.timeouts.Value(),
		Cancels:         s.om.cancels.Value(),
		ForceReleases:   s.om.forceReleases.Value(),
		ForeignReleases: s.om.foreignReleases.Value(),
		IdleReaps:       s.om.idleReaps.Value(),
		WaitP50MS:       p50,
		WaitP90MS:       p90,
		WaitP99MS:       p99,
		WaitSamples:     n,
		Cluster:         cs,
	}
}

// Stats returns the service-level stats snapshot (the same data the
// wire "stats" op reports in Response.Server), for embedding processes
// such as lockd's periodic logger.
func (s *Server) Stats() ServerStats { return s.serverStats() }
