package locksrv

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
)

// v2MaxInflight caps how many requests one v2 session may have
// executing at once. The cap bounds executor goroutines per connection;
// excess frames wait in the read loop, which is exactly the
// back-pressure a pipelining client expects.
const v2MaxInflight = 256

// v2Work is one decoded request frame awaiting execution.
type v2Work struct {
	fb   *frameBuf
	op   byte
	id   uint64
	body []byte
}

// execWorker is one pooled executor goroutine's inbox.
type execWorker struct {
	ch chan v2Work
}

// handleV2 runs the binary pipelined protocol: a reader that decodes
// frames and dispatches each to a pooled executor goroutine (capped at
// v2MaxInflight per session), and a single writer that drains completed
// responses, coalescing them into few syscalls by flushing only when
// the response queue goes idle. Responses therefore return out of
// order, matched to requests by id. The reader notices disconnects
// while executors are parked in blocking acquires, exactly as v1's
// reader/executor split does.
//
// Executors are recycled rather than spawned per frame: a fresh
// goroutine starts with a minimal stack that the execute call chain
// immediately has to grow, and at service request rates those stack
// copies show up as a top-five CPU item. A worker that has run once
// keeps its grown stack for the rest of the session.
func (s *Server) handleV2(ctx context.Context, sess *session, br *bufio.Reader, sr *sessionReader, owned *ownedSet, pending *atomic.Int64) {
	conn := sess.conn
	var magic [len(protoMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != protoMagic {
		return // not v2: no other protocol begins with a non-'{' byte
	}
	s.om.v2Sessions.Inc()

	respCh := make(chan *frameBuf, v2MaxInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		// The write deadline is armed once per batch, not per frame:
		// each SetWriteDeadline modifies a runtime poll timer, and at
		// pipelined frame rates that churn outweighs the writes
		// themselves. One deadline covering the whole batch bounds a
		// stalled client just as well.
		armed := false
		for fb := range respCh {
			if s.writeTimeout > 0 && !armed {
				conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
				armed = true
			}
			_, err := bw.Write(fb.bytes())
			putFrame(fb)
			pending.Add(-1)
			s.inflight.Add(-1)
			if err != nil {
				return
			}
			s.om.framesWritten.Inc()
			// Flush on idle: as long as more responses are queued, keep
			// filling the buffer; the syscall happens when the pipeline
			// drains (or the buffer fills, via bufio). The yield first is
			// what makes this work on few CPUs: a completing executor
			// hands the scheduler straight to this goroutine, so the
			// queue looks empty while the other executors are runnable
			// but haven't run — give them one scheduler round to enqueue
			// before paying the syscall.
			if len(respCh) == 0 {
				runtime.Gosched()
			}
			if len(respCh) == 0 {
				if err := bw.Flush(); err != nil {
					return
				}
				armed = false
			}
		}
		bw.Flush()
	}()

	var execWG sync.WaitGroup
	free := make(chan *execWorker, v2MaxInflight)
	var workers []*execWorker
	spawn := func() *execWorker {
		w := &execWorker{ch: make(chan v2Work)}
		workers = append(workers, w)
		go func() {
			for wk := range w.ch {
				resp := s.executeV2(ctx, sess, wk.op, wk.id, wk.body, owned)
				putFrame(wk.fb)
				select {
				case respCh <- resp:
				case <-writerDone:
					// Writer died on a write error; account for the
					// request ourselves.
					putFrame(resp)
					pending.Add(-1)
					s.inflight.Add(-1)
				}
				execWG.Done()
				free <- w // cap == max workers: never blocks
			}
		}()
		return w
	}
readLoop:
	for {
		fb, op, id, body, err := readFrame(br)
		if err != nil {
			if sr.reaped {
				s.om.idleReaps.Inc()
				sess.shutdown()
			} else if !s.draining() {
				// Real disconnect or torn frame: framing is lost either
				// way, so the session ends and teardown releases its
				// grants. Under drain, in-flight requests get the grace
				// period instead.
				sess.shutdown()
			}
			break
		}
		s.om.framesRead.Inc()
		pending.Add(1)
		s.inflight.Add(1)
		var w *execWorker
		select {
		case w = <-free:
		default:
			if len(workers) < v2MaxInflight {
				w = spawn()
			} else {
				// Pipeline saturated: wait for an executor, or for the
				// session to be condemned.
				select {
				case w = <-free:
				case <-ctx.Done():
					putFrame(fb)
					pending.Add(-1)
					s.inflight.Add(-1)
					break readLoop
				}
			}
		}
		execWG.Add(1)
		w.ch <- v2Work{fb: fb, op: op, id: id, body: body}
	}
	execWG.Wait()
	for _, w := range workers {
		close(w.ch)
	}
	close(respCh)
	<-writerDone
	// If the writer exited on error, queued responses were never
	// consumed; settle their accounting.
	for fb := range respCh {
		putFrame(fb)
		pending.Add(-1)
		s.inflight.Add(-1)
	}
}

// executeV2 performs one v2 request and returns its response frame
// (pooled; ownership passes to the caller).
func (s *Server) executeV2(ctx context.Context, sess *session, op byte, id uint64, body []byte, owned *ownedSet) *frameBuf {
	switch op {
	case opAcquire:
		fr := frameReader{b: body}
		txn, reqs, timeoutMS := parseAcquireBody(&fr)
		if !fr.done() {
			return errorFrame(id, statusBadRequest, "malformed acquire body")
		}
		code, msg := s.acquireCore(ctx, sess, txn, reqs, timeoutMS, owned)
		return statusFrame(id, code, msg)
	case opRelease:
		fr := frameReader{b: body}
		txn := lockmgr.TxnID(fr.u64())
		if !fr.done() {
			return errorFrame(id, statusBadRequest, "malformed release body")
		}
		code, msg := s.releaseCore(ctx, sess, txn, owned)
		return statusFrame(id, code, msg)
	case opStats:
		if len(body) != 0 {
			return errorFrame(id, statusBadRequest, "stats takes no body")
		}
		ls := s.table.Stats()
		ss := s.serverStats()
		payload, err := json.Marshal(Response{OK: true, Stats: &ls, Server: &ss})
		if err != nil {
			return errorFrame(id, statusBadRequest, err.Error())
		}
		fb := getFrame()
		fb.start(statusOK, id)
		fb.appendBytes(payload)
		fb.finish()
		return fb
	case opAcquireN:
		return s.executeAcquireN(ctx, sess, id, body, owned)
	case opReleaseN:
		return s.executeReleaseN(ctx, sess, id, body, owned)
	case opLease:
		return s.executeLease(ctx, sess, id, body, owned)
	default:
		return errorFrame(id, statusUnknownOp, "unknown v2 op")
	}
}

// executeLease processes a lease assert: per-transaction grant
// refresh/reconstruction (see leaseCore), answered as a batch frame.
// Items run sequentially — leaseCore never parks on a lock queue, so
// one item cannot starve the rest the way a blocked acquire could.
func (s *Server) executeLease(ctx context.Context, sess *session, id uint64, body []byte, owned *ownedSet) *frameBuf {
	fr := frameReader{b: body}
	fr.u64() // lease id: carried for observability, no fencing use yet
	k := fr.u32()
	if fr.bad || k == 0 || k > v2MaxInflight {
		return errorFrame(id, statusBadRequest, "malformed lease count")
	}
	type item struct {
		txn  lockmgr.TxnID
		reqs []lockmgr.Request
	}
	items := make([]item, 0, k)
	for i := uint32(0); i < k; i++ {
		txn := lockmgr.TxnID(fr.u64())
		n := fr.u32()
		if fr.bad || n > maxFrame/9 {
			return errorFrame(id, statusBadRequest, "malformed lease body")
		}
		reqs := make([]lockmgr.Request, 0, n)
		for j := uint32(0); j < n; j++ {
			g := lockmgr.Granule(fr.u64())
			mode := lockmgr.ModeShared
			if fr.byte() != 0 {
				mode = lockmgr.ModeExclusive
			}
			reqs = append(reqs, lockmgr.Request{Granule: g, Mode: mode})
		}
		items = append(items, item{txn, reqs})
	}
	if !fr.done() {
		return errorFrame(id, statusBadRequest, "malformed lease body")
	}
	s.om.batchOps.Add(int64(k))
	codes := make([]string, k)
	msgs := make([]string, k)
	for i := range items {
		codes[i], msgs[i] = s.leaseCore(ctx, sess, items[i].txn, items[i].reqs, owned)
	}
	return batchFrame(id, codes, msgs)
}

// parseAcquireBody decodes one acquire body (txn, timeout, granule+mode
// list) from the cursor; used both standalone and inside acquireN.
func parseAcquireBody(fr *frameReader) (lockmgr.TxnID, []lockmgr.Request, int64) {
	txn := lockmgr.TxnID(fr.u64())
	timeoutMS := int64(fr.u64())
	n := fr.u32()
	if fr.bad || n > maxFrame/9 {
		fr.bad = true
		return txn, nil, timeoutMS
	}
	reqs := make([]lockmgr.Request, 0, n)
	for i := uint32(0); i < n; i++ {
		g := lockmgr.Granule(fr.u64())
		mode := lockmgr.ModeShared
		if fr.byte() != 0 {
			mode = lockmgr.ModeExclusive
		}
		reqs = append(reqs, lockmgr.Request{Granule: g, Mode: mode})
	}
	return txn, reqs, timeoutMS
}

// executeAcquireN runs the sub-claims of a batch concurrently — they
// are independent transactions, and running them serially would let one
// blocked claim starve the rest of the batch — and responds once with
// every sub-result. The frame-level status is OK; per-item statuses and
// messages travel in the body.
func (s *Server) executeAcquireN(ctx context.Context, sess *session, id uint64, body []byte, owned *ownedSet) *frameBuf {
	fr := frameReader{b: body}
	k := fr.u32()
	if fr.bad || k == 0 || k > v2MaxInflight {
		return errorFrame(id, statusBadRequest, "malformed acquireN count")
	}
	type sub struct {
		txn       lockmgr.TxnID
		reqs      []lockmgr.Request
		timeoutMS int64
	}
	subs := make([]sub, 0, k)
	for i := uint32(0); i < k; i++ {
		txn, reqs, timeoutMS := parseAcquireBody(&fr)
		subs = append(subs, sub{txn, reqs, timeoutMS})
	}
	if !fr.done() {
		return errorFrame(id, statusBadRequest, "malformed acquireN body")
	}
	s.om.batchOps.Add(int64(k))
	codes := make([]string, k)
	msgs := make([]string, k)
	var wg sync.WaitGroup
	for i := range subs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], msgs[i] = s.acquireCore(ctx, sess, subs[i].txn, subs[i].reqs, subs[i].timeoutMS, owned)
		}()
	}
	wg.Wait()
	return batchFrame(id, codes, msgs)
}

// executeReleaseN releases a batch of transactions sequentially
// (releases never block) and responds with per-item statuses.
func (s *Server) executeReleaseN(ctx context.Context, sess *session, id uint64, body []byte, owned *ownedSet) *frameBuf {
	fr := frameReader{b: body}
	k := fr.u32()
	if fr.bad || k == 0 || k > maxFrame/8 {
		return errorFrame(id, statusBadRequest, "malformed releaseN count")
	}
	txns := make([]lockmgr.TxnID, 0, k)
	for i := uint32(0); i < k; i++ {
		txns = append(txns, lockmgr.TxnID(fr.u64()))
	}
	if !fr.done() {
		return errorFrame(id, statusBadRequest, "malformed releaseN body")
	}
	s.om.batchOps.Add(int64(k))
	codes := make([]string, k)
	msgs := make([]string, k)
	for i, txn := range txns {
		codes[i], msgs[i] = s.releaseCore(ctx, sess, txn, owned)
	}
	return batchFrame(id, codes, msgs)
}

// statusFrame builds a plain response frame from a core outcome.
func statusFrame(id uint64, code, msg string) *frameBuf {
	if code == "" {
		fb := getFrame()
		fb.start(statusOK, id)
		fb.finish()
		return fb
	}
	return errorFrame(id, codeToStatus(code), msg)
}

// errorFrame builds an error response carrying the detail message.
func errorFrame(id uint64, status byte, msg string) *frameBuf {
	fb := getFrame()
	fb.start(status, id)
	fb.appendBytes([]byte(msg))
	fb.finish()
	return fb
}

// batchFrame builds an acquireN/releaseN response: frame status OK,
// body = k(4) then k × (status(1) msgLen(4) msg).
func batchFrame(id uint64, codes, msgs []string) *frameBuf {
	fb := getFrame()
	fb.start(statusOK, id)
	fb.appendU32(uint32(len(codes)))
	for i, code := range codes {
		fb.appendByte(codeToStatus(code))
		if code == "" {
			fb.appendU32(0)
			continue
		}
		fb.appendU32(uint32(len(msgs[i])))
		fb.appendBytes([]byte(msgs[i]))
	}
	fb.finish()
	return fb
}
