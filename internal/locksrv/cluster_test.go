package locksrv

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"granulock/internal/ring"
)

// startCluster launches an n-node cluster on ephemeral ports. mut may
// adjust each node's ClusterConfig (heartbeat cadence, recovery
// grace) before the server starts. Servers still running at test end
// are closed by cleanup; tests that kill a node mid-run just call its
// Close earlier (Close is idempotent).
func startCluster(t *testing.T, n int, mut func(i int, cfg *ClusterConfig), srvOpts ...ServerOption) ([]string, []*Server) {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		cfg := ClusterConfig{Nodes: addrs, Self: i}
		if mut != nil {
			mut(i, &cfg)
		}
		srv := NewServer(listeners[i], nil, append(append([]ServerOption(nil), srvOpts...), WithCluster(cfg))...)
		go srv.Serve()
		servers[i] = srv
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			srv.Close()
		}
	})
	return addrs, servers
}

// granulesOwnedBy returns count granules owned by node under the
// default ring of n nodes, scanning ids upward from 0.
func granulesOwnedBy(n, node, count int) []int64 {
	r := ring.New(n)
	out := make([]int64, 0, count)
	for g := int64(0); len(out) < count; g++ {
		if r.Owner(uint64(g)) == node {
			out = append(out, g)
		}
	}
	return out
}

// A raw v2 client talking to the wrong node gets a typed redirect
// carrying the owner's index and address.
func TestClusterRedirectV2(t *testing.T) {
	addrs, _ := startCluster(t, 2, nil)
	foreign := granulesOwnedBy(2, 1, 1)[0]
	c := dialV2(t, addrs[0], WithRetries(0))
	err := c.AcquireAll(1, xreq(foreign))
	var re *RedirectError
	if !errors.As(err, &re) {
		t.Fatalf("want RedirectError, got %v", err)
	}
	if re.Node != 1 || re.Addr != addrs[1] {
		t.Fatalf("redirect to node %d addr %q, want node 1 addr %q", re.Node, re.Addr, addrs[1])
	}
	if !errors.Is(err, ErrRedirect) {
		t.Fatalf("redirect error does not match ErrRedirect: %v", err)
	}
	// The same claim against the owning node succeeds.
	c1 := dialV2(t, addrs[1], WithRetries(0))
	if err := c1.AcquireAll(1, xreq(foreign)); err != nil {
		t.Fatalf("acquire on owner: %v", err)
	}
	if err := c1.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
}

// v1 negotiation works against a clustered server, and a v1 client
// gets the same typed redirect through the JSON taxonomy.
func TestClusterRedirectV1Negotiation(t *testing.T) {
	addrs, servers := startCluster(t, 2, nil)
	owned := granulesOwnedBy(2, 0, 1)[0]
	foreign := granulesOwnedBy(2, 1, 1)[0]
	c := dial(t, addrs[0])
	if err := c.AcquireAll(3, xreq(owned)); err != nil {
		t.Fatalf("v1 acquire of owned granule: %v", err)
	}
	if err := c.AcquireAll(4, xreq(foreign)); !errors.Is(err, ErrRedirect) {
		t.Fatalf("want ErrRedirect, got %v", err)
	}
	if err := c.ReleaseAll(3); err != nil {
		t.Fatal(err)
	}
	if n := servers[0].ClusterStats().Redirects; n != 1 {
		t.Fatalf("redirects counter %d, want 1", n)
	}
}

// The cluster client splits a claim across partitions, acquires
// all-or-nothing, and releases everywhere.
func TestClusterClientRoutesAcrossNodes(t *testing.T) {
	addrs, servers := startCluster(t, 2, nil)
	cc, err := DialCluster(addrs, WithLeaseInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	reqs := append(xreq(granulesOwnedBy(2, 0, 2)...), xreq(granulesOwnedBy(2, 1, 2)...)...)
	if err := cc.AcquireAll(1, reqs); err != nil {
		t.Fatal(err)
	}
	for i, srv := range servers {
		if n := srv.Table().HeldBy(1); n != 2 {
			t.Fatalf("node %d holds %d granules for txn 1, want 2", i, n)
		}
	}
	if n := cc.Redirects(); n != 0 {
		t.Fatalf("client followed %d redirects with a correct ring view", n)
	}
	if err := cc.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}
	for i, srv := range servers {
		if n := srv.Table().LockedGranules(); n != 0 {
			t.Fatalf("node %d still has %d locked granules", i, n)
		}
	}
}

// A cluster client with a stale one-node ring view still lands every
// claim by following redirects, including redirects arriving
// mid-pipeline from concurrent calls over the shared connection.
func TestClusterClientStaleViewRedirectMidPipeline(t *testing.T) {
	addrs, servers := startCluster(t, 2, nil)
	// The client only knows node 0, so it routes everything there and
	// must follow redirects to node 1 for roughly half the granules.
	cc, err := DialCluster(addrs[:1], WithLeaseInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One granule per claim: a redirect can correct the routing
			// of a whole claim, but not split a claim the stale ring
			// wrongly grouped across partitions (see DialCluster docs).
			for k := 0; k < 3; k++ {
				txn := int64(100 + w*3 + k)
				if err := cc.AcquireAll(txn, xreq(int64(w*3+k))); err != nil {
					errs[w] = err
					return
				}
				if err := cc.ReleaseAll(txn); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if cc.Redirects() == 0 {
		t.Fatal("no redirects followed despite the stale ring view")
	}
	for i, srv := range servers {
		if n := srv.Table().LockedGranules(); n != 0 {
			t.Fatalf("node %d still has %d locked granules", i, n)
		}
	}
	if n := servers[1].Table().Stats().Grants; n == 0 {
		t.Fatal("node 1 never granted anything; redirects were not followed")
	}
}

// Failover with re-assertion: kill the node holding a grant, let the
// standby take over, and verify the client's lease re-assert
// reconstructs the grant — mutual exclusion survives the failover.
func TestClusterFailoverReassertsGrants(t *testing.T) {
	addrs, servers := startCluster(t, 2, func(i int, cfg *ClusterConfig) {
		cfg.RecoveryGrace = 400 * time.Millisecond
	})
	g := granulesOwnedBy(2, 0, 2)
	cc, err := DialCluster(addrs,
		WithLeaseInterval(25*time.Millisecond),
		WithFailoverTimeout(5*time.Second),
		WithRetries(1), WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.AcquireAll(1, xreq(g...)); err != nil {
		t.Fatal(err)
	}
	// Kill node 0 and hand its partition to node 1 (deterministic
	// takeover; the heartbeat path is exercised by the locksim smoke).
	servers[0].Close()
	if !servers[1].BeginTakeover(0) {
		t.Fatal("BeginTakeover refused")
	}
	// The client's lease loop must notice the death and re-assert to
	// the standby within the recovery window.
	deadline := time.Now().Add(3 * time.Second)
	for servers[1].Table().HeldBy(1) != len(g) {
		if time.Now().After(deadline) {
			t.Fatalf("grants not reconstructed on standby; holds %d of %d",
				servers[1].Table().HeldBy(1), len(g))
		}
		time.Sleep(5 * time.Millisecond)
	}
	cs := servers[1].ClusterStats()
	if cs.Takeovers != 1 || cs.Reasserts == 0 {
		t.Fatalf("standby cluster stats %+v, want 1 takeover and >0 reasserts", cs)
	}
	if n := cc.LostLeases(); n != 0 {
		t.Fatalf("%d leases lost during clean failover", n)
	}
	// Mutual exclusion: a second client cannot take the granule while
	// the reconstructed grant lives...
	cc2, err := DialCluster(addrs, WithLeaseInterval(0),
		WithFailoverTimeout(5*time.Second),
		WithRetries(1), WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cc2.Close()
	if err := cc2.AcquireAllTimeout(2, xreq(g[0]), 100*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("conflicting acquire after failover: want ErrTimeout, got %v", err)
	}
	// ...and can once the owner releases.
	if err := cc.ReleaseAll(1); err != nil {
		t.Fatalf("release after failover: %v", err)
	}
	if err := cc2.AcquireAllTimeout(2, xreq(g[0]), 2*time.Second); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if err := cc2.ReleaseAll(2); err != nil {
		t.Fatal(err)
	}
}

// Grants that nobody re-asserts die with the recovery window: new
// acquires park until the seal, then take the granule; a late assert
// fails with lease_expired.
func TestClusterFailoverExpiresUnreasserted(t *testing.T) {
	addrs, servers := startCluster(t, 2, func(i int, cfg *ClusterConfig) {
		cfg.RecoveryGrace = 150 * time.Millisecond
	})
	g := granulesOwnedBy(2, 0, 1)
	// A raw v2 client (no failover machinery) holds the granule, then
	// its node dies and the client never re-asserts.
	holder := dialV2(t, addrs[0], WithRetries(0))
	if err := holder.AcquireAll(7, xreq(g...)); err != nil {
		t.Fatal(err)
	}
	servers[0].Close()
	holder.Close()
	if !servers[1].BeginTakeover(0) {
		t.Fatal("BeginTakeover refused")
	}
	// A fresh acquire parks behind the open window, then gets the
	// granule: the unreasserted grant did not survive.
	cc, err := DialCluster(addrs, WithLeaseInterval(0),
		WithFailoverTimeout(5*time.Second),
		WithRetries(1), WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	start := time.Now()
	if err := cc.AcquireAllTimeout(8, xreq(g...), 3*time.Second); err != nil {
		t.Fatalf("acquire after failover: %v", err)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatalf("acquire did not park behind the recovery window (took %v)", time.Since(start))
	}
	// The dead transaction's late re-assert is refused.
	late := dialV2(t, addrs[1], WithRetries(0))
	outs, err := late.Lease(1, []LeaseTxn{{Txn: 7, Reqs: xreq(g...)}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(outs[0], ErrLeaseExpired) {
		t.Fatalf("late re-assert: want ErrLeaseExpired, got %v", outs[0])
	}
	cs := servers[1].ClusterStats()
	if cs.ParkedAcquires == 0 || cs.LeaseExpired == 0 {
		t.Fatalf("standby cluster stats %+v, want parked acquires and expired leases", cs)
	}
	if err := cc.ReleaseAll(8); err != nil {
		t.Fatal(err)
	}
}

// The acceptance scenario under -race: a 3-node cluster with the real
// heartbeat failure detector, a worker fleet, and one node killed
// mid-run. The run must finish and drain with zero stranded granules
// on the survivors.
func TestClusterKillNodeUnderLoadDrainsClean(t *testing.T) {
	_, servers := startCluster(t, 3, func(i int, cfg *ClusterConfig) {
		cfg.HeartbeatEvery = 20 * time.Millisecond
		cfg.HeartbeatMisses = 2
		cfg.RecoveryGrace = 250 * time.Millisecond
	})
	addrs := []string{servers[0].Addr().String(), servers[1].Addr().String(), servers[2].Addr().String()}
	cc, err := DialCluster(addrs,
		WithLeaseInterval(50*time.Millisecond),
		WithFailoverTimeout(10*time.Second),
		WithRetries(2), WithBackoff(time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	const workers = 4
	const txnsPerWorker = 30
	var killOnce sync.Once
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				if w == 0 && i == txnsPerWorker/3 {
					// Kill node 1 mid-run; node 2 (its successor) must
					// detect it via heartbeats and take over.
					killOnce.Do(func() { servers[1].Close() })
				}
				txn := int64(w*1000 + i + 1)
				a := int64((w*txnsPerWorker + i) % 60)
				b := (a + 13) % 60
				reqs := xreq(a, b)
				var aerr error
				for attempt := 0; attempt < 40; attempt++ {
					aerr = cc.AcquireAllTimeout(txn, reqs, time.Second)
					if aerr == nil || errors.Is(aerr, ErrClientClosed) {
						break
					}
					// Timeouts, failover windows and node death are all
					// retriable here; the claim restarts from nothing.
					time.Sleep(2 * time.Millisecond)
				}
				if aerr != nil {
					errCh <- fmt.Errorf("worker %d txn %d: acquire: %w", w, txn, aerr)
					return
				}
				if rerr := cc.ReleaseAll(txn); rerr != nil {
					errCh <- fmt.Errorf("worker %d txn %d: release: %w", w, txn, rerr)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	cc.Close()
	// The survivors must hold nothing: every grant was released or
	// died with its session/node.
	deadline := time.Now().Add(2 * time.Second)
	for _, i := range []int{0, 2} {
		for {
			tbl := servers[i].Table()
			if tbl.HoldersCount() == 0 && tbl.LockedGranules() == 0 && tbl.WaitersCount() == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d stranded state: holders=%d granules=%d waiters=%d",
					i, tbl.HoldersCount(), tbl.LockedGranules(), tbl.WaitersCount())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if n := servers[2].ClusterStats().Takeovers; n != 1 {
		t.Fatalf("successor recorded %d takeovers, want 1", n)
	}
}
