package locksrv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/obs"
	"granulock/internal/rng"
)

// Typed protocol errors, unwrapped from Response.Code with errors.Is.
// These are lock-protocol outcomes, not transport failures: the client
// never retries them at the transport layer (the caller decides — a
// timed-out acquire is commonly retried after releasing, a foreign
// release is a logic bug).
//
// locksrv is a wire boundary: every error the package constructs in a
// function body must wrap one of these taxonomy values with %w, so
// callers on the far side can dispatch with errors.Is. The errtaxonomy
// analyzer (cmd/granulint) enforces this.
//
//granulint:wireboundary
var (
	// ErrTimeout: the acquire's wait deadline (timeout_ms) expired.
	ErrTimeout = errors.New("locksrv: acquire timed out")
	// ErrNotOwner: release of a transaction granted on another session.
	ErrNotOwner = errors.New("locksrv: transaction owned by another session")
	// ErrSessionClosed: the server is draining or closed the session.
	ErrSessionClosed = errors.New("locksrv: session closed by server")
	// ErrClientClosed: Close was called on this client; no further
	// requests or reconnects will be attempted.
	ErrClientClosed = errors.New("locksrv: client closed")
	// ErrBadRequest: the server rejected the request as malformed
	// (bad_request) — a client bug, not a transient fault.
	ErrBadRequest = errors.New("locksrv: bad request")
	// ErrUnknownOp: the server does not implement the requested op —
	// a protocol-version mismatch between client and server.
	ErrUnknownOp = errors.New("locksrv: unknown op")
	// ErrMalformedReply: the client could not decode a server reply, or
	// the reply carried a code outside the taxonomy — framing or
	// protocol state is suspect.
	ErrMalformedReply = errors.New("locksrv: malformed reply")
	// ErrRedirect: the request reached a cluster node that does not
	// serve the granule set. In v2 replies the concrete error is a
	// *RedirectError carrying the owning node's index and address
	// (errors.As); the cluster client follows it transparently.
	ErrRedirect = errors.New("locksrv: granule served by another node")
	// ErrLeaseExpired: a lease re-assert lost the failover race — the
	// recovery window sealed before the assert arrived, or the grants
	// conflict with state already reconstructed. The transaction's locks
	// are gone and the caller must re-claim from scratch.
	ErrLeaseExpired = errors.New("locksrv: lease expired")
)

// RedirectError is the concrete error behind ErrRedirect on the v2
// path: the serving node's ring index and dial address, parsed from
// the redirect detail. Match with errors.As to follow the redirect, or
// errors.Is(err, ErrRedirect) to merely classify it.
type RedirectError struct {
	Node int    // ring index of the serving node
	Addr string // dial address of the serving node
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("locksrv: granule served by node %d at %s", e.Node, e.Addr)
}

// Unwrap chains to ErrRedirect so errors.Is classification works.
func (e *RedirectError) Unwrap() error { return ErrRedirect }

// redirectDetail encodes the serving node for a redirect reply; the
// format is shared by v1 Response.Err, v2 single frames and batch
// sub-item messages.
func redirectDetail(node int, addr string) string {
	return fmt.Sprintf("%d %s", node, addr)
}

// parseRedirectDetail is the inverse of redirectDetail. ok is false
// when the detail does not parse (a redirect from a future protocol
// revision degrades to the plain ErrRedirect classification).
func parseRedirectDetail(detail string) (node int, addr string, ok bool) {
	i := 0
	for i < len(detail) && detail[i] >= '0' && detail[i] <= '9' {
		node = node*10 + int(detail[i]-'0')
		i++
	}
	if i == 0 || i+1 >= len(detail) || detail[i] != ' ' {
		return 0, "", false
	}
	return node, detail[i+1:], true
}

// Client is one lock-manager session. A Client serializes its requests
// (one in flight at a time) and belongs to one worker, mirroring a
// database session; open one Client per concurrent worker. Methods are
// not safe for concurrent use on the same Client.
//
// The client survives transport faults: a failed send, receive or dial
// tears the connection down and retries the request on a fresh
// connection, with capped exponential backoff and deterministic jitter,
// up to the retry budget. Retrying is safe because a dead session's
// grants are force-released by the server — re-sending an acquire whose
// response was lost re-claims from a clean slate, and re-sending a
// release is idempotent. Lock-protocol errors (timeout, not_owner,
// bad_request) come back as typed errors and are never retried here.
type Client struct {
	clientCfg

	// connMu guards the conn pointer handoff between the request
	// goroutine (connect/dropConn) and Close, which may be called from
	// another goroutine to abort an in-flight blocking acquire. dec,
	// encBuf and enc are touched only by the request goroutine.
	connMu sync.Mutex
	conn   net.Conn
	closed atomic.Bool
	// closeCh is closed exactly once by Close; the backoff sleep selects
	// on it so Close aborts a reconnect backoff immediately instead of
	// letting the attempt sleep out its delay.
	closeCh chan struct{}

	dec *json.Decoder
	// encBuf is the reused request encode buffer: each request is
	// marshaled into it and written to the connection with one Write,
	// instead of allocating an encoder buffer per call.
	encBuf bytes.Buffer
	enc    *json.Encoder

	// timer is the reusable backoff timer behind the default sleep; the
	// client is single-goroutine, so one per session suffices and no
	// backoff allocates a timer per call.
	timer *time.Timer

	reconnects int64
	retried    int64
}

// clientCfg is the configuration shared by the v1 Client and the
// pipelined ClientV2; ClientOption values apply to either.
type clientCfg struct {
	addr string
	dial func(addr string) (net.Conn, error)

	retries     int // transport retries per request, beyond the first attempt
	backoffBase time.Duration
	backoffMax  time.Duration
	jitter      *rng.Source
	sleep       func(time.Duration) // test seam; nil means the default timer-backed sleep

	// Registry twins of the reconnect/retry counters, nil without
	// WithClientMetrics. Registration is idempotent, so a fleet of
	// workers sharing one registry aggregates into the same series.
	mReconnects *obs.Counter
	mRetries    *obs.Counter

	// Cluster-client knobs (WithLeaseInterval, WithFailoverTimeout,
	// WithRingVNodes); ignored by the single-node clients.
	leaseEvery   time.Duration
	failoverWait time.Duration
	ringVNodes   int
}

func defaultClientCfg(addr string) clientCfg {
	return clientCfg{
		addr: addr,
		dial: func(addr string) (net.Conn, error) {
			return net.Dial("tcp", addr)
		},
		retries:     4,
		backoffBase: 10 * time.Millisecond,
		backoffMax:  time.Second,
		jitter:      rng.New(1),
	}
}

// ClientOption configures a Client or ClientV2.
type ClientOption func(*clientCfg)

// WithRetries sets how many times a request is retried after a
// transport failure (dial, send or receive). Default 4. Zero disables
// reconnection entirely: the first transport error is final.
func WithRetries(n int) ClientOption {
	return func(c *clientCfg) { c.retries = n }
}

// WithBackoff sets the reconnect backoff: attempt k sleeps for
// base·2^k, capped at max, with deterministic jitter in [d/2, d).
// Default 10ms base, 1s cap.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *clientCfg) { c.backoffBase, c.backoffMax = base, max }
}

// WithJitterSeed seeds the deterministic backoff jitter stream, so a
// fleet of workers with distinct seeds desynchronizes its reconnect
// storms reproducibly. Default seed 1.
func WithJitterSeed(seed uint64) ClientOption {
	return func(c *clientCfg) { c.jitter = rng.New(seed) }
}

// WithDialer replaces the transport dialer — how the client (re)opens
// its connection. Fault-injection tests wrap the returned conn (see
// FaultyDialer).
func WithDialer(dial func(addr string) (net.Conn, error)) ClientOption {
	return func(c *clientCfg) { c.dial = dial }
}

// WithClientMetrics mirrors the client's reconnect and retry counters
// into reg (granulock_locksrv_client_reconnects_total,
// granulock_locksrv_client_retries_total). Clients sharing a registry
// aggregate into the same series, one series per fleet.
func WithClientMetrics(reg *obs.Registry) ClientOption {
	return func(c *clientCfg) {
		c.mReconnects = reg.NewCounter("granulock_locksrv_client_reconnects_total",
			"Connections re-established after a transport failure.")
		c.mRetries = reg.NewCounter("granulock_locksrv_client_retries_total",
			"Request attempts that were transport retries.")
	}
}

// Dial connects to a lock server.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{clientCfg: defaultClientCfg(addr), closeCh: make(chan struct{})}
	for _, o := range opts {
		o(&c.clientCfg)
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// doSleep sleeps for d using the test seam if set, else the client's
// reusable timer. A concurrent Close aborts the sleep immediately: the
// caller's retry loop observes closed on its next iteration and fails
// with ErrClientClosed instead of waiting out the backoff.
func (c *Client) doSleep(d time.Duration) {
	if c.sleep != nil {
		c.sleep(d)
		return
	}
	if d <= 0 {
		return
	}
	if c.timer == nil {
		c.timer = time.NewTimer(d)
	} else {
		// The timer was always left fired-and-drained or
		// stopped-and-drained by the select below, so Reset is safe.
		c.timer.Reset(d)
	}
	select {
	case <-c.timer.C:
	case <-c.closeCh:
		if !c.timer.Stop() {
			<-c.timer.C
		}
	}
}

// connect opens a fresh connection, replacing any previous one. It
// refuses (closing the new conn) if Close won the race.
func (c *Client) connect() error {
	conn, err := c.dial(c.addr)
	if err != nil {
		return fmt.Errorf("locksrv: dial: %w", err)
	}
	c.connMu.Lock()
	if c.closed.Load() {
		c.connMu.Unlock()
		conn.Close()
		return ErrClientClosed
	}
	c.conn = conn
	c.connMu.Unlock()
	// json.Decoder buffers internally; decoding straight off the conn
	// keeps reconnect simple (no external buffer to lose bytes in).
	c.dec = json.NewDecoder(conn)
	if c.enc == nil {
		c.enc = json.NewEncoder(&c.encBuf)
	}
	return nil
}

// dropConn tears down a connection after a transport error.
func (c *Client) dropConn() {
	c.connMu.Lock()
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// haveConn reports whether a connection is currently established.
func (c *Client) haveConn() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn != nil
}

// backoffDelay returns the sleep before reconnect attempt k (0-based):
// capped exponential with deterministic jitter drawn from the client's
// rng stream, uniform in [d/2, d).
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.backoffBase
	for i := 0; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(c.jitter.Intn(int(half)+1))
}

// roundTrip sends one request and reads its response, reconnecting and
// retrying on transport failures within the retry budget.
func (c *Client) roundTrip(req Request) (Response, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if c.closed.Load() {
			if lastErr != nil {
				return Response{}, fmt.Errorf("%w (after: %v)", ErrClientClosed, lastErr)
			}
			return Response{}, ErrClientClosed
		}
		if attempt > 0 {
			c.retried++
			if c.mRetries != nil {
				c.mRetries.Inc()
			}
			c.doSleep(c.backoffDelay(attempt - 1))
		}
		if !c.haveConn() {
			if err := c.connect(); err != nil {
				if errors.Is(err, ErrClientClosed) {
					return Response{}, err
				}
				lastErr = err
				continue
			}
			c.reconnects++
			if c.mReconnects != nil {
				c.mReconnects.Inc()
			}
		}
		// Encode into the reused buffer, then write the request in one
		// call. The conn pointer is re-read under connMu so a concurrent
		// Close cannot hand us a stale non-nil conn.
		c.encBuf.Reset()
		if err := c.enc.Encode(req); err != nil {
			c.dropConn()
			lastErr = fmt.Errorf("locksrv: send: %w", err)
			continue
		}
		c.connMu.Lock()
		conn := c.conn
		c.connMu.Unlock()
		if conn == nil {
			lastErr = fmt.Errorf("locksrv: send: %w", net.ErrClosed)
			continue
		}
		if _, err := conn.Write(c.encBuf.Bytes()); err != nil {
			c.dropConn()
			lastErr = fmt.Errorf("locksrv: send: %w", err)
			continue
		}
		var resp Response
		if err := c.dec.Decode(&resp); err != nil {
			c.dropConn()
			lastErr = fmt.Errorf("locksrv: receive: %w", err)
			continue
		}
		return resp, nil
	}
	return Response{}, fmt.Errorf("locksrv: retry budget exhausted after %d attempts: %w", c.retries+1, lastErr)
}

// Reconnects returns how many times the client re-established its
// connection after a transport failure.
func (c *Client) Reconnects() int64 { return c.reconnects }

// Retries returns how many request attempts were retries.
func (c *Client) Retries() int64 { return c.retried }

// respErr converts a protocol-level failure into a typed error.
func respErr(op string, resp Response) error {
	if resp.OK {
		return nil
	}
	var base error
	switch resp.Code {
	case CodeTimeout:
		base = ErrTimeout
	case CodeNotOwner:
		base = ErrNotOwner
	case CodeClosed:
		base = ErrSessionClosed
	case CodeBadRequest:
		base = ErrBadRequest
	case CodeUnknownOp:
		base = ErrUnknownOp
	case CodeRedirect:
		if node, addr, ok := parseRedirectDetail(resp.Err); ok {
			base = &RedirectError{Node: node, Addr: addr}
		} else {
			base = ErrRedirect
		}
	case CodeLeaseExpired:
		base = ErrLeaseExpired
	default:
		// A code outside the taxonomy: the server speaks a newer (or
		// corrupted) protocol revision.
		base = ErrMalformedReply
	}
	return fmt.Errorf("locksrv: %s: %w (%s)", op, base, resp.Err)
}

// AcquireAll conservatively claims the lock set for txn, blocking until
// granted. Mirrors lockmgr.Table.AcquireAll across the wire.
func (c *Client) AcquireAll(txn int64, reqs []lockmgr.Request) error {
	return c.AcquireAllTimeout(txn, reqs, 0)
}

// AcquireAllTimeout is AcquireAll with a wait deadline: if the claim is
// not granted within timeout the server withdraws it, the transaction
// holds nothing, and the call fails with an error matching ErrTimeout
// (errors.Is). Zero timeout waits indefinitely.
func (c *Client) AcquireAllTimeout(txn int64, reqs []lockmgr.Request, timeout time.Duration) error {
	granules := make([]int64, len(reqs))
	exclusive := make([]bool, len(reqs))
	for i, r := range reqs {
		granules[i] = int64(r.Granule)
		exclusive[i] = r.Mode == lockmgr.ModeExclusive
	}
	// Round a sub-millisecond timeout up to the wire's 1ms resolution:
	// the protocol reads timeout_ms=0 as "wait indefinitely", so
	// truncation would turn a tight deadline into an unbounded block.
	timeoutMS := int64(timeout / time.Millisecond)
	if timeout > 0 && timeoutMS == 0 {
		timeoutMS = 1
	}
	resp, err := c.roundTrip(Request{
		Op:        "acquire",
		Txn:       txn,
		Granules:  granules,
		Exclusive: exclusive,
		TimeoutMS: timeoutMS,
	})
	if err != nil {
		return err
	}
	return respErr("acquire", resp)
}

// ReleaseAll releases everything txn holds. Releasing a transaction
// granted on a different session fails with an error matching
// ErrNotOwner; releasing an unknown transaction is an idempotent no-op.
func (c *Client) ReleaseAll(txn int64) error {
	resp, err := c.roundTrip(Request{Op: "release", Txn: txn})
	if err != nil {
		return err
	}
	return respErr("release", resp)
}

// Stats fetches the server's lock-table counters.
func (c *Client) Stats() (lockmgr.Stats, error) {
	table, _, err := c.FullStats()
	return table, err
}

// FullStats fetches both halves of the "stats" op: the lock-table
// counters and the service-level gauges, counters and wait quantiles.
func (c *Client) FullStats() (lockmgr.Stats, ServerStats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return lockmgr.Stats{}, ServerStats{}, err
	}
	if !resp.OK || resp.Stats == nil {
		return lockmgr.Stats{}, ServerStats{}, respErr("stats", resp)
	}
	var srv ServerStats
	if resp.Server != nil {
		srv = *resp.Server
	}
	return *resp.Stats, srv, nil
}

// Close ends the session; the server releases any locks its
// transactions still hold. Close is the one method safe to call from
// another goroutine: it aborts an in-flight blocking request (the
// request fails with an error matching ErrClientClosed) and disables
// further reconnects.
func (c *Client) Close() error {
	if c.closed.CompareAndSwap(false, true) && c.closeCh != nil {
		close(c.closeCh)
	}
	c.connMu.Lock()
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}
