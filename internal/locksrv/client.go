package locksrv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	"granulock/internal/lockmgr"
)

// Client is one lock-manager session. A Client serializes its requests
// (one in flight at a time) and belongs to one worker, mirroring a
// database session; open one Client per concurrent worker. Methods are
// not safe for concurrent use on the same Client.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a lock server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("locksrv: dial: %w", err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("locksrv: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("locksrv: receive: %w", err)
	}
	return resp, nil
}

// AcquireAll conservatively claims the lock set for txn, blocking until
// granted. Mirrors lockmgr.Table.AcquireAll across the wire.
func (c *Client) AcquireAll(txn int64, reqs []lockmgr.Request) error {
	granules := make([]int64, len(reqs))
	exclusive := make([]bool, len(reqs))
	for i, r := range reqs {
		granules[i] = int64(r.Granule)
		exclusive[i] = r.Mode == lockmgr.ModeExclusive
	}
	resp, err := c.roundTrip(Request{Op: "acquire", Txn: txn, Granules: granules, Exclusive: exclusive})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("locksrv: acquire: %s", resp.Err)
	}
	return nil
}

// ReleaseAll releases everything txn holds.
func (c *Client) ReleaseAll(txn int64) error {
	resp, err := c.roundTrip(Request{Op: "release", Txn: txn})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("locksrv: release: %s", resp.Err)
	}
	return nil
}

// Stats fetches the server's lock-table counters.
func (c *Client) Stats() (lockmgr.Stats, error) {
	resp, err := c.roundTrip(Request{Op: "stats"})
	if err != nil {
		return lockmgr.Stats{}, err
	}
	if !resp.OK || resp.Stats == nil {
		return lockmgr.Stats{}, fmt.Errorf("locksrv: stats: %s", resp.Err)
	}
	return *resp.Stats, nil
}

// Close ends the session; the server releases any locks its
// transactions still hold.
func (c *Client) Close() error { return c.conn.Close() }
