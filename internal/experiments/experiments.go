// Package experiments defines and runs the paper's evaluation: Table 1
// and Figures 2 through 12. Each experiment is a parameter sweep over
// the simulation model; the output is a Figure holding one or more
// panels of labelled series, renderable as text tables, ASCII charts and
// CSV.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"granulock/internal/model"
	"granulock/internal/obs"
	"granulock/internal/stats"
)

// BaseParams returns the paper's Table 1 configuration (see DESIGN.md
// for the reconstruction of the scanned table).
func BaseParams() model.Params {
	return model.Params{
		DBSize:      5000,
		Ltot:        100,
		NTrans:      10,
		MaxTransize: 500,
		CPUTime:     0.05,
		IOTime:      0.2,
		LockCPUTime: 0.01,
		LockIOTime:  0.2,
		NPros:       10,
		TMax:        1000,
		Seed:        1,
	}
}

// LtotSweep returns the standard granularity sweep of the figures:
// roughly logarithmic from 1 lock to one lock per entity.
func LtotSweep(dbsize int) []int {
	candidates := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	var out []int
	for _, c := range candidates {
		if c < dbsize {
			out = append(out, c)
		}
	}
	return append(out, dbsize)
}

// NprosSweep is the processor-count sweep of §3.1.
func NprosSweep() []int { return []int{1, 2, 5, 10, 20, 30} }

// Options control experiment execution.
type Options struct {
	// TMax overrides the simulation horizon; 0 keeps the default.
	TMax float64
	// Seed is the base seed; replication r of a run uses Seed+r.
	Seed uint64
	// Replications averages each point over this many seeds (min 1).
	Replications int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Context, when non-nil, cancels the sweep: cells not yet started
	// are skipped and in-flight simulations abort at the next
	// cancellation check (a few thousand events). The sweep then fails
	// with the context's error. Results are unaffected when the context
	// never fires: cancellation checks do not perturb the event order.
	Context context.Context
	// Metrics, when non-nil, reports sweep progress into the registry:
	// per-cell counters and a cell wall-time histogram
	// (granulock_sweep_ families, labelled by figure id).
	Metrics *obs.Registry
	// figure labels the metric series; Run sets it to the experiment
	// id, direct sweep callers report as "adhoc".
	figure string
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.Replications < 1 {
		o.Replications = 1
	}
	if o.Parallelism < 1 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Point is one swept configuration and its (replication-averaged)
// metrics.
type Point struct {
	X float64 // the swept quantity, e.g. ltot
	M model.Metrics
	// ThroughputCI is the 95% confidence half-width of the throughput
	// across replications (0 for a single replication).
	ThroughputCI float64
}

// Series is one labelled curve of an experiment.
type Series struct {
	Label  string
	Points []Point
}

// XY projects the series through a metric accessor.
func (s Series) XY(metric func(model.Metrics) float64) (xs, ys []float64) {
	xs = make([]float64, len(s.Points))
	ys = make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.X
		ys[i] = metric(p.M)
	}
	return xs, ys
}

// Panel is one plotted quantity of a figure.
type Panel struct {
	YLabel string
	Metric func(model.Metrics) float64
	Series []Series
}

// Figure is a fully evaluated experiment.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Panels []Panel
}

// cell identifies one simulation of a sweep grid.
type cell struct {
	series int
	point  int
	rep    int
	params model.Params
}

// sweep runs a grid: one Series per label, one Point per x value, with
// mkParams producing the configuration for (series, point). Runs execute
// on a bounded worker pool; results are deterministic because each cell
// derives its seed from Options.Seed and the replication index only.
func sweep(o Options, labels []string, xs []float64, mkParams func(series, point int) model.Params) ([]Series, error) {
	o = o.normalize()
	var cells []cell
	for si := range labels {
		for pi := range xs {
			for r := 0; r < o.Replications; r++ {
				p := mkParams(si, pi)
				if o.TMax > 0 {
					p.TMax = o.TMax
				}
				p.Seed = o.Seed + uint64(r)*1_000_003
				if err := p.Validate(); err != nil {
					return nil, fmt.Errorf("experiments: series %q x=%v: %w", labels[si], xs[pi], err)
				}
				cells = append(cells, cell{series: si, point: pi, rep: r, params: p})
			}
		}
	}

	sm := newSweepMetrics(o)
	sm.cellsTotal(int64(len(cells)))

	type result struct {
		cell cell
		m    model.Metrics
		err  error
	}
	results := make([]result, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Parallelism)
	for i, c := range cells {
		i, c := i, c
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if o.Context != nil && o.Context.Err() != nil {
				results[i] = result{cell: c, err: o.Context.Err()}
				return
			}
			start := time.Time{}
			if sm != nil {
				start = time.Now()
			}
			m, err := CachedRunContext(o.Context, c.params)
			if sm != nil && err == nil {
				sm.cellDone(time.Since(start))
			}
			results[i] = result{cell: c, m: m, err: err}
		}()
	}
	wg.Wait()

	// Group replications per (series, point) and average.
	type key struct{ si, pi int }
	grouped := make(map[key][]model.Metrics)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		k := key{r.cell.series, r.cell.point}
		grouped[k] = append(grouped[k], r.m)
	}

	series := make([]Series, len(labels))
	for si, label := range labels {
		pts := make([]Point, len(xs))
		for pi, x := range xs {
			ms := grouped[key{si, pi}]
			avg, ci := Average(ms)
			pts[pi] = Point{X: x, M: avg, ThroughputCI: ci}
		}
		series[si] = Series{Label: label, Points: pts}
	}
	sortSeriesPoints(series)
	return series, nil
}

// Average reduces replications to field-wise means, plus a 95%
// throughput confidence half-width (0 for a single run). The facade
// uses it to collapse a replicated run into one Metrics value.
func Average(ms []model.Metrics) (model.Metrics, float64) {
	if len(ms) == 1 {
		return ms[0], 0
	}
	var out model.Metrics
	var thr stats.Welford
	n := float64(len(ms))
	for _, m := range ms {
		out.TotCPUs += m.TotCPUs / n
		out.TotIOs += m.TotIOs / n
		out.LockCPUs += m.LockCPUs / n
		out.LockIOs += m.LockIOs / n
		out.UsefulCPUs += m.UsefulCPUs / n
		out.UsefulIOs += m.UsefulIOs / n
		out.Throughput += m.Throughput / n
		out.MeanResponse += m.MeanResponse / n
		out.DenialRate += m.DenialRate / n
		out.MeanActive += m.MeanActive / n
		out.TotCom += m.TotCom
		out.LockRequests += m.LockRequests
		out.LockDenials += m.LockDenials
		out.CompletedEntities += m.CompletedEntities
		out.Events += m.Events
		thr.Add(m.Throughput)
	}
	out.TotCom = int(float64(out.TotCom)/n + 0.5)
	out.LockRequests = int(float64(out.LockRequests)/n + 0.5)
	out.LockDenials = int(float64(out.LockDenials)/n + 0.5)
	out.CompletedEntities = int(float64(out.CompletedEntities)/n + 0.5)
	// Events stays a sum, not a mean: it accounts the total simulation
	// work behind the point, which is what events/sec reporting needs.
	return out, thr.CI95()
}

// sweepMetrics reports sweep progress into Options.Metrics, one label
// set per figure id.
type sweepMetrics struct {
	cells       *obs.Counter
	completed   *obs.Counter
	cellSeconds *obs.Histogram
}

// newSweepMetrics binds the sweep progress families for o, or nil when
// no registry was supplied.
func newSweepMetrics(o Options) *sweepMetrics {
	if o.Metrics == nil {
		return nil
	}
	fig := o.figure
	if fig == "" {
		fig = "adhoc"
	}
	reg := o.Metrics
	return &sweepMetrics{
		cells: reg.NewCounterVec("granulock_sweep_cells_total",
			"Simulation cells scheduled by parameter sweeps.", "figure").With(fig),
		completed: reg.NewCounterVec("granulock_sweep_cells_completed_total",
			"Simulation cells completed by parameter sweeps.", "figure").With(fig),
		cellSeconds: reg.NewHistogramVec("granulock_sweep_cell_seconds",
			"Wall time per completed sweep cell in seconds (cache hits are near zero).",
			obs.ExpBuckets(0.001, 4, 10), "figure").With(fig),
	}
}

// cellsTotal records n cells entering the sweep.
func (sm *sweepMetrics) cellsTotal(n int64) {
	if sm != nil {
		sm.cells.Add(n)
	}
}

// cellDone records one completed cell and its wall time.
func (sm *sweepMetrics) cellDone(d time.Duration) {
	sm.completed.Inc()
	sm.cellSeconds.Observe(d.Seconds())
}

// sortSeriesPoints keeps points in ascending x order (sweeps already
// are, but renderers rely on it).
func sortSeriesPoints(series []Series) {
	for i := range series {
		pts := series[i].Points
		sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
	}
}

// Throughput, MeanResponse, UsefulIO, UsefulCPU and LockOverhead are the
// metric accessors the figures plot.
func Throughput(m model.Metrics) float64   { return m.Throughput }
func MeanResponse(m model.Metrics) float64 { return m.MeanResponse }
func UsefulIO(m model.Metrics) float64     { return m.UsefulIOs }
func UsefulCPU(m model.Metrics) float64    { return m.UsefulCPUs }

// LockOverhead is the total time spent on lock operations (CPU plus
// I/O), the quantity of Figures 4 and 5.
func LockOverhead(m model.Metrics) float64 { return m.LockCPUs + m.LockIOs }
