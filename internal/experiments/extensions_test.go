package experiments

import (
	"strings"
	"testing"
)

func TestExtIDs(t *testing.T) {
	ids := ExtIDs()
	if len(ids) != 11 {
		t.Fatalf("%d extension ids", len(ids))
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "ext-") {
			t.Fatalf("extension id %q lacks ext- prefix", id)
		}
	}
	if _, err := RunExt("nope", fast()); err == nil {
		t.Fatal("unknown extension accepted")
	}
}

func TestRunDispatchesExtensions(t *testing.T) {
	f, err := Run("ext-requeue", fast())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "ext-requeue" || len(f.Panels) != 1 || len(f.Panels[0].Series) != 2 {
		t.Fatalf("structure: %+v", f.ID)
	}
}

func TestExtSchedulingRescuesFineGranularity(t *testing.T) {
	o := fast()
	o.TMax = 600 // heavy load needs a longer horizon to show the effect
	f, err := ExtScheduling(o)
	if err != nil {
		t.Fatal(err)
	}
	panel := f.Panels[0]
	at := func(label string, x float64) float64 {
		for _, s := range panel.Series {
			if s.Label == label {
				for _, pt := range s.Points {
					if pt.X == x {
						return panel.Metric(pt.M)
					}
				}
			}
		}
		t.Fatalf("series %q x=%v missing", label, x)
		return 0
	}
	unlimited := at("unlimited", 5000)
	mpl2 := at("fixed MPL 2", 5000)
	if mpl2 <= unlimited {
		t.Fatalf("MPL 2 (%v) did not beat unlimited (%v) at entity-level locks under heavy load", mpl2, unlimited)
	}
	adaptive := at("adaptive AIMD", 5000)
	if adaptive <= unlimited {
		t.Fatalf("adaptive (%v) did not beat unlimited (%v)", adaptive, unlimited)
	}
}

func TestExtDisciplineMarginalEffect(t *testing.T) {
	// Ref [3]'s claim, reproduced: SJF vs FCFS moves throughput only
	// marginally at every granularity.
	o := fast()
	o.TMax = 500
	f, err := ExtDiscipline(o)
	if err != nil {
		t.Fatal(err)
	}
	panel := f.Panels[0]
	fcfs, sjf := panel.Series[0], panel.Series[1]
	for i := range fcfs.Points {
		a := panel.Metric(fcfs.Points[i].M)
		b := panel.Metric(sjf.Points[i].M)
		hi := a
		if b > hi {
			hi = b
		}
		if hi == 0 {
			continue
		}
		if diff := (a - b) / hi; diff < -0.15 || diff > 0.15 {
			t.Fatalf("ltot=%v: FCFS %v vs SJF %v differ by more than 15%%", fcfs.Points[i].X, a, b)
		}
	}
}

func TestExtHotSpotLowersThroughput(t *testing.T) {
	o := fast()
	o.TMax = 400
	f, err := ExtHotSpot(o)
	if err != nil {
		t.Fatal(err)
	}
	panel := f.Panels[0]
	uniform, skewed := panel.Series[0], panel.Series[2]
	// At moderate granularity, heavy skew must cost throughput (the
	// effective conflict space shrinks 10x).
	for i, pt := range uniform.Points {
		if pt.X != 100 {
			continue
		}
		u := panel.Metric(pt.M)
		s := panel.Metric(skewed.Points[i].M)
		if s >= u {
			t.Fatalf("skew 0.9 (%v) not below uniform (%v) at ltot=100", s, u)
		}
	}
	// At ltot=1 all variants coincide (one lock either way).
	u0 := panel.Metric(uniform.Points[0].M)
	s0 := panel.Metric(skewed.Points[0].M)
	if u0 != s0 {
		t.Fatalf("skew changed the whole-database-lock case: %v vs %v", u0, s0)
	}
}

func TestExtResponseTail(t *testing.T) {
	o := fast()
	o.TMax = 400
	f, err := ExtResponseTail(o)
	if err != nil {
		t.Fatal(err)
	}
	panel := f.Panels[0]
	if len(panel.Series) != 2 {
		t.Fatalf("series %d", len(panel.Series))
	}
	p50, p95 := panel.Series[0], panel.Series[1]
	for i := range p50.Points {
		lo := panel.Metric(p50.Points[i].M)
		hi := panel.Metric(p95.Points[i].M)
		if lo == 0 && hi == 0 {
			continue // no completions at this extreme point
		}
		if hi < lo {
			t.Fatalf("P95 (%v) below P50 (%v) at ltot=%v", hi, lo, p50.Points[i].X)
		}
	}
	// At entity-level locking the tail must exceed the well-tuned tail.
	tailAt := func(x float64) float64 {
		for _, pt := range p95.Points {
			if pt.X == x {
				return panel.Metric(pt.M)
			}
		}
		return 0
	}
	if tuned, fine := tailAt(20), tailAt(5000); fine > 0 && tuned > 0 && fine <= tuned {
		t.Fatalf("P95 at ltot=5000 (%v) not above ltot=20 (%v)", fine, tuned)
	}
}

func TestExtMixClass(t *testing.T) {
	o := fast()
	o.TMax = 500
	f, err := ExtMixClass(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels) != 2 || len(f.Panels[0].Series) != 2 {
		t.Fatalf("structure: %d panels", len(f.Panels))
	}
	thr := f.Panels[0]
	small, large := thr.Series[0], thr.Series[1]
	for i := range small.Points {
		s := thr.Metric(small.Points[i].M)
		l := thr.Metric(large.Points[i].M)
		// Small transactions are 80% of arrivals and individually
		// faster: their throughput dominates at every granularity.
		if s <= l {
			t.Fatalf("ltot=%v: small-class throughput %v not above large-class %v",
				small.Points[i].X, s, l)
		}
	}
	resp := f.Panels[1]
	for i := range small.Points {
		if s, l := resp.Metric(resp.Series[0].Points[i].M), resp.Metric(resp.Series[1].Points[i].M); s > 0 && l > 0 && s >= l {
			t.Fatalf("ltot=%v: small-class response %v not below large-class %v",
				small.Points[i].X, s, l)
		}
	}
}

func TestExtLockSharingStructure(t *testing.T) {
	f, err := ExtLockSharing(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels[0].Series) != 2 {
		t.Fatalf("series count %d", len(f.Panels[0].Series))
	}
	text := RenderText(f)
	if !strings.Contains(text, "dedicated lock processor") {
		t.Fatal("render missing series label")
	}
}
