package experiments

import (
	"strings"
	"testing"

	"granulock/internal/model"
)

// fast returns options that keep sweep tests quick but still
// discriminating.
func fast() Options {
	return Options{TMax: 200, Seed: 1, Replications: 1}
}

func TestLtotSweepShape(t *testing.T) {
	xs := LtotSweep(5000)
	if xs[0] != 1 {
		t.Fatalf("sweep must start at 1: %v", xs)
	}
	if xs[len(xs)-1] != 5000 {
		t.Fatalf("sweep must end at dbsize: %v", xs)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("sweep not increasing: %v", xs)
		}
	}
}

func TestLtotSweepSmallDB(t *testing.T) {
	xs := LtotSweep(7)
	want := []int{1, 2, 5, 7}
	if len(xs) != len(want) {
		t.Fatalf("sweep %v, want %v", xs, want)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("sweep %v, want %v", xs, want)
		}
	}
}

func TestBaseParamsValid(t *testing.T) {
	p := BaseParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("BaseParams invalid: %v", err)
	}
}

func TestSweepStructure(t *testing.T) {
	base := BaseParams()
	ltots := []int{1, 100, 5000}
	series, err := sweep(fast(), []string{"a", "b"}, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.NPros = 1 + si*9
		p.Ltot = ltots[pi]
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("series %q has %d points", s.Label, len(s.Points))
		}
		for i, p := range s.Points {
			if p.X != float64(ltots[i]) {
				t.Fatalf("point x %v, want %d", p.X, ltots[i])
			}
			// At a short horizon with npros=1 and entity-level locks the
			// first transaction may legitimately still be in flight, so
			// require lock activity rather than completions.
			if p.M.LockRequests <= 0 {
				t.Fatalf("point (%q, %v) shows no activity", s.Label, p.X)
			}
		}
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	base := BaseParams()
	mk := func(par int) []Series {
		o := fast()
		o.Parallelism = par
		s, err := sweep(o, []string{"a"}, []float64{1, 100}, func(si, pi int) model.Params {
			p := base
			p.Ltot = []int{1, 100}[pi]
			return p
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(1), mk(8)
	for i := range a {
		for j := range a[i].Points {
			if a[i].Points[j].M != b[i].Points[j].M {
				t.Fatalf("parallelism changed results at series %d point %d", i, j)
			}
		}
	}
}

func TestSweepReplicationsAveraged(t *testing.T) {
	base := BaseParams()
	o := fast()
	o.Replications = 3
	series, err := sweep(o, []string{"a"}, []float64{100}, func(si, pi int) model.Params {
		p := base
		p.Ltot = 100
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := series[0].Points[0]
	if pt.ThroughputCI <= 0 {
		t.Fatalf("replicated point has zero CI: %+v", pt)
	}
}

func TestSweepPropagatesValidationErrors(t *testing.T) {
	_, err := sweep(fast(), []string{"a"}, []float64{1}, func(si, pi int) model.Params {
		return model.Params{} // invalid
	})
	if err == nil {
		t.Fatal("invalid params not rejected")
	}
}

func TestAverageSingle(t *testing.T) {
	m := model.Metrics{Throughput: 0.5, TotCom: 10}
	avg, ci := Average([]model.Metrics{m})
	if avg != m || ci != 0 {
		t.Fatal("single-element average not identity")
	}
}

func TestAverageMultiple(t *testing.T) {
	a := model.Metrics{Throughput: 0.4, TotCom: 10, LockIOs: 2}
	b := model.Metrics{Throughput: 0.6, TotCom: 20, LockIOs: 4}
	avg, ci := Average([]model.Metrics{a, b})
	if avg.Throughput != 0.5 || avg.TotCom != 15 || avg.LockIOs != 3 {
		t.Fatalf("average %+v", avg)
	}
	if ci <= 0 {
		t.Fatal("zero CI for differing replications")
	}
}

func TestTable1Rendered(t *testing.T) {
	s := Table1()
	for _, want := range []string{"dbsize", "5000", "ntrans", "cputime", "0.05", "liotime"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestIDsAndRunDispatch(t *testing.T) {
	ids := IDs()
	if len(ids) != 11 {
		t.Fatalf("%d figure ids, want 11 (fig2..fig12)", len(ids))
	}
	if ids[0] != "fig2" || ids[len(ids)-1] != "fig12" {
		t.Fatalf("ids out of order: %v", ids)
	}
	if _, err := Run("nope", fast()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFigure7Structure(t *testing.T) {
	f, err := Figure7(fast())
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "fig7" || len(f.Panels) != 1 || len(f.Panels[0].Series) != 3 {
		t.Fatalf("figure 7 structure: %d panels", len(f.Panels))
	}
	// liotime=0 series must have zero lock I/O everywhere.
	for _, pt := range f.Panels[0].Series[2].Points {
		if pt.M.LockIOs != 0 {
			t.Fatalf("in-memory lock table shows lock I/O: %+v", pt.M)
		}
	}
}

func TestFigure11UsesMix(t *testing.T) {
	f, err := Figure11(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels[0].Series) != 3 {
		t.Fatalf("figure 11 wants 3 placement series, got %d", len(f.Panels[0].Series))
	}
	for _, s := range f.Panels[0].Series {
		if !strings.Contains(s.Label, "placement") {
			t.Fatalf("series label %q", s.Label)
		}
	}
}

func TestRenderTextAndCSV(t *testing.T) {
	f, err := Figure7(fast())
	if err != nil {
		t.Fatal(err)
	}
	text := RenderText(f)
	for _, want := range []string{"Figure 7", "ltot", "throughput", "in-memory"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q", want)
		}
	}
	csv := RenderCSV(f)
	if !strings.HasPrefix(csv, "figure,panel,series,x,y\n") {
		t.Fatalf("csv header: %q", csv[:40])
	}
	lines := strings.Count(csv, "\n")
	wantLines := 1 + 3*len(LtotSweep(5000))
	if lines != wantLines {
		t.Fatalf("csv has %d lines, want %d", lines, wantLines)
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Fatal("plain escaped")
	}
	if csvEscape(`a,b`) != `"a,b"` {
		t.Fatal("comma not quoted")
	}
	if csvEscape(`a"b`) != `"a""b"` {
		t.Fatal("quote not doubled")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.005, "5.00e-03"},
		{0.1234, "0.1234"},
		{12.3, "12.30"},
		{12345, "12345"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
