package experiments

import (
	"fmt"
	"strings"

	"granulock/internal/plot"
)

// RenderText formats a figure as aligned tables (one per panel) followed
// by an ASCII chart per panel, mirroring the paper's presentation.
func RenderText(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", f.Title, strings.Repeat("=", len(f.Title)))
	for _, panel := range f.Panels {
		b.WriteString(renderPanelTable(f, panel))
		b.WriteString("\n")
		b.WriteString(renderPanelChart(f, panel))
		b.WriteString("\n")
	}
	return b.String()
}

// renderPanelTable writes rows = x values, columns = series.
func renderPanelTable(f Figure, p Panel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.YLabel)

	const xw = 8
	colWidths := make([]int, len(p.Series))
	for i, s := range p.Series {
		colWidths[i] = len(s.Label)
		if colWidths[i] < 10 {
			colWidths[i] = 10
		}
	}
	fmt.Fprintf(&b, "%*s", xw, "ltot")
	for i, s := range p.Series {
		fmt.Fprintf(&b, "  %*s", colWidths[i], s.Label)
	}
	b.WriteString("\n")

	if len(p.Series) > 0 {
		for pi := range p.Series[0].Points {
			fmt.Fprintf(&b, "%*.0f", xw, p.Series[0].Points[pi].X)
			for i, s := range p.Series {
				fmt.Fprintf(&b, "  %*s", colWidths[i], formatValue(p.Metric(s.Points[pi].M)))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// formatValue picks a compact representation across magnitudes.
func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.01:
		return fmt.Sprintf("%.2e", v)
	case v < 10:
		return fmt.Sprintf("%.4f", v)
	case v < 1000:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// renderPanelChart draws the panel as a log-x ASCII chart.
func renderPanelChart(f Figure, p Panel) string {
	chart := plot.Chart{
		XLabel: f.XLabel + " (log scale)",
		YLabel: p.YLabel,
		LogX:   true,
	}
	for _, s := range p.Series {
		xs, ys := s.XY(p.Metric)
		chart.Series = append(chart.Series, plot.Series{Label: s.Label, X: xs, Y: ys})
	}
	return chart.Render()
}

// RenderCSV formats every panel of a figure as CSV rows:
// figure,panel,series,x,y.
func RenderCSV(f Figure) string {
	var b strings.Builder
	b.WriteString("figure,panel,series,x,y\n")
	for _, panel := range f.Panels {
		for _, s := range panel.Series {
			xs, ys := s.XY(panel.Metric)
			for i := range xs {
				fmt.Fprintf(&b, "%s,%s,%s,%g,%g\n", f.ID, csvEscape(panel.YLabel), csvEscape(s.Label), xs[i], ys[i])
			}
		}
	}
	return b.String()
}

// csvEscape quotes fields containing commas or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
