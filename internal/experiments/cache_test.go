package experiments

import (
	"fmt"
	"sync"
	"testing"

	"granulock/internal/model"
	"granulock/internal/sched"
)

// TestCachedRunMatchesRun verifies the dedup cache is invisible: a cold
// miss, a warm hit and a direct model.Run all agree bit-for-bit.
func TestCachedRunMatchesRun(t *testing.T) {
	p := BaseParams()
	p.TMax = 50
	direct, err := model.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := CachedRun(p)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CachedRun(p)
	if err != nil {
		t.Fatal(err)
	}
	if cold != direct || warm != direct {
		t.Fatalf("cached metrics diverge:\ndirect %+v\ncold   %+v\nwarm   %+v", direct, cold, warm)
	}
}

// TestCachedRunKeysDistinguishParams makes sure near-identical cells do
// not collide: any field difference must produce different results where
// the model says they differ.
func TestCachedRunKeysDistinguishParams(t *testing.T) {
	p := BaseParams()
	p.TMax = 50
	a, err := CachedRun(p)
	if err != nil {
		t.Fatal(err)
	}
	q := p
	q.Seed = p.Seed + 1
	b, err := CachedRun(q)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds returned identical metrics; cache key too coarse")
	}
}

// TestCellCacheCapHoldsUnderConcurrency pins the reservation
// accounting: concurrent inserts near the cap must never overshoot it.
// The old Load-then-LoadOrStore sequence let every goroutine pass the
// capacity check before any of them had stored.
func TestCellCacheCapHoldsUnderConcurrency(t *testing.T) {
	oldLen, oldSize := cellCacheLen.Load(), cellCacheSize
	defer func() {
		cellCacheSize = oldSize
		cellCacheLen.Store(oldLen)
		cellCache.Range(func(k, _ any) bool {
			if s, ok := k.(string); ok && len(s) > 4 && s[:4] == "cap-" {
				cellCache.Delete(k)
			}
			return true
		})
	}()
	cellCacheSize = oldLen + 4 // leave 4 free slots
	const workers = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mirror CachedRun's insert path with distinct synthetic keys.
			key := fmt.Sprintf("cap-%d", w)
			if cellCacheLen.Add(1) > cellCacheSize {
				cellCacheLen.Add(-1)
				return
			}
			if _, loaded := cellCache.LoadOrStore(key, model.Metrics{}); loaded {
				cellCacheLen.Add(-1)
			}
		}()
	}
	wg.Wait()
	if n := cellCacheLen.Load(); n > cellCacheSize {
		t.Fatalf("cache accounting overshot the cap: %d > %d", n, cellCacheSize)
	}
	stored := 0
	cellCache.Range(func(k, _ any) bool {
		if s, ok := k.(string); ok && len(s) > 4 && s[:4] == "cap-" {
			stored++
		}
		return true
	})
	if stored > 4 {
		t.Fatalf("%d synthetic cells stored, cap allowed 4", stored)
	}
}

// TestCachedRunSkipsStatefulSchedulers pins the safety rule: cells with
// an admission policy are never cached, because policies carry state
// across a run and a fresh instance is part of the cell's identity.
func TestCachedRunSkipsStatefulSchedulers(t *testing.T) {
	p := BaseParams()
	p.TMax = 50
	p.Scheduler = sched.FixedMPL{Limit: 2}
	if _, ok := cellKey(p); ok {
		t.Fatal("scheduler cell was deemed cacheable")
	}
	m1, err := CachedRun(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := model.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("uncached scheduler run diverged: %+v vs %+v", m1, m2)
	}
}
