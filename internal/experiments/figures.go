package experiments

import (
	"fmt"
	"time"

	"granulock/internal/model"
	"granulock/internal/partition"
	"granulock/internal/workload"
)

// floatXs converts an int sweep to float x coordinates.
func floatXs(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// nprosLabels renders the npros sweep legend.
func nprosLabels() []string {
	labels := make([]string, len(NprosSweep()))
	for i, n := range NprosSweep() {
		labels[i] = fmt.Sprintf("npros=%d", n)
	}
	return labels
}

// ltotNprosSweep runs the ltot × npros grid shared by Figures 2–5 and 8.
func ltotNprosSweep(o Options, mutate func(*model.Params)) ([]Series, []float64, error) {
	base := BaseParams()
	if mutate != nil {
		mutate(&base)
	}
	ltots := LtotSweep(base.DBSize)
	xs := floatXs(ltots)
	npros := NprosSweep()
	series, err := sweep(o, nprosLabels(), xs, func(si, pi int) model.Params {
		p := base
		p.NPros = npros[si]
		p.Ltot = ltots[pi]
		return p
	})
	return series, xs, err
}

// Figure2 reproduces "Effects of number of locks and number of
// processors on throughput and response time" (§3.1).
func Figure2(o Options) (Figure, error) {
	series, _, err := ltotNprosSweep(o, nil)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig2",
		Title:  "Figure 2: throughput and response time vs number of locks and processors",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
			{YLabel: "response time (time units)", Metric: MeanResponse, Series: series},
		},
	}, nil
}

// Figure3 reproduces "Effects of number of locks and number of
// processors on useful I/O time and useful CPU time" (§3.1).
func Figure3(o Options) (Figure, error) {
	series, _, err := ltotNprosSweep(o, nil)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig3",
		Title:  "Figure 3: useful I/O and useful CPU time vs number of locks and processors",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "useful I/O time per processor", Metric: UsefulIO, Series: series},
			{YLabel: "useful CPU time per processor", Metric: UsefulCPU, Series: series},
		},
	}, nil
}

// Figure4 reproduces "Effect of number of processors and number of locks
// on lock overhead with large transactions (maxtransize=500)" (§3.1).
func Figure4(o Options) (Figure, error) {
	series, _, err := ltotNprosSweep(o, nil) // base already has maxtransize=500
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig4",
		Title:  "Figure 4: lock overhead vs number of locks and processors (maxtransize=500)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "lock overhead (CPU+I/O time units)", Metric: LockOverhead, Series: series},
		},
	}, nil
}

// Figure5 is Figure 4 with small transactions (maxtransize=50).
func Figure5(o Options) (Figure, error) {
	series, _, err := ltotNprosSweep(o, func(p *model.Params) { p.MaxTransize = 50 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5",
		Title:  "Figure 5: lock overhead vs number of locks and processors (maxtransize=50)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "lock overhead (CPU+I/O time units)", Metric: LockOverhead, Series: series},
		},
	}, nil
}

// Figure6 reproduces "Effects of number of locks and transaction size on
// throughput and response time (npros=10)" (§3.2).
func Figure6(o Options) (Figure, error) {
	base := BaseParams()
	sizes := []int{50, 100, 500, 2500, 5000}
	labels := make([]string, len(sizes))
	for i, s := range sizes {
		labels[i] = fmt.Sprintf("maxtransize=%d", s)
	}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.MaxTransize = sizes[si]
		p.Ltot = ltots[pi]
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig6",
		Title:  "Figure 6: throughput and response time vs number of locks and transaction size (npros=10)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
			{YLabel: "response time (time units)", Metric: MeanResponse, Series: series},
		},
	}, nil
}

// Figure7 reproduces "Effects of number of locks and lock I/O time on
// throughput (npros=10)" (§3.3); liotime=0 models a main-memory lock
// table.
func Figure7(o Options) (Figure, error) {
	base := BaseParams()
	liotimes := []float64{0.2, 0.1, 0}
	labels := []string{"lock I/O time = I/O time (0.2)", "lock I/O time = 0.1", "lock I/O time = 0 (in-memory)"}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.LockIOTime = liotimes[si]
		p.Ltot = ltots[pi]
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig7",
		Title:  "Figure 7: throughput vs number of locks and lock I/O time (npros=10)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// Figure8 reproduces Figure 2's throughput panel under random
// partitioning (§3.4).
func Figure8(o Options) (Figure, error) {
	series, _, err := ltotNprosSweep(o, func(p *model.Params) { p.Partitioning = partition.Random })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig8",
		Title:  "Figure 8: throughput vs number of locks and processors (random partitioning)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// placementSweep runs the ltot × (placement × npros) grid of Figures
// 9–12.
func placementSweep(o Options, mutate func(*model.Params), npros []int) ([]Series, error) {
	base := BaseParams()
	if mutate != nil {
		mutate(&base)
	}
	placements := []workload.Placement{workload.PlacementBest, workload.PlacementRandom, workload.PlacementWorst}
	type combo struct {
		placement workload.Placement
		npros     int
	}
	var combos []combo
	var labels []string
	for _, pl := range placements {
		for _, n := range npros {
			combos = append(combos, combo{pl, n})
			if len(npros) > 1 {
				labels = append(labels, fmt.Sprintf("%s placement, npros=%d", pl, n))
			} else {
				labels = append(labels, fmt.Sprintf("%s placement", pl))
			}
		}
	}
	ltots := LtotSweep(base.DBSize)
	return sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.Placement = combos[si].placement
		p.NPros = combos[si].npros
		p.Ltot = ltots[pi]
		return p
	})
}

// Figure9 reproduces "Effects of number of locks and granule placement
// on throughput with large transactions (maxtransize=500)" (§3.5).
func Figure9(o Options) (Figure, error) {
	series, err := placementSweep(o, nil, []int{1, 30})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig9",
		Title:  "Figure 9: throughput vs number of locks and granule placement (maxtransize=500)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// Figure10 is Figure 9 with small transactions (maxtransize=50).
func Figure10(o Options) (Figure, error) {
	series, err := placementSweep(o, func(p *model.Params) { p.MaxTransize = 50 }, []int{1, 30})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig10",
		Title:  "Figure 10: throughput vs number of locks and granule placement (maxtransize=50)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// Figure11 reproduces the mixed workload of §3.6: 80% small
// (maxtransize=50), 20% large (maxtransize=500) transactions, npros=30.
func Figure11(o Options) (Figure, error) {
	series, err := placementSweep(o, func(p *model.Params) {
		p.Classes = workload.SmallLargeMix(50, 500, 0.8)
		p.NPros = 30
	}, []int{30})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig11",
		Title:  "Figure 11: throughput vs number of locks and placement, 80% small / 20% large mix (npros=30)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// Figure12 reproduces the heavy-load experiment of §3.7: ntrans=200,
// npros=20, maxtransize=500.
func Figure12(o Options) (Figure, error) {
	series, err := placementSweep(o, func(p *model.Params) {
		p.NTrans = 200
		p.NPros = 20
	}, []int{20})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig12",
		Title:  "Figure 12: throughput vs number of locks and placement, heavy load (ntrans=200, npros=20)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// Table1 renders the input-parameter table.
func Table1() string {
	p := BaseParams()
	return fmt.Sprintf(`Table 1: input parameters used in the simulation experiments

  dbsize       %6d    accessible entities in the database
  ltot         1..%d  number of locks (swept per figure)
  ntrans       %6d    transactions in the closed system
  maxtransize  %6d    maximum transaction size (mean ~ %d)
  cputime      %6.2f    CPU time units per entity
  iotime       %6.2f    I/O time units per entity
  lcputime     %6.2f    CPU time units per lock
  liotime      %6.2f    I/O time units per lock
  npros        1..30    number of processors (swept per figure)
  tmax         %6.0f    simulated time units
`, p.DBSize, p.DBSize, p.NTrans, p.MaxTransize, p.MaxTransize/2,
		p.CPUTime, p.IOTime, p.LockCPUTime, p.LockIOTime, p.TMax)
}

// runner executes one experiment by id.
type runner func(Options) (Figure, error)

// registry maps experiment ids to their runners, in paper order.
var registry = []struct {
	id  string
	run runner
}{
	{"fig2", Figure2},
	{"fig3", Figure3},
	{"fig4", Figure4},
	{"fig5", Figure5},
	{"fig6", Figure6},
	{"fig7", Figure7},
	{"fig8", Figure8},
	{"fig9", Figure9},
	{"fig10", Figure10},
	{"fig11", Figure11},
	{"fig12", Figure12},
}

// IDs returns every figure id in paper order (Table 1 is rendered
// separately by Table1).
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by id — a paper figure ("fig2".."fig12")
// or an extension ("ext-...", see ExtIDs).
func Run(id string, o Options) (Figure, error) {
	for _, r := range registry {
		if r.id == id {
			return runTimed(id, o, r.run)
		}
	}
	for _, r := range extRegistry {
		if r.id == id {
			return runTimed(id, o, r.run)
		}
	}
	return Figure{}, fmt.Errorf("experiments: unknown experiment %q (known: %v and %v)", id, IDs(), ExtIDs())
}

// runTimed labels o's sweep metrics with the figure id and, when a
// registry is attached, records the figure's wall time.
func runTimed(id string, o Options, run func(Options) (Figure, error)) (Figure, error) {
	o.figure = id
	if o.Metrics == nil {
		return run(o)
	}
	start := time.Now()
	f, err := run(o)
	if err == nil {
		o.Metrics.NewGaugeVec("granulock_figure_seconds",
			"Wall time of the last completed run of each figure, in seconds.",
			"figure").With(id).Set(time.Since(start).Seconds())
	}
	return f, err
}
