package experiments

import (
	"context"
	"fmt"

	"granulock/internal/engine"
	"granulock/internal/engine/cc"
	"granulock/internal/model"
)

// Protocol-comparison experiments drive the *executable* engine rather
// than the simulator: every registered concurrency-control protocol
// (internal/engine/cc) runs the same closed bank-transfer workload and
// the figures compare them across the contention, granularity and MPL
// axes the paper sweeps. A cross-validation panel replays the
// granularity axis on the simulation model so the engine's blocking
// trend can be checked against the paper's analytical machinery.
//
// Engine results are carried in model.Metrics with this mapping:
// Throughput = committed transactions per second; TotCom = committed;
// MeanResponse = workers·elapsed/committed (Little's law, seconds);
// LockRequests/LockDenials/DenialRate = the protocol's lock-table
// grants/blocks; Events = protocol-initiated restarts (diagnostic).

// protoConfig is one engine cell of a protocol sweep.
type protoConfig struct {
	dbSize   int
	granules int
	protocol engine.Protocol
	workload engine.Workload
}

// runEngineCell executes one cell and maps the result into Metrics.
func runEngineCell(ctx context.Context, pc protoConfig) (model.Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	db, err := engine.Open(pc.dbSize,
		engine.WithNodes(4),
		engine.WithGranules(pc.granules),
		engine.WithProtocol(pc.protocol),
		engine.WithInitialValue(100))
	if err != nil {
		return model.Metrics{}, err
	}
	res, err := db.RunClosed(ctx, pc.workload)
	if err != nil {
		return model.Metrics{}, err
	}
	s := db.Stats()
	var m model.Metrics
	m.TotCom = int(res.Committed)
	m.Throughput = res.ThroughputTPS
	if res.Committed > 0 {
		m.MeanResponse = float64(pc.workload.Workers) * res.Elapsed.Seconds() / float64(res.Committed)
	}
	m.LockRequests = int(s.Lock.Grants)
	m.LockDenials = int(s.Lock.Blocks)
	if s.Lock.Grants > 0 {
		m.DenialRate = float64(s.Lock.Blocks) / float64(s.Lock.Grants)
	}
	m.Events = uint64(s.Restarts)
	return m, nil
}

// engineSweep runs one series per registered protocol over the x grid.
// Cells run sequentially — engine cells are themselves concurrent
// (Workload.Workers goroutines), so running them in parallel would
// contaminate each other's throughput timing. Replications average with
// distinct workload seeds, reporting a 95% CI like the simulator sweep.
func engineSweep(o Options, xs []float64, mkConfig func(protocol engine.Protocol, point int) protoConfig) ([]Series, error) {
	o = o.normalize()
	protocols := cc.Names()
	series := make([]Series, len(protocols))
	for si, protocol := range protocols {
		pts := make([]Point, len(xs))
		for pi, x := range xs {
			ms := make([]model.Metrics, 0, o.Replications)
			for r := 0; r < o.Replications; r++ {
				if o.Context != nil && o.Context.Err() != nil {
					return nil, o.Context.Err()
				}
				pc := mkConfig(protocol, pi)
				pc.workload.Seed = o.Seed + uint64(r)*1_000_003
				m, err := runEngineCell(o.Context, pc)
				if err != nil {
					return nil, fmt.Errorf("experiments: protocol %s x=%v: %w", protocol, x, err)
				}
				ms = append(ms, m)
			}
			avg, ci := Average(ms)
			pts[pi] = Point{X: x, M: avg, ThroughputCI: ci}
		}
		series[si] = Series{Label: protocol, Points: pts}
	}
	return series, nil
}

// protoWorkload is the shared closed workload of the protocol figures:
// short transfers with a read mix and a little lock-holding work, small
// enough that a full multi-protocol sweep stays interactive.
func protoWorkload() engine.Workload {
	return engine.Workload{
		Workers: 8, TxnsPerWorker: 60, TransfersPerTxn: 2,
		ReadFraction: 0.2, WorkPerTxn: 2000,
	}
}

// restartsPerCommit is the restart-overhead metric of the protocol
// panels: protocol-initiated aborts per committed transaction.
func restartsPerCommit(m model.Metrics) float64 {
	if m.TotCom == 0 {
		return 0
	}
	return float64(m.Events) / float64(m.TotCom)
}

// ExtProtoContention sweeps access skew: transactions draw their
// entities zipf-distributed over a small hot set with probability
// rising along the x axis. Pessimistic protocols respond with blocking
// and deadlock restarts, wound-wait/wait-die with wounds and deaths,
// optimistic with validation failures — the figure shows which regime
// each protocol tolerates.
func ExtProtoContention(o Options) (Figure, error) {
	skews := []float64{0, 0.4, 0.8, 1.2}
	xs := make([]float64, len(skews))
	copy(xs, skews)
	series, err := engineSweep(o, xs, func(protocol engine.Protocol, pi int) protoConfig {
		w := protoWorkload()
		w.ZipfSkew = skews[pi]
		if skews[pi] > 0 {
			w.HotEntities = 20
		}
		return protoConfig{dbSize: 400, granules: 40, protocol: protocol, workload: w}
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-proto-contention",
		Title:  "Protocols: contention sweep on the executable engine (dbsize=400, granules=40, mpl=8)",
		XLabel: "zipf skew over 20 hot entities",
		Panels: []Panel{
			{YLabel: "throughput (txn/s)", Metric: Throughput, Series: series},
			{YLabel: "restarts per commit", Metric: restartsPerCommit, Series: series},
		},
	}, nil
}

// ExtProtoGranularity replays the paper's central sweep — lock
// granularity — on the executable engine under every protocol, with a
// simulator cross-validation panel: the simulation model runs the
// matching configuration (ltot = granule count) and its lock denial
// rate must fall with granularity exactly as the engine's conservative
// blocking rate does.
func ExtProtoGranularity(o Options) (Figure, error) {
	o = o.normalize()
	granules := []int{1, 2, 5, 10, 20, 50, 100, 200, 400}
	xs := floatXs(granules)
	const dbSize = 400
	series, err := engineSweep(o, xs, func(protocol engine.Protocol, pi int) protoConfig {
		return protoConfig{dbSize: dbSize, granules: granules[pi], protocol: protocol, workload: protoWorkload()}
	})
	if err != nil {
		return Figure{}, err
	}

	// Cross-validation series: the engine's conservative blocking rate
	// next to the simulator's denial rate at ltot = granules. The two
	// systems measure different absolute quantities; the shared claim is
	// the trend — blocking falls as granularity refines.
	var engineConservative Series
	for _, s := range series {
		if s.Label == engine.Conservative {
			engineConservative = Series{Label: "engine conservative (blocks/grant)", Points: s.Points}
		}
	}
	simParams := BaseParams()
	simParams.DBSize = dbSize
	simParams.NTrans = 8
	simParams.MaxTransize = 8
	simParams.NPros = 4
	if o.TMax > 0 {
		simParams.TMax = o.TMax
	}
	simSeries := Series{Label: "simulator (denial rate)", Points: make([]Point, len(granules))}
	for pi, g := range granules {
		p := simParams
		p.Ltot = g
		p.Seed = o.Seed
		m, err := CachedRunContext(o.Context, p)
		if err != nil {
			return Figure{}, err
		}
		simSeries.Points[pi] = Point{X: float64(g), M: m}
	}
	denialRate := func(m model.Metrics) float64 { return m.DenialRate }
	return Figure{
		ID:     "ext-proto-granularity",
		Title:  "Protocols: granularity sweep on the executable engine, cross-validated against the simulator (dbsize=400, mpl=8)",
		XLabel: "number of granules",
		Panels: []Panel{
			{YLabel: "throughput (txn/s)", Metric: Throughput, Series: series},
			{YLabel: "restarts per commit", Metric: restartsPerCommit, Series: series},
			{YLabel: "blocking probability (trend check)", Metric: denialRate,
				Series: []Series{engineConservative, simSeries}},
		},
	}, nil
}

// ExtProtoMPL sweeps the multiprogramming level (closed worker
// population): the concurrency-vs-contention trade-off each protocol
// strikes as load rises, at a moderately contended configuration.
func ExtProtoMPL(o Options) (Figure, error) {
	workers := []int{1, 2, 4, 8, 16}
	xs := floatXs(workers)
	series, err := engineSweep(o, xs, func(protocol engine.Protocol, pi int) protoConfig {
		w := protoWorkload()
		w.Workers = workers[pi]
		w.ZipfSkew = 0.8
		w.HotEntities = 40
		return protoConfig{dbSize: 400, granules: 40, protocol: protocol, workload: w}
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-proto-mpl",
		Title:  "Protocols: multiprogramming-level sweep on the executable engine (dbsize=400, granules=40, skew=0.8)",
		XLabel: "workers (closed MPL)",
		Panels: []Panel{
			{YLabel: "throughput (txn/s)", Metric: Throughput, Series: series},
			{YLabel: "restarts per commit", Metric: restartsPerCommit, Series: series},
		},
	}, nil
}

