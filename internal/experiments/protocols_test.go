package experiments

import (
	"testing"

	"granulock/internal/engine"
	"granulock/internal/engine/cc"
)

// TestProtoGranularityFigure runs the engine-driven granularity sweep
// at a reduced grid via the public Run path and checks the structural
// claims: one series per registered protocol (all six built-ins), every
// protocol commits every transaction (throughput > 0 everywhere), and
// the cross-validation panel agrees on the trend — blocking falls from
// the coarsest to the finest granularity for both the engine and the
// simulator.
func TestProtoGranularityFigure(t *testing.T) {
	f, err := Run("ext-proto-granularity", Options{TMax: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels) != 3 {
		t.Fatalf("%d panels, want 3", len(f.Panels))
	}
	protocols := f.Panels[0].Series
	if len(protocols) != len(cc.Names()) {
		t.Fatalf("%d protocol series, want %d", len(protocols), len(cc.Names()))
	}
	seen := make(map[string]bool)
	for _, s := range protocols {
		seen[s.Label] = true
		for _, p := range s.Points {
			if p.M.Throughput <= 0 {
				t.Errorf("%s at granules=%v: throughput %v", s.Label, p.X, p.M.Throughput)
			}
			if p.M.TotCom != 8*60 {
				t.Errorf("%s at granules=%v: committed %d, want %d", s.Label, p.X, p.M.TotCom, 8*60)
			}
		}
	}
	for _, want := range []string{
		engine.Conservative, engine.ClaimAsNeeded, engine.Hierarchical,
		engine.WoundWait, engine.WaitDie, engine.Optimistic,
	} {
		if !seen[want] {
			t.Errorf("protocol %q missing from figure", want)
		}
	}
	// Cross-validation: both blocking curves fall from coarsest to finest.
	for _, s := range f.Panels[2].Series {
		first := s.Points[0].M.DenialRate
		last := s.Points[len(s.Points)-1].M.DenialRate
		if !(last < first) {
			t.Errorf("%s: blocking did not fall with granularity: %v -> %v", s.Label, first, last)
		}
	}
}

// TestProtoContentionFigure checks the contention sweep structurally:
// all protocols present, all cells committed, and restart accounting
// visible through the restarts-per-commit panel accessor.
func TestProtoContentionFigure(t *testing.T) {
	f, err := Run("ext-proto-contention", Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels) != 2 {
		t.Fatalf("%d panels, want 2", len(f.Panels))
	}
	if len(f.Panels[0].Series) != len(cc.Names()) {
		t.Fatalf("%d series, want %d", len(f.Panels[0].Series), len(cc.Names()))
	}
	for _, s := range f.Panels[0].Series {
		if len(s.Points) != 4 {
			t.Fatalf("%s: %d points, want 4", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.M.TotCom != 8*60 {
				t.Errorf("%s at skew=%v: committed %d, want %d", s.Label, p.X, p.M.TotCom, 8*60)
			}
		}
	}
}

// TestProtoFigureIDsRegistered pins the figure family into the public
// experiment registry (the facade and cmd/sweep list through ExtIDs).
func TestProtoFigureIDsRegistered(t *testing.T) {
	ids := make(map[string]bool)
	for _, id := range ExtIDs() {
		ids[id] = true
	}
	for _, want := range []string{"ext-proto-contention", "ext-proto-granularity", "ext-proto-mpl"} {
		if !ids[want] {
			t.Errorf("%s not in ExtIDs", want)
		}
	}
}
