package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"granulock/internal/model"
)

// The figure suite re-simulates many identical parameter cells: Figures
// 2, 3 and 4 share one ltot × npros grid, Figure 8's grid differs only
// in partitioning, and every replication repeats the base cells of its
// siblings. A cell is a pure function of its Params (the model promises
// equal Params ⇒ identical Metrics), so results are memoized process-
// wide and each distinct cell is simulated exactly once per process.
//
// Cells with a Scheduler are never cached: policies are stateful and a
// fresh instance is part of the cell's identity.

var (
	cellCache     sync.Map // string -> model.Metrics
	cellCacheLen  atomic.Int64
	cellCacheSize = int64(1 << 16)
)

// cellKey renders p as a cache key, reporting whether the cell is
// cacheable at all. %#v covers every field of Params, including the
// Classes mix element by element, so two cells share a key only when
// they are field-for-field identical.
func cellKey(p model.Params) (string, bool) {
	if p.Scheduler != nil {
		return "", false
	}
	return fmt.Sprintf("%#v", p), true
}

// CachedRun is model.Run deduplicated across sweeps: identical parameter
// cells (ignoring none of Params' fields) are simulated once and served
// from memory afterwards. Concurrent callers may race to compute the
// same cell; both compute the identical Metrics, so either store wins.
func CachedRun(p model.Params) (model.Metrics, error) {
	return CachedRunContext(nil, p)
}

// CachedRunContext is CachedRun with cooperative cancellation: a
// non-nil ctx aborts an in-flight simulation at its next cancellation
// check and the call fails with the context's error (nothing is
// cached). A nil ctx runs the plain uninterruptible path, which is
// also the cheapest. Cached results are identical either way — the
// cancellation checks do not perturb the event order.
func CachedRunContext(ctx context.Context, p model.Params) (model.Metrics, error) {
	key, ok := cellKey(p)
	if !ok {
		return runMaybeCtx(ctx, p)
	}
	if v, ok := cellCache.Load(key); ok {
		return v.(model.Metrics), nil
	}
	m, err := runMaybeCtx(ctx, p)
	if err != nil {
		return m, err
	}
	// The cap keeps a long-lived process from growing the cache without
	// bound; overflow costs recomputation, never correctness. A slot is
	// reserved with Add before the store so that concurrent callers
	// cannot all pass a Load() check and overshoot the bound; the
	// reservation is returned if the store loses the race or the cache
	// is already full.
	if cellCacheLen.Add(1) > cellCacheSize {
		cellCacheLen.Add(-1)
		return m, nil
	}
	if _, loaded := cellCache.LoadOrStore(key, m); loaded {
		cellCacheLen.Add(-1)
	}
	return m, nil
}

// runMaybeCtx dispatches to the interruptible run only when a context
// is present, keeping the common path free of per-chunk checks.
func runMaybeCtx(ctx context.Context, p model.Params) (model.Metrics, error) {
	if ctx == nil {
		return model.Run(p)
	}
	return model.RunContext(ctx, p, nil)
}
