package experiments

import (
	"fmt"
	"math"

	"granulock/internal/model"
	"granulock/internal/sched"
	"granulock/internal/server"
	"granulock/internal/stats"
	"granulock/internal/workload"
)

// Extension experiments go beyond the paper's figures: they evaluate
// the remedies and ablations its discussion points at (§3.7 and
// DESIGN.md §5) with the same harness and rendering as the paper
// figures.

// ExtScheduling reproduces the §3.7 remedy as a figure: throughput vs
// ltot under heavy load (ntrans=200, npros=20) for no admission
// control, fixed MPL limits, and the adaptive AIMD policy.
func ExtScheduling(o Options) (Figure, error) {
	base := BaseParams()
	base.NTrans = 200
	base.NPros = 20

	type policy struct {
		label string
		mk    func() sched.Policy
	}
	policies := []policy{
		{"unlimited", func() sched.Policy { return sched.Unlimited{} }},
		{"fixed MPL 2", func() sched.Policy { return sched.FixedMPL{Limit: 2} }},
		{"fixed MPL 8", func() sched.Policy { return sched.FixedMPL{Limit: 8} }},
		{"adaptive AIMD", func() sched.Policy {
			p, err := sched.NewAdaptiveMPL(1, 200, 20, 0.3)
			if err != nil {
				panic(err) // static configuration; cannot fail
			}
			return p
		}},
	}
	labels := make([]string, len(policies))
	for i, p := range policies {
		labels[i] = p.label
	}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.Ltot = ltots[pi]
		p.Scheduler = policies[si].mk() // fresh policy per run: they are stateful
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-sched",
		Title:  "Extension: transaction-level scheduling under heavy load (ntrans=200, npros=20)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// ExtRequeue ablates the unspecified re-queue position of released
// transactions (head vs tail of the pending queue) at a high-conflict
// configuration.
func ExtRequeue(o Options) (Figure, error) {
	base := BaseParams()
	labels := []string{"released to head", "released to tail"}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.Ltot = ltots[pi]
		p.ReleasedToTail = si == 1
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-requeue",
		Title:  "Extension: re-queue position of released transactions",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// ExtLockSharing ablates the paper's shared-lock-work assumption
// against a dedicated lock processor, at npros=30 where the difference
// is largest.
func ExtLockSharing(o Options) (Figure, error) {
	base := BaseParams()
	base.NPros = 30
	labels := []string{"lock work shared by all processors", "dedicated lock processor"}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.Ltot = ltots[pi]
		p.DedicatedLockProcessor = si == 1
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-locksharing",
		Title:  "Extension: shared vs dedicated lock processing (npros=30)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// ExtDiscipline ablates the sub-transaction service discipline (FCFS vs
// shortest-job-first), reproducing the companion result (paper ref [3])
// that it barely moves the granularity curves.
func ExtDiscipline(o Options) (Figure, error) {
	base := BaseParams()
	labels := []string{"FCFS", "SJF"}
	disciplines := []server.Discipline{server.FCFS, server.SJF}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.Ltot = ltots[pi]
		p.Discipline = disciplines[si]
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-discipline",
		Title:  "Extension: sub-transaction service discipline (ref [3]: marginal effect)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// ExtHotSpot extends the uniform-access assumption with skewed access:
// conflicts behave as if only a (1−skew) fraction of the granules
// received traffic. More skew means a granule count must be larger to
// deliver the same concurrency, shifting the useful operating range of
// the curves right and down.
func ExtHotSpot(o Options) (Figure, error) {
	base := BaseParams()
	skews := []float64{0, 0.5, 0.9}
	labels := []string{"uniform access (paper)", "skew 0.5", "skew 0.9"}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.Ltot = ltots[pi]
		p.AccessSkew = skews[si]
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-hotspot",
		Title:  "Extension: access skew (hot spots) vs the paper's uniform-access assumption",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// ExtResponseTail reports the response-time distribution — median and
// 95th percentile — across the granularity sweep. The paper reports
// only means; the tail shows that mistuned granularity hurts the worst
// transactions disproportionately. Each point's quantile is carried in
// the synthetic Metrics.MeanResponse field of its Point (the panels'
// accessor), computed from a per-run response collector.
func ExtResponseTail(o Options) (Figure, error) {
	o = o.normalize()
	base := BaseParams()
	if o.TMax > 0 {
		base.TMax = o.TMax
	}
	base.Seed = o.Seed
	ltots := LtotSweep(base.DBSize)
	quantiles := []float64{0.5, 0.95}
	labels := []string{"median (P50)", "tail (P95)"}

	series := make([]Series, len(quantiles))
	for qi, label := range labels {
		series[qi] = Series{Label: label, Points: make([]Point, len(ltots))}
	}
	for pi, ltot := range ltots {
		p := base
		p.Ltot = ltot
		var rc model.ResponseCollector
		if _, err := model.RunObserved(p, &rc); err != nil {
			return Figure{}, err
		}
		// One sort for all quantiles of this point's response sample.
		vs := stats.Quantiles(rc.Responses, quantiles...)
		for qi, v := range vs {
			if math.IsNaN(v) {
				v = 0 // no completions at this point
			}
			series[qi].Points[pi] = Point{X: float64(ltot), M: model.Metrics{MeanResponse: v}}
		}
	}
	return Figure{
		ID:     "ext-responsetail",
		Title:  "Extension: response-time distribution vs number of locks (npros=10)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "response time quantile (time units)", Metric: MeanResponse, Series: series},
		},
	}, nil
}

// ExtLoad sweeps the system load (ntrans) to trace the paper's
// light-load → heavy-load transition in one picture: at ntrans=5 the
// curves are nearly flat in ltot, by ntrans=200 fine granularity has
// collapsed (§3.7 sees only the end point).
func ExtLoad(o Options) (Figure, error) {
	base := BaseParams()
	base.NPros = 20
	loads := []int{5, 10, 50, 200}
	labels := make([]string, len(loads))
	for i, n := range loads {
		labels[i] = fmt.Sprintf("ntrans=%d", n)
	}
	ltots := LtotSweep(base.DBSize)
	series, err := sweep(o, labels, floatXs(ltots), func(si, pi int) model.Params {
		p := base
		p.NTrans = loads[si]
		p.Ltot = ltots[pi]
		return p
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ext-load",
		Title:  "Extension: load sensitivity — the light-to-heavy-load transition (npros=20)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "throughput (txn/time unit)", Metric: Throughput, Series: series},
		},
	}, nil
}

// ExtMixClass decomposes the §3.6 mixed-workload result by class:
// per-class throughput across the granularity sweep (Figure 11 reports
// only the aggregate). It shows the aggregate collapse is driven by
// large transactions both completing slowly themselves and dragging the
// small ones down behind their locks.
func ExtMixClass(o Options) (Figure, error) {
	o = o.normalize()
	base := BaseParams()
	base.NPros = 30
	base.Classes = workload.SmallLargeMix(50, 500, 0.8)
	if o.TMax > 0 {
		base.TMax = o.TMax
	}
	base.Seed = o.Seed
	ltots := LtotSweep(base.DBSize)
	labels := []string{"small class (80%, maxtransize=50)", "large class (20%, maxtransize=500)"}

	series := make([]Series, len(labels))
	for i, label := range labels {
		series[i] = Series{Label: label, Points: make([]Point, len(ltots))}
	}
	for pi, ltot := range ltots {
		p := base
		p.Ltot = ltot
		var cc model.ClassCollector
		if _, err := model.RunObserved(p, &cc); err != nil {
			return Figure{}, err
		}
		for class := 0; class < len(labels); class++ {
			count := 0
			if class < len(cc.Completions) {
				count = cc.Completions[class]
			}
			series[class].Points[pi] = Point{
				X: float64(ltot),
				M: model.Metrics{Throughput: float64(count) / p.TMax, MeanResponse: cc.MeanResponse(class)},
			}
		}
	}
	return Figure{
		ID:     "ext-mixclass",
		Title:  "Extension: Figure 11's 80/20 mix decomposed by class (npros=30)",
		XLabel: "number of locks (ltot)",
		Panels: []Panel{
			{YLabel: "per-class throughput (txn/time unit)", Metric: Throughput, Series: series},
			{YLabel: "per-class response time (time units)", Metric: MeanResponse, Series: series},
		},
	}, nil
}

// extRegistry lists the extension experiments in presentation order.
var extRegistry = []struct {
	id  string
	run runner
}{
	{"ext-sched", ExtScheduling},
	{"ext-requeue", ExtRequeue},
	{"ext-locksharing", ExtLockSharing},
	{"ext-discipline", ExtDiscipline},
	{"ext-hotspot", ExtHotSpot},
	{"ext-responsetail", ExtResponseTail},
	{"ext-load", ExtLoad},
	{"ext-mixclass", ExtMixClass},
	{"ext-proto-contention", ExtProtoContention},
	{"ext-proto-granularity", ExtProtoGranularity},
	{"ext-proto-mpl", ExtProtoMPL},
}

// ExtIDs returns the extension experiment ids.
func ExtIDs() []string {
	out := make([]string, len(extRegistry))
	for i, r := range extRegistry {
		out[i] = r.id
	}
	return out
}

// RunExt executes one extension experiment by id.
func RunExt(id string, o Options) (Figure, error) {
	for _, r := range extRegistry {
		if r.id == id {
			return r.run(o)
		}
	}
	return Figure{}, fmt.Errorf("experiments: unknown extension %q (known: %v)", id, ExtIDs())
}
