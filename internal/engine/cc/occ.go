package cc

import (
	"context"
	"sync"
	"sync/atomic"

	"granulock/internal/lockmgr"
)

// optimistic is Kung–Robinson validate-at-commit concurrency control:
// transactions execute with no locks at all, reading committed values
// and buffering writes privately, then validate at commit against the
// write sets of transactions that committed during their lifetime
// (backward validation, serial-validation variant). A read-set overlap
// aborts the validating transaction, which restarts through the
// engine's ordinary retry/backoff machinery.
//
// Conflict sets are tracked at *granule* granularity — the same units
// the locking protocols lock — so the protocol's abort rate responds
// to the granularity knob exactly the way lock contention does, and
// the paper's trade-off sweeps compare like with like.
//
// Validation, write application, and commit-clock advance happen under
// one mutex (serial validation). Individual entity accesses are
// latched, so an execute-phase read can only observe a *torn* multi-
// entity state while a committer is mid-apply — and any such reader
// necessarily started before that committer's timestamp and overlaps
// its write granules, so validation restarts it. Readers that begin
// after the commit observe it fully applied.
type optimistic struct{}

func (optimistic) Name() string { return "optimistic" }

func (optimistic) New(cfg Config) (Instance, error) {
	return &occInstance{
		store:  cfg.Store,
		record: cfg.RecordUpdates,
		active: make(map[lockmgr.TxnID]int64),
	}, nil
}

// occCommit is one committed transaction's footprint in the validation
// log: its commit timestamp and the granules it wrote.
type occCommit struct {
	ts     int64
	writes map[lockmgr.Granule]struct{}
}

// occTx is one attempt's read phase: the snapshot timestamp, the
// granule read set, and the private write buffer (entity → accumulated
// delta, in first-write order for deterministic application).
type occTx struct {
	start  int64
	reads  map[lockmgr.Granule]struct{}
	writes map[int]int64
	order  []int
	wgrans map[lockmgr.Granule]struct{}
}

type occInstance struct {
	store  Store
	record bool

	// mu is the serial-validation critical section: it guards clock,
	// active, and recent, and serializes validate+apply+log so commit
	// order is serialization order.
	mu     sync.Mutex
	clock  int64
	active map[lockmgr.TxnID]int64 // attempt → start timestamp (for pruning)
	recent []occCommit             // ts-ascending validation log

	fails atomic.Int64
}

func (i *occInstance) Begin(ctx context.Context, tx *Tx) context.Context {
	ot := &occTx{
		start:  0,
		reads:  make(map[lockmgr.Granule]struct{}),
		writes: make(map[int]int64),
		wgrans: make(map[lockmgr.Granule]struct{}),
	}
	i.mu.Lock()
	ot.start = i.clock
	i.active[tx.ID] = ot.start
	i.mu.Unlock()
	tx.priv = ot
	return ctx
}

// Acquire is a no-op: optimistic transactions take no locks; conflicts
// surface at Commit.
func (i *occInstance) Acquire(context.Context, *Tx, []lockmgr.Request) error { return nil }

func (i *occInstance) Read(tx *Tx, e int) int64 {
	ot := tx.priv.(*occTx)
	ot.reads[i.store.GranuleOf(e)] = struct{}{}
	v := i.store.Get(e)
	if d, ok := ot.writes[e]; ok {
		v += d // read-your-writes over the buffered delta
	}
	return v
}

func (i *occInstance) Write(tx *Tx, e int, delta int64) {
	ot := tx.priv.(*occTx)
	if _, ok := ot.writes[e]; !ok {
		ot.order = append(ot.order, e)
	}
	ot.writes[e] += delta
	ot.wgrans[i.store.GranuleOf(e)] = struct{}{}
}

func (i *occInstance) Commit(_ context.Context, tx *Tx, persist func([]Update) error) error {
	ot := tx.priv.(*occTx)
	i.mu.Lock()
	// Backward validation: every transaction that committed after this
	// one began must not have written anything this one read.
	for k := len(i.recent) - 1; k >= 0 && i.recent[k].ts > ot.start; k-- {
		for g := range i.recent[k].writes {
			if _, overlap := ot.reads[g]; overlap {
				i.retireLocked(tx.ID)
				i.mu.Unlock()
				i.fails.Add(1)
				return ErrValidation
			}
		}
	}
	// Apply the write buffer. Deltas re-read the current committed
	// value under the validation mutex, so write-write interleavings
	// serialize in commit order without being validated.
	for _, e := range ot.order {
		before, after := i.store.Apply(e, ot.writes[e])
		if i.record {
			tx.Updates = append(tx.Updates, Update{Entity: e, Before: before, After: after})
		}
	}
	if persist != nil {
		if err := persist(tx.Updates); err != nil {
			i.retireLocked(tx.ID)
			i.mu.Unlock()
			return err
		}
	}
	if len(ot.wgrans) > 0 {
		i.clock++
		i.recent = append(i.recent, occCommit{ts: i.clock, writes: ot.wgrans})
	}
	i.retireLocked(tx.ID)
	i.mu.Unlock()
	return nil
}

// End releases nothing (there are no locks) but retires the attempt so
// the validation log can be pruned. Commit already retired committed
// and validation-failed attempts; End covers terminal failures, and is
// idempotent for the rest.
func (i *occInstance) End(tx *Tx) {
	i.mu.Lock()
	i.retireLocked(tx.ID)
	i.mu.Unlock()
}

// retireLocked removes one attempt from the active set and drops
// validation-log entries no still-running transaction can ever
// consult (ts ≤ the oldest active start timestamp).
func (i *occInstance) retireLocked(id lockmgr.TxnID) {
	delete(i.active, id)
	floor := i.clock
	for _, start := range i.active {
		if start < floor {
			floor = start
		}
	}
	cut := 0
	for cut < len(i.recent) && i.recent[cut].ts <= floor {
		cut++
	}
	if cut > 0 {
		i.recent = append(i.recent[:0:0], i.recent[cut:]...)
	}
}

func (i *occInstance) Stats() Stats {
	return Stats{ValidationFails: i.fails.Load()}
}

func init() { Register(optimistic{}) }
