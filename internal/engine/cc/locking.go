package cc

import (
	"context"

	"granulock/internal/lockmgr"
)

// directAccess is the storage half shared by every pessimistic
// protocol: with all locks held before the first access, reads and
// writes go straight to the store and the transaction's own writes are
// visible because they are applied in place.
type directAccess struct {
	store  Store
	record bool
}

func (d directAccess) Read(_ *Tx, e int) int64 { return d.store.Get(e) }

func (d directAccess) Write(tx *Tx, e int, delta int64) {
	before, after := d.store.Apply(e, delta)
	if d.record {
		tx.Updates = append(tx.Updates, Update{Entity: e, Before: before, After: after})
	}
}

// commitApplied is the Commit of every protocol whose writes are
// already in place: publishing is just making them durable.
func commitApplied(tx *Tx, persist func([]Update) error) error {
	if persist != nil {
		return persist(tx.Updates)
	}
	return nil
}

// flatLocking is the chassis shared by the flat-table protocols
// (conservative, claim-as-needed, wound-wait, wait-die): one
// lockmgr.Table plus direct storage access.
type flatLocking struct {
	directAccess
	table *lockmgr.Table
}

func newFlatLocking(cfg Config) flatLocking {
	var topts []lockmgr.Option
	if cfg.Metrics != nil {
		topts = append(topts, lockmgr.WithMetrics(cfg.Metrics))
	}
	return flatLocking{
		directAccess: directAccess{store: cfg.Store, record: cfg.RecordUpdates},
		table:        lockmgr.NewTable(topts...),
	}
}

func (f flatLocking) Begin(ctx context.Context, _ *Tx) context.Context { return ctx }

func (f flatLocking) Commit(_ context.Context, tx *Tx, persist func([]Update) error) error {
	return commitApplied(tx, persist)
}

func (f flatLocking) End(tx *Tx) { f.table.ReleaseAll(tx.ID) }

func (f flatLocking) Stats() Stats { return Stats{Lock: f.table.Stats()} }

// conservative preclaims every granule before touching data; a
// transaction holds nothing while it waits, so deadlock is impossible
// (the paper's protocol).
type conservative struct{}

func (conservative) Name() string { return "conservative" }

func (conservative) New(cfg Config) (Instance, error) {
	return &conservativeInstance{flatLocking: newFlatLocking(cfg)}, nil
}

type conservativeInstance struct{ flatLocking }

func (i *conservativeInstance) Acquire(ctx context.Context, tx *Tx, reqs []lockmgr.Request) error {
	return i.table.AcquireAll(ctx, tx.ID, reqs)
}

// claimAsNeeded acquires each granule on first touch; deadlocks are
// detected and the victim restarts (the strategy of the paper's
// footnote 1).
type claimAsNeeded struct{}

func (claimAsNeeded) Name() string { return "claim-as-needed" }

func (claimAsNeeded) New(cfg Config) (Instance, error) {
	return &claimInstance{flatLocking: newFlatLocking(cfg)}, nil
}

type claimInstance struct{ flatLocking }

func (i *claimInstance) Acquire(ctx context.Context, tx *Tx, reqs []lockmgr.Request) error {
	for _, r := range reqs {
		if err := i.table.Acquire(ctx, tx.ID, r.Granule, r.Mode); err != nil {
			return err
		}
	}
	return nil
}

func init() {
	Register(conservative{})
	Register(claimAsNeeded{})
}
