package cc

import (
	"errors"
	"sort"
	"testing"

	"granulock/internal/lockmgr"
)

// TestRegistrySelfCheck is the registry's structural contract: every
// registered protocol has a unique, non-empty, all-lowercase name that
// matches its registry key, Names is sorted, and Lookup round-trips.
// CI runs this as the protocol-registry gate.
func TestRegistrySelfCheck(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d protocols, want >= 6 built-ins: %v", len(names), names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	seen := make(map[string]bool)
	for _, name := range names {
		if name == "" {
			t.Fatal("empty protocol name registered")
		}
		if seen[name] {
			t.Fatalf("duplicate protocol name %q", name)
		}
		seen[name] = true
		for _, r := range name {
			if r >= 'A' && r <= 'Z' {
				t.Fatalf("protocol name %q not lowercase", name)
			}
		}
		p, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed a listed protocol", name)
		}
		if p.Name() != name {
			t.Fatalf("protocol registered as %q names itself %q", name, p.Name())
		}
	}
	for _, want := range []string{
		"conservative", "claim-as-needed", "hierarchical",
		"wound-wait", "wait-die", "optimistic",
	} {
		if !seen[want] {
			t.Fatalf("built-in protocol %q missing from registry: %v", want, names)
		}
	}
	if _, ok := Lookup("no-such-protocol"); ok {
		t.Fatal("Lookup invented a protocol")
	}
}

type fakeProtocol struct{ name string }

func (f fakeProtocol) Name() string                  { return f.name }
func (f fakeProtocol) New(Config) (Instance, error)  { return nil, nil }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegisterRejectsBadNames(t *testing.T) {
	mustPanic(t, "duplicate name", func() { Register(fakeProtocol{name: "conservative"}) })
	mustPanic(t, "empty name", func() { Register(fakeProtocol{name: ""}) })
	mustPanic(t, "uppercase name", func() { Register(fakeProtocol{name: "Shiny"}) })
}

// TestRestartTaxonomy pins the typed error taxonomy: every protocol-
// initiated abort is an ErrRestart (so the engine retries it), carries
// a stable kind string (so metrics can break restarts down by cause),
// and ordinary errors are not restartable.
func TestRestartTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		kind string
	}{
		{ErrWounded, "wounded"},
		{ErrDie, "die"},
		{ErrValidation, "validation"},
		{lockmgr.ErrDeadlock, "deadlock"},
	}
	for _, c := range cases {
		if !Restartable(c.err) {
			t.Errorf("%v not restartable", c.err)
		}
		if got := RestartKind(c.err); got != c.kind {
			t.Errorf("RestartKind(%v) = %q, want %q", c.err, got, c.kind)
		}
	}
	if !errors.Is(ErrWounded, ErrRestart) {
		t.Fatal("ErrWounded does not match ErrRestart")
	}
	plain := errors.New("disk on fire")
	if Restartable(plain) || RestartKind(plain) != "" {
		t.Fatal("ordinary error classified as restartable")
	}
	if Restartable(nil) {
		t.Fatal("nil restartable")
	}
}
