// Package cc is the pluggable concurrency-control surface of the
// executable engine. A Protocol is a named factory; its Instance binds
// one database to one concurrency-control discipline — which lock
// tables (if any) it drives, when transactions block, and when they
// restart. The engine executes every transaction through the same five
// hooks (Begin, Acquire, Read/Write, Commit, End), so adding a protocol
// means implementing this interface and calling Register from an init
// function; every workload, figure sweep, and benchmark then runs under
// it by name.
//
// The contract splits conflict handling into two mutually exclusive
// places. Pessimistic protocols surface conflicts in Acquire, before
// any data access: Acquire either returns nil (all access rights held
// for the whole transaction — strict two-phase) or an error. Optimistic
// protocols surface conflicts in Commit. Between a successful Acquire
// and Commit, Read and Write are infallible: pessimistic instances
// touch storage directly under their held locks, optimistic instances
// buffer privately. A protocol therefore never has to undo a storage
// write — aborts happen strictly before the instance's first Apply.
//
// Restart demands use one taxonomy: any error with
// errors.Is(err, ErrRestart) (or lockmgr.ErrDeadlock, the detector's
// verdict) tells the engine to call End, back off, and re-run the
// transaction with a fresh lock-table identity but its original
// Priority. Anything else is terminal for the Execute call.
package cc

import (
	"context"
	"errors"
	"sort"

	"granulock/internal/lockmgr"
	"granulock/internal/obs"
)

// Store is the storage surface protocols read and write through. Both
// methods are latched per entity (individually atomic); multi-entity
// isolation is the protocol's job.
type Store interface {
	// Get returns entity e's committed value.
	Get(e int) int64
	// Apply adds delta to entity e, returning the before/after images.
	Apply(e int, delta int64) (before, after int64)
	// GranuleOf maps an entity to its lock granule.
	GranuleOf(e int) lockmgr.Granule
}

// Update is one committed entity mutation, in application order — the
// engine turns these into write-ahead-log records.
type Update struct {
	Entity        int
	Before, After int64
}

// Tx is one transaction attempt as the protocol hooks see it. The
// engine allocates a fresh Tx (and lock-table identity) per attempt;
// Priority is the identity of the attempt's first incarnation and is
// preserved across restarts, so age-based policies (wound-wait,
// wait-die) cannot starve a transaction that keeps losing.
type Tx struct {
	// ID is this attempt's lock-table transaction identity.
	ID lockmgr.TxnID
	// Priority orders transactions by age: smaller is older. It equals
	// the ID of the transaction's first attempt.
	Priority int64
	// Attempt counts restarts (0 on the first attempt).
	Attempt int
	// Updates accumulates the attempt's committed mutations when the
	// instance was built with RecordUpdates (WAL attached).
	Updates []Update

	// priv is the instance's per-attempt state, set by Begin.
	priv any
}

// Config is what a Protocol builds an Instance from.
type Config struct {
	// Store is the database the instance executes against.
	Store Store
	// EscalationThreshold enables hierarchical lock escalation (0
	// disables; ignored by protocols without a lock hierarchy).
	EscalationThreshold int
	// Metrics, when non-nil, is forwarded to the instance's lock table
	// so its granulock_lockmgr_ families mirror the engine's locking
	// activity. One database per registry.
	Metrics *obs.Registry
	// RecordUpdates makes Write/Commit collect Update images on the Tx
	// (set when a write-ahead log is attached; off otherwise so the
	// no-WAL hot path stays allocation-free).
	RecordUpdates bool
}

// Instance is one protocol bound to one database. Implementations must
// be safe for concurrent use by many transactions.
type Instance interface {
	// Begin registers per-attempt state on tx and returns the context
	// the attempt's Acquire waits must run under. Most protocols return
	// ctx unchanged; wound-wait derives a cancellable context so an
	// older transaction can interrupt the attempt's lock waits.
	Begin(ctx context.Context, tx *Tx) context.Context
	// Acquire claims access rights for the transaction's declared lock
	// set (deduplicated, exclusive-wins, in first-touch order) before
	// any data access. Pessimistic protocols block or restart here;
	// optimistic protocols return nil immediately. A restart demand
	// satisfies errors.Is(err, ErrRestart) or is lockmgr.ErrDeadlock.
	Acquire(ctx context.Context, tx *Tx, reqs []lockmgr.Request) error
	// Read returns entity e's value as seen by tx, the transaction's
	// own earlier writes included. Infallible after a nil Acquire.
	Read(tx *Tx, e int) int64
	// Write adds delta to entity e on behalf of tx. Infallible after a
	// nil Acquire.
	Write(tx *Tx, e int, delta int64)
	// Commit publishes the transaction. persist, when non-nil, is
	// invoked exactly once with the final update images at the publish
	// point — after the writes are applied and before any access right
	// is released — so log order matches serialization order. A
	// validation failure returns an ErrRestart-wrapped error before
	// anything is applied or persisted.
	//
	// persist may block: under the engine's group-commit pipeline it
	// enqueues the transaction's record group and waits for the batched
	// flush to make it durable, so Commit's latency includes one flush
	// of the write-ahead log. Protocols must tolerate persist taking
	// milliseconds while rights (or a validation section) are held, and
	// must treat a persist error as a terminal commit failure: the
	// transaction must not be acknowledged, and the error is returned
	// as-is (it is typically a poisoned-log error, not a restart).
	Commit(ctx context.Context, tx *Tx, persist func([]Update) error) error
	// End releases every right tx holds and forgets the attempt. Called
	// exactly once per Begin — after a successful Commit, before a
	// restart, or on terminal failure.
	End(tx *Tx)
	// Stats snapshots the instance's activity.
	Stats() Stats
}

// Stats counts instance activity. Lock mirrors the instance's lock
// table (zero for lockless protocols); the restart counters attribute
// protocol-initiated aborts to their cause.
type Stats struct {
	Lock        lockmgr.Stats
	Escalations int64
	// Wounds counts wound-wait victims restarted by an older
	// transaction.
	Wounds int64
	// Dies counts wait-die requesters that died against an older holder.
	Dies int64
	// ValidationFails counts optimistic transactions aborted by
	// backward validation at commit.
	ValidationFails int64
}

// ErrRestart is the sentinel every protocol-initiated restart demand
// wraps: errors.Is(err, ErrRestart) tells the engine to abort the
// attempt, back off, and retry with the same Priority.
var ErrRestart = errors.New("cc: transaction must restart")

// RestartError is a restart demand with its protocol-specific cause.
// It satisfies errors.Is(err, ErrRestart).
type RestartError struct {
	// Kind is a short machine-readable cause ("wounded", "die",
	// "validation"), used as a metric label by the engine.
	Kind string
	// Detail is the human-readable explanation.
	Detail string
}

func (e *RestartError) Error() string { return "cc: restart (" + e.Kind + "): " + e.Detail }

// Is reports that every RestartError is an ErrRestart.
func (e *RestartError) Is(target error) bool { return target == ErrRestart }

// The built-in restart causes.
var (
	// ErrWounded restarts a wound-wait transaction aborted by an older
	// transaction that wanted one of its locks.
	ErrWounded = &RestartError{Kind: "wounded", Detail: "wounded by an older transaction wanting a held lock"}
	// ErrDie restarts a wait-die requester that conflicted with an
	// older holder.
	ErrDie = &RestartError{Kind: "die", Detail: "wait-die: requested a lock held by an older transaction"}
	// ErrValidation restarts an optimistic transaction whose read set
	// overlapped a concurrently committed write set.
	ErrValidation = &RestartError{Kind: "validation", Detail: "backward validation failed: read set overlaps a committed write set"}
)

// RestartKind labels a restart demand for metrics: the RestartError
// kind, "deadlock" for the detector's verdict, and "" for errors that
// are not restart demands.
func RestartKind(err error) string {
	var re *RestartError
	if errors.As(err, &re) {
		return re.Kind
	}
	if errors.Is(err, lockmgr.ErrDeadlock) {
		return "deadlock"
	}
	return ""
}

// Restartable reports whether err demands a restart rather than
// terminating the transaction.
func Restartable(err error) bool {
	return errors.Is(err, ErrRestart) || errors.Is(err, lockmgr.ErrDeadlock)
}

// Protocol is a named concurrency-control discipline: a factory for
// per-database instances.
type Protocol interface {
	// Name is the registry key: lowercase, stable, unique.
	Name() string
	// New builds an instance bound to one database.
	New(cfg Config) (Instance, error)
}

// The registry. Registration happens in init functions; lookups after
// init never race with writes, so no lock is needed.
var protocols = map[string]Protocol{}

// Register adds a protocol to the registry. It panics on a duplicate,
// empty, or non-lowercase name: registration is an init-time
// programming act, not a runtime input.
func Register(p Protocol) {
	name := p.Name()
	if name == "" || name != lower(name) {
		panic("cc: protocol name " + name + " must be non-empty lowercase")
	}
	if _, dup := protocols[name]; dup {
		panic("cc: duplicate protocol " + name)
	}
	protocols[name] = p
}

// lower maps ASCII upper case down; protocol names are ASCII.
func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Lookup resolves a protocol by name.
func Lookup(name string) (Protocol, bool) {
	p, ok := protocols[name]
	return p, ok
}

// Names returns every registered protocol name, sorted.
func Names() []string {
	out := make([]string, 0, len(protocols))
	for name := range protocols {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
