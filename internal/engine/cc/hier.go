package cc

import (
	"context"

	"granulock/internal/lockmgr"
)

// hierarchical uses the multigranularity lock manager with a
// database→granule hierarchy, intention modes and best-effort lock
// escalation — the "block level and file level" regime the paper's
// conclusions recommend. Acquisition is claim-as-needed with deadlock
// detection and victim restart.
type hierarchical struct{}

func (hierarchical) Name() string { return "hierarchical" }

func (hierarchical) New(cfg Config) (Instance, error) {
	var hopts []lockmgr.HierOption
	if cfg.EscalationThreshold > 0 {
		hopts = append(hopts, lockmgr.WithEscalation(cfg.EscalationThreshold))
	}
	return &hierInstance{
		directAccess: directAccess{store: cfg.Store, record: cfg.RecordUpdates},
		hier:         lockmgr.NewHierTable(hopts...),
	}, nil
}

type hierInstance struct {
	directAccess
	hier *lockmgr.HierTable
}

func (i *hierInstance) Begin(ctx context.Context, _ *Tx) context.Context { return ctx }

func (i *hierInstance) Acquire(ctx context.Context, tx *Tx, reqs []lockmgr.Request) error {
	for _, r := range reqs {
		mode := lockmgr.GModeS
		if r.Mode == lockmgr.ModeExclusive {
			mode = lockmgr.GModeX
		}
		path := []lockmgr.NodeID{"db", granuleNode(r.Granule)}
		if err := i.hier.Lock(ctx, tx.ID, path, mode); err != nil {
			return err
		}
	}
	return nil
}

func (i *hierInstance) Commit(_ context.Context, tx *Tx, persist func([]Update) error) error {
	return commitApplied(tx, persist)
}

func (i *hierInstance) End(tx *Tx) { i.hier.ReleaseAll(tx.ID) }

func (i *hierInstance) Stats() Stats {
	return Stats{Lock: i.hier.Stats(), Escalations: i.hier.Escalations()}
}

// granuleNode names a granule in the two-level hierarchy.
func granuleNode(g lockmgr.Granule) lockmgr.NodeID {
	return lockmgr.NodeID("db/g" + itoa64(int64(g)))
}

// itoa64 formats a non-negative int64 without fmt in the lock path.
func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}

func init() { Register(hierarchical{}) }
