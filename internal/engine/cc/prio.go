package cc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"granulock/internal/lockmgr"
)

// The age-priority restart policies of Rosenkrantz/Stearns/Lewis,
// recommended for high-data-contention regimes by Thomasian's line of
// work (PAPERS.md): instead of detecting deadlock cycles after they
// form, every lock conflict is resolved immediately by transaction age
// (Tx.Priority — smaller is older, preserved across restarts so a
// repeatedly-restarted transaction ages into invincibility).
//
//   - wait-die: an older requester waits for a younger holder; a
//     younger requester dies (restarts) rather than wait for an older
//     holder. Wait edges only ever point old→young, so they cannot
//     form a cycle.
//   - wound-wait: an older requester wounds (restarts) younger
//     conflicting holders and then waits; a younger requester waits
//     for older holders. The old transaction never queues behind the
//     young for long — the wound clears its path.
//
// Both are layered over the flat lock table through
// lockmgr.ConflictingHolders, which is an advisory snapshot: a holder
// can appear between the policy check and the park. The table's
// waits-for deadlock detector therefore stays armed as the safety
// net — a cycle that slips through the race window is broken by the
// detector and surfaces as an ordinary restart, reusing the engine's
// existing victim retry/backoff machinery.
//
// A wound interrupts the victim only while it can still abort cheaply:
// during its acquisition phase, before any write is applied (the
// engine writes nothing until Acquire returns nil). A victim past
// acquisition is commit-immune — it holds everything it needs, will
// commit and release promptly, and the wounding transaction simply
// waits that out. Wounding therefore never requires undo.
type prioProtocol struct {
	name  string
	wound bool
}

func (p prioProtocol) Name() string { return p.name }

func (p prioProtocol) New(cfg Config) (Instance, error) {
	return &prioInstance{
		flatLocking: newFlatLocking(cfg),
		wound:       p.wound,
		active:      make(map[lockmgr.TxnID]*prioTx),
	}, nil
}

// prioTx is one attempt's priority-policy state.
type prioTx struct {
	prio    int64
	cancel  context.CancelCauseFunc
	wounded atomic.Bool
}

type prioInstance struct {
	flatLocking
	wound bool // true: wound-wait; false: wait-die

	// mu guards active, the id→state map of attempts between Begin and
	// End. Policy decisions (who is older, who gets wounded) read it.
	mu     sync.Mutex
	active map[lockmgr.TxnID]*prioTx

	wounds atomic.Int64
	dies   atomic.Int64
}

func (i *prioInstance) Begin(ctx context.Context, tx *Tx) context.Context {
	actx, cancel := context.WithCancelCause(ctx)
	pt := &prioTx{prio: tx.Priority, cancel: cancel}
	tx.priv = pt
	i.mu.Lock()
	i.active[tx.ID] = pt
	i.mu.Unlock()
	return actx
}

func (i *prioInstance) Acquire(ctx context.Context, tx *Tx, reqs []lockmgr.Request) error {
	pt := tx.priv.(*prioTx)
	for _, r := range reqs {
		if pt.wounded.Load() {
			i.wounds.Add(1)
			return ErrWounded
		}
		if err := i.acquireOne(ctx, tx, pt, r); err != nil {
			return err
		}
	}
	return nil
}

// acquireOne resolves one request: apply the age policy against a
// holder snapshot, then park in the lock table (under the wound-aware
// attempt context).
func (i *prioInstance) acquireOne(ctx context.Context, tx *Tx, pt *prioTx, r lockmgr.Request) error {
	holders := i.table.ConflictingHolders(tx.ID, r.Granule, r.Mode)
	if len(holders) > 0 {
		i.mu.Lock()
		for _, h := range holders {
			o := i.active[h]
			if o == nil {
				// The holder is already releasing; nothing to decide.
				continue
			}
			if i.wound {
				if o.prio > pt.prio && o.wounded.CompareAndSwap(false, true) {
					// Older requester wounds the younger holder: its
					// attempt context aborts any lock wait it is
					// parked in; a holder past acquisition ignores
					// the wound and commits (commit-immune).
					o.cancel(ErrWounded)
				}
			} else if o.prio < pt.prio {
				// wait-die: younger requester dies against an older
				// holder instead of waiting.
				i.mu.Unlock()
				i.dies.Add(1)
				return ErrDie
			}
		}
		i.mu.Unlock()
	}
	if err := i.table.Acquire(ctx, tx.ID, r.Granule, r.Mode); err != nil {
		if cause := context.Cause(ctx); cause != nil && errors.Is(cause, ErrRestart) {
			// The park was interrupted by a wound, not by the caller.
			i.wounds.Add(1)
			return cause
		}
		return err // detector verdict (race-window cycle) or caller cancellation
	}
	return nil
}

func (i *prioInstance) End(tx *Tx) {
	pt := tx.priv.(*prioTx)
	i.mu.Lock()
	delete(i.active, tx.ID)
	i.mu.Unlock()
	pt.cancel(nil)
	i.table.ReleaseAll(tx.ID)
}

func (i *prioInstance) Stats() Stats {
	return Stats{
		Lock:   i.table.Stats(),
		Wounds: i.wounds.Load(),
		Dies:   i.dies.Load(),
	}
}

func init() {
	Register(prioProtocol{name: "wound-wait", wound: true})
	Register(prioProtocol{name: "wait-die", wound: false})
}
