package engine

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"granulock/internal/engine/cc"
	"granulock/internal/wal"
)

// durableWorkload is the standard traffic for the durability tests:
// balance-preserving transfers over a 4-node database.
func durableWorkload(seed uint64) Workload {
	return Workload{
		Workers:         4,
		TxnsPerWorker:   40,
		TransfersPerTxn: 2,
		Seed:            seed,
	}
}

func TestGroupCommitRecoverMatchesLiveStateAllProtocols(t *testing.T) {
	// Every registered protocol must produce a group-commit log whose
	// recovery reproduces the live state — the publish contract (persist
	// before release) is what makes this hold, so the test doubles as a
	// contract check for protocols added later.
	for _, protocol := range cc.Names() {
		var sink bytes.Buffer
		log := wal.NewLog(&sink)
		set, err := wal.NewSet(log)
		if err != nil {
			t.Fatal(err)
		}
		db, err := Open(200,
			WithNodes(4),
			WithGranules(20),
			WithProtocol(protocol),
			WithInitialValue(100),
			WithWAL(set))
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		if _, err := db.RunClosed(context.Background(), durableWorkload(11)); err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		if err := set.Close(); err != nil {
			t.Fatalf("%s: close: %v", protocol, err)
		}
		state := map[int64]int64{}
		stats, err := wal.RecoverSet(
			[]*wal.Reader{wal.NewReader(bytes.NewReader(sink.Bytes()))},
			func(e, v int64) { state[e] = v })
		if err != nil {
			t.Fatalf("%s: recover: %v", protocol, err)
		}
		if stats.Committed == 0 || stats.CrossPartial != 0 || stats.OrderViolations != 0 {
			t.Fatalf("%s: stats %+v", protocol, stats)
		}
		for e := 0; e < 200; e++ {
			live, _ := db.Read(e)
			rec, ok := state[int64(e)]
			if !ok {
				rec = 100 // never updated
			}
			if live != rec {
				t.Fatalf("%s: entity %d diverged: live %d, recovered %d", protocol, e, live, rec)
			}
		}
	}
}

func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, stats, err := OpenDurable(dir, 200,
		WithNodes(4), WithGranules(20), WithInitialValue(100),
		WithWALOptions(wal.WithPreallocate(0)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 0 {
		t.Fatalf("fresh dir recovered %d commits", stats.Committed)
	}
	if _, err := db.RunClosed(context.Background(), durableWorkload(12)); err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 200)
	for e := range want {
		want[e], _ = db.Read(e)
	}
	committed := db.Stats().Committed
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, stats, err := OpenDurable(dir, 200,
		WithNodes(4), WithGranules(20), WithInitialValue(100),
		WithWALOptions(wal.WithPreallocate(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if int64(stats.Committed) != committed {
		// Read-only txns never log, so every logged txn is an update.
		t.Fatalf("recovered %d commits, live engine committed %d", stats.Committed, committed)
	}
	for e := range want {
		got, _ := db2.Read(e)
		if got != want[e] {
			t.Fatalf("entity %d: recovered %d, want %d", e, got, want[e])
		}
	}
	// Per-partition placement: a single-node transfer must only have
	// touched its node's log — verified indirectly by the ordering rule
	// (no CrossPartial/OrderViolations on a clean log).
	if stats.CrossPartial != 0 || stats.OrderViolations != 0 {
		t.Fatalf("clean log stats %+v", stats)
	}
}

func TestOpenDurableCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, 120,
		WithNodes(3), WithGranules(12), WithInitialValue(100),
		WithWALOptions(wal.WithPreallocate(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunClosed(context.Background(), durableWorkload(13)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic is the only thing recovery should replay.
	post, err := db.RunClosed(context.Background(), Workload{
		Workers: 2, TxnsPerWorker: 5, TransfersPerTxn: 1, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 120)
	for e := range want {
		want[e], _ = db.Read(e)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, stats, err := OpenDurable(dir, 120,
		WithNodes(3), WithGranules(12), WithInitialValue(100),
		WithWALOptions(wal.WithPreallocate(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if int64(stats.Committed) > post.Committed {
		t.Fatalf("replayed %d txns, checkpoint should bound it to the %d post-checkpoint ones",
			stats.Committed, post.Committed)
	}
	for e := range want {
		got, _ := db2.Read(e)
		if got != want[e] {
			t.Fatalf("entity %d: recovered %d, want %d", e, got, want[e])
		}
	}
	// The logs were physically truncated: non-zero bases.
	var advanced bool
	for k := 0; k < db2.WALDir().Set().Len(); k++ {
		if db2.WALDir().Set().Log(k).Base() > 0 {
			advanced = true
		}
	}
	if !advanced {
		t.Fatal("no log base advanced past 0 after checkpoint")
	}
}

// copyDir clones a WAL directory so a cut can be applied to the clone.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestDurableCrashCutsAcrossSnapshotAndTailBoundary(t *testing.T) {
	// Build a directory holding a snapshot plus post-checkpoint tails,
	// then cut the artifacts at many byte offsets:
	//   - log tails cut anywhere → recovery conserves the total balance
	//     (the crash model: appends can tear);
	//   - snapshot cut anywhere → recovery fails loudly (the crash
	//     model: the rename is atomic, so a torn snapshot under the
	//     live name is damage, not a crash, and must never be
	//     silently half-loaded).
	const dbsize = 60
	dir := t.TempDir()
	db, _, err := OpenDurable(dir, dbsize,
		WithNodes(2), WithGranules(6), WithInitialValue(100),
		WithWALOptions(wal.WithPreallocate(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunClosed(context.Background(), Workload{
		Workers: 2, TxnsPerWorker: 10, TransfersPerTxn: 2, Seed: 15,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunClosed(context.Background(), Workload{
		Workers: 2, TxnsPerWorker: 10, TransfersPerTxn: 2, Seed: 16,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wantTotal := int64(dbsize) * 100

	reopen := func(dir string) (*DB, wal.SetRecoverStats, error) {
		return OpenDurable(dir, dbsize,
			WithNodes(2), WithGranules(6), WithInitialValue(100),
			WithWALOptions(wal.WithPreallocate(0)))
	}

	// Tail cuts: every byte of the header region and the first records
	// (the snapshot/tail boundary), then a prime stride through the
	// rest, ending exactly at the file length.
	for k := 0; k < 2; k++ {
		name := "wal-" + string(rune('0'+k)) + ".log"
		orig, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		cuts := map[int]bool{len(orig): true}
		for cut := 0; cut <= wal.LogHeaderSize+3*wal.RecordSize && cut <= len(orig); cut++ {
			cuts[cut] = true
		}
		for cut := wal.LogHeaderSize; cut < len(orig); cut += 13 {
			cuts[cut] = true
		}
		for cut := range cuts {
			clone := copyDir(t, dir)
			if err := os.WriteFile(filepath.Join(clone, name), orig[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			db2, _, err := reopen(clone)
			if cut > 0 && cut < wal.LogHeaderSize {
				// Torn header: must refuse, not misread. (An empty file
				// is a fresh log, handled below: the snapshot still
				// covers the pre-checkpoint state and the mask rule
				// discards the lost partition's tail transactions.)
				if err == nil {
					db2.Close()
					t.Fatalf("log %d cut %d: torn header accepted", k, cut)
				}
				continue
			}
			if err != nil {
				t.Fatalf("log %d cut %d: %v", k, cut, err)
			}
			if got := db2.TotalBalance(); got != wantTotal {
				t.Fatalf("log %d cut %d: total %d, want %d", k, cut, got, wantTotal)
			}
			db2.Close()
		}
	}

	// Snapshot cuts: stride through every region (header, seq vector,
	// chunk bodies, final checksum).
	snap, err := os.ReadFile(filepath.Join(dir, "snapshot.snap"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(snap); cut += 7 {
		clone := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(clone, "snapshot.snap"), snap[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, _, err := reopen(clone)
		if err == nil {
			db2.Close()
			t.Fatalf("snapshot cut %d: torn snapshot accepted", cut)
		}
		if !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("snapshot cut %d: error %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestDurableFaultInjectionConservesBalance(t *testing.T) {
	// The in-process "power cut": a shared injector lets a random
	// number of bytes through, allows one final torn write, then fails
	// everything — all partition logs and any in-flight snapshot die at
	// the same moment. Reopening without the injector must always
	// recover a balance-conserving state.
	const dbsize = 40
	for budget := int64(0); budget < 4000; budget += 211 {
		var left atomic.Int64
		left.Store(budget)
		inject := wal.FaultInjector(func(op string, n int) (int, error) {
			if op == "sync" {
				if left.Load() <= 0 {
					return 0, errors.New("power lost")
				}
				return 0, nil
			}
			got := left.Add(int64(-n))
			if got < 0 {
				allow := got + int64(n)
				if allow < 0 {
					allow = 0
				}
				return int(allow), errors.New("power lost")
			}
			return n, nil
		})

		dir := t.TempDir()
		db, _, err := OpenDurable(dir, dbsize,
			WithNodes(2), WithGranules(4), WithInitialValue(100),
			WithWALOptions(wal.WithPreallocate(0), wal.WithFaultInjector(inject)))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for txn := 0; txn < 30; txn++ {
			from := txn % dbsize
			to := (txn*7 + 1) % dbsize
			if from == to {
				to = (to + 1) % dbsize
			}
			if _, err := db.Execute(ctx, Transfer(from, to, 3)); err != nil {
				break // the "crash"
			}
			if txn == 10 {
				if err := db.Checkpoint(ctx); err != nil {
					break
				}
			}
		}
		db.Close()

		db2, _, err := OpenDurable(dir, dbsize,
			WithNodes(2), WithGranules(4), WithInitialValue(100),
			WithWALOptions(wal.WithPreallocate(0)))
		if err != nil {
			t.Fatalf("budget %d: reopen: %v", budget, err)
		}
		if got := db2.TotalBalance(); got != int64(dbsize)*100 {
			t.Fatalf("budget %d: total %d, want %d", budget, got, int64(dbsize)*100)
		}
		db2.Close()
	}
}

func TestPersistGroupFailurePropagatesToExecute(t *testing.T) {
	// A poisoned log must surface as a commit error, never as a
	// silently-acknowledged transaction.
	sink := &failAfterSink{failAt: 1}
	log := wal.NewLog(sink)
	set, err := wal.NewSet(log)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(10, WithInitialValue(100), WithWAL(set))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(context.Background(), Transfer(0, 1, 5)); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("execute on poisoned log: %v", err)
	}
}

// failAfterSink fails every Sync from the failAt-th on.
type failAfterSink struct {
	syncs  int
	failAt int
}

func (s *failAfterSink) Write(p []byte) (int, error) { return len(p), nil }
func (s *failAfterSink) Sync() error {
	s.syncs++
	if s.syncs >= s.failAt {
		return errors.New("injected sync failure")
	}
	return nil
}

func TestOpenDurableRejectsConflictingLogOptions(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if _, _, err := OpenDurable(dir, 10, WithLog(wal.NewWriter(&buf))); err == nil {
		t.Fatal("WithLog accepted by OpenDurable")
	}
	log := wal.NewLog(io.Discard)
	set, _ := wal.NewSet(log)
	defer set.Close()
	if _, _, err := OpenDurable(dir, 10, WithWAL(set)); err == nil {
		t.Fatal("WithWAL accepted by OpenDurable")
	}
}

func TestWALSetSizeValidation(t *testing.T) {
	logs := []*wal.Log{wal.NewLog(io.Discard), wal.NewLog(io.Discard), wal.NewLog(io.Discard)}
	set, err := wal.NewSet(logs...)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	// 3 logs with 4 nodes: neither 1 nor Nodes.
	if _, err := Open(100, WithNodes(4), WithWAL(set)); err == nil {
		t.Fatal("mismatched WAL set size accepted")
	}
}

func TestOpenDurableContinuesTxnNumbering(t *testing.T) {
	// Reopen-and-extend cycles over one directory: every recovery must
	// see at least the commits the previous one did. Regression test —
	// OpenDurable used to restart transaction IDs at zero, so a second
	// run's transactions collided with surviving log records and merged
	// two unrelated transactions into one corrupt classification.
	dir := t.TempDir()
	prev := 0
	for cycle := 0; cycle < 3; cycle++ {
		db, stats, err := OpenDurable(dir, 60,
			WithNodes(3), WithGranules(6), WithInitialValue(100),
			WithWALOptions(wal.WithPreallocate(0)))
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if stats.Committed < prev {
			t.Fatalf("cycle %d: recovered commits shrank %d -> %d (txn IDs reused)",
				cycle, prev, stats.Committed)
		}
		if cycle > 0 && int64(stats.MaxTxn) == 0 {
			t.Fatalf("cycle %d: MaxTxn 0 with %d commits on disk", cycle, stats.Committed)
		}
		if got := db.TotalBalance(); got != 6000 {
			t.Fatalf("cycle %d: balance %d", cycle, got)
		}
		if _, err := db.RunClosed(context.Background(), Workload{
			Workers: 2, TxnsPerWorker: 10, TransfersPerTxn: 1, Seed: uint64(20 + cycle),
		}); err != nil {
			t.Fatal(err)
		}
		prev = stats.Committed + 20
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
