package engine

import (
	"bytes"
	"context"
	"testing"

	"granulock/internal/wal"
)

func walCfg(buf *bytes.Buffer, protocol Protocol) Config {
	return Config{
		Nodes:        4,
		DBSize:       200,
		Granules:     20,
		Protocol:     protocol,
		InitialValue: 100,
		Log:          wal.NewWriter(buf),
	}
}

func TestWALRecoverMatchesLiveState(t *testing.T) {
	for _, protocol := range []Protocol{Conservative, ClaimAsNeeded} {
		var buf bytes.Buffer
		cfg := walCfg(&buf, protocol)
		db := mustOpen(t, cfg)
		if _, err := db.RunClosed(context.Background(), Workload{
			Workers:         8,
			TxnsPerWorker:   100,
			TransfersPerTxn: 2,
			WorkPerTxn:      2000,
			Seed:            5,
		}); err != nil {
			t.Fatalf("%v: %v", protocol, err)
		}
		recovered, stats, err := Recover(cfg, wal.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("%v: recover: %v", protocol, err)
		}
		if stats.Committed != 800 {
			t.Fatalf("%v: recovered %d commits, want 800", protocol, stats.Committed)
		}
		if stats.Torn || stats.Incomplete != 0 {
			t.Fatalf("%v: clean shutdown stats %+v", protocol, stats)
		}
		for e := 0; e < cfg.DBSize; e++ {
			live, _ := db.Read(e)
			rec, _ := recovered.Read(e)
			if live != rec {
				t.Fatalf("%v: entity %d diverged after recovery: live %d, recovered %d", protocol, e, live, rec)
			}
		}
	}
}

func TestWALCrashRecoveryConservesBalance(t *testing.T) {
	// Crash the log at many byte offsets: every recovered state must be
	// a consistent prefix — transfers preserve the total, so the total
	// balance must equal the initial total at every cut.
	var buf bytes.Buffer
	cfg := walCfg(&buf, Conservative)
	db := mustOpen(t, cfg)
	if _, err := db.RunClosed(context.Background(), Workload{
		Workers:         4,
		TxnsPerWorker:   50,
		TransfersPerTxn: 2,
		Seed:            6,
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.DBSize) * cfg.InitialValue
	log := buf.Bytes()
	// Cut at a prime stride to cover record boundaries and mid-record
	// tears alike.
	for cut := 0; cut <= len(log); cut += 97 {
		recovered, _, err := Recover(cfg, wal.NewReader(bytes.NewReader(log[:cut])))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := recovered.TotalBalance(); got != want {
			t.Fatalf("cut %d: recovered balance %d, want %d (partial transaction applied)", cut, got, want)
		}
	}
}

func TestWALCrashRecoveryMonotonePrefix(t *testing.T) {
	// Longer log prefixes recover at least as many commits.
	var buf bytes.Buffer
	cfg := walCfg(&buf, Conservative)
	db := mustOpen(t, cfg)
	if _, err := db.RunClosed(context.Background(), Workload{
		Workers:         2,
		TxnsPerWorker:   30,
		TransfersPerTxn: 1,
		Seed:            7,
	}); err != nil {
		t.Fatal(err)
	}
	log := buf.Bytes()
	prev := 0
	for cut := 0; ; cut += 137 {
		if cut > len(log) {
			cut = len(log)
		}
		_, stats, err := Recover(cfg, wal.NewReader(bytes.NewReader(log[:cut])))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Committed < prev {
			t.Fatalf("cut %d: commits decreased %d -> %d", cut, prev, stats.Committed)
		}
		prev = stats.Committed
		if cut == len(log) {
			break
		}
	}
	if prev != 60 {
		t.Fatalf("full log recovered %d commits, want 60", prev)
	}
}

func TestWALReadOnlyTxnsLogNothing(t *testing.T) {
	// A read-only transaction changes no state, so recovery never needs
	// it: it must not pay for log records (it used to log begin+commit).
	var buf bytes.Buffer
	cfg := walCfg(&buf, Conservative)
	db := mustOpen(t, cfg)
	if _, err := db.Execute(context.Background(), Txn{Ops: []Op{{Entity: 1}, {Entity: 2}}}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("read-only txn wrote %d log bytes, want 0", buf.Len())
	}
	// An updating transaction afterwards logs the full group.
	if _, err := db.Execute(context.Background(), Transfer(1, 2, 5)); err != nil {
		t.Fatal(err)
	}
	r := wal.NewReader(bytes.NewReader(buf.Bytes()))
	kinds := []wal.Kind{}
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		kinds = append(kinds, rec.Kind)
	}
	want := []wal.Kind{wal.KindBegin, wal.KindUpdate, wal.KindUpdate, wal.KindCommit}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds %v, want %v", kinds, want)
		}
	}
}

func TestWALDisabledWritesNothing(t *testing.T) {
	db := mustOpen(t, baseCfg())
	if _, err := db.Execute(context.Background(), Transfer(1, 2, 5)); err != nil {
		t.Fatal(err)
	}
	// No log configured: nothing to assert beyond no panic; guard the
	// config accessor too.
	if db.Config().Log != nil {
		t.Fatal("log unexpectedly attached")
	}
}
