package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"
)

// fingerprint hashes the full database state, entity by entity.
func fingerprint(t *testing.T, db *DB) uint64 {
	t.Helper()
	h := fnv.New64a()
	for e := 0; e < db.cfg.DBSize; e++ {
		v, err := db.Read(e)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%d:%d;", e, v)
	}
	return h.Sum64()
}

// pinWorkload is the deterministic serial workload the goldens below
// were captured under (single worker, so commit order is fixed and the
// fingerprints are exact).
var pinWorkload = Workload{
	Workers: 1, TxnsPerWorker: 500, TransfersPerTxn: 3,
	ReadFraction: 0.3, ZipfSkew: 0.8, Seed: 42,
}

// TestPinnedProtocolEquivalence pins the ported protocols to the exact
// behavior of the pre-refactor engine (commit c29d27b4 lineage): the
// goldens below were captured by running pinWorkload against the old
// switch-based Execute, before the concurrency-control paths moved into
// internal/engine/cc. Bit-identical final state AND identical
// lock-manager decision counts mean the refactor changed no observable
// commit or lock decision. If this test fails after an intentional
// semantic change, recapture the goldens and say so in the commit.
func TestPinnedProtocolEquivalence(t *testing.T) {
	const goldenHash = uint64(0x8f4b01a9f64d376d)
	for _, tc := range []struct {
		protocol Protocol
		granules int
		escalate int
		grants   int64
		esc      int64
	}{
		{Conservative, 1, 0, 500, 0},
		{Conservative, 16, 0, 500, 0},
		{Conservative, 1000, 0, 500, 0},
		{ClaimAsNeeded, 1, 0, 500, 0},
		{ClaimAsNeeded, 16, 0, 1965, 0},
		{ClaimAsNeeded, 1000, 0, 2945, 0},
		{Hierarchical, 16, 0, 2465, 0},
		{Hierarchical, 1000, 6, 3445, 448},
	} {
		name := fmt.Sprintf("%s/g%d/esc%d", tc.protocol, tc.granules, tc.escalate)
		t.Run(name, func(t *testing.T) {
			db := mustOpen(t, Config{
				Nodes: 4, DBSize: 1000, Granules: tc.granules,
				Protocol: tc.protocol, InitialValue: 100,
				EscalationThreshold: tc.escalate,
			})
			res, err := db.RunClosed(context.Background(), pinWorkload)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != 500 {
				t.Fatalf("committed %d, want 500", res.Committed)
			}
			if got := fingerprint(t, db); got != goldenHash {
				t.Fatalf("final state hash %#x, want golden %#x", got, goldenHash)
			}
			s := db.Stats()
			if s.Lock.Grants != tc.grants || s.Lock.Blocks != 0 ||
				s.Lock.Deadlocks != 0 || s.DeadlockRetries != 0 || s.Escalations != tc.esc {
				t.Fatalf("decisions diverged from golden: grants=%d (want %d) blocks=%d deadlocks=%d retries=%d esc=%d (want %d)",
					s.Lock.Grants, tc.grants, s.Lock.Blocks, s.Lock.Deadlocks, s.DeadlockRetries, s.Escalations, tc.esc)
			}
		})
	}
}

// TestPinnedSerialAgreementNewProtocols runs the same deterministic
// serial workload under the three new protocols: with no concurrency
// every protocol must produce the identical golden final state, no
// restarts, and (for the lockless optimistic path) no lock traffic.
func TestPinnedSerialAgreementNewProtocols(t *testing.T) {
	const goldenHash = uint64(0x8f4b01a9f64d376d)
	for _, protocol := range []Protocol{WoundWait, WaitDie, Optimistic} {
		t.Run(protocol, func(t *testing.T) {
			db := mustOpen(t, Config{
				Nodes: 4, DBSize: 1000, Granules: 16,
				Protocol: protocol, InitialValue: 100,
			})
			res, err := db.RunClosed(context.Background(), pinWorkload)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != 500 {
				t.Fatalf("committed %d, want 500", res.Committed)
			}
			if got := fingerprint(t, db); got != goldenHash {
				t.Fatalf("final state hash %#x, want golden %#x", got, goldenHash)
			}
			s := db.Stats()
			if s.Restarts != 0 || s.Wounds != 0 || s.Dies != 0 || s.ValidationFails != 0 {
				t.Fatalf("serial run restarted: %+v", s)
			}
			if protocol == Optimistic && s.Lock.Grants != 0 {
				t.Fatalf("optimistic protocol took %d locks", s.Lock.Grants)
			}
		})
	}
}
