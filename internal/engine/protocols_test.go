package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"granulock/internal/engine/cc"
)

// TestBalanceInvariantAllProtocols runs the bank-transfer workload
// under every registered protocol — including any registered outside
// this package — and checks the §1 conservation invariant. The
// workload is deliberately contended (hot entities, zipf skew) so the
// restart paths actually fire: wound-wait wounds, wait-die deaths, and
// optimistic validation failures all exercise abort-then-retry under
// concurrency. Run under -race this is the suite's main isolation
// check.
func TestBalanceInvariantAllProtocols(t *testing.T) {
	for _, protocol := range cc.Names() {
		protocol := protocol
		t.Run(protocol, func(t *testing.T) {
			t.Parallel()
			db, err := Open(200,
				WithNodes(4),
				WithGranules(20),
				WithProtocol(protocol),
				WithInitialValue(100),
				WithEscalationThreshold(8))
			if err != nil {
				t.Fatal(err)
			}
			want := db.TotalBalance()
			res, err := db.RunClosed(context.Background(), Workload{
				Workers: 8, TxnsPerWorker: 150, TransfersPerTxn: 2,
				ReadFraction: 0.2, HotEntities: 10, ZipfSkew: 0.9,
				WorkPerTxn: 2000, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := db.TotalBalance(); got != want {
				t.Fatalf("conservation violated under %s: %d, want %d", protocol, got, want)
			}
			if res.Committed != 8*150 {
				t.Fatalf("committed %d, want %d", res.Committed, 8*150)
			}
			s := db.Stats()
			if s.Restarts != s.DeadlockRetries {
				t.Fatalf("Restarts %d != DeadlockRetries %d", s.Restarts, s.DeadlockRetries)
			}
			t.Logf("%s: restarts=%d wounds=%d dies=%d vfails=%d grants=%d",
				protocol, s.Restarts, s.Wounds, s.Dies, s.ValidationFails, s.Lock.Grants)
		})
	}
}

// TestOptimisticAbortHeavy forces the optimistic protocol into a
// validation-failure storm: every transaction reads and writes the same
// two granules, so concurrent commits invalidate each other constantly.
// Conservation must survive the churn and the failure counter must
// actually move (otherwise the validator is vacuous).
func TestOptimisticAbortHeavy(t *testing.T) {
	db, err := Open(100,
		WithNodes(2),
		WithGranules(2),
		WithProtocol(Optimistic),
		WithInitialValue(100))
	if err != nil {
		t.Fatal(err)
	}
	want := db.TotalBalance()
	if _, err := db.RunClosed(context.Background(), Workload{
		Workers: 8, TxnsPerWorker: 150, TransfersPerTxn: 2,
		WorkPerTxn: 2000, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if got := db.TotalBalance(); got != want {
		t.Fatalf("conservation violated: %d, want %d", got, want)
	}
	if s := db.Stats(); s.ValidationFails == 0 {
		t.Log("warning: no validation failures observed (scheduling-dependent); invariants still verified")
	} else if s.Restarts != s.ValidationFails {
		t.Fatalf("restarts %d != validation failures %d (optimistic has no other abort cause)",
			s.Restarts, s.ValidationFails)
	}
}

// TestOptimisticValidationDeterministic drives the protocol instance
// directly to force the exact Kung–Robinson conflict: T1 reads a
// granule, T2 writes it and commits first, T1's validation must fail
// with the typed restart error.
func TestOptimisticValidationDeterministic(t *testing.T) {
	db, err := Open(10, WithProtocol(Optimistic), WithInitialValue(100))
	if err != nil {
		t.Fatal(err)
	}
	inst := db.Instance()
	ctx := context.Background()

	t1 := &cc.Tx{ID: 1, Priority: 1}
	inst.Begin(ctx, t1)
	if v := inst.Read(t1, 0); v != 100 {
		t.Fatalf("T1 read %d, want 100", v)
	}

	t2 := &cc.Tx{ID: 2, Priority: 2}
	inst.Begin(ctx, t2)
	inst.Write(t2, 0, 5)
	if err := inst.Commit(ctx, t2, nil); err != nil {
		t.Fatalf("T2 commit: %v", err)
	}
	inst.End(t2)

	err = inst.Commit(ctx, t1, nil)
	inst.End(t1)
	if !errors.Is(err, cc.ErrRestart) || cc.RestartKind(err) != "validation" {
		t.Fatalf("T1 commit err = %v, want validation restart", err)
	}
	if got := inst.Stats().ValidationFails; got != 1 {
		t.Fatalf("ValidationFails = %d, want 1", got)
	}
	if v, _ := db.Read(0); v != 105 {
		t.Fatalf("entity 0 = %d, want 105 (T2's write only)", v)
	}
}

// TestWoundWaitVictimStorm pits one long transaction against a crowd of
// short ones on overlapping granules. The long transaction is older
// than most of the crowd for most of the run, so it wounds repeatedly;
// conservation and completion are the assertions, starvation-freedom is
// the point (wounded victims keep their original priority and age into
// invincibility).
func TestWoundWaitVictimStorm(t *testing.T) {
	for _, protocol := range []Protocol{WoundWait, WaitDie} {
		protocol := protocol
		t.Run(protocol, func(t *testing.T) {
			db, err := Open(100,
				WithNodes(2),
				WithGranules(4),
				WithProtocol(protocol),
				WithInitialValue(100))
			if err != nil {
				t.Fatal(err)
			}
			want := db.TotalBalance()
			done := make(chan error, 1)
			go func() {
				_, err := db.RunClosed(context.Background(), Workload{
					Workers: 8, TxnsPerWorker: 100, TransfersPerTxn: 4,
					WorkPerTxn: 5000, Seed: 11,
				})
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(60 * time.Second):
				t.Fatalf("%s storm hung (starvation?)", protocol)
			}
			if got := db.TotalBalance(); got != want {
				t.Fatalf("conservation violated: %d, want %d", got, want)
			}
			s := db.Stats()
			t.Logf("%s: restarts=%d wounds=%d dies=%d", protocol, s.Restarts, s.Wounds, s.Dies)
		})
	}
}

// TestSleepBackoffHonorsContext is the regression test for the
// cancel-during-backoff bug: a context cancelled while a restart
// victim sleeps must interrupt the sleep immediately, not after the
// full (up to ~12.8ms, formerly unbounded) backoff window elapses.
func TestSleepBackoffHonorsContext(t *testing.T) {
	// Already-cancelled context: must return before sleeping at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := sleepBackoff(ctx, backoffCapAttempt, 12345); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v", err)
	}
	if d := time.Since(start); d > 2*time.Millisecond {
		t.Fatalf("cancelled ctx slept %v", d)
	}

	// Cancel landing mid-sleep: pick a seed whose jittered delay fills
	// most of the capped ~12.8ms window, cancel after 1ms, and require
	// a prompt (canceled) return well before the delay would elapse.
	window := uint64(100 * time.Microsecond << backoffCapAttempt)
	seed := uint64(1)
	for ; ; seed++ {
		s := seed
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s%window > window*3/4 {
			break
		}
	}
	ctx, cancel = context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	start = time.Now()
	err := sleepBackoff(ctx, backoffCapAttempt, seed)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sleep cancel: err = %v", err)
	}
	if elapsed > 6*time.Millisecond {
		t.Fatalf("mid-sleep cancel returned after %v (delay was > %v)", elapsed, time.Duration(window*3/4))
	}
}

// TestExecuteCancelledContext checks Execute refuses immediately on a
// dead context instead of attempting the transaction.
func TestExecuteCancelledContext(t *testing.T) {
	db := mustOpen(t, baseCfg())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Execute(ctx, Transfer(1, 2, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := db.Stats(); s.Committed != 0 {
		t.Fatalf("committed %d on a cancelled context", s.Committed)
	}
}
