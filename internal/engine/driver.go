package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"granulock/internal/rng"
)

// Workload drives a DB with a closed population of worker goroutines —
// the executable analog of the simulation model's fixed transaction
// population.
type Workload struct {
	// Workers is the closed population size (terminals).
	Workers int
	// TxnsPerWorker is how many transactions each worker commits.
	TxnsPerWorker int
	// TransfersPerTxn is the number of entity-pair transfers per update
	// transaction (each contributes two ops).
	TransfersPerTxn int
	// ReadFraction of transactions are read-only scans of
	// 2·TransfersPerTxn random entities instead of updates.
	ReadFraction float64
	// HotEntities restricts all accesses to the first HotEntities
	// entities (0 = whole database); shrinking it raises contention.
	HotEntities int
	// WorkPerTxn is synthetic lock-holding computation per transaction
	// (see Txn.Work).
	WorkPerTxn int
	// ZipfSkew, when positive, draws entities Zipf-distributed with this
	// exponent instead of uniformly: the standard hot-spot model
	// (s ≈ 1 concentrates most accesses on a few granules, raising
	// contention the way the HotEntities knob does, but smoothly).
	ZipfSkew float64
	// Seed makes the generated operation stream reproducible (the
	// interleaving still varies with scheduling).
	Seed uint64
}

// validate checks the workload against the database.
func (w Workload) validate(db *DB) error {
	switch {
	case w.Workers < 1:
		return fmt.Errorf("engine: workers %d < 1", w.Workers)
	case w.TxnsPerWorker < 1:
		return fmt.Errorf("engine: txns per worker %d < 1", w.TxnsPerWorker)
	case w.TransfersPerTxn < 1:
		return fmt.Errorf("engine: transfers per txn %d < 1", w.TransfersPerTxn)
	case w.ReadFraction < 0 || w.ReadFraction > 1:
		return fmt.Errorf("engine: read fraction %v outside [0,1]", w.ReadFraction)
	case w.HotEntities < 0 || w.HotEntities > db.cfg.DBSize:
		return fmt.Errorf("engine: hot entities %d outside [0, dbsize=%d]", w.HotEntities, db.cfg.DBSize)
	case w.ZipfSkew < 0:
		return fmt.Errorf("engine: zipf skew %v < 0", w.ZipfSkew)
	}
	return nil
}

// Result summarizes one driven workload.
type Result struct {
	Committed int64
	Elapsed   time.Duration
	// ThroughputTPS is Committed / Elapsed in transactions per second of
	// wall-clock time.
	ThroughputTPS float64
	Stats         Stats
}

// RunClosed executes the workload to completion and reports throughput.
// Transfers preserve the total balance, so TotalBalance is invariant
// across any RunClosed call — the consistency property locking exists to
// protect.
func (db *DB) RunClosed(ctx context.Context, w Workload) (Result, error) {
	if err := w.validate(db); err != nil {
		return Result{}, err
	}
	domain := w.HotEntities
	if domain == 0 {
		domain = db.cfg.DBSize
	}
	before := db.Stats()
	root := rng.New(w.Seed)
	errs := make([]error, w.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w.Workers; i++ {
		i := i
		src := root.Stream(uint64(i))
		var zipf *rng.Zipf
		if w.ZipfSkew > 0 {
			zipf = rng.NewZipf(src.Stream(1), w.ZipfSkew, domain)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < w.TxnsPerWorker; n++ {
				t := w.nextTxn(src, domain, zipf)
				if _, err := db.Execute(ctx, t); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	after := db.Stats()
	committed := after.Committed - before.Committed
	res := Result{
		Committed: committed,
		Elapsed:   elapsed,
		Stats:     after,
	}
	if elapsed > 0 {
		res.ThroughputTPS = float64(committed) / elapsed.Seconds()
	}
	return res, nil
}

// nextTxn draws one transaction: a read-only scan with probability
// ReadFraction, otherwise a batch of balance-preserving transfers.
// Entities come from zipf when hot-spot skew is configured, uniformly
// otherwise.
func (w Workload) nextTxn(src *rng.Source, domain int, zipf *rng.Zipf) Txn {
	pick := func() int {
		if zipf != nil {
			return zipf.Next()
		}
		return src.Intn(domain)
	}
	count := 2 * w.TransfersPerTxn
	if src.Bernoulli(w.ReadFraction) {
		ops := make([]Op, count)
		for i := range ops {
			ops[i] = Op{Entity: pick()}
		}
		return Txn{Ops: ops, Work: w.WorkPerTxn}
	}
	ops := make([]Op, 0, count)
	for i := 0; i < w.TransfersPerTxn; i++ {
		from := pick()
		to := pick()
		amount := int64(src.IntRange(1, 100))
		ops = append(ops,
			Op{Entity: from, Delta: -amount},
			Op{Entity: to, Delta: amount},
		)
	}
	return Txn{Ops: ops, Work: w.WorkPerTxn}
}
