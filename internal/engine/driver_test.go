package engine

import (
	"context"
	"testing"
)

func TestWorkloadValidation(t *testing.T) {
	db := mustOpen(t, baseCfg())
	bad := []Workload{
		{Workers: 0, TxnsPerWorker: 1, TransfersPerTxn: 1},
		{Workers: 1, TxnsPerWorker: 0, TransfersPerTxn: 1},
		{Workers: 1, TxnsPerWorker: 1, TransfersPerTxn: 0},
		{Workers: 1, TxnsPerWorker: 1, TransfersPerTxn: 1, ReadFraction: -0.1},
		{Workers: 1, TxnsPerWorker: 1, TransfersPerTxn: 1, ReadFraction: 1.1},
		{Workers: 1, TxnsPerWorker: 1, TransfersPerTxn: 1, HotEntities: 9999},
	}
	for _, w := range bad {
		if _, err := db.RunClosed(context.Background(), w); err == nil {
			t.Errorf("invalid workload %+v accepted", w)
		}
	}
}

func TestRunClosedPreservesBalance(t *testing.T) {
	for _, protocol := range []Protocol{Conservative, ClaimAsNeeded} {
		cfg := baseCfg()
		cfg.Protocol = protocol
		db := mustOpen(t, cfg)
		want := db.TotalBalance()
		res, err := db.RunClosed(context.Background(), Workload{
			Workers:         8,
			TxnsPerWorker:   100,
			TransfersPerTxn: 3,
			ReadFraction:    0.2,
			Seed:            1,
		})
		if err != nil {
			t.Fatalf("%v: %v", protocol, err)
		}
		if res.Committed != 800 {
			t.Fatalf("%v: committed %d, want 800", protocol, res.Committed)
		}
		if res.ThroughputTPS <= 0 || res.Elapsed <= 0 {
			t.Fatalf("%v: throughput not measured: %+v", protocol, res)
		}
		if got := db.TotalBalance(); got != want {
			t.Fatalf("%v: conservation violated: %d, want %d", protocol, got, want)
		}
	}
}

func TestRunClosedHotSpotRaisesContention(t *testing.T) {
	// Restricting the access domain to one granule's worth of entities
	// must produce more lock blocking than spreading over the database.
	mk := func(hot int) int64 {
		cfg := baseCfg()
		db := mustOpen(t, cfg)
		_, err := db.RunClosed(context.Background(), Workload{
			Workers:         8,
			TxnsPerWorker:   100,
			TransfersPerTxn: 2,
			HotEntities:     hot,
			WorkPerTxn:      20000,
			Seed:            2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db.Stats().Lock.Blocks
	}
	spread := mk(0) // whole database
	hot := mk(20)   // one granule (dbsize=1000, granules=50)
	if hot <= spread {
		t.Fatalf("hot spot blocks (%d) not above spread blocks (%d)", hot, spread)
	}
}

func TestFinerGranularityReducesBlocking(t *testing.T) {
	// The executable cross-validation of the paper's core trade-off:
	// with one granule every concurrent transaction conflicts; with many
	// granules conflicts become rare. (The cost side — lock overhead —
	// is visible in the grant counts and the realdb example's timings.)
	blocks := func(granules int) int64 {
		cfg := baseCfg()
		cfg.Granules = granules
		db := mustOpen(t, cfg)
		_, err := db.RunClosed(context.Background(), Workload{
			Workers:         8,
			TxnsPerWorker:   100,
			TransfersPerTxn: 2,
			WorkPerTxn:      20000,
			Seed:            3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db.Stats().Lock.Blocks
	}
	coarse := blocks(1)
	fine := blocks(1000)
	if fine >= coarse {
		t.Fatalf("fine granularity blocks (%d) not below coarse (%d)", fine, coarse)
	}
}

func TestZipfSkewRaisesContention(t *testing.T) {
	blocks := func(skew float64) int64 {
		db := mustOpen(t, baseCfg())
		_, err := db.RunClosed(context.Background(), Workload{
			Workers:         8,
			TxnsPerWorker:   100,
			TransfersPerTxn: 2,
			WorkPerTxn:      20000,
			ZipfSkew:        skew,
			Seed:            9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db.Stats().Lock.Blocks
	}
	uniform := blocks(0)
	skewed := blocks(1.2)
	if skewed <= uniform {
		t.Fatalf("zipf skew blocks (%d) not above uniform (%d)", skewed, uniform)
	}
}

func TestZipfSkewValidation(t *testing.T) {
	db := mustOpen(t, baseCfg())
	_, err := db.RunClosed(context.Background(), Workload{
		Workers: 1, TxnsPerWorker: 1, TransfersPerTxn: 1, ZipfSkew: -1,
	})
	if err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestRunClosedDeterministicStream(t *testing.T) {
	// The generated operation stream (not the interleaving) must be
	// seed-deterministic: same seed, single worker -> same final state.
	final := func() int64 {
		db := mustOpen(t, baseCfg())
		_, err := db.RunClosed(context.Background(), Workload{
			Workers:         1,
			TxnsPerWorker:   50,
			TransfersPerTxn: 2,
			Seed:            7,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := db.Read(0)
		return v
	}
	if final() != final() {
		t.Fatal("single-worker run not reproducible")
	}
}

func BenchmarkEngineConservative(b *testing.B) {
	cfg := Config{Nodes: 4, DBSize: 10000, Granules: 100, Protocol: Conservative, InitialValue: 100}
	db, err := OpenConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := db.Execute(ctx, Transfer(i%10000, (i*7+1)%10000, 1)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkEngineClaimAsNeeded(b *testing.B) {
	cfg := Config{Nodes: 4, DBSize: 10000, Granules: 100, Protocol: ClaimAsNeeded, InitialValue: 100}
	db, err := OpenConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := db.Execute(ctx, Transfer(i%10000, (i*7+1)%10000, 1)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
