package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"granulock/internal/lockmgr"
)

func mustOpen(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := OpenConfig(cfg)
	if err != nil {
		t.Fatalf("OpenConfig: %v", err)
	}
	return db
}

func baseCfg() Config {
	return Config{Nodes: 4, DBSize: 1000, Granules: 50, Protocol: Conservative, InitialValue: 100}
}

func TestOpenValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, DBSize: 10, Granules: 1},
		{Nodes: 1, DBSize: 0, Granules: 1},
		{Nodes: 1, DBSize: 10, Granules: 0},
		{Nodes: 1, DBSize: 10, Granules: 11},
		{Nodes: 1, DBSize: 10, Granules: 5, Protocol: "no-such-protocol"},
	}
	for _, cfg := range bad {
		if _, err := OpenConfig(cfg); err == nil {
			t.Errorf("invalid config %+v accepted", cfg)
		}
	}
}

func TestOpenOptions(t *testing.T) {
	// The functional-options constructor with defaults: one node, finest
	// granularity, conservative protocol.
	db, err := Open(10)
	if err != nil {
		t.Fatalf("Open(10): %v", err)
	}
	if cfg := db.Config(); cfg.Nodes != 1 || cfg.Granules != 10 || cfg.Protocol != Conservative {
		t.Fatalf("defaults %+v", cfg)
	}
	db, err = Open(100,
		WithNodes(4), WithGranules(10), WithProtocol(WoundWait),
		WithInitialValue(7), WithEscalationThreshold(3))
	if err != nil {
		t.Fatalf("Open with options: %v", err)
	}
	cfg := db.Config()
	if cfg.Nodes != 4 || cfg.Granules != 10 || cfg.Protocol != WoundWait ||
		cfg.InitialValue != 7 || cfg.EscalationThreshold != 3 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if _, err := Open(10, WithProtocol("bogus")); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestInitialBalance(t *testing.T) {
	db := mustOpen(t, baseCfg())
	if got := db.TotalBalance(); got != 1000*100 {
		t.Fatalf("initial balance %d, want 100000", got)
	}
	v, err := db.Read(0)
	if err != nil || v != 100 {
		t.Fatalf("Read(0) = %d, %v", v, err)
	}
	if _, err := db.Read(-1); err == nil {
		t.Fatal("negative entity read accepted")
	}
	if _, err := db.Read(1000); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestPartitioningRoundRobin(t *testing.T) {
	db := mustOpen(t, Config{Nodes: 3, DBSize: 10, Granules: 5, InitialValue: 1})
	// Entities 0..9 over 3 nodes: node 0 owns {0,3,6,9}, node 1 {1,4,7},
	// node 2 {2,5,8}.
	if len(db.nodes[0].values) != 4 || len(db.nodes[1].values) != 3 || len(db.nodes[2].values) != 3 {
		t.Fatalf("partition sizes %d/%d/%d", len(db.nodes[0].values), len(db.nodes[1].values), len(db.nodes[2].values))
	}
	if db.nodeOf(7) != 1 || db.localIndex(7) != 2 {
		t.Fatalf("entity 7 at node %d slot %d", db.nodeOf(7), db.localIndex(7))
	}
}

func TestGranuleOfContiguous(t *testing.T) {
	db := mustOpen(t, Config{Nodes: 2, DBSize: 100, Granules: 10, InitialValue: 0})
	// Entities 0..9 in granule 0, 10..19 in granule 1, ...
	for e := 0; e < 100; e++ {
		want := lockmgr.Granule(e / 10)
		if got := db.GranuleOf(e); got != want {
			t.Fatalf("GranuleOf(%d) = %d, want %d", e, got, want)
		}
	}
}

func TestTransferMovesMoney(t *testing.T) {
	db := mustOpen(t, baseCfg())
	if _, err := db.Execute(context.Background(), Transfer(3, 7, 25)); err != nil {
		t.Fatal(err)
	}
	a, _ := db.Read(3)
	b, _ := db.Read(7)
	if a != 75 || b != 125 {
		t.Fatalf("balances %d/%d, want 75/125", a, b)
	}
	if db.TotalBalance() != 100000 {
		t.Fatalf("conservation violated: %d", db.TotalBalance())
	}
}

func TestReadTxnSums(t *testing.T) {
	db := mustOpen(t, baseCfg())
	sum, err := db.Execute(context.Background(), Txn{Ops: []Op{{Entity: 1}, {Entity: 2}, {Entity: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 300 {
		t.Fatalf("read sum %d, want 300", sum)
	}
}

func TestEmptyTxn(t *testing.T) {
	db := mustOpen(t, baseCfg())
	sum, err := db.Execute(context.Background(), Txn{})
	if err != nil || sum != 0 {
		t.Fatalf("empty txn: %d, %v", sum, err)
	}
}

func TestExecuteRejectsBadEntity(t *testing.T) {
	db := mustOpen(t, baseCfg())
	if _, err := db.Execute(context.Background(), Transfer(0, 5000, 1)); err == nil {
		t.Fatal("out-of-range entity accepted")
	}
}

func TestLockSetModes(t *testing.T) {
	db := mustOpen(t, Config{Nodes: 2, DBSize: 100, Granules: 10, InitialValue: 0})
	// Read entity 5 (granule 0), write entity 7 (granule 0): X wins.
	// Read entity 15 (granule 1): S.
	reqs, err := db.lockSet(Txn{Ops: []Op{{Entity: 5}, {Entity: 7, Delta: 1}, {Entity: 15}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("%d requests, want 2", len(reqs))
	}
	if reqs[0].Granule != 0 || reqs[0].Mode != lockmgr.ModeExclusive {
		t.Fatalf("granule 0 request %+v", reqs[0])
	}
	if reqs[1].Granule != 1 || reqs[1].Mode != lockmgr.ModeShared {
		t.Fatalf("granule 1 request %+v", reqs[1])
	}
}

// conservationStress hammers the database with concurrent transfers and
// verifies the total balance is preserved — the lost-update anomaly of
// §1 is exactly what this catches if locking is broken.
func conservationStress(t *testing.T, protocol Protocol, granules int) {
	t.Helper()
	cfg := baseCfg()
	cfg.Protocol = protocol
	cfg.Granules = granules
	db := mustOpen(t, cfg)
	want := db.TotalBalance()

	const workers = 8
	const txns = 200
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				from := (w*31 + i*17) % 1000
				to := (w*13 + i*7 + 1) % 1000
				if _, err := db.Execute(ctx, Transfer(from, to, 5)); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := db.TotalBalance(); got != want {
		t.Fatalf("conservation violated under %v/%d granules: %d, want %d", protocol, granules, got, want)
	}
	if s := db.Stats(); s.Committed != workers*txns {
		t.Fatalf("committed %d, want %d", s.Committed, workers*txns)
	}
}

func TestConservationHierarchical(t *testing.T) {
	for _, granules := range []int{1, 50, 1000} {
		conservationStress(t, Hierarchical, granules)
	}
}

func TestHierarchicalEscalation(t *testing.T) {
	cfg := Config{
		Nodes: 2, DBSize: 1000, Granules: 1000,
		Protocol: Hierarchical, InitialValue: 100, EscalationThreshold: 5,
	}
	db := mustOpen(t, cfg)
	// One transaction touching many granules triggers escalation to a
	// database-level lock.
	ops := make([]Op, 0, 20)
	for e := 0; e < 1000; e += 100 {
		ops = append(ops, Op{Entity: e, Delta: 1}, Op{Entity: e + 50, Delta: -1})
	}
	if _, err := db.Execute(context.Background(), Txn{Ops: ops}); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Escalations == 0 {
		t.Fatal("no escalation despite 20 granules against threshold 5")
	}
	if db.TotalBalance() != 1000*100 {
		t.Fatalf("conservation violated: %d", db.TotalBalance())
	}
}

func TestHierarchicalMixedReadWriteTerminates(t *testing.T) {
	// Regression test for the deadlock-retry livelock: hierarchical
	// locking with multi-granule read/write transactions and synthetic
	// work must terminate (victims back off instead of instantly
	// re-grabbing their first granule).
	cfg := Config{Nodes: 4, DBSize: 1000, Granules: 10, Protocol: Hierarchical, InitialValue: 100, EscalationThreshold: 16}
	db := mustOpen(t, cfg)
	done := make(chan error, 1)
	go func() {
		_, err := db.RunClosed(context.Background(), Workload{
			Workers: 8, TxnsPerWorker: 50, TransfersPerTxn: 2,
			ReadFraction: 0.2, WorkPerTxn: 20000, Seed: 1,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("hierarchical mixed workload hung (deadlock-retry livelock)")
	}
	if db.TotalBalance() != 1000*100 {
		t.Fatalf("conservation violated: %d", db.TotalBalance())
	}
}

func TestEscalationThresholdValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.EscalationThreshold = -1
	if _, err := OpenConfig(cfg); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestConservationConservativeCoarse(t *testing.T) { conservationStress(t, Conservative, 1) }
func TestConservationConservativeMid(t *testing.T)    { conservationStress(t, Conservative, 50) }
func TestConservationConservativeFine(t *testing.T)   { conservationStress(t, Conservative, 1000) }
func TestConservationClaimAsNeededCoarse(t *testing.T) {
	conservationStress(t, ClaimAsNeeded, 1)
}
func TestConservationClaimAsNeededMid(t *testing.T)  { conservationStress(t, ClaimAsNeeded, 50) }
func TestConservationClaimAsNeededFine(t *testing.T) { conservationStress(t, ClaimAsNeeded, 1000) }

func TestConservativeNeverDeadlocks(t *testing.T) {
	cfg := baseCfg()
	cfg.Granules = 10 // high collision probability
	db := mustOpen(t, cfg)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// Opposite lock orders on purpose.
				a, b := (w+i)%1000, (w*7+i*3)%1000
				t1 := Transfer(a, b, 1)
				if w%2 == 0 {
					t1 = Transfer(b, a, 1)
				}
				if _, err := db.Execute(ctx, t1); err != nil {
					t.Errorf("execute: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := db.Stats(); s.Lock.Deadlocks != 0 || s.DeadlockRetries != 0 {
		t.Fatalf("conservative protocol deadlocked: %+v", s)
	}
}

func TestClaimAsNeededDetectsAndRetries(t *testing.T) {
	// Two granules, opposite acquisition orders, heavy concurrency:
	// deadlocks are essentially guaranteed and must be retried through.
	cfg := Config{Nodes: 2, DBSize: 100, Granules: 2, Protocol: ClaimAsNeeded, InitialValue: 100}
	db := mustOpen(t, cfg)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var txn Txn
				if w%2 == 0 {
					txn = Transfer(10, 60, 1) // granule 0 then 1
				} else {
					txn = Transfer(60, 10, 1) // granule 1 then 0
				}
				if _, err := db.Execute(ctx, txn); err != nil {
					t.Errorf("execute: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if db.TotalBalance() != 100*100 {
		t.Fatalf("conservation violated: %d", db.TotalBalance())
	}
	if s := db.Stats(); s.DeadlockRetries == 0 {
		t.Log("warning: no deadlocks observed (scheduling-dependent); invariants still verified")
	}
}

func TestFullReadTxnSeesConsistentSnapshot(t *testing.T) {
	// Concurrent transfers plus full-database read transactions: every
	// isolated read must see exactly the invariant total.
	cfg := baseCfg()
	cfg.Granules = 20
	db := mustOpen(t, cfg)
	want := db.TotalBalance()
	ctx := context.Background()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Execute(ctx, Transfer((w+i)%1000, (w*3+i*11+1)%1000, 3)); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	full := db.FullReadTxn()
	for i := 0; i < 20; i++ {
		sum, err := db.Execute(ctx, full)
		if err != nil {
			t.Fatalf("full read: %v", err)
		}
		if sum != want {
			t.Fatalf("snapshot %d saw total %d, want %d (isolation broken)", i, sum, want)
		}
	}
	close(stop)
	writers.Wait()
	if got := db.TotalBalance(); got != want {
		t.Fatalf("final conservation: %d, want %d", got, want)
	}
}

func TestProtocolNames(t *testing.T) {
	// The constants are registry names: the engine accepts each one.
	for _, p := range []Protocol{Conservative, ClaimAsNeeded, Hierarchical, WoundWait, WaitDie, Optimistic} {
		if _, err := Open(10, WithProtocol(p)); err != nil {
			t.Errorf("Open with %q: %v", p, err)
		}
	}
	if Conservative != "conservative" || ClaimAsNeeded != "claim-as-needed" {
		t.Fatal("protocol names")
	}
}
