// Package engine is an executable shared-nothing mini-DBMS: an
// in-memory database horizontally partitioned over N nodes, with real
// goroutine transactions synchronizing through the lock managers of
// internal/lockmgr. It exists to cross-validate the simulation model's
// conclusions — that granularity trades concurrency against lock
// management cost — on an actual concurrent system, and to demonstrate
// the locking regimes the paper discusses: conservative preclaiming
// (deadlock-free), claim-as-needed (deadlock-detected, footnote 1), and
// hierarchical multigranularity locking with escalation (the "block and
// file level" recommendation of the conclusions). Optional write-ahead
// logging (internal/wal) makes commits durable and crash-recoverable.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/obs"
	"granulock/internal/wal"
)

// Protocol selects the locking protocol transactions use.
type Protocol int

const (
	// Conservative preclaims every granule before touching data; a
	// transaction holds nothing while it waits, so deadlock is
	// impossible (the paper's protocol).
	Conservative Protocol = iota
	// ClaimAsNeeded acquires each granule on first touch; deadlocks are
	// detected and the victim retries (the strategy of footnote 1).
	ClaimAsNeeded
	// Hierarchical uses the multigranularity lock manager with a
	// database→granule hierarchy, intention modes and best-effort lock
	// escalation — the "block level and file level" regime the paper's
	// conclusions recommend. Acquisition is claim-as-needed with
	// deadlock detection and victim retry.
	Hierarchical
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case Conservative:
		return "conservative"
	case ClaimAsNeeded:
		return "claim-as-needed"
	case Hierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config describes a database instance.
type Config struct {
	// Nodes is the number of shared-nothing nodes (processors); entities
	// are round-robin partitioned across them.
	Nodes int
	// DBSize is the number of entities (each holds an int64 value).
	DBSize int
	// Granules is the number of lock granules; entity e belongs to
	// granule e·Granules/DBSize (contiguous ranges, the best-placement
	// layout).
	Granules int
	// Protocol selects conservative or claim-as-needed locking.
	Protocol Protocol
	// InitialValue seeds every entity, so TotalBalance starts at
	// DBSize·InitialValue.
	InitialValue int64
	// Log, when non-nil, makes transactions durable: each commit
	// appends its update records and a commit record to the write-ahead
	// log (and syncs) before releasing its locks. Recover rebuilds a
	// database from such a log.
	Log *wal.Writer
	// EscalationThreshold enables lock escalation for the Hierarchical
	// protocol: a transaction holding this many granules escalates to a
	// database-level lock (0 disables; ignored by other protocols).
	EscalationThreshold int
	// Metrics, when non-nil, mirrors the database's activity into the
	// registry: commit and deadlock-retry counters
	// (granulock_engine_commits_total,
	// granulock_engine_deadlock_retries_total) plus the flat lock
	// table's granulock_lockmgr_ families. One database per registry.
	Metrics *obs.Registry
}

// validate checks a Config.
func (c Config) validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("engine: nodes %d < 1", c.Nodes)
	case c.DBSize < 1:
		return fmt.Errorf("engine: dbsize %d < 1", c.DBSize)
	case c.Granules < 1 || c.Granules > c.DBSize:
		return fmt.Errorf("engine: granules %d outside [1, dbsize=%d]", c.Granules, c.DBSize)
	case c.Protocol != Conservative && c.Protocol != ClaimAsNeeded && c.Protocol != Hierarchical:
		return fmt.Errorf("engine: unknown protocol %d", int(c.Protocol))
	case c.EscalationThreshold < 0:
		return fmt.Errorf("engine: escalation threshold %d < 0", c.EscalationThreshold)
	}
	return nil
}

// Op is one read or update of an entity: Delta 0 reads, otherwise the
// delta is added to the entity's value.
type Op struct {
	Entity int
	Delta  int64
}

// Txn is a transaction: a list of operations executed atomically under
// two-phase locking. The returned sum aggregates the values of all
// entities read (after applying the transaction's own earlier deltas, as
// the ops execute in order).
type Txn struct {
	Ops []Op
	// Work is synthetic computation (iterations of a mixing loop)
	// performed while the locks are held — the executable analog of the
	// paper's per-entity processing cost (cputime/iotime). Without it,
	// real transactions hold locks for nanoseconds and contention never
	// materializes.
	Work int
}

// spin burns cpu for n iterations in a way the compiler cannot elide,
// yielding the processor periodically the way a real transaction yields
// for I/O while holding its locks (the paper's transactions spend most
// of their lock-holding time waiting on disks). Without the yields a
// GOMAXPROCS=1 host would run every critical section to completion
// between scheduling points and contention could never materialize.
func spin(n int) int64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if i&0x3ff == 0x3ff {
			runtime.Gosched()
		}
	}
	return int64(x & 1)
}

// Stats counts engine activity.
type Stats struct {
	Committed int64
	// DeadlockRetries counts claim-as-needed deadlock victims that were
	// retried (always 0 under Conservative).
	DeadlockRetries int64
	// Lock counts mirror the active lock table's grants/blocks/deadlocks.
	Lock lockmgr.Stats
	// Escalations counts hierarchical lock escalations (Hierarchical
	// protocol only).
	Escalations int64
}

// node is one shared-nothing partition. Its mutex is a short storage
// latch; isolation comes from the lock table, not from this latch.
type node struct {
	mu     sync.Mutex
	values []int64
}

// DB is an open database. All methods are safe for concurrent use.
type DB struct {
	cfg   Config
	nodes []*node
	locks *lockmgr.Table
	hier  *lockmgr.HierTable // non-nil iff Protocol == Hierarchical

	nextTxn   atomic.Int64
	committed atomic.Int64
	retries   atomic.Int64
	// sink absorbs synthetic Txn.Work results so the compiler cannot
	// eliminate the lock-holding computation.
	sink atomic.Int64

	// Registry twins of the counters above, nil without Config.Metrics.
	mCommits *obs.Counter
	mRetries *obs.Counter
}

// Open creates a database per the configuration.
func Open(cfg Config) (*DB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var topts []lockmgr.Option
	if cfg.Metrics != nil {
		topts = append(topts, lockmgr.WithMetrics(cfg.Metrics))
	}
	db := &DB{cfg: cfg, locks: lockmgr.NewTable(topts...)}
	if cfg.Metrics != nil {
		db.mCommits = cfg.Metrics.NewCounter("granulock_engine_commits_total",
			"Transactions committed by the executable engine.")
		db.mRetries = cfg.Metrics.NewCounter("granulock_engine_deadlock_retries_total",
			"Deadlock victims retried (claim-as-needed and hierarchical).")
	}
	if cfg.Protocol == Hierarchical {
		var hopts []lockmgr.HierOption
		if cfg.EscalationThreshold > 0 {
			hopts = append(hopts, lockmgr.WithEscalation(cfg.EscalationThreshold))
		}
		db.hier = lockmgr.NewHierTable(hopts...)
	}
	db.nodes = make([]*node, cfg.Nodes)
	for i := range db.nodes {
		// Round-robin partitioning: node i owns entities i, i+Nodes, ...
		count := (cfg.DBSize - i + cfg.Nodes - 1) / cfg.Nodes
		values := make([]int64, count)
		for j := range values {
			values[j] = cfg.InitialValue
		}
		db.nodes[i] = &node{values: values}
	}
	return db, nil
}

// Config returns the database's configuration.
func (db *DB) Config() Config { return db.cfg }

// nodeOf returns the owning node of an entity (round-robin).
func (db *DB) nodeOf(entity int) int { return entity % db.cfg.Nodes }

// localIndex returns an entity's slot within its owning node.
func (db *DB) localIndex(entity int) int { return entity / db.cfg.Nodes }

// GranuleOf returns the lock granule covering an entity.
func (db *DB) GranuleOf(entity int) lockmgr.Granule {
	return lockmgr.Granule(entity * db.cfg.Granules / db.cfg.DBSize)
}

// lockSet computes the deduplicated granule requests of a transaction:
// exclusive if any op writes within the granule, shared otherwise.
func (db *DB) lockSet(t Txn) ([]lockmgr.Request, error) {
	modes := make(map[lockmgr.Granule]lockmgr.Mode)
	order := make([]lockmgr.Granule, 0, len(t.Ops))
	for _, op := range t.Ops {
		if op.Entity < 0 || op.Entity >= db.cfg.DBSize {
			return nil, fmt.Errorf("engine: entity %d outside [0, %d)", op.Entity, db.cfg.DBSize)
		}
		g := db.GranuleOf(op.Entity)
		mode := lockmgr.ModeShared
		if op.Delta != 0 {
			mode = lockmgr.ModeExclusive
		}
		if have, ok := modes[g]; !ok {
			modes[g] = mode
			order = append(order, g)
		} else if mode > have {
			modes[g] = mode
		}
	}
	reqs := make([]lockmgr.Request, len(order))
	for i, g := range order {
		reqs[i] = lockmgr.Request{Granule: g, Mode: modes[g]}
	}
	return reqs, nil
}

// Execute runs one transaction to commit under the configured protocol,
// returning the sum of all read entity values. Claim-as-needed and
// hierarchical transactions chosen as deadlock victims release
// everything, back off briefly (randomized exponential — immediate
// restart livelocks: the victim re-grabs its first granule before the
// survivor is scheduled and the same cycle re-forms forever), and retry
// until the context is cancelled.
func (db *DB) Execute(ctx context.Context, t Txn) (int64, error) {
	if len(t.Ops) == 0 {
		return 0, nil
	}
	reqs, err := db.lockSet(t)
	if err != nil {
		return 0, err
	}
	attempt := 0
	for {
		txnID := lockmgr.TxnID(db.nextTxn.Add(1))
		err := db.acquire(ctx, txnID, reqs)
		if err == nil {
			sum, records := db.apply(int64(txnID), t)
			if db.cfg.Log != nil {
				// The commit record must be durable before the locks
				// are released: log order then matches serialization
				// order on every granule.
				records = append(records, wal.Record{Kind: wal.KindCommit, Txn: int64(txnID)})
				if err := db.cfg.Log.AppendGroup(records); err != nil {
					db.release(txnID)
					return 0, err
				}
				if err := db.cfg.Log.Sync(); err != nil {
					db.release(txnID)
					return 0, err
				}
			}
			db.release(txnID)
			db.committed.Add(1)
			if db.mCommits != nil {
				db.mCommits.Inc()
			}
			return sum, nil
		}
		db.release(txnID)
		if errors.Is(err, lockmgr.ErrDeadlock) {
			db.retries.Add(1)
			if db.mRetries != nil {
				db.mRetries.Inc()
			}
			attempt++
			if err := sleepBackoff(ctx, attempt, uint64(txnID)); err != nil {
				return 0, err
			}
			continue
		}
		return 0, err
	}
}

// sleepBackoff waits a randomized, exponentially growing interval
// before a deadlock retry: 0–100µs on the first attempt, doubling to a
// ~10ms ceiling. The jitter derives from the transaction id, so
// competing victims desynchronize.
func sleepBackoff(ctx context.Context, attempt int, seed uint64) error {
	if attempt > 7 {
		attempt = 7
	}
	window := 100 * time.Microsecond << attempt
	// Cheap SplitMix-style jitter; no global rand contention.
	seed ^= seed << 13
	seed ^= seed >> 7
	seed ^= seed << 17
	delay := time.Duration(seed % uint64(window))
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquire takes the whole lock set under the configured protocol.
func (db *DB) acquire(ctx context.Context, txnID lockmgr.TxnID, reqs []lockmgr.Request) error {
	switch db.cfg.Protocol {
	case Conservative:
		return db.locks.AcquireAll(ctx, txnID, reqs)
	case Hierarchical:
		for _, r := range reqs {
			mode := lockmgr.GModeS
			if r.Mode == lockmgr.ModeExclusive {
				mode = lockmgr.GModeX
			}
			path := []lockmgr.NodeID{"db", granuleNode(r.Granule)}
			if err := db.hier.Lock(ctx, txnID, path, mode); err != nil {
				return err
			}
		}
		return nil
	default: // ClaimAsNeeded
		for _, r := range reqs {
			if err := db.locks.Acquire(ctx, txnID, r.Granule, r.Mode); err != nil {
				return err
			}
		}
		return nil
	}
}

// granuleNode names a granule in the two-level hierarchy.
func granuleNode(g lockmgr.Granule) lockmgr.NodeID {
	return lockmgr.NodeID("db/g" + itoa64(int64(g)))
}

// itoa64 formats a non-negative int64 without fmt in the lock path.
func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}

// release frees every lock txnID holds under the configured protocol.
func (db *DB) release(txnID lockmgr.TxnID) {
	if db.cfg.Protocol == Hierarchical {
		db.hier.ReleaseAll(txnID)
		return
	}
	db.locks.ReleaseAll(txnID)
}

// apply performs the ops; isolation is already guaranteed by the held
// locks, the node latch only orders raw memory access. When the
// database has a log, the update records (begin + before/after images)
// are returned for the caller to append with the commit record.
func (db *DB) apply(txnID int64, t Txn) (int64, []wal.Record) {
	if t.Work > 0 {
		db.sink.Add(spin(t.Work))
	}
	var records []wal.Record
	if db.cfg.Log != nil {
		records = make([]wal.Record, 0, len(t.Ops)+2)
		records = append(records, wal.Record{Kind: wal.KindBegin, Txn: txnID})
	}
	var sum int64
	for _, op := range t.Ops {
		n := db.nodes[db.nodeOf(op.Entity)]
		idx := db.localIndex(op.Entity)
		n.mu.Lock()
		if op.Delta != 0 {
			before := n.values[idx]
			n.values[idx] = before + op.Delta
			if records != nil {
				records = append(records, wal.Record{
					Kind:   wal.KindUpdate,
					Txn:    txnID,
					Entity: int64(op.Entity),
					Before: before,
					After:  before + op.Delta,
				})
			}
		} else {
			sum += n.values[idx]
		}
		n.mu.Unlock()
	}
	return sum, records
}

// set overwrites one entity's value directly; recovery's redo hook.
func (db *DB) set(entity int, value int64) {
	n := db.nodes[db.nodeOf(entity)]
	n.mu.Lock()
	n.values[db.localIndex(entity)] = value
	n.mu.Unlock()
}

// Recover rebuilds a database from a write-ahead log: a fresh instance
// per cfg (which supplies the same Nodes/DBSize/Granules/InitialValue
// the crashed instance had; cfg.Log is the crashed log's *reader* side
// and is ignored here) with every committed transaction redone and
// everything else discarded. It returns the rebuilt database and the
// recovery statistics.
func Recover(cfg Config, log *wal.Reader) (*DB, wal.RecoverStats, error) {
	cfg.Log = nil // the rebuilt instance starts without a log attached
	db, err := Open(cfg)
	if err != nil {
		return nil, wal.RecoverStats{}, err
	}
	stats, err := wal.Recover(log, func(entity, value int64) {
		if entity >= 0 && entity < int64(cfg.DBSize) {
			db.set(int(entity), value)
		}
	})
	if err != nil {
		return nil, stats, err
	}
	return db, stats, nil
}

// Read returns one entity's value without transactional isolation
// (a dirty read used by tests and tooling).
func (db *DB) Read(entity int) (int64, error) {
	if entity < 0 || entity >= db.cfg.DBSize {
		return 0, fmt.Errorf("engine: entity %d outside [0, %d)", entity, db.cfg.DBSize)
	}
	n := db.nodes[db.nodeOf(entity)]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.values[db.localIndex(entity)], nil
}

// TotalBalance sums every entity — the conservation invariant checked by
// the consistency tests. It is not transactionally isolated; call it
// while the system is quiescent, or use a full-database read
// transaction for an isolated sum.
func (db *DB) TotalBalance() int64 {
	var total int64
	for _, n := range db.nodes {
		n.mu.Lock()
		for _, v := range n.values {
			total += v
		}
		n.mu.Unlock()
	}
	return total
}

// FullReadTxn returns a transaction reading every entity: with all
// granules locked shared it observes a serializable snapshot.
func (db *DB) FullReadTxn() Txn {
	ops := make([]Op, db.cfg.DBSize)
	for e := range ops {
		ops[e] = Op{Entity: e}
	}
	return Txn{Ops: ops}
}

// Transfer returns the classic funds-transfer transaction moving amount
// from one entity to another — the paper's §1 motivating example.
func Transfer(from, to int, amount int64) Txn {
	return Txn{Ops: []Op{
		{Entity: from, Delta: -amount},
		{Entity: to, Delta: amount},
	}}
}

// Stats returns an activity snapshot.
func (db *DB) Stats() Stats {
	s := Stats{
		Committed:       db.committed.Load(),
		DeadlockRetries: db.retries.Load(),
	}
	if db.hier != nil {
		s.Lock = db.hier.Stats()
		s.Escalations = db.hier.Escalations()
	} else {
		s.Lock = db.locks.Stats()
	}
	return s
}
