// Package engine is an executable shared-nothing mini-DBMS: an
// in-memory database horizontally partitioned over N nodes, with real
// goroutine transactions synchronizing through a pluggable
// concurrency-control protocol (internal/engine/cc). It exists to
// cross-validate the simulation model's conclusions — that granularity
// trades concurrency against lock management cost — on an actual
// concurrent system, and to compare the locking regimes the paper
// discusses against the alternatives the literature proposes for
// exactly the contention ranges where 2PL hurts.
//
// Six protocols ship in the registry: conservative preclaiming
// (deadlock-free, the paper's protocol), claim-as-needed (deadlock-
// detected, footnote 1), hierarchical multigranularity locking with
// escalation (the "block and file level" recommendation of the
// conclusions), the wound-wait and wait-die age-priority restart
// policies, and optimistic validate-at-commit. Open takes a protocol
// *name* resolved through cc.Lookup; cc.Names lists the registry.
// Optional write-ahead logging (internal/wal) makes commits durable
// and crash-recoverable under every protocol.
package engine

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/engine/cc"
	"granulock/internal/lockmgr"
	"granulock/internal/obs"
	"granulock/internal/wal"
)

// Protocol names a concurrency-control protocol in the cc registry.
// It is a plain string: the historical int enum was replaced by
// registry names so protocols can be added without touching this
// package (see docs/ENGINE.md for the migration note).
type Protocol = string

// The built-in protocol names. The authoritative list — including any
// protocol registered outside this package — is cc.Names().
const (
	// Conservative preclaims every granule before touching data; a
	// transaction holds nothing while it waits, so deadlock is
	// impossible (the paper's protocol).
	Conservative Protocol = "conservative"
	// ClaimAsNeeded acquires each granule on first touch; deadlocks are
	// detected and the victim retries (the strategy of footnote 1).
	ClaimAsNeeded Protocol = "claim-as-needed"
	// Hierarchical uses the multigranularity lock manager with a
	// database→granule hierarchy, intention modes and best-effort lock
	// escalation.
	Hierarchical Protocol = "hierarchical"
	// WoundWait resolves conflicts by age: older requesters wound
	// (restart) younger holders, younger requesters wait.
	WoundWait Protocol = "wound-wait"
	// WaitDie resolves conflicts by age: older requesters wait, younger
	// requesters die (restart) rather than wait behind an older holder.
	WaitDie Protocol = "wait-die"
	// Optimistic takes no locks: transactions buffer writes privately
	// and validate their read sets at commit (backward validation).
	Optimistic Protocol = "optimistic"
)

// Config describes a database instance.
//
// Deprecated: Config remains as the carrier of the legacy OpenConfig
// path and of Recover's rebuild parameters. New code should call
// Open(dbsize, ...Option), which cannot express an invalid
// combination field-by-field.
type Config struct {
	// Nodes is the number of shared-nothing nodes (processors); entities
	// are round-robin partitioned across them.
	Nodes int
	// DBSize is the number of entities (each holds an int64 value).
	DBSize int
	// Granules is the number of lock granules; entity e belongs to
	// granule e·Granules/DBSize (contiguous ranges, the best-placement
	// layout).
	Granules int
	// Protocol is the concurrency-control protocol name, resolved
	// through the cc registry ("" selects "conservative", matching the
	// historical zero value of the int enum this field replaced).
	Protocol Protocol
	// InitialValue seeds every entity, so TotalBalance starts at
	// DBSize·InitialValue.
	InitialValue int64
	// Log, when non-nil, makes transactions durable the per-commit-sync
	// way: each commit appends its update records and a commit record
	// to the write-ahead log and syncs before releasing its access
	// rights. Recover rebuilds a database from such a log. Mutually
	// exclusive with WAL — Log is the baseline path the group-commit
	// pipeline is benchmarked against.
	Log *wal.Writer
	// WAL, when non-nil, makes transactions durable through the
	// group-commit pipeline: each commit enqueues its record group and
	// waits for the batched flush (wal.Log) before releasing its access
	// rights. A Set of one log serializes everything through it; a Set
	// of exactly Nodes logs is partitioned by node index, so a commit
	// touching only node k syncs only log k. Mutually exclusive with
	// Log.
	WAL *wal.Set
	// WALOptions configures the logs OpenDurable creates (preallocation,
	// flush interval, fault injection); ignored by Open/OpenConfig.
	WALOptions []wal.LogOption
	// EscalationThreshold enables lock escalation for the hierarchical
	// protocol: a transaction holding this many granules escalates to a
	// database-level lock (0 disables; ignored by other protocols).
	EscalationThreshold int
	// Metrics, when non-nil, mirrors the database's activity into the
	// registry: commit and restart counters
	// (granulock_engine_commits_total,
	// granulock_engine_deadlock_retries_total,
	// granulock_engine_restarts_total by cause) plus the protocol's
	// lock-table families. One database per registry.
	Metrics *obs.Registry
}

// Option configures Open.
type Option func(*Config)

// WithNodes sets the number of shared-nothing nodes (default 1).
func WithNodes(n int) Option { return func(c *Config) { c.Nodes = n } }

// WithGranules sets the number of lock granules (default: one per
// entity, the finest granularity).
func WithGranules(n int) Option { return func(c *Config) { c.Granules = n } }

// WithProtocol selects the concurrency-control protocol by registry
// name (default "conservative"; cc.Names lists the registry).
func WithProtocol(name Protocol) Option { return func(c *Config) { c.Protocol = name } }

// WithInitialValue seeds every entity (default 0).
func WithInitialValue(v int64) Option { return func(c *Config) { c.InitialValue = v } }

// WithLog attaches a write-ahead log on the per-commit-sync path:
// commits become durable and Recover can rebuild the database after a
// crash. Prefer WithWAL (group commit) for concurrent workloads.
func WithLog(w *wal.Writer) Option { return func(c *Config) { c.Log = w } }

// WithWAL attaches a group-commit write-ahead log set: commits become
// durable via batched flushes. The set must have one log, or exactly
// one per node (per-partition logging keyed by node index). The caller
// owns the set's lifecycle (Close it after the DB is quiescent);
// OpenDurable manages all of this given just a directory.
func WithWAL(s *wal.Set) Option { return func(c *Config) { c.WAL = s } }

// WithWALOptions forwards options to the logs OpenDurable creates
// (e.g. wal.WithFlushInterval, wal.WithPreallocate,
// wal.WithFaultInjector for crash harnesses).
func WithWALOptions(opts ...wal.LogOption) Option {
	return func(c *Config) { c.WALOptions = append(c.WALOptions, opts...) }
}

// WithEscalationThreshold enables hierarchical lock escalation at the
// given held-granule count (hierarchical protocol only).
func WithEscalationThreshold(n int) Option { return func(c *Config) { c.EscalationThreshold = n } }

// WithMetrics mirrors the database's activity into the registry.
func WithMetrics(reg *obs.Registry) Option { return func(c *Config) { c.Metrics = reg } }

// normalize fills Config defaults.
func (c Config) normalize() Config {
	if c.Protocol == "" {
		c.Protocol = Conservative
	}
	return c
}

// validate checks a Config.
func (c Config) validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("engine: nodes %d < 1", c.Nodes)
	case c.DBSize < 1:
		return fmt.Errorf("engine: dbsize %d < 1", c.DBSize)
	case c.Granules < 1 || c.Granules > c.DBSize:
		return fmt.Errorf("engine: granules %d outside [1, dbsize=%d]", c.Granules, c.DBSize)
	case c.EscalationThreshold < 0:
		return fmt.Errorf("engine: escalation threshold %d < 0", c.EscalationThreshold)
	}
	if _, ok := cc.Lookup(c.Protocol); !ok {
		return fmt.Errorf("engine: unknown protocol %q (registered: %v)", c.Protocol, cc.Names())
	}
	if c.Log != nil && c.WAL != nil {
		return fmt.Errorf("engine: Log and WAL are mutually exclusive durability paths")
	}
	if c.WAL != nil && c.WAL.Len() != 1 && c.WAL.Len() != c.Nodes {
		return fmt.Errorf("engine: WAL set has %d logs, need 1 or one per node (%d)", c.WAL.Len(), c.Nodes)
	}
	return nil
}

// Op is one read or update of an entity: Delta 0 reads, otherwise the
// delta is added to the entity's value.
type Op struct {
	Entity int
	Delta  int64
}

// Txn is a transaction: a list of operations executed atomically under
// the configured protocol. The returned sum aggregates the values of
// all entities read (after applying the transaction's own earlier
// deltas, as the ops execute in order).
type Txn struct {
	Ops []Op
	// Work is synthetic computation (iterations of a mixing loop)
	// performed while the access rights are held — the executable
	// analog of the paper's per-entity processing cost
	// (cputime/iotime). Without it, real transactions hold locks for
	// nanoseconds and contention never materializes.
	Work int
}

// spin burns cpu for n iterations in a way the compiler cannot elide,
// yielding the processor periodically the way a real transaction yields
// for I/O while holding its locks (the paper's transactions spend most
// of their lock-holding time waiting on disks). Without the yields a
// GOMAXPROCS=1 host would run every critical section to completion
// between scheduling points and contention could never materialize.
func spin(n int) int64 {
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if i&0x3ff == 0x3ff {
			runtime.Gosched()
		}
	}
	return int64(x & 1)
}

// Stats counts engine activity.
type Stats struct {
	Committed int64
	// Restarts counts attempts the protocol aborted and the engine
	// retried, whatever the cause: deadlock victims, wound-wait wounds,
	// wait-die deaths, and optimistic validation failures (always 0
	// under Conservative).
	Restarts int64
	// DeadlockRetries is the historical name of Restarts, kept for
	// compatibility; the two are always equal.
	DeadlockRetries int64
	// Lock counts mirror the protocol's lock-table grants/blocks/
	// deadlocks (zero for lockless protocols).
	Lock lockmgr.Stats
	// Escalations counts hierarchical lock escalations (hierarchical
	// protocol only).
	Escalations int64
	// Wounds, Dies and ValidationFails break the protocol-initiated
	// restarts down by cause (wound-wait, wait-die, and optimistic
	// respectively).
	Wounds          int64
	Dies            int64
	ValidationFails int64
}

// node is one shared-nothing partition. Its mutex is a short storage
// latch; isolation comes from the protocol, not from this latch.
type node struct {
	mu     sync.Mutex
	values []int64
}

// DB is an open database. All methods are safe for concurrent use.
type DB struct {
	cfg   Config
	nodes []*node
	inst  cc.Instance

	// walSet is the group-commit log set (Config.WAL), nil on the
	// legacy Writer path; walDir is non-nil only for OpenDurable
	// databases, which own their log files and support Checkpoint.
	walSet *wal.Set
	walDir *wal.Dir

	nextTxn   atomic.Int64
	committed atomic.Int64
	retries   atomic.Int64
	// sink absorbs synthetic Txn.Work results so the compiler cannot
	// eliminate the lock-holding computation.
	sink atomic.Int64

	// Registry twins of the counters above, nil without Config.Metrics.
	mCommits *obs.Counter
	mRetries *obs.Counter
	// mRestarts maps a restart cause (cc.RestartKind) to its counter;
	// series resolve once at Open so the hot loop never registers.
	mRestarts map[string]*obs.Counter
}

// Open creates a database of dbsize entities, configured by options —
// mirroring the granulock.Run(p, With…) facade:
//
//	db, err := engine.Open(1000,
//		engine.WithProtocol("wound-wait"),
//		engine.WithGranules(100),
//		engine.WithNodes(4),
//		engine.WithInitialValue(100))
//
// Defaults: one node, one granule per entity (finest), the
// conservative protocol, zero initial value, no log, no metrics.
func Open(dbsize int, opts ...Option) (*DB, error) {
	cfg := Config{Nodes: 1, DBSize: dbsize, Granules: dbsize}
	for _, opt := range opts {
		opt(&cfg)
	}
	return open(cfg)
}

// OpenConfig creates a database from a legacy Config struct.
//
// Deprecated: use Open(dbsize, ...Option). OpenConfig remains so code
// written against the struct API keeps compiling: Config.Protocol is
// now a registry *name* ("conservative", "claim-as-needed", ...)
// rather than an int enum — the named constants migrate transparently,
// hand-written integers do not.
func OpenConfig(cfg Config) (*DB, error) { return open(cfg) }

// open builds the database: partitions, then the protocol instance.
func open(cfg Config) (*DB, error) {
	cfg = cfg.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	db := &DB{cfg: cfg}
	if cfg.Metrics != nil {
		db.mCommits = cfg.Metrics.NewCounter("granulock_engine_commits_total",
			"Transactions committed by the executable engine.")
		db.mRetries = cfg.Metrics.NewCounter("granulock_engine_deadlock_retries_total",
			"Attempts aborted by the protocol and retried (all causes; historical name).")
		restarts := cfg.Metrics.NewCounterVec("granulock_engine_restarts_total",
			"Attempts aborted by the protocol and retried, by cause.", "cause")
		db.mRestarts = make(map[string]*obs.Counter, 4)
		for _, cause := range []string{"deadlock", "wounded", "die", "validation"} {
			db.mRestarts[cause] = restarts.With(cause)
		}
	}
	db.nodes = make([]*node, cfg.Nodes)
	for i := range db.nodes {
		// Round-robin partitioning: node i owns entities i, i+Nodes, ...
		count := (cfg.DBSize - i + cfg.Nodes - 1) / cfg.Nodes
		values := make([]int64, count)
		for j := range values {
			values[j] = cfg.InitialValue
		}
		db.nodes[i] = &node{values: values}
	}
	db.walSet = cfg.WAL
	proto, _ := cc.Lookup(cfg.Protocol) // validated above
	inst, err := proto.New(cc.Config{
		Store:               store{db},
		EscalationThreshold: cfg.EscalationThreshold,
		Metrics:             cfg.Metrics,
		RecordUpdates:       cfg.Log != nil || cfg.WAL != nil,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: protocol %s: %w", cfg.Protocol, err)
	}
	db.inst = inst
	return db, nil
}

// OpenDurable opens a file-backed durable database: a write-ahead
// directory at dir (one group-commit log per node, keyed by node index,
// plus the current snapshot), recovered into a fresh instance before
// the database accepts transactions. Reopening the same directory after
// a crash replays the snapshot and each log's tail; the returned stats
// describe that recovery (all zero for a brand-new directory).
//
// Checkpoint bounds future recovery time; Close flushes and releases
// the log files. The usual options apply; WithLog/WithWAL are rejected
// (the directory supplies the log set), and WithWALOptions configures
// the underlying logs.
func OpenDurable(dir string, dbsize int, opts ...Option) (*DB, wal.SetRecoverStats, error) {
	cfg := Config{Nodes: 1, DBSize: dbsize, Granules: dbsize}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Log != nil || cfg.WAL != nil {
		return nil, wal.SetRecoverStats{}, fmt.Errorf("engine: OpenDurable manages its own log; WithLog/WithWAL not allowed")
	}
	if cfg.Nodes > wal.MaxPartitions {
		return nil, wal.SetRecoverStats{}, fmt.Errorf("engine: %d nodes exceeds %d per-partition logs", cfg.Nodes, wal.MaxPartitions)
	}
	d, err := wal.OpenDir(dir, max(cfg.Nodes, 1), cfg.WALOptions...)
	if err != nil {
		return nil, wal.SetRecoverStats{}, err
	}
	cfg.WAL = d.Set()
	db, err := open(cfg)
	if err != nil {
		d.Close()
		return nil, wal.SetRecoverStats{}, err
	}
	db.walDir = d
	stats, err := d.Recover(func(entity, value int64) {
		if entity >= 0 && entity < int64(cfg.DBSize) {
			db.set(int(entity), value)
		}
	})
	if err != nil {
		d.Close()
		return nil, stats, err
	}
	// Continue transaction numbering above every ID surviving in the
	// logs: IDs key recovery's per-transaction evidence, so a fresh
	// instance reusing a surviving ID would merge two unrelated
	// transactions in the next recovery pass.
	db.nextTxn.Store(stats.MaxTxn)
	return db, stats, nil
}

// WALDir returns the database's write-ahead directory, or nil unless
// the database was opened with OpenDurable (crash harnesses use it to
// install failpoints).
func (db *DB) WALDir() *wal.Dir { return db.walDir }

// Close flushes and releases the log files of an OpenDurable database.
// It is a no-op for databases whose log lifecycle the caller owns
// (WithLog/WithWAL) and for purely in-memory ones.
func (db *DB) Close() error {
	if db.walDir != nil {
		return db.walDir.Close()
	}
	return nil
}

// Config returns the database's configuration.
func (db *DB) Config() Config { return db.cfg }

// Instance exposes the database's protocol instance (tests and tools).
func (db *DB) Instance() cc.Instance { return db.inst }

// nodeOf returns the owning node of an entity (round-robin).
func (db *DB) nodeOf(entity int) int { return entity % db.cfg.Nodes }

// localIndex returns an entity's slot within its owning node.
func (db *DB) localIndex(entity int) int { return entity / db.cfg.Nodes }

// GranuleOf returns the lock granule covering an entity.
func (db *DB) GranuleOf(entity int) lockmgr.Granule {
	return lockmgr.Granule(entity * db.cfg.Granules / db.cfg.DBSize)
}

// store adapts the database to cc.Store: latched single-entity access.
type store struct{ db *DB }

func (s store) Get(e int) int64 {
	n := s.db.nodes[s.db.nodeOf(e)]
	idx := s.db.localIndex(e)
	n.mu.Lock()
	v := n.values[idx]
	n.mu.Unlock()
	return v
}

func (s store) Apply(e int, delta int64) (before, after int64) {
	n := s.db.nodes[s.db.nodeOf(e)]
	idx := s.db.localIndex(e)
	n.mu.Lock()
	before = n.values[idx]
	after = before + delta
	n.values[idx] = after
	n.mu.Unlock()
	return before, after
}

func (s store) GranuleOf(e int) lockmgr.Granule { return s.db.GranuleOf(e) }

// lockSet computes the deduplicated granule requests of a transaction:
// exclusive if any op writes within the granule, shared otherwise.
func (db *DB) lockSet(t Txn) ([]lockmgr.Request, error) {
	modes := make(map[lockmgr.Granule]lockmgr.Mode)
	order := make([]lockmgr.Granule, 0, len(t.Ops))
	for _, op := range t.Ops {
		if op.Entity < 0 || op.Entity >= db.cfg.DBSize {
			return nil, fmt.Errorf("engine: entity %d outside [0, %d)", op.Entity, db.cfg.DBSize)
		}
		g := db.GranuleOf(op.Entity)
		mode := lockmgr.ModeShared
		if op.Delta != 0 {
			mode = lockmgr.ModeExclusive
		}
		if have, ok := modes[g]; !ok {
			modes[g] = mode
			order = append(order, g)
		} else if mode > have {
			modes[g] = mode
		}
	}
	reqs := make([]lockmgr.Request, len(order))
	for i, g := range order {
		reqs[i] = lockmgr.Request{Granule: g, Mode: modes[g]}
	}
	return reqs, nil
}

// Execute runs one transaction to commit under the configured protocol,
// returning the sum of all read entity values. Attempts the protocol
// aborts — deadlock victims, wound-wait wounds, wait-die deaths,
// optimistic validation failures — release everything, back off
// briefly (randomized exponential with a hard cap — immediate restart
// livelocks: the victim re-grabs its first granule before the survivor
// is scheduled and the same cycle re-forms forever), and retry until
// the context is cancelled; cancellation interrupts both lock waits
// and backoff sleeps promptly.
func (db *DB) Execute(ctx context.Context, t Txn) (int64, error) {
	if len(t.Ops) == 0 {
		return 0, nil
	}
	reqs, err := db.lockSet(t)
	if err != nil {
		return 0, err
	}
	var priority int64
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		txnID := lockmgr.TxnID(db.nextTxn.Add(1))
		if priority == 0 {
			// The first attempt's identity is the transaction's age for
			// the rest of its life (wound-wait/wait-die anti-starvation).
			priority = int64(txnID)
		}
		tx := &cc.Tx{ID: txnID, Priority: priority, Attempt: attempt}
		actx := db.inst.Begin(ctx, tx)
		err := db.inst.Acquire(actx, tx, reqs)
		var sum int64
		if err == nil {
			if t.Work > 0 {
				db.sink.Add(spin(t.Work))
			}
			for _, op := range t.Ops {
				if op.Delta != 0 {
					db.inst.Write(tx, op.Entity, op.Delta)
				} else {
					sum += db.inst.Read(tx, op.Entity)
				}
			}
			err = db.inst.Commit(ctx, tx, db.persistFn(txnID))
		}
		db.inst.End(tx)
		if err == nil {
			db.committed.Add(1)
			if db.mCommits != nil {
				db.mCommits.Inc()
			}
			return sum, nil
		}
		if cc.Restartable(err) {
			db.retries.Add(1)
			if db.mRetries != nil {
				db.mRetries.Inc()
				if c := db.mRestarts[cc.RestartKind(err)]; c != nil {
					c.Inc()
				}
			}
			attempt++
			if err := sleepBackoff(ctx, attempt, uint64(txnID)); err != nil {
				return 0, err
			}
			continue
		}
		return 0, err
	}
}

// walScratch is the reusable per-commit record staging buffer. The
// persist hook completes durability before returning (AppendGroup+Sync
// on the Writer path, enqueue-and-wait on the group-commit path), so
// the buffers are free for reuse the moment the hook returns — a
// sync.Pool removes the per-commit slice allocation from the hot path.
type walScratch struct {
	records []wal.Record
	groups  []wal.PartGroup
}

var walScratchPool = sync.Pool{New: func() any { return new(walScratch) }}

// persistFn builds the durability hook the protocol invokes at its
// publish point: begin + update images + commit, made durable before
// any access right is released, so log order matches serialization
// order on every granule. On the group-commit path the hook enqueues
// the group and waits for the batched flush; on the Writer path it
// appends and syncs directly. Read-only transactions skip logging
// entirely — they change nothing, so recovery does not need them. Nil
// without a log.
func (db *DB) persistFn(txnID lockmgr.TxnID) func([]cc.Update) error {
	if db.walSet != nil {
		return db.persistSetFn(txnID)
	}
	if db.cfg.Log == nil {
		return nil
	}
	id := int64(txnID)
	return func(us []cc.Update) error {
		if len(us) == 0 {
			return nil
		}
		sc := walScratchPool.Get().(*walScratch)
		defer walScratchPool.Put(sc)
		records := append(sc.records[:0], wal.Record{Kind: wal.KindBegin, Txn: id})
		for _, u := range us {
			records = append(records, wal.Record{
				Kind:   wal.KindUpdate,
				Txn:    id,
				Entity: int64(u.Entity),
				Before: u.Before,
				After:  u.After,
			})
		}
		records = append(records, wal.Record{Kind: wal.KindCommit, Txn: id})
		sc.records = records
		if err := db.cfg.Log.AppendGroup(records); err != nil {
			return err
		}
		return db.cfg.Log.Sync()
	}
}

// persistSetFn is persistFn for the group-commit Set: the transaction's
// records are split by owning partition (node index keys log index when
// the set is per-partition), appended to each touched log in ascending
// order, with the commit record in every touched log carrying the full
// partition mask — the cross-partition ordering rule wal.RecoverSet
// verifies.
func (db *DB) persistSetFn(txnID lockmgr.TxnID) func([]cc.Update) error {
	id := int64(txnID)
	parts := db.walSet.Len()
	return func(us []cc.Update) error {
		if len(us) == 0 {
			return nil
		}
		sc := walScratchPool.Get().(*walScratch)
		defer walScratchPool.Put(sc)
		var mask int64
		if parts == 1 {
			mask = 1
		} else {
			for _, u := range us {
				mask |= 1 << uint(db.nodeOf(u.Entity))
			}
		}
		npart := bits.OnesCount64(uint64(mask))
		// Carve every partition's group out of one arena; the total is
		// known up front, so the appends below never reallocate and the
		// carved subslices stay valid.
		total := len(us) + 2*npart
		arena := sc.records[:0]
		if cap(arena) < total {
			arena = make([]wal.Record, 0, total)
		}
		groups := sc.groups[:0]
		for p := 0; p < parts; p++ {
			if mask&(1<<uint(p)) == 0 {
				continue
			}
			start := len(arena)
			arena = append(arena, wal.Record{Kind: wal.KindBegin, Txn: id})
			for _, u := range us {
				if parts > 1 && db.nodeOf(u.Entity) != p {
					continue
				}
				arena = append(arena, wal.Record{
					Kind:   wal.KindUpdate,
					Txn:    id,
					Entity: int64(u.Entity),
					Before: u.Before,
					After:  u.After,
				})
			}
			arena = append(arena, wal.Record{Kind: wal.KindCommit, Txn: id, Entity: mask})
			groups = append(groups, wal.PartGroup{Part: p, Records: arena[start:len(arena):len(arena)]})
		}
		sc.records = arena
		sc.groups = groups
		return db.walSet.Commit(groups)
	}
}

// Checkpoint writes a consistent snapshot of the whole database behind
// the logs' current sequence numbers and truncates the replayed
// prefixes, bounding future recovery time by the write rate since the
// checkpoint rather than by history. Only OpenDurable databases support
// it.
//
// Consistency comes from the concurrency-control protocol itself: the
// checkpoint runs a full-database read transaction, so at its publish
// point every granule is covered shared (or the full read set
// validated, under the optimistic protocol) — no writer holds anything,
// every committed write is already durable (persist happens before
// release), and the sequence vector captured inside the persist hook
// names exactly the log prefix the snapshot includes. Writers block for
// the duration; call it off the hot path.
func (db *DB) Checkpoint(ctx context.Context) error {
	if db.walDir == nil {
		return fmt.Errorf("engine: checkpoint needs an OpenDurable database")
	}
	t := db.FullReadTxn()
	reqs, err := db.lockSet(t)
	if err != nil {
		return err
	}
	var snap *wal.Snapshot
	var priority int64
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		txnID := lockmgr.TxnID(db.nextTxn.Add(1))
		if priority == 0 {
			priority = int64(txnID)
		}
		tx := &cc.Tx{ID: txnID, Priority: priority, Attempt: attempt}
		actx := db.inst.Begin(ctx, tx)
		err := db.inst.Acquire(actx, tx, reqs)
		if err == nil {
			entries := make([]wal.SnapshotEntry, 0, db.cfg.DBSize)
			for _, op := range t.Ops {
				entries = append(entries, wal.SnapshotEntry{
					Entity: int64(op.Entity),
					Value:  db.inst.Read(tx, op.Entity),
				})
			}
			err = db.inst.Commit(ctx, tx, func([]cc.Update) error {
				// Publish point: reads validated/covered, no concurrent
				// writer — the sequence vector and the entries describe
				// the same state.
				snap = &wal.Snapshot{Seqs: db.walSet.Seqs(), Entries: entries}
				return nil
			})
		}
		db.inst.End(tx)
		if err == nil {
			break
		}
		if cc.Restartable(err) {
			attempt++
			if err := sleepBackoff(ctx, attempt, uint64(txnID)); err != nil {
				return err
			}
			continue
		}
		return err
	}
	return db.walDir.Install(snap)
}

// backoffCapAttempt bounds the exponential backoff window: attempts
// past it reuse the ~12.8ms ceiling instead of doubling forever.
const backoffCapAttempt = 7

// sleepBackoff waits a randomized, exponentially growing interval
// before a restart: 0–100µs after the first abort, doubling to a
// hard ~12.8ms ceiling (backoffCapAttempt). The jitter derives from
// the attempt's transaction id, so competing victims desynchronize.
// Context cancellation interrupts the sleep immediately.
func sleepBackoff(ctx context.Context, attempt int, seed uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if attempt > backoffCapAttempt {
		attempt = backoffCapAttempt
	}
	window := 100 * time.Microsecond << attempt
	// Cheap SplitMix-style jitter; no global rand contention.
	seed ^= seed << 13
	seed ^= seed >> 7
	seed ^= seed << 17
	delay := time.Duration(seed % uint64(window))
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// set overwrites one entity's value directly; recovery's redo hook.
func (db *DB) set(entity int, value int64) {
	n := db.nodes[db.nodeOf(entity)]
	n.mu.Lock()
	n.values[db.localIndex(entity)] = value
	n.mu.Unlock()
}

// Recover rebuilds a database from a write-ahead log: a fresh instance
// per cfg (which supplies the same Nodes/DBSize/Granules/InitialValue
// the crashed instance had; cfg.Log is the crashed log's *reader* side
// and is ignored here) with every committed transaction redone and
// everything else discarded. It returns the rebuilt database and the
// recovery statistics.
func Recover(cfg Config, log *wal.Reader) (*DB, wal.RecoverStats, error) {
	cfg.Log = nil // the rebuilt instance starts without a log attached
	db, err := open(cfg)
	if err != nil {
		return nil, wal.RecoverStats{}, err
	}
	stats, err := wal.Recover(log, func(entity, value int64) {
		if entity >= 0 && entity < int64(cfg.DBSize) {
			db.set(int(entity), value)
		}
	})
	if err != nil {
		return nil, stats, err
	}
	// New transactions must not reuse IDs still present in the log (see
	// OpenDurable).
	db.nextTxn.Store(stats.MaxTxn)
	return db, stats, nil
}

// Read returns one entity's value without transactional isolation
// (a dirty read used by tests and tooling).
func (db *DB) Read(entity int) (int64, error) {
	if entity < 0 || entity >= db.cfg.DBSize {
		return 0, fmt.Errorf("engine: entity %d outside [0, %d)", entity, db.cfg.DBSize)
	}
	n := db.nodes[db.nodeOf(entity)]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.values[db.localIndex(entity)], nil
}

// TotalBalance sums every entity — the conservation invariant checked by
// the consistency tests. It is not transactionally isolated; call it
// while the system is quiescent, or use a full-database read
// transaction for an isolated sum.
func (db *DB) TotalBalance() int64 {
	var total int64
	for _, n := range db.nodes {
		n.mu.Lock()
		for _, v := range n.values {
			total += v
		}
		n.mu.Unlock()
	}
	return total
}

// FullReadTxn returns a transaction reading every entity: with all
// granules covered shared (or the whole read set validated, under the
// optimistic protocol) it observes a serializable snapshot.
func (db *DB) FullReadTxn() Txn {
	ops := make([]Op, db.cfg.DBSize)
	for e := range ops {
		ops[e] = Op{Entity: e}
	}
	return Txn{Ops: ops}
}

// Transfer returns the classic funds-transfer transaction moving amount
// from one entity to another — the paper's §1 motivating example.
func Transfer(from, to int, amount int64) Txn {
	return Txn{Ops: []Op{
		{Entity: from, Delta: -amount},
		{Entity: to, Delta: amount},
	}}
}

// Stats returns an activity snapshot.
func (db *DB) Stats() Stats {
	retries := db.retries.Load()
	s := Stats{
		Committed:       db.committed.Load(),
		Restarts:        retries,
		DeadlockRetries: retries,
	}
	cs := db.inst.Stats()
	s.Lock = cs.Lock
	s.Escalations = cs.Escalations
	s.Wounds = cs.Wounds
	s.Dies = cs.Dies
	s.ValidationFails = cs.ValidationFails
	return s
}
