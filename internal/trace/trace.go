// Package trace turns the simulation model's Observer events into a
// structured JSON-lines stream, one event per line — loadable into any
// analysis tool. It also provides a parser for the stream, so traces
// can be written, stored and re-analyzed programmatically.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventKind labels trace records.
type EventKind string

// The event kinds, mirroring model.Observer's callbacks.
const (
	EventArrive   EventKind = "arrive"
	EventRequest  EventKind = "request"
	EventGrant    EventKind = "grant"
	EventDeny     EventKind = "deny"
	EventComplete EventKind = "complete"
)

// Event is one trace record. Fields are populated per kind: Entities
// and Locks for arrivals, Blocker for denials, Response for
// completions.
//
// Blocker is a pointer, not a plain int with omitempty: transaction
// ids are arbitrary (an external producer may start at 0), and
// omitempty on an int silently drops a zero id, so a denial blocked by
// transaction 0 would round-trip as "no blocker". The pointer encodes
// presence explicitly; use BlockerID for convenient access.
type Event struct {
	Kind     EventKind `json:"kind"`
	At       float64   `json:"at"`
	Txn      int       `json:"txn"`
	Entities int       `json:"entities,omitempty"`
	Locks    int       `json:"locks,omitempty"`
	Blocker  *int      `json:"blocker,omitempty"`
	Response float64   `json:"response,omitempty"`
}

// BlockerID returns the blocking transaction's id and whether the
// event carries one (only denials do).
func (e Event) BlockerID() (int, bool) {
	if e.Blocker == nil {
		return 0, false
	}
	return *e.Blocker, true
}

// Writer is a model.Observer that streams events as JSON lines. Errors
// are sticky: the first write error is kept and reported by Close, so
// the simulation hot path never has to check them. Writer serializes
// internally and may be shared (though the model calls it from one
// goroutine).
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
	n   int
}

// NewWriter returns a Writer streaming to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// emit writes one event.
func (t *Writer) emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(e); err != nil {
		t.err = err
		return
	}
	t.n++
}

// TxnArrived implements model.Observer.
func (t *Writer) TxnArrived(id, entities, locks int, at float64) {
	t.emit(Event{Kind: EventArrive, At: at, Txn: id, Entities: entities, Locks: locks})
}

// LockRequested implements model.Observer.
func (t *Writer) LockRequested(id int, at float64) {
	t.emit(Event{Kind: EventRequest, At: at, Txn: id})
}

// LockGranted implements model.Observer.
func (t *Writer) LockGranted(id int, at float64) {
	t.emit(Event{Kind: EventGrant, At: at, Txn: id})
}

// LockDenied implements model.Observer.
func (t *Writer) LockDenied(id, blockerID int, at float64) {
	t.emit(Event{Kind: EventDeny, At: at, Txn: id, Blocker: &blockerID})
}

// TxnCompleted implements model.Observer.
func (t *Writer) TxnCompleted(id int, response, at float64) {
	t.emit(Event{Kind: EventComplete, At: at, Txn: id, Response: response})
}

// Events returns the number of events emitted so far.
func (t *Writer) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close flushes the stream and reports the first error encountered.
func (t *Writer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Read parses a JSON-lines trace back into events.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		switch e.Kind {
		case EventArrive, EventRequest, EventGrant, EventDeny, EventComplete:
		default:
			return out, fmt.Errorf("trace: record %d has unknown kind %q", len(out), e.Kind)
		}
		out = append(out, e)
	}
}

// Summary condenses a trace: per-kind counts, the denial rate, and the
// mean response time of completions.
type Summary struct {
	Counts       map[EventKind]int
	DenialRate   float64
	MeanResponse float64
}

// Summarize computes a Summary.
func Summarize(events []Event) Summary {
	s := Summary{Counts: make(map[EventKind]int, 5)}
	respSum := 0.0
	for _, e := range events {
		s.Counts[e.Kind]++
		if e.Kind == EventComplete {
			respSum += e.Response
		}
	}
	requests := s.Counts[EventGrant] + s.Counts[EventDeny]
	if requests > 0 {
		s.DenialRate = float64(s.Counts[EventDeny]) / float64(requests)
	}
	if n := s.Counts[EventComplete]; n > 0 {
		s.MeanResponse = respSum / float64(n)
	}
	return s
}
