package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"granulock/internal/model"
	"granulock/internal/partition"
	"granulock/internal/workload"
)

func modelParams() model.Params {
	return model.Params{
		DBSize: 5000, Ltot: 100, NTrans: 10, MaxTransize: 500,
		CPUTime: 0.05, IOTime: 0.2, LockCPUTime: 0.01, LockIOTime: 0.2,
		NPros: 10, TMax: 300,
		Partitioning: partition.Horizontal, Placement: workload.PlacementBest, Seed: 1,
	}
}

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.TxnArrived(1, 100, 2, 0)
	w.LockRequested(1, 0)
	w.LockGranted(1, 0.1)
	w.LockDenied(2, 1, 0.2)
	w.TxnCompleted(1, 5.5, 5.5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 5 {
		t.Fatalf("events %d", w.Events())
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("parsed %d events", len(events))
	}
	if events[0].Kind != EventArrive || events[0].Entities != 100 || events[0].Locks != 2 {
		t.Fatalf("arrive event %+v", events[0])
	}
	if b, ok := events[3].BlockerID(); events[3].Kind != EventDeny || !ok || b != 1 {
		t.Fatalf("deny event %+v", events[3])
	}
	if events[4].Response != 5.5 {
		t.Fatalf("complete event %+v", events[4])
	}
}

// TestZeroIDRoundTrip is the regression for the omitempty zero-value
// bug: transaction 0 as the denied party and as the blocker must both
// survive a write/read cycle (omitempty on a plain int would silently
// drop the zero blocker, turning "blocked by txn 0" into "no
// blocker").
func TestZeroIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.LockDenied(0, 0, 1.5)
	w.LockRequested(0, 1.0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"blocker":0`) {
		t.Fatalf("blocker 0 not serialized: %s", buf.String())
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := events[0].BlockerID()
	if !ok || b != 0 || events[0].Txn != 0 {
		t.Fatalf("deny by txn 0 did not round-trip: %+v", events[0])
	}
	if _, ok := events[1].BlockerID(); ok {
		t.Fatalf("request event grew a blocker: %+v", events[1])
	}
}

// TestAllKindsRoundTrip writes one event of every kind and checks each
// field survives the JSON cycle exactly.
func TestAllKindsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.TxnArrived(7, 120, 3, 0.25)
	w.LockRequested(7, 0.5)
	w.LockGranted(7, 0.75)
	w.LockDenied(8, 7, 1.0)
	w.TxnCompleted(7, 4.25, 4.5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	blocker := 7
	want := []Event{
		{Kind: EventArrive, At: 0.25, Txn: 7, Entities: 120, Locks: 3},
		{Kind: EventRequest, At: 0.5, Txn: 7},
		{Kind: EventGrant, At: 0.75, Txn: 7},
		{Kind: EventDeny, At: 1.0, Txn: 8, Blocker: &blocker},
		{Kind: EventComplete, At: 4.5, Txn: 7, Response: 4.25},
	}
	if len(events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(events), len(want))
	}
	for i, e := range events {
		wv := want[i]
		if e.Kind != wv.Kind || e.At != wv.At || e.Txn != wv.Txn ||
			e.Entities != wv.Entities || e.Locks != wv.Locks || e.Response != wv.Response {
			t.Fatalf("event %d: got %+v want %+v", i, e, wv)
		}
		gb, gok := e.BlockerID()
		wb, wok := wv.BlockerID()
		if gok != wok || gb != wb {
			t.Fatalf("event %d blocker: got (%d,%v) want (%d,%v)", i, gb, gok, wb, wok)
		}
	}
}

func TestReadRejectsUnknownKind(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"kind":"martian","at":1,"txn":1}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	events, err := Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Fatalf("empty trace: %v %v", events, err)
	}
}

type failingWriter struct{ fails bool }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.fails {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	// A small bufio buffer forces the flush path; errors must surface
	// at Close without panicking the hot path.
	sink := &failingWriter{fails: true}
	w := NewWriter(sink)
	for i := 0; i < 10000; i++ {
		w.LockGranted(i, float64(i))
	}
	if err := w.Close(); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestTraceFullSimulation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	m, err := model.RunObserved(modelParams(), w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(events)
	if s.Counts[EventComplete] != m.TotCom {
		t.Fatalf("trace completions %d != metrics %d", s.Counts[EventComplete], m.TotCom)
	}
	if s.Counts[EventGrant]+s.Counts[EventDeny] != m.LockRequests {
		t.Fatal("trace requests disagree with metrics")
	}
	if math.Abs(s.DenialRate-m.DenialRate) > 1e-12 {
		t.Fatalf("trace denial rate %v != metrics %v", s.DenialRate, m.DenialRate)
	}
	if math.Abs(s.MeanResponse-m.MeanResponse) > 1e-9 {
		t.Fatalf("trace mean response %v != metrics %v", s.MeanResponse, m.MeanResponse)
	}
	// Events must be in non-decreasing time order.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.DenialRate != 0 || s.MeanResponse != 0 || len(s.Counts) != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}
