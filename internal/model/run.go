package model

import (
	"context"

	"granulock/internal/lockmgr"
	"granulock/internal/partition"
	"granulock/internal/rng"
	"granulock/internal/sched"
	"granulock/internal/server"
	"granulock/internal/sim"
	"granulock/internal/workload"
)

// txnState tracks where a transaction is in its lifecycle.
type txnState int8

const (
	statePending txnState = iota
	stateRequesting
	stateBlocked
	stateActive
	stateDone
)

// txn is one live transaction of the closed population.
type txn struct {
	id      int
	spec    workload.Spec
	arrival sim.Time // pending-queue entry time; response clock start
	state   txnState

	remainingSubs int
	blocked       []*txn // transactions this one blocks (release set)
}

// simulation is the run-time state of one simulation run. It lives on a
// single goroutine; all concurrency is simulated.
type simulation struct {
	p   Params
	eng *sim.Engine

	cpus  []*server.Server
	disks []*server.Server

	gen      *workload.Generator
	conflict *lockmgr.ConflictModel
	srcProcs *rng.Source
	policy   sched.Policy

	pending  txnRing
	active   []*txn
	lockBusy bool
	nextID   int

	// blockedFree recycles the backing arrays of release sets: a
	// completed transaction's blocked slice is drained into the pending
	// ring and then reused by the next transaction that blocks someone,
	// so steady-state blocking allocates nothing.
	blockedFree [][]*txn
	// releaseOne is scratch for the single-transaction requeue on the
	// blocker-completed-during-lock-processing path.
	releaseOne [1]*txn

	// accumulators
	completed      int
	respSum        float64
	lockRequests   int
	lockDenials    int
	entitiesDone   int
	activeArea     float64  // ∫ |active| dt, for MeanActive
	activeStamp    sim.Time // last time activeArea was brought current
	holdersScratch []lockmgr.Holder

	obs Observer
	// base holds the accumulator snapshot taken at the warmup boundary;
	// reported metrics cover (Warmup, TMax] only.
	base baseline
}

// baseline is the accumulator state at the warmup boundary.
type baseline struct {
	totCPUs, totIOs   float64
	lockCPUs, lockIOs float64
	completed         int
	respSum           float64
	lockRequests      int
	lockDenials       int
	entitiesDone      int
	activeArea        float64
}

// Run executes the model once and returns its output parameters. It is
// deterministic: equal Params produce identical Metrics.
func Run(p Params) (Metrics, error) {
	return RunObserved(p, nil)
}

// RunObserved is Run with a lifecycle Observer attached (nil is
// allowed). The observer sees every event including those inside the
// warmup window; the returned Metrics cover (Warmup, TMax] only.
func RunObserved(p Params, obs Observer) (Metrics, error) {
	s, err := startRun(p, obs)
	if err != nil {
		return Metrics{}, err
	}
	s.eng.RunUntil(p.TMax)
	return s.metrics(), nil
}

// cancelCheckEvery is how many events RunContext executes between
// context checks — large enough that the check is free relative to the
// event work, small enough that cancellation lands within microseconds.
const cancelCheckEvery = 4096

// RunContext is RunObserved with cooperative cancellation: the event
// loop runs in bounded chunks and stops with ctx.Err() if the context
// is cancelled between chunks. A completed run returns the same
// Metrics RunObserved would — the chunking changes when the loop
// checks for cancellation, never the event order.
func RunContext(ctx context.Context, p Params, obs Observer) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s, err := startRun(p, obs)
	if err != nil {
		return Metrics{}, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return Metrics{}, err
		}
		if s.eng.RunUntilSteps(p.TMax, cancelCheckEvery) < cancelCheckEvery {
			break
		}
	}
	return s.metrics(), nil
}

// startRun validates, wires and seeds a simulation, ready for its
// event loop.
func startRun(p Params, obs Observer) (*simulation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s, err := newSimulation(p)
	if err != nil {
		return nil, err
	}
	if obs != nil {
		s.obs = obs
	}
	s.scheduleInitialArrivals()
	if p.Warmup > 0 {
		s.eng.At(p.Warmup, s.captureBaseline)
	}
	return s, nil
}

// captureBaseline snapshots the accumulators at the warmup boundary.
func (s *simulation) captureBaseline() {
	s.touchActiveArea()
	for i := 0; i < s.p.NPros; i++ {
		s.base.totCPUs += s.cpus[i].TotalBusy()
		s.base.totIOs += s.disks[i].TotalBusy()
		s.base.lockCPUs += s.cpus[i].Busy(server.LockClass)
		s.base.lockIOs += s.disks[i].Busy(server.LockClass)
	}
	s.base.completed = s.completed
	s.base.respSum = s.respSum
	s.base.lockRequests = s.lockRequests
	s.base.lockDenials = s.lockDenials
	s.base.entitiesDone = s.entitiesDone
	s.base.activeArea = s.activeArea
}

// newSimulation wires up servers, generators and the conflict model.
func newSimulation(p Params) (*simulation, error) {
	root := rng.New(p.Seed)
	genSrc := root.Stream(1)
	conflictSrc := root.Stream(2)
	procSrc := root.Stream(3)

	gen, err := workload.NewGenerator(p.DBSize, p.Ltot, p.Placement, p.classes(), genSrc)
	if err != nil {
		return nil, err
	}
	// Hot spots shrink the effective conflict space: with skew σ the
	// traffic behaves as if it hit only ltot·(1−σ) granules.
	ltotEff := int(float64(p.Ltot)*(1-p.AccessSkew) + 0.5)
	if ltotEff < 1 {
		ltotEff = 1
	}
	conflict, err := lockmgr.NewConflictModel(ltotEff, conflictSrc)
	if err != nil {
		return nil, err
	}
	policy := p.Scheduler
	if policy == nil {
		policy = sched.Unlimited{}
	}

	s := &simulation{
		p:        p,
		eng:      &sim.Engine{},
		gen:      gen,
		conflict: conflict,
		srcProcs: procSrc,
		policy:   policy,
		obs:      NopObserver{},
	}
	s.cpus = make([]*server.Server, p.NPros)
	s.disks = make([]*server.Server, p.NPros)
	disc := server.WithDiscipline(p.Discipline)
	for i := 0; i < p.NPros; i++ {
		s.cpus[i] = server.New(s.eng, cpuName(i), disc)
		s.disks[i] = server.New(s.eng, diskName(i), disc)
	}
	return s, nil
}

func cpuName(i int) string  { return "cpu" + itoa(i) }
func diskName(i int) string { return "disk" + itoa(i) }

// itoa avoids pulling strconv into the hot path for two diagnostic
// strings; servers are named once at construction.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// scheduleInitialArrivals injects the closed population, one transaction
// per time unit ("initially, transactions arrive one time unit apart").
func (s *simulation) scheduleInitialArrivals() {
	for i := 0; i < s.p.NTrans; i++ {
		at := sim.Time(i)
		s.eng.At(at, func() { s.arrive(s.newTxn()) })
	}
}

// newTxn draws a fresh transaction from the generator.
func (s *simulation) newTxn() *txn {
	s.nextID++
	return &txn{id: s.nextID, spec: s.gen.Next()}
}

// arrive places t at the pending-queue tail and pokes the dispatcher.
func (s *simulation) arrive(t *txn) {
	t.arrival = s.eng.Now()
	t.state = statePending
	s.pending.PushTail(t)
	s.obs.TxnArrived(t.id, t.spec.Entities, t.spec.Locks, t.arrival)
	s.tryDispatch()
}

// tryDispatch starts the lock request of the pending-queue head if the
// lock manager is free and the admission policy allows it. The lock
// manager processes one request at a time; its work is executed in
// parallel by all processors (or by processor 0 under the
// dedicated-lock-processor ablation).
func (s *simulation) tryDispatch() {
	if s.lockBusy || s.pending.Len() == 0 {
		return
	}
	if !s.policy.CanAdmit(len(s.active)) {
		return
	}
	t := s.pending.PopHead()

	t.state = stateRequesting
	s.lockBusy = true
	s.obs.LockRequested(t.id, s.eng.Now())

	// The conflict decision is drawn against the transactions active at
	// request initiation; the lock-processing cost is paid either way.
	blocker := s.decideConflict(t)
	s.chargeLockWork(t, func() { s.lockRequestDone(t, blocker) })
}

// decideConflict draws the Ries–Stonebraker conflict decision for t.
func (s *simulation) decideConflict(t *txn) *txn {
	s.holdersScratch = s.holdersScratch[:0]
	for _, a := range s.active {
		s.holdersScratch = append(s.holdersScratch, lockmgr.Holder{ID: a.id, Locks: a.spec.Locks})
	}
	id, blocked := s.conflict.Decide(s.holdersScratch)
	if !blocked {
		return nil
	}
	for _, a := range s.active {
		if a.id == id {
			return a
		}
	}
	return nil // blocker vanished between snapshot and decision (cannot happen)
}

// chargeLockWork submits t's lock-processing demand — LU·liotime of I/O
// and LU·lcputime of CPU, the release cost included — to the lock
// servers at preemptive priority, invoking done when all of it has been
// served. Shared mode divides the work evenly across all processors;
// dedicated mode puts it all on processor 0.
func (s *simulation) chargeLockWork(t *txn, done func()) {
	procs := s.p.NPros
	share := 1.0 / float64(procs)
	if s.p.DedicatedLockProcessor {
		procs = 1
		share = 1.0
	}
	ioDemand := float64(t.spec.Locks) * s.p.LockIOTime * share
	cpuDemand := float64(t.spec.Locks) * s.p.LockCPUTime * share

	remaining := procs
	for i := 0; i < procs; i++ {
		disk, cpu := s.disks[i], s.cpus[i]
		disk.Submit(&server.Job{
			Size:  ioDemand,
			Class: server.LockClass,
			Done: func() {
				cpu.Submit(&server.Job{
					Size:  cpuDemand,
					Class: server.LockClass,
					Done: func() {
						remaining--
						if remaining == 0 {
							done()
						}
					},
				})
			},
		})
	}
}

// lockRequestDone finishes t's lock request: grant and activate, or park
// in the blocked set of its blocker. The blocker may have completed
// while the request was being processed; then t retries immediately.
func (s *simulation) lockRequestDone(t *txn, blocker *txn) {
	s.lockBusy = false
	s.lockRequests++
	granted := blocker == nil
	s.policy.Observe(granted)
	if granted {
		s.obs.LockGranted(t.id, s.eng.Now())
	} else {
		s.obs.LockDenied(t.id, blocker.id, s.eng.Now())
	}
	switch {
	case granted:
		s.activate(t)
	case blocker.state == stateDone:
		// Blocker finished during lock processing: the denial stands
		// (and was paid for), but the release is already due.
		s.lockDenials++
		s.releaseOne[0] = t
		s.requeueReleased(s.releaseOne[:])
		s.releaseOne[0] = nil
	default:
		t.state = stateBlocked
		if blocker.blocked == nil {
			if n := len(s.blockedFree) - 1; n >= 0 {
				blocker.blocked = s.blockedFree[n]
				s.blockedFree[n] = nil
				s.blockedFree = s.blockedFree[:n]
			}
		}
		blocker.blocked = append(blocker.blocked, t)
		s.lockDenials++
	}
	s.tryDispatch()
}

// activate splits t into sub-transactions and dispatches them to their
// processors' disk queues.
func (s *simulation) activate(t *txn) {
	t.state = stateActive
	s.touchActiveArea()
	s.active = append(s.active, t)

	procs := partition.Assign(s.p.Partitioning, s.p.NPros, s.srcProcs)
	shares := partition.SpreadEntities(t.spec.Entities, len(procs))
	subs := 0
	for _, n := range shares {
		if n > 0 {
			subs++
		}
	}
	t.remainingSubs = subs
	for i, proc := range procs {
		n := shares[i]
		if n == 0 {
			continue
		}
		disk, cpu := s.disks[proc], s.cpus[proc]
		ioDemand := float64(n) * s.p.IOTime
		cpuDemand := float64(n) * s.p.CPUTime
		disk.Submit(&server.Job{
			Size:  ioDemand,
			Class: server.WorkClass,
			Done: func() {
				cpu.Submit(&server.Job{
					Size:  cpuDemand,
					Class: server.WorkClass,
					Done:  func() { s.subDone(t) },
				})
			},
		})
	}
}

// subDone joins one sub-transaction at the fork-join barrier.
func (s *simulation) subDone(t *txn) {
	t.remainingSubs--
	if t.remainingSubs == 0 {
		s.complete(t)
	}
}

// complete finishes t: record response time, release its locks and its
// blocked set, and inject the replacement transaction that keeps the
// population closed.
func (s *simulation) complete(t *txn) {
	t.state = stateDone
	s.touchActiveArea()
	for i, a := range s.active {
		if a == t {
			s.active = append(s.active[:i], s.active[i+1:]...)
			break
		}
	}
	s.completed++
	response := s.eng.Now() - t.arrival
	s.respSum += response
	s.entitiesDone += t.spec.Entities
	s.obs.TxnCompleted(t.id, response, s.eng.Now())
	if co, ok := s.obs.(ClassObserver); ok {
		co.TxnClassCompleted(t.id, t.spec.Class, response, s.eng.Now())
	}

	if t.blocked != nil {
		s.requeueReleased(t.blocked)
		// Recycle the release set's backing array for the next blocker.
		for i := range t.blocked {
			t.blocked[i] = nil
		}
		s.blockedFree = append(s.blockedFree, t.blocked[:0])
		t.blocked = nil
	}
	s.arrive(s.newTxn()) // replacement keeps ntrans constant
	s.tryDispatch()
}

// requeueReleased returns released transactions to the pending queue in
// their blocking order — at the head by default (they have waited
// longest) or at the tail under the ReleasedToTail ablation.
func (s *simulation) requeueReleased(ts []*txn) {
	for _, t := range ts {
		t.state = statePending
	}
	if s.p.ReleasedToTail {
		for _, t := range ts {
			s.pending.PushTail(t)
		}
	} else {
		// Head insertion in reverse keeps ts's internal order: ts[0]
		// dispatches first, ahead of everything previously pending.
		for i := len(ts) - 1; i >= 0; i-- {
			s.pending.PushHead(ts[i])
		}
	}
	s.tryDispatch()
}

// touchActiveArea brings the ∫|active|dt accumulator current before the
// active set changes.
func (s *simulation) touchActiveArea() {
	now := s.eng.Now()
	s.activeArea += float64(len(s.active)) * (now - s.activeStamp)
	s.activeStamp = now
}

// metrics assembles the output parameters over the measurement window
// (Warmup, TMax].
func (s *simulation) metrics() Metrics {
	s.touchActiveArea()
	horizon := s.p.TMax - s.p.Warmup
	var m Metrics
	for i := 0; i < s.p.NPros; i++ {
		m.TotCPUs += s.cpus[i].TotalBusy()
		m.TotIOs += s.disks[i].TotalBusy()
		m.LockCPUs += s.cpus[i].Busy(server.LockClass)
		m.LockIOs += s.disks[i].Busy(server.LockClass)
	}
	m.TotCPUs -= s.base.totCPUs
	m.TotIOs -= s.base.totIOs
	m.LockCPUs -= s.base.lockCPUs
	m.LockIOs -= s.base.lockIOs
	m.UsefulCPUs = (m.TotCPUs - m.LockCPUs) / float64(s.p.NPros)
	m.UsefulIOs = (m.TotIOs - m.LockIOs) / float64(s.p.NPros)
	m.TotCom = s.completed - s.base.completed
	m.Throughput = float64(m.TotCom) / horizon
	if m.TotCom > 0 {
		m.MeanResponse = (s.respSum - s.base.respSum) / float64(m.TotCom)
	}
	m.LockRequests = s.lockRequests - s.base.lockRequests
	m.LockDenials = s.lockDenials - s.base.lockDenials
	if m.LockRequests > 0 {
		m.DenialRate = float64(m.LockDenials) / float64(m.LockRequests)
	}
	m.MeanActive = (s.activeArea - s.base.activeArea) / horizon
	m.CompletedEntities = s.entitiesDone - s.base.entitiesDone
	m.Events = s.eng.Steps()
	return m
}
