package model

// Observer receives the simulation's lifecycle events as they happen:
// a tracing and measurement hook. All callbacks run on the simulation
// goroutine; implementations must not retain the simulation or block.
// The zero-effort implementation is NopObserver; ResponseCollector
// gathers per-transaction response times for within-run statistics
// (batch means).
type Observer interface {
	// TxnArrived fires when a transaction enters the pending queue
	// (both initial arrivals and closed-population replacements).
	TxnArrived(id, entities, locks int, at float64)
	// LockRequested fires when a transaction's lock request begins
	// service at the lock manager.
	LockRequested(id int, at float64)
	// LockGranted fires when a request completes with all locks set.
	LockGranted(id int, at float64)
	// LockDenied fires when a request completes blocked by blockerID.
	LockDenied(id, blockerID int, at float64)
	// TxnCompleted fires when a transaction finishes and releases its
	// locks; response is its pending-to-completion time.
	TxnCompleted(id int, response, at float64)
}

// ClassObserver is an optional extension of Observer: observers that
// also implement it receive the workload class of each completed
// transaction, enabling per-class throughput and response analysis for
// mixed workloads (§3.6).
type ClassObserver interface {
	TxnClassCompleted(id, class int, response, at float64)
}

// NopObserver ignores every event.
type NopObserver struct{}

// TxnArrived implements Observer.
func (NopObserver) TxnArrived(int, int, int, float64) {}

// LockRequested implements Observer.
func (NopObserver) LockRequested(int, float64) {}

// LockGranted implements Observer.
func (NopObserver) LockGranted(int, float64) {}

// LockDenied implements Observer.
func (NopObserver) LockDenied(int, int, float64) {}

// TxnCompleted implements Observer.
func (NopObserver) TxnCompleted(int, float64, float64) {}

// ResponseCollector records the response time of every completed
// transaction (optionally only those completing after a warmup time),
// for batch-means confidence intervals over a single run.
type ResponseCollector struct {
	NopObserver
	// After drops completions at or before this simulated time.
	After float64
	// Responses holds the collected samples in completion order.
	Responses []float64
}

// TxnCompleted implements Observer.
func (c *ResponseCollector) TxnCompleted(_ int, response, at float64) {
	if at > c.After {
		c.Responses = append(c.Responses, response)
	}
}

// ClassCollector accumulates per-class completion counts and response
// times for mixed workloads. Class indexes follow Params.Classes.
type ClassCollector struct {
	NopObserver
	Completions []int
	RespSums    []float64
}

// TxnClassCompleted implements ClassObserver.
func (c *ClassCollector) TxnClassCompleted(_, class int, response, _ float64) {
	for len(c.Completions) <= class {
		c.Completions = append(c.Completions, 0)
		c.RespSums = append(c.RespSums, 0)
	}
	c.Completions[class]++
	c.RespSums[class] += response
}

// MeanResponse returns the mean response time of one class (0 if it
// never completed).
func (c *ClassCollector) MeanResponse(class int) float64 {
	if class < 0 || class >= len(c.Completions) || c.Completions[class] == 0 {
		return 0
	}
	return c.RespSums[class] / float64(c.Completions[class])
}

// EventCounter tallies event counts — a cheap smoke-test observer.
type EventCounter struct {
	Arrivals, Requests, Grants, Denials, Completions int
}

// TxnArrived implements Observer.
func (c *EventCounter) TxnArrived(int, int, int, float64) { c.Arrivals++ }

// LockRequested implements Observer.
func (c *EventCounter) LockRequested(int, float64) { c.Requests++ }

// LockGranted implements Observer.
func (c *EventCounter) LockGranted(int, float64) { c.Grants++ }

// LockDenied implements Observer.
func (c *EventCounter) LockDenied(int, int, float64) { c.Denials++ }

// TxnCompleted implements Observer.
func (c *EventCounter) TxnCompleted(int, float64, float64) { c.Completions++ }
