package model

import (
	"math"
	"testing"

	"granulock/internal/stats"
	"granulock/internal/workload"
)

func TestObserverEventCounts(t *testing.T) {
	p := base()
	var c EventCounter
	m, err := RunObserved(p, &c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Completions != m.TotCom {
		t.Fatalf("observer completions %d != metrics totcom %d", c.Completions, m.TotCom)
	}
	if c.Requests != m.LockRequests {
		t.Fatalf("observer requests %d != metrics %d", c.Requests, m.LockRequests)
	}
	if c.Grants+c.Denials != c.Requests {
		t.Fatalf("grants %d + denials %d != requests %d", c.Grants, c.Denials, c.Requests)
	}
	if c.Denials != m.LockDenials {
		t.Fatalf("observer denials %d != metrics %d", c.Denials, m.LockDenials)
	}
	// Initial population plus one replacement per completion.
	if c.Arrivals != p.NTrans+c.Completions {
		t.Fatalf("arrivals %d, want %d", c.Arrivals, p.NTrans+c.Completions)
	}
}

func TestObserverDoesNotPerturbMetrics(t *testing.T) {
	p := base()
	plain := run(t, p)
	var c EventCounter
	observed, err := RunObserved(p, &c)
	if err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Fatal("attaching an observer changed the simulation result")
	}
}

func TestResponseCollectorMatchesMeanResponse(t *testing.T) {
	p := base()
	var rc ResponseCollector
	m, err := RunObserved(p, &rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Responses) != m.TotCom {
		t.Fatalf("collected %d responses, want %d", len(rc.Responses), m.TotCom)
	}
	sum := 0.0
	for _, r := range rc.Responses {
		sum += r
	}
	if math.Abs(sum/float64(len(rc.Responses))-m.MeanResponse) > 1e-9 {
		t.Fatal("collector mean disagrees with metrics mean")
	}
}

func TestResponseCollectorAfterFilter(t *testing.T) {
	p := base()
	all := ResponseCollector{}
	late := ResponseCollector{After: p.TMax / 2}
	if _, err := RunObserved(p, &all); err != nil {
		t.Fatal(err)
	}
	if _, err := RunObserved(p, &late); err != nil {
		t.Fatal(err)
	}
	if len(late.Responses) >= len(all.Responses) {
		t.Fatalf("After filter dropped nothing: %d vs %d", len(late.Responses), len(all.Responses))
	}
	if len(late.Responses) == 0 {
		t.Fatal("After filter dropped everything")
	}
}

func TestBatchMeansOverResponses(t *testing.T) {
	p := base()
	p.TMax = 2000
	var rc ResponseCollector
	m, err := RunObserved(p, &rc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := stats.BatchMeans(rc.Responses, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.CI95 <= 0 {
		t.Fatal("zero batch-means CI")
	}
	// The batch-means point estimate must be close to the overall mean
	// (identical up to the dropped tail observations).
	if math.Abs(s.Mean-m.MeanResponse) > 0.1*m.MeanResponse {
		t.Fatalf("batch means %v far from mean response %v", s.Mean, m.MeanResponse)
	}
}

func TestClassCollectorMixedWorkload(t *testing.T) {
	p := base()
	p.TMax = 2000
	p.Classes = workload.SmallLargeMix(50, 500, 0.8)
	var cc ClassCollector
	m, err := RunObserved(p, &cc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Completions) != 2 {
		t.Fatalf("classes observed: %d", len(cc.Completions))
	}
	if cc.Completions[0]+cc.Completions[1] != m.TotCom {
		t.Fatalf("class completions %v don't sum to totcom %d", cc.Completions, m.TotCom)
	}
	// Small transactions (class 0) dominate completions: they are both
	// 80% of arrivals and individually faster.
	if cc.Completions[0] <= cc.Completions[1] {
		t.Fatalf("small-class completions %d not above large-class %d",
			cc.Completions[0], cc.Completions[1])
	}
	// And they respond faster.
	if cc.MeanResponse(0) >= cc.MeanResponse(1) {
		t.Fatalf("small-class response %v not below large-class %v",
			cc.MeanResponse(0), cc.MeanResponse(1))
	}
	if cc.MeanResponse(9) != 0 || cc.MeanResponse(-1) != 0 {
		t.Fatal("out-of-range class response nonzero")
	}
}

func TestWarmupValidation(t *testing.T) {
	p := base()
	p.Warmup = -1
	if _, err := Run(p); err == nil {
		t.Fatal("negative warmup accepted")
	}
	p.Warmup = p.TMax
	if _, err := Run(p); err == nil {
		t.Fatal("warmup == tmax accepted")
	}
}

func TestWarmupWindowAccounting(t *testing.T) {
	p := base()
	p.TMax = 1000
	p.Warmup = 500
	m, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotCom <= 0 {
		t.Fatal("no completions in the measurement window")
	}
	// Busy times now cover at most the window.
	maxBusy := float64(p.NPros) * (p.TMax - p.Warmup)
	if m.TotIOs > maxBusy+1e-6 || m.TotCPUs > maxBusy+1e-6 {
		t.Fatalf("busy time exceeds measurement window: io=%v cpu=%v max=%v", m.TotIOs, m.TotCPUs, maxBusy)
	}
	if m.MeanActive < 0 || m.MeanActive > float64(p.NTrans) {
		t.Fatalf("mean active %v", m.MeanActive)
	}
	// A full run counts more completions than the measurement window.
	full := run(t, func() Params { q := p; q.Warmup = 0; return q }())
	if m.TotCom >= full.TotCom {
		t.Fatalf("windowed totcom %d not below full-run %d", m.TotCom, full.TotCom)
	}
	// Throughputs should roughly agree (the process is near-stationary).
	if m.Throughput < 0.5*full.Throughput || m.Throughput > 1.5*full.Throughput {
		t.Fatalf("windowed throughput %v wildly off full-run %v", m.Throughput, full.Throughput)
	}
}

func TestWarmupRemovesColdStartBias(t *testing.T) {
	// The first time units include the staggered arrivals; response
	// times over the warm window exclude that transient. We only check
	// the mechanism works: the two estimates differ, both positive.
	p := base()
	p.TMax = 1000
	cold := run(t, p)
	p.Warmup = 200
	warm := run(t, p)
	if warm.MeanResponse <= 0 || cold.MeanResponse <= 0 {
		t.Fatal("non-positive response estimates")
	}
	if warm == cold {
		t.Fatal("warmup had no effect at all")
	}
}
