package model

// txnRing is a growable circular FIFO of transactions, used for the
// pending queue. The previous representation was a plain slice whose
// head removal copy-shifted every remaining element — O(n) per dispatch
// and quadratic over a run at Figure 12's ntrans=200. The ring makes
// head pop, head push (released transactions re-enter at the head) and
// tail push all O(1). Capacity is always a power of two so positions
// wrap with a mask instead of a modulo.
type txnRing struct {
	buf  []*txn
	head int // index of the front element, meaningless when n == 0
	n    int
}

// Len returns the number of queued transactions.
func (r *txnRing) Len() int { return r.n }

// grow ensures capacity for at least need elements, unwrapping the ring
// to the start of the new buffer.
func (r *txnRing) grow(need int) {
	c := len(r.buf)
	if need <= c {
		return
	}
	if c == 0 {
		c = 8
	}
	for c < need {
		c <<= 1
	}
	nb := make([]*txn, c)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&mask]
	}
	r.buf = nb
	r.head = 0
}

// PushTail appends t at the back of the queue.
func (r *txnRing) PushTail(t *txn) {
	r.grow(r.n + 1)
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = t
	r.n++
}

// PushHead inserts t at the front of the queue.
func (r *txnRing) PushHead(t *txn) {
	r.grow(r.n + 1)
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = t
	r.n++
}

// PopHead removes and returns the front transaction. It panics on an
// empty ring; callers check Len first.
func (r *txnRing) PopHead() *txn {
	if r.n == 0 {
		panic("model: PopHead on empty pending ring")
	}
	t := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t
}

// Head returns the front transaction without removing it.
func (r *txnRing) Head() *txn { return r.buf[r.head] }
