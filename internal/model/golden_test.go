package model

import (
	"math"
	"testing"
)

// TestGoldenRun pins the exact output of the base configuration
// (TMax=500, Seed=1) as a regression guard: the simulator promises
// bit-for-bit reproducibility per seed, so ANY change to these values
// means the random-number consumption pattern or the event semantics
// changed. If the change is intentional (e.g. a deliberately modified
// mechanism), re-capture the constants and say so in the commit that
// does it; if not, this test just caught a behavioural regression.
func TestGoldenRun(t *testing.T) {
	m := run(t, base())
	want := Metrics{
		TotCPUs:           1209.4259999999947,
		TotIOs:            4999.920000000001,
		LockCPUs:          7.719999999995508,
		LockIOs:           154.39999999999753,
		UsefulCPUs:        120.17059999999992,
		UsefulIOs:         484.5520000000003,
		TotCom:            96,
		Throughput:        0.192,
		MeanResponse:      47.82639583333332,
		LockRequests:      151,
		LockDenials:       47,
		DenialRate:        0.31125827814569534,
		MeanActive:        7.795496000000007,
		CompletedEntities: 23536,
	}
	if m.TotCom != want.TotCom || m.LockRequests != want.LockRequests ||
		m.LockDenials != want.LockDenials || m.CompletedEntities != want.CompletedEntities {
		t.Fatalf("integer outputs drifted:\n got %+v\nwant %+v", m, want)
	}
	floats := []struct {
		name      string
		got, want float64
	}{
		{"TotCPUs", m.TotCPUs, want.TotCPUs},
		{"TotIOs", m.TotIOs, want.TotIOs},
		{"LockCPUs", m.LockCPUs, want.LockCPUs},
		{"LockIOs", m.LockIOs, want.LockIOs},
		{"UsefulCPUs", m.UsefulCPUs, want.UsefulCPUs},
		{"UsefulIOs", m.UsefulIOs, want.UsefulIOs},
		{"Throughput", m.Throughput, want.Throughput},
		{"MeanResponse", m.MeanResponse, want.MeanResponse},
		{"DenialRate", m.DenialRate, want.DenialRate},
		{"MeanActive", m.MeanActive, want.MeanActive},
	}
	for _, f := range floats {
		// Allow only float-summation noise, not behavioural drift.
		if math.Abs(f.got-f.want) > 1e-9*(1+math.Abs(f.want)) {
			t.Fatalf("%s drifted: got %v, want %v", f.name, f.got, f.want)
		}
	}
}
