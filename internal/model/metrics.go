package model

import (
	"granulock/internal/obs"
)

// Metric family names the simulation writes. Exported through the
// docs (docs/OBSERVABILITY.md) rather than as Go constants; listed
// here once so the observer and the recorder agree.
const (
	simEventsName   = "granulock_sim_events_total"
	simResponseName = "granulock_sim_response_time_units"
	simTxnLocksName = "granulock_sim_txn_locks"
)

// metricsObserver is an Observer mirroring every simulation lifecycle
// event into a Registry: per-kind event counters, a response-time
// histogram and a locks-per-transaction histogram. It is attached only
// when a registry is supplied (granulock.WithMetrics); with none, the
// simulation runs the exact pre-instrumentation code path.
type metricsObserver struct {
	arrivals    *obs.Counter
	requests    *obs.Counter
	grants      *obs.Counter
	denials     *obs.Counter
	completions *obs.Counter
	response    *obs.Histogram
	txnLocks    *obs.Histogram
}

// NewMetricsObserver returns an Observer that records the simulation's
// lifecycle events into reg. Families are registered idempotently, so
// successive runs against one registry accumulate.
func NewMetricsObserver(reg *obs.Registry) Observer {
	events := reg.NewCounterVec(simEventsName,
		"Simulation lifecycle events by kind (arrive, request, grant, deny, complete).", "kind")
	return &metricsObserver{
		arrivals:    events.With("arrive"),
		requests:    events.With("request"),
		grants:      events.With("grant"),
		denials:     events.With("deny"),
		completions: events.With("complete"),
		response: reg.NewHistogram(simResponseName,
			"Transaction response time in simulated time units.",
			obs.ExpBuckets(1, 2, 14)), // 1 .. 8192 time units
		txnLocks: reg.NewHistogram(simTxnLocksName,
			"Locks requested per transaction.",
			obs.ExpBuckets(1, 2, 12)), // 1 .. 2048 locks
	}
}

// TxnArrived implements Observer.
func (m *metricsObserver) TxnArrived(_, _, locks int, _ float64) {
	m.arrivals.Inc()
	m.txnLocks.Observe(float64(locks))
}

// LockRequested implements Observer.
func (m *metricsObserver) LockRequested(int, float64) { m.requests.Inc() }

// LockGranted implements Observer.
func (m *metricsObserver) LockGranted(int, float64) { m.grants.Inc() }

// LockDenied implements Observer.
func (m *metricsObserver) LockDenied(int, int, float64) { m.denials.Inc() }

// TxnCompleted implements Observer.
func (m *metricsObserver) TxnCompleted(_ int, response, _ float64) {
	m.completions.Inc()
	m.response.Observe(response)
}

// RecordMetrics publishes a finished run's output parameters into reg
// as gauges: the headline quantities plus the per-resource busy-time
// decomposition (total vs lock-management time on CPUs and disks) the
// paper's figures are built from. Called by the facade after each
// instrumented run; the gauges hold the latest run's values.
func RecordMetrics(reg *obs.Registry, m Metrics) {
	reg.NewGauge("granulock_sim_throughput",
		"Last run's throughput in transactions per time unit.").Set(m.Throughput)
	reg.NewGauge("granulock_sim_mean_response_units",
		"Last run's mean transaction response time in time units.").Set(m.MeanResponse)
	reg.NewGauge("granulock_sim_denial_rate",
		"Last run's fraction of lock requests denied.").Set(m.DenialRate)
	reg.NewGauge("granulock_sim_mean_active",
		"Last run's time-average number of active transactions.").Set(m.MeanActive)
	busy := reg.NewGaugeVec("granulock_sim_busy_time_units",
		"Last run's aggregate busy time over the measurement window, by resource and work class.",
		"resource", "class")
	busy.With("cpu", "total").Set(m.TotCPUs)
	busy.With("cpu", "lock").Set(m.LockCPUs)
	busy.With("cpu", "useful").Set(m.UsefulCPUs)
	busy.With("disk", "total").Set(m.TotIOs)
	busy.With("disk", "lock").Set(m.LockIOs)
	busy.With("disk", "useful").Set(m.UsefulIOs)
	counts := reg.NewGaugeVec("granulock_sim_run_counts",
		"Last run's integer output parameters.", "quantity")
	counts.With("completions").Set(float64(m.TotCom))
	counts.With("lock_requests").Set(float64(m.LockRequests))
	counts.With("lock_denials").Set(float64(m.LockDenials))
	counts.With("completed_entities").Set(float64(m.CompletedEntities))
	counts.With("events").Set(float64(m.Events))
}

// Tee fans Observer callbacks out to every non-nil observer in order.
// Observers that also implement ClassObserver receive class events.
func Tee(observers ...Observer) Observer {
	var live []Observer
	for _, o := range observers {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return NopObserver{}
	case 1:
		return live[0]
	}
	return teeObserver(live)
}

// teeObserver forwards to each member.
type teeObserver []Observer

// TxnArrived implements Observer.
func (t teeObserver) TxnArrived(id, entities, locks int, at float64) {
	for _, o := range t {
		o.TxnArrived(id, entities, locks, at)
	}
}

// LockRequested implements Observer.
func (t teeObserver) LockRequested(id int, at float64) {
	for _, o := range t {
		o.LockRequested(id, at)
	}
}

// LockGranted implements Observer.
func (t teeObserver) LockGranted(id int, at float64) {
	for _, o := range t {
		o.LockGranted(id, at)
	}
}

// LockDenied implements Observer.
func (t teeObserver) LockDenied(id, blockerID int, at float64) {
	for _, o := range t {
		o.LockDenied(id, blockerID, at)
	}
}

// TxnCompleted implements Observer.
func (t teeObserver) TxnCompleted(id int, response, at float64) {
	for _, o := range t {
		o.TxnCompleted(id, response, at)
	}
}

// TxnClassCompleted implements ClassObserver.
func (t teeObserver) TxnClassCompleted(id, class int, response, at float64) {
	for _, o := range t {
		if co, ok := o.(ClassObserver); ok {
			co.TxnClassCompleted(id, class, response, at)
		}
	}
}
