package model

import (
	"math"
	"testing"

	"granulock/internal/partition"
	"granulock/internal/sched"
	"granulock/internal/server"
	"granulock/internal/workload"
)

// base returns the paper's Table 1 configuration (see DESIGN.md §3) with
// a shortened horizon for test speed.
func base() Params {
	return Params{
		DBSize:       5000,
		Ltot:         100,
		NTrans:       10,
		MaxTransize:  500,
		CPUTime:      0.05,
		IOTime:       0.2,
		LockCPUTime:  0.01,
		LockIOTime:   0.2,
		NPros:        10,
		TMax:         500,
		Partitioning: partition.Horizontal,
		Placement:    workload.PlacementBest,
		Seed:         1,
	}
}

func run(t *testing.T, p Params) Metrics {
	t.Helper()
	m, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestValidation(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"dbsize", func(p *Params) { p.DBSize = 0 }},
		{"ltot low", func(p *Params) { p.Ltot = 0 }},
		{"ltot high", func(p *Params) { p.Ltot = p.DBSize + 1 }},
		{"ntrans", func(p *Params) { p.NTrans = 0 }},
		{"npros", func(p *Params) { p.NPros = 0 }},
		{"tmax", func(p *Params) { p.TMax = 0 }},
		{"negative time", func(p *Params) { p.IOTime = -1 }},
		{"all zero times", func(p *Params) { p.CPUTime, p.IOTime, p.LockCPUTime, p.LockIOTime = 0, 0, 0, 0 }},
		{"maxtransize", func(p *Params) { p.MaxTransize = 0 }},
		{"maxtransize high", func(p *Params) { p.MaxTransize = p.DBSize + 1 }},
		{"partitioning", func(p *Params) { p.Partitioning = partition.Strategy(9) }},
		{"placement", func(p *Params) { p.Placement = workload.Placement(9) }},
	}
	for _, m := range mutations {
		p := base()
		m.mut(&p)
		if _, err := Run(p); err == nil {
			t.Errorf("%s: invalid params accepted", m.name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, base())
	b := run(t, base())
	if a != b {
		t.Fatalf("runs with identical params diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedMatters(t *testing.T) {
	p := base()
	a := run(t, p)
	p.Seed = 2
	b := run(t, p)
	if a == b {
		t.Fatal("different seeds produced identical metrics")
	}
}

func TestProgressAndBasicInvariants(t *testing.T) {
	m := run(t, base())
	if m.TotCom <= 0 {
		t.Fatal("no transactions completed")
	}
	if m.Throughput != float64(m.TotCom)/base().TMax {
		t.Fatal("throughput definition violated")
	}
	if m.MeanResponse <= 0 {
		t.Fatal("non-positive response time")
	}
	if m.LockRequests < m.TotCom {
		t.Fatal("fewer lock requests than completions")
	}
	if m.LockDenials > m.LockRequests {
		t.Fatal("more denials than requests")
	}
	if m.DenialRate < 0 || m.DenialRate > 1 {
		t.Fatalf("denial rate %v", m.DenialRate)
	}
	if m.MeanActive < 0 || m.MeanActive > float64(base().NTrans) {
		t.Fatalf("mean active %v outside [0, ntrans]", m.MeanActive)
	}
}

func TestResourceAccountingBounds(t *testing.T) {
	p := base()
	m := run(t, p)
	maxBusy := float64(p.NPros) * p.TMax
	if m.TotCPUs < 0 || m.TotCPUs > maxBusy+1e-6 {
		t.Fatalf("totcpus %v outside [0, %v]", m.TotCPUs, maxBusy)
	}
	if m.TotIOs < 0 || m.TotIOs > maxBusy+1e-6 {
		t.Fatalf("totios %v outside [0, %v]", m.TotIOs, maxBusy)
	}
	if m.LockCPUs > m.TotCPUs+1e-9 || m.LockIOs > m.TotIOs+1e-9 {
		t.Fatal("lock busy time exceeds total busy time")
	}
	if math.Abs(m.UsefulCPUs-(m.TotCPUs-m.LockCPUs)/float64(p.NPros)) > 1e-9 {
		t.Fatal("usefulcpus definition violated")
	}
	if math.Abs(m.UsefulIOs-(m.TotIOs-m.LockIOs)/float64(p.NPros)) > 1e-9 {
		t.Fatal("usefulios definition violated")
	}
}

func TestWorkConservation(t *testing.T) {
	// Useful I/O busy time must cover at least the entities of completed
	// transactions and at most completed plus the in-flight population.
	p := base()
	m := run(t, p)
	useful := m.TotIOs - m.LockIOs
	lower := float64(m.CompletedEntities) * p.IOTime
	upper := float64(m.CompletedEntities+p.NTrans*p.MaxTransize) * p.IOTime
	if useful < lower-1e-6 || useful > upper+1e-6 {
		t.Fatalf("useful I/O %v outside [%v, %v]", useful, lower, upper)
	}
}

func TestWholeDatabaseLockSerializes(t *testing.T) {
	// ltot=1: "transactions are forced to run in a serial order", so the
	// attained concurrency never exceeds one active transaction.
	p := base()
	p.Ltot = 1
	m := run(t, p)
	if m.MeanActive > 1.0+1e-9 {
		t.Fatalf("mean active %v > 1 under whole-database locking", m.MeanActive)
	}
	if m.TotCom == 0 {
		t.Fatal("no progress under whole-database locking")
	}
}

func TestFinerGranularityRaisesConcurrency(t *testing.T) {
	p := base()
	p.Ltot = 1
	coarse := run(t, p)
	p.Ltot = 100
	fine := run(t, p)
	if fine.MeanActive <= coarse.MeanActive {
		t.Fatalf("mean active did not rise with granularity: %v (ltot=1) vs %v (ltot=100)",
			coarse.MeanActive, fine.MeanActive)
	}
}

func TestThroughputConvexInLtot(t *testing.T) {
	// The paper's headline: throughput rises from ltot=1 to a moderate
	// optimum, then falls by ltot=dbsize under lock overhead.
	p := base()
	p.TMax = 1000
	p.Ltot = 1
	coarse := run(t, p)
	p.Ltot = 50
	mid := run(t, p)
	p.Ltot = 5000
	fine := run(t, p)
	if mid.Throughput <= coarse.Throughput {
		t.Fatalf("moderate granularity (%v) not better than whole-db lock (%v)",
			mid.Throughput, coarse.Throughput)
	}
	if mid.Throughput <= fine.Throughput {
		t.Fatalf("moderate granularity (%v) not better than entity-level locks (%v)",
			mid.Throughput, fine.Throughput)
	}
}

func TestMoreProcessorsMoreThroughput(t *testing.T) {
	p := base()
	p.TMax = 1000
	p.NPros = 1
	one := run(t, p)
	p.NPros = 10
	ten := run(t, p)
	if ten.Throughput <= one.Throughput {
		t.Fatalf("throughput did not scale with processors: %v (1) vs %v (10)",
			one.Throughput, ten.Throughput)
	}
	if ten.MeanResponse >= one.MeanResponse {
		t.Fatalf("response time did not fall with processors: %v (1) vs %v (10)",
			one.MeanResponse, ten.MeanResponse)
	}
}

func TestLockOverheadGrowsWithFineGranularity(t *testing.T) {
	// Past the optimum each transaction requests many more locks.
	p := base()
	p.Ltot = 100
	low := run(t, p)
	p.Ltot = 5000
	high := run(t, p)
	lowOverhead := low.LockIOs / float64(low.LockRequests)
	highOverhead := high.LockIOs / float64(high.LockRequests)
	if highOverhead <= lowOverhead {
		t.Fatalf("per-request lock overhead did not grow: %v vs %v", lowOverhead, highOverhead)
	}
}

func TestZeroLockIOTimeMeansNoLockIO(t *testing.T) {
	p := base()
	p.LockIOTime = 0 // main-memory lock table (§3.3)
	m := run(t, p)
	if m.LockIOs != 0 {
		t.Fatalf("lock I/O %v with liotime=0", m.LockIOs)
	}
	if m.LockCPUs <= 0 {
		t.Fatal("no lock CPU despite lcputime > 0")
	}
}

func TestRandomPartitioningRuns(t *testing.T) {
	p := base()
	p.Partitioning = partition.Random
	m := run(t, p)
	if m.TotCom == 0 {
		t.Fatal("no progress under random partitioning")
	}
}

func TestHorizontalBeatsRandomPartitioning(t *testing.T) {
	// Paper §3.4: horizontal partitioning yields better performance.
	p := base()
	p.TMax = 2000
	h := run(t, p)
	p.Partitioning = partition.Random
	r := run(t, p)
	if h.Throughput <= r.Throughput {
		t.Fatalf("horizontal (%v) not better than random (%v) partitioning",
			h.Throughput, r.Throughput)
	}
}

func TestPlacementOrderingAtFineGranularity(t *testing.T) {
	// At intermediate granularity worst placement demands far more locks
	// per transaction than best placement, depressing throughput (§3.5).
	// (At ltot=dbsize the strategies coincide by definition.)
	p := base()
	p.Ltot = 500
	p.TMax = 1000
	pBest := p
	pBest.Placement = workload.PlacementBest
	best := run(t, pBest)
	pWorst := p
	pWorst.Placement = workload.PlacementWorst
	worst := run(t, pWorst)
	if best.Throughput <= worst.Throughput {
		t.Fatalf("best placement (%v) not better than worst (%v) at fine granularity",
			best.Throughput, worst.Throughput)
	}
}

func TestMixedClassesRun(t *testing.T) {
	p := base()
	p.Classes = workload.SmallLargeMix(50, 500, 0.8)
	p.MaxTransize = 0 // must be ignored when Classes present
	m := run(t, p)
	if m.TotCom == 0 {
		t.Fatal("no progress with mixed classes")
	}
}

func TestSmallTransactionsHigherThroughput(t *testing.T) {
	// §3.2: smaller transactions increase throughput substantially.
	p := base()
	p.TMax = 1000
	large := run(t, p)
	p.MaxTransize = 50
	small := run(t, p)
	if small.Throughput <= large.Throughput {
		t.Fatalf("small transactions (%v) not faster than large (%v)",
			small.Throughput, large.Throughput)
	}
}

func TestFixedMPLCapsConcurrency(t *testing.T) {
	p := base()
	p.Scheduler = sched.FixedMPL{Limit: 2}
	m := run(t, p)
	if m.MeanActive > 2+1e-9 {
		t.Fatalf("mean active %v exceeds MPL limit 2", m.MeanActive)
	}
	if m.TotCom == 0 {
		t.Fatal("no progress under MPL limit")
	}
}

func TestAdaptiveSchedulerRuns(t *testing.T) {
	p := base()
	pol, err := sched.NewAdaptiveMPL(1, p.NTrans, 20, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p.Scheduler = pol
	m := run(t, p)
	if m.TotCom == 0 {
		t.Fatal("no progress under adaptive scheduling")
	}
}

func TestReleasedToTailAblationRuns(t *testing.T) {
	p := base()
	p.Ltot = 5 // plenty of blocking
	head := run(t, p)
	p.ReleasedToTail = true
	tail := run(t, p)
	if head.TotCom == 0 || tail.TotCom == 0 {
		t.Fatal("requeue ablation stalled")
	}
}

func TestDedicatedLockProcessorAblation(t *testing.T) {
	p := base()
	p.TMax = 1000
	shared := run(t, p)
	p.DedicatedLockProcessor = true
	dedicated := run(t, p)
	if dedicated.TotCom == 0 {
		t.Fatal("no progress with dedicated lock processor")
	}
	// Sharing lock work across processors must not be worse than
	// funnelling it through one processor.
	if shared.Throughput < dedicated.Throughput*0.95 {
		t.Fatalf("shared lock work (%v) much worse than dedicated (%v)",
			shared.Throughput, dedicated.Throughput)
	}
}

func TestUniprocessorMatchesRiesStonebrakerShape(t *testing.T) {
	// npros=1 is the uniprocessor model of refs [8,9]: coarse
	// granularity should be about as good as the optimum (flat region),
	// and very fine granularity clearly worse.
	p := base()
	p.NPros = 1
	p.TMax = 2000
	p.Ltot = 1
	coarse := run(t, p)
	p.Ltot = 5000
	fine := run(t, p)
	if coarse.Throughput <= fine.Throughput {
		t.Fatalf("uniprocessor: coarse (%v) not better than entity-level (%v)",
			coarse.Throughput, fine.Throughput)
	}
}

func TestManyTransactionsFineGranularityCollapses(t *testing.T) {
	// §3.7: with ntrans large, entity-level locking loses to coarse
	// granularity because lock overhead scales with both ntrans and ltot.
	p := base()
	p.NTrans = 200
	p.NPros = 20
	p.TMax = 1000
	p.Ltot = 10
	coarse := run(t, p)
	p.Ltot = 5000
	fine := run(t, p)
	if fine.Throughput >= coarse.Throughput {
		t.Fatalf("heavy load: fine granularity (%v) should collapse below coarse (%v)",
			fine.Throughput, coarse.Throughput)
	}
}

func TestAccessSkewRaisesConflicts(t *testing.T) {
	p := base()
	p.TMax = 1000
	uniform := run(t, p)
	p.AccessSkew = 0.9
	skewed := run(t, p)
	if skewed.DenialRate <= uniform.DenialRate {
		t.Fatalf("skew denial rate %v not above uniform %v", skewed.DenialRate, uniform.DenialRate)
	}
	if skewed.Throughput >= uniform.Throughput {
		t.Fatalf("skew throughput %v not below uniform %v", skewed.Throughput, uniform.Throughput)
	}
}

func TestAccessSkewValidation(t *testing.T) {
	p := base()
	p.AccessSkew = -0.1
	if _, err := Run(p); err == nil {
		t.Fatal("negative skew accepted")
	}
	p.AccessSkew = 1
	if _, err := Run(p); err == nil {
		t.Fatal("skew=1 accepted")
	}
}

func TestSJFDisciplineRuns(t *testing.T) {
	p := base()
	p.Discipline = server.SJF
	m := run(t, p)
	if m.TotCom == 0 {
		t.Fatal("no progress under SJF")
	}
	p.Discipline = server.Discipline(9)
	if _, err := Run(p); err == nil {
		t.Fatal("invalid discipline accepted")
	}
}

func TestSingleTransactionNoConflicts(t *testing.T) {
	p := base()
	p.NTrans = 1
	m := run(t, p)
	if m.LockDenials != 0 {
		t.Fatalf("%d denials with a single transaction", m.LockDenials)
	}
	if m.MeanActive > 1 {
		t.Fatalf("mean active %v with one transaction", m.MeanActive)
	}
}

func TestTimingSemanticsExactSingleTransaction(t *testing.T) {
	// With one transaction of exactly one entity there is no queueing
	// and no conflict, so the cycle time is computable by hand:
	//   lock I/O + lock CPU, shared by npros processors in parallel
	//   but chained disk->CPU on each:   (liotime + lcputime)/npros
	//   then the single-entity sub-transaction on one processor:
	//   iotime + cputime
	// The completion count must match tmax divided by that cycle.
	p := base()
	p.NTrans = 1
	p.MaxTransize = 1
	p.NPros = 10
	p.TMax = 1000
	m := run(t, p)
	cycle := (p.LockIOTime+p.LockCPUTime)/float64(p.NPros) + p.IOTime + p.CPUTime
	want := int((p.TMax - 0) / cycle) // arrival at t=0
	if m.TotCom < want-1 || m.TotCom > want+1 {
		t.Fatalf("totcom %d, want %d±1 (cycle %v)", m.TotCom, want, cycle)
	}
	// Response time equals the cycle (no waiting anywhere).
	if math.Abs(m.MeanResponse-cycle) > 1e-9 {
		t.Fatalf("response %v, want exactly %v", m.MeanResponse, cycle)
	}
	// Lock busy time: one request per completion(+in flight), each
	// costing liotime of disk across the system.
	wantLockIO := float64(m.LockRequests) * p.LockIOTime
	if math.Abs(m.LockIOs-wantLockIO) > p.LockIOTime {
		t.Fatalf("lockios %v, want about %v", m.LockIOs, wantLockIO)
	}
}

func TestTimingSemanticsUniprocessor(t *testing.T) {
	// Same idea on one processor: cycle = liotime + lcputime + iotime +
	// cputime, all serialized.
	p := base()
	p.NTrans = 1
	p.MaxTransize = 1
	p.NPros = 1
	p.TMax = 500
	m := run(t, p)
	cycle := p.LockIOTime + p.LockCPUTime + p.IOTime + p.CPUTime
	want := int(p.TMax / cycle)
	if m.TotCom < want-1 || m.TotCom > want+1 {
		t.Fatalf("totcom %d, want %d±1", m.TotCom, want)
	}
}

func TestTinyDatabase(t *testing.T) {
	p := base()
	p.DBSize = 2
	p.Ltot = 2
	p.MaxTransize = 2
	m := run(t, p)
	if m.TotCom == 0 {
		t.Fatal("tiny database made no progress")
	}
}

func BenchmarkRunBase(b *testing.B) {
	p := base()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
