package model

import (
	"testing"

	"granulock/internal/sched"
)

// drain pops every element into a slice of ids.
func drain(r *txnRing) []int {
	var ids []int
	for r.Len() > 0 {
		ids = append(ids, r.PopHead().id)
	}
	return ids
}

func idsEqual(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestTxnRingFIFO(t *testing.T) {
	var r txnRing
	for i := 1; i <= 100; i++ {
		r.PushTail(&txn{id: i})
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	got := drain(&r)
	for i, id := range got {
		if id != i+1 {
			t.Fatalf("FIFO broken: got %v", got)
		}
	}
}

// TestTxnRingWrapAround forces the head to travel around the buffer
// several times, with interleaved pushes and pops across growth.
func TestTxnRingWrapAround(t *testing.T) {
	var r txnRing
	next, want := 0, []int{}
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			next++
			r.PushTail(&txn{id: next})
			want = append(want, next)
		}
		for i := 0; i < 2 && r.Len() > 0; i++ {
			if got := r.PopHead().id; got != want[0] {
				t.Fatalf("round %d: popped %d, want %d", round, got, want[0])
			}
			want = want[1:]
		}
	}
	if !idsEqual(drain(&r), want) {
		t.Fatal("drain after wrap-around lost order")
	}
}

func TestTxnRingPushHead(t *testing.T) {
	var r txnRing
	r.PushTail(&txn{id: 3})
	r.PushHead(&txn{id: 2})
	r.PushHead(&txn{id: 1})
	r.PushTail(&txn{id: 4})
	if got := drain(&r); !idsEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("got %v, want [1 2 3 4]", got)
	}
}

func TestTxnRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopHead on empty ring did not panic")
		}
	}()
	var r txnRing
	r.PopHead()
}

// requeueFixture builds a simulation whose dispatcher is parked (lock
// manager busy), so requeueReleased's effect on the pending queue can be
// observed in isolation.
func requeueFixture(toTail bool) *simulation {
	return &simulation{
		p:        Params{ReleasedToTail: toTail},
		policy:   sched.Unlimited{},
		lockBusy: true, // tryDispatch is a no-op; the queue stays intact
		obs:      NopObserver{},
	}
}

// TestRequeueReleasedToHeadPreservesDispatchOrder pins the semantics the
// ring buffer must preserve from the old slice implementation: a
// released set re-enters at the head of the pending queue in its
// blocking order, ahead of everything already pending — so the next
// dispatches serve exactly the released transactions first, in order.
func TestRequeueReleasedToHeadPreservesDispatchOrder(t *testing.T) {
	s := requeueFixture(false)
	s.pending.PushTail(&txn{id: 4, state: statePending})
	s.pending.PushTail(&txn{id: 5, state: statePending})
	released := []*txn{{id: 1, state: stateBlocked}, {id: 2, state: stateBlocked}, {id: 3, state: stateBlocked}}
	s.requeueReleased(released)

	for _, r := range released {
		if r.state != statePending {
			t.Fatalf("released txn %d not back to pending state", r.id)
		}
	}
	if got := drain(&s.pending); !idsEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("head requeue dispatch order = %v, want [1 2 3 4 5]", got)
	}
}

// TestRequeueReleasedToTail covers the ablation path: released
// transactions join behind the existing queue, still in blocking order.
func TestRequeueReleasedToTail(t *testing.T) {
	s := requeueFixture(true)
	s.pending.PushTail(&txn{id: 4, state: statePending})
	s.pending.PushTail(&txn{id: 5, state: statePending})
	s.requeueReleased([]*txn{{id: 1}, {id: 2}, {id: 3}})
	if got := drain(&s.pending); !idsEqual(got, []int{4, 5, 1, 2, 3}) {
		t.Fatalf("tail requeue dispatch order = %v, want [4 5 1 2 3]", got)
	}
}

// TestRequeueOrderEndToEnd checks the released-to-head path inside a
// real high-conflict run: every transaction's denial precedes its next
// request, and the simulation completes a deterministic population under
// whole-database locking (ltot=1 serializes everything through the
// blocked/release machinery).
func TestRequeueOrderEndToEnd(t *testing.T) {
	p := base()
	p.Ltot = 1 // maximum conflict: every active transaction blocks the next
	p.TMax = 200

	var events []obsEvent
	rec := &requestRecorder{events: &events}
	m, err := RunObserved(p, rec)
	if err != nil {
		t.Fatal(err)
	}
	if m.LockDenials == 0 {
		t.Fatal("ltot=1 run produced no denials; conflict path untested")
	}
	// A denied transaction must be requested again (released-to-head)
	// before it can complete; verify request-after-denial ordering per id.
	lastDenied := map[int]bool{}
	for _, ev := range events {
		switch ev.kind {
		case "denied":
			lastDenied[ev.id] = true
		case "requested":
			delete(lastDenied, ev.id)
		case "completed":
			if lastDenied[ev.id] {
				t.Fatalf("txn %d completed while still parked after a denial", ev.id)
			}
		}
	}
}

// obsEvent is one recorded lock-manager lifecycle event.
type obsEvent struct {
	kind string
	id   int
}

// requestRecorder captures the lock-manager event stream.
type requestRecorder struct {
	NopObserver
	events *[]obsEvent
}

func (r *requestRecorder) LockRequested(id int, at float64) {
	*r.events = append(*r.events, obsEvent{"requested", id})
}

func (r *requestRecorder) LockDenied(id, blocker int, at float64) {
	*r.events = append(*r.events, obsEvent{"denied", id})
}

func (r *requestRecorder) TxnCompleted(id int, response, at float64) {
	*r.events = append(*r.events, obsEvent{"completed", id})
}
