// Package model implements the paper's primary contribution: the closed
// discrete-event simulation model of a shared-nothing multiprocessor
// database system with physical locking (Dandamudi & Au, ICDE 1991, §2),
// an extension of the Ries–Stonebraker uniprocessor model.
//
// A fixed population of ntrans transactions cycles through the system:
// each requests all of its locks conservatively (paying CPU and I/O lock
// overhead shared across every processor at preemptive priority),
// suffers probabilistic lock conflicts, splits into sub-transactions
// over the processors as dictated by the partitioning strategy, consumes
// disk then CPU service, and on completion releases its blocked set and
// is replaced by a fresh transaction.
package model

import (
	"fmt"

	"granulock/internal/partition"
	"granulock/internal/sched"
	"granulock/internal/server"
	"granulock/internal/workload"
)

// Params are the input parameters of the simulation model; names follow
// the paper (§2, Table 1).
type Params struct {
	// DBSize is dbsize: the number of accessible entities in the
	// database.
	DBSize int
	// Ltot is the number of locks (granules): 1 = whole-database
	// locking, DBSize = entity-level locking.
	Ltot int
	// NTrans is the fixed number of transactions in the closed system
	// (the number of attached terminals).
	NTrans int
	// MaxTransize bounds transaction sizes: NUᵢ ~ U(1, MaxTransize).
	// Ignored when Classes is non-empty.
	MaxTransize int
	// Classes optionally defines a multi-class size mix (§3.6). When
	// empty, a single class with MaxTransize is used.
	Classes []workload.Class
	// CPUTime is cputime: CPU time units to process one entity.
	CPUTime float64
	// IOTime is iotime: I/O time units to process one entity.
	IOTime float64
	// LockCPUTime is lcputime: CPU time units to request/set/release one
	// lock.
	LockCPUTime float64
	// LockIOTime is liotime: I/O time units to request/set/release one
	// lock (0 models a main-memory lock table, §3.3).
	LockIOTime float64
	// NPros is npros: the number of processors, each with a private CPU
	// and disk.
	NPros int
	// TMax is tmax: the number of time units to simulate.
	TMax float64
	// Warmup discards all statistics accumulated before this time,
	// removing initial-transient bias (standard simulation methodology;
	// the paper reports whole-run statistics, so the default is 0).
	// Must satisfy 0 <= Warmup < TMax.
	Warmup float64
	// Partitioning selects horizontal or random declustering (§3.4).
	Partitioning partition.Strategy
	// Placement selects the granule placement strategy determining lock
	// demand (§3.5).
	Placement workload.Placement
	// Seed makes runs reproducible; equal Params (including Seed) yield
	// identical Metrics.
	Seed uint64

	// ReleasedToTail, when true, re-queues transactions released from
	// the blocked queue at the pending-queue tail instead of its head.
	// The paper does not pin this down; head is the default (released
	// transactions have waited longest). Ablated in the benchmarks.
	ReleasedToTail bool
	// DedicatedLockProcessor, when true, runs all lock work on processor
	// 0 instead of sharing it across all processors — an ablation of the
	// paper's "processors share the work for locking mechanism"
	// assumption.
	DedicatedLockProcessor bool
	// Scheduler optionally bounds admission (transaction-level
	// scheduling, §3.7). Nil admits everything.
	Scheduler sched.Policy
	// Discipline selects the sub-transaction service order at each
	// resource (FCFS, the default, or SJF). Companion work to the
	// paper (ref [3]) reports this has only a marginal effect on the
	// granularity conclusions.
	Discipline server.Discipline
	// AccessSkew extends the paper's uniform-access conflict model with
	// hot spots: conflicts are drawn as if only a (1−AccessSkew)
	// fraction of the lock space received traffic, i.e. the effective
	// conflict space is ltot·(1−AccessSkew). Lock *costs* are
	// unaffected — a skewed workload still sets the same number of
	// locks, it just collides more. 0 (the default) is the paper's
	// model; must lie in [0, 1).
	AccessSkew float64
}

// Validate checks the parameters, returning a descriptive error for the
// first violation found.
func (p *Params) Validate() error {
	switch {
	case p.DBSize < 1:
		return fmt.Errorf("model: dbsize %d < 1", p.DBSize)
	case p.Ltot < 1 || p.Ltot > p.DBSize:
		return fmt.Errorf("model: ltot %d outside [1, dbsize=%d]", p.Ltot, p.DBSize)
	case p.NTrans < 1:
		return fmt.Errorf("model: ntrans %d < 1", p.NTrans)
	case p.NPros < 1:
		return fmt.Errorf("model: npros %d < 1", p.NPros)
	case p.TMax <= 0:
		return fmt.Errorf("model: tmax %v <= 0", p.TMax)
	case p.CPUTime < 0 || p.IOTime < 0 || p.LockCPUTime < 0 || p.LockIOTime < 0:
		return fmt.Errorf("model: negative service time (cputime=%v iotime=%v lcputime=%v liotime=%v)",
			p.CPUTime, p.IOTime, p.LockCPUTime, p.LockIOTime)
	case p.CPUTime+p.IOTime+p.LockCPUTime+p.LockIOTime == 0:
		return fmt.Errorf("model: all service times zero; simulated time cannot advance")
	case p.Warmup < 0 || p.Warmup >= p.TMax:
		return fmt.Errorf("model: warmup %v outside [0, tmax=%v)", p.Warmup, p.TMax)
	}
	if len(p.Classes) == 0 && (p.MaxTransize < 1 || p.MaxTransize > p.DBSize) {
		return fmt.Errorf("model: maxtransize %d outside [1, dbsize=%d]", p.MaxTransize, p.DBSize)
	}
	if p.Partitioning != partition.Horizontal && p.Partitioning != partition.Random {
		return fmt.Errorf("model: unknown partitioning strategy %d", int(p.Partitioning))
	}
	if p.Placement < workload.PlacementBest || p.Placement > workload.PlacementRandom {
		return fmt.Errorf("model: unknown placement %d", int(p.Placement))
	}
	if p.Discipline != server.FCFS && p.Discipline != server.SJF {
		return fmt.Errorf("model: unknown service discipline %d", int(p.Discipline))
	}
	if p.AccessSkew < 0 || p.AccessSkew >= 1 {
		return fmt.Errorf("model: access skew %v outside [0, 1)", p.AccessSkew)
	}
	return nil
}

// classes returns the effective class mix.
func (p *Params) classes() []workload.Class {
	if len(p.Classes) > 0 {
		return p.Classes
	}
	return workload.Uniform(p.MaxTransize)
}

// Metrics are the model's output parameters (§2), plus auxiliary
// counters used by the experiments.
type Metrics struct {
	// TotCPUs is totcpus: time units the system's CPUs were busy
	// (transactions plus lock work), summed over processors.
	TotCPUs float64
	// TotIOs is totios: the same for the disks.
	TotIOs float64
	// LockCPUs is lockcpus: CPU time spent requesting, setting and
	// releasing locks, summed over processors.
	LockCPUs float64
	// LockIOs is lockios: the same for the disks.
	LockIOs float64
	// UsefulCPUs is usefulcpus = (totcpus − lockcpus)/npros: the average
	// per-processor CPU time spent processing transactions.
	UsefulCPUs float64
	// UsefulIOs is usefulios = (totios − lockios)/npros.
	UsefulIOs float64
	// TotCom is totcom: transactions completed by tmax.
	TotCom int
	// Throughput is totcom/tmax: completed transactions per time unit.
	Throughput float64
	// MeanResponse is the average response time of completed
	// transactions (pending-queue entry to completion).
	MeanResponse float64

	// LockRequests counts lock-request attempts (a blocked transaction
	// re-requests after release, paying again).
	LockRequests int
	// LockDenials counts attempts that were blocked.
	LockDenials int
	// DenialRate is LockDenials/LockRequests (0 when no requests).
	DenialRate float64
	// MeanActive is the time-average number of transactions holding
	// locks (the attained concurrency level).
	MeanActive float64
	// CompletedEntities is the total entities processed by completed
	// transactions.
	CompletedEntities int
	// Events is the number of discrete events the simulator executed
	// over the whole run (warmup included): the cost of producing this
	// Metrics, used by the benchmark harness to report events/sec. It is
	// diagnostic, not a model output.
	Events uint64
}
