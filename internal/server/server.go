// Package server models single-resource servers (a CPU or a disk) for the
// discrete-event simulation.
//
// Each Server serves one job at a time. Jobs belong to priority classes;
// within a class service is FIFO, and a higher-priority arrival preempts
// the job in service (preemptive-resume: the preempted job keeps its
// progress and re-enters the head of its class queue). This matches the
// paper's model, where "the locking mechanism has preemptive power over
// running transactions for I/O and CPU resources".
//
// Servers keep exact per-class busy-time accounting, which the model uses
// to report totcpus/totios and lockcpus/lockios.
package server

import (
	"fmt"

	"granulock/internal/sim"
)

// Class is a job priority class. Lower values have higher priority.
type Class int

const (
	// LockClass is lock-management work; it preempts transaction work.
	LockClass Class = iota
	// WorkClass is ordinary transaction (sub-transaction) service.
	WorkClass
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case LockClass:
		return "lock"
	case WorkClass:
		return "work"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Job is a unit of service demand submitted to a Server. Done, if
// non-nil, runs when the job's full Size has been served.
type Job struct {
	Size  float64 // total service demand, in time units
	Class Class
	Done  func()

	remaining float64
}

// Discipline selects the order jobs of one class are served in.
type Discipline int

const (
	// FCFS serves jobs in arrival order (the model's default).
	FCFS Discipline = iota
	// SJF serves the job with the smallest remaining demand first
	// (non-preemptive within the class). The paper's companion work
	// (ref [3]) reports the sub-transaction discipline has only a
	// marginal effect on the granularity conclusions; the extension
	// experiment ext-discipline verifies that here.
	SJF
)

// String returns the discipline name.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case SJF:
		return "sjf"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Server is a single preemptive-priority resource. Create one with New.
type Server struct {
	eng  *sim.Engine
	name string
	disc Discipline

	queues  [numClasses][]*Job
	running *Job
	runEv   *sim.Event
	runFrom sim.Time

	busy [numClasses]float64
}

// Option configures a Server.
type Option func(*Server)

// WithDiscipline sets the service order of WorkClass jobs (LockClass is
// always FCFS: the lock manager serializes requests anyway).
func WithDiscipline(d Discipline) Option {
	return func(s *Server) { s.disc = d }
}

// New returns an idle server attached to the engine. The name appears in
// diagnostics only.
func New(eng *sim.Engine, name string, opts ...Option) *Server {
	s := &Server{eng: eng, name: name}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Submit enqueues a job for service. Jobs with Size 0 complete without
// occupying the server (their Done runs as a zero-delay event, preserving
// event ordering). Negative sizes panic.
func (s *Server) Submit(j *Job) {
	if j.Size < 0 {
		panic(fmt.Sprintf("server %s: negative job size %v", s.name, j.Size))
	}
	if j.Class < 0 || j.Class >= numClasses {
		panic(fmt.Sprintf("server %s: invalid class %d", s.name, j.Class))
	}
	if j.Size == 0 {
		if j.Done != nil {
			s.eng.After(0, j.Done)
		}
		return
	}
	j.remaining = j.Size
	s.queues[j.Class] = append(s.queues[j.Class], j)
	s.dispatch()
}

// dispatch ensures the highest-priority available job is in service,
// preempting a lower-priority running job if necessary.
func (s *Server) dispatch() {
	next := s.headClass()
	if next < 0 {
		return
	}
	if s.running != nil {
		if Class(next) >= s.running.Class {
			return // current job has equal or higher priority
		}
		s.preempt()
	}
	s.start(Class(next))
}

// headClass returns the highest-priority non-empty class, or -1.
func (s *Server) headClass() int {
	for c := 0; c < int(numClasses); c++ {
		if len(s.queues[c]) > 0 {
			return c
		}
	}
	return -1
}

// preempt stops the running job, banks its progress, and returns it to
// the head of its class queue.
func (s *Server) preempt() {
	j := s.running
	elapsed := s.eng.Now() - s.runFrom
	s.busy[j.Class] += elapsed
	j.remaining -= elapsed
	if j.remaining < 0 {
		j.remaining = 0
	}
	s.eng.Cancel(s.runEv)
	s.running, s.runEv = nil, nil
	// Preemptive-resume: the job resumes before others of its class.
	s.queues[j.Class] = append([]*Job{j}, s.queues[j.Class]...)
}

// start removes the next job of class c per the discipline and begins
// serving it.
func (s *Server) start(c Class) {
	q := s.queues[c]
	pick := 0
	if s.disc == SJF && c == WorkClass {
		for i := 1; i < len(q); i++ {
			if q[i].remaining < q[pick].remaining {
				pick = i
			}
		}
	}
	j := q[pick]
	copy(q[pick:], q[pick+1:])
	q[len(q)-1] = nil
	s.queues[c] = q[:len(q)-1]

	s.running = j
	s.runFrom = s.eng.Now()
	s.runEv = s.eng.After(j.remaining, func() { s.complete(j) })
}

// complete finishes the running job and dispatches the next one.
func (s *Server) complete(j *Job) {
	s.busy[j.Class] += s.eng.Now() - s.runFrom
	s.running, s.runEv = nil, nil
	if j.Done != nil {
		j.Done()
	}
	s.dispatch()
}

// Busy returns the cumulative busy time of class c up to the current
// simulated time, including the in-progress portion of a running job.
func (s *Server) Busy(c Class) float64 {
	total := s.busy[c]
	if s.running != nil && s.running.Class == c {
		total += s.eng.Now() - s.runFrom
	}
	return total
}

// TotalBusy returns cumulative busy time across all classes.
func (s *Server) TotalBusy() float64 {
	total := 0.0
	for c := Class(0); c < numClasses; c++ {
		total += s.Busy(c)
	}
	return total
}

// QueueLen returns the number of jobs waiting (not in service) in class c.
func (s *Server) QueueLen(c Class) int { return len(s.queues[c]) }

// Idle reports whether the server has no job in service.
func (s *Server) Idle() bool { return s.running == nil }
