package server

import (
	"math"
	"testing"

	"granulock/internal/sim"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSingleJobCompletes(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	var doneAt float64 = -1
	s.Submit(&Job{Size: 2.5, Class: WorkClass, Done: func() { doneAt = e.Now() }})
	e.Run()
	if !almostEqual(doneAt, 2.5) {
		t.Fatalf("job completed at %v, want 2.5", doneAt)
	}
	if !almostEqual(s.Busy(WorkClass), 2.5) {
		t.Fatalf("busy = %v, want 2.5", s.Busy(WorkClass))
	}
}

func TestFIFOWithinClass(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Submit(&Job{Size: 1, Class: WorkClass, Done: func() { order = append(order, i) }})
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order %v, want [0 1 2]", order)
	}
	if !almostEqual(e.Now(), 3) {
		t.Fatalf("final time %v, want 3", e.Now())
	}
}

func TestPreemptiveResume(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	var workDone, lockDone float64 = -1, -1
	s.Submit(&Job{Size: 10, Class: WorkClass, Done: func() { workDone = e.Now() }})
	// At t=3, a lock job of size 2 arrives: work should be preempted and
	// finish at 10+2=12; lock finishes at 5.
	e.At(3, func() {
		s.Submit(&Job{Size: 2, Class: LockClass, Done: func() { lockDone = e.Now() }})
	})
	e.Run()
	if !almostEqual(lockDone, 5) {
		t.Fatalf("lock job done at %v, want 5", lockDone)
	}
	if !almostEqual(workDone, 12) {
		t.Fatalf("preempted work done at %v, want 12", workDone)
	}
	if !almostEqual(s.Busy(LockClass), 2) || !almostEqual(s.Busy(WorkClass), 10) {
		t.Fatalf("busy lock=%v work=%v, want 2/10", s.Busy(LockClass), s.Busy(WorkClass))
	}
}

func TestPreemptedJobResumesBeforeQueuedPeers(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	var order []string
	s.Submit(&Job{Size: 4, Class: WorkClass, Done: func() { order = append(order, "first") }})
	s.Submit(&Job{Size: 1, Class: WorkClass, Done: func() { order = append(order, "second") }})
	e.At(1, func() {
		s.Submit(&Job{Size: 1, Class: LockClass, Done: func() { order = append(order, "lock") }})
	})
	e.Run()
	want := []string{"lock", "first", "second"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestNestedPreemption(t *testing.T) {
	// Lock jobs arriving back to back extend the work job additively.
	var e sim.Engine
	s := New(&e, "cpu0")
	var workDone float64
	s.Submit(&Job{Size: 5, Class: WorkClass, Done: func() { workDone = e.Now() }})
	e.At(1, func() { s.Submit(&Job{Size: 3, Class: LockClass}) })
	e.At(2, func() { s.Submit(&Job{Size: 2, Class: LockClass}) })
	e.Run()
	// Work runs [0,1), lock1 [1,4), lock2 [4,6), work resumes [6,10].
	if !almostEqual(workDone, 10) {
		t.Fatalf("work done at %v, want 10", workDone)
	}
	if !almostEqual(s.Busy(LockClass), 5) {
		t.Fatalf("lock busy %v, want 5", s.Busy(LockClass))
	}
}

func TestEqualPriorityDoesNotPreempt(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	var order []int
	s.Submit(&Job{Size: 3, Class: WorkClass, Done: func() { order = append(order, 1) }})
	e.At(1, func() {
		s.Submit(&Job{Size: 1, Class: WorkClass, Done: func() { order = append(order, 2) }})
	})
	e.Run()
	if order[0] != 1 {
		t.Fatalf("equal-priority arrival preempted: %v", order)
	}
}

func TestZeroSizeJob(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	ran := false
	s.Submit(&Job{Size: 0, Class: WorkClass, Done: func() { ran = true }})
	e.Run()
	if !ran {
		t.Fatal("zero-size job Done did not run")
	}
	if s.TotalBusy() != 0 {
		t.Fatalf("zero-size job accrued busy time %v", s.TotalBusy())
	}
}

func TestNegativeSizePanics(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	s.Submit(&Job{Size: -1, Class: WorkClass})
}

func TestBusyIncludesInProgress(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	s.Submit(&Job{Size: 10, Class: WorkClass})
	var mid float64
	e.At(4, func() { mid = s.Busy(WorkClass) })
	e.Run()
	if !almostEqual(mid, 4) {
		t.Fatalf("in-progress busy at t=4 was %v, want 4", mid)
	}
}

func TestQueueLenAndIdle(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0")
	if !s.Idle() {
		t.Fatal("new server not idle")
	}
	s.Submit(&Job{Size: 1, Class: WorkClass})
	s.Submit(&Job{Size: 1, Class: WorkClass})
	s.Submit(&Job{Size: 1, Class: WorkClass})
	if s.Idle() {
		t.Fatal("server idle with job in service")
	}
	if got := s.QueueLen(WorkClass); got != 2 {
		t.Fatalf("QueueLen = %d, want 2", got)
	}
	e.Run()
	if !s.Idle() || s.QueueLen(WorkClass) != 0 {
		t.Fatal("server not drained")
	}
}

func TestWorkConservation(t *testing.T) {
	// Total busy time equals total submitted demand once drained,
	// regardless of preemption pattern.
	var e sim.Engine
	s := New(&e, "cpu0")
	total := 0.0
	for i := 0; i < 50; i++ {
		size := float64(i%7+1) * 0.3
		class := WorkClass
		if i%3 == 0 {
			class = LockClass
		}
		total += size
		at := float64(i) * 0.2
		e.At(at, func() { s.Submit(&Job{Size: size, Class: class}) })
	}
	e.Run()
	if !almostEqual(s.TotalBusy(), total) {
		t.Fatalf("TotalBusy = %v, want %v", s.TotalBusy(), total)
	}
}

func TestSJFPicksShortestQueuedJob(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0", WithDiscipline(SJF))
	var order []string
	s.Submit(&Job{Size: 2, Class: WorkClass, Done: func() { order = append(order, "first") }})
	// While "first" is in service, a long and a short job queue up.
	s.Submit(&Job{Size: 10, Class: WorkClass, Done: func() { order = append(order, "long") }})
	s.Submit(&Job{Size: 1, Class: WorkClass, Done: func() { order = append(order, "short") }})
	e.Run()
	want := []string{"first", "short", "long"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SJF order %v, want %v", order, want)
		}
	}
}

func TestSJFNonPreemptiveWithinClass(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0", WithDiscipline(SJF))
	var first string
	s.Submit(&Job{Size: 10, Class: WorkClass, Done: func() {
		if first == "" {
			first = "long"
		}
	}})
	e.At(1, func() {
		s.Submit(&Job{Size: 1, Class: WorkClass, Done: func() {
			if first == "" {
				first = "short"
			}
		}})
	})
	e.Run()
	if first != "long" {
		t.Fatalf("SJF preempted within its class (first done: %q)", first)
	}
}

func TestSJFLockClassStaysFIFO(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0", WithDiscipline(SJF))
	var order []int
	s.Submit(&Job{Size: 1, Class: LockClass, Done: func() { order = append(order, 0) }})
	s.Submit(&Job{Size: 5, Class: LockClass, Done: func() { order = append(order, 1) }})
	s.Submit(&Job{Size: 1, Class: LockClass, Done: func() { order = append(order, 2) }})
	e.Run()
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("lock class not FIFO under SJF: %v", order)
	}
}

func TestSJFWorkConservation(t *testing.T) {
	var e sim.Engine
	s := New(&e, "cpu0", WithDiscipline(SJF))
	total := 0.0
	for i := 0; i < 30; i++ {
		size := float64(i%5+1) * 0.7
		total += size
		at := float64(i) * 0.3
		e.At(at, func() { s.Submit(&Job{Size: size, Class: WorkClass}) })
	}
	e.Run()
	if !almostEqual(s.TotalBusy(), total) {
		t.Fatalf("TotalBusy = %v, want %v", s.TotalBusy(), total)
	}
}

func TestDisciplineString(t *testing.T) {
	if FCFS.String() != "fcfs" || SJF.String() != "sjf" {
		t.Fatal("discipline names")
	}
	if Discipline(7).String() == "" {
		t.Fatal("unknown discipline String empty")
	}
}

func TestClassString(t *testing.T) {
	if LockClass.String() != "lock" || WorkClass.String() != "work" {
		t.Fatal("Class.String broken")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class String empty")
	}
}

func BenchmarkServerThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e sim.Engine
		s := New(&e, "cpu")
		for j := 0; j < 100; j++ {
			s.Submit(&Job{Size: 1, Class: WorkClass})
		}
		e.Run()
	}
}
