package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshot file format (see docs/WAL.md):
//
//	header:  magic "GWALSNP1" (8) | nlogs uint32 | nentries uint64 |
//	         seqs [nlogs]int64 | crc32c(header) uint32
//	body:    chunks of up to snapChunk entries, each:
//	         count uint32 | count × (entity int64, value int64) |
//	         crc32c(chunk) uint32
//
// Every section is independently checksummed, so a snapshot cut short
// or bit-flipped anywhere fails ReadSnapshot with ErrCorrupt — a
// half-written snapshot is never loadable, which is what makes the
// write-tmp-then-rename install atomic in effect.

// snapMagic identifies a snapshot file.
var snapMagic = [8]byte{'G', 'W', 'A', 'L', 'S', 'N', 'P', '1'}

// snapChunk is the maximum entries per checksummed body chunk.
const snapChunk = 4096

// SnapshotEntry is one entity's value at the snapshot point.
type SnapshotEntry struct {
	Entity int64
	Value  int64
}

// Snapshot is a point-in-time image of the store, positioned behind the
// per-partition log sequence numbers in Seqs: replaying each log's
// records after Seqs[k] on top of Entries reproduces the live state.
type Snapshot struct {
	// Seqs is the per-partition durable sequence vector at the
	// snapshot point (length = number of logs in the Set; length 1 for
	// a single log).
	Seqs []int64
	// Entries lists every entity's value.
	Entries []SnapshotEntry
}

// WriteSnapshot encodes s to w.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	head := make([]byte, 8+4+8+8*len(s.Seqs)+4)
	copy(head, snapMagic[:])
	binary.LittleEndian.PutUint32(head[8:], uint32(len(s.Seqs)))
	binary.LittleEndian.PutUint64(head[12:], uint64(len(s.Entries)))
	off := 20
	for _, q := range s.Seqs {
		binary.LittleEndian.PutUint64(head[off:], uint64(q))
		off += 8
	}
	crc := crc32.Checksum(head[:off], crcTable)
	binary.LittleEndian.PutUint32(head[off:], crc)
	if _, err := w.Write(head); err != nil {
		return fmt.Errorf("wal: snapshot header: %w", err)
	}

	buf := make([]byte, 4+16*snapChunk+4)
	for i := 0; i < len(s.Entries); i += snapChunk {
		end := i + snapChunk
		if end > len(s.Entries) {
			end = len(s.Entries)
		}
		chunk := s.Entries[i:end]
		binary.LittleEndian.PutUint32(buf, uint32(len(chunk)))
		p := 4
		for _, e := range chunk {
			binary.LittleEndian.PutUint64(buf[p:], uint64(e.Entity))
			binary.LittleEndian.PutUint64(buf[p+8:], uint64(e.Value))
			p += 16
		}
		crc := crc32.Checksum(buf[:p], crcTable)
		binary.LittleEndian.PutUint32(buf[p:], crc)
		if _, err := w.Write(buf[:p+4]); err != nil {
			return fmt.Errorf("wal: snapshot chunk: %w", err)
		}
	}
	return nil
}

// ReadSnapshot decodes a snapshot from r, verifying every checksum. Any
// truncation, bit flip, or trailing garbage yields an error wrapping
// ErrCorrupt.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	fixed := make([]byte, 20)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return nil, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, err)
	}
	if [8]byte(fixed[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	nlogs := binary.LittleEndian.Uint32(fixed[8:])
	nentries := binary.LittleEndian.Uint64(fixed[12:])
	if nlogs == 0 || nlogs > MaxPartitions {
		return nil, fmt.Errorf("%w: snapshot log count %d", ErrCorrupt, nlogs)
	}
	rest := make([]byte, 8*int(nlogs)+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, err)
	}
	crc := crc32.Checksum(fixed, crcTable)
	crc = crc32.Update(crc, crcTable, rest[:8*int(nlogs)])
	if binary.LittleEndian.Uint32(rest[8*int(nlogs):]) != crc {
		return nil, fmt.Errorf("%w: snapshot header checksum", ErrCorrupt)
	}
	s := &Snapshot{Seqs: make([]int64, nlogs)}
	for i := range s.Seqs {
		s.Seqs[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
	}

	// Body: the header's entry count bounds allocation; each chunk's
	// own checksum guards its contents.
	if nentries > 1<<32 {
		return nil, fmt.Errorf("%w: snapshot entry count %d", ErrCorrupt, nentries)
	}
	// Cap the upfront allocation: a forged header with a huge count
	// still has to back it with checksummed chunks before we grow.
	capHint := nentries
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	s.Entries = make([]SnapshotEntry, 0, capHint)
	var cbuf []byte
	for uint64(len(s.Entries)) < nentries {
		var chead [4]byte
		if _, err := io.ReadFull(r, chead[:]); err != nil {
			return nil, fmt.Errorf("%w: snapshot chunk header: %v", ErrCorrupt, err)
		}
		count := binary.LittleEndian.Uint32(chead[:])
		if count == 0 || count > snapChunk || uint64(len(s.Entries))+uint64(count) > nentries {
			return nil, fmt.Errorf("%w: snapshot chunk count %d", ErrCorrupt, count)
		}
		need := 16*int(count) + 4
		if cap(cbuf) < need {
			cbuf = make([]byte, need)
		}
		cbuf = cbuf[:need]
		if _, err := io.ReadFull(r, cbuf); err != nil {
			return nil, fmt.Errorf("%w: snapshot chunk: %v", ErrCorrupt, err)
		}
		crc := crc32.Checksum(chead[:], crcTable)
		crc = crc32.Update(crc, crcTable, cbuf[:16*int(count)])
		if binary.LittleEndian.Uint32(cbuf[16*int(count):]) != crc {
			return nil, fmt.Errorf("%w: snapshot chunk checksum", ErrCorrupt)
		}
		for i := 0; i < int(count); i++ {
			s.Entries = append(s.Entries, SnapshotEntry{
				Entity: int64(binary.LittleEndian.Uint64(cbuf[16*i:])),
				Value:  int64(binary.LittleEndian.Uint64(cbuf[16*i+8:])),
			})
		}
	}
	// A snapshot is a complete file: trailing bytes mean the header and
	// body came from different writes.
	var trail [1]byte
	if n, _ := io.ReadFull(r, trail[:]); n != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after snapshot body", ErrCorrupt)
	}
	return s, nil
}

// errSnapshotMissing distinguishes "no snapshot yet" from "snapshot
// corrupt" for Dir.Recover.
var errSnapshotMissing = errors.New("wal: no snapshot")
