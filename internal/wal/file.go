package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Log file format (see docs/WAL.md):
//
//	header:  magic "GWALLOG1" (8) | base int64 (8) | crc32c(header) (4)
//	body:    fixed-size records (recordSize bytes each)
//
// base is the sequence number of the record that physically follows the
// header — zero for a fresh log, the truncation point after Truncate.
// The file may be preallocated beyond its logical end; the zero fill
// never decodes as a valid record (kind 0 is invalid and the checksum
// cannot match), so the open-time scan stops at the logical end.

var logMagic = [8]byte{'G', 'W', 'A', 'L', 'L', 'O', 'G', '1'}

// logHeaderSize is the fixed log file header length.
const logHeaderSize = 8 + 8 + 4

// LogHeaderSize is the log file header length in bytes, exported for
// tooling that computes record offsets.
const LogHeaderSize = logHeaderSize

// defaultPreallocate is how far OpenFile extends a fresh log file so
// appends rewrite allocated blocks instead of growing the file.
const defaultPreallocate = 1 << 20

// WithPreallocate sets the byte size a fresh log file is extended to at
// creation (0 disables preallocation).
func WithPreallocate(size int64) LogOption {
	return func(o *logOptions) { o.preallocate = size }
}

// FaultInjector intercepts sink I/O for crash testing. It is consulted
// before every write ("write", with the byte count) and sync ("sync",
// 0). Returning a nil error lets the operation proceed. Returning an
// error fails the operation; for a write, the first allow bytes are
// still written — a torn write, exactly what a crash leaves behind. The
// injector must be safe for concurrent use (one injector is typically
// shared across all logs of a Set so every partition "loses power" at
// the same moment).
type FaultInjector func(op string, n int) (allow int, err error)

// WithFaultInjector installs inj on the log's sink and, for OpenDir, on
// snapshot staging writes.
func WithFaultInjector(inj FaultInjector) LogOption {
	return func(o *logOptions) { o.injector = inj }
}

// faultSink threads a FaultInjector in front of any flushSink.
type faultSink struct {
	s      flushSink
	inject FaultInjector
}

func (f *faultSink) Write(p []byte) (int, error) {
	allow, err := f.inject("write", len(p))
	if err != nil {
		if allow > 0 {
			if allow > len(p) {
				allow = len(p)
			}
			f.s.Write(p[:allow])
		}
		return allow, err
	}
	return f.s.Write(p)
}

func (f *faultSink) Sync() error {
	if _, err := f.inject("sync", 0); err != nil {
		return err
	}
	return f.s.Sync()
}

func (f *faultSink) Close() error {
	if c, ok := f.s.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// fileSink is the file-backed flushSink: positioned writes at a tracked
// offset (so preallocated tails are overwritten in place), fsync on
// Sync, and physical prefix truncation via rewrite-and-rename.
type fileSink struct {
	f    *os.File
	path string
	off  int64 // next write offset
	base int64 // sequence number at the header
}

func (s *fileSink) Write(p []byte) (int, error) {
	n, err := s.f.WriteAt(p, s.off)
	s.off += int64(n)
	return n, err
}

func (s *fileSink) Sync() error { return s.f.Sync() }

func (s *fileSink) Close() error { return s.f.Close() }

// truncateTo rewrites the file keeping only records after sequence
// number seq: copy the tail into a temp file under a header with
// base=seq, fsync, rename over the original, reopen.
func (s *fileSink) truncateTo(seq int64) error {
	skip := logHeaderSize + (seq-s.base)*recordSize
	if skip < logHeaderSize || skip > s.off {
		return fmt.Errorf("truncation point %d outside log [%d,%d]", seq, s.base, s.base+(s.off-logHeaderSize)/recordSize)
	}
	tmpPath := s.path + ".trunc"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	if _, err := tmp.Write(encodeLogHeader(seq)); err != nil {
		tmp.Close()
		return err
	}
	if s.off > skip {
		if _, err := io.Copy(tmp, io.NewSectionReader(s.f, skip, s.off-skip)); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(s.path)); err != nil {
		return err
	}
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.f.Close()
	s.f = nf
	s.off = logHeaderSize + (s.off - skip)
	s.base = seq
	return nil
}

func encodeLogHeader(base int64) []byte {
	h := make([]byte, logHeaderSize)
	copy(h, logMagic[:])
	binary.LittleEndian.PutUint64(h[8:], uint64(base))
	binary.LittleEndian.PutUint32(h[16:], crc32.Checksum(h[:16], crcTable))
	return h
}

func decodeLogHeader(h []byte) (base int64, err error) {
	if len(h) < logHeaderSize || [8]byte(h[:8]) != logMagic {
		return 0, fmt.Errorf("%w: bad log header magic", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(h[16:]) != crc32.Checksum(h[:16], crcTable) {
		return 0, fmt.Errorf("%w: log header checksum", ErrCorrupt)
	}
	return int64(binary.LittleEndian.Uint64(h[8:])), nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// OpenFile opens (or creates) a file-backed group-commit Log at path.
// A fresh file gets a header and is preallocated (WithPreallocate,
// default 1 MiB). Reopening scans the valid record prefix — stopping at
// the first torn or zero-filled slot — and continues appending from the
// logical end; sequence numbers continue from base + intact records.
func OpenFile(path string, opts ...LogOption) (*Log, error) {
	o := logOptions{preallocate: defaultPreallocate}
	for _, opt := range opts {
		opt(&o)
	}
	sink, seq, err := openFileSink(path, o.preallocate)
	if err != nil {
		return nil, err
	}
	return newLogAt(sink, sink.base, seq, o), nil
}

// openFileSink opens path as a log file and returns the sink positioned
// at the logical end, plus the durable sequence number found there.
func openFileSink(path string, preallocate int64) (*fileSink, int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	s := &fileSink{f: f, path: path}
	if info.Size() == 0 {
		// Fresh log: header, durability, preallocation.
		if _, err := f.WriteAt(encodeLogHeader(0), 0); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("wal: init %s: %w", path, err)
		}
		if preallocate > logHeaderSize {
			if err := f.Truncate(preallocate); err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("wal: preallocate %s: %w", path, err)
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
		s.off = logHeaderSize
		return s, 0, nil
	}

	head := make([]byte, logHeaderSize)
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %s: %w: short header", path, ErrCorrupt)
	}
	base, err := decodeLogHeader(head)
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %s: %w", path, err)
	}
	// Scan the intact record prefix to find the logical end.
	r := NewReader(io.NewSectionReader(f, logHeaderSize, info.Size()-logHeaderSize))
	var n int64
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	s.base = base
	s.off = logHeaderSize + n*recordSize
	return s, base + n, nil
}

// ReadFile opens a log file written by OpenFile for scanning: it
// validates the header and returns a Reader over every record in the
// file, the header's base sequence number, and the file handle to close
// when done. The Reader stops cleanly at the logical end (zero-filled
// preallocation) and reports a torn tail as ErrCorrupt, exactly like
// recovery's scan.
func ReadFile(path string) (*Reader, int64, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, nil, err
	}
	head := make([]byte, logHeaderSize)
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return nil, 0, nil, fmt.Errorf("wal: %s: %w: short header", path, ErrCorrupt)
	}
	base, err := decodeLogHeader(head)
	if err != nil {
		f.Close()
		return nil, 0, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	return NewReader(io.NewSectionReader(f, logHeaderSize, info.Size()-logHeaderSize)), base, f, nil
}

// tailReader returns a Reader over path's records after sequence number
// seq, and the file handle to close when done.
func tailReader(path string, seq int64) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	head := make([]byte, logHeaderSize)
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %s: %w: short header", path, ErrCorrupt)
	}
	base, err := decodeLogHeader(head)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	if seq < base {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %s truncated past replay point (base %d > seq %d)", path, base, seq)
	}
	start := logHeaderSize + (seq-base)*recordSize
	if start > info.Size() {
		start = info.Size()
	}
	return NewReader(io.NewSectionReader(f, start, info.Size()-start)), f, nil
}

// Dir is a directory holding a Set's per-partition log files plus the
// current snapshot: wal-<k>.log for each partition and snapshot.snap.
type Dir struct {
	path  string
	opts  logOptions
	set   *Set
	sinks []*fileSink
	// fail is the checkpoint failpoint hook (SetFailpoint), consulted
	// between install stages so crash tests can kill mid-snapshot.
	fail func(stage string) error
}

// logPath returns partition k's file path under dir.
func logPath(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", k))
}

// snapPath returns the snapshot path under dir.
func snapPath(dir string) string { return filepath.Join(dir, "snapshot.snap") }

// OpenDir opens (creating if needed) a WAL directory with one log per
// partition. Reopening an existing directory positions every log at its
// logical end; call Recover to rebuild state before writing. The
// partition count must match the directory's existing layout.
func OpenDir(path string, parts int, opts ...LogOption) (*Dir, error) {
	if parts < 1 || parts > MaxPartitions {
		return nil, fmt.Errorf("wal: %d partitions outside [1,%d]", parts, MaxPartitions)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	o := logOptions{preallocate: defaultPreallocate}
	for _, opt := range opts {
		opt(&o)
	}
	// Refuse a layout mismatch: an extra existing log file means the
	// directory was written with more partitions.
	if _, err := os.Stat(logPath(path, parts)); err == nil {
		return nil, fmt.Errorf("wal: %s holds more than %d partition logs", path, parts)
	}
	d := &Dir{path: path, opts: o}
	logs := make([]*Log, parts)
	for k := 0; k < parts; k++ {
		sink, seq, err := openFileSink(logPath(path, k), o.preallocate)
		if err != nil {
			d.closeSinks()
			return nil, err
		}
		d.sinks = append(d.sinks, sink)
		logs[k] = newLogAt(sink, sink.base, seq, o)
	}
	set, err := NewSet(logs...)
	if err != nil {
		d.closeSinks()
		return nil, err
	}
	d.set = set
	return d, nil
}

func (d *Dir) closeSinks() {
	for _, s := range d.sinks {
		s.Close()
	}
}

// Set returns the directory's log set.
func (d *Dir) Set() *Set { return d.set }

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// Close closes the set (draining in-flight flushes) and the files.
func (d *Dir) Close() error { return d.set.Close() }

// SetFailpoint installs a hook consulted between snapshot-install
// stages ("snapshot-tmp", "snapshot-installed", "truncate-<k>");
// returning an error aborts the install at that stage. Crash harnesses
// use it to die mid-checkpoint.
func (d *Dir) SetFailpoint(f func(stage string) error) { d.fail = f }

func (d *Dir) failAt(stage string) error {
	if d.fail == nil {
		return nil
	}
	return d.fail(stage)
}

// injectWriter applies the Dir's FaultInjector to snapshot staging
// writes so a shared injector can tear a snapshot mid-write.
type injectWriter struct {
	w      io.Writer
	inject FaultInjector
}

func (iw injectWriter) Write(p []byte) (int, error) {
	if iw.inject != nil {
		allow, err := iw.inject("write", len(p))
		if err != nil {
			if allow > 0 {
				if allow > len(p) {
					allow = len(p)
				}
				iw.w.Write(p[:allow])
			}
			return allow, err
		}
	}
	return iw.w.Write(p)
}

// Install atomically publishes snapshot s and truncates each log's
// replayed prefix. The snapshot is staged to a temp file, fsynced, then
// renamed over snapshot.snap (with a directory sync), so a crash at any
// point leaves either the old snapshot or the new one — never a torn
// one under the live name. Truncation runs after the rename; a crash
// between the two merely leaves longer logs, which the next recovery
// replays from the snapshot's sequence vector anyway.
func (d *Dir) Install(s *Snapshot) error {
	if len(s.Seqs) != d.set.Len() {
		return fmt.Errorf("wal: snapshot covers %d logs, dir has %d", len(s.Seqs), d.set.Len())
	}
	tmpPath := snapPath(d.path) + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	if err := WriteSnapshot(injectWriter{w: tmp, inject: d.opts.injector}, s); err != nil {
		tmp.Close()
		return err
	}
	if d.opts.injector != nil {
		if _, err := d.opts.injector("sync", 0); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := d.failAt("snapshot-tmp"); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, snapPath(d.path)); err != nil {
		return err
	}
	if err := syncDir(d.path); err != nil {
		return err
	}
	if err := d.failAt("snapshot-installed"); err != nil {
		return err
	}
	for k := 0; k < d.set.Len(); k++ {
		if err := d.set.Log(k).Truncate(s.Seqs[k]); err != nil {
			return err
		}
		if err := d.failAt(fmt.Sprintf("truncate-%d", k)); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot reads the current snapshot, or (nil, nil) when none has
// been installed yet.
func (d *Dir) LoadSnapshot() (*Snapshot, error) {
	f, err := os.Open(snapPath(d.path))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", snapPath(d.path), err)
	}
	if len(s.Seqs) != d.set.Len() {
		return nil, fmt.Errorf("wal: %s covers %d logs, dir has %d", snapPath(d.path), len(s.Seqs), d.set.Len())
	}
	return s, nil
}

// Recover rebuilds state: the snapshot's entries first, then each log's
// tail past the snapshot's sequence vector, applied through RecoverSet
// (which verifies the cross-partition ordering rule). Leftover staging
// files from an interrupted install are removed. Call it on a freshly
// opened Dir before appending.
func (d *Dir) Recover(apply func(entity int64, value int64)) (SetRecoverStats, error) {
	os.Remove(snapPath(d.path) + ".tmp")
	snap, err := d.LoadSnapshot()
	if err != nil {
		return SetRecoverStats{}, err
	}
	seqs := make([]int64, d.set.Len())
	if snap != nil {
		copy(seqs, snap.Seqs)
		for _, e := range snap.Entries {
			apply(e.Entity, e.Value)
		}
	}
	readers := make([]*Reader, d.set.Len())
	closers := make([]io.Closer, 0, d.set.Len())
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	for k := 0; k < d.set.Len(); k++ {
		base := d.set.Log(k).Base()
		if seqs[k] < base {
			return SetRecoverStats{}, fmt.Errorf("wal: log %d truncated to %d but snapshot only covers %d", k, base, seqs[k])
		}
		r, c, err := tailReader(logPath(d.path, k), seqs[k])
		if err != nil {
			return SetRecoverStats{}, err
		}
		readers[k] = r
		closers = append(closers, c)
	}
	return RecoverSet(readers, apply)
}
