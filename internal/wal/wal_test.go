package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTripSingleRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := Record{Kind: KindUpdate, Txn: 42, Entity: 7, Before: 100, After: 75}
	if err := w.Append(want); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 1 {
		t.Fatalf("records %d", w.Records())
	}
	r := NewReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, txn, entity, before, after int64) bool {
		rec := Record{
			Kind:   Kind(kindRaw%4) + KindBegin,
			Txn:    txn,
			Entity: entity,
			Before: before,
			After:  after,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Append(rec); err != nil {
			return false
		}
		got, err := NewReader(&buf).Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendGroupContiguous(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	group := []Record{
		{Kind: KindBegin, Txn: 1},
		{Kind: KindUpdate, Txn: 1, Entity: 3, Before: 0, After: 5},
		{Kind: KindCommit, Txn: 1},
	}
	if err := w.AppendGroup(group); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range group {
		got, err := r.Next()
		if err != nil || got != want {
			t.Fatalf("record %d: %+v, %v", i, got, err)
		}
	}
}

func TestTornTailDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(Record{Kind: KindBegin, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindCommit, Txn: 1}); err != nil {
		t.Fatal(err)
	}
	// Tear the second record in half.
	torn := buf.Bytes()[:recordSize+recordSize/2]
	r := NewReader(bytes.NewReader(torn))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should read cleanly: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail error = %v, want ErrCorrupt", err)
	}
}

func TestBitFlipDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(Record{Kind: KindUpdate, Txn: 9, Entity: 1, Before: 2, After: 3}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[5] ^= 0x40 // flip a bit in the txn field
	if _, err := NewReader(bytes.NewReader(data)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bit flip not detected")
	}
}

func TestBadKindDetected(t *testing.T) {
	// A record with a valid checksum but invalid kind must be rejected
	// (defense against logic bugs, not just torn writes).
	var buf [recordSize]byte
	r := Record{Kind: Kind(99), Txn: 1}
	r.marshal(buf[:])
	if _, err := unmarshal(buf[:]); !errors.Is(err, ErrCorrupt) {
		t.Fatal("invalid kind accepted")
	}
}

func TestSyncNoopWithoutSyncer(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

type syncCounter struct {
	bytes.Buffer
	syncs int
}

func (s *syncCounter) Sync() error { s.syncs++; return nil }

func TestSyncCallsSinkSyncer(t *testing.T) {
	var sink syncCounter
	w := NewWriter(&sink)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if sink.syncs != 1 {
		t.Fatalf("syncs %d", sink.syncs)
	}
}

// buildLog writes a canned multi-transaction log and returns its bytes.
func buildLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	emit := func(rs ...Record) {
		t.Helper()
		if err := w.AppendGroup(rs); err != nil {
			t.Fatal(err)
		}
	}
	// Txn 1 commits: entity 0: 10 -> 5; entity 1: 10 -> 15.
	emit(
		Record{Kind: KindBegin, Txn: 1},
		Record{Kind: KindUpdate, Txn: 1, Entity: 0, Before: 10, After: 5},
		Record{Kind: KindUpdate, Txn: 1, Entity: 1, Before: 10, After: 15},
		Record{Kind: KindCommit, Txn: 1},
	)
	// Txn 2 aborts: its update must be ignored.
	emit(
		Record{Kind: KindBegin, Txn: 2},
		Record{Kind: KindUpdate, Txn: 2, Entity: 0, Before: 5, After: 9999},
		Record{Kind: KindAbort, Txn: 2},
	)
	// Txn 3 commits over txn 1's result: entity 1: 15 -> 20.
	emit(
		Record{Kind: KindBegin, Txn: 3},
		Record{Kind: KindUpdate, Txn: 3, Entity: 1, Before: 15, After: 20},
		Record{Kind: KindCommit, Txn: 3},
	)
	// Txn 4 never commits (in flight at the crash).
	emit(
		Record{Kind: KindBegin, Txn: 4},
		Record{Kind: KindUpdate, Txn: 4, Entity: 2, Before: 10, After: 0},
	)
	return buf.Bytes()
}

func TestRecoverRedoesCommittedOnly(t *testing.T) {
	state := map[int64]int64{0: 10, 1: 10, 2: 10}
	stats, err := Recover(NewReader(bytes.NewReader(buildLog(t))), func(e, v int64) {
		state[e] = v
	})
	if err != nil {
		t.Fatal(err)
	}
	if state[0] != 5 || state[1] != 20 || state[2] != 10 {
		t.Fatalf("recovered state %v, want {0:5 1:20 2:10}", state)
	}
	if stats.Committed != 2 || stats.Aborted != 1 || stats.Incomplete != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Torn {
		t.Fatal("clean log reported torn")
	}
}

func TestRecoverTornTail(t *testing.T) {
	log := buildLog(t)
	// Tear inside txn 3's commit record (the 10th record, index 9):
	// txn 3's updates must then be discarded.
	cut := recordSize*9 + 3
	state := map[int64]int64{0: 10, 1: 10, 2: 10}
	stats, err := Recover(NewReader(bytes.NewReader(log[:cut])), func(e, v int64) {
		state[e] = v
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Torn {
		t.Fatal("torn tail not reported")
	}
	if state[0] != 5 || state[1] != 15 || state[2] != 10 {
		t.Fatalf("recovered state %v, want only txn 1's effects", state)
	}
	if stats.Committed != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestRecoverEveryPrefixIsConsistent(t *testing.T) {
	// Crash anywhere: recovery must apply a prefix of commits, never a
	// partial transaction. Txn effects here are transfers, so the total
	// is invariant under any committed prefix.
	log := buildLog(t)
	for cut := 0; cut <= len(log); cut++ {
		state := map[int64]int64{0: 10, 1: 10, 2: 10}
		_, err := Recover(NewReader(bytes.NewReader(log[:cut])), func(e, v int64) {
			state[e] = v
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Valid post-states: {} (nothing), txn1 only, txn1+txn3.
		ok := (state[0] == 10 && state[1] == 10) ||
			(state[0] == 5 && state[1] == 15) ||
			(state[0] == 5 && state[1] == 20)
		if !ok || state[2] != 10 {
			t.Fatalf("cut %d: inconsistent recovered state %v", cut, state)
		}
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	stats, err := Recover(NewReader(bytes.NewReader(nil)), func(int64, int64) {
		t.Fatal("apply called on empty log")
	})
	if err != nil || stats.Records != 0 {
		t.Fatalf("empty log: %+v, %v", stats, err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindBegin: "begin", KindUpdate: "update", KindCommit: "commit", KindAbort: "abort"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kind %d String %q", k, k.String())
		}
	}
	if Kind(0).String() == "" {
		t.Fatal("unknown kind String empty")
	}
}

func BenchmarkAppend(b *testing.B) {
	w := NewWriter(io.Discard)
	rec := Record{Kind: KindUpdate, Txn: 1, Entity: 2, Before: 3, After: 4}
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
