package wal

import (
	"bytes"
	"testing"
)

// FuzzReaderNext feeds arbitrary bytes to the log reader: it must never
// panic and must never return a record that fails re-serialization
// round-trip (i.e. whatever it accepts must be internally consistent).
func FuzzReaderNext(f *testing.F) {
	// Seed with a valid log and a few mutations of it.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.AppendGroup([]Record{
		{Kind: KindBegin, Txn: 1},
		{Kind: KindUpdate, Txn: 1, Entity: 3, Before: 7, After: 9},
		{Kind: KindCommit, Txn: 1},
	})
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	mutated := append([]byte(nil), valid...)
	mutated[10] ^= 0xff
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			rec, err := r.Next()
			if err != nil {
				return // EOF or corruption: both fine
			}
			// Anything accepted must survive a marshal round trip.
			var buf [recordSize]byte
			rec.marshal(buf[:])
			again, err := unmarshal(buf[:])
			if err != nil || again != rec {
				t.Fatalf("accepted record does not round-trip: %+v", rec)
			}
		}
	})
}

// FuzzRecover runs full recovery over arbitrary bytes: it must neither
// panic nor report more commits than records.
func FuzzRecover(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.AppendGroup([]Record{
		{Kind: KindBegin, Txn: 1},
		{Kind: KindUpdate, Txn: 1, Entity: 0, Before: 1, After: 2},
		{Kind: KindCommit, Txn: 1},
		{Kind: KindBegin, Txn: 2},
		{Kind: KindAbort, Txn: 2},
	})
	f.Add(buf.Bytes())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		applied := 0
		stats, err := Recover(NewReader(bytes.NewReader(data)), func(int64, int64) { applied++ })
		if err != nil {
			t.Fatalf("recover returned hard error on fuzzed input: %v", err)
		}
		if stats.Committed > stats.Records {
			t.Fatalf("more commits (%d) than records (%d)", stats.Committed, stats.Records)
		}
	})
}
