package wal

import (
	"errors"
	"fmt"
	"io"
)

// MaxPartitions bounds a Set: commit records carry the partition set as
// a bitmask in their Entity field, which has 64 bits.
const MaxPartitions = 64

// Set is a group of per-partition Logs. The engine keys log k to node
// index k so a commit touching only node k syncs only log k; a
// cross-partition commit appends to every touched log in ascending
// partition order, with the commit record in each carrying the full
// partition mask. RecoverSet verifies the rule: a transaction is
// committed iff its commit record is present in every log of its mask.
type Set struct {
	logs []*Log
}

// NewSet builds a Set from per-partition logs (1..MaxPartitions).
func NewSet(logs ...*Log) (*Set, error) {
	if len(logs) == 0 {
		return nil, errors.New("wal: set needs at least one log")
	}
	if len(logs) > MaxPartitions {
		return nil, fmt.Errorf("wal: set of %d logs exceeds %d (mask is 64-bit)", len(logs), MaxPartitions)
	}
	for i, l := range logs {
		if l == nil {
			return nil, fmt.Errorf("wal: set log %d is nil", i)
		}
	}
	return &Set{logs: append([]*Log(nil), logs...)}, nil
}

// Len returns the number of partition logs.
func (s *Set) Len() int { return len(s.logs) }

// Log returns partition k's log.
func (s *Set) Log(k int) *Log { return s.logs[k] }

// Seqs returns every log's durable sequence number, indexed by
// partition.
func (s *Set) Seqs() []int64 {
	out := make([]int64, len(s.logs))
	for i, l := range s.logs {
		out[i] = l.Seq()
	}
	return out
}

// Close closes every log, returning the first error.
func (s *Set) Close() error {
	var first error
	for _, l := range s.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Mask returns the partition bitmask for parts.
func Mask(parts ...int) int64 {
	var m int64
	for _, p := range parts {
		m |= 1 << uint(p)
	}
	return m
}

// PartGroup is one partition's share of a transaction's records.
type PartGroup struct {
	// Part is the partition (log) index.
	Part int
	// Records is the group to append to that log; the caller sets each
	// commit record's Entity to the transaction's full partition mask.
	Records []Record
}

// Commit appends a transaction's per-partition groups and waits for
// durability. Groups must arrive in strictly ascending partition order
// — the cross-partition ordering rule recovery relies on: if the commit
// record is durable in log k, it is durable in every lower log of the
// mask, so a crash between logs leaves a prefix that recovery detects
// (and discards) rather than silently half-applies.
//
// Commit waits for each log in turn, so a multi-partition commit pays
// one group-commit latency per touched log; single-partition commits
// (the common case under the engine's node-keyed placement) pay one.
func (s *Set) Commit(groups []PartGroup) error {
	last := -1
	for _, g := range groups {
		if g.Part <= last {
			return fmt.Errorf("wal: set commit partitions out of order (%d after %d)", g.Part, last)
		}
		if g.Part >= len(s.logs) {
			return fmt.Errorf("wal: set commit partition %d out of range [0,%d)", g.Part, len(s.logs))
		}
		last = g.Part
	}
	for _, g := range groups {
		if err := s.logs[g.Part].Commit(g.Records); err != nil {
			return err
		}
	}
	return nil
}

// SetRecoverStats summarizes a multi-log recovery pass.
type SetRecoverStats struct {
	// Logs holds each partition log's scan stats.
	Logs []RecoverStats
	// Committed counts distinct transactions redone.
	Committed int
	// Aborted counts distinct transactions with an abort record.
	Aborted int
	// Incomplete counts distinct transactions with updates but no
	// outcome anywhere.
	Incomplete int
	// CrossPartial counts transactions whose commit record reached some
	// but not all logs of their mask — in flight across the ordering
	// rule at the crash; discarded.
	CrossPartial int
	// OrderViolations counts transactions whose surviving commit
	// records contradict the ascending-order rule: a commit durable in
	// log k but missing from a *lower* log in its mask. A crash can
	// only truncate the suffix of the ascending append sequence, so
	// this indicates log damage or a writer bug; the transaction is
	// discarded, like CrossPartial.
	OrderViolations int
	// MaxTxn is the highest transaction ID on any scanned record,
	// whatever its outcome (0 when the logs are empty). A writer
	// appending to recovered logs must number new transactions above
	// it: transaction IDs key recovery's evidence map, so an ID reused
	// while the old transaction's records survive merges two unrelated
	// transactions into one corrupt classification.
	MaxTxn int64
}

// setTxn accumulates one transaction's evidence across logs.
type setTxn struct {
	mask       int64 // union of commit-record masks
	commits    int64 // bitmask of logs where a commit record appeared
	hasUpdates bool
	aborted    bool
}

// logUpdate is one update record tagged with its transaction, kept in
// log order for the redo pass.
type logUpdate struct {
	txn    int64
	entity int64
	after  int64
}

// RecoverSet scans one Reader per partition log, decides each
// transaction's outcome under the cross-partition ordering rule, and
// redoes committed after-images through apply. A transaction is
// committed iff a commit record is present in every log of its mask (a
// mask of 0 means "only the log the record was read from" — the
// single-log legacy layout).
//
// Redo replays each log's updates in that log's order, which is correct
// under partitioned placement: every entity is logged in exactly one
// log, and locking serialized conflicting transactions, so per-entity
// update order equals that entity's log order.
func RecoverSet(readers []*Reader, apply func(entity int64, value int64)) (SetRecoverStats, error) {
	stats := SetRecoverStats{Logs: make([]RecoverStats, len(readers))}
	txns := make(map[int64]*setTxn)
	updates := make([][]logUpdate, len(readers))

	for k, r := range readers {
		ls := &stats.Logs[k]
		for {
			rec, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if errors.Is(err, ErrCorrupt) {
				ls.Torn = true
				break
			}
			if err != nil {
				return stats, err
			}
			ls.Records++
			if rec.Txn > ls.MaxTxn {
				ls.MaxTxn = rec.Txn
			}
			if rec.Txn > stats.MaxTxn {
				stats.MaxTxn = rec.Txn
			}
			t := txns[rec.Txn]
			if t == nil {
				t = &setTxn{}
				txns[rec.Txn] = t
			}
			switch rec.Kind {
			case KindUpdate:
				updates[k] = append(updates[k], logUpdate{txn: rec.Txn, entity: rec.Entity, after: rec.After})
				t.hasUpdates = true
			case KindCommit:
				ls.Committed++
				t.commits |= 1 << uint(k)
				if rec.Entity != 0 {
					t.mask |= rec.Entity
				} else {
					t.mask |= 1 << uint(k)
				}
			case KindAbort:
				ls.Aborted++
				t.aborted = true
			}
		}
	}

	committed := make(map[int64]bool)
	for id, t := range txns {
		switch {
		case t.aborted:
			stats.Aborted++
		case t.commits == 0:
			if t.hasUpdates {
				stats.Incomplete++
			}
		case t.commits&t.mask != t.mask:
			// Commit reached some logs of the mask but not all. Under
			// ascending-order appends the missing logs must be a suffix
			// of the mask; a commit present in a log *above* a missing
			// one is a violation.
			missing := t.mask &^ t.commits
			present := t.commits & t.mask
			if present != 0 && highestBit(present) > lowestBit(missing) {
				stats.OrderViolations++
			} else {
				stats.CrossPartial++
			}
		default:
			committed[id] = true
			stats.Committed++
		}
	}

	for k := range updates {
		for _, u := range updates[k] {
			if committed[u.txn] {
				apply(u.entity, u.after)
			}
		}
	}
	return stats, nil
}

func lowestBit(m int64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 64
}

func highestBit(m int64) int {
	for i := 63; i >= 0; i-- {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}
