package wal

import (
	"bytes"
	"errors"
	"testing"
)

func buildSnapshot(n int) *Snapshot {
	s := &Snapshot{Seqs: []int64{10, 0, 7}}
	for i := 0; i < n; i++ {
		s.Entries = append(s.Entries, SnapshotEntry{Entity: int64(i), Value: int64(100 - i)})
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, snapChunk - 1, snapChunk, snapChunk + 1, 3*snapChunk + 17} {
		want := buildSnapshot(n)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, want); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got.Seqs) != len(want.Seqs) || len(got.Entries) != len(want.Entries) {
			t.Fatalf("n=%d: shape mismatch", n)
		}
		for i := range want.Seqs {
			if got.Seqs[i] != want.Seqs[i] {
				t.Fatalf("n=%d: seq %d", n, i)
			}
		}
		for i := range want.Entries {
			if got.Entries[i] != want.Entries[i] {
				t.Fatalf("n=%d: entry %d", n, i)
			}
		}
	}
}

func TestSnapshotEveryTruncationDetected(t *testing.T) {
	// A snapshot cut short at ANY byte offset must fail ReadSnapshot:
	// that is what makes a half-written snapshot unloadable.
	want := buildSnapshot(snapChunk + 5)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every offset on a small snapshot would be slow on this big one;
	// check every offset in the header and chunk boundaries, and a
	// stride through the body.
	check := func(cut int) {
		t.Helper()
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d of %d: err %v, want ErrCorrupt", cut, len(full), err)
		}
	}
	for cut := 0; cut < 64 && cut < len(full); cut++ {
		check(cut)
	}
	for cut := 64; cut < len(full); cut += 509 {
		check(cut)
	}
	check(len(full) - 1)
}

func TestSnapshotBitFlipDetected(t *testing.T) {
	want := buildSnapshot(100)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, off := range []int{0, 9, 15, 25, 40, 60, len(full) - 3} {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x10
		if _, err := ReadSnapshot(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err %v, want ErrCorrupt", off, err)
		}
	}
}

func TestSnapshotTrailingGarbageDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, buildSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0xAA)
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing byte accepted")
	}
}

// FuzzReadSnapshot feeds arbitrary bytes to the snapshot decoder: it
// must never panic, and anything it accepts must re-encode to an image
// that decodes identically (mirrors FuzzReaderNext for the log codec).
func FuzzReadSnapshot(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteSnapshot(&buf, buildSnapshot(10))
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	mut := append([]byte(nil), valid...)
	mut[13] ^= 0xff
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte("GWALSNP1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // corrupt: fine
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, s); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		again, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if len(again.Seqs) != len(s.Seqs) || len(again.Entries) != len(s.Entries) {
			t.Fatal("snapshot round trip changed shape")
		}
	})
}
