// Package wal is a write-ahead log with redo recovery for the
// executable mini-DBMS. The paper's setting (ref [2], Bernstein,
// Hadzilacos & Goodman) pairs concurrency control with recovery; this
// package supplies the recovery half for internal/engine: committed
// transactions survive a crash, uncommitted ones vanish.
//
// The log is a stream of fixed-size binary records, each protected by a
// CRC-32 checksum. Recovery scans the log, tolerates a torn tail (a
// record cut short or corrupted by the crash ends the usable log), and
// redoes the after-images of committed transactions in log order.
// Because recovery rebuilds state from scratch, skipping uncommitted
// transactions is an implicit undo — the engine never externalizes
// uncommitted state anywhere except this log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Kind discriminates log records.
type Kind uint8

const (
	// KindBegin marks the start of a transaction.
	KindBegin Kind = iota + 1
	// KindUpdate carries one entity update with before and after
	// images.
	KindUpdate
	// KindCommit marks a transaction durable.
	KindCommit
	// KindAbort marks a transaction rolled back (its updates must be
	// ignored by recovery, like an uncommitted transaction's).
	KindAbort
)

// String returns the record kind name.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindUpdate:
		return "update"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one log entry. Entity, Before and After are meaningful only
// for KindUpdate.
type Record struct {
	Kind   Kind
	Txn    int64
	Entity int64
	Before int64
	After  int64
}

// recordSize is the fixed on-disk record size: kind(1) + txn(8) +
// entity(8) + before(8) + after(8) + crc(4).
const recordSize = 1 + 8 + 8 + 8 + 8 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// marshal encodes r into buf (length recordSize).
func (r Record) marshal(buf []byte) {
	buf[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.Txn))
	binary.LittleEndian.PutUint64(buf[9:], uint64(r.Entity))
	binary.LittleEndian.PutUint64(buf[17:], uint64(r.Before))
	binary.LittleEndian.PutUint64(buf[25:], uint64(r.After))
	crc := crc32.Checksum(buf[:recordSize-4], crcTable)
	binary.LittleEndian.PutUint32(buf[recordSize-4:], crc)
}

// ErrCorrupt reports a record that failed its checksum — for recovery,
// the end of the usable log.
var ErrCorrupt = errors.New("wal: corrupt record")

// unmarshal decodes buf into a Record, verifying the checksum.
func unmarshal(buf []byte) (Record, error) {
	want := binary.LittleEndian.Uint32(buf[recordSize-4:])
	if crc32.Checksum(buf[:recordSize-4], crcTable) != want {
		return Record{}, ErrCorrupt
	}
	r := Record{
		Kind:   Kind(buf[0]),
		Txn:    int64(binary.LittleEndian.Uint64(buf[1:])),
		Entity: int64(binary.LittleEndian.Uint64(buf[9:])),
		Before: int64(binary.LittleEndian.Uint64(buf[17:])),
		After:  int64(binary.LittleEndian.Uint64(buf[25:])),
	}
	if r.Kind < KindBegin || r.Kind > KindAbort {
		return Record{}, ErrCorrupt
	}
	return r, nil
}

// syncer is optionally implemented by the Writer's sink (e.g. *os.File).
type syncer interface{ Sync() error }

// Writer appends records to a log sink. It is safe for concurrent use;
// AppendGroup writes a transaction's records contiguously.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	n   int64 // records written
}

// NewWriter returns a Writer over sink.
func NewWriter(sink io.Writer) *Writer {
	return &Writer{w: sink, buf: make([]byte, recordSize)}
}

// Append writes one record.
func (w *Writer) Append(r Record) error {
	return w.AppendGroup([]Record{r})
}

// AppendGroup writes records contiguously under one lock acquisition —
// the unit the engine uses for "updates + commit".
func (w *Writer) AppendGroup(rs []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, r := range rs {
		r.marshal(w.buf)
		if _, err := w.w.Write(w.buf); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		w.n++
	}
	return nil
}

// Sync flushes the sink if it supports syncing (no-op otherwise) —
// called by the engine at commit to make the commit record durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.w.(syncer); ok {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Records returns the number of records appended.
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Reader iterates a log stream record by record.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader returns a Reader over src.
func NewReader(src io.Reader) *Reader {
	return &Reader{r: src, buf: make([]byte, recordSize)}
}

// Next returns the next record. It returns io.EOF at a clean end of
// log, and ErrCorrupt (possibly wrapped) at a torn or damaged tail —
// recovery treats both as the end of the usable log.
func (r *Reader) Next() (Record, error) {
	n, err := io.ReadFull(r.r, r.buf)
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return Record{}, fmt.Errorf("%w: torn record of %d bytes at end of log", ErrCorrupt, n)
	}
	if err != nil {
		return Record{}, fmt.Errorf("wal: read: %w", err)
	}
	return unmarshal(r.buf)
}

// RecoverStats summarizes one recovery pass.
type RecoverStats struct {
	// Records is the number of intact records scanned.
	Records int
	// Committed and Aborted count transaction outcomes found.
	Committed int
	Aborted   int
	// Incomplete counts transactions with no outcome record (in flight
	// at the crash); their updates were discarded.
	Incomplete int
	// Torn reports whether the scan ended at a corrupt tail rather than
	// a clean EOF.
	Torn bool
}

// Recover scans the log and replays the after-images of committed
// transactions, in log order, through apply. A corrupt record ends the
// scan (torn tail); everything before it is recovered.
func Recover(r *Reader, apply func(entity int64, value int64)) (RecoverStats, error) {
	var stats RecoverStats
	type pending struct {
		order   int
		updates []Record
	}
	txns := make(map[int64]*pending)
	var committed [][]Record

	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, ErrCorrupt) {
			stats.Torn = true
			break
		}
		if err != nil {
			return stats, err
		}
		stats.Records++
		switch rec.Kind {
		case KindBegin:
			if txns[rec.Txn] == nil {
				txns[rec.Txn] = &pending{order: stats.Records}
			}
		case KindUpdate:
			p := txns[rec.Txn]
			if p == nil {
				p = &pending{order: stats.Records}
				txns[rec.Txn] = p
			}
			p.updates = append(p.updates, rec)
		case KindCommit:
			if p := txns[rec.Txn]; p != nil {
				committed = append(committed, p.updates)
				delete(txns, rec.Txn)
			}
			stats.Committed++
		case KindAbort:
			delete(txns, rec.Txn)
			stats.Aborted++
		}
	}
	stats.Incomplete = len(txns)

	// Redo committed transactions in commit order. Locking serialized
	// conflicting transactions, so commit order is consistent with the
	// update order on every entity.
	for _, updates := range committed {
		for _, u := range updates {
			apply(u.Entity, u.After)
		}
	}
	return stats, nil
}
