// Package wal is a write-ahead log with redo recovery for the
// executable mini-DBMS. The paper's setting (ref [2], Bernstein,
// Hadzilacos & Goodman) pairs concurrency control with recovery; this
// package supplies the recovery half for internal/engine: committed
// transactions survive a crash, uncommitted ones vanish.
//
// The log is a stream of fixed-size binary records, each protected by a
// CRC-32 checksum. Recovery scans the log, tolerates a torn tail (a
// record cut short or corrupted by the crash ends the usable log), and
// redoes the after-images of committed transactions in log order.
// Because recovery rebuilds state from scratch, skipping uncommitted
// transactions is an implicit undo — the engine never externalizes
// uncommitted state anywhere except this log.
//
// The package has three layers (see docs/WAL.md):
//
//   - Writer/Reader: the record codec over any io stream. Writer is the
//     low-level sequential appender; Reader scans in buffered chunks.
//   - Log: a group-commit pipeline over one sink. Committers enqueue
//     their record group and park; a single background flusher
//     coalesces everything queued since the last flush into one
//     buffered write and one Sync, then wakes the whole cohort. Set
//     spreads a Log per partition with a cross-partition ordering rule
//     that RecoverSet verifies.
//   - Snapshot + Dir: checksummed point-in-time images behind the log
//     sequence numbers, installed atomically and followed by log
//     truncation, so recovery time is bounded by write rate since the
//     last checkpoint rather than by history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Kind discriminates log records.
type Kind uint8

const (
	// KindBegin marks the start of a transaction.
	KindBegin Kind = iota + 1
	// KindUpdate carries one entity update with before and after
	// images.
	KindUpdate
	// KindCommit marks a transaction durable. In a per-partition Set,
	// the commit record's Entity field carries the transaction's full
	// partition mask (bit k set = log k was touched); 0 means the
	// transaction lives entirely in the log the record was read from
	// (the single-log layout, and every log written before partition
	// masks existed).
	KindCommit
	// KindAbort marks a transaction rolled back (its updates must be
	// ignored by recovery, like an uncommitted transaction's).
	KindAbort
)

// String returns the record kind name.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindUpdate:
		return "update"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one log entry. Entity, Before and After are meaningful only
// for KindUpdate; a KindCommit record reuses Entity as the partition
// mask (see Kind).
type Record struct {
	Kind   Kind
	Txn    int64
	Entity int64
	Before int64
	After  int64
}

// recordSize is the fixed on-disk record size: kind(1) + txn(8) +
// entity(8) + before(8) + after(8) + crc(4).
const recordSize = 1 + 8 + 8 + 8 + 8 + 4

// RecordSize is the fixed on-disk record size in bytes, exported for
// tooling that computes offsets (walinspect, crash harnesses).
const RecordSize = recordSize

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// marshal encodes r into buf (length recordSize).
func (r Record) marshal(buf []byte) {
	buf[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.Txn))
	binary.LittleEndian.PutUint64(buf[9:], uint64(r.Entity))
	binary.LittleEndian.PutUint64(buf[17:], uint64(r.Before))
	binary.LittleEndian.PutUint64(buf[25:], uint64(r.After))
	crc := crc32.Checksum(buf[:recordSize-4], crcTable)
	binary.LittleEndian.PutUint32(buf[recordSize-4:], crc)
}

// ErrCorrupt reports a record that failed its checksum — for recovery,
// the end of the usable log.
var ErrCorrupt = errors.New("wal: corrupt record")

// unmarshal decodes buf into a Record, verifying the checksum.
func unmarshal(buf []byte) (Record, error) {
	want := binary.LittleEndian.Uint32(buf[recordSize-4:])
	if crc32.Checksum(buf[:recordSize-4], crcTable) != want {
		return Record{}, ErrCorrupt
	}
	r := Record{
		Kind:   Kind(buf[0]),
		Txn:    int64(binary.LittleEndian.Uint64(buf[1:])),
		Entity: int64(binary.LittleEndian.Uint64(buf[9:])),
		Before: int64(binary.LittleEndian.Uint64(buf[17:])),
		After:  int64(binary.LittleEndian.Uint64(buf[25:])),
	}
	if r.Kind < KindBegin || r.Kind > KindAbort {
		return Record{}, ErrCorrupt
	}
	return r, nil
}

// syncer is optionally implemented by a log sink (e.g. *os.File).
type syncer interface{ Sync() error }

// Writer appends records to a log sink. It is safe for concurrent use;
// AppendGroup writes a transaction's records contiguously. A write
// error poisons the Writer: the failing record may have reached the
// sink partially, so any later append would interleave with the torn
// bytes — every subsequent call fails fast with the original error
// instead.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	n   int64 // records fully handed to the sink
	err error // poison: the first write error, sticky
}

// NewWriter returns a Writer over sink.
func NewWriter(sink io.Writer) *Writer {
	return &Writer{w: sink, buf: make([]byte, recordSize)}
}

// Append writes one record.
func (w *Writer) Append(r Record) error {
	return w.AppendGroup([]Record{r})
}

// AppendGroup writes records contiguously under one lock acquisition —
// the unit the engine uses for "updates + commit". On a mid-group write
// error the failed record is not counted (the sink may hold a torn
// fragment of it) and the Writer is poisoned.
func (w *Writer) AppendGroup(rs []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return fmt.Errorf("wal: writer poisoned: %w", w.err)
	}
	for _, r := range rs {
		r.marshal(w.buf)
		if _, err := w.w.Write(w.buf); err != nil {
			w.err = err
			return fmt.Errorf("wal: append: %w", err)
		}
		w.n++
	}
	return nil
}

// Sync flushes the sink if it supports syncing (no-op otherwise) —
// called by the per-commit-sync path to make a commit record durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return fmt.Errorf("wal: writer poisoned: %w", w.err)
	}
	if s, ok := w.w.(syncer); ok {
		if err := s.Sync(); err != nil {
			w.err = err
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Records returns the number of records appended.
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// readerChunk is how many bytes Reader pulls from its source per fill —
// recovery reads the log in large sequential chunks instead of one
// 37-byte ReadFull per record.
const readerChunk = 64 * 1024

// Reader iterates a log stream record by record, reading the source in
// buffered chunks.
type Reader struct {
	r      io.Reader
	buf    []byte
	pos, n int   // valid window buf[pos:n]
	err    error // sticky source error (io.EOF included)
}

// NewReader returns a Reader over src.
func NewReader(src io.Reader) *Reader {
	return &Reader{r: src, buf: make([]byte, readerChunk)}
}

// fill tops the buffer up until it holds at least one record or the
// source is exhausted.
func (r *Reader) fill() {
	if r.pos > 0 {
		r.n = copy(r.buf, r.buf[r.pos:r.n])
		r.pos = 0
	}
	for r.n-r.pos < recordSize && r.err == nil {
		k, err := r.r.Read(r.buf[r.n:])
		r.n += k
		if err != nil {
			r.err = err
		}
	}
}

// Next returns the next record. It returns io.EOF at a clean end of
// log, and ErrCorrupt (possibly wrapped) at a torn or damaged tail —
// recovery treats both as the end of the usable log.
func (r *Reader) Next() (Record, error) {
	if r.n-r.pos < recordSize {
		r.fill()
	}
	if rem := r.n - r.pos; rem < recordSize {
		if r.err != nil && r.err != io.EOF {
			return Record{}, fmt.Errorf("wal: read: %w", r.err)
		}
		if rem == 0 {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: torn record of %d bytes at end of log", ErrCorrupt, rem)
	}
	rec, err := unmarshal(r.buf[r.pos : r.pos+recordSize])
	if err != nil {
		// An all-zero slot is untouched preallocated space: the clean
		// logical end of a file-backed log. (No valid record is all
		// zeros — kind 0 is invalid — and a torn write leaves a nonzero
		// prefix, since records start with a nonzero kind byte.)
		if allZero(r.buf[r.pos : r.pos+recordSize]) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	r.pos += recordSize
	return rec, nil
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// RecoverStats summarizes one recovery pass.
type RecoverStats struct {
	// Records is the number of intact records scanned.
	Records int
	// Committed and Aborted count transaction outcomes found.
	Committed int
	Aborted   int
	// Incomplete counts transactions with no outcome record (in flight
	// at the crash); their updates were discarded.
	Incomplete int
	// Torn reports whether the scan ended at a corrupt tail rather than
	// a clean EOF.
	Torn bool
	// MaxTxn is the highest transaction ID on any scanned record. A
	// writer appending to a recovered log must number new transactions
	// above it — reusing a surviving transaction's ID corrupts the next
	// recovery's per-transaction evidence.
	MaxTxn int64
}

// Recover scans a single log and replays the after-images of committed
// transactions, in log order, through apply. A corrupt record ends the
// scan (torn tail); everything before it is recovered. Partition masks
// on commit records are ignored: a single log is its own partition
// (RecoverSet is the multi-log variant that verifies masks).
func Recover(r *Reader, apply func(entity int64, value int64)) (RecoverStats, error) {
	var stats RecoverStats
	type pending struct {
		order   int
		updates []Record
	}
	txns := make(map[int64]*pending)
	var committed [][]Record

	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, ErrCorrupt) {
			stats.Torn = true
			break
		}
		if err != nil {
			return stats, err
		}
		stats.Records++
		if rec.Txn > stats.MaxTxn {
			stats.MaxTxn = rec.Txn
		}
		switch rec.Kind {
		case KindBegin:
			if txns[rec.Txn] == nil {
				txns[rec.Txn] = &pending{order: stats.Records}
			}
		case KindUpdate:
			p := txns[rec.Txn]
			if p == nil {
				p = &pending{order: stats.Records}
				txns[rec.Txn] = p
			}
			p.updates = append(p.updates, rec)
		case KindCommit:
			if p := txns[rec.Txn]; p != nil {
				committed = append(committed, p.updates)
				delete(txns, rec.Txn)
			}
			stats.Committed++
		case KindAbort:
			delete(txns, rec.Txn)
			stats.Aborted++
		}
	}
	stats.Incomplete = len(txns)

	// Redo committed transactions in commit order. Locking serialized
	// conflicting transactions, so commit order is consistent with the
	// update order on every entity.
	for _, updates := range committed {
		for _, u := range updates {
			apply(u.Entity, u.After)
		}
	}
	return stats, nil
}
