package wal

import (
	"bytes"
	"errors"
	"testing"
)

// memSet builds an in-memory two-log (or n-log) Set plus access to the
// raw sink bytes for recovery tests.
func memSet(t *testing.T, n int) (*Set, []*countingSink) {
	t.Helper()
	sinks := make([]*countingSink, n)
	logs := make([]*Log, n)
	for i := range logs {
		sinks[i] = &countingSink{}
		logs[i] = NewLog(sinks[i])
	}
	s, err := NewSet(logs...)
	if err != nil {
		t.Fatal(err)
	}
	return s, sinks
}

func readersFor(sinks []*countingSink) []*Reader {
	rs := make([]*Reader, len(sinks))
	for i, s := range sinks {
		rs[i] = NewReader(bytes.NewReader(s.bytes()))
	}
	return rs
}

// commitTxn appends txn to the given partitions of s, transferring
// delta from the first listed partition's entity to the others.
func commitTxn(t *testing.T, s *Set, txn int64, parts []int, entity func(part int) int64) {
	t.Helper()
	mask := Mask(parts...)
	groups := make([]PartGroup, len(parts))
	for i, p := range parts {
		groups[i] = PartGroup{Part: p, Records: []Record{
			{Kind: KindBegin, Txn: txn},
			{Kind: KindUpdate, Txn: txn, Entity: entity(p), Before: 0, After: txn},
			{Kind: KindCommit, Txn: txn, Entity: mask},
		}}
	}
	if err := s.Commit(groups); err != nil {
		t.Fatal(err)
	}
}

func TestSetSinglePartitionCommitTouchesOneLog(t *testing.T) {
	s, sinks := memSet(t, 4)
	commitTxn(t, s, 1, []int{2}, func(int) int64 { return 20 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for k, sink := range sinks {
		_, syncs := sink.stats()
		if k == 2 && syncs == 0 {
			t.Fatal("touched log never synced")
		}
		if k != 2 && syncs != 0 {
			t.Fatalf("untouched log %d synced %d times", k, syncs)
		}
	}
}

func TestSetRecoverCrossPartition(t *testing.T) {
	s, sinks := memSet(t, 3)
	// Txn 1 spans logs 0 and 2; txn 2 lives in log 1 only.
	commitTxn(t, s, 1, []int{0, 2}, func(p int) int64 { return int64(p * 10) })
	commitTxn(t, s, 2, []int{1}, func(int) int64 { return 11 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	state := map[int64]int64{}
	stats, err := RecoverSet(readersFor(sinks), func(e, v int64) { state[e] = v })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 2 || stats.CrossPartial != 0 || stats.OrderViolations != 0 {
		t.Fatalf("stats %+v", stats)
	}
	if state[0] != 1 || state[20] != 1 || state[11] != 2 {
		t.Fatalf("state %v", state)
	}
}

func TestSetRecoverDiscardsCrossPartialCommit(t *testing.T) {
	// A crash after log 0's flush but before log 2's leaves the commit
	// record in only part of the mask: the txn must be discarded whole.
	s, sinks := memSet(t, 3)
	mask := Mask(0, 2)
	if err := s.Commit([]PartGroup{{Part: 0, Records: []Record{
		{Kind: KindBegin, Txn: 7},
		{Kind: KindUpdate, Txn: 7, Entity: 1, After: 100},
		{Kind: KindCommit, Txn: 7, Entity: mask},
	}}}); err != nil {
		t.Fatal(err)
	}
	// Log 2 got only the begin+update — no commit (crash before it).
	if err := s.Commit([]PartGroup{{Part: 2, Records: []Record{
		{Kind: KindBegin, Txn: 7},
		{Kind: KindUpdate, Txn: 7, Entity: 2, After: 200},
	}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	applied := 0
	stats, err := RecoverSet(readersFor(sinks), func(int64, int64) { applied++ })
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("%d updates applied from a cross-partial txn", applied)
	}
	if stats.CrossPartial != 1 || stats.Committed != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestSetRecoverFlagsOrderViolation(t *testing.T) {
	// Commit present in log 1 but missing from log 0 of mask {0,1}:
	// impossible under ascending-order appends, so recovery reports it.
	s, sinks := memSet(t, 2)
	mask := Mask(0, 1)
	if err := s.Commit([]PartGroup{
		{Part: 0, Records: []Record{
			{Kind: KindBegin, Txn: 9},
			{Kind: KindUpdate, Txn: 9, Entity: 0, After: 1},
		}},
		{Part: 1, Records: []Record{
			{Kind: KindBegin, Txn: 9},
			{Kind: KindUpdate, Txn: 9, Entity: 1, After: 1},
			{Kind: KindCommit, Txn: 9, Entity: mask},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	applied := 0
	stats, err := RecoverSet(readersFor(sinks), func(int64, int64) { applied++ })
	if err != nil {
		t.Fatal(err)
	}
	if stats.OrderViolations != 1 || stats.Committed != 0 || applied != 0 {
		t.Fatalf("stats %+v applied %d", stats, applied)
	}
}

func TestSetRecoverLegacyMaskZero(t *testing.T) {
	// Mask 0 means "this log only" — the single-log legacy encoding.
	s, sinks := memSet(t, 2)
	if err := s.Commit([]PartGroup{{Part: 1, Records: []Record{
		{Kind: KindBegin, Txn: 3},
		{Kind: KindUpdate, Txn: 3, Entity: 5, After: 50},
		{Kind: KindCommit, Txn: 3, Entity: 0},
	}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	state := map[int64]int64{}
	stats, err := RecoverSet(readersFor(sinks), func(e, v int64) { state[e] = v })
	if err != nil || stats.Committed != 1 || state[5] != 50 {
		t.Fatalf("stats %+v state %v err %v", stats, state, err)
	}
}

func TestSetCommitRejectsUnorderedPartitions(t *testing.T) {
	s, _ := memSet(t, 3)
	defer s.Close()
	err := s.Commit([]PartGroup{
		{Part: 2, Records: []Record{{Kind: KindBegin, Txn: 1}}},
		{Part: 0, Records: []Record{{Kind: KindBegin, Txn: 1}}},
	})
	if err == nil {
		t.Fatal("descending partition order accepted")
	}
	if err := s.Commit([]PartGroup{{Part: 5, Records: []Record{{Kind: KindBegin, Txn: 1}}}}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestSetRecoverConservesTransfersUnderTailCuts(t *testing.T) {
	// Balance-preserving transfers across two partitions; cut each
	// log's tail at every record boundary pair and check the recovered
	// total is always the initial total.
	s, sinks := memSet(t, 2)
	// Entities: even → part 0, odd → part 1, initial value 100 each.
	const n = 4
	for txn := int64(1); txn <= 6; txn++ {
		src := (txn * 2) % n       // even entity, part 0
		dst := (txn*2 + 1) % n     // odd entity, part 1
		mask := Mask(0, 1)
		if err := s.Commit([]PartGroup{
			{Part: 0, Records: []Record{
				{Kind: KindBegin, Txn: txn},
				{Kind: KindUpdate, Txn: txn, Entity: src, Before: 100, After: 100 - txn},
				{Kind: KindCommit, Txn: txn, Entity: mask},
			}},
			{Part: 1, Records: []Record{
				{Kind: KindBegin, Txn: txn},
				{Kind: KindUpdate, Txn: txn, Entity: dst, Before: 100, After: 100 + txn},
				{Kind: KindCommit, Txn: txn, Entity: mask},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	log0, log1 := sinks[0].bytes(), sinks[1].bytes()
	for c0 := 0; c0 <= len(log0); c0 += recordSize {
		for c1 := 0; c1 <= len(log1); c1 += recordSize {
			state := map[int64]int64{0: 100, 1: 100, 2: 100, 3: 100}
			readers := []*Reader{
				NewReader(bytes.NewReader(log0[:c0])),
				NewReader(bytes.NewReader(log1[:c1])),
			}
			if _, err := RecoverSet(readers, func(e, v int64) { state[e] = v }); err != nil {
				t.Fatalf("cut %d/%d: %v", c0, c1, err)
			}
			var total int64
			for _, v := range state {
				total += v
			}
			if total != 400 {
				t.Fatalf("cut %d/%d: total %d, state %v", c0, c1, total, state)
			}
		}
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Fatal("empty set accepted")
	}
	logs := make([]*Log, MaxPartitions+1)
	for i := range logs {
		logs[i] = NewLog(&bytes.Buffer{})
	}
	if _, err := NewSet(logs...); err == nil {
		t.Fatal("oversized set accepted")
	}
	for _, l := range logs {
		l.Close()
	}
	if _, err := NewSet(nil); err == nil {
		t.Fatal("nil log accepted")
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 1 || Mask(1) != 2 || Mask(0, 1, 5) != 1+2+32 {
		t.Fatal("mask arithmetic wrong")
	}
}

func TestSetCommitPropagatesPoison(t *testing.T) {
	sinks := []*countingSink{{failSyncAfter: 1}, {}}
	logs := []*Log{NewLog(sinks[0]), NewLog(sinks[1])}
	s, err := NewSet(logs...)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Commit([]PartGroup{{Part: 0, Records: []Record{{Kind: KindBegin, Txn: 1}}}})
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit on failing log: %v", err)
	}
	logs[1].Close()
}
