package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrPoisoned is the sentinel a poisoned Log wraps: a previous flush
// failed, so the log can no longer promise durability. FlushError
// matches it via errors.Is.
var ErrPoisoned = errors.New("wal: log poisoned by failed flush")

// ErrClosed is returned by Commit after Close.
var ErrClosed = errors.New("wal: log closed")

// FlushError is the typed error a failed flush delivers to its whole
// cohort (and to every later committer): the batch's records may be
// partially on disk but were never synced, so none of its commits are
// acknowledged.
type FlushError struct {
	// Op is the sink operation that failed: "write" or "sync".
	Op string
	// Cause is the sink's error.
	Cause error
}

func (e *FlushError) Error() string {
	return fmt.Sprintf("wal: flush %s failed: %v", e.Op, e.Cause)
}

func (e *FlushError) Unwrap() error { return e.Cause }

// Is reports ErrPoisoned so callers can match the poisoned state
// without knowing which flush failed first.
func (e *FlushError) Is(target error) bool { return target == ErrPoisoned }

// LogOption configures a Log.
type LogOption func(*logOptions)

type logOptions struct {
	maxBatch    int
	linger      time.Duration
	injector    FaultInjector
	preallocate int64
}

// WithMaxBatch caps how many records one flush coalesces. Once the
// flusher has gathered max records it flushes immediately instead of
// lingering for more. Zero (the default) means no cap.
func WithMaxBatch(max int) LogOption {
	return func(o *logOptions) { o.maxBatch = max }
}

// WithFlushInterval bounds how long the flusher lingers collecting more
// committers when the queue is non-empty and under the batch cap. Zero
// (the default) disables lingering: every flush takes exactly what was
// queued when the flusher woke — immediate when the log is idle, and
// naturally batched under load because commits arriving during the
// previous flush's Sync queue up behind it.
func WithFlushInterval(d time.Duration) LogOption {
	return func(o *logOptions) { o.linger = d }
}

// flushSink is what the flusher needs from a sink: one buffered write
// and one durability barrier per batch.
type flushSink interface {
	Write(p []byte) (int, error)
	Sync() error
}

// nopSync adapts a plain io.Writer (no Sync method) to flushSink.
type nopSync struct{ w interface{ Write([]byte) (int, error) } }

func (n nopSync) Write(p []byte) (int, error) { return n.w.Write(p) }
func (n nopSync) Sync() error                 { return nil }

// Log is a group-commit pipeline over one sink. Commit enqueues a
// transaction's records and parks until a background flusher has made
// them durable; the flusher coalesces everything queued since the last
// flush into one buffered write plus one Sync and wakes the whole
// cohort. When the log is idle a lone commit flushes immediately; under
// load, batching emerges because arrivals during a flush queue up
// behind it (optionally widened by WithFlushInterval).
//
// A failed flush poisons the log: the waiting cohort and every later
// Commit receive a *FlushError (matching ErrPoisoned); an unsynced
// commit is never acknowledged.
type Log struct {
	sink     flushSink
	maxBatch int
	linger   time.Duration

	// ioMu serializes flush I/O with Truncate's file surgery. The
	// flusher holds it across write+sync; Truncate holds it while
	// rewriting the file. Never held together with mu.
	ioMu sync.Mutex

	mu      sync.Mutex
	flushed sync.Cond // broadcast when durable or err advances
	queue   []Record  // records enqueued since the last flusher pickup
	enq     int64     // records ever enqueued (incl. base)
	durable int64     // records durably flushed (incl. base)
	base    int64     // sequence number the sink already held at open
	err     error     // poison: first flush failure, sticky
	closed  bool

	wake chan struct{} // capacity 1: nudges the flusher
	done chan struct{} // closed when the flusher exits
}

// NewLog returns a group-commit Log over sink and starts its flusher.
// If sink has a Sync method it is called once per flush; otherwise
// flushes are write-only (useful for in-memory tests). Close releases
// the flusher.
func NewLog(sink interface{ Write([]byte) (int, error) }, opts ...LogOption) *Log {
	var o logOptions
	for _, opt := range opts {
		opt(&o)
	}
	fs, ok := sink.(flushSink)
	if !ok {
		fs = nopSync{w: sink}
	}
	if o.injector != nil {
		fs = &faultSink{s: fs, inject: o.injector}
	}
	l := &Log{
		sink:     fs,
		maxBatch: o.maxBatch,
		linger:   o.linger,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	l.flushed.L = &l.mu
	go l.flusher()
	return l
}

// newLogAt is NewLog for a reopened file sink: base is the physical
// truncation base recorded in the file header, seq the durable sequence
// number at the logical end (base + intact records); appends continue
// from seq.
func newLogAt(sink flushSink, base, seq int64, o logOptions) *Log {
	if o.injector != nil {
		sink = &faultSink{s: sink, inject: o.injector}
	}
	l := &Log{
		sink:     sink,
		maxBatch: o.maxBatch,
		linger:   o.linger,
		base:     base,
		enq:      seq,
		durable:  seq,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	l.flushed.L = &l.mu
	go l.flusher()
	return l
}

// Commit enqueues rs as one contiguous group and blocks until every
// record is durable (the flusher's Sync returned) or the log fails.
// It returns nil only after durability; on a flush failure every waiter
// gets the poisoning *FlushError.
func (l *Log) Commit(rs []Record) error {
	if len(rs) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.queue = append(l.queue, rs...)
	l.enq += int64(len(rs))
	target := l.enq
	l.mu.Unlock()

	// Nudge the flusher (non-blocking: one pending nudge is enough).
	select {
	case l.wake <- struct{}{}:
	default:
	}

	l.mu.Lock()
	for l.durable < target && l.err == nil {
		l.flushed.Wait()
	}
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return nil
}

// flusher is the single background goroutine that turns queued commits
// into batched sink writes.
func (l *Log) flusher() {
	defer close(l.done)
	var buf []byte
	for {
		<-l.wake

		l.mu.Lock()
		// Optional linger: with a non-empty queue below the batch cap,
		// wait a beat so more committers can join this flush.
		if l.linger > 0 && len(l.queue) > 0 && !l.closed &&
			(l.maxBatch <= 0 || len(l.queue) < l.maxBatch) {
			l.mu.Unlock()
			time.Sleep(l.linger)
			l.mu.Lock()
		}
		batch := l.queue
		if l.maxBatch > 0 && len(batch) > l.maxBatch {
			batch = batch[:l.maxBatch]
			l.queue = l.queue[l.maxBatch:]
			// More remains: re-arm the nudge so the next loop
			// iteration picks it up without a new committer.
			select {
			case l.wake <- struct{}{}:
			default:
			}
		} else {
			l.queue = nil
		}
		closed := l.closed
		l.mu.Unlock()

		if len(batch) == 0 {
			if closed {
				return
			}
			continue
		}

		// One buffered write + one Sync for the whole cohort.
		need := len(batch) * recordSize
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		for i, r := range batch {
			r.marshal(buf[i*recordSize : (i+1)*recordSize])
		}
		l.ioMu.Lock()
		var ferr *FlushError
		if _, err := l.sink.Write(buf); err != nil {
			ferr = &FlushError{Op: "write", Cause: err}
		} else if err := l.sink.Sync(); err != nil {
			ferr = &FlushError{Op: "sync", Cause: err}
		}
		l.ioMu.Unlock()

		l.mu.Lock()
		if ferr != nil {
			l.err = ferr
			l.flushed.Broadcast()
			l.mu.Unlock()
			return
		}
		l.durable += int64(len(batch))
		l.flushed.Broadcast()
		done := l.closed && len(l.queue) == 0
		l.mu.Unlock()
		if done {
			return
		}
	}
}

// Close stops the flusher after draining queued records. It returns the
// poison error if the log failed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		<-l.done
		return err
	}
	l.closed = true
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	<-l.done
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if c, ok := l.sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Seq returns the durable sequence number: the count of records (since
// the log's creation, including any base carried over a truncation)
// whose durability has been acknowledged.
func (l *Log) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Base returns the sequence number of the first record physically
// present in the sink (non-zero after a truncation).
func (l *Log) Base() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Err returns the poison error, or nil if the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// truncator is implemented by file-backed sinks that can drop their
// physical prefix.
type truncator interface {
	truncateTo(seq int64) error
}

// Truncate drops the physical log prefix up to and including sequence
// number seq (records 1..seq), typically after a snapshot covering seq
// has been installed. Only file-backed logs support it. The log keeps
// counting sequence numbers from where it was: Base becomes seq.
func (l *Log) Truncate(seq int64) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if seq > l.durable {
		d := l.durable
		l.mu.Unlock()
		return fmt.Errorf("wal: truncate to %d beyond durable %d", seq, d)
	}
	if seq <= l.base {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	t, ok := l.sink.(truncator)
	if !ok {
		if f, ok2 := l.sink.(*faultSink); ok2 {
			if t2, ok3 := f.s.(truncator); ok3 {
				t, ok = t2, true
			}
		}
	}
	if !ok {
		return errors.New("wal: sink does not support truncation")
	}

	l.ioMu.Lock()
	err := t.truncateTo(seq)
	l.ioMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	l.mu.Lock()
	l.base = seq
	l.mu.Unlock()
	return nil
}
