package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func TestOpenFileAppendReopenRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, err := OpenFile(path, WithPreallocate(4096))
	if err != nil {
		t.Fatal(err)
	}
	for txn := int64(1); txn <= 5; txn++ {
		err := l.Commit([]Record{
			{Kind: KindBegin, Txn: txn},
			{Kind: KindUpdate, Txn: txn, Entity: txn, After: txn * 10},
			{Kind: KindCommit, Txn: txn},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Seq(); got != 15 {
		t.Fatalf("Seq = %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sequence continues, previous records recoverable.
	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Seq(); got != 15 {
		t.Fatalf("reopened Seq = %d", got)
	}
	if err := l2.Commit([]Record{
		{Kind: KindBegin, Txn: 6},
		{Kind: KindUpdate, Txn: 6, Entity: 6, After: 60},
		{Kind: KindCommit, Txn: 6},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	r, c, err := tailReader(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	state := map[int64]int64{}
	stats, err := Recover(r, func(e, v int64) { state[e] = v })
	if err != nil || stats.Committed != 6 || stats.Torn {
		t.Fatalf("recover: %+v, %v", stats, err)
	}
	for e := int64(1); e <= 6; e++ {
		if state[e] != e*10 {
			t.Fatalf("entity %d = %d", e, state[e])
		}
	}
}

func TestOpenFilePreallocatedTailIgnored(t *testing.T) {
	// The preallocated zero region must not read as records.
	path := filepath.Join(t.TempDir(), "a.log")
	l, err := OpenFile(path, WithPreallocate(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit([]Record{{Kind: KindBegin, Txn: 1}, {Kind: KindCommit, Txn: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 1<<16 {
		t.Fatalf("file size %d, want preallocated 1<<16", info.Size())
	}
	l2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Seq(); got != 2 {
		t.Fatalf("Seq = %d, want 2 (zero fill must not count)", got)
	}
}

func TestOpenFileRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	if err := os.WriteFile(path, []byte("not a wal header....."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt header: %v", err)
	}
}

func TestLogTruncateDropsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.log")
	l, err := OpenFile(path, WithPreallocate(0))
	if err != nil {
		t.Fatal(err)
	}
	for txn := int64(1); txn <= 10; txn++ {
		if err := l.Commit([]Record{
			{Kind: KindBegin, Txn: txn},
			{Kind: KindUpdate, Txn: txn, Entity: txn, After: txn},
			{Kind: KindCommit, Txn: txn},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Drop the first 4 transactions (12 records).
	if err := l.Truncate(12); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 12 || l.Seq() != 30 {
		t.Fatalf("base %d seq %d", l.Base(), l.Seq())
	}
	// The log still accepts appends after truncation.
	if err := l.Commit([]Record{
		{Kind: KindBegin, Txn: 11},
		{Kind: KindUpdate, Txn: 11, Entity: 11, After: 11},
		{Kind: KindCommit, Txn: 11},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tail from the truncation point holds txns 5..11 only.
	r, c, err := tailReader(path, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	state := map[int64]int64{}
	stats, err := Recover(r, func(e, v int64) { state[e] = v })
	if err != nil || stats.Committed != 7 {
		t.Fatalf("recover after truncate: %+v, %v", stats, err)
	}
	if state[4] != 0 || state[5] != 5 || state[11] != 11 {
		t.Fatalf("state %v", state)
	}
	// Replaying from before the truncation point must fail loudly.
	if _, _, err := tailReader(path, 5); err == nil {
		t.Fatal("tailReader before base succeeded")
	}
	// Truncating beyond durable or re-truncating behind base are
	// rejected / no-ops.
	l3, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if err := l3.Truncate(9999); err == nil {
		t.Fatal("truncate beyond durable accepted")
	}
	if err := l3.Truncate(3); err != nil {
		t.Fatalf("truncate behind base should be a no-op: %v", err)
	}
}

func TestDirCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, 3, WithPreallocate(0))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Set()
	// Txns 1..6 round-robin over partitions.
	for txn := int64(1); txn <= 6; txn++ {
		p := int(txn) % 3
		if err := s.Commit([]PartGroup{{Part: p, Records: []Record{
			{Kind: KindBegin, Txn: txn},
			{Kind: KindUpdate, Txn: txn, Entity: txn, After: txn * 100},
			{Kind: KindCommit, Txn: txn},
		}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint the state so far.
	snap := &Snapshot{Seqs: s.Seqs()}
	for e := int64(1); e <= 6; e++ {
		snap.Entries = append(snap.Entries, SnapshotEntry{Entity: e, Value: e * 100})
	}
	if err := d.Install(snap); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic.
	if err := s.Commit([]PartGroup{{Part: 1, Records: []Record{
		{Kind: KindBegin, Txn: 7},
		{Kind: KindUpdate, Txn: 7, Entity: 1, After: 111},
		{Kind: KindCommit, Txn: 7},
	}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover: snapshot entries plus the tail txn.
	d2, err := OpenDir(dir, 3, WithPreallocate(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	state := map[int64]int64{}
	stats, err := d2.Recover(func(e, v int64) { state[e] = v })
	if err != nil {
		t.Fatal(err)
	}
	// Only txn 7 should replay from the logs.
	if stats.Committed != 1 {
		t.Fatalf("tail committed %d, want 1 (stats %+v)", stats.Committed, stats)
	}
	if state[1] != 111 || state[2] != 200 || state[6] != 600 {
		t.Fatalf("state %v", state)
	}
	// Logs were physically truncated: bases match the snapshot seqs.
	for k := 0; k < 3; k++ {
		if d2.Set().Log(k).Base() == 0 && d2.Set().Log(k).Seq() > 0 {
			t.Fatalf("log %d not truncated (base 0, seq %d)", k, d2.Set().Log(k).Seq())
		}
	}
}

func TestDirRecoverNoSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, 2, WithPreallocate(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Set().Commit([]PartGroup{{Part: 0, Records: []Record{
		{Kind: KindBegin, Txn: 1},
		{Kind: KindUpdate, Txn: 1, Entity: 0, After: 5},
		{Kind: KindCommit, Txn: 1},
	}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(dir, 2, WithPreallocate(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	state := map[int64]int64{}
	if _, err := d2.Recover(func(e, v int64) { state[e] = v }); err != nil {
		t.Fatal(err)
	}
	if state[0] != 5 {
		t.Fatalf("state %v", state)
	}
}

func TestDirPartitionCountMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, 3, WithPreallocate(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, 2, WithPreallocate(0)); err == nil {
		t.Fatal("narrowing partition count accepted")
	}
}

func TestDirInstallFailpoints(t *testing.T) {
	// Crash at each install stage; recovery must always see either the
	// old or the new snapshot, never a broken directory.
	stages := []string{"snapshot-tmp", "snapshot-installed", "truncate-0", "truncate-1"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDir(dir, 2, WithPreallocate(0))
			if err != nil {
				t.Fatal(err)
			}
			s := d.Set()
			for txn := int64(1); txn <= 4; txn++ {
				p := int(txn) % 2
				if err := s.Commit([]PartGroup{{Part: p, Records: []Record{
					{Kind: KindBegin, Txn: txn},
					{Kind: KindUpdate, Txn: txn, Entity: txn, After: txn},
					{Kind: KindCommit, Txn: txn},
				}}}); err != nil {
					t.Fatal(err)
				}
			}
			snap := &Snapshot{Seqs: s.Seqs()}
			for e := int64(1); e <= 4; e++ {
				snap.Entries = append(snap.Entries, SnapshotEntry{Entity: e, Value: e})
			}
			boom := errors.New("crash")
			d.SetFailpoint(func(got string) error {
				if got == stage {
					return boom
				}
				return nil
			})
			if err := d.Install(snap); !errors.Is(err, boom) {
				t.Fatalf("install: %v", err)
			}
			d.Close()

			d2, err := OpenDir(dir, 2, WithPreallocate(0))
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			state := map[int64]int64{}
			if _, err := d2.Recover(func(e, v int64) { state[e] = v }); err != nil {
				t.Fatalf("recover after crash at %s: %v", stage, err)
			}
			for e := int64(1); e <= 4; e++ {
				if state[e] != e {
					t.Fatalf("crash at %s: state %v", stage, state)
				}
			}
		})
	}
}

func TestDirFaultInjectorTearsEverything(t *testing.T) {
	// A shared injector with a byte budget: every log and the snapshot
	// die at one moment; reopening without the injector recovers a
	// consistent prefix. Sweep budgets to cut at many distinct points,
	// including inside snapshot staging.
	for budget := int64(0); budget < 3000; budget += 127 {
		var left atomic.Int64
		left.Store(budget)
		inject := FaultInjector(func(op string, n int) (int, error) {
			if op == "sync" {
				if left.Load() <= 0 {
					return 0, errors.New("power lost")
				}
				return 0, nil
			}
			got := left.Add(int64(-n))
			if got < 0 {
				allow := got + int64(n)
				if allow < 0 {
					allow = 0
				}
				return int(allow), errors.New("power lost")
			}
			return n, nil
		})

		dir := t.TempDir()
		d, err := OpenDir(dir, 2, WithPreallocate(0), WithFaultInjector(inject))
		if err != nil {
			t.Fatal(err)
		}
		s := d.Set()
		// Balance-preserving transfers: entity 2k on part 0, 2k+1 on
		// part 1, each starting at 100.
		alive := true
		for txn := int64(1); txn <= 8 && alive; txn++ {
			mask := Mask(0, 1)
			err := s.Commit([]PartGroup{
				{Part: 0, Records: []Record{
					{Kind: KindBegin, Txn: txn},
					{Kind: KindUpdate, Txn: txn, Entity: 0, Before: 100, After: 100 - txn},
					{Kind: KindCommit, Txn: txn, Entity: mask},
				}},
				{Part: 1, Records: []Record{
					{Kind: KindBegin, Txn: txn},
					{Kind: KindUpdate, Txn: txn, Entity: 1, Before: 100, After: 100 + txn},
					{Kind: KindCommit, Txn: txn, Entity: mask},
				}},
			})
			if err != nil {
				alive = false
			}
			// Mid-run checkpoint attempt, also under the injector.
			if txn == 4 && alive {
				snap := &Snapshot{Seqs: s.Seqs(), Entries: []SnapshotEntry{
					{Entity: 0, Value: 100 - txn}, {Entity: 1, Value: 100 + txn},
				}}
				if err := d.Install(snap); err != nil {
					alive = false
				}
			}
		}
		d.Close()

		// "Reboot": reopen without the injector and recover.
		d2, err := OpenDir(dir, 2, WithPreallocate(0))
		if err != nil {
			t.Fatalf("budget %d: reopen: %v", budget, err)
		}
		state := map[int64]int64{0: 100, 1: 100}
		if _, err := d2.Recover(func(e, v int64) { state[e] = v }); err != nil {
			t.Fatalf("budget %d: recover: %v", budget, err)
		}
		if state[0]+state[1] != 200 {
			t.Fatalf("budget %d: transfer invariant broken: %v", budget, state)
		}
		d2.Close()
	}
}
