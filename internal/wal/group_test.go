package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingSink counts Write and Sync calls; optionally fails after a
// budget.
type countingSink struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
	syncs  int
	// failSyncAfter fails every Sync once syncs reaches it (0 = never).
	failSyncAfter int
	// failWrite fails every Write when set.
	failWrite bool
}

func (s *countingSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failWrite {
		return 0, errors.New("injected write failure")
	}
	s.writes++
	return s.buf.Write(p)
}

func (s *countingSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncs++
	if s.failSyncAfter > 0 && s.syncs >= s.failSyncAfter {
		return errors.New("injected sync failure")
	}
	return nil
}

func (s *countingSink) stats() (writes, syncs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes, s.syncs
}

func (s *countingSink) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func TestLogCommitDurableAndOrdered(t *testing.T) {
	sink := &countingSink{}
	l := NewLog(sink)
	for txn := int64(1); txn <= 3; txn++ {
		err := l.Commit([]Record{
			{Kind: KindBegin, Txn: txn},
			{Kind: KindUpdate, Txn: txn, Entity: txn, Before: 0, After: txn},
			{Kind: KindCommit, Txn: txn},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Seq(); got != 9 {
		t.Fatalf("Seq = %d, want 9", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(sink.bytes()))
	state := map[int64]int64{}
	stats, err := Recover(r, func(e, v int64) { state[e] = v })
	if err != nil || stats.Committed != 3 {
		t.Fatalf("recover: %+v, %v", stats, err)
	}
	for e := int64(1); e <= 3; e++ {
		if state[e] != e {
			t.Fatalf("entity %d = %d", e, state[e])
		}
	}
	// Every commit waited for durability, so each cohort needed a sync,
	// but never more than one per commit.
	if _, syncs := sink.stats(); syncs < 1 || syncs > 3 {
		t.Fatalf("syncs = %d", syncs)
	}
}

func TestLogGroupCommitCoalesces(t *testing.T) {
	// Many concurrent committers on a slow-sync sink must share
	// flushes: total syncs well under one per commit.
	sink := &slowSink{delay: 2 * time.Millisecond}
	l := NewLog(sink, WithFlushInterval(500*time.Microsecond))
	const committers = 16
	const commitsEach = 8
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < commitsEach; i++ {
				txn := int64(c*commitsEach + i + 1)
				err := l.Commit([]Record{
					{Kind: KindBegin, Txn: txn},
					{Kind: KindCommit, Txn: txn},
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	syncs := atomic.LoadInt64(&sink.syncs)
	total := int64(committers * commitsEach)
	if syncs >= total {
		t.Fatalf("no batching: %d syncs for %d commits", syncs, total)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// All records present and intact.
	stats, err := Recover(NewReader(bytes.NewReader(sink.buf())), func(int64, int64) {})
	if err != nil || int64(stats.Committed) != total {
		t.Fatalf("recover: %+v, %v", stats, err)
	}
}

// slowSink simulates a sync-cost-bearing device.
type slowSink struct {
	mu    sync.Mutex
	b     bytes.Buffer
	delay time.Duration
	syncs int64
}

func (s *slowSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *slowSink) Sync() error {
	atomic.AddInt64(&s.syncs, 1)
	time.Sleep(s.delay)
	return nil
}

func (s *slowSink) buf() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

func TestLogFailedFlushPoisonsAndFailsCohort(t *testing.T) {
	sink := &countingSink{failSyncAfter: 1}
	l := NewLog(sink)
	err := l.Commit([]Record{{Kind: KindBegin, Txn: 1}, {Kind: KindCommit, Txn: 1}})
	if err == nil {
		t.Fatal("commit acked despite failed sync")
	}
	var fe *FlushError
	if !errors.As(err, &fe) {
		t.Fatalf("error %T %v, want *FlushError", err, err)
	}
	if fe.Op != "sync" {
		t.Fatalf("op %q", fe.Op)
	}
	if !errors.Is(err, ErrPoisoned) {
		t.Fatal("FlushError does not match ErrPoisoned")
	}
	// Later commits fail fast with the same poison.
	if err := l.Commit([]Record{{Kind: KindBegin, Txn: 2}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("post-poison commit: %v", err)
	}
	if err := l.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("close: %v", err)
	}
}

func TestLogFailedWritePoisons(t *testing.T) {
	sink := &countingSink{failWrite: true}
	l := NewLog(sink)
	err := l.Commit([]Record{{Kind: KindBegin, Txn: 1}})
	var fe *FlushError
	if !errors.As(err, &fe) || fe.Op != "write" {
		t.Fatalf("error %v, want write FlushError", err)
	}
}

func TestLogCommitAfterClose(t *testing.T) {
	l := NewLog(&bytes.Buffer{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit([]Record{{Kind: KindBegin, Txn: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}
}

func TestLogCloseDrainsQueue(t *testing.T) {
	// Commits racing Close must either complete durably or report
	// ErrClosed — never silently vanish while reporting success.
	sink := &countingSink{}
	l := NewLog(sink)
	var acked int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := int64(c*50 + i + 1)
				err := l.Commit([]Record{{Kind: KindBegin, Txn: txn}, {Kind: KindCommit, Txn: txn}})
				if err == nil {
					atomic.AddInt64(&acked, 1)
				} else if !errors.Is(err, ErrClosed) {
					t.Errorf("unexpected commit error: %v", err)
				}
			}
		}(c)
	}
	time.Sleep(time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	stats, err := Recover(NewReader(bytes.NewReader(sink.bytes())), func(int64, int64) {})
	if err != nil {
		t.Fatal(err)
	}
	if int64(stats.Committed) < atomic.LoadInt64(&acked) {
		t.Fatalf("%d commits acked but only %d recovered", acked, stats.Committed)
	}
}

func TestLogMaxBatchSplitsFlushes(t *testing.T) {
	sink := &countingSink{}
	l := NewLog(sink, WithMaxBatch(2))
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_ = l.Commit([]Record{{Kind: KindBegin, Txn: int64(c + 1)}})
		}(c)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 6 {
		t.Fatalf("Seq = %d", got)
	}
	r := NewReader(bytes.NewReader(sink.bytes()))
	for i := 0; i < 6; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

func TestLogEmptyCommitIsNoop(t *testing.T) {
	l := NewLog(&bytes.Buffer{})
	if err := l.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 0 {
		t.Fatal("empty commit advanced seq")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterPoisonedAfterWriteError(t *testing.T) {
	// Satellite: a mid-group write error must stop the record count at
	// the failure and poison the writer.
	sink := &flakyWriter{failAt: 2}
	w := NewWriter(sink)
	err := w.AppendGroup([]Record{
		{Kind: KindBegin, Txn: 1},
		{Kind: KindUpdate, Txn: 1, Entity: 1, After: 2},
		{Kind: KindCommit, Txn: 1},
	})
	if err == nil {
		t.Fatal("append group succeeded through failing sink")
	}
	if got := w.Records(); got != 1 {
		t.Fatalf("Records = %d after failure at record 2, want 1", got)
	}
	// Every later operation fails fast with the original cause.
	if err := w.Append(Record{Kind: KindBegin, Txn: 2}); err == nil {
		t.Fatal("poisoned writer accepted append")
	} else if want := "wal: writer poisoned"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q missing %q", err, want)
	}
	if err := w.Sync(); err == nil {
		t.Fatal("poisoned writer accepted sync")
	}
	if got := w.Records(); got != 1 {
		t.Fatalf("Records moved after poison: %d", got)
	}
}

// flakyWriter fails the Nth write (1-based) and every write after it.
type flakyWriter struct {
	n      int
	failAt int
}

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n >= f.failAt {
		return len(p) / 2, fmt.Errorf("disk full at write %d", f.n)
	}
	return len(p), nil
}

func TestReaderChunkedMatchesRecordStream(t *testing.T) {
	// The buffered reader must produce exactly the same records as the
	// source stream regardless of how the source fragments reads.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []Record
	for i := int64(1); i <= 5000; i++ {
		rec := Record{Kind: KindUpdate, Txn: i, Entity: i % 97, Before: i - 1, After: i}
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&fragmentedReader{data: buf.Bytes()})
	for i, wr := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wr {
			t.Fatalf("record %d: %+v != %+v", i, got, wr)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("tail: %v", err)
	}
}

// fragmentedReader returns at most a few bytes per Read, in a cycle of
// awkward sizes, to exercise the Reader's compaction/refill logic.
type fragmentedReader struct {
	data []byte
	pos  int
	step int
}

func (f *fragmentedReader) Read(p []byte) (int, error) {
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	sizes := []int{1, 7, 36, 38, 64, 3}
	n := sizes[f.step%len(sizes)]
	f.step++
	if n > len(p) {
		n = len(p)
	}
	if n > len(f.data)-f.pos {
		n = len(f.data) - f.pos
	}
	copy(p, f.data[f.pos:f.pos+n])
	f.pos += n
	return n, nil
}
