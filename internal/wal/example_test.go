package wal_test

import (
	"bytes"
	"fmt"

	"granulock/internal/wal"
)

// Example writes a transfer transaction to the log, "crashes" before a
// second one commits, and recovers: the committed transfer survives,
// the in-flight one vanishes.
func Example() {
	var log bytes.Buffer
	w := wal.NewWriter(&log)

	// Txn 1 commits a transfer: entity 0 loses 25, entity 1 gains 25.
	_ = w.AppendGroup([]wal.Record{
		{Kind: wal.KindBegin, Txn: 1},
		{Kind: wal.KindUpdate, Txn: 1, Entity: 0, Before: 100, After: 75},
		{Kind: wal.KindUpdate, Txn: 1, Entity: 1, Before: 100, After: 125},
		{Kind: wal.KindCommit, Txn: 1},
	})
	// Txn 2 crashes mid-flight: update logged, commit never written.
	_ = w.AppendGroup([]wal.Record{
		{Kind: wal.KindBegin, Txn: 2},
		{Kind: wal.KindUpdate, Txn: 2, Entity: 0, Before: 75, After: 0},
	})

	state := map[int64]int64{0: 100, 1: 100}
	stats, _ := wal.Recover(wal.NewReader(&log), func(e, v int64) { state[e] = v })
	fmt.Printf("committed=%d incomplete=%d\n", stats.Committed, stats.Incomplete)
	fmt.Printf("balances: %d and %d (total %d)\n", state[0], state[1], state[0]+state[1])
	// Output:
	// committed=1 incomplete=1
	// balances: 75 and 125 (total 200)
}
