// Package stats provides the summary statistics the experiment harness
// reports: running mean/variance (Welford), Student-t confidence
// intervals over independent replications, and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a running mean and variance in one pass with good
// numerical behaviour. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// tTable95 holds two-sided 95% Student-t critical values by degrees of
// freedom for df 1..30, where the value still moves quickly.
var tTable95 = []float64{
	0,                                                             // df=0 unused
	12.706,                                                        // 1
	4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2..10
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11..20
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21..30
}

// tAnchors95 extends the table beyond df 30 with the standard anchor
// rows (40, 60, 120); between anchors — and beyond the last one toward
// the normal value 1.96 — the critical value is interpolated linearly
// in 1/df, the conventional rule for t tables, which is accurate to
// ~1e-3 here. This keeps TCritical95 continuous and strictly
// decreasing: a sweep crossing 31 replications no longer sees the CI
// half-width step from 2.042 to 1.96.
var tAnchors95 = []struct{ df, t float64 }{
	{30, 2.042}, {40, 2.021}, {60, 2.000}, {120, 1.980},
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tTable95) {
		return tTable95[df]
	}
	inv := 1 / float64(df)
	for i := len(tAnchors95) - 1; i >= 0; i-- {
		a := tAnchors95[i]
		if float64(df) < a.df {
			continue
		}
		// Interpolate in 1/df between this anchor and the next (or the
		// normal limit t=1.96 at 1/df -> 0 past the last anchor).
		hiDF, hiT := math.Inf(1), 1.96
		if i+1 < len(tAnchors95) {
			hiDF, hiT = tAnchors95[i+1].df, tAnchors95[i+1].t
		}
		invLo, invHi := 1/a.df, 1/hiDF
		frac := (invLo - inv) / (invLo - invHi)
		return a.t + frac*(hiT-a.t)
	}
	return 1.96 // unreachable: df >= 30 always matches the first anchor
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// (0 with fewer than two observations).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return TCritical95(w.n-1) * w.StdErr()
}

// String formats the estimate as "mean ± ci95".
func (w *Welford) String() string {
	return fmt.Sprintf("%.4g ± %.2g", w.Mean(), w.CI95())
}

// Summary is a frozen estimate: mean with a 95% confidence half-width.
type Summary struct {
	N    int
	Mean float64
	CI95 float64
}

// Summarize freezes the accumulator.
func (w *Welford) Summarize() Summary {
	return Summary{N: w.n, Mean: w.Mean(), CI95: w.CI95()}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted sample. It returns NaN for an empty sample
// or out-of-range q. NaN observations are ignored (see Quantiles). xs is
// not modified. For several quantiles of the same sample use Quantiles,
// which sorts once.
func Quantile(xs []float64, q float64) float64 {
	return Quantiles(xs, q)[0]
}

// Quantiles returns the quantiles of xs for every q in qs with a single
// copy and sort of the sample, in qs order. Each quantile is computed by
// linear interpolation on the sorted sample, as in Quantile.
//
// NaN policy: NaN observations carry no ordering information and would
// otherwise silently poison the sort (sort.Float64s leaves NaNs in
// unspecified positions), so they are dropped before sorting and
// quantiles are computed over the remaining observations. A quantile is
// NaN when q is outside [0, 1] or NaN, or when no non-NaN observations
// remain.
func Quantiles(xs []float64, qs ...float64) []float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = sortedQuantile(sorted, q)
	}
	return out
}

// sortedQuantile interpolates the q-quantile of an ascending sample.
func sortedQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BatchMeans estimates the mean of a (possibly autocorrelated) series of
// within-run observations with a confidence interval, using the method
// of non-overlapping batch means: the series is split into `batches`
// equal batches whose means are treated as approximately independent
// observations. At least 2 batches and one observation per batch are
// required; leftover observations at the tail are dropped. This is the
// standard way to get honest intervals from a single simulation run,
// where successive response times are correlated.
func BatchMeans(xs []float64, batches int) (Summary, error) {
	if batches < 2 {
		return Summary{}, fmt.Errorf("stats: batch count %d < 2", batches)
	}
	size := len(xs) / batches
	if size < 1 {
		return Summary{}, fmt.Errorf("stats: %d observations cannot fill %d batches", len(xs), batches)
	}
	var w Welford
	for b := 0; b < batches; b++ {
		sum := 0.0
		for _, x := range xs[b*size : (b+1)*size] {
			sum += x
		}
		w.Add(sum / float64(size))
	}
	return w.Summarize(), nil
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); samples
// outside the range land in the clamped edge buckets. NaN samples carry
// no position and are dropped (counted separately) rather than clamped:
// int(NaN) is implementation-defined in Go, so before this policy they
// silently landed in bucket 0 on common platforms.
type Histogram struct {
	Lo, Hi     float64
	Buckets    []int
	count      int
	droppedNaN int
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: bucket count %d < 1", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}, nil
}

// Add places one sample. NaN samples are dropped and counted in
// DroppedNaN.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.droppedNaN++
		return
	}
	idx := int(float64(len(h.Buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.count++
}

// Count returns the number of samples placed in buckets (NaN samples
// are excluded; see DroppedNaN).
func (h *Histogram) Count() int { return h.count }

// DroppedNaN returns the number of NaN samples dropped by Add.
func (h *Histogram) DroppedNaN() int { return h.droppedNaN }

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.count)
}
