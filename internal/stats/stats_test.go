package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 || w.StdErr() != 0 {
		t.Fatal("zero-value Welford not neutral")
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("single observation mishandled")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		ss := 0.0
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		naiveVar := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-naiveVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset with small spread: naive two-pass sum of squares
	// would lose precision; Welford must not.
	var w Welford
	const offset = 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		w.Add(x)
	}
	if math.Abs(w.Mean()-(offset+2)) > 1e-3 {
		t.Fatalf("mean %v", w.Mean())
	}
	if math.Abs(w.Variance()-1) > 1e-6 {
		t.Fatalf("variance %v, want 1", w.Variance())
	}
}

func TestTCritical95(t *testing.T) {
	if !math.IsNaN(TCritical95(0)) {
		t.Fatal("df=0 not NaN")
	}
	if math.Abs(TCritical95(1)-12.706) > 1e-9 {
		t.Fatalf("t(1) = %v", TCritical95(1))
	}
	if math.Abs(TCritical95(10)-2.228) > 1e-9 {
		t.Fatalf("t(10) = %v", TCritical95(10))
	}
	// Anchor rows of the extended table.
	for _, row := range []struct {
		df   int
		want float64
	}{{40, 2.021}, {60, 2.000}, {120, 1.980}} {
		if got := TCritical95(row.df); math.Abs(got-row.want) > 1e-9 {
			t.Fatalf("t(%d) = %v, want %v", row.df, got, row.want)
		}
	}
	// Past the last anchor the value approaches the normal 1.96 (the
	// true value at df=1000 is 1.9623).
	if v := TCritical95(1000); math.Abs(v-1.9623) > 5e-3 {
		t.Fatalf("t(1000) = %v", v)
	}
	// Monotone decreasing toward the normal value, with no step at the
	// old table edge (df 30 -> 31 used to jump 2.042 -> 1.96).
	prev := math.Inf(1)
	for df := 1; df < 500; df++ {
		v := TCritical95(df)
		if v >= prev {
			t.Fatalf("t not strictly decreasing at df=%d (%v -> %v)", df, prev, v)
		}
		if prev-v > 0.01 && df > 25 {
			t.Fatalf("t discontinuity at df=%d (%v -> %v)", df, prev, v)
		}
		if v < 1.96 {
			t.Fatalf("t(%d) = %v below the normal limit", df, v)
		}
		prev = v
	}
}

func TestCI95CoversForNormalish(t *testing.T) {
	var w Welford
	for _, x := range []float64{9, 10, 11, 10, 9.5, 10.5} {
		w.Add(x)
	}
	lo, hi := w.Mean()-w.CI95(), w.Mean()+w.CI95()
	if lo >= 10 || hi <= 10 {
		t.Fatalf("CI [%v, %v] excludes true-ish mean 10", lo, hi)
	}
}

func TestSummarize(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(3)
	s := w.Summarize()
	if s.N != 2 || s.Mean != 2 || s.CI95 != w.CI95() {
		t.Fatalf("summary %+v", s)
	}
}

func TestWelfordString(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	if w.String() == "" {
		t.Fatal("empty String")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Fatal("invalid quantile queries not NaN")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("single-element quantile")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("interpolated quantile %v, want 3", got)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if _, err := BatchMeans(xs, 1); err == nil {
		t.Fatal("1 batch accepted")
	}
	if _, err := BatchMeans(xs, 5); err == nil {
		t.Fatal("more batches than observations accepted")
	}
}

func TestBatchMeansKnownValues(t *testing.T) {
	// 8 observations, 2 batches of 4: batch means 2.5 and 6.5.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	s, err := BatchMeans(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 2 || math.Abs(s.Mean-4.5) > 1e-12 {
		t.Fatalf("summary %+v, want mean 4.5 over 2 batches", s)
	}
	if s.CI95 <= 0 {
		t.Fatal("zero CI for differing batches")
	}
}

func TestBatchMeansDropsTail(t *testing.T) {
	// 7 observations, 3 batches of 2: the 7th is dropped.
	xs := []float64{1, 1, 2, 2, 3, 3, 100}
	s, err := BatchMeans(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-2) > 1e-12 {
		t.Fatalf("mean %v, want 2 (tail not dropped?)", s.Mean)
	}
}

func TestBatchMeansConstantSeries(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7
	}
	s, err := BatchMeans(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 || s.CI95 != 0 {
		t.Fatalf("constant series summary %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	want := []int{3, 1, 1, 0, 2} // -3 clamps low, 42 clamps high
	for i, w := range want {
		if h.Buckets[i] != w {
			t.Fatalf("buckets %v, want %v", h.Buckets, want)
		}
	}
	if math.Abs(h.Fraction(0)-3.0/7.0) > 1e-12 {
		t.Fatalf("fraction %v", h.Fraction(0))
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)
	h.Add(math.NaN())
	h.Add(math.NaN())
	h.Add(9)
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2 (NaN counted?)", h.Count())
	}
	if h.DroppedNaN() != 2 {
		t.Fatalf("dropped %d, want 2", h.DroppedNaN())
	}
	if h.Buckets[0] != 1 {
		t.Fatalf("NaN clamped into bucket 0: %v", h.Buckets)
	}
	if math.Abs(h.Fraction(0)-0.5) > 1e-12 {
		t.Fatalf("fraction %v, want 0.5 over non-NaN samples", h.Fraction(0))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(5, 4, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h, _ := NewHistogram(0, 1, 2)
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram fraction nonzero")
	}
}

// TestQuantilesSingleSortMatchesQuantile checks the batched API against
// the one-at-a-time API on the same sample.
func TestQuantilesSingleSortMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	qs := []float64{0, 0.25, 0.5, 0.75, 0.95, 1}
	got := Quantiles(xs, qs...)
	if len(got) != len(qs) {
		t.Fatalf("Quantiles returned %d values for %d qs", len(got), len(qs))
	}
	for i, q := range qs {
		if want := Quantile(xs, q); math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("Quantiles[%v] = %v, Quantile says %v", q, got[i], want)
		}
	}
}

// TestQuantilesNaNPolicy pins the documented NaN handling: NaN samples
// are dropped before sorting (they used to poison the sort order
// silently), an all-NaN sample yields NaN, and out-of-range qs yield NaN
// without disturbing in-range ones.
func TestQuantilesNaNPolicy(t *testing.T) {
	nan := math.NaN()
	xs := []float64{nan, 3, nan, 1, 2, nan}
	got := Quantiles(xs, 0, 0.5, 1)
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Errorf("quantile %d over NaN-polluted sample = %v, want %v", i, got[i], want)
		}
	}
	if v := Quantile(xs, 0.5); v != 2 {
		t.Errorf("Quantile over NaN-polluted sample = %v, want 2", v)
	}
	if !math.IsNaN(Quantile([]float64{nan, nan}, 0.5)) {
		t.Error("all-NaN sample should yield NaN")
	}
	mixed := Quantiles(xs, -0.5, 0.5, 2)
	if !math.IsNaN(mixed[0]) || mixed[1] != 2 || !math.IsNaN(mixed[2]) {
		t.Errorf("out-of-range qs mishandled: %v", mixed)
	}
	if !math.IsNaN(Quantiles(nil, 0.5)[0]) {
		t.Error("empty sample should yield NaN")
	}
}
