package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var got []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events ran out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var e Engine
	var at1, at2 float64
	e.At(1.5, func() { at1 = e.Now() })
	e.At(2.5, func() { at2 = e.Now() })
	e.Run()
	if at1 != 1.5 || at2 != 2.5 {
		t.Fatalf("Now inside events: %v, %v", at1, at2)
	}
	if e.Now() != 2.5 {
		t.Fatalf("final Now = %v, want 2.5", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var e Engine
	var fired float64
	e.At(3, func() {
		e.After(2, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 5 {
		t.Fatalf("After(2) from t=3 fired at %v, want 5", fired)
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.At(1, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("event not pending after scheduling")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("event still pending after cancel")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var e Engine
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(float64(i), func() { got = append(got, i) }))
	}
	for i := 0; i < 20; i += 2 {
		e.Cancel(evs[i])
	}
	e.Run()
	if len(got) != 10 {
		t.Fatalf("ran %d events, want 10: %v", len(got), got)
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("order broken after cancels: %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []float64
	for _, d := range []float64{1, 2, 3, 4, 5} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	n := e.RunUntil(3)
	if n != 3 || len(got) != 3 {
		t.Fatalf("RunUntil(3) executed %d events (%v), want 3", n, got)
	}
	if e.Now() != 3 {
		t.Fatalf("Now after RunUntil(3) = %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10 after idle RunUntil", e.Now())
	}
}

func TestRunUntilIncludesHorizonEvents(t *testing.T) {
	var e Engine
	ran := false
	e.At(5, func() { ran = true })
	e.RunUntil(5)
	if !ran {
		t.Fatal("event exactly at horizon did not run")
	}
}

func TestSchedulingInsidePastPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCascadedScheduling(t *testing.T) {
	// Events scheduling further events: a chain of N hops lands at time N.
	var e Engine
	const n = 1000
	count := 0
	var hop func()
	hop = func() {
		count++
		if count < n {
			e.After(1, hop)
		}
	}
	e.After(1, hop)
	steps := e.Run()
	if steps != n || e.Now() != float64(n) {
		t.Fatalf("chain: steps=%d now=%v, want %d/%d", steps, e.Now(), n, n)
	}
}

func TestStepsCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Fatalf("Steps = %d, want 7", e.Steps())
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	// Property: any multiset of times is executed in sorted order.
	f := func(raw []uint16) bool {
		var e Engine
		var got []float64
		for _, r := range raw {
			d := float64(r)
			e.At(d, func() { got = append(got, d) })
		}
		e.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
