package sim

import (
	"math"
	"sort"
	"testing"
)

// TestAtRejectsNonFinite pins the regression: At used to reject NaN but
// silently accepted t = +Inf, enqueueing an event that could never
// meaningfully fire and corrupting Pending-based run-until logic.
func TestAtRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		bad := bad
		t.Run("", func(t *testing.T) {
			var e Engine
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%v) did not panic", bad)
				}
				if e.Pending() != 0 {
					t.Fatalf("rejected event left Pending()=%d", e.Pending())
				}
			}()
			e.At(bad, func() {})
		})
	}
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("After(+Inf) did not panic")
		}
	}()
	e.After(math.Inf(1), func() {})
}

// TestCancelThenReuse verifies the pool recycles a cancelled event for
// the very next schedule, and that the recycled event is a fully
// functional, independent event.
func TestCancelThenReuse(t *testing.T) {
	var e Engine
	cancelledRan := false
	ev := e.At(1, func() { cancelledRan = true })
	e.Cancel(ev)
	if len(e.free) != 1 {
		t.Fatalf("pool holds %d events after cancel, want 1", len(e.free))
	}
	ran := false
	ev2 := e.At(2, func() { ran = true })
	if ev2 != ev {
		t.Fatal("next At did not reuse the cancelled event's memory")
	}
	if !ev2.Pending() || ev2.Time() != 2 {
		t.Fatalf("recycled event in bad state: pending=%v t=%v", ev2.Pending(), ev2.Time())
	}
	e.Run()
	if cancelledRan {
		t.Fatal("cancelled closure ran on the recycled event")
	}
	if !ran {
		t.Fatal("recycled event did not fire")
	}
}

// TestFiringEventNotRecycledDuringCallback pins the pool's identity
// guarantee at Step boundaries: an At call inside a firing callback must
// never be handed the memory of the event that is currently firing — it
// becomes reusable only after the Step completes.
func TestFiringEventNotRecycledDuringCallback(t *testing.T) {
	var e Engine
	var firing, inside *Event
	firing = e.At(1, func() {
		inside = e.At(2, func() {})
		if inside == firing {
			t.Fatal("At inside callback returned the firing event's memory")
		}
		if firing.Pending() {
			t.Fatal("firing event still pending inside its own callback")
		}
	})
	if !e.Step() {
		t.Fatal("no event to step")
	}
	// After the step boundary the fired event is recyclable.
	reused := e.At(3, func() {})
	if reused != firing {
		t.Fatal("fired event was not recycled by the next At after Step")
	}
	e.Run()
}

// poolRef is the reference model of the stress test: a stable-sorted
// pending list ordered by (time, seq).
type poolRef struct {
	t   float64
	seq int
	id  int
}

// TestInterleavedAtCancelStepStress drives the engine with a
// deterministic pseudo-random interleaving of At, Cancel and Step and
// checks, against a brute-force reference model, that (1) events fire in
// (time, FIFO) order, (2) cancelled events never fire, and (3) the pool
// and the queue never share an event (no identity leak across Step
// boundaries).
func TestInterleavedAtCancelStepStress(t *testing.T) {
	var e Engine
	rng := uint64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	var pendingRef []poolRef // reference pending set, insertion order
	live := map[int]*Event{} // id -> handle for cancellable events
	var fired []int
	nextID := 0
	seq := 0

	checkInvariants := func() {
		t.Helper()
		inQueue := map[*Event]bool{}
		for i, ev := range e.queue {
			if ev.index != i {
				t.Fatalf("queue[%d].index = %d", i, ev.index)
			}
			inQueue[ev] = true
		}
		for _, ev := range e.free {
			if inQueue[ev] {
				t.Fatal("event is in the queue and the free pool at once")
			}
			if ev.Pending() {
				t.Fatal("pooled event claims to be pending")
			}
		}
		if len(pendingRef) != e.Pending() {
			t.Fatalf("reference has %d pending, engine has %d", len(pendingRef), e.Pending())
		}
	}

	const ops = 20000
	for op := 0; op < ops; op++ {
		switch k := next(10); {
		case k < 5: // schedule; coarse times force plenty of FIFO ties
			id := nextID
			nextID++
			tm := e.Now() + float64(next(8))
			id2 := id
			live[id] = e.At(tm, func() { fired = append(fired, id2) })
			pendingRef = append(pendingRef, poolRef{t: tm, seq: seq, id: id})
			seq++
		case k < 7: // cancel a random live event
			if len(pendingRef) == 0 {
				continue
			}
			victim := pendingRef[next(len(pendingRef))]
			e.Cancel(live[victim.id])
			delete(live, victim.id)
			for i, r := range pendingRef {
				if r.id == victim.id {
					pendingRef = append(pendingRef[:i], pendingRef[i+1:]...)
					break
				}
			}
		default: // step
			if len(pendingRef) == 0 {
				if e.Step() {
					t.Fatal("Step fired with empty reference model")
				}
				continue
			}
			// Reference winner: min (t, seq).
			win := 0
			for i, r := range pendingRef {
				if r.t < pendingRef[win].t || (r.t == pendingRef[win].t && r.seq < pendingRef[win].seq) {
					win = i
				}
			}
			want := pendingRef[win].id
			pendingRef = append(pendingRef[:win], pendingRef[win+1:]...)
			delete(live, want)
			before := len(fired)
			if !e.Step() {
				t.Fatal("Step fired nothing with events pending")
			}
			if len(fired) != before+1 || fired[before] != want {
				t.Fatalf("op %d: fired %d, reference says %d", op, fired[before], want)
			}
		}
		if op%500 == 0 {
			checkInvariants()
		}
	}
	checkInvariants()

	// Drain: the remainder must come out in exact (time, FIFO) order.
	sort.SliceStable(pendingRef, func(a, b int) bool {
		if pendingRef[a].t != pendingRef[b].t {
			return pendingRef[a].t < pendingRef[b].t
		}
		return pendingRef[a].seq < pendingRef[b].seq
	})
	start := len(fired)
	e.Run()
	tail := fired[start:]
	if len(tail) != len(pendingRef) {
		t.Fatalf("drain fired %d events, want %d", len(tail), len(pendingRef))
	}
	for i, r := range pendingRef {
		if tail[i] != r.id {
			t.Fatalf("drain order broke at %d: got id %d, want %d", i, tail[i], r.id)
		}
	}
}

// TestPooledRunMatchesFreshRun replays an identical workload on a warm
// (pool-heavy) engine and a fresh one and requires identical execution
// traces: recycled event memory must carry no identity into later runs.
func TestPooledRunMatchesFreshRun(t *testing.T) {
	trace := func(e *Engine) []int {
		var got []int
		base := e.Now()
		for i := 0; i < 200; i++ {
			i := i
			e.At(base+float64((i*7)%13), func() { got = append(got, i) })
		}
		for i := 0; i < 50; i += 2 {
			// Cancel a deterministic subset scheduled fresh each time.
			e.Cancel(e.At(base+float64(i%13), func() { got = append(got, 1000+i) }))
		}
		e.Run()
		return got
	}

	var fresh Engine
	want := trace(&fresh)

	var warm Engine
	for i := 0; i < 300; i++ { // churn to populate the pool
		warm.At(float64(i%5), func() {})
	}
	warm.Run()
	if len(warm.free) == 0 {
		t.Fatal("warm engine has an empty pool; churn failed")
	}
	got := trace(&warm)

	if len(got) != len(want) {
		t.Fatalf("warm run fired %d events, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled run diverged at %d: got %d, want %d", i, got[i], want[i])
		}
	}
}
