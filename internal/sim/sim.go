// Package sim implements a minimal discrete-event simulation engine.
//
// Events are closures scheduled at absolute simulated times and executed
// in time order; simultaneous events run in scheduling (FIFO) order, which
// keeps runs deterministic for a fixed seed. Time is a float64 number of
// abstract "time units", matching the unit system of the paper's model
// (e.g. iotime = 0.2 time units per entity).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in abstract time units.
type Time = float64

// Event is a scheduled closure. The zero value is not useful; obtain
// events from Engine.At or Engine.After. An Event may be cancelled until
// it fires.
type Event struct {
	t     Time
	seq   uint64 // tie-break: FIFO among simultaneous events
	fn    func()
	index int // heap index; -1 when not queued
}

// Time returns the time the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.t }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; a simulation runs on one
// goroutine (the model's parallelism is simulated, not real).
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
	steps uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	ev := &Event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay time units from now.
func (e *Engine) After(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.fn = nil
}

// Step executes the single earliest pending event, advancing the clock to
// its time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.t
	e.steps++
	fn := ev.fn
	ev.fn = nil
	fn()
	return true
}

// RunUntil executes events in order until the queue is exhausted or the
// next event is strictly after horizon. The clock finishes at exactly
// horizon (events at the horizon itself do run). It returns the number of
// events executed.
func (e *Engine) RunUntil(horizon Time) uint64 {
	start := e.steps
	for len(e.queue) > 0 && e.queue[0].t <= horizon {
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.steps - start
}

// Run executes events until the queue is empty and returns the number of
// events executed. Use RunUntil for models that generate work forever.
func (e *Engine) Run() uint64 {
	start := e.steps
	for e.Step() {
	}
	return e.steps - start
}

// eventQueue is a binary min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
