// Package sim implements a minimal discrete-event simulation engine.
//
// Events are closures scheduled at absolute simulated times and executed
// in time order; simultaneous events run in scheduling (FIFO) order, which
// keeps runs deterministic for a fixed seed. Time is a float64 number of
// abstract "time units", matching the unit system of the paper's model
// (e.g. iotime = 0.2 time units per entity).
//
// # Hot-path design
//
// The engine is the inner loop of every parameter sweep, so it is built
// for steady-state zero-allocation operation:
//
//   - The priority queue is an index-addressable 4-ary min-heap ordered
//     by (time, seq), inlined into the engine rather than going through
//     the container/heap interface. A 4-ary heap halves the tree depth
//     of a binary heap and keeps the children of a node on one cache
//     line, which matters when the queue holds thousands of events.
//   - Fired and cancelled events go to a free list and are recycled by
//     the next At/After call, so a standing population of events (the
//     common case: every completion schedules a successor) allocates
//     nothing after warm-up.
//
// An *Event handle is valid until the event fires or is cancelled;
// afterwards the engine may recycle its memory for a future event, so
// holding a dead handle and calling Pending on it is a programming
// error. Cancel remains safe on dead handles as long as no new event has
// been scheduled in between (the double-Cancel no-op the package has
// always promised); the engine never recycles the firing event before
// its callback has returned, so callbacks can never be handed their own
// event's memory by At.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in abstract time units.
type Time = float64

// Event is a scheduled closure. The zero value is not useful; obtain
// events from Engine.At or Engine.After. An Event may be cancelled until
// it fires; once it has fired or been cancelled the handle is dead and
// its memory may be recycled for a later event.
type Event struct {
	t     Time
	seq   uint64 // tie-break: FIFO among simultaneous events
	fn    func()
	index int // heap index; -1 when not queued
}

// Time returns the time the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.t }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; a simulation runs on one
// goroutine (the model's parallelism is simulated, not real).
type Engine struct {
	now   Time
	seq   uint64
	queue []*Event // 4-ary min-heap on (t, seq); index i's children are 4i+1..4i+4
	free  []*Event // recycled events, reused by the next At
	steps uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (before Now) panics: it would silently reorder causality. Non-finite
// times (NaN, ±Inf) panic too: a +Inf event can never meaningfully fire
// and corrupts Pending-based run-until logic.
//
//granulint:hotpath
func (e *Engine) At(t Time, fn func()) *Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		//granulint:ignore hotpath misuse guard that ends in panic; never taken on the hot path
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	if t < e.now {
		//granulint:ignore hotpath misuse guard that ends in panic; never taken on the hot path
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.t = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.siftUp(ev.index)
	return ev
}

// After schedules fn to run delay time units from now.
//
//granulint:hotpath
func (e *Engine) After(delay Time, fn func()) *Event {
	if delay < 0 {
		//granulint:ignore hotpath misuse guard that ends in panic; never taken on the hot path
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event from the queue and recycles it.
// Cancelling an event that already fired or was already cancelled is a
// no-op.
//
//granulint:hotpath
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	e.remove(ev.index)
	e.release(ev)
}

// Step executes the single earliest pending event, advancing the clock to
// its time. It reports whether an event was executed.
//
//granulint:hotpath
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue[0]
	e.remove(0)
	e.now = ev.t
	e.steps++
	fn := ev.fn
	ev.fn = nil
	// The event is recycled only after its callback returns: an At call
	// inside fn must never be handed the still-firing event's memory.
	fn()
	e.release(ev)
	return true
}

// RunUntil executes events in order until the queue is exhausted or the
// next event is strictly after horizon. The clock finishes at exactly
// horizon (events at the horizon itself do run). It returns the number of
// events executed.
//
//granulint:hotpath
func (e *Engine) RunUntil(horizon Time) uint64 {
	start := e.steps
	for len(e.queue) > 0 && e.queue[0].t <= horizon {
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.steps - start
}

// RunUntilSteps is RunUntil with a step budget: it stops after max
// events even if more remain before the horizon, so a caller can
// interleave the event loop with cancellation checks. It returns the
// number of events executed; a return below max means the horizon was
// reached (the clock is advanced to exactly horizon, as in RunUntil)
// and further calls execute nothing.
//
//granulint:hotpath
func (e *Engine) RunUntilSteps(horizon Time, max uint64) uint64 {
	start := e.steps
	for len(e.queue) > 0 && e.queue[0].t <= horizon && e.steps-start < max {
		e.Step()
	}
	if len(e.queue) == 0 || e.queue[0].t > horizon {
		if e.now < horizon {
			e.now = horizon
		}
	}
	return e.steps - start
}

// Run executes events until the queue is empty and returns the number of
// events executed. Use RunUntil for models that generate work forever.
func (e *Engine) Run() uint64 {
	start := e.steps
	for e.Step() {
	}
	return e.steps - start
}

// alloc returns a recycled event, or a fresh one if the pool is empty.
//
//granulint:hotpath
func (e *Engine) alloc() *Event {
	if n := len(e.free) - 1; n >= 0 {
		ev := e.free[n]
		e.free[n] = nil
		e.free = e.free[:n]
		return ev
	}
	return &Event{}
}

// release marks ev dead and returns it to the pool.
//
//granulint:hotpath
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// less orders the heap by (time, seq); seq is unique, so the order is
// total and pop order is independent of the heap's internal layout.
//
//granulint:hotpath
func less(a, b *Event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// siftUp restores the heap invariant upward from index i.
//
//granulint:hotpath
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = ev
	ev.index = i
}

// siftDown restores the heap invariant downward from index i.
//
//granulint:hotpath
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(q[c], q[best]) {
				best = c
			}
		}
		if !less(q[best], ev) {
			break
		}
		q[i] = q[best]
		q[i].index = i
		i = best
	}
	q[i] = ev
	ev.index = i
}

// remove deletes the event at heap index i, marking it unqueued. The
// caller still owns the event (Step runs it, Cancel recycles it).
//
//granulint:hotpath
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	ev := q[i]
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	ev.index = -1
	if i == n {
		return
	}
	q[i] = last
	last.index = i
	e.siftDown(i)
	if last.index == i {
		e.siftUp(i)
	}
}
