package sim

import "testing"

// churnDelay is a tiny deterministic LCG over (0, 1]; benchmarks must
// not depend on math/rand ordering across Go versions.
type churnDelay uint64

func (c *churnDelay) next() float64 {
	*c = *c*6364136223846793005 + 1442695040888963407
	return float64(uint64(*c)>>40)/float64(1<<24) + 1e-9
}

// BenchmarkEngineChurn is the raw event-loop microbenchmark recorded in
// BENCH_model.json: a standing population of events where every fired
// event schedules one replacement, so each iteration is exactly one
// schedule + one dispatch. In steady state a pooled engine does this
// with zero allocations.
func BenchmarkEngineChurn(b *testing.B) {
	var e Engine
	var rng churnDelay = 1
	var fn func()
	fn = func() { e.After(rng.next(), fn) }
	const pop = 1024
	for i := 0; i < pop; i++ {
		e.At(rng.next(), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineCancelChurn exercises the cancel path: each iteration
// schedules two events and cancels one of them before stepping.
func BenchmarkEngineCancelChurn(b *testing.B) {
	var e Engine
	var rng churnDelay = 1
	nop := func() {}
	const pop = 512
	for i := 0; i < pop; i++ {
		e.At(rng.next(), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := e.After(rng.next(), nop)
		drop := e.After(rng.next(), nop)
		e.Cancel(drop)
		_ = keep
		e.Step()
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.At(float64(j%97), func() {})
		}
		e.Run()
	}
}
