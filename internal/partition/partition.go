// Package partition models how the database is declustered across the
// shared-nothing system's disks, which determines how many
// sub-transactions a transaction splits into and where they run
// (paper §2 and §3.4).
package partition

import (
	"fmt"

	"granulock/internal/rng"
)

// Strategy is a data partitioning method.
type Strategy int

const (
	// Horizontal partitions every relation round-robin over all disks,
	// so every transaction splits into npros sub-transactions, one per
	// processor (PUᵢ = npros).
	Horizontal Strategy = iota
	// Random partitions relations over random disk subsets, so a
	// transaction splits into PUᵢ ~ U(1, npros) sub-transactions on a
	// uniformly chosen processor subset.
	Random
)

var strategyNames = [...]string{"horizontal", "random"}

// String returns the strategy name.
func (s Strategy) String() string {
	if s < 0 || int(s) >= len(strategyNames) {
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
	return strategyNames[s]
}

// ParseStrategy converts a name produced by String back to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("partition: unknown strategy %q", name)
}

// Assign returns the distinct processors a transaction's work is spread
// over. Horizontal returns all processors in index order; Random returns
// a uniform subset of uniform size ≥ 1 in random order. npros must be
// ≥ 1. src is only consulted for Random.
func Assign(s Strategy, npros int, src *rng.Source) []int {
	if npros < 1 {
		panic(fmt.Sprintf("partition: npros %d < 1", npros))
	}
	switch s {
	case Horizontal:
		all := make([]int, npros)
		for i := range all {
			all[i] = i
		}
		return all
	case Random:
		k := src.IntRange(1, npros)
		return src.Subset(k, npros)
	default:
		panic(fmt.Sprintf("partition: unknown strategy %d", int(s)))
	}
}

// SpreadEntities distributes nu entities over k processors as evenly as
// possible ("any given relation is equally partitioned among all the
// disk drives"). The result has length k, sums to nu, and no two shares
// differ by more than one; shares may be zero when nu < k.
func SpreadEntities(nu, k int) []int {
	if k < 1 {
		panic(fmt.Sprintf("partition: k %d < 1", k))
	}
	if nu < 0 {
		panic(fmt.Sprintf("partition: nu %d < 0", nu))
	}
	out := make([]int, k)
	base, extra := nu/k, nu%k
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}
