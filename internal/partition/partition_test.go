package partition

import (
	"testing"
	"testing/quick"

	"granulock/internal/rng"
)

func TestHorizontalAssignsAllProcessors(t *testing.T) {
	for _, npros := range []int{1, 2, 5, 10, 30} {
		got := Assign(Horizontal, npros, rng.New(1))
		if len(got) != npros {
			t.Fatalf("npros=%d: %d processors assigned", npros, len(got))
		}
		for i, p := range got {
			if p != i {
				t.Fatalf("npros=%d: assignment %v not identity", npros, got)
			}
		}
	}
}

func TestRandomAssignSubsetProperties(t *testing.T) {
	src := rng.New(2)
	for i := 0; i < 5000; i++ {
		got := Assign(Random, 10, src)
		if len(got) < 1 || len(got) > 10 {
			t.Fatalf("subset size %d outside [1,10]", len(got))
		}
		seen := map[int]bool{}
		for _, p := range got {
			if p < 0 || p >= 10 || seen[p] {
				t.Fatalf("invalid subset %v", got)
			}
			seen[p] = true
		}
	}
}

func TestRandomAssignSizeDistribution(t *testing.T) {
	// PUi ~ U(1, npros): each size equally likely.
	src := rng.New(3)
	const npros, draws = 5, 100000
	counts := make([]int, npros+1)
	for i := 0; i < draws; i++ {
		counts[len(Assign(Random, npros, src))]++
	}
	want := draws / npros
	for size := 1; size <= npros; size++ {
		if counts[size] < want*9/10 || counts[size] > want*11/10 {
			t.Fatalf("size %d count %d, want about %d", size, counts[size], want)
		}
	}
}

func TestRandomAssignCoversAllProcessors(t *testing.T) {
	src := rng.New(4)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		for _, p := range Assign(Random, 7, src) {
			seen[p] = true
		}
	}
	for p := 0; p < 7; p++ {
		if !seen[p] {
			t.Fatalf("processor %d never assigned", p)
		}
	}
}

func TestAssignSingleProcessor(t *testing.T) {
	for _, s := range []Strategy{Horizontal, Random} {
		got := Assign(s, 1, rng.New(5))
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("%v with npros=1: %v", s, got)
		}
	}
}

func TestAssignPanicsOnBadNpros(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("npros=0 did not panic")
		}
	}()
	Assign(Horizontal, 0, rng.New(1))
}

func TestSpreadEntitiesExact(t *testing.T) {
	cases := []struct {
		nu, k int
		want  []int
	}{
		{10, 5, []int{2, 2, 2, 2, 2}},
		{11, 5, []int{3, 2, 2, 2, 2}},
		{3, 5, []int{1, 1, 1, 0, 0}},
		{0, 3, []int{0, 0, 0}},
		{7, 1, []int{7}},
	}
	for _, c := range cases {
		got := SpreadEntities(c.nu, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("SpreadEntities(%d,%d) = %v", c.nu, c.k, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SpreadEntities(%d,%d) = %v, want %v", c.nu, c.k, got, c.want)
			}
		}
	}
}

func TestSpreadEntitiesProperties(t *testing.T) {
	f := func(nuRaw uint16, kRaw uint8) bool {
		nu := int(nuRaw)
		k := int(kRaw)%64 + 1
		got := SpreadEntities(nu, k)
		sum, lo, hi := 0, 1<<30, 0
		for _, v := range got {
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return len(got) == k && sum == nu && hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadEntitiesPanics(t *testing.T) {
	for _, c := range []struct{ nu, k int }{{5, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SpreadEntities(%d,%d) did not panic", c.nu, c.k)
				}
			}()
			SpreadEntities(c.nu, c.k)
		}()
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []Strategy{Horizontal, Random} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round-trip of %v failed", s)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy parsed")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy String empty")
	}
}
