package analytic

import (
	"math"
	"testing"
)

func TestMVAValidation(t *testing.T) {
	if _, _, err := MVA(nil, 1); err == nil {
		t.Fatal("no centers accepted")
	}
	if _, _, err := MVA([]float64{-1}, 1); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, _, err := MVA([]float64{1}, -1); err == nil {
		t.Fatal("negative population accepted")
	}
	if _, _, err := MVA([]float64{0, 0}, 3); err == nil {
		t.Fatal("zero total demand accepted")
	}
}

func TestMVAZeroPopulation(t *testing.T) {
	x, r, err := MVA([]float64{1, 2}, 0)
	if err != nil || x != 0 || r != 0 {
		t.Fatalf("empty network: %v %v %v", x, r, err)
	}
}

func TestMVASingleCustomer(t *testing.T) {
	// One customer never queues: R = ΣD, X = 1/ΣD.
	x, r, err := MVA([]float64{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-5) > 1e-12 || math.Abs(x-0.2) > 1e-12 {
		t.Fatalf("X=%v R=%v, want 0.2/5", x, r)
	}
}

func TestMVATwoBalancedCenters(t *testing.T) {
	// Textbook: D=[1,1], N=2 -> R_k = 1.5, R = 3, X = 2/3.
	x, r, err := MVA([]float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2.0/3.0) > 1e-12 || math.Abs(r-3) > 1e-12 {
		t.Fatalf("X=%v R=%v, want 2/3 and 3", x, r)
	}
}

func TestMVABottleneckAsymptote(t *testing.T) {
	// Large population: X -> 1/maxD, R -> N·maxD.
	demands := []float64{0.5, 2, 1}
	x, r, err := MVA(demands, 500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.5) > 0.001 {
		t.Fatalf("asymptotic X=%v, want 0.5", x)
	}
	if math.Abs(r-float64(500)/0.5) > 5 {
		t.Fatalf("asymptotic R=%v, want about 1000", r)
	}
}

func TestMVAThroughputMonotoneInPopulation(t *testing.T) {
	demands := []float64{1, 0.4}
	prevX := 0.0
	for n := 1; n <= 50; n++ {
		x, _, err := MVA(demands, n)
		if err != nil {
			t.Fatal(err)
		}
		if x < prevX-1e-12 {
			t.Fatalf("throughput decreased at n=%d", n)
		}
		if x > 1/1.0+1e-12 {
			t.Fatalf("throughput %v exceeds bottleneck bound at n=%d", x, n)
		}
		prevX = x
	}
}

func TestMVALittlesLaw(t *testing.T) {
	// N = X·R must hold exactly at every population.
	demands := []float64{0.7, 0.3, 1.1}
	for n := 1; n <= 20; n++ {
		x, r, err := MVA(demands, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x*r-float64(n)) > 1e-9 {
			t.Fatalf("Little violated at n=%d: X·R=%v", n, x*r)
		}
	}
}

func TestMVAInterp(t *testing.T) {
	demands := []float64{1, 1}
	x2, r2, _ := MVA(demands, 2)
	x3, r3, _ := MVA(demands, 3)
	x, r, err := MVAInterp(demands, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-(x2+x3)/2) > 1e-12 || math.Abs(r-(r2+r3)/2) > 1e-12 {
		t.Fatalf("interpolation X=%v R=%v", x, r)
	}
	// Integer population short-circuits.
	xi, ri, err := MVAInterp(demands, 2)
	if err != nil || xi != x2 || ri != r2 {
		t.Fatal("integer population mismatch")
	}
	if _, _, err := MVAInterp(demands, -0.5); err == nil {
		t.Fatal("negative population accepted")
	}
}
