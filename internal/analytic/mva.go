// Package analytic provides a closed-form companion to the simulation:
// exact Mean Value Analysis (MVA) for closed product-form queueing
// networks, and a first-order analytic approximation of the paper's
// model built on it. The approximation serves two purposes: it
// cross-checks the simulator (the two must agree where the
// approximation's assumptions hold) and it answers "roughly where is
// the optimum?" in microseconds instead of a simulation run.
package analytic

import "fmt"

// MVA computes the exact throughput and mean response time of a closed
// queueing network of fixed-rate (load-independent) FCFS centers with
// the given per-cycle service demands and integer customer population.
// This is the classic exact MVA recursion (Reiser & Lavenberg):
//
//	R_k(n) = D_k · (1 + Q_k(n−1))
//	X(n)   = n / Σ_k R_k(n)
//	Q_k(n) = X(n) · R_k(n)
func MVA(demands []float64, population int) (throughput, response float64, err error) {
	if len(demands) == 0 {
		return 0, 0, fmt.Errorf("analytic: no service centers")
	}
	for i, d := range demands {
		if d < 0 {
			return 0, 0, fmt.Errorf("analytic: negative demand %v at center %d", d, i)
		}
	}
	if population < 0 {
		return 0, 0, fmt.Errorf("analytic: negative population %d", population)
	}
	if population == 0 {
		return 0, 0, nil
	}
	queue := make([]float64, len(demands))
	var x, r float64
	for n := 1; n <= population; n++ {
		r = 0
		for k, d := range demands {
			rk := d * (1 + queue[k])
			r += rk
		}
		if r == 0 {
			return 0, 0, fmt.Errorf("analytic: zero total demand")
		}
		x = float64(n) / r
		for k, d := range demands {
			queue[k] = x * d * (1 + queue[k])
		}
	}
	return x, r, nil
}

// MVAInterp evaluates MVA at a real-valued population by linear
// interpolation between the neighbouring integer populations, which the
// fixed-point iteration of Predict needs (the mean active population is
// fractional).
func MVAInterp(demands []float64, population float64) (throughput, response float64, err error) {
	if population < 0 {
		return 0, 0, fmt.Errorf("analytic: negative population %v", population)
	}
	lo := int(population)
	frac := population - float64(lo)
	xLo, rLo, err := MVA(demands, lo)
	if err != nil {
		return 0, 0, err
	}
	if frac == 0 {
		return xLo, rLo, nil
	}
	xHi, rHi, err := MVA(demands, lo+1)
	if err != nil {
		return 0, 0, err
	}
	return xLo + frac*(xHi-xLo), rLo + frac*(rHi-rLo), nil
}
