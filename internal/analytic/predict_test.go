package analytic

import (
	"math"
	"testing"

	"granulock/internal/model"
	"granulock/internal/partition"
	"granulock/internal/workload"
)

func paperBase() model.Params {
	return model.Params{
		DBSize:       5000,
		Ltot:         100,
		NTrans:       10,
		MaxTransize:  500,
		CPUTime:      0.05,
		IOTime:       0.2,
		LockCPUTime:  0.01,
		LockIOTime:   0.2,
		NPros:        10,
		TMax:         1000,
		Partitioning: partition.Horizontal,
		Placement:    workload.PlacementBest,
		Seed:         1,
	}
}

func TestPredictValidation(t *testing.T) {
	p := paperBase()
	p.DBSize = 0
	if _, err := Predict(p); err == nil {
		t.Fatal("invalid params accepted")
	}
	p = paperBase()
	p.Partitioning = partition.Random
	if _, err := Predict(p); err == nil {
		t.Fatal("random partitioning accepted")
	}
}

func TestPredictMoments(t *testing.T) {
	pred, err := Predict(paperBase())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.MeanEntities-250.5) > 1e-9 {
		t.Fatalf("mean entities %v, want 250.5", pred.MeanEntities)
	}
	// Best placement, ltot=100: LU = ceil(NU/50); mean over 1..500 is
	// close to (250.5)/50 ~ 5.5.
	if pred.MeanLocks < 5 || pred.MeanLocks > 6 {
		t.Fatalf("mean locks %v, want about 5.5", pred.MeanLocks)
	}
}

func TestPredictSanity(t *testing.T) {
	pred, err := Predict(paperBase())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Throughput <= 0 || pred.NoContention <= 0 {
		t.Fatalf("non-positive estimates: %+v", pred)
	}
	if pred.Throughput > pred.NoContention+1e-9 {
		t.Fatalf("contention estimate %v above optimistic bound %v", pred.Throughput, pred.NoContention)
	}
	if pred.MeanActive <= 0 || pred.MeanActive > float64(paperBase().NTrans) {
		t.Fatalf("mean active %v", pred.MeanActive)
	}
	if pred.BlockProbability < 0 || pred.BlockProbability > 0.95 {
		t.Fatalf("block probability %v", pred.BlockProbability)
	}
}

func TestPredictAgreesWithSimulationModerateGranularity(t *testing.T) {
	// At the paper's base point the disks saturate and the analytic
	// model should land close to the simulator.
	p := paperBase()
	pred, err := Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := pred.Throughput / m.Throughput
	if ratio < 0.75 || ratio > 1.35 {
		t.Fatalf("analytic %v vs simulated %v (ratio %v)", pred.Throughput, m.Throughput, ratio)
	}
}

func TestPredictAgreesAcrossProcessors(t *testing.T) {
	for _, npros := range []int{1, 5, 20} {
		p := paperBase()
		p.NPros = npros
		pred, err := Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := model.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		ratio := pred.Throughput / m.Throughput
		if ratio < 0.6 || ratio > 1.6 {
			t.Fatalf("npros=%d: analytic %v vs simulated %v", npros, pred.Throughput, m.Throughput)
		}
	}
}

func TestPredictCapturesFineGranularityPenalty(t *testing.T) {
	// The analytic model must reproduce the paper's headline ordering:
	// moderate granularity beats both extremes for the base workload.
	coarse := predictAt(t, 1)
	mid := predictAt(t, 50)
	fine := predictAt(t, 5000)
	if mid.Throughput <= coarse.Throughput {
		t.Fatalf("analytic: mid (%v) not above coarse (%v)", mid.Throughput, coarse.Throughput)
	}
	if mid.Throughput <= fine.Throughput {
		t.Fatalf("analytic: mid (%v) not above fine (%v)", mid.Throughput, fine.Throughput)
	}
	// Blocking must be near-certain at one lock and small at moderate.
	if coarse.BlockProbability < 0.9 {
		t.Fatalf("coarse block probability %v, want near 0.95", coarse.BlockProbability)
	}
	if mid.BlockProbability > 0.5 {
		t.Fatalf("moderate block probability %v unexpectedly high", mid.BlockProbability)
	}
}

func predictAt(t *testing.T, ltot int) Prediction {
	t.Helper()
	p := paperBase()
	p.Ltot = ltot
	pred, err := Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func TestPredictMixedClasses(t *testing.T) {
	p := paperBase()
	p.Classes = workload.SmallLargeMix(50, 500, 0.8)
	pred, err := Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8*25.5 + 0.2*250.5
	if math.Abs(pred.MeanEntities-want) > 1e-9 {
		t.Fatalf("mix mean entities %v, want %v", pred.MeanEntities, want)
	}
	if pred.Throughput <= 0 {
		t.Fatal("no throughput for mix")
	}
}

func TestAnalyticOptimalGranularity(t *testing.T) {
	p := paperBase()
	grid := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	best, curve, err := OptimalGranularity(p, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(grid) {
		t.Fatalf("curve length %d", len(curve))
	}
	// The analytic optimum must agree with the paper: interior, below
	// 200 locks.
	if best <= 1 || best > 200 {
		t.Fatalf("analytic optimum %d, want interior and below 200", best)
	}
	if _, _, err := OptimalGranularity(p, nil); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func BenchmarkPredict(b *testing.B) {
	p := paperBase()
	for i := 0; i < b.N; i++ {
		if _, err := Predict(p); err != nil {
			b.Fatal(err)
		}
	}
}
