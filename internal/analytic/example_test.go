package analytic_test

import (
	"fmt"

	"granulock/internal/analytic"
)

// ExampleMVA solves the textbook two-balanced-centers network.
func ExampleMVA() {
	x, r, _ := analytic.MVA([]float64{1, 1}, 2)
	fmt.Printf("X=%.4f R=%.1f\n", x, r)
	// Output:
	// X=0.6667 R=3.0
}
