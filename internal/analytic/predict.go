package analytic

import (
	"fmt"
	"math"

	"granulock/internal/model"
	"granulock/internal/partition"
	"granulock/internal/workload"
)

// Prediction is the analytic estimate of one configuration.
type Prediction struct {
	// Throughput is the contention-adjusted estimate (transactions per
	// time unit).
	Throughput float64
	// NoContention is the MVA throughput ignoring lock conflicts — an
	// optimistic estimate that coincides with Throughput when conflicts
	// are rare.
	NoContention float64
	// MeanActive is the estimated mean number of transactions holding
	// locks.
	MeanActive float64
	// BlockProbability is the estimated per-request blocking
	// probability at the fixed point.
	BlockProbability float64
	// MeanLocks and MeanEntities echo the workload moments the estimate
	// used.
	MeanLocks    float64
	MeanEntities float64
}

// Predict analytically approximates the model's steady state for
// horizontally partitioned configurations.
//
// The approximation views one processor as a closed two-center (disk,
// CPU) queueing network whose population is the mean number of active
// transactions A (each active transaction keeps exactly one
// sub-transaction per processor). Per active cycle a transaction
// demands NU/npros entities of disk and CPU service plus its share of
// lock work, inflated by the expected number of lock-request attempts
// 1/(1−β): every denied request is re-issued and re-paid. The blocking
// probability β = min(A·LU/ltot, βmax) follows the paper's conflict
// model, and a blocked transaction waits about half a blocker response
// time. Iterating A to a fixed point yields throughput by Little's law.
//
// The approximation deliberately ignores the serialization of the lock
// manager itself and the fork-join synchronization skew, so it is an
// optimistic estimate — closest to simulation at coarse-to-moderate
// granularity, degrading (but preserving ordering) at entity-level
// locking under heavy load.
func Predict(p model.Params) (Prediction, error) {
	if err := p.Validate(); err != nil {
		return Prediction{}, err
	}
	if p.Partitioning != partition.Horizontal {
		return Prediction{}, fmt.Errorf("analytic: only horizontal partitioning is supported (got %v)", p.Partitioning)
	}

	classes := effectiveClasses(p)
	nu := meanEntities(classes)
	lu := meanLocks(classes, p)
	npros := float64(p.NPros)

	demandsAt := func(attempts float64) []float64 {
		dio := nu/npros*p.IOTime + attempts*lu*p.LockIOTime/npros
		dcpu := nu/npros*p.CPUTime + attempts*lu*p.LockCPUTime/npros
		return []float64{dio, dcpu}
	}

	// Optimistic baseline: full population, single attempt, no blocking.
	noContX, _, err := MVA(demandsAt(1), p.NTrans)
	if err != nil {
		return Prediction{}, err
	}

	const betaMax = 0.95
	ntrans := float64(p.NTrans)
	a := ntrans // start fully active
	var beta, r float64
	for iter := 0; iter < 500; iter++ {
		beta = a * lu / float64(p.Ltot)
		if beta > betaMax {
			beta = betaMax
		}
		attempts := 1 / (1 - beta)
		_, r, err = MVAInterp(demandsAt(attempts), a)
		if err != nil {
			return Prediction{}, err
		}
		// Cycle = active response + expected blocked time. A blocked
		// transaction waits out the residual life of its blocker's
		// active phase, ~R/2, once per denied attempt; denied attempts
		// per completion = attempts − 1.
		cycle := r + (attempts-1)*(r/2)
		next := ntrans * r / cycle
		if next > ntrans {
			next = ntrans
		}
		if math.Abs(next-a) < 1e-10 {
			a = next
			break
		}
		a = 0.5*a + 0.5*next // damped to guarantee convergence
	}
	_, r, err = MVAInterp(demandsAt(1/(1-beta)), a)
	if err != nil {
		return Prediction{}, err
	}
	throughput := 0.0
	if r > 0 {
		throughput = a / r
	}
	return Prediction{
		Throughput:       throughput,
		NoContention:     noContX,
		MeanActive:       a,
		BlockProbability: beta,
		MeanLocks:        lu,
		MeanEntities:     nu,
	}, nil
}

// effectiveClasses mirrors Params.classes (unexported there).
func effectiveClasses(p model.Params) []workload.Class {
	if len(p.Classes) > 0 {
		return p.Classes
	}
	return workload.Uniform(p.MaxTransize)
}

// meanEntities returns E[NU] of the mix.
func meanEntities(classes []workload.Class) float64 {
	total := 0.0
	for _, c := range classes {
		total += c.Weight
	}
	mean := 0.0
	for _, c := range classes {
		mean += c.Weight / total * float64(c.MaxTransize+1) / 2
	}
	return mean
}

// meanLocks returns E[LU] of the mix by exact summation over the
// uniform size distribution of each class.
func meanLocks(classes []workload.Class, p model.Params) float64 {
	total := 0.0
	for _, c := range classes {
		total += c.Weight
	}
	mean := 0.0
	for _, c := range classes {
		sum := 0.0
		for nuv := 1; nuv <= c.MaxTransize; nuv++ {
			sum += float64(workload.LocksRequired(p.Placement, nuv, p.Ltot, p.DBSize))
		}
		mean += c.Weight / total * sum / float64(c.MaxTransize)
	}
	return mean
}

// OptimalGranularity sweeps the standard granularity grid analytically
// and returns the ltot maximizing predicted throughput. It evaluates in
// microseconds, making it usable as an online tuning heuristic; verify
// the answer with the simulator.
func OptimalGranularity(p model.Params, grid []int) (best int, curve []Prediction, err error) {
	if len(grid) == 0 {
		return 0, nil, fmt.Errorf("analytic: empty granularity grid")
	}
	curve = make([]Prediction, len(grid))
	bestX := -1.0
	for i, ltot := range grid {
		q := p
		q.Ltot = ltot
		pred, err := Predict(q)
		if err != nil {
			return 0, nil, err
		}
		curve[i] = pred
		if pred.Throughput > bestX {
			bestX = pred.Throughput
			best = ltot
		}
	}
	return best, curve, nil
}
