// Package obs is the reproduction's unified observability core: a
// zero-dependency (stdlib-only) metrics registry in the Prometheus
// data model. Counters, gauges and fixed-bucket histograms are grouped
// into named families, optionally split by label values; a Registry
// exposes every family in the Prometheus text exposition format
// (WriteTo, Handler) and as a structured snapshot for tests.
//
// The package is the read side of every subsystem's instrumentation:
// the simulation model (via its Observer seam), the lock managers, the
// network lock service and the executable engine all accept an optional
// *Registry and stay completely silent — and allocation-free on their
// hot paths — when none is attached. One registry may be shared across
// subsystems; family names are namespaced per package
// (granulock_sim_*, granulock_lockmgr_*, granulock_locksrv_*, ...).
//
// All metric operations are safe for concurrent use. Counter and gauge
// updates are single atomic operations; histogram observations are two
// atomics and a CAS loop on the sum.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind int

// The metric kinds of the Prometheus data model this package supports.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds; an implicit +Inf bucket catches everything above the last.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // one per bound, +Inf last
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample. NaN samples are dropped (they would
// poison the sum and match no bucket).
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x (le semantics)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns the cumulative per-bound counts (le semantics,
// +Inf last), the total count and the sum, mutually consistent enough
// for exposition (Prometheus scrapes tolerate small skew).
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.buckets))
	running := int64(0)
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// DefBuckets is a general-purpose latency bucket ladder (roughly
// logarithmic over four decades); callers with known ranges should
// pass their own.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// ExpBuckets returns n buckets growing geometrically from start by
// factor: start, start·factor, ... Convenience for wide-range series.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad exponential buckets (start=%v factor=%v n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// child is one (label values → metric) entry of a family.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // gauge-func families only
}

// Family is one named metric family: every series sharing a name,
// help string, kind and label-name set.
type Family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// labelKey joins label values into a map key. The separator cannot
// appear in any reasonable label value; collisions only merge series,
// never corrupt memory.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// get returns the child for the given label values, creating it on
// first use.
func (f *Family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case KindCounter:
			ch.c = &Counter{}
		case KindGauge:
			ch.g = &Gauge{}
		case KindHistogram:
			h := &Histogram{bounds: f.bounds}
			h.buckets = make([]atomic.Int64, len(f.bounds)+1)
			ch.h = h
		}
		f.children[key] = ch
	}
	return ch
}

// sortedChildren snapshots the children in label-value order, for
// deterministic exposition.
func (f *Family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, ch)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a counter family split by labels.
type CounterVec struct{ f *Family }

// With returns the counter for the given label values (created on
// first use). The value pointer is stable: callers should look it up
// once and keep it, not call With on hot paths.
func (v CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// GaugeVec is a gauge family split by labels.
type GaugeVec struct{ f *Family }

// With returns the gauge for the given label values.
func (v GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// HistogramVec is a histogram family split by labels.
type HistogramVec struct{ f *Family }

// With returns the histogram for the given label values.
func (v HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// Registry holds metric families and renders them. The zero value is
// not usable; create with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// family registers (or re-fetches) a family. Registration is
// idempotent: asking again for the same name with the same kind and
// label set returns the existing family, so two subsystems sharing a
// registry may both declare the families they write. A name re-used
// with a different kind or label set is a programming error and
// panics.
func (r *Registry) family(name, help string, kind Kind, labels []string, bounds []float64) *Family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q (metric %s)", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %v%v, was %v%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &Family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// NewCounter registers (or fetches) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).get(nil).c
}

// NewCounterVec registers (or fetches) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{r.family(name, help, KindCounter, labels, nil)}
}

// NewGauge registers (or fetches) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).get(nil).g
}

// NewGaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{r.family(name, help, KindGauge, labels, nil)}
}

// NewGaugeFunc registers a gauge evaluated at exposition time — for
// quantities the owner already tracks (open sessions, parked waiters)
// where a mirror would drift. Re-registering the same name keeps the
// first function.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[labelKey(nil)]; ok {
		if ch.fn == nil {
			ch.fn = fn
		}
		return
	}
	f.children[labelKey(nil)] = &child{fn: fn}
}

// NewHistogram registers (or fetches) an unlabeled histogram with the
// given upper-bound buckets (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(name, buckets)
	return r.family(name, help, KindHistogram, nil, buckets).get(nil).h
}

// NewHistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) HistogramVec {
	checkBuckets(name, buckets)
	return HistogramVec{r.family(name, help, KindHistogram, labels, buckets)}
}

// checkBuckets validates a histogram's bucket ladder.
func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s without buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly increasing at %d", name, i))
		}
	}
	if math.IsNaN(buckets[0]) || math.IsInf(buckets[len(buckets)-1], 0) {
		panic(fmt.Sprintf("obs: histogram %s has non-finite bucket bound", name))
	}
}

// sortedFamilies snapshots the families in name order.
func (r *Registry) sortedFamilies() []*Family {
	r.mu.Lock()
	out := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Sample is one exposed series value: the flattened, test-friendly
// view of a registry. Histograms expand into name_bucket (with an "le"
// label), name_sum and name_count samples, exactly as exposed.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label's value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Snapshot returns every series currently exposed, in exposition
// order. It is the programmatic twin of WriteTo, for tests and
// embedding processes.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.sortedFamilies() {
		for _, ch := range f.sortedChildren() {
			base := make(map[string]string, len(f.labels)+1)
			for i, l := range f.labels {
				base[l] = ch.values[i]
			}
			switch {
			case ch.fn != nil:
				out = append(out, Sample{Name: f.name, Labels: base, Value: ch.fn()})
			case f.kind == KindHistogram:
				cum, count, sum := ch.h.snapshot()
				for i, bound := range f.bounds {
					lbl := cloneLabels(base)
					lbl["le"] = formatFloat(bound)
					out = append(out, Sample{Name: f.name + "_bucket", Labels: lbl, Value: float64(cum[i])})
				}
				lbl := cloneLabels(base)
				lbl["le"] = "+Inf"
				out = append(out, Sample{Name: f.name + "_bucket", Labels: lbl, Value: float64(cum[len(cum)-1])})
				out = append(out, Sample{Name: f.name + "_sum", Labels: base, Value: sum})
				out = append(out, Sample{Name: f.name + "_count", Labels: base, Value: float64(count)})
			case f.kind == KindCounter:
				out = append(out, Sample{Name: f.name, Labels: base, Value: float64(ch.c.Value())})
			default:
				out = append(out, Sample{Name: f.name, Labels: base, Value: ch.g.Value()})
			}
		}
	}
	return out
}

// Value looks one series up by name and exact label set; ok reports
// whether it exists. A convenience for tests.
func (r *Registry) Value(name string, labels map[string]string) (v float64, ok bool) {
	for _, s := range r.Snapshot() {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, want := range labels {
			if s.Labels[k] != want {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// cloneLabels copies a label map.
func cloneLabels(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validName checks a metric or label name against the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]* (colons allowed in metric names
// only by convention; we accept them in both).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
