package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text-format exposition (the format
// WriteTo writes) back into samples — a hand-rolled, stdlib-only
// parser used by the golden tests and the lockd admin smoke test to
// assert that /metrics output is well-formed. It validates the line
// grammar strictly: metric and label names must match the Prometheus
// character set, label values must be correctly quoted and escaped,
// values must parse as floats, and # HELP / # TYPE comments must be
// well-formed (TYPE must name a known metric type).
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return out, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return out, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: scan: %w", err)
	}
	return out, nil
}

// checkComment validates a # HELP / # TYPE line; other comments are
// free-form and pass.
func checkComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare "#" comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

// parseSampleLine parses `name[{label="value",...}] value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	i := 0
	n := len(line)
	// Metric name.
	for i < n && isNameChar(line[i], i) {
		i++
	}
	name := line[:i]
	if !validName(name) {
		return Sample{}, fmt.Errorf("invalid metric name in %q", line)
	}
	labels := map[string]string{}
	if i < n && line[i] == '{' {
		i++
		for {
			if i >= n {
				return Sample{}, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				i++
				break
			}
			start := i
			for i < n && isNameChar(line[i], i-start) {
				i++
			}
			lname := line[start:i]
			if !validName(lname) {
				return Sample{}, fmt.Errorf("invalid label name in %q", line)
			}
			if i >= n || line[i] != '=' {
				return Sample{}, fmt.Errorf("missing '=' after label %q in %q", lname, line)
			}
			i++
			if i >= n || line[i] != '"' {
				return Sample{}, fmt.Errorf("unquoted value for label %q in %q", lname, line)
			}
			i++
			var val strings.Builder
			for {
				if i >= n {
					return Sample{}, fmt.Errorf("unterminated label value in %q", line)
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					i++
					if i >= n {
						return Sample{}, fmt.Errorf("dangling escape in %q", line)
					}
					switch line[i] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return Sample{}, fmt.Errorf("bad escape \\%c in %q", line[i], line)
					}
					i++
					continue
				}
				val.WriteByte(c)
				i++
			}
			if _, dup := labels[lname]; dup {
				return Sample{}, fmt.Errorf("duplicate label %q in %q", lname, line)
			}
			labels[lname] = val.String()
			if i < n && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return Sample{}, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	v, err := strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("bad sample value %q in %q", rest[0], line)
	}
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return Sample{}, fmt.Errorf("bad timestamp %q in %q", rest[1], line)
		}
	}
	return Sample{Name: name, Labels: labels, Value: v}, nil
}

// isNameChar reports whether c may appear at position i of a name.
func isNameChar(c byte, i int) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return i > 0
	default:
		return false
	}
}
