package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("test_level", "level")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	// Idempotent re-registration returns the same series.
	if r.NewCounter("test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.NewGauge("test_x", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency", "latency", []float64{1, 2, 5})
	for _, x := range []float64{0.5, 1, 1.5, 2, 3, 100, math.NaN()} {
		h.Observe(x)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6 (NaN dropped)", got)
	}
	if got := h.Sum(); got != 0.5+1+1.5+2+3+100 {
		t.Fatalf("sum = %v", got)
	}
	cum, count, _ := h.snapshot()
	want := []int64{2, 4, 5, 6} // le=1, le=2, le=5, le=+Inf (cumulative)
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 6 {
		t.Fatalf("snapshot count = %d", count)
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_events_total", "events", "kind")
	cv.With("grant").Add(3)
	cv.With("deny").Inc()
	cv.With("grant").Inc()
	if v, ok := r.Value("test_events_total", map[string]string{"kind": "grant"}); !ok || v != 4 {
		t.Fatalf("grant = %v ok=%v, want 4", v, ok)
	}
	if v, ok := r.Value("test_events_total", map[string]string{"kind": "deny"}); !ok || v != 1 {
		t.Fatalf("deny = %v ok=%v, want 1", v, ok)
	}
	if _, ok := r.Value("test_events_total", map[string]string{"kind": "nope"}); ok {
		t.Fatal("missing label value reported present")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.NewGaugeFunc("test_live", "live", func() float64 { return n })
	if v, ok := r.Value("test_live", nil); !ok || v != 7 {
		t.Fatalf("gauge func = %v ok=%v", v, ok)
	}
	n = 9
	if v, _ := r.Value("test_live", nil); v != 9 {
		t.Fatalf("gauge func not re-evaluated: %v", v)
	}
}

// TestExpositionGolden pins the exact text-format output of a small
// registry: families in name order, HELP/TYPE headers, label and help
// escaping, histogram expansion.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_events_total", "Events by kind.", "kind")
	cv.With("deny").Add(2)
	cv.With("grant").Add(40)
	g := r.NewGauge("test_active", "Currently active.\nSecond line with \\ backslash.")
	g.Set(3.5)
	h := r.NewHistogram("test_wait_seconds", "Wait time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	ev := r.NewCounterVec("test_odd_total", "Odd labels.", "path")
	ev.With(`a"b\c`).Inc()

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_active Currently active.\nSecond line with \\ backslash.
# TYPE test_active gauge
test_active 3.5
# HELP test_events_total Events by kind.
# TYPE test_events_total counter
test_events_total{kind="deny"} 2
test_events_total{kind="grant"} 40
# HELP test_odd_total Odd labels.
# TYPE test_odd_total counter
test_odd_total{path="a\"b\\c"} 1
# HELP test_wait_seconds Wait time.
# TYPE test_wait_seconds histogram
test_wait_seconds_bucket{le="0.1"} 1
test_wait_seconds_bucket{le="1"} 2
test_wait_seconds_bucket{le="+Inf"} 3
test_wait_seconds_sum 2.55
test_wait_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionParsesAsValidText is the format-validity golden: the
// registry's own output must round-trip through the hand-rolled
// Prometheus text parser, sample for sample.
func TestExpositionParsesAsValidText(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_events_total", "events", "kind")
	cv.With("grant").Add(12)
	cv.With(`weird"kind\with,commas`).Inc()
	r.NewGauge("test_temp", "temp").Set(-3.25)
	h := r.NewHistogram("test_lat", "lat", []float64{1, 10, 100})
	h.Observe(7)
	r.NewGaugeFunc("test_fn", "fn", func() float64 { return 42 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition did not parse: %v\n%s", err, b.String())
	}
	snap := r.Snapshot()
	if len(parsed) != len(snap) {
		t.Fatalf("parsed %d samples, snapshot has %d", len(parsed), len(snap))
	}
	for i, want := range snap {
		got := parsed[i]
		if got.Name != want.Name || got.Value != want.Value || len(got.Labels) != len(want.Labels) {
			t.Fatalf("sample %d: got %+v want %+v", i, got, want)
		}
		for k, v := range want.Labels {
			if got.Labels[k] != v {
				t.Fatalf("sample %d label %s: got %q want %q", i, k, got.Labels[k], v)
			}
		}
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	bad := []string{
		`3metric 1`,                // name starts with digit
		`metric{l=unquoted} 1`,     // unquoted label value
		`metric{l="open} 1`,        // unterminated quote
		`metric{l="x"} notanumber`, // bad value
		`metric 1 2 3`,             // trailing junk
		"# TYPE metric banana",     // unknown type
		`metric{l="a",l="b"} 1`,    // duplicate label
		`metric{l="bad\escape"} 1`, // invalid escape
	}
	for _, line := range bad {
		if _, err := ParseText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseText accepted malformed line %q", line)
		}
	}
	ok := "# random comment\nmetric_total 5 1700000000000\n\nother{a=\"b\"} +Inf\n"
	if _, err := ParseText(strings.NewReader(ok)); err != nil {
		t.Errorf("ParseText rejected valid input: %v", err)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_n_total", "n")
	g := r.NewGauge("test_g", "g")
	h := r.NewHistogram("test_h", "h", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
