package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text
// exposition format version this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders every family in the Prometheus text exposition
// format (version 0.0.4): families in name order, one # HELP and
// # TYPE header each, series in label-value order, histograms as
// cumulative _bucket/_sum/_count. The output is deterministic for a
// given registry state, so tests can golden it.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range children {
			switch {
			case ch.fn != nil:
				writeSample(cw, f.name, f.labels, ch.values, "", "", formatFloat(ch.fn()))
			case f.kind == KindHistogram:
				cum, count, sum := ch.h.snapshot()
				for i, bound := range f.bounds {
					writeSample(cw, f.name+"_bucket", f.labels, ch.values, "le", formatFloat(bound),
						strconv.FormatInt(cum[i], 10))
				}
				writeSample(cw, f.name+"_bucket", f.labels, ch.values, "le", "+Inf",
					strconv.FormatInt(cum[len(cum)-1], 10))
				writeSample(cw, f.name+"_sum", f.labels, ch.values, "", "", formatFloat(sum))
				writeSample(cw, f.name+"_count", f.labels, ch.values, "", "", strconv.FormatInt(count, 10))
			case f.kind == KindCounter:
				writeSample(cw, f.name, f.labels, ch.values, "", "", strconv.FormatInt(ch.c.Value(), 10))
			default:
				writeSample(cw, f.name, f.labels, ch.values, "", "", formatFloat(ch.g.Value()))
			}
		}
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil && cw.err == nil {
		cw.err = err
	}
	return cw.n, cw.err
}

// Handler returns an http.Handler serving the registry at scrape time
// — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		r.WriteTo(w)
	})
}

// writeSample renders one exposition line; extraName/extraValue append
// a synthetic label (the histogram "le").
func writeSample(w io.Writer, name string, labels, values []string, extraName, extraValue, rendered string) {
	if len(labels) == 0 && extraName == "" {
		fmt.Fprintf(w, "%s %s\n", name, rendered)
		return
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	fmt.Fprintf(w, "%s %s\n", b.String(), rendered)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation. strconv already spells the specials as
// +Inf, -Inf and NaN, matching the exposition grammar.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// countingWriter tracks bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
