package workload

import (
	"math"
	"testing"
	"testing/quick"

	"granulock/internal/rng"
)

func TestLocksRequiredBest(t *testing.T) {
	cases := []struct{ nu, ltot, dbsize, want int }{
		{1, 1, 5000, 1},
		{5000, 1, 5000, 1},
		{250, 5000, 5000, 250}, // entity-level: one lock per entity
		{500, 100, 5000, 10},   // 10% of db -> 10% of locks
		{1, 5000, 5000, 1},
		{499, 10, 5000, 1}, // fits within one granule's worth
		{501, 10, 5000, 2}, // spills into a second granule
	}
	for _, c := range cases {
		if got := LocksRequired(PlacementBest, c.nu, c.ltot, c.dbsize); got != c.want {
			t.Errorf("best(nu=%d, ltot=%d, dbsize=%d) = %d, want %d", c.nu, c.ltot, c.dbsize, got, c.want)
		}
	}
}

func TestLocksRequiredWorst(t *testing.T) {
	cases := []struct{ nu, ltot, dbsize, want int }{
		{250, 5000, 5000, 250}, // fewer entities than locks: one each
		{250, 100, 5000, 100},  // more entities than locks: all locks
		{1, 1, 5000, 1},
		{5000, 5000, 5000, 5000},
	}
	for _, c := range cases {
		if got := LocksRequired(PlacementWorst, c.nu, c.ltot, c.dbsize); got != c.want {
			t.Errorf("worst(nu=%d, ltot=%d, dbsize=%d) = %d, want %d", c.nu, c.ltot, c.dbsize, got, c.want)
		}
	}
}

func TestLocksRequiredRandomBetweenExtremes(t *testing.T) {
	// Yao's estimate must lie between best and worst placement. When
	// ltot does not divide dbsize the granules have fractional average
	// size and the paper's ceil-based best formula can overshoot the
	// true minimum by one, so allow one lock of slack on the low side.
	f := func(nuRaw, ltotRaw uint16) bool {
		const dbsize = 5000
		nu := int(nuRaw)%dbsize + 1
		ltot := int(ltotRaw)%dbsize + 1
		best := LocksRequired(PlacementBest, nu, ltot, dbsize)
		worst := LocksRequired(PlacementWorst, nu, ltot, dbsize)
		random := LocksRequired(PlacementRandom, nu, ltot, dbsize)
		return best-1 <= random && random <= worst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLocksRequiredRandomBetweenExtremesDividing(t *testing.T) {
	// With ltot dividing dbsize the envelope is strict.
	for _, ltot := range []int{1, 2, 4, 5, 10, 20, 25, 50, 100, 125, 200, 250, 500, 1000, 2500, 5000} {
		for _, nu := range []int{1, 7, 25, 250, 999, 2500, 5000} {
			best := LocksRequired(PlacementBest, nu, ltot, 5000)
			worst := LocksRequired(PlacementWorst, nu, ltot, 5000)
			random := LocksRequired(PlacementRandom, nu, ltot, 5000)
			if best > random || random > worst {
				t.Fatalf("nu=%d ltot=%d: best=%d random=%d worst=%d", nu, ltot, best, random, worst)
			}
		}
	}
}

func TestLocksRequiredExtremeGranularities(t *testing.T) {
	// ltot=1: every placement needs exactly the single lock.
	for _, p := range []Placement{PlacementBest, PlacementWorst, PlacementRandom} {
		if got := LocksRequired(p, 250, 1, 5000); got != 1 {
			t.Errorf("%v with ltot=1: %d locks, want 1", p, got)
		}
	}
	// ltot=dbsize: every placement needs one lock per entity.
	for _, p := range []Placement{PlacementBest, PlacementWorst, PlacementRandom} {
		if got := LocksRequired(p, 250, 5000, 5000); got != 250 {
			t.Errorf("%v with ltot=dbsize: %d locks, want 250", p, got)
		}
	}
}

func TestLocksRequiredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nu > dbsize did not panic")
		}
	}()
	LocksRequired(PlacementBest, 6000, 10, 5000)
}

func TestPlacementStrings(t *testing.T) {
	for _, p := range []Placement{PlacementBest, PlacementWorst, PlacementRandom} {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip of %v failed: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePlacement("bogus"); err == nil {
		t.Fatal("bogus placement parsed")
	}
	if Placement(9).String() == "" {
		t.Fatal("unknown placement String empty")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	src := rng.New(1)
	bad := []struct {
		name    string
		dbsize  int
		ltot    int
		p       Placement
		classes []Class
		src     *rng.Source
	}{
		{"dbsize", 0, 1, PlacementBest, Uniform(1), src},
		{"ltot low", 100, 0, PlacementBest, Uniform(10), src},
		{"ltot high", 100, 101, PlacementBest, Uniform(10), src},
		{"placement", 100, 10, Placement(9), Uniform(10), src},
		{"no classes", 100, 10, PlacementBest, nil, src},
		{"class size", 100, 10, PlacementBest, Uniform(101), src},
		{"class size zero", 100, 10, PlacementBest, Uniform(0), src},
		{"weight", 100, 10, PlacementBest, []Class{{MaxTransize: 10, Weight: 0}}, src},
		{"nil src", 100, 10, PlacementBest, Uniform(10), nil},
	}
	for _, c := range bad {
		if _, err := NewGenerator(c.dbsize, c.ltot, c.p, c.classes, c.src); err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
	if _, err := NewGenerator(5000, 100, PlacementBest, Uniform(500), src); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestGeneratorSizesUniform(t *testing.T) {
	g, err := NewGenerator(5000, 100, PlacementBest, Uniform(500), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	sum := 0.0
	minSeen, maxSeen := 1<<30, 0
	for i := 0; i < n; i++ {
		s := g.Next()
		if s.Entities < 1 || s.Entities > 500 {
			t.Fatalf("entities %d outside [1,500]", s.Entities)
		}
		if s.Locks != LocksRequired(PlacementBest, s.Entities, 100, 5000) {
			t.Fatalf("lock demand inconsistent: %+v", s)
		}
		sum += float64(s.Entities)
		if s.Entities < minSeen {
			minSeen = s.Entities
		}
		if s.Entities > maxSeen {
			maxSeen = s.Entities
		}
	}
	mean := sum / n
	if math.Abs(mean-250.5) > 2 {
		t.Fatalf("mean size %v, want about 250.5", mean)
	}
	if minSeen != 1 || maxSeen != 500 {
		t.Fatalf("size range [%d,%d], want [1,500]", minSeen, maxSeen)
	}
}

func TestGeneratorMixFrequencies(t *testing.T) {
	// The §3.6 mix: 80% small (max 50), 20% large (max 500).
	g, err := NewGenerator(5000, 100, PlacementBest, SmallLargeMix(50, 500, 0.8), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	counts := [2]int{}
	for i := 0; i < n; i++ {
		s := g.Next()
		counts[s.Class]++
		limit := 50
		if s.Class == 1 {
			limit = 500
		}
		if s.Entities < 1 || s.Entities > limit {
			t.Fatalf("class %d size %d outside [1,%d]", s.Class, s.Entities, limit)
		}
	}
	frac := float64(counts[0]) / n
	if math.Abs(frac-0.8) > 0.01 {
		t.Fatalf("small-class fraction %v, want about 0.8", frac)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []Spec {
		g, _ := NewGenerator(5000, 100, PlacementRandom, Uniform(500), rng.New(7))
		out := make([]Spec, 100)
		for i := range out {
			out[i] = g.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMeanSize(t *testing.T) {
	g, _ := NewGenerator(5000, 100, PlacementBest, Uniform(500), rng.New(1))
	if got := g.MeanSize(); math.Abs(got-250.5) > 1e-9 {
		t.Fatalf("MeanSize = %v, want 250.5", got)
	}
	gm, _ := NewGenerator(5000, 100, PlacementBest, SmallLargeMix(50, 500, 0.8), rng.New(1))
	want := 0.8*25.5 + 0.2*250.5
	if got := gm.MeanSize(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mix MeanSize = %v, want %v", got, want)
	}
}

func TestGeneratorPlacementAccessor(t *testing.T) {
	g, _ := NewGenerator(5000, 100, PlacementWorst, Uniform(500), rng.New(1))
	if g.Placement() != PlacementWorst {
		t.Fatal("Placement accessor wrong")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g, _ := NewGenerator(5000, 100, PlacementRandom, Uniform(500), rng.New(1))
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
