// Package workload generates the transaction population of the paper's
// model: sizes uniform on [1, maxtransize], lock demand derived from the
// granule-placement strategy, and optional mixes of size classes (§3.6's
// 80% small / 20% large experiment).
package workload

import (
	"fmt"

	"granulock/internal/rng"
	"granulock/internal/yao"
)

// Placement is the granule-placement strategy determining how many locks
// a transaction touching NU entities must set (paper §2 and §3.5).
type Placement int

const (
	// PlacementBest packs the required entities into as few granules as
	// possible: LU = ceil(NU·ltot/dbsize). Reasonable for sequential
	// access (range queries).
	PlacementBest Placement = iota
	// PlacementWorst spreads the entities over as many granules as
	// possible: LU = min(NU, ltot). The adversarial extreme.
	PlacementWorst
	// PlacementRandom scatters entities uniformly; LU is Yao's
	// mean-value estimate. Typical transactions fall between best and
	// random (Ries & Stonebraker's observation).
	PlacementRandom
)

var placementNames = [...]string{"best", "worst", "random"}

// String returns the placement name used throughout the experiment
// output.
func (p Placement) String() string {
	if p < 0 || int(p) >= len(placementNames) {
		return fmt.Sprintf("Placement(%d)", int(p))
	}
	return placementNames[p]
}

// ParsePlacement converts a name produced by String back to a Placement.
func ParsePlacement(s string) (Placement, error) {
	for i, n := range placementNames {
		if n == s {
			return Placement(i), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown placement %q", s)
}

// LocksRequired returns LU, the number of locks a transaction touching
// nu of dbsize entities must set under placement p with ltot granules.
// It panics on out-of-range arguments; Generator validates its inputs up
// front so this is an internal invariant.
func LocksRequired(p Placement, nu, ltot, dbsize int) int {
	if nu < 1 || nu > dbsize || ltot < 1 || ltot > dbsize {
		panic(fmt.Sprintf("workload: LocksRequired(nu=%d, ltot=%d, dbsize=%d) out of range", nu, ltot, dbsize))
	}
	switch p {
	case PlacementBest:
		// ceil(nu*ltot/dbsize) without floating point.
		return (nu*ltot + dbsize - 1) / dbsize
	case PlacementWorst:
		return min(nu, ltot)
	case PlacementRandom:
		return yao.Locks(dbsize, ltot, nu)
	default:
		panic(fmt.Sprintf("workload: unknown placement %d", int(p)))
	}
}

// Class is one transaction size class in a workload mix.
type Class struct {
	// MaxTransize bounds the class's transaction size: sizes are uniform
	// on [1, MaxTransize], so the class mean is ≈ MaxTransize/2.
	MaxTransize int
	// Weight is the class's relative frequency; weights need not sum to
	// one.
	Weight float64
}

// Spec describes one generated transaction.
type Spec struct {
	// Entities is NUᵢ, the number of database entities accessed.
	Entities int
	// Locks is LUᵢ, the lock demand implied by the placement strategy.
	Locks int
	// Class indexes the Class the transaction was drawn from.
	Class int
}

// Generator draws transaction Specs. It is deterministic for a given
// rng.Source and not safe for concurrent use.
type Generator struct {
	dbsize    int
	ltot      int
	placement Placement
	classes   []Class
	cum       []float64 // cumulative normalized weights
	src       *rng.Source

	// yaoCache is the per-generator fast path over the yao package's
	// global memo for PlacementRandom: a direct-mapped table of Locks by
	// transaction size. Sizes repeat heavily within a run (they are
	// uniform on [1, maxtransize]), so after warm-up every draw is one
	// array load. -1 marks unfilled entries; lazily allocated on the
	// first random-placement draw.
	yaoCache []int32
}

// NewGenerator validates the configuration and returns a Generator.
// classes must be non-empty with positive weights and MaxTransize within
// [1, dbsize].
func NewGenerator(dbsize, ltot int, placement Placement, classes []Class, src *rng.Source) (*Generator, error) {
	if dbsize < 1 {
		return nil, fmt.Errorf("workload: dbsize %d < 1", dbsize)
	}
	if ltot < 1 || ltot > dbsize {
		return nil, fmt.Errorf("workload: ltot %d outside [1, dbsize=%d]", ltot, dbsize)
	}
	if placement < PlacementBest || placement > PlacementRandom {
		return nil, fmt.Errorf("workload: unknown placement %d", int(placement))
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: no transaction classes")
	}
	if src == nil {
		return nil, fmt.Errorf("workload: nil randomness source")
	}
	total := 0.0
	for i, c := range classes {
		if c.MaxTransize < 1 || c.MaxTransize > dbsize {
			return nil, fmt.Errorf("workload: class %d maxtransize %d outside [1, dbsize=%d]", i, c.MaxTransize, dbsize)
		}
		if c.Weight <= 0 {
			return nil, fmt.Errorf("workload: class %d weight %v <= 0", i, c.Weight)
		}
		total += c.Weight
	}
	cum := make([]float64, len(classes))
	run := 0.0
	for i, c := range classes {
		run += c.Weight / total
		cum[i] = run
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &Generator{
		dbsize:    dbsize,
		ltot:      ltot,
		placement: placement,
		classes:   append([]Class(nil), classes...),
		cum:       cum,
		src:       src,
	}, nil
}

// Uniform returns the single-class workload of §3.1–§3.4: sizes uniform
// on [1, maxtransize].
func Uniform(maxtransize int) []Class {
	return []Class{{MaxTransize: maxtransize, Weight: 1}}
}

// SmallLargeMix returns the §3.6 workload: fracSmall of transactions
// bounded by smallMax and the remainder bounded by largeMax.
func SmallLargeMix(smallMax, largeMax int, fracSmall float64) []Class {
	return []Class{
		{MaxTransize: smallMax, Weight: fracSmall},
		{MaxTransize: largeMax, Weight: 1 - fracSmall},
	}
}

// Next draws the next transaction.
func (g *Generator) Next() Spec {
	class := g.pickClass()
	nu := g.src.IntRange(1, g.classes[class].MaxTransize)
	return Spec{
		Entities: nu,
		Locks:    g.locksFor(nu),
		Class:    class,
	}
}

// locksFor returns LocksRequired(placement, nu, ltot, dbsize), caching
// Yao evaluations per size for the random placement (best and worst are
// already O(1) arithmetic).
func (g *Generator) locksFor(nu int) int {
	if g.placement != PlacementRandom {
		return LocksRequired(g.placement, nu, g.ltot, g.dbsize)
	}
	if g.yaoCache == nil {
		size := 0
		for _, c := range g.classes {
			if c.MaxTransize > size {
				size = c.MaxTransize
			}
		}
		g.yaoCache = make([]int32, size+1)
		for i := range g.yaoCache {
			g.yaoCache[i] = -1
		}
	}
	if v := g.yaoCache[nu]; v >= 0 {
		return int(v)
	}
	v := LocksRequired(g.placement, nu, g.ltot, g.dbsize)
	g.yaoCache[nu] = int32(v)
	return v
}

// pickClass draws a class index proportional to the weights.
func (g *Generator) pickClass() int {
	if len(g.cum) == 1 {
		return 0
	}
	p := g.src.Float64()
	for i, c := range g.cum {
		if p < c {
			return i
		}
	}
	return len(g.cum) - 1
}

// Placement returns the generator's placement strategy.
func (g *Generator) Placement() Placement { return g.placement }

// MeanSize returns the analytic mean transaction size of the mix,
// ≈ Σ wᵢ·(maxᵢ+1)/2.
func (g *Generator) MeanSize() float64 {
	total := 0.0
	for _, c := range g.classes {
		total += c.Weight
	}
	mean := 0.0
	for _, c := range g.classes {
		mean += c.Weight / total * float64(c.MaxTransize+1) / 2
	}
	return mean
}
