package lockmgr

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestAbsorbs(t *testing.T) {
	cases := []struct {
		held, want GMode
		ok         bool
	}{
		{GModeX, GModeX, true},
		{GModeX, GModeS, true},
		{GModeX, GModeIX, true},
		{GModeS, GModeS, true},
		{GModeS, GModeIS, true},
		{GModeS, GModeX, false},
		{GModeSIX, GModeS, true},
		{GModeSIX, GModeX, false},
		{GModeIS, GModeS, false},
		{GModeIX, GModeX, false},
	}
	for _, c := range cases {
		if got := absorbs(c.held, c.want); got != c.ok {
			t.Errorf("absorbs(%v, %v) = %v, want %v", c.held, c.want, got, c.ok)
		}
	}
}

func TestEscalationTriggersAtThreshold(t *testing.T) {
	h := NewHierTable(WithEscalation(3))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		p := path("db", "rel", fmt.Sprintf("g%d", i))
		if err := h.Lock(ctx, 1, p, GModeX); err != nil {
			t.Fatal(err)
		}
	}
	if h.Escalations() != 1 {
		t.Fatalf("escalations %d, want 1", h.Escalations())
	}
	// Writers under IX escalate the parent to X.
	if m, ok := h.Held(1, "rel"); !ok || m != GModeX {
		t.Fatalf("relation mode %v/%v after escalation, want X", m, ok)
	}
}

func TestEscalationAbsorbsFurtherChildren(t *testing.T) {
	h := NewHierTable(WithEscalation(2))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", fmt.Sprintf("g%d", i)), GModeX); err != nil {
			t.Fatal(err)
		}
	}
	if h.Escalations() != 1 {
		t.Fatalf("escalations %d", h.Escalations())
	}
	// The next child lock is absorbed: no per-child holder appears.
	if err := h.Lock(ctx, 1, path("db", "rel", "g99"), GModeX); err != nil {
		t.Fatal(err)
	}
	if _, held := h.Held(1, "g99"); held {
		t.Fatal("absorbed child still took its own lock")
	}
}

func TestEscalationReaderGetsS(t *testing.T) {
	h := NewHierTable(WithEscalation(2))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", fmt.Sprintf("g%d", i)), GModeS); err != nil {
			t.Fatal(err)
		}
	}
	if m, ok := h.Held(1, "rel"); !ok || m != GModeS {
		t.Fatalf("relation mode %v/%v, want S", m, ok)
	}
	// Another reader of a different granule is still compatible.
	if err := h.Lock(ctx, 2, path("db", "rel", "g5"), GModeS); err != nil {
		t.Fatal(err)
	}
	// But a writer now blocks on the whole relation.
	done := make(chan error, 1)
	go func() { done <- h.Lock(ctx, 3, path("db", "rel", "g9"), GModeX) }()
	select {
	case <-done:
		t.Fatal("writer not blocked by escalated S")
	case <-time.After(20 * time.Millisecond):
	}
	h.ReleaseAll(1)
	h.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestEscalationSkippedWhenIncompatible(t *testing.T) {
	h := NewHierTable(WithEscalation(2))
	ctx := context.Background()
	// Txn 2 writes one granule: its IX on "rel" blocks an S escalation
	// and its granule would conflict with an X escalation.
	if err := h.Lock(ctx, 2, path("db", "rel", "gz"), GModeX); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", fmt.Sprintf("g%d", i)), GModeS); err != nil {
			t.Fatal(err)
		}
	}
	if h.Escalations() != 0 {
		t.Fatalf("escalated against an incompatible holder (%d)", h.Escalations())
	}
	if m, _ := h.Held(1, "rel"); m != GModeIS {
		t.Fatalf("relation mode %v, want IS (no escalation)", m)
	}
}

func TestEscalationDisabledByDefault(t *testing.T) {
	h := NewHierTable()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", fmt.Sprintf("g%d", i)), GModeX); err != nil {
			t.Fatal(err)
		}
	}
	if h.Escalations() != 0 {
		t.Fatal("escalation fired without opt-in")
	}
	if m, _ := h.Held(1, "rel"); m != GModeIX {
		t.Fatalf("relation mode %v, want IX", m)
	}
}

func TestEscalationStateClearedOnRelease(t *testing.T) {
	h := NewHierTable(WithEscalation(3))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", fmt.Sprintf("g%d", i)), GModeX); err != nil {
			t.Fatal(err)
		}
	}
	h.ReleaseAll(1)
	// A fresh transaction (same ID) must start counting from zero.
	if err := h.Lock(ctx, 1, path("db", "rel", "g9"), GModeX); err != nil {
		t.Fatal(err)
	}
	if h.Escalations() != 0 {
		t.Fatal("stale child counts survived release")
	}
	h.ReleaseAll(1)
}

func TestEscalationOnlyOncePerParent(t *testing.T) {
	h := NewHierTable(WithEscalation(2))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", fmt.Sprintf("g%d", i)), GModeX); err != nil {
			t.Fatal(err)
		}
	}
	// Further absorbed locks must not re-escalate.
	for i := 10; i < 20; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", fmt.Sprintf("g%d", i)), GModeX); err != nil {
			t.Fatal(err)
		}
	}
	if h.Escalations() != 1 {
		t.Fatalf("escalations %d, want 1", h.Escalations())
	}
}
