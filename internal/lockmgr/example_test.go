package lockmgr_test

import (
	"context"
	"fmt"

	"granulock/internal/lockmgr"
	"granulock/internal/rng"
)

// ExampleConflictModel shows the paper's probabilistic conflict draw:
// active transactions holding locks block a requester in proportion to
// the fraction of the lock space they own.
func ExampleConflictModel() {
	m, _ := lockmgr.NewConflictModel(100, rng.New(1))
	holders := []lockmgr.Holder{{ID: 1, Locks: 30}, {ID: 2, Locks: 20}}
	fmt.Printf("block probability: %.2f\n", m.BlockProbability(holders))
	blocked := 0
	for i := 0; i < 10000; i++ {
		if _, b := m.Decide(holders); b {
			blocked++
		}
	}
	fmt.Printf("empirically near 0.5: %v\n", blocked > 4700 && blocked < 5300)
	// Output:
	// block probability: 0.50
	// empirically near 0.5: true
}

// ExampleTable_AcquireAll demonstrates conservative preclaiming: all or
// nothing, so deadlock is impossible.
func ExampleTable_AcquireAll() {
	tab := lockmgr.NewTable()
	ctx := context.Background()
	_ = tab.AcquireAll(ctx, 1, []lockmgr.Request{
		{Granule: 10, Mode: lockmgr.ModeExclusive},
		{Granule: 11, Mode: lockmgr.ModeShared},
	})
	fmt.Println("txn 1 holds", tab.HeldBy(1), "granules")
	tab.ReleaseAll(1)
	fmt.Println("after release:", tab.HeldBy(1))
	// Output:
	// txn 1 holds 2 granules
	// after release: 0
}

// ExampleHierTable shows multigranularity locking: two writers on
// different granules of the same relation coexist via intention locks.
func ExampleHierTable() {
	h := lockmgr.NewHierTable()
	ctx := context.Background()
	path := func(g string) []lockmgr.NodeID {
		return []lockmgr.NodeID{"db", "rel", lockmgr.NodeID(g)}
	}
	_ = h.Lock(ctx, 1, path("g1"), lockmgr.GModeX)
	_ = h.Lock(ctx, 2, path("g2"), lockmgr.GModeX)
	m1, _ := h.Held(1, "rel")
	m2, _ := h.Held(2, "rel")
	fmt.Println("relation intentions:", m1, m2)
	// Output:
	// relation intentions: IX IX
}

// ExampleGCompatible prints a corner of Gray's compatibility matrix.
func ExampleGCompatible() {
	fmt.Println("IS vs IX:", lockmgr.GCompatible(lockmgr.GModeIS, lockmgr.GModeIX))
	fmt.Println("S  vs IX:", lockmgr.GCompatible(lockmgr.GModeS, lockmgr.GModeIX))
	fmt.Println("X  vs IS:", lockmgr.GCompatible(lockmgr.GModeX, lockmgr.GModeIS))
	// Output:
	// IS vs IX: true
	// S  vs IX: false
	// X  vs IS: false
}
