package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"granulock/internal/obs"
)

// Mode is a granule lock mode for the flat lock table.
type Mode int8

const (
	// ModeShared permits concurrent readers.
	ModeShared Mode = iota
	// ModeExclusive permits a single writer.
	ModeExclusive
)

// String returns the conventional one-letter mode name.
func (m Mode) String() string {
	switch m {
	case ModeShared:
		return "S"
	case ModeExclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int8(m))
	}
}

// Compatible reports whether two flat modes may be held simultaneously by
// different transactions.
func Compatible(a, b Mode) bool {
	return a == ModeShared && b == ModeShared
}

// TxnID identifies a transaction to the lock managers.
type TxnID int64

// Granule identifies a lockable unit.
type Granule int64

// Request names one granule and the mode in which it is wanted.
type Request struct {
	Granule Granule
	Mode    Mode
}

// ErrDeadlock is returned to the victim of a detected deadlock under the
// claim-as-needed protocol. The victim's locks remain held; the caller
// should ReleaseAll and retry.
var ErrDeadlock = errors.New("lockmgr: deadlock detected, transaction chosen as victim")

// ErrAlreadyHolds is wrapped by AcquireAll when the transaction already
// holds locks: a conservative claim must be the transaction's first
// acquisition. Callers that multiplex transactions over sessions (the
// network lock service) use it to tell a protocol violation from a
// retried claim racing its predecessor's release.
var ErrAlreadyHolds = errors.New("transaction already holds locks; conservative claims must be the first acquisition")

// Stats are monotonically increasing counters of lock-table activity.
type Stats struct {
	Grants    int64 // acquire calls satisfied (immediately or after waiting)
	Blocks    int64 // acquire calls that had to wait
	Deadlocks int64 // claim-as-needed waits aborted as deadlock victims
}

// Table is a granule lock table supporting both conservative
// (all-or-nothing preclaim, deadlock-free) and incremental
// (claim-as-needed, deadlock-detected) acquisition. All methods are safe
// for concurrent use.
type Table struct {
	mu       sync.Mutex
	granules map[Granule]*granuleState
	held     map[TxnID]map[Granule]Mode
	claimQ   []*claimWaiter // FIFO queue of conservative preclaims
	strict   bool
	detector *Detector
	stats    Stats
	om       *tableMetrics // nil unless WithMetrics attached
}

// tableMetrics mirrors the Stats counters into an obs.Registry, the
// live-scrape view of lock-table activity. Gauges for holders, locked
// granules and parked waiters are registered as functions so they read
// the table's true state at scrape time instead of mirroring it.
type tableMetrics struct {
	grants    *obs.Counter
	waits     *obs.Counter
	deadlocks *obs.Counter
}

// newTableMetrics registers the lockmgr families on reg for t.
func newTableMetrics(reg *obs.Registry, t *Table) *tableMetrics {
	reg.NewGaugeFunc("granulock_lockmgr_holders",
		"Transactions currently holding at least one granule.",
		func() float64 { return float64(t.HoldersCount()) })
	reg.NewGaugeFunc("granulock_lockmgr_locked_granules",
		"Granules with at least one holder.",
		func() float64 { return float64(t.LockedGranules()) })
	reg.NewGaugeFunc("granulock_lockmgr_waiters",
		"Requests currently parked (conservative claims plus incremental waiters).",
		func() float64 { return float64(t.WaitersCount()) })
	return &tableMetrics{
		grants: reg.NewCounter("granulock_lockmgr_grants_total",
			"Acquire calls satisfied, immediately or after waiting."),
		waits: reg.NewCounter("granulock_lockmgr_waits_total",
			"Acquire calls that had to wait (lock conflicts)."),
		deadlocks: reg.NewCounter("granulock_lockmgr_deadlocks_total",
			"Claim-as-needed waits aborted as deadlock victims."),
	}
}

// incGrant, incWait and incDeadlock bump the Stats counters and, when a
// registry is attached, their exported twins. Callers hold t.mu.
func (t *Table) incGrant() {
	t.stats.Grants++
	if t.om != nil {
		t.om.grants.Inc()
	}
}

func (t *Table) incWait() {
	t.stats.Blocks++
	if t.om != nil {
		t.om.waits.Inc()
	}
}

func (t *Table) incDeadlock() {
	t.stats.Deadlocks++
	if t.om != nil {
		t.om.deadlocks.Inc()
	}
}

// granuleState tracks the holders and incremental waiters of one granule.
type granuleState struct {
	holders map[TxnID]Mode
	waiters []*stepWaiter // FIFO
}

// claimWaiter is a parked conservative AcquireAll request.
type claimWaiter struct {
	txn  TxnID
	reqs []Request
	ch   chan error
}

// stepWaiter is a parked incremental Acquire request.
type stepWaiter struct {
	txn     TxnID
	granule Granule
	mode    Mode
	ch      chan error
}

// Option configures a Table.
type Option func(*Table)

// StrictFIFO makes conservative preclaim grants strictly first-come,
// first-served: a parked claim blocks every claim behind it, trading
// concurrency for starvation freedom. The default allows compatible later
// claims to overtake.
func StrictFIFO() Option { return func(t *Table) { t.strict = true } }

// WithMetrics mirrors the table's activity into reg: grant/wait/
// deadlock counters plus scrape-time gauges for holders, locked
// granules and parked waiters (family prefix granulock_lockmgr_).
// One table per registry: the gauges read this table's state.
func WithMetrics(reg *obs.Registry) Option {
	return func(t *Table) { t.om = newTableMetrics(reg, t) }
}

// NewTable returns an empty lock table.
func NewTable(opts ...Option) *Table {
	t := &Table{
		granules: make(map[Granule]*granuleState),
		held:     make(map[TxnID]map[Granule]Mode),
		detector: NewDetector(),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Stats returns a snapshot of the activity counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// HeldBy returns the number of granules txn currently holds.
func (t *Table) HeldBy(txn TxnID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held[txn])
}

// HoldersCount returns the number of transactions currently holding at
// least one granule. A clean table reports 0; after a drain this is the
// residual-holder count a lock service must bring to zero.
func (t *Table) HoldersCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held)
}

// LockedGranules returns the number of granules with at least one
// holder.
func (t *Table) LockedGranules() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, gs := range t.granules {
		if len(gs.holders) > 0 {
			n++
		}
	}
	return n
}

// WaitersCount returns the number of requests currently parked: both
// conservative whole-claim waiters and incremental per-granule waiters.
func (t *Table) WaitersCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.claimQ)
	for _, gs := range t.granules {
		n += len(gs.waiters)
	}
	return n
}

// HoldsAtLeast reports whether txn holds granule g in mode want or
// stronger.
func (t *Table) HoldsAtLeast(txn TxnID, g Granule, want Mode) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	have, ok := t.held[txn][g]
	return ok && have >= want
}

// coalesce deduplicates requests, keeping the strongest mode per granule.
func coalesce(reqs []Request) []Request {
	strongest := make(map[Granule]Mode, len(reqs))
	order := make([]Granule, 0, len(reqs))
	for _, r := range reqs {
		if have, ok := strongest[r.Granule]; !ok {
			strongest[r.Granule] = r.Mode
			order = append(order, r.Granule)
		} else if r.Mode > have {
			strongest[r.Granule] = r.Mode
		}
	}
	out := make([]Request, len(order))
	for i, g := range order {
		out[i] = Request{Granule: g, Mode: strongest[g]}
	}
	return out
}

// AcquireAll atomically acquires every requested granule, or parks the
// whole claim until it can: the conservative protocol of the paper, under
// which deadlock is impossible because a transaction holds nothing while
// it waits. Duplicate granules are coalesced to their strongest mode.
// AcquireAll returns early with ctx.Err() if the context is cancelled
// while parked.
func (t *Table) AcquireAll(ctx context.Context, txn TxnID, reqs []Request) error {
	reqs = coalesce(reqs)
	t.mu.Lock()
	if len(t.held[txn]) != 0 {
		t.mu.Unlock()
		return fmt.Errorf("lockmgr: transaction %d: %w", txn, ErrAlreadyHolds)
	}
	if t.grantable(txn, reqs) {
		t.grantAll(txn, reqs)
		t.incGrant()
		t.mu.Unlock()
		return nil
	}
	w := &claimWaiter{txn: txn, reqs: reqs, ch: make(chan error, 1)}
	t.claimQ = append(t.claimQ, w)
	t.incWait()
	t.mu.Unlock()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		t.mu.Lock()
		removed := t.removeClaim(w)
		t.mu.Unlock()
		if !removed {
			// The claim was resolved before we could withdraw it —
			// granted, or failed by wakeClaims as a duplicate of a
			// same-txn grant — so report that outcome.
			return <-w.ch
		}
		return ctx.Err()
	}
}

// grantable reports whether every request is compatible with current
// holders other than txn itself.
func (t *Table) grantable(txn TxnID, reqs []Request) bool {
	for _, r := range reqs {
		gs := t.granules[r.Granule]
		if gs == nil {
			continue
		}
		for holder, mode := range gs.holders {
			if holder == txn {
				continue
			}
			if !Compatible(r.Mode, mode) {
				return false
			}
		}
	}
	return true
}

// grantAll records txn as holder of every request. Caller holds t.mu.
func (t *Table) grantAll(txn TxnID, reqs []Request) {
	hm := t.held[txn]
	if hm == nil {
		hm = make(map[Granule]Mode, len(reqs))
		t.held[txn] = hm
	}
	for _, r := range reqs {
		gs := t.granules[r.Granule]
		if gs == nil {
			gs = &granuleState{holders: make(map[TxnID]Mode, 1)}
			t.granules[r.Granule] = gs
		}
		if have, ok := gs.holders[txn]; !ok || r.Mode > have {
			gs.holders[txn] = r.Mode
		}
		if have, ok := hm[r.Granule]; !ok || r.Mode > have {
			hm[r.Granule] = r.Mode
		}
	}
}

// removeClaim withdraws a parked claim; it reports whether the claim was
// still parked. Caller holds t.mu.
func (t *Table) removeClaim(w *claimWaiter) bool {
	for i, c := range t.claimQ {
		if c == w {
			t.claimQ = append(t.claimQ[:i], t.claimQ[i+1:]...)
			return true
		}
	}
	return false
}

// Acquire incrementally acquires one granule (the claim-as-needed
// protocol). It may wait; if the wait would close a cycle in the
// waits-for graph the request fails with ErrDeadlock and the caller is
// the victim. Lock upgrades (S held, X requested) are supported and wait
// for concurrent readers to drain.
func (t *Table) Acquire(ctx context.Context, txn TxnID, g Granule, mode Mode) error {
	t.mu.Lock()
	gs := t.granules[g]
	if gs == nil {
		gs = &granuleState{holders: make(map[TxnID]Mode, 1)}
		t.granules[g] = gs
	}
	if have, ok := gs.holders[txn]; ok && have >= mode {
		t.mu.Unlock()
		return nil // already held strongly enough
	}
	if t.stepGrantable(gs, txn, mode) {
		t.grantStep(gs, txn, g, mode)
		t.incGrant()
		// An upgrade strengthens the holder set without a release; the
		// waits-for edges of parked requests must track the change.
		t.syncWaiterEdges(gs)
		t.mu.Unlock()
		return nil
	}
	w := &stepWaiter{txn: txn, granule: g, mode: mode, ch: make(chan error, 1)}
	gs.waiters = append(gs.waiters, w)
	t.incWait()
	t.refreshEdges(gs, w, len(gs.waiters)-1)
	if t.detector.InCycle(txn) {
		// The newest edge closed a cycle: this requester is the victim.
		t.dropWaiter(gs, w)
		t.detector.RemoveWaiter(txn)
		t.incDeadlock()
		t.mu.Unlock()
		return ErrDeadlock
	}
	t.mu.Unlock()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		t.mu.Lock()
		if t.dropWaiter(gs, w) {
			t.detector.RemoveWaiter(txn)
			// Waiters queued behind w held an ahead-edge to it; refresh
			// so the withdrawn wait cannot fabricate a cycle.
			t.syncWaiterEdges(gs)
			t.mu.Unlock()
			return ctx.Err()
		}
		t.mu.Unlock()
		return <-w.ch
	}
}

// stepGrantable reports whether txn may take g in mode now. Caller holds
// t.mu. FIFO fairness: a request must also not overtake earlier waiters
// unless it is compatible with them too (readers may join readers even if
// a writer waits only when they precede the writer; we keep it simple and
// strict to avoid writer starvation).
func (t *Table) stepGrantable(gs *granuleState, txn TxnID, mode Mode) bool {
	for holder, held := range gs.holders {
		if holder == txn {
			continue // upgrade: only other holders matter
		}
		if !Compatible(mode, held) {
			return false
		}
	}
	// No overtaking: if others are already parked on this granule, queue
	// behind them (except pure upgrades, which take priority to drain).
	if _, upgrading := gs.holders[txn]; !upgrading && len(gs.waiters) > 0 {
		return false
	}
	return true
}

// grantStep records txn as holder of g. Caller holds t.mu.
func (t *Table) grantStep(gs *granuleState, txn TxnID, g Granule, mode Mode) {
	if have, ok := gs.holders[txn]; !ok || mode > have {
		gs.holders[txn] = mode
	}
	hm := t.held[txn]
	if hm == nil {
		hm = make(map[Granule]Mode, 4)
		t.held[txn] = hm
	}
	if have, ok := hm[g]; !ok || mode > have {
		hm[g] = mode
	}
}

// dropWaiter removes w from its granule's wait queue; reports whether it
// was still parked. Caller holds t.mu.
func (t *Table) dropWaiter(gs *granuleState, w *stepWaiter) bool {
	for i, x := range gs.waiters {
		if x == w {
			gs.waiters = append(gs.waiters[:i], gs.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// refreshEdges points w's waits-for edges at the current incompatible
// holders of its granule and at every waiter queued ahead of it (the
// no-overtaking rule makes those real blockers too). idx is w's position
// in gs.waiters. Caller holds t.mu.
func (t *Table) refreshEdges(gs *granuleState, w *stepWaiter, idx int) {
	t.detector.RemoveWaiter(w.txn)
	for holder, held := range gs.holders {
		if holder != w.txn && !Compatible(w.mode, held) {
			t.detector.AddEdge(w.txn, holder)
		}
	}
	for i := 0; i < idx && i < len(gs.waiters); i++ {
		t.detector.AddEdge(w.txn, gs.waiters[i].txn)
	}
}

// syncWaiterEdges refreshes the edges of every waiter of gs and aborts
// any whose refreshed edges close a cycle. Caller holds t.mu.
func (t *Table) syncWaiterEdges(gs *granuleState) {
	remaining := append([]*stepWaiter(nil), gs.waiters...)
	for _, w := range remaining {
		idx := -1
		for i, x := range gs.waiters {
			if x == w {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue // aborted by an earlier iteration
		}
		t.refreshEdges(gs, w, idx)
		if t.detector.InCycle(w.txn) {
			t.dropWaiter(gs, w)
			t.detector.RemoveWaiter(w.txn)
			t.incDeadlock()
			w.ch <- ErrDeadlock
		}
	}
}

// ReleaseAll releases every granule held by txn, wakes whatever can now
// run, and clears txn from the waits-for graph.
func (t *Table) ReleaseAll(txn TxnID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	touched := make([]Granule, 0, len(t.held[txn]))
	for g := range t.held[txn] {
		gs := t.granules[g]
		delete(gs.holders, txn)
		touched = append(touched, g)
	}
	delete(t.held, txn)
	t.detector.RemoveTxn(txn)

	for _, g := range touched {
		t.wakeStepWaiters(g)
	}
	t.wakeClaims()
	// Garbage-collect empty granule entries so long-running tables do not
	// accumulate one record per granule ever touched.
	for _, g := range touched {
		if gs := t.granules[g]; gs != nil && len(gs.holders) == 0 && len(gs.waiters) == 0 {
			delete(t.granules, g)
		}
	}
}

// wakeStepWaiters grants incremental waiters of g in FIFO order while
// compatible, refreshing the waits-for edges of those still blocked and
// aborting any whose refreshed edges close a cycle. Caller holds t.mu.
func (t *Table) wakeStepWaiters(g Granule) {
	gs := t.granules[g]
	if gs == nil {
		return
	}
	for len(gs.waiters) > 0 {
		w := gs.waiters[0]
		granted := true
		for holder, held := range gs.holders {
			if holder != w.txn && !Compatible(w.mode, held) {
				granted = false
				break
			}
		}
		if !granted {
			break
		}
		gs.waiters = gs.waiters[1:]
		t.grantStep(gs, w.txn, g, w.mode)
		t.detector.RemoveWaiter(w.txn)
		t.incGrant()
		w.ch <- nil
	}
	// Refresh edges of those still waiting: their blockers changed.
	t.syncWaiterEdges(gs)
}

// wakeClaims grants parked conservative claims that are now fully
// compatible. Caller holds t.mu.
func (t *Table) wakeClaims() {
	for i := 0; i < len(t.claimQ); {
		w := t.claimQ[i]
		if len(t.held[w.txn]) != 0 {
			// The txn already holds locks, so this parked claim is a
			// duplicate: a retried claim (new session) racing its
			// predecessor's withdrawal. grantable ignores self-conflicts,
			// so granting it too would double-book the txn and let the
			// predecessor's teardown strip locks the duplicate believes
			// it holds. Fail it exactly as AcquireAll's entry check
			// would have; the lock service's orphan-retry loop handles
			// ErrAlreadyHolds.
			t.claimQ = append(t.claimQ[:i], t.claimQ[i+1:]...)
			w.ch <- fmt.Errorf("lockmgr: transaction %d: %w", w.txn, ErrAlreadyHolds)
			continue
		}
		if t.grantable(w.txn, w.reqs) {
			t.grantAll(w.txn, w.reqs)
			t.claimQ = append(t.claimQ[:i], t.claimQ[i+1:]...)
			t.incGrant()
			w.ch <- nil
			continue // re-examine the claim now at index i
		}
		if t.strict {
			return // strict FIFO: nothing may overtake a blocked claim
		}
		i++
	}
}
