package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"granulock/internal/obs"
)

// Mode is a granule lock mode for the flat lock table.
type Mode int8

const (
	// ModeShared permits concurrent readers.
	ModeShared Mode = iota
	// ModeExclusive permits a single writer.
	ModeExclusive
)

// String returns the conventional one-letter mode name.
func (m Mode) String() string {
	switch m {
	case ModeShared:
		return "S"
	case ModeExclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int8(m))
	}
}

// Compatible reports whether two flat modes may be held simultaneously by
// different transactions.
func Compatible(a, b Mode) bool {
	return a == ModeShared && b == ModeShared
}

// TxnID identifies a transaction to the lock managers.
type TxnID int64

// Granule identifies a lockable unit.
type Granule int64

// Request names one granule and the mode in which it is wanted.
type Request struct {
	Granule Granule
	Mode    Mode
}

// ErrDeadlock is returned to the victim of a detected deadlock under the
// claim-as-needed protocol. The victim's locks remain held; the caller
// should ReleaseAll and retry.
var ErrDeadlock = errors.New("lockmgr: deadlock detected, transaction chosen as victim")

// ErrAlreadyHolds is wrapped by AcquireAll when the transaction already
// holds locks: a conservative claim must be the transaction's first
// acquisition. Callers that multiplex transactions over sessions (the
// network lock service) use it to tell a protocol violation from a
// retried claim racing its predecessor's release.
var ErrAlreadyHolds = errors.New("transaction already holds locks; conservative claims must be the first acquisition")

// Stats are monotonically increasing counters of lock-table activity.
type Stats struct {
	Grants    int64 // acquire calls satisfied (immediately or after waiting)
	Blocks    int64 // acquire calls that had to wait
	Deadlocks int64 // claim-as-needed waits aborted as deadlock victims
}

func (s *Stats) add(o Stats) {
	s.Grants += o.Grants
	s.Blocks += o.Blocks
	s.Deadlocks += o.Deadlocks
}

// Table is a granule lock table supporting both conservative
// (all-or-nothing preclaim, deadlock-free) and incremental
// (claim-as-needed, deadlock-detected) acquisition. All methods are safe
// for concurrent use.
//
// The table is striped: granules hash onto a power-of-two number of
// shards (WithShards, default 1), each with its own mutex, granule map,
// claim queue and activity counters, so uncontended traffic on distinct
// granules scales with cores instead of serializing behind one table
// mutex. Multi-granule operations (conservative claims, ReleaseAll) lock
// every involved shard in canonical ascending index order — the
// shard-ordered discipline that keeps the stripes themselves
// deadlock-free. Per-transaction hold sets are striped separately by
// transaction id, and the waits-for deadlock Detector sits behind its
// own dedicated mutex that is touched only on block/unblock transitions,
// never on the uncontended-grant fast path. With one shard the table
// behaves exactly as the historical single-mutex implementation (the
// simulation model keeps that default, so golden runs are unaffected).
type Table struct {
	shards []*shard
	mask   uint64
	txns   []*txnShard
	strict bool

	// The waits-for graph is global (deadlock cycles cross shards) and
	// guarded by its own mutex, ordered after every shard and txn-stripe
	// lock. detEdges mirrors det.Edges() so release paths can skip the
	// detector entirely while nothing in the table is blocked.
	detMu    sync.Mutex
	det      *Detector
	detEdges atomic.Int64

	// claimSeq orders parked conservative claims globally. It is drawn
	// while holding every shard of the claim, so per-shard queue order
	// always agrees with seq order for claims that share a shard.
	claimSeq atomic.Uint64

	om *tableMetrics // nil unless WithMetrics attached

	// Lock-free fast path (fastpath.go). fastOn gates it at runtime; the
	// counters are table-global atomics because fast operations never
	// hold a stripe mutex to attribute activity under.
	fastOn      atomic.Bool
	fpGrants    atomic.Int64
	fpReleases  atomic.Int64
	fpFallbacks atomic.Int64
	fpSpinWins  atomic.Int64
	fpSpinParks atomic.Int64
}

// shard is one granule stripe: a slice of the lock table guarded by its
// own mutex.
type shard struct {
	mu       sync.Mutex
	granules map[Granule]*granuleState
	claimQ   []*claimWaiter // FIFO (by claim seq) of parked claims touching this shard
	stats    Stats
	// fast is the shard's lock-free granule index (fastpath.go). Slots
	// move nil→non-nil or are replaced under mu; lookups are lock-free.
	fast [fpSlots]atomic.Pointer[fastState]
}

// txnShard is one stripe of the per-transaction hold sets, keyed by
// transaction-id hash. Its lock is only ever taken while holding the
// relevant granule-shard locks or alone, one txn stripe at a time, so it
// cannot participate in a lock-order cycle.
// holdSet is one transaction's hold set: granule → strongest mode
// held. Storage is a flat entry vector: hold sets are tiny for the
// dominant transaction shapes, and a vector keeps the claim/release
// cycle free of map traffic — hashing, assignment, and Go's
// randomized iteration setup were the largest costs of a fast-path
// acquire/release pair. A set that outgrows holdSpill gains a lookup
// map maintained alongside the vector; the vector stays authoritative
// for iteration order and modes, the map only accelerates membership
// tests. Hold sets are grow-only until teardown (2PL releases
// everything at once); the one per-granule removal, fastReleaseAll,
// prunes from the tail, which a vector supports by truncation.
type holdSet struct {
	entries []holdEntry
	m       map[Granule]Mode // non-nil once len(entries) > holdSpill
}

// holdEntry is one granule of a hold set.
type holdEntry struct {
	g    Granule
	mode Mode
}

// holdSpill is the vector size past which membership tests switch
// from linear scan to a map. Below it, a scan of a cache-resident
// vector beats a map lookup; above it, repeated scans would make a
// large conservative claim quadratic.
const holdSpill = 16

// size is a nil-safe len.
func (h *holdSet) size() int {
	if h == nil {
		return 0
	}
	return len(h.entries)
}

// get is a nil-safe lookup.
func (h *holdSet) get(g Granule) (Mode, bool) {
	if h == nil {
		return 0, false
	}
	if h.m != nil {
		mode, ok := h.m[g]
		return mode, ok
	}
	for _, e := range h.entries {
		if e.g == g {
			return e.mode, true
		}
	}
	return 0, false
}

// set joins mode into g's entry (strengthen-only, like every hold-set
// write), appending on first acquisition.
func (h *holdSet) set(g Granule, mode Mode) {
	if have, ok := h.get(g); ok {
		joined := joinMode(mode, have)
		if joined == have {
			return
		}
		// Strengthen: rare (re-acquire at a stronger mode), so the
		// vector scan is acceptable even on spilled sets.
		for i := range h.entries {
			if h.entries[i].g == g {
				h.entries[i].mode = joined
				break
			}
		}
		if h.m != nil {
			h.m[g] = joined
		}
		return
	}
	h.entries = append(h.entries, holdEntry{g: g, mode: mode})
	if h.m != nil {
		h.m[g] = mode
	} else if len(h.entries) > holdSpill {
		h.m = make(map[Granule]Mode, 2*len(h.entries))
		for _, e := range h.entries {
			h.m[e.g] = e.mode
		}
	}
}

type txnShard struct {
	mu   sync.Mutex
	held map[TxnID]*holdSet
	// pool recycles emptied hold sets: the per-transaction map is the
	// dominant allocation of a single-granule transaction, on the fast
	// and slow paths alike.
	pool []*holdSet
}

// allocLocked returns an empty hold set, reusing a recycled one when
// available. Caller holds ts.mu.
func (ts *txnShard) allocLocked(hint int) *holdSet {
	if n := len(ts.pool); n > 0 {
		h := ts.pool[n-1]
		ts.pool[n-1] = nil
		ts.pool = ts.pool[:n-1]
		return h
	}
	if hint < 4 {
		hint = 4
	}
	return &holdSet{entries: make([]holdEntry, 0, hint)}
}

// recycleLocked clears hs and keeps it for reuse. Safe only once hs is
// unreachable from ts.held — no caller retains a hold-set reference
// across an unlock of ts.mu. Caller holds ts.mu.
func (ts *txnShard) recycleLocked(hs *holdSet) {
	if hs == nil || len(ts.pool) >= 64 {
		return
	}
	hs.entries = hs.entries[:0]
	hs.m = nil // spilled accelerator maps are not worth pooling
	ts.pool = append(ts.pool, hs)
}

// tableMetrics mirrors the Stats counters into an obs.Registry, the
// live-scrape view of lock-table activity. Gauges for holders, locked
// granules and parked waiters are registered as functions so they read
// the table's true state at scrape time instead of mirroring it.
type tableMetrics struct {
	grants    *obs.Counter
	waits     *obs.Counter
	deadlocks *obs.Counter

	fpGrants    *obs.Counter
	fpReleases  *obs.Counter
	fpFallbacks *obs.Counter
	fpSpinWins  *obs.Counter
	fpSpinParks *obs.Counter
}

// newTableMetrics registers the lockmgr families on reg for t.
func newTableMetrics(reg *obs.Registry, t *Table) *tableMetrics {
	reg.NewGaugeFunc("granulock_lockmgr_holders",
		"Transactions currently holding at least one granule.",
		func() float64 { return float64(t.HoldersCount()) })
	reg.NewGaugeFunc("granulock_lockmgr_locked_granules",
		"Granules with at least one holder.",
		func() float64 { return float64(t.LockedGranules()) })
	reg.NewGaugeFunc("granulock_lockmgr_waiters",
		"Requests currently parked (conservative claims plus incremental waiters).",
		func() float64 { return float64(t.WaitersCount()) })
	reg.NewGaugeFunc("granulock_lockmgr_shards",
		"Granule stripes in the lock table (power of two).",
		func() float64 { return float64(len(t.shards)) })
	reg.NewGaugeFunc("granulock_lockmgr_fastpath_enabled",
		"Whether the lock-free uncontended fast path is active (0/1).",
		func() float64 {
			if t.FastPathEnabled() {
				return 1
			}
			return 0
		})
	return &tableMetrics{
		grants: reg.NewCounter("granulock_lockmgr_grants_total",
			"Acquire calls satisfied, immediately or after waiting."),
		waits: reg.NewCounter("granulock_lockmgr_waits_total",
			"Acquire calls that had to wait (lock conflicts)."),
		deadlocks: reg.NewCounter("granulock_lockmgr_deadlocks_total",
			"Claim-as-needed waits aborted as deadlock victims."),
		fpGrants: reg.NewCounter("granulock_lockmgr_fastpath_grants_total",
			"Acquisitions granted by the lock-free fast path (CAS alone, no stripe mutex)."),
		fpReleases: reg.NewCounter("granulock_lockmgr_fastpath_releases_total",
			"ReleaseAll calls completed entirely on the lock-free fast path."),
		fpFallbacks: reg.NewCounter("granulock_lockmgr_fastpath_fallbacks_total",
			"Fast-path attempts that deferred to the stripe-locked slow path."),
		fpSpinWins: reg.NewCounter("granulock_lockmgr_fastpath_spin_wins_total",
			"Conflicting requests granted while spinning, before parking."),
		fpSpinParks: reg.NewCounter("granulock_lockmgr_fastpath_spin_parks_total",
			"Conflicting requests that exhausted their spin budget and parked."),
	}
}

// omGrant, omWait and omDeadlock bump the registry twins of the
// per-shard Stats counters. They take no locks (obs counters are
// atomic); the Stats counters themselves are incremented under the
// owning shard's mutex.
func (t *Table) omGrant() {
	if t.om != nil {
		t.om.grants.Inc()
	}
}

func (t *Table) omWait() {
	if t.om != nil {
		t.om.waits.Inc()
	}
}

func (t *Table) omDeadlock() {
	if t.om != nil {
		t.om.deadlocks.Inc()
	}
}

// omFastGrant counts a fast-path grant in both the aggregate grants
// family (a grant is a grant, whatever path served it) and the
// fastpath-specific family.
func (t *Table) omFastGrant() {
	if t.om != nil {
		t.om.grants.Inc()
		t.om.fpGrants.Inc()
	}
}

func (t *Table) omFastRelease() {
	if t.om != nil {
		t.om.fpReleases.Inc()
	}
}

func (t *Table) omFastFallback() {
	if t.om != nil {
		t.om.fpFallbacks.Inc()
	}
}

func (t *Table) omFastSpinWin() {
	if t.om != nil {
		t.om.fpSpinWins.Inc()
	}
}

func (t *Table) omFastSpinPark() {
	if t.om != nil {
		t.om.fpSpinParks.Inc()
	}
}

// granuleState tracks the holders and incremental waiters of one granule.
type granuleState struct {
	holders map[TxnID]Mode
	waiters []*stepWaiter // FIFO
}

// claimWaiter is a parked conservative AcquireAll request. It sits in
// the claim queue of every shard its granules hash onto; resolution
// (grant, duplicate failure, withdrawal) always happens while holding
// all of those shard locks, which is what guards the resolved flag.
type claimWaiter struct {
	seq      uint64
	txn      TxnID
	reqs     []Request
	shards   []uint64 // sorted unique shard indexes of reqs
	ch       chan error
	resolved bool
}

// stepWaiter is a parked incremental Acquire request.
type stepWaiter struct {
	txn     TxnID
	granule Granule
	mode    Mode
	ch      chan error
}

// Option configures a Table.
type Option func(*tableConfig)

type tableConfig struct {
	strict bool
	shards int
	reg    *obs.Registry
	fast   bool
}

// StrictFIFO makes conservative preclaim grants strictly first-come,
// first-served: a parked claim blocks every claim behind it, trading
// concurrency for starvation freedom. With multiple shards the
// guarantee is per stripe: a parked claim blocks later claims that
// touch any of its shards. The default allows compatible later claims
// to overtake.
func StrictFIFO() Option { return func(c *tableConfig) { c.strict = true } }

// WithShards stripes the table over n granule shards (rounded up to the
// next power of two, minimum 1). More shards let independent granule
// traffic proceed on independent mutexes; shards=1 reproduces the
// historical single-mutex behavior exactly.
func WithShards(n int) Option { return func(c *tableConfig) { c.shards = n } }

// WithMetrics mirrors the table's activity into reg: grant/wait/
// deadlock counters plus scrape-time gauges for holders, locked
// granules, parked waiters and the shard count (family prefix
// granulock_lockmgr_). One table per registry: the gauges read this
// table's state.
func WithMetrics(reg *obs.Registry) Option {
	return func(c *tableConfig) { c.reg = reg }
}

// WithFastPath enables or disables the lock-free uncontended fast path
// (fastpath.go) at construction; the default is enabled. Disabled, the
// table behaves exactly as the all-stripe-locked implementation.
// SetFastPath flips the switch at runtime.
func WithFastPath(on bool) Option {
	return func(c *tableConfig) { c.fast = on }
}

// nextPow2 rounds n up to the next power of two, minimum 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewTable returns an empty lock table.
func NewTable(opts ...Option) *Table {
	cfg := tableConfig{shards: 1, fast: true}
	for _, o := range opts {
		o(&cfg)
	}
	n := nextPow2(cfg.shards)
	t := &Table{
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
		txns:   make([]*txnShard, n),
		strict: cfg.strict,
		det:    NewDetector(),
	}
	for i := range t.shards {
		t.shards[i] = &shard{granules: make(map[Granule]*granuleState)}
		t.txns[i] = &txnShard{held: make(map[TxnID]*holdSet)}
	}
	t.fastOn.Store(cfg.fast)
	if cfg.reg != nil {
		t.om = newTableMetrics(cfg.reg, t)
	}
	return t
}

// Shards returns the number of granule stripes (a power of two).
func (t *Table) Shards() int { return len(t.shards) }

// mix64 is the splitmix64 finalizer: granule and transaction ids are
// often small and sequential, so stripe selection needs a real mixer to
// spread them across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// shardIndex returns the stripe index of a granule.
func (t *Table) shardIndex(g Granule) uint64 {
	if t.mask == 0 {
		return 0
	}
	return mix64(uint64(g)) & t.mask
}

// shardFor returns the stripe owning a granule.
func (t *Table) shardFor(g Granule) *shard { return t.shards[t.shardIndex(g)] }

// txnShardFor returns the stripe owning a transaction's hold set.
func (t *Table) txnShardFor(txn TxnID) *txnShard {
	if t.mask == 0 {
		return t.txns[0]
	}
	return t.txns[mix64(uint64(txn))&t.mask]
}

// shardSet returns the sorted, deduplicated stripe indexes touched by a
// request set — the canonical lock order for multi-granule operations.
func (t *Table) shardSet(reqs []Request) []uint64 {
	if t.mask == 0 {
		return zeroShard
	}
	idx := make([]uint64, 0, len(reqs))
	for _, r := range reqs {
		idx = append(idx, t.shardIndex(r.Granule))
	}
	return sortDedup(idx)
}

// granuleShardSet is shardSet over bare granules (the release path).
func (t *Table) granuleShardSet(gs []Granule) []uint64 {
	if t.mask == 0 {
		return zeroShard
	}
	idx := make([]uint64, 0, len(gs))
	for _, g := range gs {
		idx = append(idx, t.shardIndex(g))
	}
	return sortDedup(idx)
}

// zeroShard is the shared single-stripe index set: immutable, so every
// single-shard operation can use it without allocating.
var zeroShard = []uint64{0}

func sortDedup(idx []uint64) []uint64 {
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	out := idx[:0]
	var last uint64
	for i, v := range idx {
		if i == 0 || v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}

// lockShards locks the given stripes; idx must be sorted ascending and
// deduplicated (the canonical order).
//
//granulint:ordered
func (t *Table) lockShards(idx []uint64) {
	for _, i := range idx {
		t.shards[i].mu.Lock()
	}
}

// unlockShards releases stripes locked by lockShards.
func (t *Table) unlockShards(idx []uint64) {
	for j := len(idx) - 1; j >= 0; j-- {
		t.shards[idx[j]].mu.Unlock()
	}
}

// Stats returns a snapshot of the activity counters, aggregated across
// shards. The snapshot is per-shard-consistent, not globally atomic:
// each stripe's counters are read under that stripe's lock, but
// activity may land in an already-read stripe while later stripes are
// being read. Counters only ever increase, so the aggregate is a valid
// lower bound at the time the last stripe was read.
func (t *Table) Stats() Stats {
	var s Stats
	for _, sh := range t.shards {
		sh.mu.Lock()
		s.add(sh.stats)
		sh.mu.Unlock()
	}
	// Fast-path grants never held a stripe mutex; they accumulate in a
	// table-global atomic and fold in here so Grants counts every
	// acquisition whatever path served it.
	s.Grants += t.fpGrants.Load()
	return s
}

// HeldBy returns the number of granules txn currently holds.
func (t *Table) HeldBy(txn TxnID) int {
	ts := t.txnShardFor(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.held[txn].size()
}

// HoldersCount returns the number of transactions currently holding at
// least one granule. A clean table reports 0; after a drain this is the
// residual-holder count a lock service must bring to zero. Like Stats,
// the count is per-stripe-consistent rather than globally atomic.
func (t *Table) HoldersCount() int {
	n := 0
	for _, ts := range t.txns {
		ts.mu.Lock()
		for _, hm := range ts.held {
			if hm.size() > 0 {
				n++
			}
		}
		ts.mu.Unlock()
	}
	return n
}

// LockedGranules returns the number of granules with at least one
// holder (per-stripe-consistent). A granule held through the fast path
// has no map entry — its holder lives in the packed word — so both
// populations are counted; they are disjoint by the fast-path
// invariant (FAST word ⇔ no map entry).
func (t *Table) LockedGranules() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, gs := range sh.granules {
			if len(gs.holders) > 0 {
				n++
			}
		}
		n += sh.lockedFastGranules()
		sh.mu.Unlock()
	}
	return n
}

// WaitersCount returns the number of requests currently parked: both
// conservative whole-claim waiters and incremental per-granule waiters
// (per-stripe-consistent). A claim parked across several stripes is
// counted once, in its home stripe (the lowest-indexed shard it
// touches).
func (t *Table) WaitersCount() int {
	n := 0
	for i, sh := range t.shards {
		sh.mu.Lock()
		for _, w := range sh.claimQ {
			if w.shards[0] == uint64(i) {
				n++
			}
		}
		for _, gs := range sh.granules {
			n += len(gs.waiters)
		}
		sh.mu.Unlock()
	}
	return n
}

// granuleRecords counts granule entries across all stripes, including
// empty ones awaiting GC (test hook for the release-path GC).
func (t *Table) granuleRecords() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.Lock()
		n += len(sh.granules)
		sh.mu.Unlock()
	}
	return n
}

// HoldsAtLeast reports whether txn holds granule g in mode want or
// stronger.
func (t *Table) HoldsAtLeast(txn TxnID, g Granule, want Mode) bool {
	ts := t.txnShardFor(txn)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	have, ok := ts.held[txn].get(g)
	return ok && have >= want
}

// ConflictingHolders returns a snapshot of the transactions that hold
// granule g in a mode incompatible with want, excluding txn itself,
// sorted ascending. The snapshot is advisory: holders can change the
// moment the stripe unlocks, so callers layering restart policies over
// it (wound-wait / wait-die, internal/engine/cc) must keep the
// deadlock detector armed as their safety net for decisions that race
// a concurrent grant.
func (t *Table) ConflictingHolders(txn TxnID, g Granule, want Mode) []TxnID {
	s := t.shardFor(g)
	s.mu.Lock()
	defer s.mu.Unlock()
	// A FAST word is the granule's entire state (no map entry exists
	// while it holds); read it non-destructively rather than demoting,
	// so the probe does not evict the granule from the fast path.
	if fs := s.fastLookup(g); fs != nil {
		if holder, held, ok := fpPeek(fs); ok {
			if holder != txn && !Compatible(want, held) {
				return []TxnID{holder}
			}
			return nil
		}
	}
	gs := s.granules[g]
	if gs == nil {
		return nil
	}
	var out []TxnID
	for holder, held := range gs.holders {
		if holder != txn && !Compatible(want, held) {
			out = append(out, holder)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// joinMode returns the weakest mode at least as strong as both of its
// arguments — the join of the flat S/X mode lattice. For two modes the
// join coincides with max, but the merge rule is spelled as a join so
// it stays correct by construction if the lattice ever grows a mode
// pair whose join is not the greater element — as S and IX do in the
// hierarchical lattice, where their join is SIX (see combine in
// multigran.go, this function's multigranular sibling).
func joinMode(a, b Mode) Mode {
	if b > a {
		return b
	}
	return a
}

// coalesce deduplicates requests, merging duplicate granules to the
// join of their requested modes.
func coalesce(reqs []Request) []Request {
	strongest := make(map[Granule]Mode, len(reqs))
	order := make([]Granule, 0, len(reqs))
	for _, r := range reqs {
		if have, ok := strongest[r.Granule]; !ok {
			strongest[r.Granule] = r.Mode
			order = append(order, r.Granule)
		} else {
			strongest[r.Granule] = joinMode(r.Mode, have)
		}
	}
	out := make([]Request, len(order))
	for i, g := range order {
		out[i] = Request{Granule: g, Mode: strongest[g]}
	}
	return out
}

// AcquireAll atomically acquires every requested granule, or parks the
// whole claim until it can: the conservative protocol of the paper, under
// which deadlock is impossible because a transaction holds nothing while
// it waits. Duplicate granules are coalesced to their strongest mode.
// AcquireAll returns early with ctx.Err() if the context is cancelled
// while parked.
//
// The claim locks every stripe its granules hash onto, in ascending
// index order. A blocked claim is queued on all of those stripes and
// re-evaluated whenever a release touches any of them.
func (t *Table) AcquireAll(ctx context.Context, txn TxnID, reqs []Request) error {
	// Single-granule claims — the dominant shape at fine granularity —
	// try the lock-free fast path first; a one-element request set needs
	// no coalescing or stripe ordering.
	if len(reqs) == 1 && t.fastOn.Load() && fpPackable(txn) {
		switch t.fastClaim(txn, reqs[0].Granule, reqs[0].Mode, true) {
		case fastGranted:
			return nil
		case fastAlready:
			return fmt.Errorf("lockmgr: transaction %d: %w", txn, ErrAlreadyHolds)
		}
	}
	reqs = coalesce(reqs)
	ts := t.txnShardFor(txn)
	if len(reqs) == 0 {
		// An empty claim conflicts with nothing; it only has to respect
		// the first-acquisition rule.
		ts.mu.Lock()
		already := ts.held[txn].size() != 0
		ts.mu.Unlock()
		if already {
			return fmt.Errorf("lockmgr: transaction %d: %w", txn, ErrAlreadyHolds)
		}
		return nil
	}
	sh := t.shardSet(reqs)
	t.lockShards(sh)
	t.demoteAllLocked(reqs)
	ts.mu.Lock()
	if ts.held[txn].size() != 0 {
		ts.mu.Unlock()
		t.unlockShards(sh)
		return fmt.Errorf("lockmgr: transaction %d: %w", txn, ErrAlreadyHolds)
	}
	if t.grantable(txn, reqs) {
		t.grantAll(ts, txn, reqs)
		ts.mu.Unlock()
		t.shards[sh[0]].stats.Grants++
		t.unlockShards(sh)
		t.omGrant()
		return nil
	}
	ts.mu.Unlock()
	w := &claimWaiter{
		seq:    t.claimSeq.Add(1),
		txn:    txn,
		reqs:   reqs,
		shards: sh,
		ch:     make(chan error, 1),
	}
	for _, i := range sh {
		s := t.shards[i]
		s.claimQ = append(s.claimQ, w)
	}
	t.shards[sh[0]].stats.Blocks++
	t.unlockShards(sh)
	t.omWait()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		if t.withdrawClaim(w) {
			return ctx.Err()
		}
		// The claim was resolved before we could withdraw it — granted,
		// or failed as a duplicate of a same-txn grant — so report that
		// outcome.
		return <-w.ch
	}
}

// TryAcquireAll attempts the conservative claim without parking: it
// grants atomically if every granule is free right now and otherwise
// changes nothing, reporting granted=false. The error return carries
// only protocol violations (ErrAlreadyHolds); a claim that would block
// is not an error. This is AcquireAll's fast path exposed on its own so
// callers measuring wait times can skip the clock entirely for grants
// that never waited.
func (t *Table) TryAcquireAll(txn TxnID, reqs []Request) (bool, error) {
	if len(reqs) == 1 && t.fastOn.Load() && fpPackable(txn) {
		switch t.fastClaim(txn, reqs[0].Granule, reqs[0].Mode, false) {
		case fastGranted:
			return true, nil
		case fastAlready:
			return false, fmt.Errorf("lockmgr: transaction %d: %w", txn, ErrAlreadyHolds)
		case fastBlocked:
			// A single incompatible fast holder is a definitive answer:
			// the claim would not be grantable under the stripe lock
			// either, and TryAcquireAll never waits.
			return false, nil
		}
	}
	reqs = coalesce(reqs)
	ts := t.txnShardFor(txn)
	if len(reqs) == 0 {
		ts.mu.Lock()
		already := ts.held[txn].size() != 0
		ts.mu.Unlock()
		if already {
			return false, fmt.Errorf("lockmgr: transaction %d: %w", txn, ErrAlreadyHolds)
		}
		return true, nil
	}
	sh := t.shardSet(reqs)
	t.lockShards(sh)
	t.demoteAllLocked(reqs)
	ts.mu.Lock()
	if ts.held[txn].size() != 0 {
		ts.mu.Unlock()
		t.unlockShards(sh)
		return false, fmt.Errorf("lockmgr: transaction %d: %w", txn, ErrAlreadyHolds)
	}
	if t.grantable(txn, reqs) {
		t.grantAll(ts, txn, reqs)
		ts.mu.Unlock()
		t.shards[sh[0]].stats.Grants++
		t.unlockShards(sh)
		t.omGrant()
		return true, nil
	}
	ts.mu.Unlock()
	// The failed probe demoted granules it is not going to hold; give
	// the holderless ones their fast-path eligibility back.
	for _, r := range reqs {
		t.promoteLocked(t.shardFor(r.Granule), r.Granule)
	}
	t.unlockShards(sh)
	return false, nil
}

// demoteAllLocked demotes every requested granule, making the stripe
// map authoritative before a multi-granule slow-path decision. Caller
// holds every involved stripe.
func (t *Table) demoteAllLocked(reqs []Request) {
	for _, r := range reqs {
		t.demoteLocked(t.shardFor(r.Granule), r.Granule)
	}
}

// grantable reports whether every request is compatible with current
// holders other than txn itself. Caller holds every involved stripe.
func (t *Table) grantable(txn TxnID, reqs []Request) bool {
	for _, r := range reqs {
		gs := t.shardFor(r.Granule).granules[r.Granule]
		if gs == nil {
			continue
		}
		for holder, mode := range gs.holders {
			if holder == txn {
				continue
			}
			if !Compatible(r.Mode, mode) {
				return false
			}
		}
	}
	return true
}

// grantAll records txn as holder of every request. Caller holds every
// involved stripe plus ts (txn's hold-set stripe).
func (t *Table) grantAll(ts *txnShard, txn TxnID, reqs []Request) {
	hm := ts.held[txn]
	if hm == nil {
		hm = ts.allocLocked(len(reqs))
		ts.held[txn] = hm
	}
	for _, r := range reqs {
		s := t.shardFor(r.Granule)
		gs := s.granules[r.Granule]
		if gs == nil {
			gs = &granuleState{holders: make(map[TxnID]Mode, 1)}
			s.granules[r.Granule] = gs
		}
		// A missing entry reads as ModeShared, the lattice bottom, so
		// the unconditional join handles insert and strengthen alike.
		gs.holders[txn] = joinMode(r.Mode, gs.holders[txn])
		hm.set(r.Granule, r.Mode)
	}
}

// withdrawClaim removes a parked claim from every stripe queue it sits
// in; it reports whether the claim was still parked.
func (t *Table) withdrawClaim(w *claimWaiter) bool {
	t.lockShards(w.shards)
	defer t.unlockShards(w.shards)
	if w.resolved {
		return false
	}
	t.removeClaimLocked(w)
	w.resolved = true
	// Granules only this claim was keeping slow can go fast again.
	for _, r := range w.reqs {
		t.promoteLocked(t.shardFor(r.Granule), r.Granule)
	}
	return true
}

// removeClaimLocked deletes w from the claim queue of every stripe it
// touches. Caller holds all of w's stripes.
func (t *Table) removeClaimLocked(w *claimWaiter) {
	for _, i := range w.shards {
		s := t.shards[i]
		for j, c := range s.claimQ {
			if c == w {
				s.claimQ = append(s.claimQ[:j], s.claimQ[j+1:]...)
				break
			}
		}
	}
}

// Acquire incrementally acquires one granule (the claim-as-needed
// protocol). It may wait; if the wait would close a cycle in the
// waits-for graph the request fails with ErrDeadlock and the caller is
// the victim. Lock upgrades (S held, X requested) are supported and wait
// for concurrent readers to drain. The uncontended path touches only the
// granule's stripe and the transaction's hold-set stripe — never the
// detector.
func (t *Table) Acquire(ctx context.Context, txn TxnID, g Granule, mode Mode) error {
	if t.fastOn.Load() && fpPackable(txn) && t.fastAcquire(txn, g, mode) {
		return nil
	}
	s := t.shardFor(g)
	s.mu.Lock()
	t.demoteLocked(s, g)
	gs := s.granules[g]
	if gs == nil {
		gs = &granuleState{holders: make(map[TxnID]Mode, 1)}
		s.granules[g] = gs
	}
	if have, ok := gs.holders[txn]; ok && have >= mode {
		s.mu.Unlock()
		return nil // already held strongly enough
	}
	if t.stepGrantable(gs, txn, mode) {
		t.grantStep(gs, txn, g, mode)
		s.stats.Grants++
		if len(gs.waiters) > 0 {
			// An upgrade strengthens the holder set without a release;
			// the waits-for edges of parked requests must track the
			// change.
			t.detMu.Lock()
			t.syncWaiterEdgesLocked(s, gs)
			t.mirrorEdges()
			t.detMu.Unlock()
		}
		s.mu.Unlock()
		t.omGrant()
		return nil
	}
	w := &stepWaiter{txn: txn, granule: g, mode: mode, ch: make(chan error, 1)}
	gs.waiters = append(gs.waiters, w)
	s.stats.Blocks++
	t.detMu.Lock()
	t.refreshEdgesLocked(gs, w, len(gs.waiters)-1)
	if t.det.InCycle(txn) {
		// The newest edge closed a cycle: this requester is the victim.
		t.dropWaiter(gs, w)
		t.det.RemoveWaiter(txn)
		s.stats.Deadlocks++
		t.mirrorEdges()
		t.detMu.Unlock()
		s.mu.Unlock()
		t.omDeadlock()
		return ErrDeadlock
	}
	t.mirrorEdges()
	t.detMu.Unlock()
	s.mu.Unlock()
	t.omWait()

	select {
	case err := <-w.ch:
		return err
	case <-ctx.Done():
		s.mu.Lock()
		if t.dropWaiter(gs, w) {
			t.detMu.Lock()
			t.det.RemoveWaiter(txn)
			// Waiters queued behind w held an ahead-edge to it; refresh
			// so the withdrawn wait cannot fabricate a cycle.
			t.syncWaiterEdgesLocked(s, gs)
			t.mirrorEdges()
			t.detMu.Unlock()
			s.mu.Unlock()
			return ctx.Err()
		}
		s.mu.Unlock()
		return <-w.ch
	}
}

// stepGrantable reports whether txn may take g in mode now. Caller holds
// the granule's stripe. FIFO fairness: a request must also not overtake
// earlier waiters unless it is compatible with them too (readers may join
// readers even if a writer waits only when they precede the writer; we
// keep it simple and strict to avoid writer starvation).
func (t *Table) stepGrantable(gs *granuleState, txn TxnID, mode Mode) bool {
	for holder, held := range gs.holders {
		if holder == txn {
			continue // upgrade: only other holders matter
		}
		if !Compatible(mode, held) {
			return false
		}
	}
	// No overtaking: if others are already parked on this granule, queue
	// behind them (except pure upgrades, which take priority to drain).
	if _, upgrading := gs.holders[txn]; !upgrading && len(gs.waiters) > 0 {
		return false
	}
	return true
}

// grantStep records txn as holder of g, in both the granule's stripe and
// txn's hold-set stripe. Caller holds the granule's stripe; the hold-set
// stripe is taken nested (granule stripes are never acquired while a
// hold-set stripe is held, so the nesting cannot cycle).
func (t *Table) grantStep(gs *granuleState, txn TxnID, g Granule, mode Mode) {
	gs.holders[txn] = joinMode(mode, gs.holders[txn])
	t.recordHeld(txn, g, mode)
}

// recordHeld updates txn's hold set with g at mode (strengthen only).
func (t *Table) recordHeld(txn TxnID, g Granule, mode Mode) {
	ts := t.txnShardFor(txn)
	ts.mu.Lock()
	t.recordHeldLocked(ts, txn, g, mode)
	ts.mu.Unlock()
}

// recordHeldLocked is recordHeld with ts (txn's hold-set stripe)
// already locked — the form the fast path uses to keep the hold-set
// update inside the same critical section as its word CAS.
func (t *Table) recordHeldLocked(ts *txnShard, txn TxnID, g Granule, mode Mode) {
	hm := ts.held[txn]
	if hm == nil {
		hm = ts.allocLocked(4)
		ts.held[txn] = hm
	}
	hm.set(g, mode)
}

// dropWaiter removes w from its granule's wait queue; reports whether it
// was still parked. Caller holds the granule's stripe.
func (t *Table) dropWaiter(gs *granuleState, w *stepWaiter) bool {
	for i, x := range gs.waiters {
		if x == w {
			gs.waiters = append(gs.waiters[:i], gs.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// refreshEdgesLocked points w's waits-for edges at the current
// incompatible holders of its granule and at every waiter queued ahead
// of it (the no-overtaking rule makes those real blockers too). idx is
// w's position in gs.waiters. Caller holds the granule's stripe and
// detMu.
func (t *Table) refreshEdgesLocked(gs *granuleState, w *stepWaiter, idx int) {
	t.det.RemoveWaiter(w.txn)
	for holder, held := range gs.holders {
		if holder != w.txn && !Compatible(w.mode, held) {
			t.det.AddEdge(w.txn, holder)
		}
	}
	for i := 0; i < idx && i < len(gs.waiters); i++ {
		t.det.AddEdge(w.txn, gs.waiters[i].txn)
	}
}

// syncWaiterEdgesLocked refreshes the edges of every waiter of gs and
// aborts any whose refreshed edges close a cycle. Caller holds the
// granule's stripe and detMu.
func (t *Table) syncWaiterEdgesLocked(s *shard, gs *granuleState) {
	remaining := append([]*stepWaiter(nil), gs.waiters...)
	for _, w := range remaining {
		idx := -1
		for i, x := range gs.waiters {
			if x == w {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue // aborted by an earlier iteration
		}
		t.refreshEdgesLocked(gs, w, idx)
		if t.det.InCycle(w.txn) {
			t.dropWaiter(gs, w)
			t.det.RemoveWaiter(w.txn)
			s.stats.Deadlocks++
			t.omDeadlock()
			w.ch <- ErrDeadlock
		}
	}
}

// mirrorEdges refreshes the lock-free edge-count mirror. Caller holds
// detMu.
func (t *Table) mirrorEdges() {
	t.detEdges.Store(int64(t.det.Edges()))
}

// detForget clears txn from the waits-for graph. It skips the detector
// lock entirely when the graph is empty — the common case for
// conservative workloads, whose claims never create edges.
func (t *Table) detForget(txn TxnID) {
	if t.detEdges.Load() == 0 {
		return
	}
	t.detMu.Lock()
	t.det.RemoveTxn(txn)
	t.mirrorEdges()
	t.detMu.Unlock()
}

// ReleaseAll releases every granule held by txn, wakes whatever can now
// run, and clears txn from the waits-for graph. It locks the stripes of
// txn's held granules in canonical ascending order; parked claims on
// those stripes are re-evaluated (in global claim arrival order) after
// the stripe locks are dropped.
func (t *Table) ReleaseAll(txn TxnID) {
	// When every held granule is fast-held, the whole release is CAS
	// traffic; the attempt costs one hold-set scan and never undoes
	// progress (release needs no cross-granule atomicity).
	if t.fastOn.Load() && fpPackable(txn) && t.fastReleaseAll(txn) {
		return
	}
	ts := t.txnShardFor(txn)
	var snapshot []Granule
	var sh []uint64
	for {
		ts.mu.Lock()
		hm := ts.held[txn]
		if hm.size() == 0 {
			delete(ts.held, txn)
			ts.recycleLocked(hm)
			ts.mu.Unlock()
			t.detForget(txn)
			return
		}
		snapshot = snapshot[:0]
		for _, e := range hm.entries {
			snapshot = append(snapshot, e.g)
		}
		// Canonical (ascending) wake order: map iteration order is
		// randomized, and the order in which granules wake their waiters
		// can influence deadlock-victim selection. Releases must make the
		// same decisions on every run and at every stripe count.
		sort.Slice(snapshot, func(i, j int) bool { return snapshot[i] < snapshot[j] })
		ts.mu.Unlock()
		sh = t.granuleShardSet(snapshot)
		t.lockShards(sh)
		ts.mu.Lock()
		if sameGranules(ts.held[txn], snapshot) {
			break
		}
		// txn's hold set changed between snapshot and stripe lock (a
		// racing same-txn grant, e.g. a duplicate claim waking): retry
		// with fresh stripes.
		ts.mu.Unlock()
		t.unlockShards(sh)
	}
	// Granules still held through the fast path (fastReleaseAll skipped
	// or beaten to a granule) are materialized into the stripe maps
	// before the map-based release below.
	for _, g := range snapshot {
		t.demoteLocked(t.shardFor(g), g)
	}
	for _, g := range snapshot {
		if gs := t.shardFor(g).granules[g]; gs != nil {
			delete(gs.holders, txn)
		}
	}
	hm := ts.held[txn]
	delete(ts.held, txn)
	ts.recycleLocked(hm)
	ts.mu.Unlock()
	t.detForget(txn)

	for _, g := range snapshot {
		t.wakeStepWaiters(t.shardFor(g), g)
	}
	// Snapshot parked claims on the touched stripes; they are resolved
	// after the stripe locks drop, in claim arrival order.
	var cands []*claimWaiter
	for _, i := range sh {
		cands = append(cands, t.shards[i].claimQ...)
	}
	// Garbage-collect empty granule entries so long-running tables do
	// not accumulate one record per granule ever touched — and promote
	// the collected granules back to fast-path eligibility.
	for _, g := range snapshot {
		t.promoteLocked(t.shardFor(g), g)
	}
	t.unlockShards(sh)
	t.resolveClaims(cands)
}

// sameGranules reports whether hs's key set equals the snapshot slice.
func sameGranules(hs *holdSet, snapshot []Granule) bool {
	if hs.size() != len(snapshot) {
		return false
	}
	for _, g := range snapshot {
		if _, ok := hs.get(g); !ok {
			return false
		}
	}
	return true
}

// wakeStepWaiters grants incremental waiters of g in FIFO order while
// compatible, refreshing the waits-for edges of those still blocked and
// aborting any whose refreshed edges close a cycle. Caller holds the
// granule's stripe.
func (t *Table) wakeStepWaiters(s *shard, g Granule) {
	gs := s.granules[g]
	if gs == nil || len(gs.waiters) == 0 {
		return
	}
	var woken []*stepWaiter
	for len(gs.waiters) > 0 {
		w := gs.waiters[0]
		granted := true
		for holder, held := range gs.holders {
			if holder != w.txn && !Compatible(w.mode, held) {
				granted = false
				break
			}
		}
		if !granted {
			break
		}
		gs.waiters = gs.waiters[1:]
		t.grantStep(gs, w.txn, g, w.mode)
		s.stats.Grants++
		woken = append(woken, w)
	}
	// Detector bookkeeping in one batch: woken waiters stop waiting, and
	// the blockers of those still parked changed.
	if len(woken) > 0 || len(gs.waiters) > 0 {
		t.detMu.Lock()
		for _, w := range woken {
			t.det.RemoveWaiter(w.txn)
		}
		t.syncWaiterEdgesLocked(s, gs)
		t.mirrorEdges()
		t.detMu.Unlock()
	}
	for _, w := range woken {
		t.omGrant()
		w.ch <- nil
	}
}

// resolveClaims re-evaluates parked claims in global arrival order,
// granting those that became compatible and failing duplicates. cands
// may contain a claim several times (once per touched stripe) and must
// not be assumed still parked. No stripe locks are held on entry.
func (t *Table) resolveClaims(cands []*claimWaiter) {
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	var blocked map[uint64]struct{}
	for i, w := range cands {
		if i > 0 && cands[i-1] == w {
			continue // deduplicate: one entry per touched stripe
		}
		if t.strict && intersects(blocked, w.shards) {
			// Strict FIFO: a still-parked claim blocks everything queued
			// behind it on its stripes.
			blocked = markBlocked(blocked, w.shards)
			continue
		}
		if t.tryResolveClaim(w) {
			continue
		}
		if t.strict {
			blocked = markBlocked(blocked, w.shards)
		}
	}
}

func intersects(blocked map[uint64]struct{}, sh []uint64) bool {
	for _, i := range sh {
		if _, ok := blocked[i]; ok {
			return true
		}
	}
	return false
}

func markBlocked(blocked map[uint64]struct{}, sh []uint64) map[uint64]struct{} {
	if blocked == nil {
		blocked = make(map[uint64]struct{}, len(sh))
	}
	for _, i := range sh {
		blocked[i] = struct{}{}
	}
	return blocked
}

// tryResolveClaim attempts to resolve one parked claim: grant it, or
// fail it as a duplicate of a same-txn grant. It reports whether the
// claim was resolved (true) or remains parked (false).
func (t *Table) tryResolveClaim(w *claimWaiter) bool {
	t.lockShards(w.shards)
	defer t.unlockShards(w.shards)
	if w.resolved {
		return true
	}
	// Claim granules are demoted when the claim parks and promotion
	// skips claim-referenced granules, so they should still be slow;
	// the demote is a cheap invariant guard against a fast grant racing
	// in between this claim's park and its resolution.
	t.demoteAllLocked(w.reqs)
	ts := t.txnShardFor(w.txn)
	ts.mu.Lock()
	if ts.held[w.txn].size() != 0 {
		ts.mu.Unlock()
		// The txn already holds locks, so this parked claim is a
		// duplicate: a retried claim (new session) racing its
		// predecessor's withdrawal. grantable ignores self-conflicts,
		// so granting it too would double-book the txn and let the
		// predecessor's teardown strip locks the duplicate believes
		// it holds. Fail it exactly as AcquireAll's entry check
		// would have; the lock service's orphan-retry loop handles
		// ErrAlreadyHolds.
		t.removeClaimLocked(w)
		w.resolved = true
		for _, r := range w.reqs {
			t.promoteLocked(t.shardFor(r.Granule), r.Granule)
		}
		w.ch <- fmt.Errorf("lockmgr: transaction %d: %w", w.txn, ErrAlreadyHolds)
		return true
	}
	if !t.grantable(w.txn, w.reqs) {
		ts.mu.Unlock()
		return false
	}
	t.grantAll(ts, w.txn, w.reqs)
	ts.mu.Unlock()
	t.removeClaimLocked(w)
	w.resolved = true
	t.shards[w.shards[0]].stats.Grants++
	t.omGrant()
	w.ch <- nil
	return true
}
