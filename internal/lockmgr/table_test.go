package lockmgr

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func reqs(mode Mode, granules ...Granule) []Request {
	out := make([]Request, len(granules))
	for i, g := range granules {
		out[i] = Request{Granule: g, Mode: mode}
	}
	return out
}

func mustAcquireAll(t *testing.T, tab *Table, txn TxnID, r []Request) {
	t.Helper()
	if err := tab.AcquireAll(context.Background(), txn, r); err != nil {
		t.Fatalf("AcquireAll(%d): %v", txn, err)
	}
}

func TestAcquireAllDisjointGrantsImmediately(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 1, 2, 3))
	mustAcquireAll(t, tab, 2, reqs(ModeExclusive, 4, 5))
	if tab.HeldBy(1) != 3 || tab.HeldBy(2) != 2 {
		t.Fatalf("held counts %d/%d, want 3/2", tab.HeldBy(1), tab.HeldBy(2))
	}
	s := tab.Stats()
	if s.Grants != 2 || s.Blocks != 0 {
		t.Fatalf("stats %+v, want 2 grants, 0 blocks", s)
	}
}

func TestAcquireAllSharedCoexist(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeShared, 7))
	mustAcquireAll(t, tab, 2, reqs(ModeShared, 7))
	if !tab.HoldsAtLeast(1, 7, ModeShared) || !tab.HoldsAtLeast(2, 7, ModeShared) {
		t.Fatal("shared holders missing")
	}
}

func TestAcquireAllConflictParksUntilRelease(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 9))
	done := make(chan error, 1)
	go func() { done <- tab.AcquireAll(context.Background(), 2, reqs(ModeExclusive, 9)) }()
	select {
	case err := <-done:
		t.Fatalf("conflicting claim granted prematurely: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	tab.ReleaseAll(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("claim after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("claim never granted after release")
	}
	if !tab.HoldsAtLeast(2, 9, ModeExclusive) {
		t.Fatal("waiter did not obtain the lock")
	}
}

func TestAcquireAllAtomicity(t *testing.T) {
	// A claim overlapping a held granule must hold NOTHING while parked:
	// a third transaction claiming only the free part must not be
	// hindered by the parked claim's other granules (deadlock freedom of
	// conservative locking).
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 1))
	parked := make(chan error, 1)
	go func() { parked <- tab.AcquireAll(context.Background(), 2, reqs(ModeExclusive, 1, 2)) }()
	time.Sleep(20 * time.Millisecond)
	if tab.HeldBy(2) != 0 {
		t.Fatal("parked claim holds granules")
	}
	mustAcquireAll(t, tab, 3, reqs(ModeExclusive, 2)) // must not block
	tab.ReleaseAll(3)
	tab.ReleaseAll(1)
	if err := <-parked; err != nil {
		t.Fatalf("parked claim errored: %v", err)
	}
}

func TestAcquireAllCoalescesDuplicates(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, []Request{
		{Granule: 5, Mode: ModeShared},
		{Granule: 5, Mode: ModeExclusive},
		{Granule: 5, Mode: ModeShared},
	})
	if !tab.HoldsAtLeast(1, 5, ModeExclusive) {
		t.Fatal("duplicate coalescing lost the strongest mode")
	}
	if tab.HeldBy(1) != 1 {
		t.Fatalf("HeldBy = %d, want 1", tab.HeldBy(1))
	}
}

func TestAcquireAllRejectsSecondClaim(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeShared, 1))
	if err := tab.AcquireAll(context.Background(), 1, reqs(ModeShared, 2)); err == nil {
		t.Fatal("second conservative claim by same txn accepted")
	}
}

func TestDuplicateParkedClaimNotDoubleGranted(t *testing.T) {
	// Two parked claims for the SAME txn (a retried claim racing its
	// predecessor's withdrawal across a reconnect): one release sweep
	// must grant exactly one of them and fail the other with
	// ErrAlreadyHolds. Granting both would double-book the txn, and the
	// loser's eventual ReleaseAll would strip the winner's locks.
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 5))
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- tab.AcquireAll(context.Background(), 2, reqs(ModeExclusive, 5)) }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for tab.WaitersCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate claims never both parked")
		}
		time.Sleep(time.Millisecond)
	}
	tab.ReleaseAll(1)
	e1, e2 := <-done, <-done
	if e2 == nil {
		e1, e2 = e2, e1
	}
	if e1 != nil {
		t.Fatalf("neither duplicate claim was granted: %v / %v", e1, e2)
	}
	if !errors.Is(e2, ErrAlreadyHolds) {
		t.Fatalf("second same-txn claim: got %v, want ErrAlreadyHolds", e2)
	}
	if tab.HeldBy(2) != 1 {
		t.Fatalf("txn 2 holds %d granules, want 1", tab.HeldBy(2))
	}
	tab.ReleaseAll(2)
	if tab.HoldersCount() != 0 || tab.WaitersCount() != 0 {
		t.Fatal("table not clean after duplicate-claim resolution")
	}
}

func TestAcquireAllContextCancel(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 1))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tab.AcquireAll(ctx, 2, reqs(ModeExclusive, 1)) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The withdrawn claim must not be granted later.
	tab.ReleaseAll(1)
	time.Sleep(10 * time.Millisecond)
	if tab.HeldBy(2) != 0 {
		t.Fatal("cancelled claim was granted")
	}
}

func TestClaimFIFOOrderOnSameGranule(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 1))
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 2; i <= 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tab.AcquireAll(context.Background(), TxnID(i), reqs(ModeExclusive, 1)); err != nil {
				t.Errorf("claim %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			tab.ReleaseAll(TxnID(i))
		}()
		time.Sleep(20 * time.Millisecond) // establish queue order
	}
	tab.ReleaseAll(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order %v, want [2 3 4]", order)
	}
}

func TestNonStrictAllowsOvertaking(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 1))
	parked := make(chan error, 1)
	go func() { parked <- tab.AcquireAll(context.Background(), 2, reqs(ModeExclusive, 1, 2)) }()
	time.Sleep(20 * time.Millisecond)
	// Default policy: txn 3's disjoint claim overtakes txn 2's parked one.
	done := make(chan error, 1)
	go func() { done <- tab.AcquireAll(context.Background(), 3, reqs(ModeExclusive, 3)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("disjoint claim blocked behind parked claim without StrictFIFO")
	}
	tab.ReleaseAll(1)
	<-parked
}

func TestStrictFIFOPreventsOvertaking(t *testing.T) {
	tab := NewTable(StrictFIFO())
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 1))
	parked := make(chan error, 1)
	go func() { parked <- tab.AcquireAll(context.Background(), 2, reqs(ModeExclusive, 1)) }()
	time.Sleep(20 * time.Millisecond)
	// txn 3 wants an unrelated granule; strict FIFO still parks it while
	// a release is pending ahead of it... but only claims entering after
	// a release-triggered scan are ordered. Verify: release wakes 2 then 3.
	done := make(chan error, 1)
	go func() { done <- tab.AcquireAll(context.Background(), 3, reqs(ModeExclusive, 1)) }()
	time.Sleep(20 * time.Millisecond)
	tab.ReleaseAll(1)
	if err := <-parked; err != nil {
		t.Fatal(err)
	}
	tab.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalAcquireAndReacquire(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	if err := tab.Acquire(ctx, 1, 10, ModeShared); err != nil {
		t.Fatal(err)
	}
	// Re-acquiring at equal or weaker mode is a no-op.
	if err := tab.Acquire(ctx, 1, 10, ModeShared); err != nil {
		t.Fatal(err)
	}
	if err := tab.Acquire(ctx, 1, 10, ModeExclusive); err != nil {
		t.Fatal(err) // sole holder: upgrade succeeds immediately
	}
	if !tab.HoldsAtLeast(1, 10, ModeExclusive) {
		t.Fatal("upgrade lost")
	}
	if err := tab.Acquire(ctx, 1, 10, ModeShared); err != nil {
		t.Fatal("weaker re-acquire after upgrade failed")
	}
}

func TestIncrementalBlocksAndWakes(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	if err := tab.Acquire(ctx, 1, 1, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tab.Acquire(ctx, 2, 1, ModeShared) }()
	select {
	case <-done:
		t.Fatal("incompatible acquire granted")
	case <-time.After(20 * time.Millisecond):
	}
	tab.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalNoOvertakingWriterNotStarved(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	if err := tab.Acquire(ctx, 1, 1, ModeShared); err != nil {
		t.Fatal(err)
	}
	writer := make(chan error, 1)
	go func() { writer <- tab.Acquire(ctx, 2, 1, ModeExclusive) }()
	time.Sleep(20 * time.Millisecond)
	// A later reader must queue behind the waiting writer.
	reader := make(chan error, 1)
	go func() { reader <- tab.Acquire(ctx, 3, 1, ModeShared) }()
	select {
	case <-reader:
		t.Fatal("reader overtook waiting writer")
	case <-time.After(20 * time.Millisecond):
	}
	tab.ReleaseAll(1)
	if err := <-writer; err != nil {
		t.Fatal(err)
	}
	tab.ReleaseAll(2)
	if err := <-reader; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectedTwoTxns(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	if err := tab.Acquire(ctx, 1, 1, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	if err := tab.Acquire(ctx, 2, 2, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	step := make(chan error, 1)
	go func() { step <- tab.Acquire(ctx, 1, 2, ModeExclusive) }() // 1 waits on 2
	time.Sleep(20 * time.Millisecond)
	err := tab.Acquire(ctx, 2, 1, ModeExclusive) // closes the cycle
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	tab.ReleaseAll(2) // victim aborts
	if err := <-step; err != nil {
		t.Fatalf("survivor errored: %v", err)
	}
	tab.ReleaseAll(1)
	if s := tab.Stats(); s.Deadlocks != 1 {
		t.Fatalf("deadlock count %d, want 1", s.Deadlocks)
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// Two shared holders both upgrading is the classic conversion
	// deadlock: one must be chosen as victim.
	tab := NewTable()
	ctx := context.Background()
	if err := tab.Acquire(ctx, 1, 1, ModeShared); err != nil {
		t.Fatal(err)
	}
	if err := tab.Acquire(ctx, 2, 1, ModeShared); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- tab.Acquire(ctx, 1, 1, ModeExclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := tab.Acquire(ctx, 2, 1, ModeExclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader: err = %v, want ErrDeadlock", err)
	}
	tab.ReleaseAll(2)
	if err := <-first; err != nil {
		t.Fatalf("first upgrader: %v", err)
	}
}

func TestDeadlockThreeWayCycle(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	for i := TxnID(1); i <= 3; i++ {
		if err := tab.Acquire(ctx, i, Granule(i), ModeExclusive); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	go func() { errs <- tab.Acquire(ctx, 1, 2, ModeExclusive) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- tab.Acquire(ctx, 2, 3, ModeExclusive) }()
	time.Sleep(20 * time.Millisecond)
	// 3 -> 1 closes the 3-cycle; 3 is the victim.
	if err := tab.Acquire(ctx, 3, 1, ModeExclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	tab.ReleaseAll(3)
	if err := <-errs; err != nil { // txn 2 obtains granule 3
		t.Fatal(err)
	}
	tab.ReleaseAll(2)
	if err := <-errs; err != nil { // txn 1 obtains granule 2
		t.Fatal(err)
	}
}

func TestIncrementalContextCancel(t *testing.T) {
	tab := NewTable()
	if err := tab.Acquire(context.Background(), 1, 1, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- tab.Acquire(ctx, 2, 1, ModeExclusive) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	tab.ReleaseAll(1)
	time.Sleep(10 * time.Millisecond)
	if tab.HeldBy(2) != 0 {
		t.Fatal("cancelled waiter was granted")
	}
}

func TestReleaseAllIdempotentAndUnknown(t *testing.T) {
	tab := NewTable()
	tab.ReleaseAll(99) // unknown txn: no-op
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 1))
	tab.ReleaseAll(1)
	tab.ReleaseAll(1)
	if tab.HeldBy(1) != 0 {
		t.Fatal("locks survive double release")
	}
}

func TestTableGarbageCollectsGranules(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 1000; i++ {
		mustAcquireAll(t, tab, 1, reqs(ModeExclusive, Granule(i)))
		tab.ReleaseAll(1)
	}
	n := tab.granuleRecords()
	if n != 0 {
		t.Fatalf("%d granule records leaked", n)
	}
}

func TestConcurrentConservativeStress(t *testing.T) {
	// Many goroutines conservatively claiming overlapping granule sets:
	// no two incompatible holders may coexist, and everything drains.
	tab := NewTable()
	const workers = 16
	const iters = 200
	var inCritical [8]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := TxnID(w*iters + i + 1)
				g1 := Granule(i % 8)
				g2 := Granule((i + w) % 8)
				if err := tab.AcquireAll(context.Background(), txn, reqs(ModeExclusive, g1, g2)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if inCritical[g1].Add(1) != 1 {
					t.Errorf("mutual exclusion violated on granule %d", g1)
				}
				if g2 != g1 && inCritical[g2].Add(1) != 1 {
					t.Errorf("mutual exclusion violated on granule %d", g2)
				}
				inCritical[g1].Add(-1)
				if g2 != g1 {
					inCritical[g2].Add(-1)
				}
				tab.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentClaimAsNeededStress(t *testing.T) {
	// Incremental acquisition with deliberate lock-order inversion:
	// deadlocks must be detected (not hang) and victims retried to
	// completion.
	tab := NewTable()
	const workers = 8
	const iters = 100
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := TxnID(1 + w + workers*(i+1))
				a, b := Granule(i%4), Granule((i+1+w)%4)
			retry:
				if err := tab.Acquire(context.Background(), txn, a, ModeExclusive); err != nil {
					if errors.Is(err, ErrDeadlock) {
						deadlocks.Add(1)
						tab.ReleaseAll(txn)
						goto retry
					}
					t.Errorf("acquire a: %v", err)
					return
				}
				if a != b {
					if err := tab.Acquire(context.Background(), txn, b, ModeExclusive); err != nil {
						if errors.Is(err, ErrDeadlock) {
							deadlocks.Add(1)
							tab.ReleaseAll(txn)
							goto retry
						}
						t.Errorf("acquire b: %v", err)
						return
					}
				}
				tab.ReleaseAll(txn)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("claim-as-needed stress hung: likely an undetected deadlock")
	}
	if tab.Stats().Deadlocks != deadlocks.Load() {
		t.Fatalf("stats deadlocks %d != observed %d", tab.Stats().Deadlocks, deadlocks.Load())
	}
}

func TestModeString(t *testing.T) {
	if ModeShared.String() != "S" || ModeExclusive.String() != "X" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func BenchmarkConservativeClaimCycle(b *testing.B) {
	tab := NewTable()
	r := reqs(ModeExclusive, 1, 2, 3, 4)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		txn := TxnID(i + 1)
		if err := tab.AcquireAll(ctx, txn, r); err != nil {
			b.Fatal(err)
		}
		tab.ReleaseAll(txn)
	}
}

func BenchmarkContendedClaims(b *testing.B) {
	tab := NewTable()
	ctx := context.Background()
	var id atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		base := TxnID(id.Add(1)) * 1_000_000
		i := TxnID(0)
		for pb.Next() {
			i++
			txn := base + i
			if err := tab.AcquireAll(ctx, txn, reqs(ModeExclusive, Granule(i%16))); err != nil {
				b.Error(err)
				return
			}
			tab.ReleaseAll(txn)
		}
	})
}
