package lockmgr

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardsRoundsToPowerOfTwo(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16}
	for in, want := range cases {
		if got := NewTable(WithShards(in)).Shards(); got != want {
			t.Errorf("WithShards(%d).Shards() = %d, want %d", in, got, want)
		}
	}
	if got := NewTable().Shards(); got != 1 {
		t.Errorf("default Shards() = %d, want 1", got)
	}
}

func TestShardSetCanonicalOrder(t *testing.T) {
	tab := NewTable(WithShards(8))
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Granule: Granule(i * 7), Mode: ModeShared}
	}
	sh := tab.shardSet(reqs)
	for i := 1; i < len(sh); i++ {
		if sh[i] <= sh[i-1] {
			t.Fatalf("shard set not strictly ascending: %v", sh)
		}
	}
}

// TestShardedConservativeStress is the shard-ordered multi-granule
// discipline under -race: many goroutines claim overlapping granule
// sets that straddle several stripes. A lock-order inversion between
// stripes would deadlock the test (guarded by the timeout below); a
// data race would trip the race detector. Mutual exclusion is checked
// the same way as the single-shard stress test.
func TestShardedConservativeStress(t *testing.T) {
	tab := NewTable(WithShards(8))
	const workers = 16
	const iters = 150
	const granules = 24 // spread across all 8 stripes
	var inCritical [granules]atomic.Int32
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := TxnID(w*iters + i + 1)
				// Three granules chosen to cross stripe boundaries, with
				// heavy overlap across workers.
				gs := []Granule{
					Granule(i % granules),
					Granule((i + w) % granules),
					Granule((i * 5) % granules),
				}
				rs := make([]Request, len(gs))
				for j, g := range gs {
					rs[j] = Request{Granule: g, Mode: ModeExclusive}
				}
				if err := tab.AcquireAll(context.Background(), txn, rs); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				seen := map[Granule]bool{}
				for _, g := range gs {
					if seen[g] {
						continue
					}
					seen[g] = true
					if inCritical[g].Add(1) != 1 {
						t.Errorf("mutual exclusion violated on granule %d", g)
					}
				}
				for g := range seen {
					inCritical[g].Add(-1)
				}
				tab.ReleaseAll(txn)
			}
		}()
	}
	// Aggregation sampler: the documented semantics of Stats,
	// HoldersCount, LockedGranules and WaitersCount are an approximate
	// (per-stripe-consistent) snapshot — never a negative one. Sample
	// them continuously while the stress traffic runs.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-done:
				return
			default:
			}
			st := tab.Stats()
			if st.Grants < 0 || st.Blocks < 0 || st.Deadlocks < 0 {
				t.Errorf("negative stats snapshot: %+v", st)
				return
			}
			if n := tab.HoldersCount(); n < 0 {
				t.Errorf("negative holders count %d", n)
				return
			}
			if n := tab.LockedGranules(); n < 0 {
				t.Errorf("negative locked-granule count %d", n)
				return
			}
			if n := tab.WaitersCount(); n < 0 {
				t.Errorf("negative waiter count %d", n)
				return
			}
		}
	}()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged: possible cross-stripe lock-order inversion")
	}
	<-samplerDone
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
	if n := tab.WaitersCount(); n != 0 {
		t.Fatalf("%d waiters leaked", n)
	}
}

// TestShardedCrossStripeCycle builds a deterministic two-transaction
// deadlock whose granules live on different stripes: txn 1 parks behind
// txn 2's granule, then txn 2's request for txn 1's granule closes the
// cycle and must fail synchronously with ErrDeadlock — proving the
// dedicated-mutex detector still sees edges that cross stripes.
func TestShardedCrossStripeCycle(t *testing.T) {
	tab := NewTable(WithShards(4))
	a := Granule(1)
	b := a + 1
	for tab.shardIndex(b) == tab.shardIndex(a) {
		b++
	}
	ctx := context.Background()
	if err := tab.Acquire(ctx, 1, a, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	if err := tab.Acquire(ctx, 2, b, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	go func() { parked <- tab.Acquire(ctx, 1, b, ModeExclusive) }()
	waitFor(t, func() bool { return tab.WaitersCount() == 1 })
	if err := tab.Acquire(ctx, 2, a, ModeExclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cycle-closing acquire: got %v, want ErrDeadlock", err)
	}
	tab.ReleaseAll(2) // victim aborts: txn 1's parked request wakes
	if err := <-parked; err != nil {
		t.Fatalf("survivor's parked acquire: %v", err)
	}
	tab.ReleaseAll(1)
	if tab.detEdges.Load() != 0 {
		t.Fatalf("edge mirror nonzero after drain: %d", tab.detEdges.Load())
	}
}

// TestShardedIncrementalDeadlocks drives claim-as-needed transactions
// across stripes until deadlock victims appear, proving the detector
// still sees cross-stripe cycles when edges live behind its dedicated
// mutex.
func TestShardedIncrementalDeadlocks(t *testing.T) {
	tab := NewTable(WithShards(4))
	const workers = 8
	const iters = 100
	var deadlocks atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := TxnID(w*iters + i + 1)
				// Half ascend, half descend through the granules — the
				// classic deadlock recipe. Gosched between steps forces
				// interleaving even on a single-CPU scheduler.
				order := []Granule{Granule(i % 6), Granule((i + 3) % 6)}
				if w%2 == 1 {
					order[0], order[1] = order[1], order[0]
				}
				for _, g := range order {
					runtime.Gosched()
					if err := tab.Acquire(context.Background(), txn, g, ModeExclusive); err != nil {
						if !errors.Is(err, ErrDeadlock) {
							t.Errorf("worker %d: %v", w, err)
						}
						deadlocks.Add(1)
						break
					}
				}
				tab.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
	if deadlocks.Load() == 0 {
		t.Fatal("adversarial schedule produced no deadlock victims")
	}
	if tab.Stats().Deadlocks == 0 {
		t.Fatal("Stats().Deadlocks did not aggregate victim count")
	}
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
	if tab.detEdges.Load() != 0 {
		t.Fatalf("waits-for edge mirror nonzero after drain: %d", tab.detEdges.Load())
	}
}

// TestShardedStatsAggregate pins that the activity counters and
// occupancy snapshots aggregate across stripes.
func TestShardedStatsAggregate(t *testing.T) {
	tab := NewTable(WithShards(8))
	for i := 0; i < 32; i++ {
		if err := tab.AcquireAll(context.Background(), TxnID(i+1),
			reqs(ModeExclusive, Granule(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := tab.Stats().Grants; got != 32 {
		t.Fatalf("Grants = %d, want 32", got)
	}
	if got := tab.HoldersCount(); got != 32 {
		t.Fatalf("HoldersCount = %d, want 32", got)
	}
	if got := tab.LockedGranules(); got != 32 {
		t.Fatalf("LockedGranules = %d, want 32", got)
	}
	// Park one claim spanning several stripes: counted exactly once.
	blocked := make(chan error, 1)
	go func() {
		blocked <- tab.AcquireAll(context.Background(), 100,
			reqs(ModeExclusive, 0, 1, 2, 3, 4, 5, 6, 7))
	}()
	waitFor(t, func() bool { return tab.WaitersCount() == 1 })
	if got := tab.Stats().Blocks; got != 1 {
		t.Fatalf("Blocks = %d, want 1", got)
	}
	for i := 0; i < 32; i++ {
		tab.ReleaseAll(TxnID(i + 1))
	}
	if err := <-blocked; err != nil {
		t.Fatalf("parked claim: %v", err)
	}
	tab.ReleaseAll(100)
	if got := tab.HoldersCount(); got != 0 {
		t.Fatalf("HoldersCount after drain = %d, want 0", got)
	}
}

// TestShardedStrictFIFOPerStripe pins the strict-FIFO guarantee on a
// sharded table: during a resolution sweep, a still-parked claim blocks
// later-arriving claims on its stripes, even when the later claim has
// become grantable. (Entry-time immediate grants still bypass the
// queue, exactly as on the single-stripe table.)
func TestShardedStrictFIFOPerStripe(t *testing.T) {
	tab := NewTable(WithShards(4), StrictFIFO())
	// Find two distinct granules on the same stripe so both claims below
	// share a resolution sweep.
	a := Granule(10)
	b := a + 1
	for tab.shardIndex(b) != tab.shardIndex(a) {
		b++
	}
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, a))
	mustAcquireAll(t, tab, 2, reqs(ModeExclusive, b))
	// Claim 3 (earlier) wants both; claim 4 (later) wants only b.
	third := make(chan error, 1)
	go func() {
		third <- tab.AcquireAll(context.Background(), 3, reqs(ModeExclusive, a, b))
	}()
	waitFor(t, func() bool { return tab.WaitersCount() == 1 })
	fourth := make(chan error, 1)
	go func() {
		fourth <- tab.AcquireAll(context.Background(), 4, reqs(ModeExclusive, b))
	}()
	waitFor(t, func() bool { return tab.WaitersCount() == 2 })
	// Releasing b makes claim 4 grantable, but claim 3 (still blocked on
	// a) is ahead of it on the stripe: strict FIFO keeps 4 parked.
	tab.ReleaseAll(2)
	select {
	case err := <-fourth:
		t.Fatalf("later claim overtook a parked earlier claim under StrictFIFO (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	tab.ReleaseAll(1)
	if err := <-third; err != nil {
		t.Fatalf("claim 3: %v", err)
	}
	tab.ReleaseAll(3)
	if err := <-fourth; err != nil {
		t.Fatalf("claim 4: %v", err)
	}
	tab.ReleaseAll(4)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDetectorEdgeCounter(t *testing.T) {
	d := NewDetector()
	d.AddEdge(1, 2)
	d.AddEdge(1, 2) // duplicate: not double-counted
	d.AddEdge(1, 3)
	d.AddEdge(2, 3)
	d.AddEdge(3, 3) // self-edge: ignored
	if got := d.Edges(); got != 3 {
		t.Fatalf("Edges = %d, want 3", got)
	}
	d.RemoveWaiter(1)
	if got := d.Edges(); got != 1 {
		t.Fatalf("Edges after RemoveWaiter = %d, want 1", got)
	}
	d.AddEdge(1, 3)
	d.RemoveTxn(3) // removes 1→3 and 2→3
	if got := d.Edges(); got != 0 {
		t.Fatalf("Edges after RemoveTxn = %d, want 0", got)
	}
}
