package lockmgr

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// warmFast makes g fast-eligible: the first claim/release cycle over a
// granule runs on the slow path, and the release-side garbage collection
// promotes the granule into the shard's lock-free index.
func warmFast(t *testing.T, tab *Table, g Granule) {
	t.Helper()
	const warmTxn = TxnID(1 << 40) // far outside the ids tests use
	mustAcquireAll(t, tab, warmTxn, reqs(ModeExclusive, g))
	tab.ReleaseAll(warmTxn)
	if fs := tab.shardFor(g).fastLookup(g); fs == nil || fs.word.Load() != 0 {
		t.Fatalf("granule %d not promoted to fast-path eligibility after warm-up", g)
	}
}

func TestFastPackRoundTrip(t *testing.T) {
	for _, txn := range []TxnID{1, 2, 1 << 20, fpTxnMask} {
		for _, mode := range []Mode{ModeShared, ModeExclusive} {
			w := fpPack(txn, mode)
			if !fpIsFast(w) {
				t.Fatalf("fpPack(%d,%v) not FAST", txn, mode)
			}
			if got := fpTxnOf(w); got != txn {
				t.Fatalf("fpTxnOf(fpPack(%d,%v)) = %d", txn, mode, got)
			}
			if got := fpModeOf(w); got != mode {
				t.Fatalf("fpModeOf(fpPack(%d,%v)) = %v", txn, mode, got)
			}
		}
	}
	for _, w := range []uint64{0, fpSlow, fpTomb} {
		if fpIsFast(w) {
			t.Fatalf("word %#x misread as FAST", w)
		}
	}
	for _, txn := range []TxnID{0, -1, fpTxnMask + 1} {
		if fpPackable(txn) {
			t.Fatalf("txn %d should not be packable", txn)
		}
	}
}

func TestFastPathUncontendedClaimCycle(t *testing.T) {
	tab := NewTable(WithShards(4))
	g := Granule(7)
	warmFast(t, tab, g)
	if fp := tab.FastStats(); fp.Grants != 0 {
		t.Fatalf("warm-up cycle should be slow-path only, got %+v", fp)
	}
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, g))
	if fp := tab.FastStats(); fp.Grants != 1 {
		t.Fatalf("second claim should be a fast grant, got %+v", fp)
	}
	if !tab.HoldsAtLeast(1, g, ModeExclusive) {
		t.Fatal("fast grant not visible in hold set")
	}
	if n := tab.LockedGranules(); n != 1 {
		t.Fatalf("LockedGranules = %d with one fast-held granule", n)
	}
	tab.ReleaseAll(1)
	if fp := tab.FastStats(); fp.Releases != 1 {
		t.Fatalf("release of a fast-held granule should be fast, got %+v", fp)
	}
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
	if n := tab.granuleRecords(); n != 0 {
		t.Fatalf("%d granule records leaked (fast holds must not create map entries)", n)
	}
	if got := tab.Stats().Grants; got != 2 {
		t.Fatalf("Stats().Grants = %d, want 2 (slow warm-up + fast grant folded in)", got)
	}
}

func TestFastPathIncrementalStepAndUpgrade(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	g := Granule(3)
	warmFast(t, tab, g)
	if err := tab.Acquire(ctx, 1, g, ModeShared); err != nil {
		t.Fatal(err)
	}
	if fp := tab.FastStats(); fp.Grants != 1 {
		t.Fatalf("uncontended step should be fast, got %+v", fp)
	}
	// Re-acquire at the same strength: no new grant either path.
	if err := tab.Acquire(ctx, 1, g, ModeShared); err != nil {
		t.Fatal(err)
	}
	if fp := tab.FastStats(); fp.Grants != 1 {
		t.Fatalf("re-acquire should not grant again, got %+v", fp)
	}
	// Sole-holder upgrade S→X stays on the fast path.
	if err := tab.Acquire(ctx, 1, g, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	if fp := tab.FastStats(); fp.Grants != 2 {
		t.Fatalf("sole-holder upgrade should be fast, got %+v", fp)
	}
	if !tab.HoldsAtLeast(1, g, ModeExclusive) {
		t.Fatal("upgrade not recorded")
	}
	tab.ReleaseAll(1)
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
}

func TestFastPathConflictFallsBackAndParks(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	g := Granule(9)
	warmFast(t, tab, g)
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, g)) // fast-held by txn 1
	ch := make(chan error, 1)
	go func() { ch <- tab.Acquire(ctx, 2, g, ModeShared) }()
	waitFor(t, func() bool { return tab.WaitersCount() == 1 })
	if fp := tab.FastStats(); fp.Fallbacks == 0 {
		t.Fatalf("conflicting request should have fallen back, got %+v", fp)
	}
	tab.ReleaseAll(1)
	if err := <-ch; err != nil {
		t.Fatalf("waiter should be granted after release: %v", err)
	}
	tab.ReleaseAll(2)
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
}

func TestFastPathSharedReadersFallBackToMap(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	g := Granule(5)
	warmFast(t, tab, g)
	if err := tab.Acquire(ctx, 1, g, ModeShared); err != nil { // fast
		t.Fatal(err)
	}
	// A second reader cannot be encoded in the single-holder word: it
	// must demote the granule and join through the stripe map.
	if err := tab.Acquire(ctx, 2, g, ModeShared); err != nil {
		t.Fatal(err)
	}
	if !tab.HoldsAtLeast(1, g, ModeShared) || !tab.HoldsAtLeast(2, g, ModeShared) {
		t.Fatal("both readers should hold g")
	}
	tab.ReleaseAll(1)
	tab.ReleaseAll(2)
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
}

func TestFastPathFirstAcquisitionRule(t *testing.T) {
	tab := NewTable()
	g, g2 := Granule(1), Granule(2)
	warmFast(t, tab, g)
	warmFast(t, tab, g2)
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, g)) // fast
	if err := tab.AcquireAll(context.Background(), 1, reqs(ModeShared, g2)); !errors.Is(err, ErrAlreadyHolds) {
		t.Fatalf("second claim by a fast holder: got %v, want ErrAlreadyHolds", err)
	}
	if ok, err := tab.TryAcquireAll(1, reqs(ModeShared, g2)); ok || !errors.Is(err, ErrAlreadyHolds) {
		t.Fatalf("TryAcquireAll second claim: got (%v, %v)", ok, err)
	}
	tab.ReleaseAll(1)
}

func TestFastPathTryAcquireAllBlockedFast(t *testing.T) {
	tab := NewTable()
	g := Granule(4)
	warmFast(t, tab, g)
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, g)) // fast-held
	ok, err := tab.TryAcquireAll(2, reqs(ModeExclusive, g))
	if ok || err != nil {
		t.Fatalf("TryAcquireAll against a fast holder: got (%v, %v)", ok, err)
	}
	if tab.HeldBy(2) != 0 {
		t.Fatal("failed try must record nothing")
	}
	tab.ReleaseAll(1)
}

// TestFastPathParkedClaimNotBypassed pins the promotion guard: while a
// multi-granule claim is parked on a granule, the granule must stay off
// the fast path, or a fast grant/release cycle would skip the
// claim-resolution sweep and strand the claim forever.
func TestFastPathParkedClaimNotBypassed(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	g1, g2 := Granule(11), Granule(12)
	warmFast(t, tab, g1)
	warmFast(t, tab, g2)
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, g1)) // fast-held
	ch := make(chan error, 1)
	go func() { ch <- tab.AcquireAll(ctx, 2, reqs(ModeExclusive, g1, g2)) }()
	waitFor(t, func() bool { return tab.WaitersCount() == 1 })
	// The parked claim demoted g1 and must keep g2 slow too: a fast
	// claim/release of g2 by a third txn must not overtake it...
	mustAcquireAll(t, tab, 3, reqs(ModeExclusive, g2))
	tab.ReleaseAll(3)
	// ...and releasing g1 must grant the parked claim even though txn 3
	// touched g2 in between.
	tab.ReleaseAll(1)
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("parked claim failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked claim stranded: promotion guard violated")
	}
	tab.ReleaseAll(2)
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
}

func TestFastPathDisabledByOption(t *testing.T) {
	tab := NewTable(WithFastPath(false))
	if tab.FastPathEnabled() {
		t.Fatal("WithFastPath(false) should disable the fast path")
	}
	g := Granule(6)
	for txn := TxnID(1); txn <= 5; txn++ {
		mustAcquireAll(t, tab, txn, reqs(ModeExclusive, g))
		tab.ReleaseAll(txn)
	}
	if fp := tab.FastStats(); fp != (FastPathStats{}) {
		t.Fatalf("disabled fast path saw traffic: %+v", fp)
	}
}

// TestFastPathRuntimeToggle flips the fast path off while fast-held
// locks exist: the slow path must lazily migrate them into the stripe
// maps and release them correctly.
func TestFastPathRuntimeToggle(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	g := Granule(8)
	warmFast(t, tab, g)
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, g)) // fast-held
	tab.SetFastPath(false)
	// A conflicting slow-path request must still see the fast holder.
	ch := make(chan error, 1)
	go func() { ch <- tab.Acquire(ctx, 2, g, ModeExclusive) }()
	waitFor(t, func() bool { return tab.WaitersCount() == 1 })
	tab.ReleaseAll(1) // slow release of a fast-granted lock
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	tab.ReleaseAll(2)
	tab.SetFastPath(true)
	if !tab.FastPathEnabled() {
		t.Fatal("SetFastPath(true) should re-enable")
	}
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
}

func TestFastPathSpinBudgetAdapts(t *testing.T) {
	tab := NewTable()
	ctx := context.Background()
	g := Granule(2)
	warmFast(t, tab, g)
	fs := tab.shardFor(g).fastLookup(g)
	if got := fs.spin.Load(); got != fpSpinSeed {
		t.Fatalf("spin budget = %d, want seed %d", got, fpSpinSeed)
	}
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, g)) // fast-held
	// A conflicting request exhausts its spin budget, parks, and halves
	// the budget: this granule's holds are long, spinning does not pay.
	ch := make(chan error, 1)
	go func() { ch <- tab.Acquire(ctx, 2, g, ModeExclusive) }()
	waitFor(t, func() bool { return tab.WaitersCount() == 1 })
	if fp := tab.FastStats(); fp.SpinParks == 0 {
		t.Fatalf("conflicting request should have spun then parked, got %+v", fp)
	}
	if got := fs.spin.Load(); got >= fpSpinSeed {
		t.Fatalf("spin budget should shrink after a park, got %d", got)
	}
	tab.ReleaseAll(1)
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	tab.ReleaseAll(2)
}

// TestFastPathIndexEviction churns far more granules than the per-shard
// fast index holds, forcing evictions, and checks every cycle still
// grants and releases cleanly.
func TestFastPathIndexEviction(t *testing.T) {
	tab := NewTable() // one shard: all granules compete for one index
	const n = 3 * fpSlots
	txn := TxnID(1)
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			mustAcquireAll(t, tab, txn, reqs(ModeExclusive, Granule(i)))
			tab.ReleaseAll(txn)
			txn++
		}
	}
	if got := tab.HoldersCount(); got != 0 {
		t.Fatalf("%d holders leaked", got)
	}
	if got := tab.granuleRecords(); got != 0 {
		t.Fatalf("%d granule records leaked", got)
	}
	if fp := tab.FastStats(); fp.Grants == 0 {
		t.Fatal("index churn should still serve some fast grants")
	}
}

func TestFastPathUnpackableTxnUsesSlowPath(t *testing.T) {
	tab := NewTable()
	g := Granule(13)
	warmFast(t, tab, g)
	big := TxnID(fpTxnMask) + 7 // cannot be encoded in the word
	mustAcquireAll(t, tab, big, reqs(ModeExclusive, g))
	if fp := tab.FastStats(); fp.Grants != 0 {
		t.Fatalf("unpackable txn must not take the fast path, got %+v", fp)
	}
	if !tab.HoldsAtLeast(big, g, ModeExclusive) {
		t.Fatal("slow grant missing")
	}
	tab.ReleaseAll(big)
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
}

// TestTryAcquireAllNoPartialStateOnFailure pins that a failed
// conservative probe records nothing: no hold-set entries, no granule
// records beyond those that already existed.
func TestTryAcquireAllNoPartialStateOnFailure(t *testing.T) {
	tab := NewTable(WithShards(8))
	mustAcquireAll(t, tab, 1, reqs(ModeExclusive, 30))
	ok, err := tab.TryAcquireAll(2, []Request{
		{Granule: 10, Mode: ModeShared},
		{Granule: 20, Mode: ModeExclusive},
		{Granule: 30, Mode: ModeShared}, // blocked by txn 1's X
	})
	if ok || err != nil {
		t.Fatalf("TryAcquireAll = (%v, %v), want (false, nil)", ok, err)
	}
	if n := tab.HeldBy(2); n != 0 {
		t.Fatalf("failed probe left %d hold-set entries", n)
	}
	if n := tab.granuleRecords(); n != 1 {
		t.Fatalf("failed probe left %d granule records, want only txn 1's", n)
	}
	if n := tab.LockedGranules(); n != 1 {
		t.Fatalf("LockedGranules = %d, want 1", n)
	}
	tab.ReleaseAll(1)
	if n := tab.granuleRecords(); n != 0 {
		t.Fatalf("%d granule records leaked", n)
	}
}

// TestTryAcquireAllRace hammers TryAcquireAll from many goroutines over
// overlapping granule sets (run under -race in CI): failed probes must
// leave zero recorded state and the table must drain to empty.
func TestTryAcquireAllRace(t *testing.T) {
	tab := NewTable(WithShards(8))
	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := TxnID(w*iters + i + 1)
				rs := []Request{
					{Granule: Granule(i % 7), Mode: ModeExclusive},
					{Granule: Granule((i + w) % 7), Mode: ModeShared},
				}
				ok, err := tab.TryAcquireAll(txn, rs)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !ok {
					if n := tab.HeldBy(txn); n != 0 {
						t.Errorf("worker %d: failed probe left %d holds", w, n)
						return
					}
					continue
				}
				tab.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
	if n := tab.LockedGranules(); n != 0 {
		t.Fatalf("%d locked granules leaked", n)
	}
}

// TestFastPathConcurrentStress mixes fast claims, incremental steps and
// releases over a small granule set with the fast path active, checking
// mutual exclusion the same way the sharded stress tests do.
func TestFastPathConcurrentStress(t *testing.T) {
	tab := NewTable(WithShards(4))
	const workers = 8
	const iters = 200
	const granules = 6
	var inCritical [granules]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				txn := TxnID(w*iters + i + 1)
				g := Granule((i + w) % granules)
				var err error
				if i%2 == 0 {
					err = tab.AcquireAll(ctx, txn, reqs(ModeExclusive, g))
				} else {
					err = tab.Acquire(ctx, txn, g, ModeExclusive)
				}
				if err != nil {
					if errors.Is(err, ErrDeadlock) {
						tab.ReleaseAll(txn)
						continue
					}
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if inCritical[g].Add(1) != 1 {
					t.Errorf("mutual exclusion violated on granule %d", g)
				}
				inCritical[g].Add(-1)
				tab.ReleaseAll(txn)
			}
		}()
	}
	wg.Wait()
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked", n)
	}
	if n := tab.LockedGranules(); n != 0 {
		t.Fatalf("%d locked granules leaked", n)
	}
	fp := tab.FastStats()
	if fp.Grants == 0 {
		t.Fatal("stress with warm granules should see fast grants")
	}
	t.Logf("fast-path stats: %+v", fp)
}
