package lockmgr

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGCompatibilityMatrix(t *testing.T) {
	// Gray's matrix, row = requested, column = held.
	compat := map[[2]GMode]bool{
		{GModeIS, GModeIS}: true, {GModeIS, GModeIX}: true, {GModeIS, GModeS}: true, {GModeIS, GModeSIX}: true, {GModeIS, GModeX}: false,
		{GModeIX, GModeIS}: true, {GModeIX, GModeIX}: true, {GModeIX, GModeS}: false, {GModeIX, GModeSIX}: false, {GModeIX, GModeX}: false,
		{GModeS, GModeIS}: true, {GModeS, GModeIX}: false, {GModeS, GModeS}: true, {GModeS, GModeSIX}: false, {GModeS, GModeX}: false,
		{GModeSIX, GModeIS}: true, {GModeSIX, GModeIX}: false, {GModeSIX, GModeS}: false, {GModeSIX, GModeSIX}: false, {GModeSIX, GModeX}: false,
		{GModeX, GModeIS}: false, {GModeX, GModeIX}: false, {GModeX, GModeS}: false, {GModeX, GModeSIX}: false, {GModeX, GModeX}: false,
	}
	for pair, want := range compat {
		if got := GCompatible(pair[0], pair[1]); got != want {
			t.Errorf("GCompatible(%v, %v) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

func TestGCompatibilitySymmetry(t *testing.T) {
	// Lock compatibility is symmetric.
	for a := GModeIS; a <= GModeX; a++ {
		for b := GModeIS; b <= GModeX; b++ {
			if GCompatible(a, b) != GCompatible(b, a) {
				t.Errorf("asymmetric compatibility: %v vs %v", a, b)
			}
		}
	}
}

func TestCombine(t *testing.T) {
	cases := []struct{ a, b, want GMode }{
		{GModeS, GModeIX, GModeSIX},
		{GModeIX, GModeS, GModeSIX},
		{GModeIS, GModeIX, GModeIX},
		{GModeIS, GModeS, GModeS},
		{GModeS, GModeX, GModeX},
		{GModeSIX, GModeIS, GModeSIX},
		{GModeX, GModeX, GModeX},
	}
	for _, c := range cases {
		if got := combine(c.a, c.b); got != c.want {
			t.Errorf("combine(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntentionFor(t *testing.T) {
	if IntentionFor(GModeS) != GModeIS || IntentionFor(GModeIS) != GModeIS {
		t.Fatal("read modes need IS intention")
	}
	for _, m := range []GMode{GModeX, GModeIX, GModeSIX} {
		if IntentionFor(m) != GModeIX {
			t.Fatalf("write mode %v needs IX intention", m)
		}
	}
}

func TestGModeString(t *testing.T) {
	names := map[GMode]string{GModeIS: "IS", GModeIX: "IX", GModeS: "S", GModeSIX: "SIX", GModeX: "X"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("GMode %d String = %q, want %q", m, m.String(), want)
		}
	}
	if GMode(99).String() == "" {
		t.Fatal("unknown GMode String empty")
	}
}

func path(ids ...string) []NodeID {
	out := make([]NodeID, len(ids))
	for i, s := range ids {
		out[i] = NodeID(s)
	}
	return out
}

func TestHierLockSetsIntentions(t *testing.T) {
	h := NewHierTable()
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
		t.Fatal(err)
	}
	if m, ok := h.Held(1, "db"); !ok || m != GModeIX {
		t.Fatalf("root mode %v/%v, want IX", m, ok)
	}
	if m, ok := h.Held(1, "rel"); !ok || m != GModeIX {
		t.Fatalf("relation mode %v/%v, want IX", m, ok)
	}
	if m, ok := h.Held(1, "g1"); !ok || m != GModeX {
		t.Fatalf("granule mode %v/%v, want X", m, ok)
	}
}

func TestHierFineGrainedConcurrency(t *testing.T) {
	// Two writers on different granules of the same relation coexist via
	// intention locks — the whole point of multigranularity locking.
	h := NewHierTable()
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
		t.Fatal(err)
	}
	if err := h.Lock(ctx, 2, path("db", "rel", "g2"), GModeX); err != nil {
		t.Fatal(err)
	}
}

func TestHierCoarseLockExcludesFine(t *testing.T) {
	// An S lock on the relation blocks a writer on any of its granules.
	h := NewHierTable()
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "rel"), GModeS); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- h.Lock(ctx, 2, path("db", "rel", "g1"), GModeX) }()
	select {
	case <-done:
		t.Fatal("granule writer not blocked by relation S lock")
	case <-time.After(20 * time.Millisecond):
	}
	h.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHierReadersShareRelation(t *testing.T) {
	h := NewHierTable()
	ctx := context.Background()
	for txn := TxnID(1); txn <= 5; txn++ {
		if err := h.Lock(ctx, txn, path("db", "rel"), GModeS); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHierSIXComposition(t *testing.T) {
	// Holding S then IX on the same node strengthens to SIX.
	h := NewHierTable()
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "rel"), GModeS); err != nil {
		t.Fatal(err)
	}
	if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
		t.Fatal(err)
	}
	if m, _ := h.Held(1, "rel"); m != GModeSIX {
		t.Fatalf("relation mode %v, want SIX", m)
	}
	// Another reader of the relation must now wait (SIX vs S).
	done := make(chan error, 1)
	go func() { done <- h.Lock(ctx, 2, path("db", "rel"), GModeS) }()
	select {
	case <-done:
		t.Fatal("S granted against SIX")
	case <-time.After(20 * time.Millisecond):
	}
	h.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHierDeadlockDetected(t *testing.T) {
	h := NewHierTable()
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "r1"), GModeX); err != nil {
		t.Fatal(err)
	}
	if err := h.Lock(ctx, 2, path("db", "r2"), GModeX); err != nil {
		t.Fatal(err)
	}
	step := make(chan error, 1)
	go func() { step <- h.Lock(ctx, 1, path("db", "r2"), GModeX) }()
	time.Sleep(20 * time.Millisecond)
	err := h.Lock(ctx, 2, path("db", "r1"), GModeX)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	h.ReleaseAll(2)
	if err := <-step; err != nil {
		t.Fatal(err)
	}
	h.ReleaseAll(1)
}

func TestHierContextCancel(t *testing.T) {
	h := NewHierTable()
	if err := h.Lock(context.Background(), 1, path("db"), GModeX); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- h.Lock(ctx, 2, path("db"), GModeS) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	h.ReleaseAll(1)
}

func TestHierEmptyPath(t *testing.T) {
	h := NewHierTable()
	if err := h.Lock(context.Background(), 1, nil, GModeS); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestHierConcurrentStress(t *testing.T) {
	// Mixed readers/writers over a two-level hierarchy with retry on
	// deadlock: must terminate with exclusive access honored per granule.
	h := NewHierTable()
	const workers = 12
	const iters = 100
	var critical [4]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				txn := TxnID(1 + w + workers*(i+1))
				g := (w + i) % 4
				p := path("db", "rel", string(rune('a'+g)))
				mode := GModeS
				if (w+i)%3 == 0 {
					mode = GModeX
				}
				for {
					err := h.Lock(context.Background(), txn, p, mode)
					if err == nil {
						break
					}
					if errors.Is(err, ErrDeadlock) {
						h.ReleaseAll(txn)
						continue
					}
					t.Errorf("lock: %v", err)
					return
				}
				if mode == GModeX {
					if critical[g].Add(1) != 1 {
						t.Errorf("X not exclusive on granule %d", g)
					}
					critical[g].Add(-1)
				}
				h.ReleaseAll(txn)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hierarchical stress hung")
	}
}

func BenchmarkHierLockRelease(b *testing.B) {
	h := NewHierTable()
	ctx := context.Background()
	p := path("db", "rel", "g1")
	for i := 0; i < b.N; i++ {
		txn := TxnID(i + 1)
		if err := h.Lock(ctx, txn, p, GModeS); err != nil {
			b.Fatal(err)
		}
		h.ReleaseAll(txn)
	}
}
