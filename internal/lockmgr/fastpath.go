package lockmgr

import (
	"runtime"
	"sync/atomic"
)

// The lock-free uncontended fast path.
//
// The stripe mutex is the residual hot-path cost of the sharded table:
// even a perfectly uncontended acquire/release pair pays two mutex
// round trips plus map traffic on the granule stripe. The fast path
// removes both for the common case the paper's trade-off curves hinge
// on — a single-granule S or X request against a granule nobody else
// holds — by granting through one compare-and-swap on a packed atomic
// word, and falling back to the existing stripe-locked machinery the
// moment any conflict, waiter, or multi-granule request is observed.
//
// # Packed word
//
// Each fast-eligible granule owns one 64-bit word in a per-shard
// lock-free index. The word fully describes the granule's fast-path
// state, so CAS ABA is benign (a word that reads the same *is* the
// same state):
//
//	0                                  FREE: no holder, fast grants allowed
//	fpSlowBit                          SLOW: state lives in the stripe-locked
//	                                   map; fast ops must take the slow path
//	fpSlowBit|fpTombBit                TOMB: index entry evicted; terminal
//	fpFastBit [|fpModeXBit] | txn      FAST: exactly one holder (txn, in S
//	                                   or X); no waiters, no map entry
//
// Transactions outside (0, 1<<fpTxnBits) cannot be packed and simply
// never use the fast path.
//
// # Invariants
//
//   - Map state authoritative ⇔ word is SLOW. Every slow-path operation
//     demotes the granules it touches (demoteLocked) before reading or
//     writing the map, materializing a FAST holder into the holders map.
//     While a word is SLOW only stripe-mutex holders may write it.
//   - FAST or FREE ⇒ no map entry, no step waiters, and no parked claim
//     names the granule: promotion back out of SLOW (promoteLocked)
//     requires zero holders, zero waiters and no claim-queue reference.
//     A fast grant therefore can never overtake a parked request.
//   - The per-transaction hold set is updated in the same ts.mu critical
//     section as the word CAS, so ReleaseAll and the duplicate-claim
//     check serialize against fast grants exactly as against slow ones.
//
// # Waiting discipline
//
// A conflicting request that finds a FAST single holder spins a bounded
// number of times (runtime.Gosched between probes) before parking
// through the slow path — the spin-then-park discipline of the Oracle
// retrial-spinlock study in PAPERS.md. The budget adapts per granule
// from observed outcomes, which proxy the holder's hold time: a spin
// that wins (hold shorter than the spin window) doubles the budget, a
// spin that exhausts (hold longer) halves it, so long-hold granules
// converge to park-immediately and short-hold granules to spin-and-win.

const (
	fpSlowBit  = 1 << 63
	fpTombBit  = 1 << 62
	fpFastBit  = 1 << 61
	fpModeXBit = 1 << 60

	fpSlow = fpSlowBit
	fpTomb = fpSlowBit | fpTombBit

	fpTxnBits = 48
	fpTxnMask = (1 << fpTxnBits) - 1

	// fpSlots is the per-shard fast-index capacity (power of two) and
	// fpProbe the linear-probe window. Hot granules live in the index;
	// an acquire whose granule cannot claim a slot just uses the slow
	// path, so the cap bounds memory without affecting correctness.
	fpSlots = 2048
	fpMask  = fpSlots - 1
	fpProbe = 4

	// Adaptive spin bounds. The seed is deliberately small: a granule
	// must demonstrate short hold times before the table burns cycles
	// on it, and fpSpinMax keeps the worst-case pre-park delay far
	// below any wait a caller could observe as a decision change.
	fpSpinSeed = 8
	fpSpinMin  = 1
	fpSpinMax  = 64
)

// fpPack builds a FAST word: single holder txn in the given mode.
//
//granulint:hotpath
func fpPack(txn TxnID, mode Mode) uint64 {
	w := uint64(fpFastBit) | uint64(txn)
	if mode == ModeExclusive {
		w |= fpModeXBit
	}
	return w
}

// fpIsFast reports whether w encodes a single fast holder.
//
//granulint:hotpath
func fpIsFast(w uint64) bool { return w&fpFastBit != 0 && w&fpSlowBit == 0 }

// fpTxnOf extracts the holder of a FAST word.
//
//granulint:hotpath
func fpTxnOf(w uint64) TxnID { return TxnID(w & fpTxnMask) }

// fpModeOf extracts the holder's mode from a FAST word.
//
//granulint:hotpath
func fpModeOf(w uint64) Mode {
	if w&fpModeXBit != 0 {
		return ModeExclusive
	}
	return ModeShared
}

// fpPackable reports whether txn can be encoded in a FAST word.
//
//granulint:hotpath
func fpPackable(txn TxnID) bool { return txn > 0 && txn <= fpTxnMask }

// fpPeek reads fs's word without moving it: when the word is FAST it
// returns the holder and mode with ok=true; any other state returns
// ok=false. The read-only probe exists so advisory snapshots
// (ConflictingHolders) can observe a fast holder without demoting it.
func fpPeek(fs *fastState) (holder TxnID, mode Mode, ok bool) {
	w := fs.word.Load()
	if !fpIsFast(w) {
		return 0, 0, false
	}
	return fpTxnOf(w), fpModeOf(w), true
}

// fastState is one granule's fast-path record. The granule field is
// immutable after publication; all coordination goes through word.
type fastState struct {
	granule Granule
	word    atomic.Uint64
	// spin is the adaptive spin budget for conflicting requests, in
	// Gosched-separated probes (see the waiting-discipline comment).
	spin atomic.Int32
}

// FastPathStats counts fast-path activity. All fields are cumulative.
type FastPathStats struct {
	Grants    int64 // acquisitions granted by CAS alone (claims, steps, upgrades)
	Releases  int64 // ReleaseAll calls completed without any stripe mutex
	Fallbacks int64 // fast attempts that deferred to the stripe-locked path
	SpinWins  int64 // conflicting requests granted while spinning
	SpinParks int64 // conflicting requests that exhausted their spin budget
}

// FastStats returns a snapshot of the fast-path counters.
func (t *Table) FastStats() FastPathStats {
	return FastPathStats{
		Grants:    t.fpGrants.Load(),
		Releases:  t.fpReleases.Load(),
		Fallbacks: t.fpFallbacks.Load(),
		SpinWins:  t.fpSpinWins.Load(),
		SpinParks: t.fpSpinParks.Load(),
	}
}

// SetFastPath enables or disables the lock-free fast path at runtime.
// Disabling never strands state: granules granted through the fast path
// are migrated into the stripe-locked map lazily, the next time any
// slow-path operation touches them.
func (t *Table) SetFastPath(on bool) { t.fastOn.Store(on) }

// FastPathEnabled reports whether the fast path is active.
func (t *Table) FastPathEnabled() bool { return t.fastOn.Load() }

// fastLookup finds g's fast record without any lock. Slots are only
// ever written nil→non-nil (eviction replaces the pointer, never
// clears it), so a nil slot proves g was never inserted in its window.
//
//granulint:hotpath
func (s *shard) fastLookup(g Granule) *fastState {
	h := mix64(uint64(g))
	for i := uint64(0); i < fpProbe; i++ {
		fs := s.fast[(h+i)&fpMask].Load()
		if fs == nil {
			return nil
		}
		if fs.granule == g {
			return fs
		}
	}
	return nil
}

// fastInsert publishes a fast record for g, evicting an idle tenant if
// the probe window is full. Caller holds s.mu, which serializes all
// slot writes for the shard; eviction is safe against lock-free fast
// ops because the victim's word is tombstoned by CAS first — an
// in-flight CAS on the victim either lands before (aborting the
// eviction) or fails against the tombstone and falls back. Returns nil
// when no slot can be claimed (g simply stays slow-path only).
//
//granulint:hotpath
func (s *shard) fastInsert(g Granule) *fastState {
	h := mix64(uint64(g))
	var victim *atomic.Pointer[fastState]
	for i := uint64(0); i < fpProbe; i++ {
		slot := &s.fast[(h+i)&fpMask]
		fs := slot.Load()
		if fs == nil {
			nfs := &fastState{granule: g}
			nfs.spin.Store(fpSpinSeed)
			slot.Store(nfs)
			return nfs
		}
		if fs.granule == g {
			return fs
		}
		if victim == nil && fs.word.Load() == 0 {
			victim = slot
		}
	}
	if victim == nil {
		return nil
	}
	old := victim.Load()
	if !old.word.CompareAndSwap(0, fpTomb) {
		return nil // tenant got busy between probe and eviction
	}
	nfs := &fastState{granule: g}
	nfs.spin.Store(fpSpinSeed)
	victim.Store(nfs)
	return nfs
}

// demoteLocked forces g's word to SLOW, materializing a fast holder
// into the stripe map so every existing slow-path routine sees it.
// Caller holds s.mu. Must be called before any slow-path read or write
// of g's map state; returns after which the map is authoritative.
func (t *Table) demoteLocked(s *shard, g Granule) {
	fs := s.fastLookup(g)
	if fs == nil {
		return // no fast record ⇒ no fast grants possible ⇒ map already authoritative
	}
	for {
		w := fs.word.Load()
		if w&fpSlowBit != 0 {
			return // already SLOW (or tombstoned; a tomb never resurrects)
		}
		if fs.word.CompareAndSwap(w, fpSlow) {
			if fpIsFast(w) {
				gs := s.granules[g]
				if gs == nil {
					gs = &granuleState{holders: make(map[TxnID]Mode, 1)}
					s.granules[g] = gs
				}
				gs.holders[fpTxnOf(w)] = fpModeOf(w)
			}
			return
		}
		// A fast op won the race; its CAS produced a new valid state.
		// Re-read and try again — the mutex guarantees we eventually win.
	}
}

// promoteLocked returns g to fast-path eligibility (word FREE) if it
// ended a slow-path episode with no holders, no waiters, and no parked
// claim naming it; an empty map entry is garbage-collected regardless
// (preserving the historical GC). A granule a parked claim wants must
// stay SLOW: its eventual release has to run the claim-resolution
// sweep, which a fast release deliberately skips. Caller holds s.mu.
func (t *Table) promoteLocked(s *shard, g Granule) {
	if gs := s.granules[g]; gs != nil {
		if len(gs.holders) != 0 || len(gs.waiters) != 0 {
			return
		}
		delete(s.granules, g)
	}
	for _, c := range s.claimQ {
		for _, r := range c.reqs {
			if r.Granule == g {
				return
			}
		}
	}
	fs := s.fastLookup(g)
	if fs == nil {
		// First promotion is what makes a granule fast-eligible; the
		// insert publishes the word already FREE.
		s.fastInsert(g)
		return
	}
	// While SLOW, only stripe-mutex holders write the word.
	fs.word.Store(0)
}

// fastOutcome classifies one lock-free attempt.
type fastOutcome int8

const (
	fastFallback fastOutcome = iota // defer to the stripe-locked path
	fastGranted                     // lock granted (hold set updated)
	fastAlready                     // conservative claim: txn already holds locks
	fastSpin                        // conflicting single holder: spinning may pay
	fastBlocked                     // definitively blocked right now (no-wait callers)
)

// fastTryStep is one lock-free attempt at an incremental Acquire.
// It handles re-acquire and sole-holder upgrade; any state it cannot
// prove safe defers to the slow path.
//
//granulint:hotpath
func (t *Table) fastTryStep(fs *fastState, txn TxnID, g Granule, mode Mode) fastOutcome {
	for {
		w := fs.word.Load()
		switch {
		case w == 0:
			ts := t.txnShardFor(txn)
			ts.mu.Lock()
			if fs.word.CompareAndSwap(0, fpPack(txn, mode)) {
				t.recordHeldLocked(ts, txn, g, mode)
				ts.mu.Unlock()
				t.fpGrants.Add(1)
				t.omFastGrant()
				return fastGranted
			}
			ts.mu.Unlock()
			continue // word moved under us; re-evaluate
		case fpIsFast(w) && fpTxnOf(w) == txn:
			if fpModeOf(w) >= mode {
				return fastGranted // already held strongly enough
			}
			// Sole holder upgrading S→X: grantable by definition.
			ts := t.txnShardFor(txn)
			ts.mu.Lock()
			if fs.word.CompareAndSwap(w, fpPack(txn, ModeExclusive)) {
				t.recordHeldLocked(ts, txn, g, ModeExclusive)
				ts.mu.Unlock()
				t.fpGrants.Add(1)
				t.omFastGrant()
				return fastGranted
			}
			ts.mu.Unlock()
			return fastFallback // demoted mid-upgrade; slow path resolves it
		case fpIsFast(w):
			if Compatible(mode, fpModeOf(w)) {
				// S alongside S: the word cannot encode two holders; the
				// slow path grants it against the materialized holder set.
				return fastFallback
			}
			return fastSpin
		default:
			return fastFallback // SLOW or TOMB
		}
	}
}

// fastAcquire runs the lock-free attempt plus the adaptive
// spin-then-park discipline for Acquire. Returns (true, nil) when the
// grant completed without the stripe mutex; (false, _) defers to the
// slow path.
//
//granulint:hotpath
func (t *Table) fastAcquire(txn TxnID, g Granule, mode Mode) bool {
	fs := t.shardFor(g).fastLookup(g)
	if fs == nil {
		return false
	}
	switch t.fastTryStep(fs, txn, g, mode) {
	case fastGranted:
		return true
	case fastSpin:
		if t.fastSpinThenTry(fs, txn, g, mode) {
			return true
		}
	}
	t.fpFallbacks.Add(1)
	t.omFastFallback()
	return false
}

// fastSpinThenTry spins on a conflicting FAST holder, retrying the
// grant after each yield, and adapts the granule's budget from the
// outcome. It reports whether the lock was won while spinning.
//
//granulint:hotpath
func (t *Table) fastSpinThenTry(fs *fastState, txn TxnID, g Granule, mode Mode) bool {
	budget := int(fs.spin.Load())
	for i := 0; i < budget; i++ {
		runtime.Gosched()
		switch t.fastTryStep(fs, txn, g, mode) {
		case fastGranted:
			t.fpSpinWins.Add(1)
			t.omFastSpinWin()
			grow := int32(budget * 2)
			if grow > fpSpinMax {
				grow = fpSpinMax
			}
			fs.spin.Store(grow)
			return true
		case fastSpin:
			continue // still the same shape of conflict; keep probing
		default:
			// SLOW appeared (a waiter is queuing) or another fallback
			// condition: stop spinning immediately, FIFO order beckons.
			return false
		}
	}
	t.fpSpinParks.Add(1)
	t.omFastSpinPark()
	shrink := int32(budget / 2)
	if shrink < fpSpinMin {
		shrink = fpSpinMin
	}
	fs.spin.Store(shrink)
	return false
}

// fastClaim is the lock-free attempt at a single-granule conservative
// claim: the first-acquisition check, the CAS and the hold-set record
// happen in one ts.mu critical section, so duplicate-claim resolution
// and ReleaseAll serialize against it exactly as against the slow path.
//
//granulint:hotpath
func (t *Table) fastClaim(txn TxnID, g Granule, mode Mode, spin bool) fastOutcome {
	fs := t.shardFor(g).fastLookup(g)
	if fs == nil {
		return fastFallback
	}
	out := t.fastTryClaimOnce(fs, txn, g, mode)
	if out == fastSpin {
		if !spin {
			// A no-wait caller treats the incompatible holder as a
			// definitive "blocked now" without touching any stripe.
			return fastBlocked
		}
		budget := int(fs.spin.Load())
		for i := 0; i < budget; i++ {
			runtime.Gosched()
			out = t.fastTryClaimOnce(fs, txn, g, mode)
			if out != fastSpin {
				break
			}
		}
		switch out {
		case fastGranted:
			t.fpSpinWins.Add(1)
			t.omFastSpinWin()
			grow := int32(budget * 2)
			if grow > fpSpinMax {
				grow = fpSpinMax
			}
			fs.spin.Store(grow)
		case fastSpin:
			t.fpSpinParks.Add(1)
			t.omFastSpinPark()
			shrink := int32(budget / 2)
			if shrink < fpSpinMin {
				shrink = fpSpinMin
			}
			fs.spin.Store(shrink)
			out = fastFallback
		}
	}
	if out == fastFallback {
		t.fpFallbacks.Add(1)
		t.omFastFallback()
	}
	return out
}

// fastTryClaimOnce is one attempt of fastClaim.
//
//granulint:hotpath
func (t *Table) fastTryClaimOnce(fs *fastState, txn TxnID, g Granule, mode Mode) fastOutcome {
	for {
		w := fs.word.Load()
		switch {
		case w == 0:
			ts := t.txnShardFor(txn)
			ts.mu.Lock()
			hs := ts.held[txn]
			if hs.size() != 0 {
				ts.mu.Unlock()
				return fastAlready
			}
			if fs.word.CompareAndSwap(0, fpPack(txn, mode)) {
				if hs == nil {
					hs = ts.allocLocked(1)
					ts.held[txn] = hs
				}
				hs.set(g, mode)
				ts.mu.Unlock()
				t.fpGrants.Add(1)
				t.omFastGrant()
				return fastGranted
			}
			ts.mu.Unlock()
			continue // word moved under us; re-evaluate
		case fpIsFast(w) && fpTxnOf(w) != txn && !Compatible(mode, fpModeOf(w)):
			return fastSpin
		case fpIsFast(w) && fpTxnOf(w) == txn:
			// The word says txn already holds this granule, so the
			// first-acquisition rule is violated whatever path we take.
			return fastAlready
		default:
			return fastFallback // compatible share, SLOW, or TOMB
		}
	}
}

// fastReleaseAll releases txn's entire hold set by CAS alone when every
// held granule is in FAST state. On any obstacle it restores nothing —
// granules already freed were genuinely released (release is not
// atomic across granules; 2PL only needs acquire-side atomicity) — and
// reports false so the caller finishes through the slow path, which
// re-snapshots the shrunken hold set. Fast-freed granules can have no
// waiters and no parked claims (see the invariants), so skipping the
// wake/claim sweeps is sound, not just fast.
//
//granulint:hotpath
func (t *Table) fastReleaseAll(txn TxnID) bool {
	ts := t.txnShardFor(txn)
	ts.mu.Lock()
	hs := ts.held[txn]
	if hs.size() == 0 {
		delete(ts.held, txn)
		ts.recycleLocked(hs)
		ts.mu.Unlock()
		t.detForget(txn)
		return true
	}
	// Walk the entry vector from the tail so a partial release keeps it
	// exact: each freed granule is pruned by truncation, and on an
	// obstacle everything not yet freed is still present for the slow
	// path's re-snapshot.
	for i := len(hs.entries) - 1; i >= 0; i-- {
		e := hs.entries[i]
		fs := t.shardFor(e.g).fastLookup(e.g)
		if fs == nil || !fs.word.CompareAndSwap(fpPack(txn, e.mode), 0) {
			ts.mu.Unlock()
			return false // this granule is slow-path business now
		}
		if hs.m != nil {
			delete(hs.m, e.g)
		}
		hs.entries = hs.entries[:i]
	}
	delete(ts.held, txn)
	ts.recycleLocked(hs)
	ts.mu.Unlock()
	t.fpReleases.Add(1)
	t.omFastRelease()
	t.detForget(txn)
	return true
}

// lockedFastGranules counts FAST-held granules in the shard's index.
// Caller holds s.mu (which pins slot assignments; the words themselves
// may still move, making the count a snapshot like the rest of Stats).
func (s *shard) lockedFastGranules() int {
	n := 0
	for i := range s.fast {
		if fs := s.fast[i].Load(); fs != nil && fpIsFast(fs.word.Load()) {
			n++
		}
	}
	return n
}
