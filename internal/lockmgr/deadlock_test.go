package lockmgr

import "testing"

func TestDetectorEmptyGraph(t *testing.T) {
	d := NewDetector()
	if d.InCycle(1) {
		t.Fatal("cycle in empty graph")
	}
	if d.Edges() != 0 {
		t.Fatal("edges in empty graph")
	}
}

func TestDetectorSelfEdgeIgnored(t *testing.T) {
	d := NewDetector()
	d.AddEdge(1, 1)
	if d.Edges() != 0 || d.InCycle(1) {
		t.Fatal("self edge recorded")
	}
}

func TestDetectorSimpleCycle(t *testing.T) {
	d := NewDetector()
	d.AddEdge(1, 2)
	if d.InCycle(1) || d.InCycle(2) {
		t.Fatal("false positive on single edge")
	}
	d.AddEdge(2, 1)
	if !d.InCycle(1) || !d.InCycle(2) {
		t.Fatal("two-cycle not detected")
	}
}

func TestDetectorLongCycle(t *testing.T) {
	d := NewDetector()
	const n = 100
	for i := TxnID(1); i < n; i++ {
		d.AddEdge(i, i+1)
	}
	if d.InCycle(1) {
		t.Fatal("false positive on chain")
	}
	d.AddEdge(n, 1)
	for i := TxnID(1); i <= n; i++ {
		if !d.InCycle(i) {
			t.Fatalf("txn %d not seen in %d-cycle", i, n)
		}
	}
}

func TestDetectorBranchingNoCycle(t *testing.T) {
	// A DAG with heavy fan-out must not report cycles.
	d := NewDetector()
	for i := TxnID(1); i <= 10; i++ {
		for j := i + 1; j <= 10; j++ {
			d.AddEdge(i, j)
		}
	}
	for i := TxnID(1); i <= 10; i++ {
		if d.InCycle(i) {
			t.Fatalf("false cycle at %d in DAG", i)
		}
	}
}

func TestDetectorCycleNotInvolvingQuery(t *testing.T) {
	// 2<->3 cycle exists, but 1 only points into it: 1 is not deadlocked.
	d := NewDetector()
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 2)
	if d.InCycle(1) {
		t.Fatal("txn outside the cycle reported deadlocked")
	}
	if !d.InCycle(2) || !d.InCycle(3) {
		t.Fatal("cycle members not detected")
	}
}

func TestDetectorRemoveWaiter(t *testing.T) {
	d := NewDetector()
	d.AddEdge(1, 2)
	d.AddEdge(2, 1)
	d.RemoveWaiter(2)
	if d.InCycle(1) {
		t.Fatal("cycle survives waiter removal")
	}
	if d.Edges() != 1 {
		t.Fatalf("edges = %d, want 1", d.Edges())
	}
}

func TestDetectorRemoveTxn(t *testing.T) {
	d := NewDetector()
	d.AddEdge(1, 2)
	d.AddEdge(3, 2)
	d.AddEdge(2, 1)
	d.RemoveTxn(2)
	if d.Edges() != 0 {
		t.Fatalf("edges = %d after RemoveTxn, want 0", d.Edges())
	}
	if d.InCycle(1) || d.InCycle(3) {
		t.Fatal("phantom cycle after RemoveTxn")
	}
}

func TestDetectorMultipleBlockers(t *testing.T) {
	// A writer waiting on two shared holders: cycle through either path.
	d := NewDetector()
	d.AddEdge(1, 2)
	d.AddEdge(1, 3)
	d.AddEdge(3, 1)
	if !d.InCycle(1) {
		t.Fatal("cycle through second blocker missed")
	}
}

func BenchmarkInCycle(b *testing.B) {
	d := NewDetector()
	for i := TxnID(1); i < 1000; i++ {
		d.AddEdge(i, i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.InCycle(1)
	}
}
