package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"granulock/internal/rng"
)

// traceOp is one step of a recorded lock trace. The trace is executed
// sequentially on a single goroutine (parked requests run on helpers but
// every op waits for a quiescent table before the next begins), so the
// outcome of every step is deterministic and must be identical whatever
// the stripe count: sharding changes which mutex guards a granule, never
// which requests conflict.
type traceOp struct {
	kind string // "claim", "step", "release"
	txn  TxnID
	reqs []Request // claim
	g    Granule   // step
	mode Mode      // step
}

// outcome classifies how a trace op resolved.
type outcome string

const (
	outGranted  outcome = "granted"
	outParked   outcome = "parked-then-granted"
	outDeadlock outcome = "deadlock"
	outAlready  outcome = "already-holds"
)

// runTrace replays ops on tab and returns the outcome sequence plus the
// final occupancy snapshot. Ops that park are unblocked by later
// releases in the trace; the generator guarantees every parked request
// is eventually released, so the replay always terminates. An optional
// beforeOp hook runs before each op is issued (used to toggle the fast
// path mid-trace).
func runTrace(t *testing.T, tab *Table, ops []traceOp, beforeOp ...func(i int, tab *Table)) []string {
	t.Helper()
	ctx := context.Background()
	type pending struct {
		idx int
		ch  chan error
	}
	var parked []pending
	results := make([]string, len(ops))
	record := func(idx int, err error) {
		switch {
		case err == nil:
			if results[idx] == string(outParked) {
				return // already classified at park time
			}
			results[idx] = string(outGranted)
		case errors.Is(err, ErrDeadlock):
			results[idx] = string(outDeadlock)
		case errors.Is(err, ErrAlreadyHolds):
			results[idx] = string(outAlready)
		default:
			t.Fatalf("op %d: unexpected error %v", idx, err)
		}
	}
	// sweep drains any parked channels that resolved as a side effect of
	// the last op (a release granting them, or a deadlock sync aborting
	// them). Late deliveries are caught by a later sweep or the final
	// drain; recording order does not matter because outcomes are stored
	// per op index.
	sweep := func() {
		still := parked[:0]
		for _, p := range parked {
			select {
			case err := <-p.ch:
				record(p.idx, err)
			default:
				still = append(still, p)
			}
		}
		parked = still
	}
	for i, op := range ops {
		for _, hook := range beforeOp {
			hook(i, tab)
		}
		switch op.kind {
		case "claim", "step":
			ch := make(chan error, 1)
			go func(op traceOp) {
				if op.kind == "claim" {
					ch <- tab.AcquireAll(ctx, op.txn, op.reqs)
				} else {
					ch <- tab.Acquire(ctx, op.txn, op.g, op.mode)
				}
			}(op)
			// The trace is sequential: an op either resolves promptly or
			// parks until a later release. 15ms is orders of magnitude
			// above an immediate grant's latency.
			select {
			case err := <-ch:
				record(i, err)
			case <-time.After(15 * time.Millisecond):
				results[i] = string(outParked)
				parked = append(parked, pending{idx: i, ch: ch})
			}
		case "release":
			tab.ReleaseAll(op.txn)
		default:
			t.Fatalf("op %d: unknown kind %q", i, op.kind)
		}
		time.Sleep(time.Millisecond)
		sweep()
	}
	// Drain: repeatedly release every txn until no op remains parked. A
	// single pass is not enough — a waiter granted mid-pass becomes a
	// new holder whose release slot has already gone by, re-parking the
	// ops queued behind it.
	deadline := time.Now().Add(10 * time.Second)
	for len(parked) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d ops still parked after drain", len(parked))
		}
		for _, op := range ops {
			tab.ReleaseAll(op.txn)
		}
		time.Sleep(time.Millisecond)
		sweep()
	}
	for _, op := range ops {
		tab.ReleaseAll(op.txn)
	}
	if n := tab.HoldersCount(); n != 0 {
		t.Fatalf("%d holders leaked after trace drain", n)
	}
	return results
}

// genTrace generates a deterministic mixed trace: conservative claims,
// incremental steps and releases over a small hot granule set (so parks
// and conflicts actually happen). Each txn id is used for exactly one
// transaction, and every transaction uses exactly one protocol —
// conservative (claim) or incremental (steps) — matching the table's
// contract. (A txn mixing protocols could observe duplicate-claim
// failures at different times depending on which release sweeps its
// parked claim; no real caller mixes them.)
func genTrace(seed uint64, n int) []traceOp {
	src := rng.New(seed)
	var ops []traceOp
	var consActive, incActive []TxnID
	next := TxnID(1)
	for len(ops) < n {
		roll := src.Float64()
		switch {
		case roll < 0.40:
			k := 1 + src.Intn(3)
			rs := make([]Request, k)
			for i := range rs {
				m := ModeShared
				if src.Bernoulli(0.5) {
					m = ModeExclusive
				}
				rs[i] = Request{Granule: Granule(src.Intn(12)), Mode: m}
			}
			ops = append(ops, traceOp{kind: "claim", txn: next, reqs: rs})
			consActive = append(consActive, next)
			next++
		case roll < 0.65:
			// Incremental step: extend an existing incremental txn or
			// start a new one.
			var txn TxnID
			if len(incActive) > 0 && src.Bernoulli(0.7) {
				txn = incActive[src.Intn(len(incActive))]
			} else {
				txn = next
				next++
				incActive = append(incActive, txn)
			}
			m := ModeShared
			if src.Bernoulli(0.5) {
				m = ModeExclusive
			}
			ops = append(ops, traceOp{kind: "step", txn: txn, g: Granule(src.Intn(12)), mode: m})
		case len(consActive)+len(incActive) > 0:
			i := src.Intn(len(consActive) + len(incActive))
			var txn TxnID
			if i < len(consActive) {
				txn = consActive[i]
				consActive = append(consActive[:i], consActive[i+1:]...)
			} else {
				i -= len(consActive)
				txn = incActive[i]
				incActive = append(incActive[:i], incActive[i+1:]...)
			}
			ops = append(ops, traceOp{kind: "release", txn: txn})
		}
	}
	// Close out: release everything still active so parked ops resolve.
	for _, txn := range append(consActive, incActive...) {
		ops = append(ops, traceOp{kind: "release", txn: txn})
	}
	return ops
}

// TestShardEquivalenceOnTrace is the golden pin for the sharded table:
// an identical recorded trace replayed against shards=1 (the historical
// single-mutex behavior the simulation model still uses) and a sharded
// table must yield identical grant / park / deadlock / duplicate
// decisions for every operation. Sharding is a locking-implementation
// detail; it must never change the lock-compatibility semantics.
func TestShardEquivalenceOnTrace(t *testing.T) {
	for _, seed := range []uint64{1, 42, 20260805} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ops := genTrace(seed, 120)
			base := runTrace(t, NewTable(), ops)
			for _, shards := range []int{4, 16} {
				got := runTrace(t, NewTable(WithShards(shards)), ops)
				for i := range base {
					if got[i] != base[i] {
						t.Fatalf("shards=%d: op %d (%s txn %d) decided %q, shards=1 decided %q",
							shards, i, ops[i].kind, ops[i].txn, got[i], base[i])
					}
				}
			}
		})
	}
}

// TestFastPathEquivalenceOnTrace is the fast path's golden pin: a
// recorded trace replayed with the lock-free fast path force-disabled
// (the historical all-stripe-locked behavior), force-enabled, and
// randomly toggled mid-trace must yield identical grant / park /
// deadlock / duplicate decisions for every operation, at one stripe and
// many. The fast path is a grant-mechanism detail; it must never change
// which requests conflict — a fast grant is only taken in states where
// the slow path would have granted immediately, and the demote/promote
// protocol forbids fast grants wherever a waiter or parked claim could
// be overtaken.
func TestFastPathEquivalenceOnTrace(t *testing.T) {
	for _, seed := range []uint64{1, 42, 20260805} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ops := genTrace(seed, 120)
			base := runTrace(t, NewTable(WithFastPath(false)), ops)
			check := func(variant string, got []string) {
				t.Helper()
				for i := range base {
					if got[i] != base[i] {
						t.Fatalf("%s: op %d (%s txn %d) decided %q, fast-off decided %q",
							variant, i, ops[i].kind, ops[i].txn, got[i], base[i])
					}
				}
			}
			check("fast-on/shards=1", runTrace(t, NewTable(WithFastPath(true)), ops))
			check("fast-on/shards=16", runTrace(t, NewTable(WithFastPath(true), WithShards(16)), ops))
			// Random mid-trace toggling: every op may run against fast
			// words left behind by earlier fast-enabled ops, exercising
			// the lazy demotion protocol at both stripe counts.
			toggler := func(toggleSeed uint64) func(int, *Table) {
				src := rng.New(toggleSeed)
				return func(_ int, tab *Table) { tab.SetFastPath(src.Bernoulli(0.5)) }
			}
			check("fast-toggled/shards=1",
				runTrace(t, NewTable(), ops, toggler(seed^0xdead)))
			check("fast-toggled/shards=16",
				runTrace(t, NewTable(WithShards(16)), ops, toggler(seed^0xbeef)))
		})
	}
}
