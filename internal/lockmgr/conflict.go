// Package lockmgr provides the lock-management machinery of the
// reproduction, at two levels of abstraction:
//
//   - ConflictModel is the probabilistic lock-conflict computation of
//     Ries & Stonebraker that the paper's simulation uses (§2, "The
//     computation of lock conflicts"). It never materializes individual
//     locks; conflicts are drawn from the fraction of the lock space each
//     active transaction holds.
//
//   - Table, HierTable and Detector are real lock managers: a granule
//     lock table with shared/exclusive modes and conservative
//     all-or-nothing preclaiming, a multi-granularity (IS/IX/S/SIX/X)
//     hierarchical table, and a waits-for-graph deadlock detector for the
//     claim-as-needed protocol. They power the executable mini-DBMS in
//     internal/engine that cross-validates the simulation's conclusions.
package lockmgr

import (
	"fmt"

	"granulock/internal/rng"
)

// Holder describes one active transaction for the conflict computation:
// its identity and the number of locks it currently holds.
type Holder struct {
	ID    int
	Locks int
}

// ConflictModel draws probabilistic lock-conflict decisions per the
// paper. With active transactions T1..Tk holding L1..Lk of the ltot
// locks, the interval (0,1] is split into partitions of widths Lj/ltot
// plus a remainder; a uniform draw landing in partition j blocks the
// requester on Tj, and a draw landing in the remainder grants the
// request. The model assumes enough locks are free for the requester to
// potentially proceed, so the requester's own demand never blocks it.
type ConflictModel struct {
	ltot int
	src  *rng.Source
}

// NewConflictModel returns a conflict model over ltot locks drawing
// randomness from src.
func NewConflictModel(ltot int, src *rng.Source) (*ConflictModel, error) {
	if ltot < 1 {
		return nil, fmt.Errorf("lockmgr: ltot %d < 1", ltot)
	}
	if src == nil {
		return nil, fmt.Errorf("lockmgr: nil randomness source")
	}
	return &ConflictModel{ltot: ltot, src: src}, nil
}

// Ltot returns the total number of locks in the modeled database.
func (m *ConflictModel) Ltot() int { return m.ltot }

// Decide draws one conflict decision against the given active holders.
// It returns (blockerID, true) if the request is blocked by that holder,
// or (0, false) if the request may proceed. Holders with non-positive
// lock counts contribute nothing. If the holders jointly cover the whole
// lock space the request is always blocked.
func (m *ConflictModel) Decide(holders []Holder) (blockerID int, blocked bool) {
	if len(holders) == 0 {
		return 0, false
	}
	p := m.src.Float64OC() // uniform on (0,1], per the paper
	cum := 0.0
	for _, h := range holders {
		if h.Locks <= 0 {
			continue
		}
		cum += float64(h.Locks) / float64(m.ltot)
		if p <= cum {
			return h.ID, true
		}
	}
	return 0, false
}

// BlockProbability returns the analytic probability that a request is
// blocked given the holders, min(1, sum Lj/ltot). It is used by tests and
// by the adaptive scheduler's denial-rate estimator.
func (m *ConflictModel) BlockProbability(holders []Holder) float64 {
	sum := 0
	for _, h := range holders {
		if h.Locks > 0 {
			sum += h.Locks
		}
	}
	p := float64(sum) / float64(m.ltot)
	if p > 1 {
		p = 1
	}
	return p
}
