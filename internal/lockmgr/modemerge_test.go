package lockmgr

import "testing"

// The mode-merge audit (flat and hierarchical): the merge of two lock
// modes held or requested by one transaction must be the lattice join —
// the weakest mode at least as strong as both — not merely whichever
// compares greater. For the flat S/X lattice join and max coincide; for
// the hierarchical lattice they do not (S ⊔ IX = SIX, while max says
// IX or S depending on declaration order). These tables pin every pair.

func TestJoinModeAllPairs(t *testing.T) {
	cases := []struct {
		a, b, want Mode
	}{
		{ModeShared, ModeShared, ModeShared},
		{ModeShared, ModeExclusive, ModeExclusive},
		{ModeExclusive, ModeShared, ModeExclusive},
		{ModeExclusive, ModeExclusive, ModeExclusive},
	}
	for _, c := range cases {
		if got := joinMode(c.a, c.b); got != c.want {
			t.Errorf("joinMode(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestJoinModeIsAJoin checks the algebraic laws directly: commutative,
// idempotent, and an upper bound of both arguments.
func TestJoinModeIsAJoin(t *testing.T) {
	modes := []Mode{ModeShared, ModeExclusive}
	for _, a := range modes {
		for _, b := range modes {
			j := joinMode(a, b)
			if j != joinMode(b, a) {
				t.Errorf("joinMode not commutative on (%v, %v)", a, b)
			}
			if j < a || j < b {
				t.Errorf("joinMode(%v, %v) = %v is below an argument", a, b, j)
			}
		}
		if joinMode(a, a) != a {
			t.Errorf("joinMode not idempotent on %v", a)
		}
	}
}

// TestGCombineAllPairs pins the hierarchical merge for every mode pair,
// S+IX→SIX included — the case a naive max would get wrong.
func TestGCombineAllPairs(t *testing.T) {
	want := map[[2]GMode]GMode{
		{GModeIS, GModeIS}: GModeIS, {GModeIS, GModeIX}: GModeIX,
		{GModeIS, GModeS}: GModeS, {GModeIS, GModeSIX}: GModeSIX,
		{GModeIS, GModeX}:  GModeX,
		{GModeIX, GModeIX}: GModeIX, {GModeIX, GModeS}: GModeSIX,
		{GModeIX, GModeSIX}: GModeSIX, {GModeIX, GModeX}: GModeX,
		{GModeS, GModeS}: GModeS, {GModeS, GModeSIX}: GModeSIX,
		{GModeS, GModeX}:     GModeX,
		{GModeSIX, GModeSIX}: GModeSIX, {GModeSIX, GModeX}: GModeX,
		{GModeX, GModeX}: GModeX,
	}
	modes := []GMode{GModeIS, GModeIX, GModeS, GModeSIX, GModeX}
	for _, a := range modes {
		for _, b := range modes {
			expect, ok := want[[2]GMode{a, b}]
			if !ok {
				expect = want[[2]GMode{b, a}] // table stores each unordered pair once
			}
			if got := combine(a, b); got != expect {
				t.Errorf("combine(%v, %v) = %v, want %v", a, b, got, expect)
			}
		}
	}
}

// TestCoalesceMergesToJoin pins that duplicate granules in a claim
// coalesce to the join of their modes regardless of request order, and
// that first-appearance order of distinct granules is preserved.
func TestCoalesceMergesToJoin(t *testing.T) {
	cases := []struct {
		name string
		in   []Request
		want []Request
	}{
		{"S then X", []Request{{1, ModeShared}, {1, ModeExclusive}},
			[]Request{{1, ModeExclusive}}},
		{"X then S", []Request{{1, ModeExclusive}, {1, ModeShared}},
			[]Request{{1, ModeExclusive}}},
		{"S then S", []Request{{1, ModeShared}, {1, ModeShared}},
			[]Request{{1, ModeShared}}},
		{"X then X", []Request{{1, ModeExclusive}, {1, ModeExclusive}},
			[]Request{{1, ModeExclusive}}},
		{"order preserved", []Request{{3, ModeShared}, {1, ModeExclusive}, {3, ModeExclusive}, {2, ModeShared}},
			[]Request{{3, ModeExclusive}, {1, ModeExclusive}, {2, ModeShared}}},
		{"empty", nil, []Request{}},
	}
	for _, c := range cases {
		got := coalesce(c.in)
		if len(got) != len(c.want) {
			t.Errorf("%s: coalesce returned %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: coalesce[%d] = %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

// TestCoalescedClaimGrantsJoin drives the merge end-to-end: a claim
// naming one granule in S and X must hold it in X.
func TestCoalescedClaimGrantsJoin(t *testing.T) {
	tab := NewTable()
	mustAcquireAll(t, tab, 1, []Request{{Granule: 9, Mode: ModeShared}, {Granule: 9, Mode: ModeExclusive}})
	if !tab.HoldsAtLeast(1, 9, ModeExclusive) {
		t.Fatal("coalesced S+X claim should hold X")
	}
	if n := tab.HeldBy(1); n != 1 {
		t.Fatalf("HeldBy = %d, want 1", n)
	}
	tab.ReleaseAll(1)
}
