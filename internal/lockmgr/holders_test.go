package lockmgr

import (
	"context"
	"testing"
)

func TestConflictingHoldersEmpty(t *testing.T) {
	tab := NewTable()
	if h := tab.ConflictingHolders(1, 7, ModeExclusive); h != nil {
		t.Fatalf("empty table reported holders %v", h)
	}
}

func TestConflictingHoldersModes(t *testing.T) {
	ctx := context.Background()
	tab := NewTable()
	if err := tab.Acquire(ctx, 1, 7, ModeShared); err != nil {
		t.Fatal(err)
	}
	// S against S is compatible: no conflict.
	if h := tab.ConflictingHolders(2, 7, ModeShared); len(h) != 0 {
		t.Fatalf("S/S reported conflict: %v", h)
	}
	// X against S conflicts.
	if h := tab.ConflictingHolders(2, 7, ModeExclusive); len(h) != 1 || h[0] != 1 {
		t.Fatalf("X vs S holder = %v, want [1]", h)
	}
	// The requester's own hold never conflicts with itself.
	if h := tab.ConflictingHolders(1, 7, ModeExclusive); len(h) != 0 {
		t.Fatalf("self-conflict: %v", h)
	}
}

func TestConflictingHoldersSortedMultiple(t *testing.T) {
	ctx := context.Background()
	tab := NewTable()
	// Three shared holders on one granule (forces the slow path).
	for _, txn := range []TxnID{5, 3, 9} {
		if err := tab.Acquire(ctx, txn, 7, ModeShared); err != nil {
			t.Fatal(err)
		}
	}
	h := tab.ConflictingHolders(1, 7, ModeExclusive)
	if len(h) != 3 || h[0] != 3 || h[1] != 5 || h[2] != 9 {
		t.Fatalf("holders = %v, want [3 5 9] ascending", h)
	}
}

func TestConflictingHoldersPreservesFastPath(t *testing.T) {
	ctx := context.Background()
	tab := NewTable()
	// A single exclusive holder sits on the lock-free fast path; the
	// snapshot must read it without demoting the granule (demotion would
	// permanently evict it from the fast path).
	if err := tab.Acquire(ctx, 1, 7, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	fastBefore := tab.FastStats().Grants
	for i := 0; i < 3; i++ {
		if h := tab.ConflictingHolders(2, 7, ModeExclusive); len(h) != 1 || h[0] != 1 {
			t.Fatalf("holders = %v, want [1]", h)
		}
	}
	tab.ReleaseAll(1)
	// Re-acquiring still hits the fast path: the reads were non-destructive.
	if err := tab.Acquire(ctx, 3, 7, ModeExclusive); err != nil {
		t.Fatal(err)
	}
	if fastAfter := tab.FastStats().Grants; fastAfter <= fastBefore {
		t.Fatalf("fast path lost after ConflictingHolders: %d -> %d", fastBefore, fastAfter)
	}
}
