package lockmgr

import (
	"math"
	"testing"

	"granulock/internal/rng"
)

func TestNewConflictModelValidation(t *testing.T) {
	if _, err := NewConflictModel(0, rng.New(1)); err == nil {
		t.Fatal("ltot=0 accepted")
	}
	if _, err := NewConflictModel(-3, rng.New(1)); err == nil {
		t.Fatal("negative ltot accepted")
	}
	if _, err := NewConflictModel(5, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	m, err := NewConflictModel(5, rng.New(1))
	if err != nil || m.Ltot() != 5 {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestDecideNoHolders(t *testing.T) {
	m, _ := NewConflictModel(10, rng.New(1))
	if _, blocked := m.Decide(nil); blocked {
		t.Fatal("blocked with no holders")
	}
	if _, blocked := m.Decide([]Holder{}); blocked {
		t.Fatal("blocked with empty holders")
	}
}

func TestDecideFullCoverageAlwaysBlocks(t *testing.T) {
	// A holder owning every lock blocks every request — the ltot=1 case
	// of the paper where "only one transaction can access the database".
	m, _ := NewConflictModel(1, rng.New(2))
	for i := 0; i < 1000; i++ {
		blocker, blocked := m.Decide([]Holder{{ID: 7, Locks: 1}})
		if !blocked || blocker != 7 {
			t.Fatalf("draw %d: not blocked by sole full holder", i)
		}
	}
}

func TestDecideZeroLockHoldersIgnored(t *testing.T) {
	m, _ := NewConflictModel(10, rng.New(3))
	for i := 0; i < 1000; i++ {
		if _, blocked := m.Decide([]Holder{{ID: 1, Locks: 0}, {ID: 2, Locks: -5}}); blocked {
			t.Fatal("blocked by holders with no locks")
		}
	}
}

func TestDecideBlockingFrequencyMatchesTheory(t *testing.T) {
	// With holders covering 30% of the lock space the empirical blocking
	// rate must approach 0.3.
	m, _ := NewConflictModel(100, rng.New(4))
	holders := []Holder{{ID: 1, Locks: 10}, {ID: 2, Locks: 20}}
	const n = 200000
	blockedCount := 0
	for i := 0; i < n; i++ {
		if _, blocked := m.Decide(holders); blocked {
			blockedCount++
		}
	}
	got := float64(blockedCount) / n
	if math.Abs(got-0.3) > 0.005 {
		t.Fatalf("blocking rate %v, want about 0.3", got)
	}
}

func TestDecideBlockerAttributionProportional(t *testing.T) {
	// Given a block, the blocker is Tj with probability Lj / sum(L).
	m, _ := NewConflictModel(100, rng.New(5))
	holders := []Holder{{ID: 1, Locks: 10}, {ID: 2, Locks: 40}}
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		if blocker, blocked := m.Decide(holders); blocked {
			counts[blocker]++
		}
	}
	total := counts[1] + counts[2]
	if total == 0 {
		t.Fatal("never blocked")
	}
	share := float64(counts[1]) / float64(total)
	if math.Abs(share-0.2) > 0.01 {
		t.Fatalf("blocker 1 share %v, want about 0.2", share)
	}
}

func TestDecideOversubscribedAlwaysBlocks(t *testing.T) {
	// Holders jointly exceeding the lock space: the remainder partition
	// is empty, so every draw blocks.
	m, _ := NewConflictModel(10, rng.New(6))
	holders := []Holder{{ID: 1, Locks: 7}, {ID: 2, Locks: 8}}
	for i := 0; i < 1000; i++ {
		if _, blocked := m.Decide(holders); !blocked {
			t.Fatal("proceeded despite oversubscribed lock space")
		}
	}
}

func TestBlockProbability(t *testing.T) {
	m, _ := NewConflictModel(100, rng.New(7))
	cases := []struct {
		holders []Holder
		want    float64
	}{
		{nil, 0},
		{[]Holder{{ID: 1, Locks: 25}}, 0.25},
		{[]Holder{{ID: 1, Locks: 60}, {ID: 2, Locks: 60}}, 1},
		{[]Holder{{ID: 1, Locks: -10}, {ID: 2, Locks: 10}}, 0.1},
	}
	for _, c := range cases {
		if got := m.BlockProbability(c.holders); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BlockProbability(%v) = %v, want %v", c.holders, got, c.want)
		}
	}
}

func TestDecideDeterministicForSeed(t *testing.T) {
	mk := func() []int {
		m, _ := NewConflictModel(50, rng.New(99))
		holders := []Holder{{ID: 1, Locks: 10}, {ID: 2, Locks: 15}}
		var out []int
		for i := 0; i < 100; i++ {
			b, blocked := m.Decide(holders)
			if !blocked {
				b = -1
			}
			out = append(out, b)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("conflict decisions diverged at %d", i)
		}
	}
}

func BenchmarkDecide(b *testing.B) {
	m, _ := NewConflictModel(5000, rng.New(1))
	holders := make([]Holder, 10)
	for i := range holders {
		holders[i] = Holder{ID: i, Locks: 25}
	}
	for i := 0; i < b.N; i++ {
		m.Decide(holders)
	}
}
