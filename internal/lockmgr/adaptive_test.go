package lockmgr

import (
	"context"
	"testing"
	"time"
)

// Tests for WithAdaptiveEscalation: hot-parent suppression and
// de-escalation of coarse locks that block other transactions.

func TestAdaptiveEscalationStillEscalatesWhenCold(t *testing.T) {
	h := NewHierTable(WithAdaptiveEscalation(3, 5))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := h.Lock(ctx, 1, path("db", "rel", string(rune('a'+i))), GModeX); err != nil {
			t.Fatal(err)
		}
	}
	if n := h.Escalations(); n != 1 {
		t.Fatalf("escalations = %d, want 1", n)
	}
	if m, ok := h.Held(1, "rel"); !ok || m != GModeX {
		t.Fatalf("rel held as %v, want X", m)
	}
}

// TestDeescalationUnblocksReader: a writer escalates to X on the
// relation; a reader arriving later must not park behind the coarse
// lock — the table rolls the escalation back and the reader proceeds
// against ordinary fine-grained compatibility.
func TestDeescalationUnblocksReader(t *testing.T) {
	h := NewHierTable(WithAdaptiveEscalation(2, 100))
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
		t.Fatal(err)
	}
	if err := h.Lock(ctx, 1, path("db", "rel", "g2"), GModeX); err != nil {
		t.Fatal(err)
	}
	if n := h.Escalations(); n != 1 {
		t.Fatalf("escalations = %d, want 1", n)
	}
	// The reader targets an untouched granule; the only obstacle is the
	// escalated X on "rel". With plain WithEscalation it would block
	// (see TestEscalationReaderGetsS); adaptively it must proceed.
	done := make(chan error, 1)
	go func() { done <- h.Lock(ctx, 2, path("db", "rel", "g3"), GModeS) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reader failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader blocked: escalated lock was not de-escalated")
	}
	if n := h.Deescalations(); n != 1 {
		t.Fatalf("deescalations = %d, want 1", n)
	}
	// The writer is back to its fine-grained shape: IX on rel.
	if m, ok := h.Held(1, "rel"); !ok || m != GModeIX {
		t.Fatalf("writer holds %v on rel after de-escalation, want IX", m)
	}
	// Its real child locks were never touched.
	if m, ok := h.Held(1, "g1"); !ok || m != GModeX {
		t.Fatalf("writer's child lock g1 = %v (held=%v), want X", m, ok)
	}
	h.ReleaseAll(1)
	h.ReleaseAll(2)
}

// TestDeescalationMaterializesAbsorbedLocks: accesses absorbed by the
// coarse lock must be re-granted as real locks when it is rolled back,
// or the absorbed access would silently lose its cover.
func TestDeescalationMaterializesAbsorbedLocks(t *testing.T) {
	h := NewHierTable(WithAdaptiveEscalation(2, 100))
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
		t.Fatal(err)
	}
	if err := h.Lock(ctx, 1, path("db", "rel", "g2"), GModeX); err != nil {
		t.Fatal(err)
	}
	// Absorbed by the escalated X: no real lock is taken on g9.
	if err := h.Lock(ctx, 1, path("db", "rel", "g9"), GModeX); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Held(1, "g9"); ok {
		t.Fatal("absorbed access should not hold a real lock yet")
	}
	// A reader on g3 forces de-escalation; g9's cover must materialize.
	if err := h.Lock(ctx, 2, path("db", "rel", "g3"), GModeS); err != nil {
		t.Fatal(err)
	}
	if m, ok := h.Held(1, "g9"); !ok || m != GModeX {
		t.Fatalf("absorbed lock not materialized: g9 = %v (held=%v), want X", m, ok)
	}
	// And it really excludes: a reader on g9 must now block.
	blocked := make(chan error, 1)
	go func() { blocked <- h.Lock(ctx, 3, path("db", "rel", "g9"), GModeS) }()
	select {
	case err := <-blocked:
		t.Fatalf("reader on materialized g9 should block, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	h.ReleaseAll(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	h.ReleaseAll(2)
	h.ReleaseAll(3)
}

// TestHotParentNotEscalated: a parent that keeps blocking requests is
// too contended for a coarse lock; escalation must be suppressed until
// it cools.
func TestHotParentNotEscalated(t *testing.T) {
	h := NewHierTable(WithAdaptiveEscalation(2, 1))
	ctx := context.Background()
	// Heat "rel": txn 2 parks against txn 1's granule lock, which sits
	// under the same parent. Each park heats every node it parks on —
	// here the conflict is on the granule, so heat the parent directly
	// instead: txn 2 requests S on rel while txn 1 holds IX.
	if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
		t.Fatal(err)
	}
	parked := make(chan error, 1)
	cctx, cancel := context.WithCancel(ctx)
	go func() { parked <- h.Lock(cctx, 2, path("db", "rel"), GModeS) }()
	time.Sleep(50 * time.Millisecond) // let the reader park: rel.heat becomes 1
	cancel()
	if err := <-parked; err == nil {
		t.Fatal("reader should have been cancelled while parked")
	}
	// Crossing the escalation threshold on the now-hot parent must NOT
	// escalate.
	if err := h.Lock(ctx, 1, path("db", "rel", "g2"), GModeX); err != nil {
		t.Fatal(err)
	}
	if n := h.Escalations(); n != 0 {
		t.Fatalf("escalations = %d on a hot parent, want 0", n)
	}
	h.ReleaseAll(1)
}

// TestExplicitLockOnEscalatedNodeNotDeescalated: once a transaction
// explicitly requests the coarse mode it was escalated to, the lock is
// a direct one and must survive contention.
func TestExplicitLockOnEscalatedNodeNotDeescalated(t *testing.T) {
	h := NewHierTable(WithAdaptiveEscalation(2, 100))
	ctx := context.Background()
	if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
		t.Fatal(err)
	}
	if err := h.Lock(ctx, 1, path("db", "rel", "g2"), GModeX); err != nil {
		t.Fatal(err)
	}
	// Explicitly lock the relation in X: converts the escalated grant.
	if err := h.Lock(ctx, 1, path("db", "rel"), GModeX); err != nil {
		t.Fatal(err)
	}
	// A reader must now genuinely block (no de-escalation available).
	blocked := make(chan error, 1)
	go func() { blocked <- h.Lock(ctx, 2, path("db", "rel", "g3"), GModeS) }()
	select {
	case err := <-blocked:
		t.Fatalf("reader should block behind the explicit X, got %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if n := h.Deescalations(); n != 0 {
		t.Fatalf("deescalations = %d, want 0", n)
	}
	h.ReleaseAll(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	h.ReleaseAll(2)
}

// TestAdaptiveStateClearedOnRelease: escalation records must not leak
// across transaction lifetimes.
func TestAdaptiveStateClearedOnRelease(t *testing.T) {
	h := NewHierTable(WithAdaptiveEscalation(2, 100))
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		if err := h.Lock(ctx, 1, path("db", "rel", "g1"), GModeX); err != nil {
			t.Fatal(err)
		}
		if err := h.Lock(ctx, 1, path("db", "rel", "g2"), GModeX); err != nil {
			t.Fatal(err)
		}
		h.ReleaseAll(1)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.escaped) != 0 {
		t.Fatalf("%d escalation records leaked", len(h.escaped))
	}
	if len(h.held) != 0 || len(h.nodes) != 0 {
		t.Fatalf("state leaked: held=%d nodes=%d", len(h.held), len(h.nodes))
	}
}
