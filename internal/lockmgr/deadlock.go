package lockmgr

// Detector maintains a transaction waits-for graph and answers cycle
// queries. Each waiting transaction has at most one *reason* to wait (one
// granule) but possibly several blockers (edges), e.g. multiple shared
// holders blocking a writer.
//
// Detector is not itself synchronized; Table calls it under its own
// mutex. It is exported because the hierarchical table and the engine's
// tests use it directly.
type Detector struct {
	out   map[TxnID]map[TxnID]struct{}
	edges int // running edge count, so Edges() is O(1)

	// DFS scratch, reused across InCycle calls. Callers already
	// serialize detector access (Table under detMu, HierTable under its
	// table mutex), so a per-call allocation buys nothing but GC work —
	// and InCycle runs on every block, squarely on the contended path.
	visited map[TxnID]struct{}
	stack   []TxnID
}

// NewDetector returns an empty waits-for graph.
func NewDetector() *Detector {
	return &Detector{out: make(map[TxnID]map[TxnID]struct{})}
}

// AddEdge records that waiter waits for holder. Self-edges are ignored.
func (d *Detector) AddEdge(waiter, holder TxnID) {
	if waiter == holder {
		return
	}
	m := d.out[waiter]
	if m == nil {
		m = make(map[TxnID]struct{}, 2)
		d.out[waiter] = m
	}
	if _, dup := m[holder]; !dup {
		m[holder] = struct{}{}
		d.edges++
	}
}

// RemoveWaiter removes every outgoing edge of txn (it stopped waiting).
func (d *Detector) RemoveWaiter(txn TxnID) {
	d.edges -= len(d.out[txn])
	delete(d.out, txn)
}

// RemoveTxn removes txn entirely: its outgoing edges and every edge
// pointing at it (it released its locks or terminated).
func (d *Detector) RemoveTxn(txn TxnID) {
	d.edges -= len(d.out[txn])
	delete(d.out, txn)
	for _, m := range d.out {
		if _, ok := m[txn]; ok {
			delete(m, txn)
			d.edges--
		}
	}
}

// Edges returns the number of edges in the graph. The count is
// maintained incrementally, so release paths can consult it on every
// call: an empty graph means no transaction is blocked and deadlock
// bookkeeping can be skipped entirely.
func (d *Detector) Edges() int {
	return d.edges
}

// InCycle reports whether txn can reach itself through waits-for edges,
// i.e. whether txn participates in a deadlock.
func (d *Detector) InCycle(txn TxnID) bool {
	if len(d.out[txn]) == 0 {
		return false
	}
	// Iterative DFS from txn looking for a path back to txn.
	if d.visited == nil {
		d.visited = make(map[TxnID]struct{}, 8)
	}
	visited := d.visited
	stack := d.stack[:0]
	defer func() {
		for v := range visited {
			delete(visited, v)
		}
		d.stack = stack[:0]
	}()
	for next := range d.out[txn] {
		stack = append(stack, next)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == txn {
			return true
		}
		if _, seen := visited[cur]; seen {
			continue
		}
		visited[cur] = struct{}{}
		for next := range d.out[cur] {
			stack = append(stack, next)
		}
	}
	return false
}
