package lockmgr

import (
	"context"
	"fmt"
	"sync"
)

// GMode is a multi-granularity lock mode (Gray's hierarchical locking
// protocol). The paper's conclusions point at exactly this mechanism:
// "providing granularity at the block level and at the file level, as is
// done in the Gamma database machine, may be adequate".
type GMode int8

const (
	// GModeIS signals intent to lock descendants in shared mode.
	GModeIS GMode = iota
	// GModeIX signals intent to lock descendants in exclusive mode.
	GModeIX
	// GModeS locks the whole subtree for reading.
	GModeS
	// GModeSIX locks the subtree for reading with intent to write parts.
	GModeSIX
	// GModeX locks the whole subtree for writing.
	GModeX
)

var gModeNames = [...]string{"IS", "IX", "S", "SIX", "X"}

// String returns the conventional mode name.
func (m GMode) String() string {
	if m < 0 || int(m) >= len(gModeNames) {
		return fmt.Sprintf("GMode(%d)", int8(m))
	}
	return gModeNames[m]
}

// gCompat is Gray's compatibility matrix, indexed [requested][held].
var gCompat = [5][5]bool{
	GModeIS:  {GModeIS: true, GModeIX: true, GModeS: true, GModeSIX: true, GModeX: false},
	GModeIX:  {GModeIS: true, GModeIX: true, GModeS: false, GModeSIX: false, GModeX: false},
	GModeS:   {GModeIS: true, GModeIX: false, GModeS: true, GModeSIX: false, GModeX: false},
	GModeSIX: {GModeIS: true, GModeIX: false, GModeS: false, GModeSIX: false, GModeX: false},
	GModeX:   {GModeIS: false, GModeIX: false, GModeS: false, GModeSIX: false, GModeX: false},
}

// GCompatible reports whether a requested mode is compatible with a held
// mode owned by a different transaction.
func GCompatible(requested, held GMode) bool {
	return gCompat[requested][held]
}

// combine returns the effective mode of a transaction holding both a and
// b on the same node: S+IX (in either order) strengthens to SIX; other
// pairs resolve to the stronger mode under IS < IX < SIX < X and
// IS < S < SIX < X.
func combine(a, b GMode) GMode {
	if a == b {
		return a
	}
	if (a == GModeS && b == GModeIX) || (a == GModeIX && b == GModeS) {
		return GModeSIX
	}
	if a > b {
		return a
	}
	return b
}

// IntentionFor returns the intention mode ancestors must carry so that a
// descendant may be locked in mode m: IS for read modes, IX for modes
// that can write.
func IntentionFor(m GMode) GMode {
	switch m {
	case GModeIS, GModeS:
		return GModeIS
	default:
		return GModeIX
	}
}

// NodeID names one node of the lock hierarchy, e.g. "db", "db/accounts",
// "db/accounts/g17". The table treats IDs as opaque; the caller supplies
// root-to-target paths.
type NodeID string

// HierTable is a blocking multi-granularity lock table over an arbitrary
// hierarchy. Transactions lock a node by locking the path from the root:
// intention modes on ancestors, the requested mode on the target.
// Waiting requests participate in deadlock detection; victims receive
// ErrDeadlock and should ReleaseAll and retry.
type HierTable struct {
	mu       sync.Mutex
	nodes    map[NodeID]*hierNode
	held     map[TxnID]map[NodeID]GMode
	detector *Detector
	waiters  map[*hierWait]struct{}
	stats    Stats
	escAt    int // escalation threshold; 0 = off
	escCount int64
	// children tracks, per transaction and parent node, the distinct
	// child nodes currently locked — the escalation trigger.
	children map[TxnID]map[NodeID]map[NodeID]struct{}
}

type hierNode struct {
	holders map[TxnID]GMode
}

// hierWait is one parked hierarchical request (on one node).
type hierWait struct {
	txn  TxnID
	node NodeID
	mode GMode
	ch   chan error
}

// HierOption configures a HierTable.
type HierOption func(*HierTable)

// WithEscalation enables lock escalation: when a transaction holds
// threshold or more distinct child locks under one parent, the table
// opportunistically converts them to a single coarse lock on the parent
// (S under IS, X under IX/SIX). Escalation is best-effort — it is
// skipped, never waited for, when other holders make the coarse lock
// incompatible — so it cannot introduce deadlocks. Once escalated,
// further descendant requests under that parent are absorbed without
// taking new locks: exactly the granularity adaptation the paper's
// conclusions recommend ("providing granularity at the block level and
// at the file level ... may be adequate").
func WithEscalation(threshold int) HierOption {
	return func(h *HierTable) { h.escAt = threshold }
}

// NewHierTable returns an empty hierarchical lock table.
func NewHierTable(opts ...HierOption) *HierTable {
	h := &HierTable{
		nodes:    make(map[NodeID]*hierNode),
		held:     make(map[TxnID]map[NodeID]GMode),
		detector: NewDetector(),
		waiters:  make(map[*hierWait]struct{}),
		children: make(map[TxnID]map[NodeID]map[NodeID]struct{}),
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Escalations returns the number of successful lock escalations.
func (h *HierTable) Escalations() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.escCount
}

// absorbs reports whether holding `held` on an ancestor makes a request
// for `want` on a descendant redundant: X covers everything, S and SIX
// cover reads.
func absorbs(held, want GMode) bool {
	switch held {
	case GModeX:
		return true
	case GModeS, GModeSIX:
		return want == GModeS || want == GModeIS
	default:
		return false
	}
}

// Stats returns a snapshot of the activity counters.
func (h *HierTable) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Held returns the effective mode txn holds on node, if any.
func (h *HierTable) Held(txn TxnID, node NodeID) (GMode, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.held[txn][node]
	return m, ok
}

// Lock acquires mode on the last node of path, taking the appropriate
// intention mode on every ancestor first (top-down, the hierarchical
// protocol's required order). On deadlock the requester is the victim and
// receives ErrDeadlock with its already-acquired locks still held; the
// caller should ReleaseAll.
func (h *HierTable) Lock(ctx context.Context, txn TxnID, path []NodeID, mode GMode) error {
	if len(path) == 0 {
		return fmt.Errorf("lockmgr: empty lock path")
	}
	for i, node := range path {
		want := mode
		if i < len(path)-1 {
			want = IntentionFor(mode)
		}
		// A coarse lock already held on this ancestor (directly or via
		// escalation) absorbs the rest of the path.
		h.mu.Lock()
		if held, ok := h.held[txn][node]; ok && absorbs(held, mode) {
			h.mu.Unlock()
			return nil
		}
		h.mu.Unlock()
		if err := h.lockNode(ctx, txn, node, want); err != nil {
			return err
		}
		if i > 0 {
			h.noteChild(txn, path[i-1], node)
		}
	}
	return nil
}

// noteChild records that txn holds a lock on child under parent and
// triggers best-effort escalation at the threshold.
func (h *HierTable) noteChild(txn TxnID, parent, child NodeID) {
	if h.escAt <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	perTxn := h.children[txn]
	if perTxn == nil {
		perTxn = make(map[NodeID]map[NodeID]struct{})
		h.children[txn] = perTxn
	}
	set := perTxn[parent]
	if set == nil {
		set = make(map[NodeID]struct{})
		perTxn[parent] = set
	}
	set[child] = struct{}{}
	if len(set) < h.escAt {
		return
	}
	// Escalate: the parent's intention mode says what the children may
	// do — IX or SIX means writes, so the coarse lock must be X;
	// IS means reads, so S suffices.
	parentHeld, ok := h.held[txn][parent]
	if ok && absorbs(parentHeld, GModeX) {
		return // already escalated
	}
	target := GModeS
	if parentHeld == GModeIX || parentHeld == GModeSIX {
		target = GModeX
	}
	n := h.nodes[parent]
	if n == nil || !h.nodeCompatible(n, txn, target) {
		return // best-effort: skip rather than wait
	}
	h.grantNode(n, txn, parent, target)
	h.escCount++
	delete(perTxn, parent)
}

// lockNode acquires one mode on one node, waiting as needed.
func (h *HierTable) lockNode(ctx context.Context, txn TxnID, node NodeID, mode GMode) error {
	h.mu.Lock()
	for {
		n := h.nodes[node]
		if n == nil {
			n = &hierNode{holders: make(map[TxnID]GMode, 1)}
			h.nodes[node] = n
		}
		if have, ok := n.holders[txn]; ok && combine(have, mode) == have {
			h.mu.Unlock()
			return nil // already held strongly enough
		}
		if h.nodeCompatible(n, txn, mode) {
			h.grantNode(n, txn, node, mode)
			h.stats.Grants++
			h.mu.Unlock()
			return nil
		}
		// Park: record waits-for edges to incompatible holders, check for
		// a cycle (requester is victim), then wait for any release.
		w := &hierWait{txn: txn, node: node, mode: mode, ch: make(chan error, 1)}
		h.detector.RemoveWaiter(txn)
		for holder, held := range n.holders {
			if holder != txn && !GCompatible(mode, held) {
				h.detector.AddEdge(txn, holder)
			}
		}
		if h.detector.InCycle(txn) {
			h.detector.RemoveWaiter(txn)
			h.stats.Deadlocks++
			h.mu.Unlock()
			return ErrDeadlock
		}
		h.waiters[w] = struct{}{}
		h.stats.Blocks++
		h.mu.Unlock()

		select {
		case <-w.ch:
			// A release happened; re-evaluate from scratch.
		case <-ctx.Done():
			h.mu.Lock()
			delete(h.waiters, w)
			h.detector.RemoveWaiter(txn)
			h.mu.Unlock()
			return ctx.Err()
		}
		h.mu.Lock()
		delete(h.waiters, w)
		h.detector.RemoveWaiter(txn)
	}
}

// nodeCompatible reports whether txn may take mode on n now. Caller
// holds h.mu.
func (h *HierTable) nodeCompatible(n *hierNode, txn TxnID, mode GMode) bool {
	for holder, held := range n.holders {
		if holder == txn {
			continue
		}
		if !GCompatible(mode, held) {
			return false
		}
	}
	return true
}

// grantNode records the grant and wakes parked requests so their
// waits-for edges track the changed holder set (a grant can add a
// blocker for an existing waiter, e.g. a reader joining while a writer
// waits). Caller holds h.mu.
func (h *HierTable) grantNode(n *hierNode, txn TxnID, node NodeID, mode GMode) {
	if have, ok := n.holders[txn]; ok {
		mode = combine(have, mode)
	}
	n.holders[txn] = mode
	hm := h.held[txn]
	if hm == nil {
		hm = make(map[NodeID]GMode, 4)
		h.held[txn] = hm
	}
	hm[node] = mode
	for w := range h.waiters {
		select {
		case w.ch <- nil:
		default:
		}
	}
}

// ReleaseAll releases every node held by txn and wakes all parked
// requests so they can re-evaluate.
func (h *HierTable) ReleaseAll(txn TxnID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for node := range h.held[txn] {
		n := h.nodes[node]
		delete(n.holders, txn)
		if len(n.holders) == 0 {
			delete(h.nodes, node)
		}
	}
	delete(h.held, txn)
	delete(h.children, txn)
	h.detector.RemoveTxn(txn)
	for w := range h.waiters {
		select {
		case w.ch <- nil:
		default: // already signalled
		}
	}
}
