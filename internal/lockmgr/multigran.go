package lockmgr

import (
	"context"
	"fmt"
	"sync"
)

// GMode is a multi-granularity lock mode (Gray's hierarchical locking
// protocol). The paper's conclusions point at exactly this mechanism:
// "providing granularity at the block level and at the file level, as is
// done in the Gamma database machine, may be adequate".
type GMode int8

const (
	// GModeIS signals intent to lock descendants in shared mode.
	GModeIS GMode = iota
	// GModeIX signals intent to lock descendants in exclusive mode.
	GModeIX
	// GModeS locks the whole subtree for reading.
	GModeS
	// GModeSIX locks the subtree for reading with intent to write parts.
	GModeSIX
	// GModeX locks the whole subtree for writing.
	GModeX
)

var gModeNames = [...]string{"IS", "IX", "S", "SIX", "X"}

// String returns the conventional mode name.
func (m GMode) String() string {
	if m < 0 || int(m) >= len(gModeNames) {
		return fmt.Sprintf("GMode(%d)", int8(m))
	}
	return gModeNames[m]
}

// gCompat is Gray's compatibility matrix, indexed [requested][held].
var gCompat = [5][5]bool{
	GModeIS:  {GModeIS: true, GModeIX: true, GModeS: true, GModeSIX: true, GModeX: false},
	GModeIX:  {GModeIS: true, GModeIX: true, GModeS: false, GModeSIX: false, GModeX: false},
	GModeS:   {GModeIS: true, GModeIX: false, GModeS: true, GModeSIX: false, GModeX: false},
	GModeSIX: {GModeIS: true, GModeIX: false, GModeS: false, GModeSIX: false, GModeX: false},
	GModeX:   {GModeIS: false, GModeIX: false, GModeS: false, GModeSIX: false, GModeX: false},
}

// GCompatible reports whether a requested mode is compatible with a held
// mode owned by a different transaction.
func GCompatible(requested, held GMode) bool {
	return gCompat[requested][held]
}

// combine returns the effective mode of a transaction holding both a and
// b on the same node: S+IX (in either order) strengthens to SIX; other
// pairs resolve to the stronger mode under IS < IX < SIX < X and
// IS < S < SIX < X.
func combine(a, b GMode) GMode {
	if a == b {
		return a
	}
	if (a == GModeS && b == GModeIX) || (a == GModeIX && b == GModeS) {
		return GModeSIX
	}
	if a > b {
		return a
	}
	return b
}

// IntentionFor returns the intention mode ancestors must carry so that a
// descendant may be locked in mode m: IS for read modes, IX for modes
// that can write.
func IntentionFor(m GMode) GMode {
	switch m {
	case GModeIS, GModeS:
		return GModeIS
	default:
		return GModeIX
	}
}

// NodeID names one node of the lock hierarchy, e.g. "db", "db/accounts",
// "db/accounts/g17". The table treats IDs as opaque; the caller supplies
// root-to-target paths.
type NodeID string

// HierTable is a blocking multi-granularity lock table over an arbitrary
// hierarchy. Transactions lock a node by locking the path from the root:
// intention modes on ancestors, the requested mode on the target.
// Waiting requests participate in deadlock detection; victims receive
// ErrDeadlock and should ReleaseAll and retry.
type HierTable struct {
	mu       sync.Mutex
	nodes    map[NodeID]*hierNode
	held     map[TxnID]map[NodeID]GMode
	detector *Detector
	waiters  map[*hierWait]struct{}
	stats    Stats
	escAt    int // escalation threshold; 0 = off
	escCount int64
	// children tracks, per transaction and parent node, the child nodes
	// currently locked and the mode each is held in — the escalation
	// trigger, and (adaptive mode) the record needed to undo one.
	children map[TxnID]map[NodeID]map[NodeID]GMode

	// Adaptive contention management (WithAdaptiveEscalation): hot
	// parents are not escalated, and an escalated coarse lock that
	// blocks another transaction is rolled back to its fine-grained
	// form instead of making the requester wait.
	hotAt      int  // node heat at which escalation is suppressed; 0 = off
	deesc      bool // de-escalate coarse locks that block others
	deescCount int64
	escaped    map[TxnID]map[NodeID]*escRecord
}

type hierNode struct {
	holders map[TxnID]GMode
	// heat estimates data contention on this node: parking against it
	// heats it, grants cool it. Heat gates escalation in adaptive mode —
	// Thomasian's observation that coarsening under high data contention
	// multiplies conflicts instead of saving overhead.
	heat int
}

// escRecord remembers what an escalation replaced, so it can be undone.
type escRecord struct {
	prev GMode // the parent's (intention) mode before the coarse grant
	// absorbed accumulates descendant locks that Lock skipped because
	// the coarse lock covered them; de-escalation must materialize them
	// or the absorbed accesses would lose their cover. While the coarse
	// lock is held these grants are vacuously compatible (an X parent
	// excludes all other subtree holders; an S parent limits co-holders
	// to reads, and only reads are absorbed).
	absorbed map[NodeID]GMode
}

// hierWait is one parked hierarchical request (on one node).
type hierWait struct {
	txn  TxnID
	node NodeID
	mode GMode
	ch   chan error
}

// HierOption configures a HierTable.
type HierOption func(*HierTable)

// WithEscalation enables lock escalation: when a transaction holds
// threshold or more distinct child locks under one parent, the table
// opportunistically converts them to a single coarse lock on the parent
// (S under IS, X under IX/SIX). Escalation is best-effort — it is
// skipped, never waited for, when other holders make the coarse lock
// incompatible — so it cannot introduce deadlocks. Once escalated,
// further descendant requests under that parent are absorbed without
// taking new locks: exactly the granularity adaptation the paper's
// conclusions recommend ("providing granularity at the block level and
// at the file level ... may be adequate").
func WithEscalation(threshold int) HierOption {
	return func(h *HierTable) { h.escAt = threshold }
}

// WithAdaptiveEscalation enables escalation as WithEscalation does, plus
// two contention adaptations:
//
//   - Hot-granule suppression: a parent whose heat (blocks observed
//     against it, cooled by grants) has reached hotAt is not escalated —
//     under high data contention a coarse lock multiplies conflicts, so
//     the table keeps fine granularity exactly where the paper's
//     trade-off says fine granularity earns its overhead. hotAt <= 0
//     disables suppression.
//   - De-escalation: when a request blocks against an escalated coarse
//     lock, the coarse lock is rolled back to the intention mode it
//     replaced (re-granting any absorbed descendant locks) and the
//     request re-evaluates, usually proceeding under ordinary
//     fine-grained compatibility.
//
// Adaptive escalation changes blocking decisions (a request that would
// have parked against a coarse lock may now proceed), so it is a
// separate opt-in from the decision-preserving WithEscalation.
func WithAdaptiveEscalation(threshold, hotAt int) HierOption {
	return func(h *HierTable) {
		h.escAt = threshold
		h.hotAt = hotAt
		h.deesc = true
	}
}

// NewHierTable returns an empty hierarchical lock table.
func NewHierTable(opts ...HierOption) *HierTable {
	h := &HierTable{
		nodes:    make(map[NodeID]*hierNode),
		held:     make(map[TxnID]map[NodeID]GMode),
		detector: NewDetector(),
		waiters:  make(map[*hierWait]struct{}),
		children: make(map[TxnID]map[NodeID]map[NodeID]GMode),
		escaped:  make(map[TxnID]map[NodeID]*escRecord),
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Escalations returns the number of successful lock escalations.
func (h *HierTable) Escalations() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.escCount
}

// Deescalations returns the number of coarse locks rolled back to their
// fine-grained form because they blocked another transaction (only
// possible under WithAdaptiveEscalation).
func (h *HierTable) Deescalations() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deescCount
}

// absorbs reports whether holding `held` on an ancestor makes a request
// for `want` on a descendant redundant: X covers everything, S and SIX
// cover reads.
func absorbs(held, want GMode) bool {
	switch held {
	case GModeX:
		return true
	case GModeS, GModeSIX:
		return want == GModeS || want == GModeIS
	default:
		return false
	}
}

// Stats returns a snapshot of the activity counters.
func (h *HierTable) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Held returns the effective mode txn holds on node, if any.
func (h *HierTable) Held(txn TxnID, node NodeID) (GMode, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.held[txn][node]
	return m, ok
}

// Lock acquires mode on the last node of path, taking the appropriate
// intention mode on every ancestor first (top-down, the hierarchical
// protocol's required order). On deadlock the requester is the victim and
// receives ErrDeadlock with its already-acquired locks still held; the
// caller should ReleaseAll.
func (h *HierTable) Lock(ctx context.Context, txn TxnID, path []NodeID, mode GMode) error {
	if len(path) == 0 {
		return fmt.Errorf("lockmgr: empty lock path")
	}
	for i, node := range path {
		want := mode
		if i < len(path)-1 {
			want = IntentionFor(mode)
		}
		// A coarse lock already held on this ancestor (directly or via
		// escalation) absorbs the rest of the path.
		h.mu.Lock()
		if held, ok := h.held[txn][node]; ok && absorbs(held, mode) {
			if rec := h.escaped[txn][node]; rec != nil {
				if i == len(path)-1 {
					// The caller explicitly requested a mode on the
					// escalated node itself. If the pre-escalation mode
					// would not cover it, the coarse lock is now held by
					// request, not by adaptation: make it direct so a
					// later de-escalation cannot strip it.
					if combine(rec.prev, mode) != rec.prev {
						delete(h.escaped[txn], node)
					}
				} else {
					// The cover is an escalated lock that may later be
					// rolled back: remember the locks this access would
					// have taken so de-escalation can materialize them.
					for j := i + 1; j < len(path); j++ {
						want := mode
						if j < len(path)-1 {
							want = IntentionFor(mode)
						}
						rec.absorbed[path[j]] = combine(rec.absorbed[path[j]], want)
					}
				}
			}
			h.mu.Unlock()
			return nil
		}
		h.mu.Unlock()
		if err := h.lockNode(ctx, txn, node, want); err != nil {
			return err
		}
		if i > 0 {
			h.noteChild(txn, path[i-1], node)
		}
	}
	return nil
}

// noteChild records that txn holds a lock on child under parent and
// triggers best-effort escalation at the threshold.
func (h *HierTable) noteChild(txn TxnID, parent, child NodeID) {
	if h.escAt <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	perTxn := h.children[txn]
	if perTxn == nil {
		perTxn = make(map[NodeID]map[NodeID]GMode)
		h.children[txn] = perTxn
	}
	set := perTxn[parent]
	if set == nil {
		set = make(map[NodeID]GMode)
		perTxn[parent] = set
	}
	set[child] = h.held[txn][child]
	if len(set) < h.escAt {
		return
	}
	// Escalate: the parent's intention mode says what the children may
	// do — IX or SIX means writes, so the coarse lock must be X;
	// IS means reads, so S suffices.
	parentHeld, ok := h.held[txn][parent]
	if ok && absorbs(parentHeld, GModeX) {
		return // already escalated
	}
	n := h.nodes[parent]
	if n == nil {
		return
	}
	if h.hotAt > 0 && n.heat >= h.hotAt {
		// Hot parent: other transactions keep colliding here, so a
		// coarse lock would convert overhead savings into blocking.
		// Keep fine granularity and try again once the node cools.
		return
	}
	target := GModeS
	if parentHeld == GModeIX || parentHeld == GModeSIX {
		target = GModeX
	}
	if !h.nodeCompatible(n, txn, target) {
		return // best-effort: skip rather than wait
	}
	if h.deesc {
		perEsc := h.escaped[txn]
		if perEsc == nil {
			perEsc = make(map[NodeID]*escRecord)
			h.escaped[txn] = perEsc
		}
		perEsc[parent] = &escRecord{prev: parentHeld, absorbed: make(map[NodeID]GMode)}
	}
	h.grantNode(n, txn, parent, target)
	h.escCount++
	delete(perTxn, parent)
}

// deescalateLocked rolls holder's escalated lock on node back to the
// intention mode it replaced, first materializing any absorbed
// descendant locks (compatibility is vacuous while the coarse lock
// still excludes conflicting subtree holders). Returns false when
// holder has no escalation to undo on node. Caller holds h.mu.
func (h *HierTable) deescalateLocked(holder TxnID, node NodeID) bool {
	rec := h.escaped[holder][node]
	if rec == nil {
		return false
	}
	delete(h.escaped[holder], node)
	for child, m := range rec.absorbed {
		cn := h.nodes[child]
		if cn == nil {
			cn = &hierNode{holders: make(map[TxnID]GMode, 1)}
			h.nodes[child] = cn
		}
		if have, ok := cn.holders[holder]; ok {
			m = combine(have, m)
		}
		cn.holders[holder] = m
		h.held[holder][child] = m
	}
	n := h.nodes[node]
	n.holders[holder] = rec.prev
	h.held[holder][node] = rec.prev
	h.deescCount++
	return true
}

// lockNode acquires one mode on one node, waiting as needed.
func (h *HierTable) lockNode(ctx context.Context, txn TxnID, node NodeID, mode GMode) error {
	h.mu.Lock()
	for {
		n := h.nodes[node]
		if n == nil {
			n = &hierNode{holders: make(map[TxnID]GMode, 1)}
			h.nodes[node] = n
		}
		if have, ok := n.holders[txn]; ok && combine(have, mode) == have {
			if rec := h.escaped[txn][node]; rec != nil && combine(rec.prev, mode) != rec.prev {
				// The request is covered only because of the escalated
				// coarse lock. The caller asked for this mode explicitly,
				// so a later de-escalation must not strip it: convert the
				// escalated grant into a direct one.
				delete(h.escaped[txn], node)
			}
			h.mu.Unlock()
			return nil // already held strongly enough
		}
		if h.nodeCompatible(n, txn, mode) {
			h.grantNode(n, txn, node, mode)
			// An explicit grant on a node this txn had escalated makes
			// the coarse hold a direct one; it is no longer undoable.
			delete(h.escaped[txn], node)
			h.stats.Grants++
			if n.heat > 0 {
				n.heat--
			}
			h.mu.Unlock()
			return nil
		}
		if h.deesc {
			// Before parking, check whether any blocker's incompatibility
			// exists only because of an escalated coarse lock — if so,
			// undo the escalation and re-evaluate instead of waiting.
			undone := false
			for holder, held := range n.holders {
				if holder == txn || GCompatible(mode, held) {
					continue
				}
				if h.deescalateLocked(holder, node) {
					undone = true
				}
			}
			if undone {
				continue
			}
		}
		n.heat++
		// Park: record waits-for edges to incompatible holders, check for
		// a cycle (requester is victim), then wait for any release.
		w := &hierWait{txn: txn, node: node, mode: mode, ch: make(chan error, 1)}
		h.detector.RemoveWaiter(txn)
		for holder, held := range n.holders {
			if holder != txn && !GCompatible(mode, held) {
				h.detector.AddEdge(txn, holder)
			}
		}
		if h.detector.InCycle(txn) {
			h.detector.RemoveWaiter(txn)
			h.stats.Deadlocks++
			h.mu.Unlock()
			return ErrDeadlock
		}
		h.waiters[w] = struct{}{}
		h.stats.Blocks++
		h.mu.Unlock()

		select {
		case <-w.ch:
			// A release happened; re-evaluate from scratch.
		case <-ctx.Done():
			h.mu.Lock()
			delete(h.waiters, w)
			h.detector.RemoveWaiter(txn)
			h.mu.Unlock()
			return ctx.Err()
		}
		h.mu.Lock()
		delete(h.waiters, w)
		h.detector.RemoveWaiter(txn)
	}
}

// nodeCompatible reports whether txn may take mode on n now. Caller
// holds h.mu.
func (h *HierTable) nodeCompatible(n *hierNode, txn TxnID, mode GMode) bool {
	for holder, held := range n.holders {
		if holder == txn {
			continue
		}
		if !GCompatible(mode, held) {
			return false
		}
	}
	return true
}

// grantNode records the grant and wakes parked requests so their
// waits-for edges track the changed holder set (a grant can add a
// blocker for an existing waiter, e.g. a reader joining while a writer
// waits). Caller holds h.mu.
func (h *HierTable) grantNode(n *hierNode, txn TxnID, node NodeID, mode GMode) {
	if have, ok := n.holders[txn]; ok {
		mode = combine(have, mode)
	}
	n.holders[txn] = mode
	hm := h.held[txn]
	if hm == nil {
		hm = make(map[NodeID]GMode, 4)
		h.held[txn] = hm
	}
	hm[node] = mode
	for w := range h.waiters {
		select {
		case w.ch <- nil:
		default:
		}
	}
}

// ReleaseAll releases every node held by txn and wakes all parked
// requests so they can re-evaluate.
func (h *HierTable) ReleaseAll(txn TxnID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for node := range h.held[txn] {
		n := h.nodes[node]
		delete(n.holders, txn)
		if len(n.holders) == 0 {
			delete(h.nodes, node)
		}
	}
	delete(h.held, txn)
	delete(h.children, txn)
	delete(h.escaped, txn)
	h.detector.RemoveTxn(txn)
	for w := range h.waiters {
		select {
		case w.ch <- nil:
		default: // already signalled
		}
	}
}
