// Package core is the facade tying the reproduction together: one-shot
// simulation runs, replicated runs with confidence intervals, and access
// to the paper's experiment suite. The root package granulock re-exports
// this API for downstream users.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"granulock/internal/experiments"
	"granulock/internal/model"
	"granulock/internal/stats"
)

// DefaultParams returns the paper's Table 1 configuration.
func DefaultParams() model.Params {
	return experiments.BaseParams()
}

// Simulate runs the model once. It is deterministic for a given
// Params.Seed.
func Simulate(p model.Params) (model.Metrics, error) {
	return model.Run(p)
}

// Replicated summarizes independent replications of one configuration.
type Replicated struct {
	// Runs holds the per-replication metrics in seed order.
	Runs []model.Metrics
	// Throughput, MeanResponse, UsefulCPU, UsefulIO and LockOverhead
	// summarize the headline outputs with 95% confidence half-widths.
	Throughput   stats.Summary
	MeanResponse stats.Summary
	UsefulCPU    stats.Summary
	UsefulIO     stats.Summary
	LockOverhead stats.Summary
}

// SimulateReplicated runs reps independent replications (seeds Seed,
// Seed+1, ...) in parallel and summarizes them. reps must be >= 1.
func SimulateReplicated(p model.Params, reps int) (Replicated, error) {
	return SimulateReplicatedContext(nil, p, reps)
}

// SimulateReplicatedContext is SimulateReplicated with cooperative
// cancellation: a non-nil ctx aborts in-flight replications at their
// next cancellation check and the call fails with the context's error.
// A nil ctx runs the plain uninterruptible path. Completed summaries
// are identical either way.
func SimulateReplicatedContext(ctx context.Context, p model.Params, reps int) (Replicated, error) {
	if reps < 1 {
		return Replicated{}, fmt.Errorf("core: replications %d < 1", reps)
	}
	if err := p.Validate(); err != nil {
		return Replicated{}, err
	}
	runs := make([]model.Metrics, reps)
	errs := make([]error, reps)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < reps; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			q := p
			q.Seed = p.Seed + uint64(i)
			if ctx == nil {
				runs[i], errs[i] = model.Run(q)
			} else {
				runs[i], errs[i] = model.RunContext(ctx, q, nil)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Replicated{}, err
		}
	}

	var thr, resp, ucpu, uio, lock stats.Welford
	for _, m := range runs {
		thr.Add(m.Throughput)
		resp.Add(m.MeanResponse)
		ucpu.Add(m.UsefulCPUs)
		uio.Add(m.UsefulIOs)
		lock.Add(m.LockCPUs + m.LockIOs)
	}
	return Replicated{
		Runs:         runs,
		Throughput:   thr.Summarize(),
		MeanResponse: resp.Summarize(),
		UsefulCPU:    ucpu.Summarize(),
		UsefulIO:     uio.Summarize(),
		LockOverhead: lock.Summarize(),
	}, nil
}

// OptimalGranularity sweeps ltot over the standard grid and returns the
// value maximizing throughput, with the full sweep for inspection. This
// is the tuning question the paper answers; exposing it directly makes
// the library useful as a granularity advisor.
func OptimalGranularity(p model.Params) (best int, curve []PointSummary, err error) {
	return OptimalGranularityContext(nil, p)
}

// OptimalGranularityContext is OptimalGranularity with cooperative
// cancellation: a non-nil ctx is checked before each grid point and
// aborts the in-flight simulation at its next cancellation check.
func OptimalGranularityContext(ctx context.Context, p model.Params) (best int, curve []PointSummary, err error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	grid := experiments.LtotSweep(p.DBSize)
	curve = make([]PointSummary, len(grid))
	bestThroughput := -1.0
	for i, ltot := range grid {
		if ctx != nil && ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		q := p
		q.Ltot = ltot
		// Cells are deduplicated with the figure sweeps: tuning after
		// (or during) a figure run reuses every shared simulation.
		m, err := experiments.CachedRunContext(ctx, q)
		if err != nil {
			return 0, nil, err
		}
		curve[i] = PointSummary{Ltot: ltot, Throughput: m.Throughput, MeanResponse: m.MeanResponse}
		if m.Throughput > bestThroughput {
			bestThroughput = m.Throughput
			best = ltot
		}
	}
	return best, curve, nil
}

// PointSummary is one point of a granularity curve.
type PointSummary struct {
	Ltot         int
	Throughput   float64
	MeanResponse float64
}
