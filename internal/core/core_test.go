package core

import (
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.DBSize != 5000 || p.NTrans != 10 || p.IOTime != 0.2 {
		t.Fatalf("defaults drifted from Table 1: %+v", p)
	}
}

func TestSimulateMatchesModel(t *testing.T) {
	p := DefaultParams()
	p.TMax = 200
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("facade runs not deterministic")
	}
}

func TestSimulateReplicatedValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := SimulateReplicated(p, 0); err == nil {
		t.Fatal("reps=0 accepted")
	}
	p.DBSize = 0
	if _, err := SimulateReplicated(p, 2); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestSimulateReplicatedSummaries(t *testing.T) {
	p := DefaultParams()
	p.TMax = 200
	r, err := SimulateReplicated(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 4 {
		t.Fatalf("%d runs", len(r.Runs))
	}
	if r.Throughput.N != 4 || r.Throughput.Mean <= 0 {
		t.Fatalf("throughput summary %+v", r.Throughput)
	}
	if r.Throughput.CI95 <= 0 {
		t.Fatalf("zero CI across distinct seeds: %+v", r.Throughput)
	}
	if r.MeanResponse.Mean <= 0 || r.LockOverhead.Mean <= 0 {
		t.Fatal("summaries not populated")
	}
	// Replications must use distinct seeds.
	if r.Runs[0] == r.Runs[1] {
		t.Fatal("replications identical")
	}
}

func TestSimulateReplicatedDeterministic(t *testing.T) {
	p := DefaultParams()
	p.TMax = 200
	a, err := SimulateReplicated(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateReplicated(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("replication %d diverged", i)
		}
	}
}

func TestOptimalGranularity(t *testing.T) {
	p := DefaultParams()
	p.TMax = 500
	best, curve, err := OptimalGranularity(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	// The paper's central observation: the optimum is neither one lock
	// nor one lock per entity.
	if best <= 1 || best >= p.DBSize {
		t.Fatalf("optimal granularity %d at an extreme; curve %+v", best, curve)
	}
	// best must actually be the argmax of the curve.
	bestThroughput := -1.0
	for _, pt := range curve {
		if pt.Ltot == best {
			bestThroughput = pt.Throughput
		}
	}
	for _, pt := range curve {
		if pt.Throughput > bestThroughput {
			t.Fatalf("curve point %+v beats reported optimum %d", pt, best)
		}
	}
}

func TestOptimalGranularityValidation(t *testing.T) {
	p := DefaultParams()
	p.NTrans = 0
	if _, _, err := OptimalGranularity(p); err == nil {
		t.Fatal("invalid params accepted")
	}
}
