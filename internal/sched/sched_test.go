package sched

import "testing"

func TestUnlimited(t *testing.T) {
	var p Unlimited
	for _, n := range []int{0, 1, 1000000} {
		if !p.CanAdmit(n) {
			t.Fatalf("Unlimited refused at %d", n)
		}
	}
	p.Observe(true)
	p.Observe(false)
	if p.Name() != "unlimited" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestFixedMPL(t *testing.T) {
	p := FixedMPL{Limit: 5}
	if !p.CanAdmit(4) {
		t.Fatal("refused below limit")
	}
	if p.CanAdmit(5) {
		t.Fatal("admitted at limit")
	}
	if p.CanAdmit(6) {
		t.Fatal("admitted above limit")
	}
	if p.Name() != "mpl(5)" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestNewAdaptiveMPLValidation(t *testing.T) {
	bad := []struct {
		min, max, window int
		target           float64
	}{
		{0, 5, 10, 0.3},
		{5, 4, 10, 0.3},
		{1, 5, 0, 0.3},
		{1, 5, 10, 0},
		{1, 5, 10, 1},
		{1, 5, 10, -0.5},
	}
	for _, c := range bad {
		if _, err := NewAdaptiveMPL(c.min, c.max, c.window, c.target); err == nil {
			t.Errorf("invalid config %+v accepted", c)
		}
	}
	if _, err := NewAdaptiveMPL(1, 10, 5, 0.3); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAdaptiveMPLStartsAtMax(t *testing.T) {
	p, _ := NewAdaptiveMPL(1, 20, 10, 0.3)
	if p.Limit() != 20 {
		t.Fatalf("initial limit %d, want 20", p.Limit())
	}
	if !p.CanAdmit(19) || p.CanAdmit(20) {
		t.Fatal("CanAdmit inconsistent with limit")
	}
}

func TestAdaptiveMPLDecreasesUnderDenials(t *testing.T) {
	p, _ := NewAdaptiveMPL(1, 16, 4, 0.25)
	// One full window of denials: limit halves 16 -> 8.
	for i := 0; i < 4; i++ {
		p.Observe(false)
	}
	if p.Limit() != 8 {
		t.Fatalf("limit after denial window %d, want 8", p.Limit())
	}
	// Keep denying: 8 -> 4 -> 2 -> 1, floored at min.
	for w := 0; w < 5; w++ {
		for i := 0; i < 4; i++ {
			p.Observe(false)
		}
	}
	if p.Limit() != 1 {
		t.Fatalf("limit floored at %d, want 1", p.Limit())
	}
}

func TestAdaptiveMPLRecoversUnderGrants(t *testing.T) {
	p, _ := NewAdaptiveMPL(1, 16, 4, 0.25)
	for i := 0; i < 4; i++ {
		p.Observe(false)
	}
	if p.Limit() != 8 {
		t.Fatalf("setup failed: limit %d", p.Limit())
	}
	// Clean windows: additive increase back toward max.
	for w := 0; w < 3; w++ {
		for i := 0; i < 4; i++ {
			p.Observe(true)
		}
	}
	if p.Limit() != 11 {
		t.Fatalf("limit after 3 clean windows %d, want 11", p.Limit())
	}
	// Cap at max.
	for w := 0; w < 20; w++ {
		for i := 0; i < 4; i++ {
			p.Observe(true)
		}
	}
	if p.Limit() != 16 {
		t.Fatalf("limit capped at %d, want 16", p.Limit())
	}
}

func TestAdaptiveMPLWindowBoundary(t *testing.T) {
	p, _ := NewAdaptiveMPL(1, 10, 4, 0.5)
	// 1 denial in a window of 4 = 25% <= 50% target: additive increase
	// (already at max, stays).
	p.Observe(false)
	for i := 0; i < 3; i++ {
		p.Observe(true)
	}
	if p.Limit() != 10 {
		t.Fatalf("limit %d, want 10", p.Limit())
	}
	// 3 denials of 4 = 75% > 50%: halve.
	for i := 0; i < 3; i++ {
		p.Observe(false)
	}
	p.Observe(true)
	if p.Limit() != 5 {
		t.Fatalf("limit %d, want 5", p.Limit())
	}
}

func TestAdaptiveMPLName(t *testing.T) {
	p, _ := NewAdaptiveMPL(2, 30, 10, 0.3)
	if p.Name() != "adaptive[2..30]" {
		t.Fatalf("name %q", p.Name())
	}
}
