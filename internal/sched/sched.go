// Package sched implements transaction-level scheduling (admission
// control) policies. The paper observes (§3.7) that with many
// transactions in the system fine granularity collapses under lock
// overhead, and points to transaction-level scheduling — in particular
// the adaptive policies of Dandamudi & Chow (refs [3], [4]) — as the
// remedy. These policies bound the number of transactions concurrently
// holding or requesting locks.
package sched

import "fmt"

// Policy decides whether another transaction may be admitted to the lock
// request stage and observes lock-request outcomes to adapt. Policies
// are used from the single-threaded simulation loop and need no internal
// synchronization.
type Policy interface {
	// CanAdmit reports whether a transaction may issue its lock request
	// given the number of transactions currently active (holding locks).
	CanAdmit(active int) bool
	// Observe feeds the outcome of one lock request.
	Observe(granted bool)
	// Name identifies the policy in experiment output.
	Name() string
}

// Unlimited admits everything: the paper's base model.
type Unlimited struct{}

// CanAdmit always reports true.
func (Unlimited) CanAdmit(int) bool { return true }

// Observe ignores the outcome.
func (Unlimited) Observe(bool) {}

// Name returns "unlimited".
func (Unlimited) Name() string { return "unlimited" }

// FixedMPL admits at most Limit concurrently active transactions
// (a static multiprogramming-level limit).
type FixedMPL struct {
	Limit int
}

// CanAdmit reports whether the MPL limit has room.
func (f FixedMPL) CanAdmit(active int) bool { return active < f.Limit }

// Observe ignores the outcome.
func (FixedMPL) Observe(bool) {}

// Name returns "mpl(<limit>)".
func (f FixedMPL) Name() string { return fmt.Sprintf("mpl(%d)", f.Limit) }

// AdaptiveMPL adjusts an MPL limit by additive increase, multiplicative
// decrease on the observed lock-denial rate: when denials exceed the
// target rate over a window the limit halves, otherwise it creeps up.
// This is a simple instance of the adaptive transaction-level policies
// of ref [4].
type AdaptiveMPL struct {
	min, max int
	window   int
	target   float64

	limit  int
	seen   int
	denied int
}

// NewAdaptiveMPL returns an adaptive policy with limits in [min, max],
// adjusting every window observations against the target denial rate.
func NewAdaptiveMPL(min, max, window int, target float64) (*AdaptiveMPL, error) {
	if min < 1 {
		return nil, fmt.Errorf("sched: min MPL %d < 1", min)
	}
	if max < min {
		return nil, fmt.Errorf("sched: max MPL %d < min %d", max, min)
	}
	if window < 1 {
		return nil, fmt.Errorf("sched: window %d < 1", window)
	}
	if target <= 0 || target >= 1 {
		return nil, fmt.Errorf("sched: target denial rate %v outside (0,1)", target)
	}
	return &AdaptiveMPL{min: min, max: max, window: window, target: target, limit: max}, nil
}

// CanAdmit reports whether the current adaptive limit has room.
func (a *AdaptiveMPL) CanAdmit(active int) bool { return active < a.limit }

// Limit returns the current adaptive MPL limit (for tests and tracing).
func (a *AdaptiveMPL) Limit() int { return a.limit }

// Observe records one lock-request outcome and adapts at window
// boundaries.
func (a *AdaptiveMPL) Observe(granted bool) {
	a.seen++
	if !granted {
		a.denied++
	}
	if a.seen < a.window {
		return
	}
	rate := float64(a.denied) / float64(a.seen)
	if rate > a.target {
		a.limit /= 2
		if a.limit < a.min {
			a.limit = a.min
		}
	} else if a.limit < a.max {
		a.limit++
	}
	a.seen, a.denied = 0, 0
}

// Name returns "adaptive[min..max]".
func (a *AdaptiveMPL) Name() string { return fmt.Sprintf("adaptive[%d..%d]", a.min, a.max) }
